package main

import (
	"strings"
	"testing"

	"btr/internal/campaign"
	"btr/internal/exp"
)

func scenarioIDs(scs []campaign.Scenario) []string {
	var out []string
	for _, sc := range scs {
		out = append(out, sc.ID)
	}
	return out
}

func TestSelectScenariosUnknownFamilyErrors(t *testing.T) {
	_, err := selectScenarios(exp.Scenarios(), "", "campain") // typo
	if err == nil {
		t.Fatal("unknown -family silently accepted")
	}
	msg := err.Error()
	for _, want := range []string{`-family`, `"campain"`, "valid:", "paper", "campaign", "churn", "live"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

func TestSelectScenariosUnknownOnlyErrors(t *testing.T) {
	_, err := selectScenarios(exp.Scenarios(), "E99", "")
	if err == nil {
		t.Fatal("unknown -only silently accepted")
	}
	if !strings.Contains(err.Error(), "-only") || !strings.Contains(err.Error(), "valid:") || !strings.Contains(err.Error(), "E1") {
		t.Errorf("error %q does not list valid scenarios", err)
	}
}

func TestSelectScenariosFilters(t *testing.T) {
	all := exp.Scenarios()
	live, err := selectScenarios(all, "", "live")
	if err != nil {
		t.Fatalf("family=live: %v", err)
	}
	if ids := scenarioIDs(live); len(ids) != 1 || ids[0] != "C5" {
		t.Errorf("family=live selected %v, want [C5]", ids)
	}
	one, err := selectScenarios(all, "E6", "")
	if err != nil {
		t.Fatalf("only=E6: %v", err)
	}
	if ids := scenarioIDs(one); len(ids) != 1 || ids[0] != "E6" {
		t.Errorf("only=E6 selected %v", ids)
	}
	everything, err := selectScenarios(all, "", "")
	if err != nil || len(everything) != len(all) {
		t.Errorf("no filter selected %d/%d (%v)", len(everything), len(all), err)
	}
	// A valid ID in the wrong family matches nothing — that must error
	// too, not run an empty campaign.
	if _, err := selectScenarios(all, "E6", "live"); err == nil {
		t.Error("contradictory -only/-family silently accepted")
	}
}
