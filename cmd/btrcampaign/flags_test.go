package main

import (
	"flag"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var readmeFlagRE = regexp.MustCompile("^\\| `-([^`]+)` \\|")

// readmeFlagsTable returns the flag names of the README table that
// follows the given marker comment.
func readmeFlagsTable(t *testing.T, marker string) map[string]bool {
	t.Helper()
	src, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(src), "\n")
	names := map[string]bool{}
	inTable := false
	for _, line := range lines {
		tl := strings.TrimSpace(line)
		if !inTable {
			if tl == marker {
				inTable = true
			}
			continue
		}
		if m := readmeFlagRE.FindStringSubmatch(tl); m != nil {
			names[m[1]] = true
			continue
		}
		if !strings.HasPrefix(tl, "|") {
			break
		}
	}
	if !inTable {
		t.Fatalf("README.md has no %s marker", marker)
	}
	if len(names) == 0 {
		t.Fatalf("no flag rows found after %s", marker)
	}
	return names
}

// diffFlagSets fails the test when the README table and the registered
// flag set disagree in either direction.
func diffFlagSets(t *testing.T, documented map[string]bool, fs *flag.FlagSet) {
	t.Helper()
	registered := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { registered[f.Name] = true })
	var missing, stale []string
	for name := range registered {
		if !documented[name] {
			missing = append(missing, name)
		}
	}
	for name := range documented {
		if !registered[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("flags registered but missing from the README table: %v", missing)
	}
	if len(stale) > 0 {
		t.Errorf("flags documented in the README table but not registered: %v", stale)
	}
}

// TestReadmeFlagsTableMatches pins the README's btrcampaign flags table
// to the live flag set: a flag added or removed in registerFlags must
// update the table, and vice versa.
func TestReadmeFlagsTableMatches(t *testing.T) {
	fs := flag.NewFlagSet("btrcampaign", flag.ContinueOnError)
	registerFlags(fs)
	diffFlagSets(t, readmeFlagsTable(t, "<!-- flags:btrcampaign -->"), fs)
}
