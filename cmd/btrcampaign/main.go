// Command btrcampaign runs fault-injection campaigns: every scenario
// (the paper reproductions E1–E10 and the sweep families C1–C8) fanned
// out over a deterministic worker pool. Aggregated tables are
// byte-identical for any -workers value. Usage:
//
//	btrcampaign [-workers N] [-trials N] [-seed N] [-quick] [-json]
//	            [-only E6] [-family campaign] [-list] [-v]
//	            [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// With -json, the full machine-readable result bundle (tables, per-trial
// status and timing, campaign metadata) is written to stdout.
// -cpuprofile/-memprofile write pprof profiles covering the campaign run
// (including the parallel worker path), for profiling perf work directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"btr/internal/campaign"
	"btr/internal/cliflag"
	"btr/internal/exp"
	"btr/internal/live"
	"btr/internal/prof"
)

// selectScenarios filters the scenario table by -only and -family. An
// unknown scenario ID or family name is an error carrying the valid
// choices (the shared internal/cliflag format every btr command uses) —
// a typo must fail loudly, not silently run nothing.
func selectScenarios(all []campaign.Scenario, only, family string) ([]campaign.Scenario, error) {
	families := map[string]bool{}
	ids := map[string]bool{}
	for _, sc := range all {
		families[sc.Family] = true
		ids[sc.ID] = true
	}
	if family != "" {
		if err := cliflag.OneOfSet("family", family, families); err != nil {
			return nil, err
		}
	}
	if only != "" {
		if err := cliflag.OneOfSet("only", only, ids); err != nil {
			return nil, err
		}
	}
	var selected []campaign.Scenario
	for _, sc := range all {
		if only != "" && sc.ID != only {
			continue
		}
		if family != "" && sc.Family != family {
			continue
		}
		selected = append(selected, sc)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no scenario matches -only=%q -family=%q", only, family)
	}
	return selected, nil
}

// campaignFlags holds every flag value btrcampaign parses.
type campaignFlags struct {
	workers, trials               *int
	seed                          *uint64
	quick, jsonOut, list, verbose *bool
	only, family                  *string
	prof                          *prof.Flags
}

// registerFlags registers the full btrcampaign flag set on fs. It is
// the single source of truth the README flags table is pinned against
// (TestReadmeFlagsTableMatches).
func registerFlags(fs *flag.FlagSet) *campaignFlags {
	return &campaignFlags{
		workers: fs.Int("workers", runtime.NumCPU(), "worker pool size (output is identical for any value)"),
		trials:  fs.Int("trials", 1, "Monte Carlo multiplier for randomized scenario families"),
		seed:    fs.Uint64("seed", 1, "campaign master seed (every trial seed is split from it)"),
		quick:   fs.Bool("quick", false, "smaller sweeps (for smoke runs)"),
		jsonOut: fs.Bool("json", false, "emit the machine-readable result bundle as JSON"),
		only:    fs.String("only", "", "run a single scenario (e.g. E6 or C1)"),
		family:  fs.String("family", "", "run one scenario family (paper | campaign | churn | live | liveproc | faultrate | saturation)"),
		list:    fs.Bool("list", false, "list scenarios and exit"),
		verbose: fs.Bool("v", false, "print per-trial progress to stderr"),
		prof:    prof.RegisterOn(fs),
	}
}

func main() {
	// The C7 family re-executes this binary as node processes; the hook
	// turns those re-executions into deployment nodes instead of
	// recursive campaigns. No-op unless BTR_PROC_SPEC is set.
	live.MaybeRunNodeProc()

	cf := registerFlags(flag.CommandLine)
	workers, trials, seed := cf.workers, cf.trials, cf.seed
	quick, jsonOut, only := cf.quick, cf.jsonOut, cf.only
	family, list, verbose := cf.family, cf.list, cf.verbose
	profFlags := cf.prof
	flag.Parse()
	if *workers < 1 {
		*workers = 1
	}
	if *trials < 1 {
		*trials = 1
	}

	all := exp.Scenarios()
	if *list {
		for _, sc := range all {
			fmt.Printf("%-4s %-9s %s\n", sc.ID, sc.Family, sc.Claim)
		}
		return
	}

	selected, err := selectScenarios(all, *only, *family)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btrcampaign: %v\n", err)
		os.Exit(2)
	}

	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "btrcampaign: %v\n", err)
		os.Exit(2)
	}
	defer stopProf()

	opts := campaign.Options{
		Workers: *workers,
		Params:  campaign.Params{Seed: *seed, Quick: *quick, Trials: *trials},
	}
	if *verbose {
		opts.OnTrial = func(id string, tr campaign.TrialResult) {
			status := "ok"
			if tr.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%s] %-40s %-6s %8.1fms\n",
				id, tr.Name, status, float64(tr.Elapsed.Microseconds())/1000)
		}
	}

	start := time.Now()
	results := campaign.Run(selected, opts)
	wall := time.Since(start)

	failed := 0
	for _, r := range results {
		failed += r.Failed
	}
	if *jsonOut {
		if err := campaign.NewBundle(opts, wall, results).WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "btrcampaign: %v\n", err)
			stopProf()
			os.Exit(1)
		}
	} else {
		for _, r := range results {
			exp.WriteResult(os.Stdout, r)
		}
		fmt.Printf("campaign: %d scenario(s), %d worker(s), wall %v\n", len(results), *workers, wall.Round(time.Millisecond))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "btrcampaign: %d trial(s) failed\n", failed)
		stopProf()
		os.Exit(1)
	}
}
