package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"btr/internal/network"
)

// TestFailingRunStillWritesProfile pins the os.Exit-audit contract run()
// exists for: a run that fails *after* profiling has started must still
// flush a valid CPU profile on its way out (main minus os.Exit — the
// deferred stop must run on every return path, not just success).
func TestFailingRunStillWritesProfile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "cpu.pprof")
	// -at beyond the horizon fails validation after profFlags.Start().
	code := run([]string{"-orchestrate", "-horizon", "5", "-at", "30", "-cpuprofile", out},
		strings.NewReader(""), io.Discard, io.Discard)
	if code == 0 {
		t.Fatal("invalid -at accepted")
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("failing run left no profile: %v", err)
	}
	// A flushed pprof profile is gzip-framed; an unflushed one is empty.
	if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatalf("profile not a flushed gzip stream (%d bytes)", len(b))
	}
}

func TestBuildTopologyListsValidChoices(t *testing.T) {
	if _, err := buildTopology("full-mesh", 6); err != nil {
		t.Fatalf("valid topo rejected: %v", err)
	}
	_, err := buildTopology("mesh", 6)
	if err == nil {
		t.Fatal("unknown -topo silently accepted")
	}
	for _, want := range []string{"-topo", `"mesh"`, "valid:", "full-mesh", "dual-bus", "ring", "grid"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestBuildFaultListsValidChoices(t *testing.T) {
	if _, injected, err := buildFault("crash", 0, "c2", 100); err != nil || !injected {
		t.Fatalf("valid fault rejected: %v", err)
	}
	if _, injected, err := buildFault("none", 0, "c2", 100); err != nil || injected {
		t.Fatalf("none fault mishandled: %v injected=%v", err, injected)
	}
	_, _, err := buildFault("corupt-all", 0, "c2", 100)
	if err == nil {
		t.Fatal("unknown -fault silently accepted")
	}
	// The satellite fix: like btrcampaign -family, the error must name
	// the flag and list every valid choice.
	for _, want := range []string{"-fault", `"corupt-all"`, "valid:", "corrupt-all", "corrupt-sink", "crash", "omit", "flood", "none"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestParseFaultsSchedule(t *testing.T) {
	faults, err := parseFaults("kill-restart@3+3,partition@5", 16)
	if err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if len(faults) != 2 {
		t.Fatalf("schedule parsed wrong: %+v", faults)
	}
	if faults[0].Kind != "kill-restart" || faults[0].Node != -1 || faults[0].FaultAt != 3 || faults[0].HealAfter != 3 {
		t.Fatalf("first entry parsed wrong: %+v", faults[0])
	}
	if faults[1].Kind != "partition" || faults[1].HealAfter != 0 {
		t.Fatalf("heal-less entry should leave HealAfter 0 (orchestrator default): %+v", faults[1])
	}
	// An unknown kind errors through cliflag, naming the flag and listing
	// every valid choice.
	_, err = parseFaults("stopp@3", 16)
	if err == nil {
		t.Fatal("unknown schedule kind silently accepted")
	}
	for _, want := range []string{"-faults", `"stopp"`, "valid:", "kill", "kill-restart", "stop", "partition"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	for name, spec := range map[string]string{
		"missing @":         "stop",
		"bad period":        "stop@x",
		"period >= horizon": "stop@16",
		"bad heal":          "stop@3+x",
		"catalog kind":      "corrupt-all@3",
		"empty tail entry":  "stop@3,",
	} {
		if _, err := parseFaults(spec, 16); err == nil {
			t.Errorf("%s (%q) silently accepted", name, spec)
		}
	}
}

func TestFaultsRequiresOrchestrate(t *testing.T) {
	code := run([]string{"-faults", "stop@3+3,kill-restart@5+3"},
		strings.NewReader(""), io.Discard, io.Discard)
	if code != 2 {
		t.Fatalf("-faults without -orchestrate returned %d, want usage error 2", code)
	}
	// An explicit single -fault alongside a schedule is a contradiction.
	code = run([]string{"-orchestrate", "-fault", "kill", "-faults", "stop@3+3,kill-restart@5+3"},
		strings.NewReader(""), io.Discard, io.Discard)
	if code != 2 {
		t.Fatalf("-fault + -faults returned %d, want usage error 2", code)
	}
}

// TestClientFlagsContradictions pins the serving-surface flag rules: a
// client load only exists in orchestrated mode, and an op rate only
// exists when sessions carry it.
func TestClientFlagsContradictions(t *testing.T) {
	for name, args := range map[string][]string{
		"clients without orchestrate": {"-clients", "8"},
		"ops without clients":         {"-orchestrate", "-ops", "100"},
		"negative clients":            {"-orchestrate", "-clients", "-1"},
		"clients above cap":           {"-orchestrate", "-clients", "5000"},
		"negative ops":                {"-orchestrate", "-clients", "4", "-ops", "-1"},
	} {
		if code := run(args, strings.NewReader(""), io.Discard, io.Discard); code != 2 {
			t.Errorf("%s (%v) returned %d, want usage error 2", name, args, code)
		}
	}
}

func TestParseChurnEvents(t *testing.T) {
	evs, err := parseChurn("join", "6@5,7@9", 8, 20)
	if err != nil {
		t.Fatalf("valid join spec rejected: %v", err)
	}
	if len(evs) != 2 || evs[0].at != 5 || evs[0].delta.Join[0] != network.NodeID(6) {
		t.Fatalf("join spec parsed wrong: %+v", evs)
	}
	evs, err = parseChurn("replace", "7:2@9", 8, 20)
	if err != nil {
		t.Fatalf("valid replace spec rejected: %v", err)
	}
	if len(evs) != 1 || evs[0].delta.Join[0] != 7 || evs[0].delta.Retire[0] != 2 {
		t.Fatalf("replace spec parsed wrong: %+v", evs)
	}
	if evs, err := parseChurn("retire", "", 8, 20); err != nil || evs != nil {
		t.Fatalf("empty spec should parse to nothing: %v %v", evs, err)
	}
	for name, spec := range map[string]string{
		"missing @":         "6",
		"bad period":        "6@x",
		"period >= horizon": "6@20",
		"period zero":       "6@0",
		"slot out of range": "9@5",
		"replace without :": "7@5",
		"replace bad old":   "7:9@5",
		"garbage slot":      "x@5",
	} {
		flagName := "join"
		if strings.HasPrefix(spec, "7:") || spec == "7@5" {
			flagName = "replace"
		}
		if _, err := parseChurn(flagName, spec, 8, 20); err == nil {
			t.Errorf("%s (%q) silently accepted", name, spec)
		}
	}
}
