// Command btrlive boots a full BTR deployment on the wall clock — plan
// engine, detectors, evidence distribution, mode switcher, all running on
// the real-time executor (sim.WallScheduler) over the live channel-based
// bus transport (network.Bus) — injects a fault from the behavior catalog
// at runtime, and reports the measured wall-clock recovery time against
// the strategy's provable bound R. It is the "five-second rule on a real
// clock" demonstrator: the same runtime code that passes the simulated
// campaigns, executing under genuine asynchrony.
//
// Usage:
//
//	btrlive [-topo full-mesh|dual-bus|ring|grid] [-nodes N] [-f N]
//	        [-period D] [-margin D] [-horizon N] [-seed N]
//	        [-fault corrupt-all|corrupt-sink|crash|omit|flood|none]
//	        [-at N] [-v]
//
// Flags:
//
//	-topo     topology family (default full-mesh)
//	-nodes    node count (default 6; grid is fixed 3x3)
//	-f        fault bound the planner covers (default 1)
//	-period   control period (default 100ms; raise on slow hosts)
//	-margin   arrival-watchdog margin (default 20ms; covers executor and
//	          OS timer jitter, which a non-realtime host needs)
//	-horizon  number of periods to run (default 20)
//	-seed     deployment seed (default 1)
//	-fault    behavior to inject (default corrupt-all); none = soak only
//	-at       injection period index (default 3)
//	-v        stream evidence and mode switches to stderr as they happen
//
// Exit status: 0 when every measured recovery met the bound R (or no
// fault was injected and output stayed clean), 1 on a violation, 2 on
// usage or planning errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"btr/internal/adversary"
	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/live"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

func buildTopology(kind string, nodes int) (*network.Topology, error) {
	const bw, prop = 20_000_000, 50 * sim.Microsecond
	switch kind {
	case "full-mesh":
		return network.FullMesh(nodes, bw, prop), nil
	case "dual-bus":
		return network.DualBus(nodes, bw, prop), nil
	case "ring":
		return network.Ring(nodes, bw, prop), nil
	case "grid":
		return network.Grid(3, 3, bw, prop), nil
	default:
		return nil, fmt.Errorf("unknown -topo %q (valid: full-mesh, dual-bus, ring, grid)", kind)
	}
}

func buildFault(kind string, victim network.NodeID, sink flow.TaskID, at sim.Time) (adversary.Attack, bool, error) {
	switch kind {
	case "none":
		return adversary.Attack{}, false, nil
	case "corrupt-all":
		return adversary.CorruptEverything(victim, at), true, nil
	case "corrupt-sink":
		return adversary.CorruptTask(victim, sink, at), true, nil
	case "crash":
		return adversary.Crash(victim, at), true, nil
	case "omit":
		return adversary.Omit(victim, sink, at), true, nil
	case "flood":
		return adversary.FloodBogus(victim, 8, at), true, nil
	default:
		return adversary.Attack{}, false,
			fmt.Errorf("unknown -fault %q (valid: corrupt-all, corrupt-sink, crash, omit, flood, none)", kind)
	}
}

func main() {
	topoKind := flag.String("topo", "full-mesh", "topology family: full-mesh, dual-bus, ring, grid")
	nodes := flag.Int("nodes", 6, "node count (grid is fixed 3x3)")
	f := flag.Int("f", 1, "fault bound the planner covers")
	period := flag.Duration("period", 100*time.Millisecond, "control period")
	margin := flag.Duration("margin", 20*time.Millisecond, "arrival-watchdog margin (jitter budget)")
	horizon := flag.Uint64("horizon", 20, "periods to run")
	seed := flag.Uint64("seed", 1, "deployment seed")
	faultKind := flag.String("fault", "corrupt-all", "fault to inject: corrupt-all, corrupt-sink, crash, omit, flood, none")
	atPeriod := flag.Uint64("at", 3, "injection period index")
	verbose := flag.Bool("v", false, "stream evidence and mode switches to stderr")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "btrlive: %v\n", err)
		os.Exit(2)
	}

	topo, err := buildTopology(*topoKind, *nodes)
	if err != nil {
		fail(err)
	}
	p := sim.Time(*period / time.Microsecond)
	opts := plan.DefaultOptions(*f, 100*p) // generous request; R is reported
	opts.WatchdogMargin = sim.Time(*margin / time.Microsecond)

	cfg := live.Config{
		Seed:     *seed,
		Workload: flow.Chain(3, p, sim.Millisecond, 64, flow.CritA),
		Topology: topo,
		PlanOpts: opts,
		Horizon:  *horizon,
	}
	if *verbose {
		cfg.OnEvidence = func(node network.NodeID, ev evidence.Evidence, t sim.Time) {
			fmt.Fprintf(os.Stderr, "[%10v] node %d: evidence %s (accused %d)\n", t, node, ev.Kind, ev.Accused)
		}
		cfg.OnSwitch = func(node network.NodeID, from, to string, t sim.Time) {
			fmt.Fprintf(os.Stderr, "[%10v] node %d: mode switch %q -> %q\n", t, node, from, to)
		}
	}
	d, err := live.New(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("btrlive: %s on %s/%d nodes, f=%d, period %v, horizon %d periods (%v wall)\n",
		cfg.Workload.Name, *topoKind, topo.N, *f, p, *horizon, time.Duration(*horizon)*(*period))
	fmt.Printf("strategy: %d plans, provable recovery bound R = %v\n",
		len(d.Strategy.Plans), d.Strategy.RNeeded)

	sink := cfg.Workload.Sinks()[0]
	victim := live.FirstSinkNode(d)
	at := sim.Time(*atPeriod) * p
	attack, injected, err := buildFault(*faultKind, victim, sink, at)
	if err != nil {
		fail(err)
	}
	if injected {
		attack.Install(d)
		fmt.Printf("inject: %s at t=%v (node %d hosts the first-actuating %q replica)\n",
			attack.Name, at, victim, sink)
	}
	wallStart := time.Now()
	rep := d.Run()
	wall := time.Since(wallStart).Round(time.Millisecond)

	fmt.Printf("ran %v wall; %d actuations, %d evidence, %d mode switches, %d missed, %d wrong\n",
		wall, rep.Actuations, rep.EvidenceTotal(), len(rep.SwitchTimes), rep.MissedPeriods, rep.WrongValues)
	for _, rec := range rep.Recoveries() {
		fmt.Printf("fault at %v: measured wall-clock recovery %v\n", rec.FaultAt, rec.Duration())
	}
	// Bad output is attributable only from the injection onward; anything
	// before it (or any bad output at all on an uninjected soak) is
	// spurious and a violation in its own right — recovery accounting
	// must not launder it.
	spurious := false
	for _, iv := range rep.BadIntervals() {
		if !injected || iv.Start < at {
			spurious = true
			fmt.Printf("spurious bad output %v (not attributable to the injected fault)\n", iv)
		}
	}
	max := rep.MaxRecovery()
	switch {
	case spurious:
		fmt.Printf("verdict: VIOLATION — bad output outside any injected fault's window (missed=%d wrong=%d)\n",
			rep.MissedPeriods, rep.WrongValues)
		os.Exit(1)
	case !injected:
		fmt.Println("verdict: clean soak, no faults injected")
	case max <= rep.RNeeded:
		fmt.Printf("verdict: recovered within bound — %v <= R=%v\n", max, rep.RNeeded)
	default:
		fmt.Printf("verdict: VIOLATION — recovery %v vs R=%v (missed=%d wrong=%d)\n",
			max, rep.RNeeded, rep.MissedPeriods, rep.WrongValues)
		os.Exit(1)
	}
}
