// Command btrlive boots a full BTR deployment on the wall clock — plan
// engine, detectors, evidence distribution, mode switcher, all running on
// the real-time executor (sim.WallScheduler) — injects a fault from the
// behavior catalog at runtime, and reports the measured wall-clock
// recovery time against the strategy's provable bound R. It is the
// "five-second rule on a real clock" demonstrator: the same runtime code
// that passes the simulated campaigns, executing under genuine
// asynchrony.
//
// It has three execution modes:
//
//   - Single process (default): every node in one process over the
//     channel-based live bus (network.Bus). Membership churn (-members
//     and the churn flags) is available here.
//   - Orchestrated multi-process (-orchestrate): one OS process per node
//     over real TCP sockets (network.TCPBus), spawned and judged by an
//     in-process orchestrator acting as the plant. The fault catalog
//     grows process-level faults: kill (SIGKILL), kill-restart (SIGKILL
//     then supervised rejoin), stop (SIGSTOP/SIGCONT), partition
//     (userspace connection refusal, then heal).
//   - Per-node (-node N -peers addr,...): run exactly one node slot,
//     for hand-built multi-process or multi-host deployments. With
//     -peers the node starts immediately; without it the parent drives
//     the stdin protocol documented in internal/live/proc.go.
//
// Usage:
//
//	btrlive [-topo full-mesh|dual-bus|ring|grid] [-nodes N] [-f N]
//	        [-period D] [-margin D] [-horizon N] [-seed N]
//	        [-fault corrupt-all|corrupt-sink|crash|omit|flood|none]
//	        [-at N] [-members K] [-join n@p[,n@p...]]
//	        [-retire n@p[,n@p...]] [-replace new:old@p[,...]] [-v]
//	        [-cpuprofile out.pprof] [-memprofile out.pprof]
//	btrlive -orchestrate [-fault ...|kill|kill-restart|stop|partition]
//	        [-heal-after N] [-faults kind@at+heal[,...]] [-forgive D]
//	        [-clients N] [-ops RATE] [common flags]
//	btrlive -node N [-peers addr0,addr1,...] [common flags]
//
// Flags:
//
//	-topo        topology family (default full-mesh)
//	-nodes       node slot count (default 6; grid is fixed 3x3)
//	-f           fault bound the planner covers (default 1)
//	-period      control period (default 100ms; raise on slow hosts)
//	-margin      arrival-watchdog margin (default 20ms; covers executor
//	             and OS timer jitter, which a non-realtime host needs)
//	-horizon     number of periods to run (default 20)
//	-seed        deployment seed (default 1)
//	-fault       behavior to inject (default corrupt-all); none = soak
//	             only; kill/kill-restart/stop/partition need -orchestrate
//	-at          injection period index (default 3; must be < -horizon)
//	-heal-after  periods between fault and repair in -orchestrate mode
//	             (restart, SIGCONT, heal; default 3)
//	-faults      concurrent fault schedule "kind@at+heal[,...]" (kinds
//	             kill, kill-restart, stop, partition), each entry on its
//	             own injection/repair clock; supersedes -fault/-at
//	-forgive     parole clock: convictions expire after this duration and
//	             a > f storm floods signed over-budget verdicts instead
//	             of staying silent (0 = classic mode)
//	-orchestrate boot one process per node over TCP and judge as plant
//	-clients     client sessions driving the replicated register service
//	             through the run (needs -orchestrate; 0 = no clients)
//	-ops         aggregate client op rate in ops/sec (needs -clients;
//	             0 = closed loop, each session as fast as it can)
//	-node        run one node slot of a multi-process deployment
//	-peers       listen addresses, index = node ID (with -node)
//	-members     number of initially active slots (slots 0..K-1); 0 = all
//	             slots active with membership epochs off unless churn
//	             flags are given (single-process mode only)
//	-join        scripted join events, "slot@period" comma-separated
//	-retire      scripted retire events, "slot@period"
//	-replace     scripted replace events, "new:old@period"
//	-v           stream evidence and mode switches to stderr
//
// Exit status: 0 when every measured recovery met the (per-epoch) bound
// R and every scripted epoch activated, 1 on a violation, 2 on usage or
// planning errors. Profiles (-cpuprofile/-memprofile) are flushed on
// every exit path, including failures.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"btr/internal/adversary"
	"btr/internal/cliflag"
	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/live"
	"btr/internal/member"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/prof"
	"btr/internal/sim"
)

// buildTopology and buildFault delegate to the shared live-package
// builders so the orchestrator, node processes, and this CLI agree on
// the deployment shape by construction.
func buildTopology(kind string, nodes int) (*network.Topology, error) {
	return live.BuildTopology(kind, nodes)
}

func buildFault(kind string, victim network.NodeID, sink flow.TaskID, at sim.Time) (adversary.Attack, bool, error) {
	return live.BuildAttack(kind, victim, sink, at)
}

// churnEvent is one scripted reconfiguration.
type churnEvent struct {
	at    uint64
	delta member.Delta
	desc  string
}

// parseChurn parses "slot@period" (join/retire) or "new:old@period"
// (replace) comma-separated event lists, validating slot and period
// ranges the same way the other flags validate theirs.
func parseChurn(flagName, spec string, slots int, horizon uint64) ([]churnEvent, error) {
	if spec == "" {
		return nil, nil
	}
	var out []churnEvent
	for _, part := range strings.Split(spec, ",") {
		lhs, atStr, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("invalid -%s event %q (want %s@period)", flagName, part, flagName)
		}
		at, err := strconv.ParseUint(atStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid -%s period in %q: %v", flagName, part, err)
		}
		if err := cliflag.InRange(flagName+" period", int64(at), 1, int64(horizon)-1); err != nil {
			return nil, err
		}
		ev := churnEvent{at: at, desc: flagName + " " + part}
		switch flagName {
		case "replace":
			newStr, oldStr, ok := strings.Cut(lhs, ":")
			if !ok {
				return nil, fmt.Errorf("invalid -replace event %q (want new:old@period)", part)
			}
			j, err := parseSlot("replace", newStr, slots)
			if err != nil {
				return nil, err
			}
			r, err := parseSlot("replace", oldStr, slots)
			if err != nil {
				return nil, err
			}
			ev.delta = member.Delta{Join: []network.NodeID{j}, Retire: []network.NodeID{r}}
		case "join":
			j, err := parseSlot(flagName, lhs, slots)
			if err != nil {
				return nil, err
			}
			ev.delta = member.Delta{Join: []network.NodeID{j}}
		default: // retire
			r, err := parseSlot(flagName, lhs, slots)
			if err != nil {
				return nil, err
			}
			ev.delta = member.Delta{Retire: []network.NodeID{r}}
		}
		out = append(out, ev)
	}
	return out, nil
}

// parseFaults parses the -faults schedule: comma-separated
// "kind@at+heal" entries (heal optional; 0 lets the orchestrator apply
// its default), each validated against the storm fault kinds with the
// same loud listing every other enum flag gives. Victims are
// auto-assigned (Node -1): the strategy victim first, then the lowest
// free slots.
func parseFaults(spec string, horizon uint64) ([]live.FaultSpec, error) {
	var out []live.FaultSpec
	for _, part := range strings.Split(spec, ",") {
		kind, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("invalid -faults entry %q (want kind@at+heal)", part)
		}
		if err := cliflag.OneOf("faults", kind, live.StormFaultKinds); err != nil {
			return nil, err
		}
		atStr, healStr, hasHeal := strings.Cut(rest, "+")
		at, err := strconv.ParseUint(atStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid -faults injection period in %q: %v", part, err)
		}
		if err := cliflag.InRange("faults at", int64(at), 0, int64(horizon)-1); err != nil {
			return nil, err
		}
		fsp := live.FaultSpec{Kind: kind, Node: -1, FaultAt: at}
		if hasHeal {
			heal, err := strconv.ParseUint(healStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("invalid -faults heal delay in %q: %v", part, err)
			}
			fsp.HealAfter = heal
		}
		out = append(out, fsp)
	}
	return out, nil
}

func parseSlot(flagName, s string, slots int) (network.NodeID, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("invalid -%s slot %q: %v", flagName, s, err)
	}
	if err := cliflag.InRange(flagName+" slot", int64(v), 0, int64(slots)-1); err != nil {
		return 0, err
	}
	return network.NodeID(v), nil
}

func main() {
	live.MaybeRunNodeProc()
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// liveFlags holds every flag value btrlive parses.
type liveFlags struct {
	topoKind, faultKind, peers         *string
	faultsSpec                         *string
	joinSpec, retireSpec, replaceSpec  *string
	nodes, f, nodeID, membersN         *int
	clients                            *int
	opsRate                            *float64
	period, margin, forgive            *time.Duration
	horizon, seed, atPeriod, healAfter *uint64
	orchestrate, verbose               *bool
	prof                               *prof.Flags
}

// registerFlags registers the full btrlive flag set on fs. It is the
// single source of truth the README flags table is pinned against
// (TestReadmeFlagsTableMatches).
func registerFlags(fs *flag.FlagSet) *liveFlags {
	return &liveFlags{
		topoKind:    fs.String("topo", "full-mesh", "topology family: "+strings.Join(live.TopoKinds, ", ")),
		nodes:       fs.Int("nodes", 6, "node slot count (grid is fixed 3x3)"),
		f:           fs.Int("f", 1, "fault bound the planner covers"),
		period:      fs.Duration("period", 100*time.Millisecond, "control period"),
		margin:      fs.Duration("margin", 20*time.Millisecond, "arrival-watchdog margin (jitter budget)"),
		horizon:     fs.Uint64("horizon", 20, "periods to run"),
		seed:        fs.Uint64("seed", 1, "deployment seed"),
		faultKind:   fs.String("fault", "corrupt-all", "fault to inject: "+strings.Join(live.ProcFaultKinds, ", ")),
		atPeriod:    fs.Uint64("at", 3, "injection period index (must be < -horizon)"),
		healAfter:   fs.Uint64("heal-after", 3, "periods between fault and repair (-orchestrate)"),
		faultsSpec:  fs.String("faults", "", "concurrent fault schedule, kind@at+heal[,kind@at+heal...] (-orchestrate); kinds: "+strings.Join(live.StormFaultKinds, ", ")),
		forgive:     fs.Duration("forgive", 0, "parole clock: convictions expire after this long and over-budget windows are flagged (-orchestrate; 0 = classic mode)"),
		orchestrate: fs.Bool("orchestrate", false, "one process per node over TCP, judged by an orchestrator plant"),
		clients:     fs.Int("clients", 0, "client sessions driving the replicated register service (-orchestrate; 0 = none)"),
		opsRate:     fs.Float64("ops", 0, "aggregate client op rate in ops/sec (-clients; 0 = closed loop)"),
		nodeID:      fs.Int("node", -1, "run one node slot of a multi-process deployment"),
		peers:       fs.String("peers", "", "comma-separated listen addresses, index = node ID (with -node)"),
		membersN:    fs.Int("members", 0, "initially active slots 0..K-1 (0 = all)"),
		joinSpec:    fs.String("join", "", "scripted joins, slot@period[,slot@period...]"),
		retireSpec:  fs.String("retire", "", "scripted retires, slot@period[,...]"),
		replaceSpec: fs.String("replace", "", "scripted replaces, new:old@period[,...]"),
		verbose:     fs.Bool("v", false, "stream evidence and mode switches to stderr"),
		prof:        prof.RegisterOn(fs),
	}
}

// run is main minus os.Exit: every path returns through it, so the
// deferred profile flush below runs on failures too (the internal/prof
// contract — a failing run must still write a valid profile).
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("btrlive", flag.ContinueOnError)
	fs.SetOutput(stderr)
	lf := registerFlags(fs)
	topoKind, nodes, f := lf.topoKind, lf.nodes, lf.f
	period, margin, horizon, seed := lf.period, lf.margin, lf.horizon, lf.seed
	faultKind, atPeriod, healAfter := lf.faultKind, lf.atPeriod, lf.healAfter
	orchestrate, nodeID, peers := lf.orchestrate, lf.nodeID, lf.peers
	membersN, joinSpec, retireSpec, replaceSpec := lf.membersN, lf.joinSpec, lf.retireSpec, lf.replaceSpec
	verbose, profFlags := lf.verbose, lf.prof
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "btrlive: %v\n", err)
		return 2
	}

	stopProf, err := profFlags.Start()
	if err != nil {
		return fail(err)
	}
	defer stopProf()

	p := sim.Time(*period / time.Microsecond)
	m := sim.Time(*margin / time.Microsecond)

	multiProcess := *orchestrate || *nodeID >= 0
	if multiProcess && (*membersN > 0 || *joinSpec != "" || *retireSpec != "" || *replaceSpec != "") {
		return fail(fmt.Errorf("membership flags require single-process mode (see ROADMAP: epochs do not cross process boundaries yet)"))
	}
	if *orchestrate && *nodeID >= 0 {
		return fail(fmt.Errorf("-orchestrate and -node are mutually exclusive"))
	}

	if *nodeID >= 0 {
		return runNode(fs, *nodeID, *peers, *topoKind, *nodes, *f, *seed, p, m, *horizon,
			*faultKind, *atPeriod, *verbose, stdin, stdout, stderr)
	}
	if *lf.faultsSpec != "" && !*orchestrate {
		return fail(fmt.Errorf("-faults requires -orchestrate (a concurrent schedule drives real processes)"))
	}
	if err := cliflag.InRange("clients", int64(*lf.clients), 0, 4096); err != nil {
		return fail(err)
	}
	if *lf.opsRate < 0 {
		return fail(fmt.Errorf("-ops must be >= 0, got %v", *lf.opsRate))
	}
	if *lf.clients > 0 && !*orchestrate {
		return fail(fmt.Errorf("-clients requires -orchestrate (the register service rides on orchestrated node processes)"))
	}
	if *lf.opsRate > 0 && *lf.clients == 0 {
		return fail(fmt.Errorf("-ops requires -clients (an op rate needs client sessions to spread over)"))
	}
	if *orchestrate {
		if err := cliflag.InRange("at", int64(*atPeriod), 0, int64(*horizon)-1); err != nil {
			return fail(err)
		}
		cfg := live.OrchestratorConfig{
			Topo: *topoKind, Nodes: *nodes, F: *f, Seed: *seed,
			Period: p, Margin: m, Horizon: *horizon,
			Fault: *faultKind, FaultAt: *atPeriod, HealAfter: *healAfter,
			Forgive: sim.Time(*lf.forgive / time.Microsecond),
			Clients: *lf.clients, OpsRate: *lf.opsRate,
			Verbose: *verbose, Log: stdout,
		}
		if *lf.faultsSpec != "" {
			// A schedule supersedes the single-fault flags; an explicit
			// -fault alongside -faults is a contradiction worth rejecting.
			explicitFault := false
			fs.Visit(func(fl *flag.Flag) {
				if fl.Name == "fault" {
					explicitFault = true
				}
			})
			if explicitFault && *faultKind != "none" {
				return fail(fmt.Errorf("-fault and -faults are mutually exclusive (the schedule names its own kinds)"))
			}
			faults, err := parseFaults(*lf.faultsSpec, *horizon)
			if err != nil {
				return fail(err)
			}
			cfg.Fault, cfg.Faults = "none", faults
		}
		return runOrchestrated(cfg, stdout, stderr)
	}
	return runSingle(*topoKind, *nodes, *f, *seed, p, m, *horizon, *faultKind, *atPeriod,
		*membersN, *joinSpec, *retireSpec, *replaceSpec, *verbose, stdout, stderr, *period)
}

// runNode executes one node slot (per-node mode). With -peers the node
// starts immediately; otherwise the parent drives the stdin protocol.
func runNode(fs *flag.FlagSet, nodeID int, peers, topoKind string, nodes, f int, seed uint64,
	p, m sim.Time, horizon uint64, faultKind string, atPeriod uint64, verbose bool,
	stdin io.Reader, stdout, stderr io.Writer) int {
	_ = fs
	fail := func(err error) int {
		fmt.Fprintf(stderr, "btrlive: %v\n", err)
		return 2
	}
	spec := live.ProcSpec{
		Node: nodeID, Topo: topoKind, Nodes: nodes, F: f, Seed: seed,
		PeriodUS: int64(p), MarginUS: int64(m), Horizon: horizon, Verbose: verbose,
	}
	in := stdin
	if peers != "" {
		spec.Addrs = strings.Split(peers, ",")
		// Self-driven start: no parent on stdin, so release immediately.
		in = strings.NewReader("go\n")
	}
	// The behavior catalog self-injects only on the victim node, matching
	// single-process semantics (the victim hosts the first-actuating sink
	// replica and is computed identically in every process).
	if faultKind != "" && faultKind != "none" {
		if err := cliflag.OneOf("fault", faultKind, live.FaultKinds); err != nil {
			return fail(err)
		}
		// ProcTopology, not buildTopology: the victim must be computed from
		// the same strategy every node process plans with.
		topo, err := live.ProcTopology(topoKind, nodes)
		if err != nil {
			return fail(err)
		}
		opts := plan.DefaultOptions(f, 100*p)
		opts.WatchdogMargin = m
		strategy, err := plan.Build(live.DefaultWorkload(p), topo, opts)
		if err != nil {
			return fail(err)
		}
		if int(live.VictimOf(strategy)) == nodeID {
			spec.Fault, spec.FaultAt = faultKind, atPeriod
		}
	}
	if err := live.RunNodeProc(spec, in, stdout); err != nil {
		return fail(err)
	}
	return 0
}

// runOrchestrated boots the multi-process deployment and prints the
// plant's verdict.
func runOrchestrated(cfg live.OrchestratorConfig, stdout, stderr io.Writer) int {
	res, err := live.RunOrchestrator(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "btrlive: %v\n", err)
		return 2
	}
	rep := res.Report
	at := sim.Time(cfg.FaultAt) * cfg.Period
	fmt.Fprintf(stdout, "ran %d processes; %d actuations, %d missed, %d wrong\n",
		cfg.Nodes, rep.Actuations, rep.MissedPeriods, rep.WrongValues)
	for n, e := range res.Exits {
		if e != "" {
			fmt.Fprintf(stdout, "node %d exit: %s\n", n, e)
		}
	}
	for _, rec := range rep.Recoveries() {
		fmt.Fprintf(stdout, "fault at %v: measured wall-clock recovery %v\n", rec.FaultAt, rec.Duration())
	}
	sloOK := sloVerdict(cfg, res, stdout)
	if len(cfg.Faults) > 0 {
		code := stormVerdict(cfg, res, stdout)
		if code == 0 && !sloOK {
			return 1
		}
		return code
	}
	spurious := false
	for _, iv := range rep.BadIntervals() {
		if !res.Injected || iv.Start < at {
			spurious = true
			fmt.Fprintf(stdout, "spurious bad output %v (not attributable to the injected fault)\n", iv)
		}
	}
	max := rep.MaxRecovery()
	switch {
	case spurious:
		fmt.Fprintf(stdout, "verdict: VIOLATION — bad output outside any injected fault's window (missed=%d wrong=%d)\n",
			rep.MissedPeriods, rep.WrongValues)
		return 1
	case res.ReconnectChecked && !res.Reconnected:
		fmt.Fprintln(stdout, "verdict: VIOLATION — victim link did not re-establish after repair")
		return 1
	case !res.Injected:
		fmt.Fprintln(stdout, "verdict: clean soak, no faults injected")
	case max <= rep.RNeeded:
		fmt.Fprintf(stdout, "verdict: recovered within bound — %v <= R=%v\n", max, rep.RNeeded)
	default:
		fmt.Fprintf(stdout, "verdict: VIOLATION — recovery %v vs R=%v (missed=%d wrong=%d)\n",
			max, rep.RNeeded, rep.MissedPeriods, rep.WrongValues)
		return 1
	}
	if res.ReconnectChecked {
		fmt.Fprintf(stdout, "transport: victim link re-established on every adjacent peer\n")
	}
	if !sloOK {
		return 1
	}
	return 0
}

// sloVerdict prints the client-visible SLO report and judges it against
// the serving-surface contract: a ≤ f fault must stay invisible to
// clients except as a bounded stall — zero client-visible errors, and
// the longest success gap within R plus one detection period and the
// watchdog margin. Returns true when the SLO held (vacuously true when
// no clients ran).
func sloVerdict(cfg live.OrchestratorConfig, res *live.ProcResult, stdout io.Writer) bool {
	if res.SLO == nil {
		return true
	}
	fmt.Fprintf(stdout, "client SLO: %s\n", res.SLO)
	bound := time.Duration(res.Report.RNeeded+2*cfg.Period+cfg.Margin) * time.Microsecond
	ok := true
	if res.SLO.Errors > 0 {
		ok = false
		fmt.Fprintf(stdout, "verdict: VIOLATION — %d client-visible error(s); retries must absorb a <= f fault\n", res.SLO.Errors)
	}
	if res.SLO.MaxUnavail > bound {
		ok = false
		fmt.Fprintf(stdout, "verdict: VIOLATION — client-visible unavailability %v exceeds bound %v (R + 2*period + margin)\n",
			res.SLO.MaxUnavail.Round(time.Millisecond), bound)
	}
	if ok {
		fmt.Fprintf(stdout, "serving: client SLO held — no errors, max unavailability %v <= %v\n",
			res.SLO.MaxUnavail.Round(time.Millisecond), bound)
	}
	return ok
}

// stormVerdict prints the per-victim outcomes of a concurrent fault
// schedule and judges the storm invariants: every bad interval must be
// fault-attributable (confined), every transport-visible repair must
// re-establish, and when the schedule outnumbers f under a parole clock
// the degraded regime must be flagged (over-budget) and drain
// (reconciled).
func stormVerdict(cfg live.OrchestratorConfig, res *live.ProcResult, stdout io.Writer) int {
	rep := res.Report
	for _, sv := range res.Storm {
		line := fmt.Sprintf("storm: %s on node %d at period %d, heal after %d", sv.Kind, sv.Node, sv.FaultAt, sv.HealAfter)
		if sv.ReconnectChecked {
			if sv.Reconnected {
				line += " — link re-established on every peer"
			} else {
				line += " — LINK NOT RE-ESTABLISHED"
			}
		}
		fmt.Fprintln(stdout, line)
	}
	fmt.Fprintf(stdout, "budget: %d over-budget verdict(s), %d reconciled\n", res.OverBudget, res.Reconciled)
	bad := false
	for _, sv := range res.Storm {
		if sv.ReconnectChecked && !sv.Reconnected {
			bad = true
			fmt.Fprintf(stdout, "verdict: VIOLATION — %s victim %d did not re-establish after repair\n", sv.Kind, sv.Node)
		}
	}
	if !res.Confined {
		bad = true
		fmt.Fprintf(stdout, "verdict: VIOLATION — bad output outside the fault-attributable window [%v, %v]: %v\n",
			res.FirstFaultAt, res.ConfineEnd, rep.BadIntervals())
	}
	if len(cfg.Faults) > cfg.F && cfg.Forgive > 0 {
		if res.OverBudget == 0 {
			bad = true
			fmt.Fprintf(stdout, "verdict: VIOLATION — > f storm raised no over-budget verdict\n")
		} else if res.Reconciled == 0 {
			bad = true
			fmt.Fprintf(stdout, "verdict: VIOLATION — storm drained but no node reconciled\n")
		}
	}
	if bad {
		return 1
	}
	fmt.Fprintf(stdout, "verdict: storm confined — bad output only inside [%v, %v], every repair rejoined\n",
		res.FirstFaultAt, res.ConfineEnd)
	return 0
}

// runSingle is the historical single-process mode.
func runSingle(topoKind string, nodes, f int, seed uint64, p, m sim.Time, horizon uint64,
	faultKind string, atPeriod uint64, membersN int, joinSpec, retireSpec, replaceSpec string,
	verbose bool, stdout, stderr io.Writer, period time.Duration) int {
	fail := func(err error) int {
		fmt.Fprintf(stderr, "btrlive: %v\n", err)
		return 2
	}

	topo, err := buildTopology(topoKind, nodes)
	if err != nil {
		return fail(err)
	}
	// Validate the remaining flags up front — before any planning output
	// — with the same loud listing the -topo check gives.
	if err := cliflag.OneOf("fault", faultKind, live.FaultKinds); err != nil {
		return fail(err)
	}
	// -at must land inside the run.
	if err := cliflag.InRange("at", int64(atPeriod), 0, int64(horizon)-1); err != nil {
		return fail(err)
	}
	if err := cliflag.InRange("members", int64(membersN), 0, int64(topo.N)); err != nil {
		return fail(err)
	}
	var events []churnEvent
	for _, spec := range []struct{ name, val string }{
		{"join", joinSpec}, {"retire", retireSpec}, {"replace", replaceSpec},
	} {
		evs, err := parseChurn(spec.name, spec.val, topo.N, horizon)
		if err != nil {
			return fail(err)
		}
		events = append(events, evs...)
	}

	opts := plan.DefaultOptions(f, 100*p) // generous request; R is reported
	opts.WatchdogMargin = m

	cfg := live.Config{
		Seed:     seed,
		Workload: live.DefaultWorkload(p),
		Topology: topo,
		PlanOpts: opts,
		Horizon:  horizon,
	}
	// Membership epochs engage when an initial membership or any churn
	// event is scripted.
	if membersN > 0 || len(events) > 0 {
		k := membersN
		if k == 0 {
			k = topo.N
		}
		for i := 0; i < k; i++ {
			cfg.Members = append(cfg.Members, network.NodeID(i))
		}
	}
	if verbose {
		cfg.OnEvidence = func(node network.NodeID, ev evidence.Evidence, t sim.Time) {
			fmt.Fprintf(stderr, "[%10v] node %d: evidence %s (accused %d)\n", t, node, ev.Kind, ev.Accused)
		}
		cfg.OnSwitch = func(node network.NodeID, from, to string, t sim.Time) {
			fmt.Fprintf(stderr, "[%10v] node %d: mode switch %q -> %q\n", t, node, from, to)
		}
	}
	d, err := live.New(cfg)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "btrlive: %s on %s/%d slots, f=%d, period %v, horizon %d periods (%v wall)\n",
		cfg.Workload.Name, topoKind, topo.N, f, p, horizon, time.Duration(horizon)*period)
	if cfg.Members != nil {
		fmt.Fprintf(stdout, "membership: %d of %d slots active at genesis; %d scripted epoch event(s)\n",
			len(cfg.Members), topo.N, len(events))
	}
	fmt.Fprintf(stdout, "strategy: %d plans, provable recovery bound R = %v\n",
		len(d.Strategy.Plans), d.Strategy.RNeeded)

	for _, ev := range events {
		d.Reconfigure(sim.Time(ev.at)*p, ev.delta)
		fmt.Fprintf(stdout, "schedule: %s (t=%v)\n", ev.desc, sim.Time(ev.at)*p)
	}

	sink := cfg.Workload.Sinks()[0]
	victim := live.FirstSinkNode(d)
	at := sim.Time(atPeriod) * p
	attack, injected, err := buildFault(faultKind, victim, sink, at)
	if err != nil {
		return fail(err)
	}
	if injected {
		attack.Install(d)
		fmt.Fprintf(stdout, "inject: %s at t=%v (node %d hosts the first-actuating %q replica)\n",
			attack.Name, at, victim, sink)
	}
	wallStart := time.Now()
	rep := d.Run()
	wall := time.Since(wallStart).Round(time.Millisecond)

	fmt.Fprintf(stdout, "ran %v wall; %d actuations, %d evidence, %d mode switches, %d missed, %d wrong\n",
		wall, rep.Actuations, rep.EvidenceTotal(), len(rep.SwitchTimes), rep.MissedPeriods, rep.WrongValues)
	if verbose {
		st := rep.NetStats
		fmt.Fprintf(stderr, "transport: sent=%v delivered=%v dropped=%v shed=%v (backpressure sheds: %d)\n",
			st.MsgsSent, st.MsgsDelivered, st.MsgsDropped, st.MsgsShed, st.TotalShed())
	}
	epochsOK := true
	for _, e := range rep.Epochs {
		if e.Err != "" {
			epochsOK = false
			fmt.Fprintf(stdout, "epoch %d: REJECTED at %v — %s\n", e.Num, e.ProposedAt, e.Err)
			continue
		}
		if e.ActivatedAt == 0 {
			epochsOK = false
			fmt.Fprintf(stdout, "epoch %d -> %s: proposed %v, NEVER ACTIVATED\n", e.Num, e.Members, e.ProposedAt)
			continue
		}
		fmt.Fprintf(stdout, "epoch %d -> %s: proposed %v, committed %v (%d acks), activated %v (switch latency %v, R=%v)\n",
			e.Num, e.Members, e.ProposedAt, e.CommittedAt, e.Acks, e.ActivatedAt,
			e.ActivatedAt-e.ProposedAt, e.R)
	}
	if len(rep.Epochs) != len(events) {
		epochsOK = false
		fmt.Fprintf(stdout, "only %d of %d scripted epoch events were proposed\n", len(rep.Epochs), len(events))
	}
	for _, rec := range rep.Recoveries() {
		fmt.Fprintf(stdout, "fault at %v: measured wall-clock recovery %v\n", rec.FaultAt, rec.Duration())
	}
	// Bad output is attributable only from the injection onward; anything
	// before it (or any bad output at all on an uninjected soak) is
	// spurious and a violation in its own right — recovery accounting
	// must not launder it. Epoch switches must never corrupt output.
	spurious := false
	for _, iv := range rep.BadIntervals() {
		if !injected || iv.Start < at {
			spurious = true
			fmt.Fprintf(stdout, "spurious bad output %v (not attributable to the injected fault)\n", iv)
		}
	}
	max := rep.MaxRecovery()
	bound := rep.MaxEpochR()
	switch {
	case spurious:
		fmt.Fprintf(stdout, "verdict: VIOLATION — bad output outside any injected fault's window (missed=%d wrong=%d)\n",
			rep.MissedPeriods, rep.WrongValues)
		return 1
	case !epochsOK:
		fmt.Fprintln(stdout, "verdict: VIOLATION — scripted membership epochs did not all activate")
		return 1
	case !injected:
		fmt.Fprintln(stdout, "verdict: clean soak, no faults injected")
	case max <= bound:
		fmt.Fprintf(stdout, "verdict: recovered within bound — %v <= R=%v\n", max, bound)
	default:
		fmt.Fprintf(stdout, "verdict: VIOLATION — recovery %v vs R=%v (missed=%d wrong=%d)\n",
			max, bound, rep.MissedPeriods, rep.WrongValues)
		return 1
	}
	return 0
}
