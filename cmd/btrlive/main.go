// Command btrlive boots a full BTR deployment on the wall clock — plan
// engine, detectors, evidence distribution, mode switcher, all running on
// the real-time executor (sim.WallScheduler) over the live channel-based
// bus transport (network.Bus) — injects a fault from the behavior catalog
// at runtime, and reports the measured wall-clock recovery time against
// the strategy's provable bound R. It is the "five-second rule on a real
// clock" demonstrator: the same runtime code that passes the simulated
// campaigns, executing under genuine asynchrony.
//
// With -members (and the churn flags) it also demonstrates online
// membership: the deployment starts with a subset of the node slots
// active and joins, retires, or replaces slots at scripted periods via
// the two-phase epoch switch — Bus lanes come and go at runtime, and
// recovery is judged against the per-epoch bound.
//
// Usage:
//
//	btrlive [-topo full-mesh|dual-bus|ring|grid] [-nodes N] [-f N]
//	        [-period D] [-margin D] [-horizon N] [-seed N]
//	        [-fault corrupt-all|corrupt-sink|crash|omit|flood|none]
//	        [-at N] [-members K] [-join n@p[,n@p...]]
//	        [-retire n@p[,n@p...]] [-replace new:old@p[,...]] [-v]
//
// Flags:
//
//	-topo     topology family (default full-mesh)
//	-nodes    node slot count (default 6; grid is fixed 3x3)
//	-f        fault bound the planner covers (default 1)
//	-period   control period (default 100ms; raise on slow hosts)
//	-margin   arrival-watchdog margin (default 20ms; covers executor and
//	          OS timer jitter, which a non-realtime host needs)
//	-horizon  number of periods to run (default 20)
//	-seed     deployment seed (default 1)
//	-fault    behavior to inject (default corrupt-all); none = soak only
//	-at       injection period index (default 3; must be < -horizon)
//	-members  number of initially active slots (slots 0..K-1); 0 = all
//	          slots active with membership epochs off unless churn flags
//	          are given
//	-join     scripted join events, "slot@period" comma-separated
//	-retire   scripted retire events, "slot@period"
//	-replace  scripted replace events, "new:old@period"
//	-v        stream evidence and mode switches to stderr as they happen
//
// Exit status: 0 when every measured recovery met the (per-epoch) bound
// R and every scripted epoch activated, 1 on a violation, 2 on usage or
// planning errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"btr/internal/adversary"
	"btr/internal/cliflag"
	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/live"
	"btr/internal/member"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

var topoKinds = []string{"full-mesh", "dual-bus", "ring", "grid"}

func buildTopology(kind string, nodes int) (*network.Topology, error) {
	if err := cliflag.OneOf("topo", kind, topoKinds); err != nil {
		return nil, err
	}
	const bw, prop = 20_000_000, 50 * sim.Microsecond
	switch kind {
	case "full-mesh":
		return network.FullMesh(nodes, bw, prop), nil
	case "dual-bus":
		return network.DualBus(nodes, bw, prop), nil
	case "ring":
		return network.Ring(nodes, bw, prop), nil
	default: // grid
		return network.Grid(3, 3, bw, prop), nil
	}
}

var faultKinds = []string{"corrupt-all", "corrupt-sink", "crash", "omit", "flood", "none"}

func buildFault(kind string, victim network.NodeID, sink flow.TaskID, at sim.Time) (adversary.Attack, bool, error) {
	if err := cliflag.OneOf("fault", kind, faultKinds); err != nil {
		return adversary.Attack{}, false, err
	}
	switch kind {
	case "none":
		return adversary.Attack{}, false, nil
	case "corrupt-all":
		return adversary.CorruptEverything(victim, at), true, nil
	case "corrupt-sink":
		return adversary.CorruptTask(victim, sink, at), true, nil
	case "crash":
		return adversary.Crash(victim, at), true, nil
	case "omit":
		return adversary.Omit(victim, sink, at), true, nil
	default: // flood
		return adversary.FloodBogus(victim, 8, at), true, nil
	}
}

// churnEvent is one scripted reconfiguration.
type churnEvent struct {
	at    uint64
	delta member.Delta
	desc  string
}

// parseChurn parses "slot@period" (join/retire) or "new:old@period"
// (replace) comma-separated event lists, validating slot and period
// ranges the same way the other flags validate theirs.
func parseChurn(flagName, spec string, slots int, horizon uint64) ([]churnEvent, error) {
	if spec == "" {
		return nil, nil
	}
	var out []churnEvent
	for _, part := range strings.Split(spec, ",") {
		lhs, atStr, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("invalid -%s event %q (want %s@period)", flagName, part, flagName)
		}
		at, err := strconv.ParseUint(atStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid -%s period in %q: %v", flagName, part, err)
		}
		if err := cliflag.InRange(flagName+" period", int64(at), 1, int64(horizon)-1); err != nil {
			return nil, err
		}
		ev := churnEvent{at: at, desc: flagName + " " + part}
		switch flagName {
		case "replace":
			newStr, oldStr, ok := strings.Cut(lhs, ":")
			if !ok {
				return nil, fmt.Errorf("invalid -replace event %q (want new:old@period)", part)
			}
			j, err := parseSlot("replace", newStr, slots)
			if err != nil {
				return nil, err
			}
			r, err := parseSlot("replace", oldStr, slots)
			if err != nil {
				return nil, err
			}
			ev.delta = member.Delta{Join: []network.NodeID{j}, Retire: []network.NodeID{r}}
		case "join":
			j, err := parseSlot(flagName, lhs, slots)
			if err != nil {
				return nil, err
			}
			ev.delta = member.Delta{Join: []network.NodeID{j}}
		default: // retire
			r, err := parseSlot(flagName, lhs, slots)
			if err != nil {
				return nil, err
			}
			ev.delta = member.Delta{Retire: []network.NodeID{r}}
		}
		out = append(out, ev)
	}
	return out, nil
}

func parseSlot(flagName, s string, slots int) (network.NodeID, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("invalid -%s slot %q: %v", flagName, s, err)
	}
	if err := cliflag.InRange(flagName+" slot", int64(v), 0, int64(slots)-1); err != nil {
		return 0, err
	}
	return network.NodeID(v), nil
}

func main() {
	topoKind := flag.String("topo", "full-mesh", "topology family: "+strings.Join(topoKinds, ", "))
	nodes := flag.Int("nodes", 6, "node slot count (grid is fixed 3x3)")
	f := flag.Int("f", 1, "fault bound the planner covers")
	period := flag.Duration("period", 100*time.Millisecond, "control period")
	margin := flag.Duration("margin", 20*time.Millisecond, "arrival-watchdog margin (jitter budget)")
	horizon := flag.Uint64("horizon", 20, "periods to run")
	seed := flag.Uint64("seed", 1, "deployment seed")
	faultKind := flag.String("fault", "corrupt-all", "fault to inject: "+strings.Join(faultKinds, ", "))
	atPeriod := flag.Uint64("at", 3, "injection period index (must be < -horizon)")
	membersN := flag.Int("members", 0, "initially active slots 0..K-1 (0 = all)")
	joinSpec := flag.String("join", "", "scripted joins, slot@period[,slot@period...]")
	retireSpec := flag.String("retire", "", "scripted retires, slot@period[,...]")
	replaceSpec := flag.String("replace", "", "scripted replaces, new:old@period[,...]")
	verbose := flag.Bool("v", false, "stream evidence and mode switches to stderr")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "btrlive: %v\n", err)
		os.Exit(2)
	}

	topo, err := buildTopology(*topoKind, *nodes)
	if err != nil {
		fail(err)
	}
	// Validate the remaining flags up front — before any planning output
	// — with the same loud listing the -topo check gives.
	if err := cliflag.OneOf("fault", *faultKind, faultKinds); err != nil {
		fail(err)
	}
	// -at must land inside the run.
	if err := cliflag.InRange("at", int64(*atPeriod), 0, int64(*horizon)-1); err != nil {
		fail(err)
	}
	if err := cliflag.InRange("members", int64(*membersN), 0, int64(topo.N)); err != nil {
		fail(err)
	}
	var events []churnEvent
	for _, spec := range []struct{ name, val string }{
		{"join", *joinSpec}, {"retire", *retireSpec}, {"replace", *replaceSpec},
	} {
		evs, err := parseChurn(spec.name, spec.val, topo.N, *horizon)
		if err != nil {
			fail(err)
		}
		events = append(events, evs...)
	}

	p := sim.Time(*period / time.Microsecond)
	opts := plan.DefaultOptions(*f, 100*p) // generous request; R is reported
	opts.WatchdogMargin = sim.Time(*margin / time.Microsecond)

	cfg := live.Config{
		Seed:     *seed,
		Workload: flow.Chain(3, p, sim.Millisecond, 64, flow.CritA),
		Topology: topo,
		PlanOpts: opts,
		Horizon:  *horizon,
	}
	// Membership epochs engage when an initial membership or any churn
	// event is scripted.
	if *membersN > 0 || len(events) > 0 {
		k := *membersN
		if k == 0 {
			k = topo.N
		}
		for i := 0; i < k; i++ {
			cfg.Members = append(cfg.Members, network.NodeID(i))
		}
	}
	if *verbose {
		cfg.OnEvidence = func(node network.NodeID, ev evidence.Evidence, t sim.Time) {
			fmt.Fprintf(os.Stderr, "[%10v] node %d: evidence %s (accused %d)\n", t, node, ev.Kind, ev.Accused)
		}
		cfg.OnSwitch = func(node network.NodeID, from, to string, t sim.Time) {
			fmt.Fprintf(os.Stderr, "[%10v] node %d: mode switch %q -> %q\n", t, node, from, to)
		}
	}
	d, err := live.New(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("btrlive: %s on %s/%d slots, f=%d, period %v, horizon %d periods (%v wall)\n",
		cfg.Workload.Name, *topoKind, topo.N, *f, p, *horizon, time.Duration(*horizon)*(*period))
	if cfg.Members != nil {
		fmt.Printf("membership: %d of %d slots active at genesis; %d scripted epoch event(s)\n",
			len(cfg.Members), topo.N, len(events))
	}
	fmt.Printf("strategy: %d plans, provable recovery bound R = %v\n",
		len(d.Strategy.Plans), d.Strategy.RNeeded)

	for _, ev := range events {
		d.Reconfigure(sim.Time(ev.at)*p, ev.delta)
		fmt.Printf("schedule: %s (t=%v)\n", ev.desc, sim.Time(ev.at)*p)
	}

	sink := cfg.Workload.Sinks()[0]
	victim := live.FirstSinkNode(d)
	at := sim.Time(*atPeriod) * p
	attack, injected, err := buildFault(*faultKind, victim, sink, at)
	if err != nil {
		fail(err)
	}
	if injected {
		attack.Install(d)
		fmt.Printf("inject: %s at t=%v (node %d hosts the first-actuating %q replica)\n",
			attack.Name, at, victim, sink)
	}
	wallStart := time.Now()
	rep := d.Run()
	wall := time.Since(wallStart).Round(time.Millisecond)

	fmt.Printf("ran %v wall; %d actuations, %d evidence, %d mode switches, %d missed, %d wrong\n",
		wall, rep.Actuations, rep.EvidenceTotal(), len(rep.SwitchTimes), rep.MissedPeriods, rep.WrongValues)
	epochsOK := true
	for _, e := range rep.Epochs {
		if e.Err != "" {
			epochsOK = false
			fmt.Printf("epoch %d: REJECTED at %v — %s\n", e.Num, e.ProposedAt, e.Err)
			continue
		}
		if e.ActivatedAt == 0 {
			epochsOK = false
			fmt.Printf("epoch %d -> %s: proposed %v, NEVER ACTIVATED\n", e.Num, e.Members, e.ProposedAt)
			continue
		}
		fmt.Printf("epoch %d -> %s: proposed %v, committed %v (%d acks), activated %v (switch latency %v, R=%v)\n",
			e.Num, e.Members, e.ProposedAt, e.CommittedAt, e.Acks, e.ActivatedAt,
			e.ActivatedAt-e.ProposedAt, e.R)
	}
	if len(rep.Epochs) != len(events) {
		epochsOK = false
		fmt.Printf("only %d of %d scripted epoch events were proposed\n", len(rep.Epochs), len(events))
	}
	for _, rec := range rep.Recoveries() {
		fmt.Printf("fault at %v: measured wall-clock recovery %v\n", rec.FaultAt, rec.Duration())
	}
	// Bad output is attributable only from the injection onward; anything
	// before it (or any bad output at all on an uninjected soak) is
	// spurious and a violation in its own right — recovery accounting
	// must not launder it. Epoch switches must never corrupt output.
	spurious := false
	for _, iv := range rep.BadIntervals() {
		if !injected || iv.Start < at {
			spurious = true
			fmt.Printf("spurious bad output %v (not attributable to the injected fault)\n", iv)
		}
	}
	max := rep.MaxRecovery()
	bound := rep.MaxEpochR()
	switch {
	case spurious:
		fmt.Printf("verdict: VIOLATION — bad output outside any injected fault's window (missed=%d wrong=%d)\n",
			rep.MissedPeriods, rep.WrongValues)
		os.Exit(1)
	case !epochsOK:
		fmt.Println("verdict: VIOLATION — scripted membership epochs did not all activate")
		os.Exit(1)
	case !injected:
		fmt.Println("verdict: clean soak, no faults injected")
	case max <= bound:
		fmt.Printf("verdict: recovered within bound — %v <= R=%v\n", max, bound)
	default:
		fmt.Printf("verdict: VIOLATION — recovery %v vs R=%v (missed=%d wrong=%d)\n",
			max, bound, rep.MissedPeriods, rep.WrongValues)
		os.Exit(1)
	}
}
