// Command btrplan runs the offline planner on a chosen workload/topology
// and prints the strategy: one plan per fault pattern, shed sets, derived
// timing bounds, and transition costs. Usage:
//
//	btrplan [-workload avionics|chain|forkjoin|controlloop] [-nodes 6]
//	        [-topo mesh|ring|line|star|dualbus] [-f 1] [-r 500ms]
//	        [-speed 1.0] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

func main() {
	workload := flag.String("workload", "avionics", "workload: avionics|chain|forkjoin|controlloop")
	nodes := flag.Int("nodes", 6, "number of nodes")
	topoKind := flag.String("topo", "mesh", "topology: mesh|ring|line|star|dualbus")
	f := flag.Int("f", 1, "fault bound")
	r := flag.Duration("r", 500*time.Millisecond, "requested recovery bound")
	speed := flag.Float64("speed", 1.0, "CPU speed factor")
	verbose := flag.Bool("verbose", false, "print per-mode schedules")
	flag.Parse()

	period := 25 * sim.Millisecond
	var g *flow.Graph
	switch *workload {
	case "avionics":
		g = flow.Avionics(period)
	case "chain":
		g = flow.Chain(3, period, sim.Millisecond, 64, flow.CritA)
	case "forkjoin":
		g = flow.ForkJoin(3, period, sim.Millisecond, 64, flow.CritB)
	case "controlloop":
		g = flow.ControlLoop(50*sim.Millisecond, flow.CritA)
	default:
		fmt.Fprintf(os.Stderr, "btrplan: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	bw := int64(20_000_000)
	prop := 50 * sim.Microsecond
	var topo *network.Topology
	switch *topoKind {
	case "mesh":
		topo = network.FullMesh(*nodes, bw, prop)
	case "ring":
		topo = network.Ring(*nodes, bw, prop)
	case "line":
		topo = network.Line(*nodes, bw, prop)
	case "star":
		topo = network.Star(*nodes, bw, prop)
	case "dualbus":
		topo = network.DualBus(*nodes, bw, prop)
	default:
		fmt.Fprintf(os.Stderr, "btrplan: unknown topology %q\n", *topoKind)
		os.Exit(2)
	}

	opts := plan.DefaultOptions(*f, sim.Time(r.Microseconds()))
	opts.Sched.Speed = *speed
	start := time.Now()
	s, err := plan.Build(g, topo, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btrplan: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("planned %q on %d-node %s in %v\n\n", g.Name, *nodes, *topoKind, time.Since(start))
	fmt.Print(s.Summary())

	fmt.Println("\ntransitions (worst-case per successor mode):")
	keys := make([]string, 0, len(s.Trans))
	for k := range s.Trans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		tr := s.Trans[k]
		fmt.Printf("  -> {%s}: from {%s}, %d replicas move, %dB state, bound %v\n",
			tr.To, tr.From, len(tr.Moved), tr.StateBytes, tr.Bound)
	}

	if *verbose {
		fmt.Println("\nper-mode schedules:")
		for _, k := range append([]string{""}, keys...) {
			p := s.Plans[k]
			fmt.Printf("  mode %v:\n", p.Faults)
			var ns []network.NodeID
			for n := range p.Table.Slots {
				ns = append(ns, n)
			}
			sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
			for _, n := range ns {
				fmt.Printf("    node %d:", n)
				for _, slot := range p.Table.Slots[n] {
					fmt.Printf(" %s[%v,%v)", slot.Task, slot.Start, slot.End)
				}
				fmt.Println()
			}
		}
	}
}
