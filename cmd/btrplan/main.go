// Command btrplan runs the offline planner on a chosen workload/topology
// and prints the strategy: one plan per fault pattern, shed sets, derived
// timing bounds, and transition costs. Usage:
//
//	btrplan [-workload avionics|chain|forkjoin|controlloop] [-nodes 6]
//	        [-topo mesh|ring|line|star|dualbus] [-f 1] [-r 500ms]
//	        [-speed 1.0] [-verbose]
//	        [-cache] [-precompute] [-stats]
//
// -cache plans through the incremental engine (internal/plan/cache):
// fault sets are canonicalized up to topology symmetry and solved plans
// are memoized, so only one synthesis runs per symmetry orbit.
// -precompute warms the cache with the full fault-set lattice first and
// reports cold vs. warm strategy-assembly latency. -stats prints the
// engine's cache counters as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plan/cache"
	"btr/internal/sim"
)

func main() {
	workload := flag.String("workload", "avionics", "workload: avionics|chain|forkjoin|controlloop")
	nodes := flag.Int("nodes", 6, "number of nodes")
	topoKind := flag.String("topo", "mesh", "topology: mesh|ring|line|star|dualbus")
	f := flag.Int("f", 1, "fault bound")
	r := flag.Duration("r", 500*time.Millisecond, "requested recovery bound")
	speed := flag.Float64("speed", 1.0, "CPU speed factor")
	verbose := flag.Bool("verbose", false, "print per-mode schedules")
	useCache := flag.Bool("cache", false, "plan through the incremental engine (symmetry-canonicalized plan cache)")
	precompute := flag.Bool("precompute", false, "with -cache: warm the cache with every fault set first, report cold vs warm latency")
	stats := flag.Bool("stats", false, "with -cache: print cache statistics as JSON")
	flag.Parse()

	period := 25 * sim.Millisecond
	var g *flow.Graph
	switch *workload {
	case "avionics":
		g = flow.Avionics(period)
	case "chain":
		g = flow.Chain(3, period, sim.Millisecond, 64, flow.CritA)
	case "forkjoin":
		g = flow.ForkJoin(3, period, sim.Millisecond, 64, flow.CritB)
	case "controlloop":
		g = flow.ControlLoop(50*sim.Millisecond, flow.CritA)
	default:
		fmt.Fprintf(os.Stderr, "btrplan: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	bw := int64(20_000_000)
	prop := 50 * sim.Microsecond
	var topo *network.Topology
	switch *topoKind {
	case "mesh":
		topo = network.FullMesh(*nodes, bw, prop)
	case "ring":
		topo = network.Ring(*nodes, bw, prop)
	case "line":
		topo = network.Line(*nodes, bw, prop)
	case "star":
		topo = network.Star(*nodes, bw, prop)
	case "dualbus":
		topo = network.DualBus(*nodes, bw, prop)
	default:
		fmt.Fprintf(os.Stderr, "btrplan: unknown topology %q\n", *topoKind)
		os.Exit(2)
	}

	opts := plan.DefaultOptions(*f, sim.Time(r.Microseconds()))
	opts.Sched.Speed = *speed

	var s *plan.Strategy
	var err error
	var eng *cache.Engine
	start := time.Now()
	if *useCache {
		eng = cache.NewEngine(g, topo, opts, nil)
		if *precompute {
			n, perr := eng.Precompute()
			if perr != nil {
				fmt.Fprintf(os.Stderr, "btrplan: precompute: %v\n", perr)
				os.Exit(1)
			}
			cold := time.Since(start)
			warmStart := time.Now()
			s, err = eng.BuildStrategy()
			if err == nil {
				fmt.Printf("precomputed %d fault sets in %v; warm assembly %v (%.1fx)\n",
					n, cold, time.Since(warmStart), float64(cold)/float64(time.Since(warmStart)))
			}
		} else {
			s, err = eng.BuildStrategy()
		}
	} else {
		s, err = plan.Build(g, topo, opts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "btrplan: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("planned %q on %d-node %s in %v\n\n", g.Name, *nodes, *topoKind, time.Since(start))
	fmt.Print(s.Summary())
	if eng != nil && *stats {
		b, _ := json.MarshalIndent(eng.Stats(), "", "  ")
		fmt.Printf("\ncache stats: %s\n", b)
	}

	fmt.Println("\ntransitions (worst-case per successor mode):")
	keys := make([]string, 0, len(s.Trans))
	for k := range s.Trans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		tr := s.Trans[k]
		fmt.Printf("  -> {%s}: from {%s}, %d replicas move, %dB state, bound %v\n",
			tr.To, tr.From, len(tr.Moved), tr.StateBytes, tr.Bound)
	}

	if *verbose {
		fmt.Println("\nper-mode schedules:")
		for _, k := range append([]string{""}, keys...) {
			p := s.Plans[k]
			fmt.Printf("  mode %v:\n", p.Faults)
			var ns []network.NodeID
			for n := range p.Table.Slots {
				ns = append(ns, n)
			}
			sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
			for _, n := range ns {
				fmt.Printf("    node %d:", n)
				for _, slot := range p.Table.Slots[n] {
					fmt.Printf(" %s[%v,%v)", slot.Task, slot.Start, slot.End)
				}
				fmt.Println()
			}
		}
	}
}
