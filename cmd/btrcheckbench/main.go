// Command btrcheckbench gates CI on the tracked perf trajectory: it
// compares a freshly generated BENCH_campaign.json against the committed
// baseline and exits non-zero on regression.
//
//	btrcheckbench -baseline BENCH_campaign.json -new BENCH_new.json
//	              [-tolerance 0.20] [-min-warm-speedup 5]
//	              [-min-kernel-speedup 2] [-min-crypto-speedup 2]
//	              [-min-batch-speedup 2] [-max-warm-replans 0]
//
// Rules:
//
//   - structure always checked: every baseline scenario must still run,
//     and no trial may fail in the new bundle;
//   - ratio metrics always checked, because they are machine-independent
//     to first order: the warm-plan-cache speedup, the kernel-vs-legacy
//     throughput ratio, the cached-vs-uncached verify ratio
//     (-min-crypto-speedup) and the memo-on vs memo-off campaign ratio
//     must stay above their acceptance floors, and no scenario's share
//     of the total serial compute may grow by more than the tolerance (a
//     subsystem that got relatively slower shows up in its share no
//     matter how fast the host is). E4, the crypto-bound scenario, is
//     the fast path's canary: its share is gated without the absolute
//     slack;
//   - invariant sections always checked: every live/liveproc row within
//     R, churn clean with zero warm replans, the fault-rate sweep
//     (schema v7) non-empty with a positive knee per topology and zero
//     untolerated periods (reconciled windows) at and below each knee,
//     and the saturation section (schema v8): the ed25519 batch-verify
//     speedup over the frozen sequential sweep — same process, same
//     working set, so the ratio is machine-independent — must stay at
//     or above -min-batch-speedup for every batch size >= 16, and every
//     C9 row must carry a positive sustainable event rate with its
//     loaded recovery (flood at >= 80% of that rate) still within R;
//     the multi-fault section (schema v9) repeats the sweep invariants
//     over the extended catalog and requires every > f storm flagged,
//     confined and reconnected; the client-SLO section (schema v10)
//     must be non-empty with every row error-free and its client-visible
//     unavailability within the recorded bound;
//   - absolute wall-clock comparisons (campaign serial wall,
//     per-scenario work, plan-cache cold synthesis) are meaningful only
//     between runs on the same host at the same parallelism, so they
//     require the explicit -wall flag *and* matching GOMAXPROCS — a
//     single-core container baseline must never gate a differently
//     shaped CI runner. Bundles older than schema v2 carry no
//     gomaxprocs and always skip them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// benchFile mirrors the BENCH_campaign.json schema (bench_test.go).
// Unknown fields are ignored, so v1 bundles (no gomaxprocs, no
// plan_cache) decode with zero values.
type benchFile struct {
	Schema     string  `json:"schema"`
	Quick      bool    `json:"quick"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	HostCores  int     `json:"host_cores"`
	SerialMS   float64 `json:"serial_wall_ms"`

	PlanCache struct {
		ColdMS  float64 `json:"cold_full_synthesis_ms"`
		WarmMS  float64 `json:"warm_cache_ms"`
		Speedup float64 `json:"speedup_warm"`
	} `json:"plan_cache"`

	Kernel struct {
		EventsPerSec       float64 `json:"events_per_sec"`
		LegacyEventsPerSec float64 `json:"legacy_events_per_sec"`
		Speedup            float64 `json:"speedup"`
	} `json:"kernel"`

	Crypto struct {
		VerifySpeedup   float64 `json:"speedup_verify"`
		MemoHitRate     float64 `json:"memo_hit_rate"`
		CampaignSpeedup float64 `json:"speedup_campaign"`
		E4WorkShare     float64 `json:"e4_work_share"`
	} `json:"crypto"`

	Live []liveRow `json:"live"`

	LiveProc []liveProcRow `json:"liveproc"`

	Churn []churnRow `json:"churn"`

	FaultRate faultrateSection `json:"faultrate"`

	Saturation saturationSection `json:"saturation"`

	MultiFault multifaultSection `json:"multifault"`

	ClientSLO []clientsloRow `json:"clientslo"`

	Scenarios []benchScenario `json:"scenarios"`
}

// clientsloRow is one C11 client-SLO entry (schema v10): the verdict a
// load of epoch-aware quorum-client sessions measured from outside an
// orchestrated multi-process deployment — steady state or a ≤ f process
// fault landing mid-run. Latencies are wall-clock and machine-bound;
// the invariants (zero client-visible errors, max unavailability within
// the recorded bound) gate everywhere.
type clientsloRow struct {
	Name         string  `json:"name"`
	Topology     string  `json:"topology"`
	Fault        string  `json:"fault"`
	Sessions     int     `json:"sessions"`
	Ops          uint64  `json:"ops"`
	Errors       uint64  `json:"errors"`
	P99MS        float64 `json:"p99_ms"`
	MaxUnavailMS float64 `json:"max_unavail_ms"`
	BoundMS      float64 `json:"bound_ms"`
	Within       bool    `json:"within"`
}

// saturationSection is the throughput fast path (schema v8): the
// batch-verify speedup at the ingest batch sizes plus the C9 saturation
// probe — sustainable events/sec per topology and a recovery measurement
// under flood at >= 80% of it.
type saturationSection struct {
	BatchVerify []batchVerifyEntry  `json:"batch_verify"`
	Rows        []saturationRowFile `json:"rows"`
}

type batchVerifyEntry struct {
	BatchSize      int     `json:"batch_size"`
	BatchNsOp      float64 `json:"batch_ns_op"`
	SequentialNsOp float64 `json:"sequential_ns_op"`
	Speedup        float64 `json:"speedup"`
}

type saturationRowFile struct {
	Topology       string  `json:"topology"`
	Nodes          int     `json:"nodes"`
	F              int     `json:"f"`
	SustainableEPS float64 `json:"sustainable_eps"`
	LoadEPS        float64 `json:"load_eps"`
	LoadFraction   float64 `json:"load_fraction"`
	RecoveryMS     float64 `json:"recovery_ms"`
	BoundMS        float64 `json:"bound_ms"`
	WithinR        bool    `json:"within_r"`
	Delivered      uint64  `json:"delivered"`
	Dropped        uint64  `json:"dropped"`
	Shed           uint64  `json:"shed"`
}

// faultrateSection is the C8 high-fault-rate sweep (schema v7):
// per-(topology, λ) classification of every bad sink-period plus the
// graceful-degradation knee each topology sustains. All quantities are
// simulated-time and machine-independent, so they gate everywhere.
type faultrateSection struct {
	Rows  []faultrateRow  `json:"rows"`
	Knees []faultrateKnee `json:"knees"`
}

type faultrateRow struct {
	Topology      string  `json:"topology"`
	LambdaPerSec  float64 `json:"lambda_per_sec"`
	Arrivals      int     `json:"arrivals"`
	Tolerated     int     `json:"tolerated"`
	Detected      int     `json:"detected"`
	Untolerated   int     `json:"untolerated"`
	WorstWindowMS float64 `json:"worst_window_ms"`
	BoundWindowMS float64 `json:"bound_window_ms"`
	Reconciled    bool    `json:"reconciled"`
}

type faultrateKnee struct {
	Topology         string  `json:"topology"`
	KneeLambdaPerSec float64 `json:"knee_lambda_per_sec"`
}

// multifaultSection is the C10 multi-fault family (schema v9): the
// extended-catalog sweep — corrupt-sink, delay, skip-actuation — over
// the same (topology × λ) grid and knee locator as C8 (simulated time,
// machine-independent), plus the scripted concurrent-fault storms
// against real multi-process deployments (wall clock; only their
// invariants gate).
type multifaultSection struct {
	Rows   []faultrateRow       `json:"rows"`
	Knees  []faultrateKnee      `json:"knees"`
	Storms []multifaultStormRow `json:"storms"`
}

type multifaultStormRow struct {
	Name             string `json:"name"`
	Topology         string `json:"topology"`
	OverBudget       int    `json:"over_budget"`
	Reconciled       int    `json:"reconciled"`
	Flagged          bool   `json:"flagged"`
	Confined         bool   `json:"confined"`
	ReconnectChecked bool   `json:"reconnect_checked"`
	Reconnected      bool   `json:"reconnected"`
}

// churnRow is one C6 membership-churn entry of the bundle's churn
// section (schema v5).
type churnRow struct {
	Topology      string  `json:"topology"`
	Epochs        int     `json:"epochs"`
	WorstSwitchMS float64 `json:"worst_switch_ms"`
	BoundMS       float64 `json:"bound_r_ms"`
	WithinR       bool    `json:"within_r"`
	CleanChurn    bool    `json:"clean_churn"`
	ColdReplans   uint64  `json:"cold_replans"`
	WarmReplans   uint64  `json:"warm_replans"`
}

// liveRow is one C5 live-soak entry of the bundle's live section.
type liveRow struct {
	Topology       string  `json:"topology"`
	Nodes          int     `json:"nodes"`
	Runs           int     `json:"runs"`
	WorstRecoverMS float64 `json:"worst_recovery_ms"`
	BoundMS        float64 `json:"bound_r_ms"`
	WithinR        bool    `json:"within_r"`
}

// liveProcRow is one C7 multi-process deployment entry of the bundle's
// liveproc section (schema v6): one OS process per node over real TCP
// sockets. Reconnected is non-null only for faults whose repair must be
// visible at the transport (kill-restart, partition).
type liveProcRow struct {
	Topology    string  `json:"topology"`
	Nodes       int     `json:"nodes"`
	Fault       string  `json:"fault"`
	RecoveryMS  float64 `json:"recovery_ms"`
	BoundMS     float64 `json:"bound_r_ms"`
	WithinR     bool    `json:"within_r"`
	Reconnected *bool   `json:"reconnected"`
}

type benchScenario struct {
	ID     string  `json:"id"`
	Trials int     `json:"trials"`
	Failed int     `json:"failed"`
	WorkMS float64 `json:"work_ms"`
}

// workSlackMS is an absolute floor added to relative work comparisons so
// micro-scenarios (a few ms of work) don't fail on scheduler noise.
const workSlackMS = 25.0

// shareSlack is the absolute slack (in share points) added to the
// work-share comparison for the same reason.
const shareSlack = 0.02

// minCampaignCryptoSpeedup is the acceptance floor for the memo-on vs
// memo-off serial campaign wall ratio (same process, so the ratio is
// machine-independent): the crypto fast path must keep the campaign at
// least 1.5x faster than recomputing every signature.
const minCampaignCryptoSpeedup = 1.5

// compare returns the list of regressions (empty = pass) and the list
// of informational notices.
func compare(base, cur benchFile, tol, minWarmSpeedup, minKernelSpeedup, minCryptoSpeedup, minBatchSpeedup float64, maxWarmReplans int, wall bool) (failures, notices []string) {
	failf := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}
	notef := func(format string, args ...any) {
		notices = append(notices, fmt.Sprintf(format, args...))
	}
	if !strings.HasPrefix(cur.Schema, "btr-campaign-bench/") {
		failf("new bundle has unexpected schema %q", cur.Schema)
		return failures, notices
	}

	curByID := map[string]int{}
	for i, sc := range cur.Scenarios {
		curByID[sc.ID] = i
		if sc.Failed > 0 {
			failf("scenario %s: %d/%d trials failed", sc.ID, sc.Failed, sc.Trials)
		}
	}
	for _, sc := range base.Scenarios {
		if _, ok := curByID[sc.ID]; !ok {
			failf("scenario %s present in baseline but missing from new bundle", sc.ID)
		}
	}

	// The new bundle is always freshly generated at schema v2+, so a
	// missing/zero plan_cache section is itself a regression — never a
	// reason to waive the acceptance floor.
	if cur.PlanCache.Speedup <= 0 {
		failf("new bundle carries no plan_cache measurements")
	} else if cur.PlanCache.Speedup < minWarmSpeedup {
		failf("plan-cache warm speedup %.2fx below the %.1fx floor", cur.PlanCache.Speedup, minWarmSpeedup)
	}

	// Kernel throughput vs the frozen legacy baseline: both kernels run
	// the identical workload in the new bundle's process, so the ratio is
	// machine-independent and gates everywhere (schema v3+; older
	// baselines carry no kernel section, which does not matter — the
	// floor applies to the new bundle alone).
	if cur.Kernel.Speedup <= 0 {
		failf("new bundle carries no kernel throughput measurements")
	} else if cur.Kernel.Speedup < minKernelSpeedup {
		failf("kernel throughput %.2fx over the legacy baseline, below the %.1fx floor",
			cur.Kernel.Speedup, minKernelSpeedup)
	}

	// Crypto fast path (schema v4+): the cached-vs-uncached verify ratio
	// is same-process/same-working-set and therefore machine-independent;
	// so is the memo-on vs memo-off serial campaign ratio. Both gate
	// everywhere. The 1.5x campaign floor is the tentpole acceptance
	// criterion; the verify floor is configurable via -min-crypto-speedup.
	if cur.Crypto.VerifySpeedup <= 0 {
		failf("new bundle carries no crypto fast-path measurements")
	} else {
		if cur.Crypto.VerifySpeedup < minCryptoSpeedup {
			failf("verify memo speedup %.2fx below the %.1fx floor", cur.Crypto.VerifySpeedup, minCryptoSpeedup)
		}
		if cur.Crypto.CampaignSpeedup < minCampaignCryptoSpeedup {
			failf("memoized serial campaign only %.2fx over the uncached run, below the %.1fx floor",
				cur.Crypto.CampaignSpeedup, minCampaignCryptoSpeedup)
		}
	}

	// Live soak: every C5 topology row must have recovered within its
	// provable bound R — the wall-clock acceptance invariant. Absolute
	// recovery latencies are machine-dependent and are not compared.
	if len(cur.Live) == 0 {
		failf("new bundle carries no live soak rows")
	}
	for _, row := range cur.Live {
		if !row.WithinR {
			failf("live soak %s/%d: worst recovery %.1fms exceeded bound R=%.1fms",
				row.Topology, row.Nodes, row.WorstRecoverMS, row.BoundMS)
		}
	}

	// Multi-process deployments (schema v6): every C7 row — one OS
	// process per node over real TCP sockets — must have recovered within
	// its provable bound R, and for faults whose repair is
	// transport-visible (kill-restart, partition) every peer adjacent to
	// the victim must have re-established its link and held it at
	// horizon. Latencies are wall-clock and are not compared.
	if len(cur.LiveProc) == 0 {
		failf("new bundle carries no multi-process deployment rows")
	}
	for _, row := range cur.LiveProc {
		if !row.WithinR {
			failf("multi-process %s/%s: recovery %.1fms exceeded bound R=%.1fms",
				row.Topology, row.Fault, row.RecoveryMS, row.BoundMS)
		}
		if row.Reconnected != nil && !*row.Reconnected {
			failf("multi-process %s/%s: victim links did not re-establish on every peer",
				row.Topology, row.Fault)
		}
	}

	// Membership churn (schema v5): every C6 topology must complete all
	// three epochs with recovery within the per-epoch bound and no bad
	// output from churn itself; the epoch-switch latency (simulated time,
	// machine-independent) must stay within the epoch bound R; and warm
	// churn — replaying the same reconfiguration sequence against a warm
	// plan cache — must synthesize at most -max-warm-replans plans
	// (default zero: warm churn re-plans nothing).
	if len(cur.Churn) == 0 {
		failf("new bundle carries no membership-churn rows")
	}
	for _, row := range cur.Churn {
		if row.Epochs != 3 {
			failf("churn %s: %d epochs activated, want 3", row.Topology, row.Epochs)
		}
		if !row.WithinR {
			failf("churn %s: recovery exceeded the per-epoch bound R=%.1fms", row.Topology, row.BoundMS)
		}
		if !row.CleanChurn {
			failf("churn %s: reconfiguration alone produced bad output", row.Topology)
		}
		if row.WorstSwitchMS <= 0 || row.WorstSwitchMS > row.BoundMS {
			failf("churn %s: epoch-switch latency %.3fms outside (0, R=%.1fms]",
				row.Topology, row.WorstSwitchMS, row.BoundMS)
		}
		if row.WarmReplans > uint64(maxWarmReplans) {
			failf("churn %s: warm churn synthesized %d plan(s) (cold %d), above the %d floor",
				row.Topology, row.WarmReplans, row.ColdReplans, maxWarmReplans)
		}
	}

	// High-fault-rate regime (schema v7): every topology must sustain a
	// positive knee — some swept arrival rate at which continuous faults
	// never produce a silent miss — and every row at or below its
	// topology's knee must have zero untolerated periods and reconcile
	// its degraded windows within the bound. Rows above the knee are
	// informational: beyond the knee the conviction machinery itself can
	// starve, which is exactly what the knee locates.
	if len(cur.FaultRate.Rows) == 0 || len(cur.FaultRate.Knees) == 0 {
		failf("new bundle carries no fault-rate sweep")
	}
	kneeByTopo := map[string]float64{}
	for _, k := range cur.FaultRate.Knees {
		kneeByTopo[k.Topology] = k.KneeLambdaPerSec
		if k.KneeLambdaPerSec <= 0 {
			failf("faultrate %s: knee λ=%g — even the smallest swept rate produced a silent miss or an unreconciled window",
				k.Topology, k.KneeLambdaPerSec)
		}
	}
	for _, row := range cur.FaultRate.Rows {
		knee, ok := kneeByTopo[row.Topology]
		if !ok {
			failf("faultrate %s: row without a knee entry", row.Topology)
			continue
		}
		if row.LambdaPerSec > knee {
			continue
		}
		if row.Untolerated > 0 {
			failf("faultrate %s λ=%g (at/below knee %g): %d untolerated (silent) period(s)",
				row.Topology, row.LambdaPerSec, knee, row.Untolerated)
		}
		if !row.Reconciled {
			failf("faultrate %s λ=%g (at/below knee %g): worst degraded window %.1fms exceeded the %.1fms reconcile bound",
				row.Topology, row.LambdaPerSec, knee, row.WorstWindowMS, row.BoundWindowMS)
		}
	}

	// Throughput fast path (schema v8): the batch-vs-sequential verify
	// ratio is same-process/same-working-set and therefore
	// machine-independent; it gates everywhere. The floor applies at the
	// ingest batch shapes (>= 16); smaller probe sizes are informational.
	// The C9 rows are wall-clock, so only their invariants gate: a
	// positive sustainable rate must exist, the loaded recovery must have
	// run at >= 80% of it, and recovery must land within R.
	if len(cur.Saturation.BatchVerify) == 0 || len(cur.Saturation.Rows) == 0 {
		failf("new bundle carries no saturation section")
	}
	gatedBatches := 0
	for _, b := range cur.Saturation.BatchVerify {
		if b.BatchSize < 16 {
			continue
		}
		gatedBatches++
		if b.Speedup < minBatchSpeedup {
			failf("batch verify at batch=%d only %.2fx over the sequential sweep, below the %.1fx floor",
				b.BatchSize, b.Speedup, minBatchSpeedup)
		}
	}
	if len(cur.Saturation.BatchVerify) > 0 && gatedBatches == 0 {
		failf("saturation section carries no batch-verify entry at batch >= 16 (nothing to gate)")
	}
	for _, row := range cur.Saturation.Rows {
		if row.SustainableEPS <= 0 {
			failf("saturation %s/%d: no sustainable event rate located", row.Topology, row.Nodes)
		}
		if row.LoadFraction < 0.8 {
			failf("saturation %s/%d: loaded recovery ran at %.0f%% of the sustainable rate, below the 80%% operating point",
				row.Topology, row.Nodes, row.LoadFraction*100)
		}
		if !row.WithinR {
			failf("saturation %s/%d: recovery %.1fms under %.0f ev/s flood exceeded bound R=%.1fms",
				row.Topology, row.Nodes, row.RecoveryMS, row.LoadEPS, row.BoundMS)
		}
	}

	// Multi-fault regime (schema v9): the extended-catalog sweep obeys
	// the same invariants as the C8 sweep — positive knee per topology,
	// zero untolerated periods and reconciled windows at and below each
	// knee — and every scripted > f storm must have been flagged (some
	// node flooded a signed over-budget verdict), confined (every bad
	// interval fault-attributable) and, where a repair is
	// transport-visible, reconnected on every surviving peer.
	if len(cur.MultiFault.Rows) == 0 || len(cur.MultiFault.Knees) == 0 {
		failf("new bundle carries no multi-fault sweep")
	}
	mfKneeByTopo := map[string]float64{}
	for _, k := range cur.MultiFault.Knees {
		mfKneeByTopo[k.Topology] = k.KneeLambdaPerSec
		if k.KneeLambdaPerSec <= 0 {
			failf("multifault %s: knee λ=%g — even the smallest swept rate produced a silent miss or an unreconciled window",
				k.Topology, k.KneeLambdaPerSec)
		}
	}
	for _, row := range cur.MultiFault.Rows {
		knee, ok := mfKneeByTopo[row.Topology]
		if !ok {
			failf("multifault %s: row without a knee entry", row.Topology)
			continue
		}
		if row.LambdaPerSec > knee {
			continue
		}
		if row.Untolerated > 0 {
			failf("multifault %s λ=%g (at/below knee %g): %d untolerated (silent) period(s)",
				row.Topology, row.LambdaPerSec, knee, row.Untolerated)
		}
		if !row.Reconciled {
			failf("multifault %s λ=%g (at/below knee %g): worst degraded window %.1fms exceeded the %.1fms reconcile bound",
				row.Topology, row.LambdaPerSec, knee, row.WorstWindowMS, row.BoundWindowMS)
		}
	}
	if len(cur.MultiFault.Storms) == 0 {
		failf("new bundle carries no multi-fault storms")
	}
	for _, st := range cur.MultiFault.Storms {
		if !st.Flagged {
			failf("multifault storm %s: > f storm raised no over-budget verdict", st.Name)
		}
		if st.Reconciled == 0 {
			failf("multifault storm %s: storm drained but no node reconciled", st.Name)
		}
		if !st.Confined {
			failf("multifault storm %s: bad output outside the fault-attributable window", st.Name)
		}
		if !st.ReconnectChecked {
			failf("multifault storm %s: no transport-visible repair was reconnect-checked", st.Name)
		} else if !st.Reconnected {
			failf("multifault storm %s: a repaired victim's links did not re-establish on every peer", st.Name)
		}
	}

	// Client SLO (schema v10): the serving surface judged from outside.
	// Every row must be error-free — a ≤ f fault is the client's to ride
	// through via quorum retries, never to surface — and its longest
	// success gap must sit within the recorded bound (R plus one
	// detection period and the watchdog margin). A row must carry ops:
	// an SLO over zero operations gates nothing.
	if len(cur.ClientSLO) == 0 {
		failf("new bundle carries no client-SLO rows")
	}
	for _, row := range cur.ClientSLO {
		if row.Ops == 0 {
			failf("clientslo %s/%s: no client operations completed", row.Name, row.Fault)
		}
		if row.Errors > 0 {
			failf("clientslo %s/%s: %d client-visible error(s) across %d op(s) — retries must absorb a <= f fault",
				row.Name, row.Fault, row.Errors, row.Ops)
		}
		if row.BoundMS <= 0 {
			failf("clientslo %s/%s: no recorded unavailability bound", row.Name, row.Fault)
		} else if row.MaxUnavailMS > row.BoundMS {
			failf("clientslo %s/%s: client-visible unavailability %.1fms exceeded the %.1fms bound",
				row.Name, row.Fault, row.MaxUnavailMS, row.BoundMS)
		}
		if !row.Within {
			failf("clientslo %s/%s: row recorded within=false", row.Name, row.Fault)
		}
	}

	if base.Quick != cur.Quick {
		notef("skipping perf comparison: baseline quick=%v vs new quick=%v", base.Quick, cur.Quick)
		return failures, notices
	}

	// Work-share check (host-speed independent): each scenario's share
	// of the total serial compute must not grow beyond the tolerance.
	totalWork := func(f benchFile) float64 {
		t := 0.0
		for _, sc := range f.Scenarios {
			t += sc.WorkMS
		}
		return t
	}
	baseTotal, curTotal := totalWork(base), totalWork(cur)
	if baseTotal > 0 && curTotal > 0 {
		for _, bsc := range base.Scenarios {
			i, ok := curByID[bsc.ID]
			if !ok {
				continue
			}
			baseShare := bsc.WorkMS / baseTotal
			curShare := cur.Scenarios[i].WorkMS / curTotal
			// E4 is the crypto-bound canary: its share is gated without
			// the absolute slack, so creep back toward crypto-dominated
			// campaigns fails even when E4's share is small.
			slack := shareSlack
			if bsc.ID == "E4" {
				slack = 0
			}
			if curShare > baseShare*(1+tol)+slack {
				failf("scenario %s work share regressed >%.0f%%: %.1f%% -> %.1f%% of total serial compute",
					bsc.ID, tol*100, baseShare*100, curShare*100)
			}
		}
	}

	// Absolute wall-clock checks: same-host, same-parallelism runs only.
	if !wall {
		notef("absolute wall-clock checks disabled (pass -wall for same-host comparisons)")
		return failures, notices
	}
	if base.GOMAXPROCS <= 0 || base.GOMAXPROCS != cur.GOMAXPROCS {
		notef("skipping absolute wall-clock comparison: baseline gomaxprocs=%d vs new gomaxprocs=%d",
			base.GOMAXPROCS, cur.GOMAXPROCS)
		return failures, notices
	}
	regressed := func(name string, baseMS, curMS, slack float64) {
		if baseMS <= 0 {
			return
		}
		if curMS > baseMS*(1+tol)+slack {
			failf("%s regressed >%.0f%%: %.1fms -> %.1fms", name, tol*100, baseMS, curMS)
		}
	}
	regressed("campaign serial wall", base.SerialMS, cur.SerialMS, workSlackMS)
	regressed("plan-cache cold synthesis", base.PlanCache.ColdMS, cur.PlanCache.ColdMS, 5)
	for _, bsc := range base.Scenarios {
		if i, ok := curByID[bsc.ID]; ok {
			regressed("scenario "+bsc.ID+" work", bsc.WorkMS, cur.Scenarios[i].WorkMS, workSlackMS)
		}
	}
	return failures, notices
}

func load(path string) (benchFile, error) {
	var f benchFile
	b, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_campaign.json", "committed baseline bundle")
	newPath := flag.String("new", "BENCH_new.json", "freshly generated bundle")
	tol := flag.Float64("tolerance", 0.20, "allowed relative regression (work shares; wall clock with -wall)")
	minWarm := flag.Float64("min-warm-speedup", 5, "minimum warm-plan-cache speedup (acceptance floor)")
	minKernel := flag.Float64("min-kernel-speedup", 2, "minimum kernel throughput over the legacy baseline (acceptance floor)")
	minCrypto := flag.Float64("min-crypto-speedup", 2, "minimum cached-vs-uncached verify speedup (acceptance floor)")
	minBatch := flag.Float64("min-batch-speedup", 2, "minimum batch-vs-sequential verify speedup at batch >= 16 (acceptance floor)")
	maxWarmReplans := flag.Int("max-warm-replans", 0, "maximum plan syntheses a warm churn replay may perform (acceptance ceiling)")
	wall := flag.Bool("wall", false, "also gate absolute wall-clock times (same-host comparisons only)")
	flag.Parse()

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btrcheckbench: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btrcheckbench: %v\n", err)
		os.Exit(2)
	}
	failures, notices := compare(base, cur, *tol, *minWarm, *minKernel, *minCrypto, *minBatch, *maxWarmReplans, *wall)
	for _, n := range notices {
		fmt.Printf("note: %s\n", n)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Printf("FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	batchAt := func(size int) float64 {
		for _, b := range cur.Saturation.BatchVerify {
			if b.BatchSize == size {
				return b.Speedup
			}
		}
		return 0
	}
	fmt.Printf("bench check OK: %d scenario(s), serial %.0fms, plan-cache warm %.2fx, kernel %.2fx, verify memo %.2fx, crypto campaign %.2fx (E4 share %.1f%%), batch verify %.2fx@16, %d live row(s) within R, %d multi-process row(s) within R, %d churn row(s) within R (warm replans 0), %d fault-rate row(s) clean at/below %d knee(s), %d saturation row(s) within R under load, %d multifault row(s) + %d storm(s) flagged+confined, %d client-SLO row(s) error-free within bound\n",
		len(cur.Scenarios), cur.SerialMS, cur.PlanCache.Speedup, cur.Kernel.Speedup,
		cur.Crypto.VerifySpeedup, cur.Crypto.CampaignSpeedup, cur.Crypto.E4WorkShare*100, batchAt(16),
		len(cur.Live), len(cur.LiveProc), len(cur.Churn), len(cur.FaultRate.Rows), len(cur.FaultRate.Knees),
		len(cur.Saturation.Rows), len(cur.MultiFault.Rows), len(cur.MultiFault.Storms), len(cur.ClientSLO))
}
