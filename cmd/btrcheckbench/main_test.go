package main

import (
	"strings"
	"testing"
)

func bundle(gomaxprocs int, serial float64, warmSpeedup float64) benchFile {
	var f benchFile
	f.Schema = "btr-campaign-bench/v3"
	f.GOMAXPROCS = gomaxprocs
	f.HostCores = gomaxprocs
	f.SerialMS = serial
	f.PlanCache.ColdMS = 10
	f.PlanCache.WarmMS = 0.4
	f.PlanCache.Speedup = warmSpeedup
	f.Kernel.EventsPerSec = 10e6
	f.Kernel.LegacyEventsPerSec = 4e6
	f.Kernel.Speedup = 2.5
	f.Crypto.VerifySpeedup = 50
	f.Crypto.MemoHitRate = 0.9
	f.Crypto.CampaignSpeedup = 2.2
	f.Crypto.E4WorkShare = 0.2
	f.Live = []liveRow{{Topology: "full-mesh", Nodes: 6, Runs: 2, WorstRecoverMS: 210, BoundMS: 600, WithinR: true}}
	reconnected := true
	f.LiveProc = []liveProcRow{
		{Topology: "full-mesh", Nodes: 4, Fault: "corrupt-all", RecoveryMS: 1000, BoundMS: 2100, WithinR: true},
		{Topology: "full-mesh", Nodes: 4, Fault: "kill-restart", RecoveryMS: 1500, BoundMS: 2100, WithinR: true, Reconnected: &reconnected},
	}
	f.Churn = []churnRow{{Topology: "full-mesh", Epochs: 3, WorstSwitchMS: 25, BoundMS: 103,
		WithinR: true, CleanChurn: true, ColdReplans: 4, WarmReplans: 0}}
	f.FaultRate = faultrateSection{
		Rows: []faultrateRow{
			{Topology: "full-mesh", LambdaPerSec: 1, Arrivals: 2, WorstWindowMS: 0, BoundWindowMS: 500, Reconciled: true},
			{Topology: "full-mesh", LambdaPerSec: 4, Arrivals: 13, Detected: 3, WorstWindowMS: 99, BoundWindowMS: 500, Reconciled: true},
			{Topology: "full-mesh", LambdaPerSec: 8, Arrivals: 22, Detected: 4, Untolerated: 1, WorstWindowMS: 319, BoundWindowMS: 500, Reconciled: true},
		},
		Knees: []faultrateKnee{{Topology: "full-mesh", KneeLambdaPerSec: 4}},
	}
	f.Saturation = saturationSection{
		BatchVerify: []batchVerifyEntry{
			{BatchSize: 16, BatchNsOp: 40000, SequentialNsOp: 104000, Speedup: 2.6},
			{BatchSize: 64, BatchNsOp: 36000, SequentialNsOp: 106000, Speedup: 2.95},
		},
		Rows: []saturationRowFile{{
			Topology: "full-mesh", Nodes: 8, F: 2,
			SustainableEPS: 35840, LoadEPS: 28700, LoadFraction: 0.8,
			RecoveryMS: 300, BoundMS: 603, WithinR: true,
			Delivered: 500000, Dropped: 0, Shed: 0,
		}},
	}
	f.MultiFault = multifaultSection{
		Rows: []faultrateRow{
			{Topology: "full-mesh", LambdaPerSec: 1, Arrivals: 3, Tolerated: 1, WorstWindowMS: 0, BoundWindowMS: 500, Reconciled: true},
			{Topology: "full-mesh", LambdaPerSec: 4, Arrivals: 11, Detected: 2, WorstWindowMS: 120, BoundWindowMS: 500, Reconciled: true},
			{Topology: "full-mesh", LambdaPerSec: 8, Arrivals: 24, Detected: 5, Untolerated: 1, WorstWindowMS: 301, BoundWindowMS: 500, Reconciled: true},
		},
		Knees: []faultrateKnee{{Topology: "full-mesh", KneeLambdaPerSec: 4}},
		Storms: []multifaultStormRow{{
			Name: "kill-restart+partition", Topology: "full-mesh",
			OverBudget: 6, Reconciled: 6, Flagged: true, Confined: true,
			ReconnectChecked: true, Reconnected: true,
		}},
	}
	f.ClientSLO = []clientsloRow{
		{Name: "steady", Topology: "full-mesh", Fault: "none", Sessions: 8,
			Ops: 1200, Errors: 0, P99MS: 16, MaxUnavailMS: 40, BoundMS: 3200, Within: true},
		{Name: "kill-restart", Topology: "full-mesh", Fault: "kill-restart", Sessions: 8,
			Ops: 900, Errors: 0, P99MS: 260, MaxUnavailMS: 2100, BoundMS: 3200, Within: true},
	}
	f.Scenarios = []benchScenario{
		{ID: "E1", Trials: 6, WorkMS: 1000},
		{ID: "C4", Trials: 7, WorkMS: 100},
	}
	return f
}

func hasFailure(fails []string, substr string) bool {
	for _, f := range fails {
		if strings.Contains(f, substr) {
			return true
		}
	}
	return false
}

func TestCompareCleanRunPasses(t *testing.T) {
	fails, _ := compare(bundle(4, 10000, 20), bundle(4, 10500, 21), 0.20, 5, 2, 2, 2, 0, true)
	if len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}
}

func TestCompareFlagsWallRegression(t *testing.T) {
	fails, _ := compare(bundle(4, 10000, 20), bundle(4, 13000, 20), 0.20, 5, 2, 2, 2, 0, true)
	if !hasFailure(fails, "serial wall") {
		t.Fatalf("30%% serial regression not flagged: %v", fails)
	}
}

func TestCompareFlagsScenarioWorkRegression(t *testing.T) {
	cur := bundle(4, 10000, 20)
	cur.Scenarios[0].WorkMS = 1400 // +40% and beyond the absolute slack
	fails, _ := compare(bundle(4, 10000, 20), cur, 0.20, 5, 2, 2, 2, 0, true)
	if !hasFailure(fails, "scenario E1") {
		t.Fatalf("scenario work regression not flagged: %v", fails)
	}
}

func TestCompareSkipsTimingAcrossCoreCounts(t *testing.T) {
	// A 1-core container baseline must not gate a 4-core CI runner.
	fails, notices := compare(bundle(1, 5000, 20), bundle(4, 30000, 20), 0.20, 5, 2, 2, 2, 0, true)
	if len(fails) != 0 {
		t.Fatalf("cross-core timing comparison should be skipped, got %v", fails)
	}
	if len(notices) == 0 || !strings.Contains(notices[0], "gomaxprocs") {
		t.Fatalf("expected a gomaxprocs notice, got %v", notices)
	}
}

func TestCompareV1BaselineSkipsTiming(t *testing.T) {
	base := bundle(0, 17000, 0) // v1 bundles decode with gomaxprocs 0
	base.Schema = "btr-campaign-bench/v1"
	fails, notices := compare(base, bundle(4, 99999, 20), 0.20, 5, 2, 2, 2, 0, true)
	if len(fails) != 0 {
		t.Fatalf("v1 baseline must skip timing, got %v", fails)
	}
	if len(notices) == 0 {
		t.Fatal("expected a skip notice for the v1 baseline")
	}
}

func TestCompareEnforcesWarmSpeedupFloor(t *testing.T) {
	fails, _ := compare(bundle(4, 10000, 20), bundle(4, 10000, 3.5), 0.20, 5, 2, 2, 2, 0, false)
	if !hasFailure(fails, "warm speedup") {
		t.Fatalf("speedup floor not enforced: %v", fails)
	}
	// A new bundle with no plan_cache section must fail, not silently
	// waive the floor.
	fails, _ = compare(bundle(4, 10000, 20), bundle(4, 10000, 0), 0.20, 5, 2, 2, 2, 0, false)
	if !hasFailure(fails, "no plan_cache") {
		t.Fatalf("missing plan_cache section not flagged: %v", fails)
	}
}

func TestCompareFlagsFailedTrialsAndMissingScenarios(t *testing.T) {
	cur := bundle(4, 10000, 20)
	cur.Scenarios[1].Failed = 2
	cur.Scenarios = cur.Scenarios[:2]
	base := bundle(4, 10000, 20)
	base.Scenarios = append(base.Scenarios, benchScenario{ID: "E9", Trials: 14, WorkMS: 900})
	fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false)
	if !hasFailure(fails, "trials failed") {
		t.Fatalf("failed trials not flagged: %v", fails)
	}
	if !hasFailure(fails, "missing from new bundle") {
		t.Fatalf("missing scenario not flagged: %v", fails)
	}
}

func TestCompareWallDisabledByDefault(t *testing.T) {
	// Without -wall, a uniform absolute slowdown (same shares) passes —
	// absolute times are not comparable across hosts.
	fails, notices := compare(bundle(4, 10000, 20), bundle(4, 30000, 20), 0.20, 5, 2, 2, 2, 0, false)
	if len(fails) != 0 {
		t.Fatalf("wall checks should be off by default: %v", fails)
	}
	if len(notices) == 0 || !strings.Contains(notices[0], "-wall") {
		t.Fatalf("expected a -wall notice, got %v", notices)
	}
}

func TestCompareFlagsWorkShareRegressionAcrossHosts(t *testing.T) {
	// A scenario that got *relatively* slower is flagged even when the
	// hosts (and gomaxprocs) differ and wall checks are off: shares are
	// machine-independent.
	cur := bundle(8, 99999, 20)
	cur.Scenarios[1].WorkMS = 500 // C4: 100/1100 -> 500/1500 of total
	fails, _ := compare(bundle(1, 10000, 20), cur, 0.20, 5, 2, 2, 2, 0, false)
	if !hasFailure(fails, "scenario C4 work share") {
		t.Fatalf("work-share regression not flagged: %v", fails)
	}
}

func TestCompareEnforcesKernelSpeedupFloor(t *testing.T) {
	cur := bundle(4, 10000, 20)
	cur.Kernel.Speedup = 1.4
	fails, _ := compare(bundle(4, 10000, 20), cur, 0.20, 5, 2, 2, 2, 0, false)
	if !hasFailure(fails, "kernel throughput") {
		t.Fatalf("kernel speedup floor not enforced: %v", fails)
	}
	cur.Kernel.Speedup = 0
	fails, _ = compare(bundle(4, 10000, 20), cur, 0.20, 5, 2, 2, 2, 0, false)
	if !hasFailure(fails, "no kernel throughput") {
		t.Fatalf("missing kernel section not flagged: %v", fails)
	}
}

func TestCompareEnforcesCryptoFloors(t *testing.T) {
	cur := bundle(4, 10000, 20)
	cur.Crypto.VerifySpeedup = 1.3
	fails, _ := compare(bundle(4, 10000, 20), cur, 0.20, 5, 2, 2, 2, 0, false)
	if !hasFailure(fails, "verify memo speedup") {
		t.Fatalf("verify memo floor not enforced: %v", fails)
	}
	cur = bundle(4, 10000, 20)
	cur.Crypto.CampaignSpeedup = 1.1
	fails, _ = compare(bundle(4, 10000, 20), cur, 0.20, 5, 2, 2, 2, 0, false)
	if !hasFailure(fails, "uncached run") {
		t.Fatalf("crypto campaign floor not enforced: %v", fails)
	}
	cur = bundle(4, 10000, 20)
	cur.Crypto.VerifySpeedup = 0
	fails, _ = compare(bundle(4, 10000, 20), cur, 0.20, 5, 2, 2, 2, 0, false)
	if !hasFailure(fails, "no crypto fast-path") {
		t.Fatalf("missing crypto section not flagged: %v", fails)
	}
	// A v3 baseline (no crypto section) still gates the new bundle.
	base := bundle(4, 10000, 20)
	base.Crypto.VerifySpeedup = 0
	base.Crypto.CampaignSpeedup = 0
	fails, _ = compare(base, bundle(4, 10000, 20), 0.20, 5, 2, 2, 2, 0, false)
	if len(fails) != 0 {
		t.Fatalf("v3 baseline should not fail a healthy v4 bundle: %v", fails)
	}
}

func TestCompareGatesE4WorkShareTightly(t *testing.T) {
	// E4's share grows from 20% to 26% — past 20% relative growth but
	// within the generic 2-point absolute slack. The crypto canary gate
	// must still flag it.
	base := bundle(4, 10000, 20)
	base.Scenarios = append(base.Scenarios, benchScenario{ID: "E4", Trials: 3, WorkMS: 275})
	cur := bundle(4, 10000, 20)
	cur.Scenarios = append(cur.Scenarios, benchScenario{ID: "E4", Trials: 3, WorkMS: 370})
	fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false)
	if !hasFailure(fails, "scenario E4 work share") {
		t.Fatalf("E4 share creep not flagged: %v", fails)
	}
}

func TestCompareEnforcesLiveWithinR(t *testing.T) {
	cur := bundle(4, 10000, 20)
	cur.Live[0] = liveRow{Topology: "ring", Nodes: 8, Runs: 2, WorstRecoverMS: 950, BoundMS: 600, WithinR: false}
	fails, _ := compare(bundle(4, 10000, 20), cur, 0.20, 5, 2, 2, 2, 0, false)
	if !hasFailure(fails, "live soak ring/8") {
		t.Fatalf("live bound violation not flagged: %v", fails)
	}
	cur.Live = nil
	fails, _ = compare(bundle(4, 10000, 20), cur, 0.20, 5, 2, 2, 2, 0, false)
	if !hasFailure(fails, "no live soak") {
		t.Fatalf("missing live section not flagged: %v", fails)
	}
}

func TestCompareGatesLiveProc(t *testing.T) {
	base := bundle(4, 10000, 20)
	// Missing liveproc section fails: v6 bundles must carry the
	// multi-process soak.
	cur := bundle(4, 10000, 20)
	cur.LiveProc = nil
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "no multi-process deployment rows") {
		t.Fatalf("missing liveproc rows not flagged: %v", fails)
	}
	// A recovery beyond the bound fails.
	cur = bundle(4, 10000, 20)
	cur.LiveProc[0].WithinR = false
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "multi-process full-mesh/corrupt-all") {
		t.Fatalf("liveproc bound violation not flagged: %v", fails)
	}
	// A transport-visible repair that never re-established fails; a null
	// verdict (fault with no reconnect obligation) does not.
	cur = bundle(4, 10000, 20)
	broken := false
	cur.LiveProc[1].Reconnected = &broken
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "did not re-establish") {
		t.Fatalf("failed reconnect not flagged: %v", fails)
	}
	cur.LiveProc[1].Reconnected = nil
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); len(fails) != 0 {
		t.Fatalf("null reconnect verdict must not gate: %v", fails)
	}
}

func TestCompareGatesFaultRate(t *testing.T) {
	base := bundle(4, 10000, 20)
	// Missing faultrate section fails: v7 bundles must carry the sweep.
	cur := bundle(4, 10000, 20)
	cur.FaultRate = faultrateSection{}
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "no fault-rate sweep") {
		t.Fatalf("missing faultrate section not flagged: %v", fails)
	}
	// A topology whose knee collapsed to zero fails.
	cur = bundle(4, 10000, 20)
	cur.FaultRate.Knees[0].KneeLambdaPerSec = 0
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "knee λ=0") {
		t.Fatalf("zero knee not flagged: %v", fails)
	}
	// A silent miss at/below the knee fails; the same count above the
	// knee is informational only.
	cur = bundle(4, 10000, 20)
	cur.FaultRate.Rows[1].Untolerated = 2
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "untolerated (silent)") {
		t.Fatalf("below-knee silent miss not flagged: %v", fails)
	}
	cur = bundle(4, 10000, 20)
	cur.FaultRate.Rows[2].Untolerated = 5 // λ=8 > knee 4: above-knee rows may miss
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); len(fails) != 0 {
		t.Fatalf("above-knee row must not gate: %v", fails)
	}
	// An unreconciled degraded window at/below the knee fails.
	cur = bundle(4, 10000, 20)
	cur.FaultRate.Rows[1].Reconciled = false
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "reconcile bound") {
		t.Fatalf("below-knee unreconciled window not flagged: %v", fails)
	}
	// A row whose topology has no knee entry fails.
	cur = bundle(4, 10000, 20)
	cur.FaultRate.Rows = append(cur.FaultRate.Rows, faultrateRow{Topology: "ring", LambdaPerSec: 1, Reconciled: true})
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "without a knee entry") {
		t.Fatalf("knee-less row not flagged: %v", fails)
	}
}

func TestCompareGatesSaturation(t *testing.T) {
	base := bundle(4, 10000, 20)
	// Missing saturation section fails: v8 bundles must carry it.
	cur := bundle(4, 10000, 20)
	cur.Saturation = saturationSection{}
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "no saturation section") {
		t.Fatalf("missing saturation section not flagged: %v", fails)
	}
	// A batch-verify entry at batch >= 16 below the floor fails; a small
	// probe size below the floor is informational only.
	cur = bundle(4, 10000, 20)
	cur.Saturation.BatchVerify[0].Speedup = 1.4
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "batch verify at batch=16") {
		t.Fatalf("batch-verify floor not enforced: %v", fails)
	}
	cur = bundle(4, 10000, 20)
	cur.Saturation.BatchVerify = append(cur.Saturation.BatchVerify, batchVerifyEntry{BatchSize: 4, Speedup: 1.1})
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); len(fails) != 0 {
		t.Fatalf("sub-16 batch entry must not gate: %v", fails)
	}
	// A section with only sub-16 entries has nothing to gate and fails.
	cur = bundle(4, 10000, 20)
	cur.Saturation.BatchVerify = []batchVerifyEntry{{BatchSize: 8, Speedup: 1.8}}
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "no batch-verify entry at batch >= 16") {
		t.Fatalf("gate-less batch list not flagged: %v", fails)
	}
	// A raised floor is honored.
	cur = bundle(4, 10000, 20)
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2.9, 0, false); !hasFailure(fails, "batch verify at batch=16") {
		t.Fatalf("raised batch floor not honored: %v", fails)
	}
	// A collapsed sustainable rate, an under-80% operating point, and an
	// out-of-bound loaded recovery all fail.
	cur = bundle(4, 10000, 20)
	cur.Saturation.Rows[0].SustainableEPS = 0
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "no sustainable event rate") {
		t.Fatalf("zero sustainable rate not flagged: %v", fails)
	}
	cur = bundle(4, 10000, 20)
	cur.Saturation.Rows[0].LoadFraction = 0.5
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "below the 80% operating point") {
		t.Fatalf("under-load recovery not flagged: %v", fails)
	}
	cur = bundle(4, 10000, 20)
	cur.Saturation.Rows[0].WithinR = false
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "exceeded bound R") {
		t.Fatalf("loaded-recovery bound violation not flagged: %v", fails)
	}
}

func TestCompareGatesMultiFault(t *testing.T) {
	base := bundle(4, 10000, 20)
	// Missing multifault section fails: v9 bundles must carry it.
	cur := bundle(4, 10000, 20)
	cur.MultiFault = multifaultSection{}
	fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false)
	if !hasFailure(fails, "no multi-fault sweep") {
		t.Fatalf("missing multifault sweep not flagged: %v", fails)
	}
	if !hasFailure(fails, "no multi-fault storms") {
		t.Fatalf("missing multifault storms not flagged: %v", fails)
	}
	// The sweep obeys the fault-rate invariants: a collapsed knee fails.
	cur = bundle(4, 10000, 20)
	cur.MultiFault.Knees[0].KneeLambdaPerSec = 0
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "multifault full-mesh: knee λ=0") {
		t.Fatalf("zero multifault knee not flagged: %v", fails)
	}
	// A silent miss at/below the knee fails; above the knee it is
	// informational only.
	cur = bundle(4, 10000, 20)
	cur.MultiFault.Rows[1].Untolerated = 1
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "multifault full-mesh λ=4") {
		t.Fatalf("below-knee multifault silent miss not flagged: %v", fails)
	}
	cur = bundle(4, 10000, 20)
	cur.MultiFault.Rows[2].Untolerated = 9 // λ=8 > knee 4
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); len(fails) != 0 {
		t.Fatalf("above-knee multifault row must not gate: %v", fails)
	}
	// An unreconciled window at/below the knee fails.
	cur = bundle(4, 10000, 20)
	cur.MultiFault.Rows[0].Reconciled = false
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "multifault full-mesh λ=1") {
		t.Fatalf("below-knee unreconciled multifault window not flagged: %v", fails)
	}
	// Storm invariants: silent (unflagged), unreconciled, unconfined,
	// unchecked and unreconnected storms all fail.
	for name, mutate := range map[string]func(*multifaultStormRow){
		"raised no over-budget verdict":  func(s *multifaultStormRow) { s.Flagged = false },
		"no node reconciled":             func(s *multifaultStormRow) { s.Reconciled = 0 },
		"outside the fault-attributable": func(s *multifaultStormRow) { s.Confined = false },
		"was reconnect-checked":          func(s *multifaultStormRow) { s.ReconnectChecked = false },
		"did not re-establish":           func(s *multifaultStormRow) { s.Reconnected = false },
	} {
		cur = bundle(4, 10000, 20)
		mutate(&cur.MultiFault.Storms[0])
		if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, name) {
			t.Fatalf("storm violation %q not flagged: %v", name, fails)
		}
	}
}

func TestCompareGatesClientSLO(t *testing.T) {
	base := bundle(4, 10000, 20)
	// Missing clientslo section fails: v10 bundles must carry it.
	cur := bundle(4, 10000, 20)
	cur.ClientSLO = nil
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "no client-SLO rows") {
		t.Fatalf("missing clientslo rows not flagged: %v", fails)
	}
	// A row with zero completed operations gates nothing and fails.
	cur = bundle(4, 10000, 20)
	cur.ClientSLO[0].Ops = 0
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "no client operations") {
		t.Fatalf("zero-op clientslo row not flagged: %v", fails)
	}
	// Any client-visible error fails — the steady row's error-free p99 in
	// particular.
	cur = bundle(4, 10000, 20)
	cur.ClientSLO[0].Errors = 3
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "client-visible error") {
		t.Fatalf("clientslo errors not flagged: %v", fails)
	}
	// Unavailability beyond the recorded bound fails, as does a missing
	// bound (nothing to judge against).
	cur = bundle(4, 10000, 20)
	cur.ClientSLO[1].MaxUnavailMS = 5000
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "exceeded the") {
		t.Fatalf("clientslo unavailability breach not flagged: %v", fails)
	}
	cur = bundle(4, 10000, 20)
	cur.ClientSLO[1].BoundMS = 0
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "no recorded unavailability bound") {
		t.Fatalf("missing clientslo bound not flagged: %v", fails)
	}
	// A row the emitter itself judged out of SLO fails even if the
	// mirrored numbers look consistent.
	cur = bundle(4, 10000, 20)
	cur.ClientSLO[1].Within = false
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "within=false") {
		t.Fatalf("clientslo within=false not flagged: %v", fails)
	}
}

func TestCompareGatesChurn(t *testing.T) {
	base := bundle(4, 10000, 20)
	// Missing churn section fails.
	cur := bundle(4, 10000, 20)
	cur.Churn = nil
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "no membership-churn rows") {
		t.Fatalf("missing churn rows not flagged: %v", fails)
	}
	// A warm replay that synthesized plans fails at the default ceiling.
	cur = bundle(4, 10000, 20)
	cur.Churn[0].WarmReplans = 2
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "warm churn synthesized") {
		t.Fatalf("warm replans not gated: %v", fails)
	}
	// ...but passes under a raised ceiling.
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 2, false); hasFailure(fails, "warm churn synthesized") {
		t.Fatalf("raised warm-replan ceiling not honored: %v", fails)
	}
	// Out-of-bound recovery, dirty churn, missing epochs, and a switch
	// latency beyond R all fail.
	cur = bundle(4, 10000, 20)
	cur.Churn[0].WithinR = false
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "exceeded the per-epoch bound") {
		t.Fatalf("within-R violation not gated: %v", fails)
	}
	cur = bundle(4, 10000, 20)
	cur.Churn[0].CleanChurn = false
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "produced bad output") {
		t.Fatalf("dirty churn not gated: %v", fails)
	}
	cur = bundle(4, 10000, 20)
	cur.Churn[0].Epochs = 2
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "epochs activated") {
		t.Fatalf("missing epoch not gated: %v", fails)
	}
	cur = bundle(4, 10000, 20)
	cur.Churn[0].WorstSwitchMS = 500
	if fails, _ := compare(base, cur, 0.20, 5, 2, 2, 2, 0, false); !hasFailure(fails, "epoch-switch latency") {
		t.Fatalf("switch latency beyond R not gated: %v", fails)
	}
}
