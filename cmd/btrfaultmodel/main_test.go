package main

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// goodModel builds a minimal matrix source covering the full required
// catalog, citing the given test name everywhere.
func goodModel(cite string) string {
	var b strings.Builder
	b.WriteString("# model\n\n| behavior | ≤ f active | > f transient | > f sustained |\n|---|---|---|---|\n")
	for _, beh := range requiredBehaviors() {
		b.WriteString("| `" + beh + "` | tolerated (`" + cite + "`) | detected (`bench:faultrate`) | untolerated |\n")
	}
	return b.String()
}

func verify(t *testing.T, src string, tests map[string]bool) []string {
	t.Helper()
	rows, err := parseModel(src)
	if err != nil {
		t.Fatal(err)
	}
	return verifyModel("model.md", rows, tests, map[string]bool{"faultrate": true})
}

func TestVerifyFullCatalogPasses(t *testing.T) {
	fails := verify(t, goodModel("TestSomething"), map[string]bool{"TestSomething": true})
	if len(fails) != 0 {
		t.Fatalf("clean model failed: %v", fails)
	}
}

// TestVerifyFailsOnNonexistentCitation is the acceptance pin: a matrix
// citing a test that exists in no test binary must fail the check.
func TestVerifyFailsOnNonexistentCitation(t *testing.T) {
	fails := verify(t, goodModel("TestDoesNotExist"), map[string]bool{"TestSomething": true})
	if len(fails) == 0 {
		t.Fatal("nonexistent citation accepted")
	}
	if !strings.Contains(fails[0], "TestDoesNotExist") {
		t.Fatalf("failure does not name the missing test: %v", fails[0])
	}
}

func TestVerifyFailsOnMissingRow(t *testing.T) {
	src := goodModel("TestSomething")
	src = strings.Replace(src, "| `crash` |", "| `krash` |", 1)
	fails := verify(t, src, map[string]bool{"TestSomething": true})
	found := false
	for _, f := range fails {
		if strings.Contains(f, `"crash"`) && strings.Contains(f, "no matrix row") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing crash row not flagged: %v", fails)
	}
}

func TestVerifyFailsOnUncitedClaim(t *testing.T) {
	src := goodModel("TestSomething")
	src = strings.Replace(src, "tolerated (`TestSomething`)", "tolerated", 1)
	fails := verify(t, src, map[string]bool{"TestSomething": true})
	if len(fails) == 0 || !strings.Contains(fails[0], "without citing") {
		t.Fatalf("uncited tolerated claim not flagged: %v", fails)
	}
}

func TestVerifyFailsOnMissingBenchSection(t *testing.T) {
	rows, err := parseModel(goodModel("TestSomething"))
	if err != nil {
		t.Fatal(err)
	}
	fails := verifyModel("model.md", rows, map[string]bool{"TestSomething": true}, map[string]bool{})
	if len(fails) == 0 || !strings.Contains(fails[0], "bench:faultrate") {
		t.Fatalf("missing bench section not flagged: %v", fails)
	}
}

func TestParseModelRejectsBadCells(t *testing.T) {
	for _, src := range []string{
		"| behavior | a | b | c |\n|---|---|---|---|\n| `x` | maybe | detected | untolerated |\n",
		"| behavior | a | b | c |\n|---|---|---|---|\n| x | tolerated | detected | untolerated |\n",
		"| behavior | a | b | c |\n|---|---|---|---|\n| `x` | tolerated | detected |\n",
		"no table at all\n",
	} {
		if _, err := parseModel(src); err == nil {
			t.Errorf("malformed model accepted:\n%s", src)
		}
	}
}

// repoTestNames scans the repository's _test.go sources for test
// function declarations — a hermetic stand-in for `go test -list` that
// keeps this test independent of compilation.
func repoTestNames(t *testing.T, root string) map[string]bool {
	t.Helper()
	re := regexp.MustCompile(`(?m)^func ((?:Test|Fuzz|Benchmark|Example)\w*)\(`)
	names := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range re.FindAllStringSubmatch(string(b), -1) {
			names[m[1]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestCommittedModelVerifies checks the real FAULT_MODEL.md against the
// real test inventory and the committed bench bundle: full catalog
// coverage, every citation resolvable. This is the same check CI runs
// via `btrfaultmodel -check`, pinned into `go test ./...`.
func TestCommittedModelVerifies(t *testing.T) {
	src, err := os.ReadFile("../../FAULT_MODEL.md")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := parseModel(string(src))
	if err != nil {
		t.Fatal(err)
	}
	sections, err := benchSections("../../BENCH_campaign.json")
	if err != nil {
		t.Fatal(err)
	}
	fails := verifyModel("FAULT_MODEL.md", rows, repoTestNames(t, "../.."), sections)
	for _, f := range fails {
		t.Error(f)
	}
}

func TestSlugify(t *testing.T) {
	for _, c := range []struct{ in, want string }{
		{"Fault model", "fault-model"},
		{"High-fault-rate regime (C8)", "high-fault-rate-regime-c8"},
		{"`cmd/btrlive` flags", "cmdbtrlive-flags"},
		{"Schema v1 → v7", "schema-v1--v7"},
	} {
		if got := slugify(c.in); got != c.want {
			t.Errorf("slugify(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCheckLinks(t *testing.T) {
	dir := t.TempDir()
	other := filepath.Join(dir, "other.md")
	os.WriteFile(other, []byte("# Top\n\n## Real heading\n"), 0o644)
	doc := filepath.Join(dir, "doc.md")
	os.WriteFile(doc, []byte(strings.Join([]string{
		"# Doc",
		"[ok file](other.md)",
		"[ok anchor](other.md#real-heading)",
		"[ok self](#doc)",
		"[external](https://example.com/x#y)",
		"[escapes the tree](../../actions/workflows/ci.yml/badge.svg)",
		"```",
		"[not a link in a fence](missing.md)",
		"```",
		"[broken file](missing.md)",
		"[broken anchor](other.md#no-such)",
	}, "\n")), 0o644)
	fails, err := checkLinks(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 2 {
		t.Fatalf("want 2 failures, got %v", fails)
	}
	if !strings.Contains(fails[0], "missing.md") || !strings.Contains(fails[1], "no-such") {
		t.Fatalf("unexpected failures: %v", fails)
	}
}
