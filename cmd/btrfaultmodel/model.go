package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"

	"btr/internal/faultrate"
	"btr/internal/live"
)

// regimes are the matrix columns, in order.
var regimes = [3]string{"≤ f active", "> f transient", "> f sustained"}

// requiredBehaviors is the full catalog the matrix must cover: the
// fault-rate arrival catalog, the remaining simulated adversary
// behaviors, and the process-level faults only a live deployment has
// (live.ProcFaultKinds, minus the in-process duplicates, "flood"
// normalized to the adversary's "bogus-flood" and "none" dropped — a
// fault-free run needs no fault-model row).
func requiredBehaviors() []string {
	seen := map[string]bool{}
	var out []string
	add := func(names ...string) {
		for _, n := range names {
			if n == "none" {
				continue
			}
			if n == "flood" {
				n = "bogus-flood"
			}
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	add(faultrate.Catalog()...)
	add("corrupt-sink", "delay", "bogus-flood", "skip-actuation")
	add(live.ProcFaultKinds...)
	return out
}

// cell is one parsed matrix cell: a classification plus its citations.
type cell struct {
	Class     string // tolerated | detected | untolerated
	Citations []string
}

// modelRow is one parsed matrix row.
type modelRow struct {
	Behavior string
	Line     int
	Cells    [3]cell
}

var citationRE = regexp.MustCompile("`([^`]+)`")

// parseModel extracts the fault-model matrix from the markdown source:
// the first table whose header row starts with "| behavior |". Each data
// row is `| `behavior` | cell | cell | cell |`; a cell is a
// classification word followed by backtick-quoted citations.
func parseModel(src string) ([]modelRow, error) {
	lines := strings.Split(src, "\n")
	var rows []modelRow
	inTable := false
	for i, line := range lines {
		t := strings.TrimSpace(line)
		if !inTable {
			if strings.HasPrefix(strings.ToLower(t), "| behavior |") {
				inTable = true
			}
			continue
		}
		if !strings.HasPrefix(t, "|") {
			break
		}
		cells := splitTableRow(t)
		if len(cells) > 0 && strings.HasPrefix(cells[0], "---") {
			continue // separator row
		}
		if len(cells) != 4 {
			return nil, fmt.Errorf("line %d: matrix row has %d cells, want 4 (behavior + 3 regimes)", i+1, len(cells))
		}
		name := citationRE.FindStringSubmatch(cells[0])
		if name == nil {
			return nil, fmt.Errorf("line %d: behavior cell %q carries no backtick-quoted name", i+1, cells[0])
		}
		row := modelRow{Behavior: name[1], Line: i + 1}
		for j, c := range cells[1:] {
			class := strings.ToLower(strings.Fields(c)[0])
			switch class {
			case "tolerated", "detected", "untolerated":
			default:
				return nil, fmt.Errorf("line %d: %s cell %q does not open with tolerated/detected/untolerated", i+1, regimes[j], c)
			}
			row.Cells[j] = cell{Class: class, Citations: citations(c)}
		}
		rows = append(rows, row)
	}
	if !inTable {
		return nil, fmt.Errorf("no fault-model matrix found (a table whose header starts with \"| behavior |\")")
	}
	return rows, nil
}

// splitTableRow splits a markdown table line into trimmed cells.
func splitTableRow(line string) []string {
	line = strings.Trim(line, "|")
	parts := strings.Split(line, "|")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// citations extracts the backtick-quoted citations of a cell.
func citations(c string) []string {
	var out []string
	for _, m := range citationRE.FindAllStringSubmatch(c, -1) {
		out = append(out, m[1])
	}
	return out
}

// loadTestNames returns the set of test/fuzz names: from a one-per-line
// file when given, else from `go test -list '.*' ./...` run in dir.
func loadTestNames(listFile, dir string) (map[string]bool, error) {
	var raw []byte
	if listFile != "" {
		b, err := os.ReadFile(listFile)
		if err != nil {
			return nil, err
		}
		raw = b
	} else {
		cmd := exec.Command("go", "test", "-list", ".*", "./...")
		cmd.Dir = dir
		b, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go test -list: %w", err)
		}
		raw = b
	}
	names := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		f := strings.Fields(line)
		if len(f) != 1 {
			continue
		}
		for _, prefix := range []string{"Test", "Fuzz", "Benchmark", "Example"} {
			if strings.HasPrefix(f[0], prefix) {
				names[f[0]] = true
			}
		}
	}
	return names, nil
}

// benchSections returns the non-empty top-level sections of the
// committed bench bundle.
func benchSections(path string) (map[string]bool, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sections map[string]json.RawMessage
	if err := json.Unmarshal(b, &sections); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]bool{}
	for k, v := range sections {
		switch strings.TrimSpace(string(v)) {
		case "null", "{}", "[]", `""`:
		default:
			out[k] = true
		}
	}
	return out, nil
}

// runCheck parses the model and verifies full catalog coverage plus
// every citation.
func runCheck(modelPath, benchPath, testlist string) ([]string, error) {
	src, err := os.ReadFile(modelPath)
	if err != nil {
		return nil, err
	}
	rows, err := parseModel(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", modelPath, err)
	}
	tests, err := loadTestNames(testlist, filepath.Dir(modelPath))
	if err != nil {
		return nil, err
	}
	sections, err := benchSections(benchPath)
	if err != nil {
		return nil, err
	}
	return verifyModel(modelPath, rows, tests, sections), nil
}

// verifyModel checks coverage and citations; it returns the failure
// list (empty = pass).
func verifyModel(modelPath string, rows []modelRow, tests, sections map[string]bool) []string {
	var failures []string
	failf := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}
	byName := map[string]modelRow{}
	for _, r := range rows {
		if _, dup := byName[r.Behavior]; dup {
			failf("%s: duplicate matrix row for %q", modelPath, r.Behavior)
		}
		byName[r.Behavior] = r
	}
	for _, want := range requiredBehaviors() {
		if _, ok := byName[want]; !ok {
			failf("%s: catalog behavior %q has no matrix row", modelPath, want)
		}
	}
	for _, r := range rows {
		for j, c := range r.Cells {
			if c.Class != "untolerated" && len(c.Citations) == 0 {
				failf("%s:%d: %s / %s claims %q without citing a test or gate",
					modelPath, r.Line, r.Behavior, regimes[j], c.Class)
			}
			for _, cite := range c.Citations {
				switch {
				case strings.HasPrefix(cite, "bench:"):
					if sec := strings.TrimPrefix(cite, "bench:"); !sections[sec] {
						failf("%s:%d: %s / %s cites %q but the bench bundle has no non-empty %q section",
							modelPath, r.Line, r.Behavior, regimes[j], cite, sec)
					}
				case strings.HasPrefix(cite, "Test") || strings.HasPrefix(cite, "Fuzz"):
					if !tests[cite] {
						failf("%s:%d: %s / %s cites %s, which exists in no test binary",
							modelPath, r.Line, r.Behavior, regimes[j], cite)
					}
				default:
					failf("%s:%d: %s / %s citation %q is neither a Test/Fuzz name nor bench:<section>",
						modelPath, r.Line, r.Behavior, regimes[j], cite)
				}
			}
		}
	}
	return failures
}

// --- markdown link checker --------------------------------------------------

var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^()\s]+)\)`)

// checkLinks verifies every relative link and anchor of one markdown
// file.
func checkLinks(path string) ([]string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var failures []string
	inFence := false
	for i, line := range strings.Split(string(src), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external: not checked offline
			}
			file, frag, _ := strings.Cut(target, "#")
			dest := path
			if file != "" {
				dest = filepath.Join(filepath.Dir(path), file)
				if rel, err := filepath.Rel(filepath.Dir(path), dest); err == nil &&
					(rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator))) {
					continue // escapes the docs tree (GitHub-web paths like badge URLs) — not checkable offline
				}
				if _, err := os.Stat(dest); err != nil {
					failures = append(failures, fmt.Sprintf("%s:%d: broken link %q: %s does not exist", path, i+1, target, dest))
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(strings.ToLower(dest), ".md") {
				continue // anchors only resolvable in markdown
			}
			ok, err := hasAnchor(dest, frag)
			if err != nil {
				return nil, err
			}
			if !ok {
				failures = append(failures, fmt.Sprintf("%s:%d: broken anchor %q: no heading in %s slugs to #%s", path, i+1, target, dest, frag))
			}
		}
	}
	return failures, nil
}

// hasAnchor reports whether a markdown file has a heading whose GitHub
// slug equals frag.
func hasAnchor(path, frag string) (bool, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(src), "\n") {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(t, "#") {
			continue
		}
		heading := strings.TrimLeft(t, "#")
		if heading == t || (heading != "" && heading[0] != ' ') {
			continue // not a heading (e.g. #hashtag)
		}
		s := slugify(strings.TrimSpace(heading))
		// GitHub de-duplicates repeated headings as slug, slug-1, slug-2…
		if n := counts[s]; n > 0 {
			if fmt.Sprintf("%s-%d", s, n) == frag {
				return true, nil
			}
		} else if s == frag {
			return true, nil
		}
		counts[s]++
	}
	return false, nil
}

// slugify reproduces GitHub's heading-to-anchor slugging: lowercase,
// spaces to hyphens, everything but letters/digits/hyphens/underscores
// dropped (backticks and other punctuation vanish).
func slugify(h string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(h) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
