// Command btrfaultmodel machine-checks FAULT_MODEL.md, the repository's
// fault-model matrix: every catalog behavior × regime (≤ f active, > f
// transient, > f sustained) must have a row, every cell claiming
// "tolerated" or "detected" must cite the Go test or campaign-bench gate
// that proves it, and every cited test must actually exist in the
// module's test binaries. Documentation that claims coverage it cannot
// point to fails CI.
//
//	btrfaultmodel -check [-model FAULT_MODEL.md] [-bench BENCH_campaign.json]
//	              [-testlist names.txt]
//	btrfaultmodel -links README.md ROADMAP.md FAULT_MODEL.md ...
//
// -check parses the matrix and verifies coverage plus citations. Test
// citations (`TestX`, `FuzzX`) are resolved against `go test -list '.*'
// ./...` run in the model's directory — or, hermetically, against a
// -testlist file with one name per line. Gate citations (`bench:<section>`)
// are resolved against the committed BENCH_campaign.json: the section
// must exist and be non-empty, which means cmd/btrcheckbench gates it on
// every bench run.
//
// -links is a relative-link checker for the repository's markdown docs:
// every `[text](path#anchor)` must point at an existing file and, when
// it carries a fragment, at a real heading (GitHub slugging) in that
// file.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	check := flag.Bool("check", false, "verify the fault-model matrix (coverage + citations)")
	links := flag.Bool("links", false, "check relative markdown links/anchors in the listed files")
	model := flag.String("model", "FAULT_MODEL.md", "fault-model matrix to verify")
	bench := flag.String("bench", "BENCH_campaign.json", "committed bench bundle resolving bench:<section> citations")
	testlist := flag.String("testlist", "", "file with one test name per line (default: run `go test -list` over the module)")
	flag.Parse()

	if !*check && !*links {
		fmt.Fprintln(os.Stderr, "btrfaultmodel: nothing to do (pass -check and/or -links)")
		os.Exit(2)
	}
	var failures []string
	if *check {
		fails, err := runCheck(*model, *bench, *testlist)
		if err != nil {
			fmt.Fprintf(os.Stderr, "btrfaultmodel: %v\n", err)
			os.Exit(2)
		}
		failures = append(failures, fails...)
	}
	if *links {
		files := flag.Args()
		if len(files) == 0 {
			fmt.Fprintln(os.Stderr, "btrfaultmodel: -links needs markdown files as arguments")
			os.Exit(2)
		}
		for _, f := range files {
			fails, err := checkLinks(f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "btrfaultmodel: %v\n", err)
				os.Exit(2)
			}
			failures = append(failures, fails...)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Printf("FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	if *check {
		fmt.Printf("fault model OK: %s covers the full catalog with verified citations\n", *model)
	}
	if *links {
		fmt.Printf("links OK: %d file(s) checked\n", len(flag.Args()))
	}
}
