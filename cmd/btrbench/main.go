// Command btrbench regenerates every experiment table from the paper
// reproduction (E1–E10; see EXPERIMENTS.md). Usage:
//
//	btrbench [-seed N] [-quick] [-only E6]
package main

import (
	"flag"
	"fmt"
	"os"

	"btr/internal/exp"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed (results are deterministic per seed)")
	quick := flag.Bool("quick", false, "smaller sweeps (for smoke runs)")
	only := flag.String("only", "", "run a single experiment (e.g. E6)")
	flag.Parse()

	if *only != "" {
		for _, e := range exp.All() {
			if e.ID == *only {
				res := e.Run(*seed, *quick)
				fmt.Printf("---- %s: %s ----\n", res.ID, res.Claim)
				for _, t := range res.Tables {
					fmt.Println(t.String())
				}
				return
			}
		}
		fmt.Fprintf(os.Stderr, "btrbench: unknown experiment %q\n", *only)
		os.Exit(2)
	}
	exp.RunAll(os.Stdout, *seed, *quick)
}
