// Command btrbench regenerates every experiment table from the paper
// reproduction (E1–E10; see EXPERIMENTS.md). Experiments run through the
// parallel campaign runner; tables are byte-identical for any -workers
// value. Usage:
//
//	btrbench [-seed N] [-quick] [-only E6] [-workers N]
//	         [-cpuprofile out.pprof] [-memprofile out.pprof]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"btr/internal/exp"
	"btr/internal/prof"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed (results are deterministic per seed)")
	quick := flag.Bool("quick", false, "smaller sweeps (for smoke runs)")
	only := flag.String("only", "", "run a single experiment (e.g. E6)")
	workers := flag.Int("workers", runtime.NumCPU(), "trial worker pool size (does not affect output)")
	profFlags := prof.Register()
	flag.Parse()

	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "btrbench: %v\n", err)
		os.Exit(2)
	}
	defer stopProf()

	if *only != "" {
		for _, e := range exp.All() {
			if e.ID == *only {
				res := e.Run(*seed, *quick)
				fmt.Printf("---- %s: %s ----\n", res.ID, res.Claim)
				for _, t := range res.Tables {
					fmt.Println(t.String())
				}
				return
			}
		}
		fmt.Fprintf(os.Stderr, "btrbench: unknown experiment %q\n", *only)
		stopProf()
		os.Exit(2)
	}
	exp.RunAllWorkers(os.Stdout, *seed, *quick, *workers)
}
