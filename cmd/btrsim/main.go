// Command btrsim runs one BTR scenario end to end: plan, simulate, attack,
// and report output correctness and recovery against the bound. Usage:
//
//	btrsim [-workload chain|avionics] [-nodes 6] [-f 1] [-periods 40]
//	       [-attack none|crash|corrupt|corrupt-sink|omit|timing|equivocate|flood]
//	       [-attack-period 5] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"btr/internal/adversary"
	"btr/internal/core"
	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

func main() {
	workload := flag.String("workload", "chain", "workload: chain|avionics")
	nodes := flag.Int("nodes", 6, "number of nodes (full mesh)")
	f := flag.Int("f", 1, "fault bound")
	periods := flag.Uint64("periods", 40, "simulation horizon in periods")
	attack := flag.String("attack", "corrupt-sink", "attack: none|crash|corrupt|corrupt-sink|omit|timing|equivocate|flood")
	attackPeriod := flag.Uint64("attack-period", 5, "period at which the attack starts")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	period := 25 * sim.Millisecond
	var g *flow.Graph
	switch *workload {
	case "chain":
		g = flow.Chain(3, period, sim.Millisecond, 64, flow.CritA)
	case "avionics":
		g = flow.Avionics(period)
	default:
		fmt.Fprintf(os.Stderr, "btrsim: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	sys, err := core.NewSystem(core.Config{
		Seed:     *seed,
		Workload: g,
		Topology: network.FullMesh(*nodes, 20_000_000, 50*sim.Microsecond),
		PlanOpts: plan.DefaultOptions(*f, 500*sim.Millisecond),
		Horizon:  *periods,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "btrsim: %v\n", err)
		os.Exit(1)
	}

	// Attack targets: a mid-pipeline task and the first-actuating sink.
	midTask, sinkTask := pipelineTargets(g)
	base := sys.Strategy.Plans[""]
	at := sim.Time(*attackPeriod) * period
	switch *attack {
	case "none":
	case "crash":
		adversary.Crash(base.Assign[plan.ReplicaID(midTask, 0)], at).Install(sys)
	case "corrupt":
		adversary.CorruptTask(base.Assign[plan.ReplicaID(midTask, 0)], midTask, at).Install(sys)
	case "corrupt-sink":
		adversary.CorruptTask(firstSinkNode(sys, sinkTask), sinkTask, at).Install(sys)
	case "omit":
		adversary.Omit(base.Assign[plan.ReplicaID(midTask, 0)], midTask, at).Install(sys)
	case "timing":
		adversary.LieAboutSendTime(base.Assign[plan.ReplicaID(midTask, 0)], midTask, 10*sim.Millisecond, at).Install(sys)
	case "equivocate":
		adversary.Equivocate(base.Assign[plan.ReplicaID(midTask, 0)], midTask, at).Install(sys)
	case "flood":
		adversary.FloodBogus(0, 8, at).Install(sys)
	default:
		fmt.Fprintf(os.Stderr, "btrsim: unknown attack %q\n", *attack)
		os.Exit(2)
	}

	rep := sys.Run()

	fmt.Printf("workload %q on %d nodes, f=%d, %d periods of %v\n",
		g.Name, *nodes, *f, *periods, period)
	fmt.Printf("strategy: %d plans, recovery bound R = %v\n",
		len(sys.Strategy.Plans), rep.RNeeded)
	fmt.Printf("attack: %s at period %d\n\n", *attack, *attackPeriod)

	fmt.Printf("actuations: %d   wrong values: %d   missed periods: %d\n",
		rep.Actuations, rep.WrongValues, rep.MissedPeriods)
	if n := rep.EvidenceTotal(); n > 0 {
		fmt.Printf("evidence: %d total (", n)
		kinds := make([]evidence.Kind, 0, len(rep.EvidenceByKind))
		for k := range rep.EvidenceByKind {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		for i, k := range kinds {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s: %d", k, rep.EvidenceByKind[k])
		}
		fmt.Println(")")
	} else {
		fmt.Println("evidence: none")
	}
	fmt.Printf("mode switches: %d\n", len(rep.SwitchTimes))

	// Mixed-criticality semantics (§3): sinks the planner shed — in the
	// base mode (platform too small for the full suite) or in degraded
	// modes (resources reassigned to more critical work) — are allowed to
	// fail permanently. The R bound is claimed for the sinks the current
	// strategy still runs; report per sink and bound-check the surviving
	// set.
	if shed := sys.Strategy.Plans[""].ShedSinks; len(shed) > 0 {
		fmt.Printf("shed in base mode (never ran): %v\n", shed)
	}
	fmt.Println("per-sink outcome:")
	var active []flow.TaskID
	baseShed := map[flow.TaskID]bool{}
	for _, sk := range sys.Strategy.Plans[""].ShedSinks {
		baseShed[sk] = true
	}
	for _, sk := range g.Sinks() {
		if baseShed[sk] {
			continue
		}
		active = append(active, sk)
		bad := rep.BadIntervals(sk)
		if len(bad) == 0 {
			fmt.Printf("  %-12s (crit %v): correct everywhere\n", sk, g.Tasks[sk].Crit)
			continue
		}
		var total sim.Time
		for _, iv := range bad {
			total += iv.Duration()
		}
		fmt.Printf("  %-12s (crit %v): incorrect/shed for %v across %d interval(s)\n",
			sk, g.Tasks[sk].Crit, total, len(bad))
	}
	// Bound check over the most critical class — the outputs BTR promises
	// to keep through every anticipated mode.
	critical := rep.SinksAtOrAbove(flow.CritA)
	var keep []flow.TaskID
	for _, sk := range critical {
		if !baseShed[sk] {
			keep = append(keep, sk)
		}
	}
	maxRec := rep.MaxRecovery(keep...)
	fmt.Printf("\nmax measured recovery (criticality-A sinks): %v (bound %v) — within bound: %v\n",
		maxRec, rep.RNeeded, maxRec <= rep.RNeeded)
	_ = active
}

// pipelineTargets picks a representative intermediate task and sink.
func pipelineTargets(g *flow.Graph) (mid, sink flow.TaskID) {
	sinks := g.Sinks()
	sink = sinks[0]
	for _, sk := range sinks {
		if g.Tasks[sk].Crit < g.Tasks[sink].Crit {
			sink = sk
		}
	}
	// Mid task: a non-source producer feeding toward the sink.
	for _, id := range g.TopoOrder() {
		t := g.Tasks[id]
		if !t.Source && !t.Sink {
			return id, sink
		}
	}
	return sink, sink
}

func firstSinkNode(sys *core.System, sink flow.TaskID) network.NodeID {
	base := sys.Strategy.Plans[""]
	bestNode := network.NodeID(-1)
	var bestFinish sim.Time
	for _, id := range base.Aug.TaskIDs() {
		logical, _ := plan.SplitReplica(id)
		if logical != sink {
			continue
		}
		fin := base.Table.Finish[id]
		node := base.Assign[id]
		if bestNode == -1 || fin < bestFinish || (fin == bestFinish && node < bestNode) {
			bestNode, bestFinish = node, fin
		}
	}
	return bestNode
}
