// Watertank: the five-second rule, physically.
//
// A pressure vessel gains 1 bar/s unless its relief valve is commanded
// open; at 10 bar it "explodes" (leaves the safety envelope). That gives
// the control system a damage deadline D = 5s — the paper's five-second
// rule. The BTR deployment runs the sensor->controller->valve loop with
// f=1; an attacker compromises the valve-commanding node and forces the
// valve shut. BTR's recovery bound R (≈0.2s) is far below D, so the
// pressure excursion is a blip; an "eventually-consistent" system would be
// gambling with the vessel.
//
// Run: go run ./examples/watertank
package main

import (
	"fmt"
	"log"

	"btr/internal/adversary"
	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plant"
	"btr/internal/sim"
)

func main() {
	period := 50 * sim.Millisecond
	horizon := uint64(300) // 15 seconds
	tank := plant.NewWaterTank()
	loop := plant.NewLoop(tank, period, horizon)
	workload := flow.ControlLoop(period, flow.CritA)

	sys, err := core.NewSystem(core.Config{
		Seed:     3,
		Workload: workload,
		Topology: network.FullMesh(6, 20_000_000, 50*sim.Microsecond),
		PlanOpts: plan.DefaultOptions(1, sim.Second),
		Compute:  loop.Compute, // controller = the tank's pure control law
		Source:   loop.Source,  // sensors sample the real pressure
		Oracle:   loop.Oracle,  // correctness = control law of actual sample
		Horizon:  horizon,
		OnActuation: func(node network.NodeID, sink flow.TaskID, p uint64, v []byte, at sim.Time) {
			loop.Apply(p, v) // the physical valve takes the first command
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	loop.Install(sys.Kernel)

	fmt.Printf("damage deadline D = %v (pressure headroom / uncontrolled rise)\n", tank.DamageDeadline())
	fmt.Printf("BTR recovery bound R = %v\n\n", sys.Strategy.RNeeded)

	// Compromise the node whose valve command the plant acts on (the
	// replica scheduled to finish first): it will send a corrupted
	// command, which decodes to "valve shut".
	victim := firstActuatingNode(sys, "actuator")
	adversary.CorruptTask(victim, "actuator", 100*period).Install(sys) // t = 5s
	fmt.Printf("attack: node %d forces the valve shut at t=5s\n\n", victim)

	rep := sys.Run()

	fmt.Printf("wrong valve commands reaching the plant: %d period(s)\n", rep.WrongValues)
	fmt.Printf("measured recovery: %v\n", rep.MaxRecovery())
	fmt.Printf("peak pressure: %.2f bar (envelope limit %.1f)\n", tank.Pressure, tank.MaxPressure)
	fmt.Printf("envelope violations: %d\n", loop.Violations)
	if loop.Violations == 0 {
		fmt.Println("\n✓ the five-second rule held: R << D, so the physics absorbed the attack")
	} else {
		fmt.Println("\n✗ the vessel left its envelope — recovery was not fast enough")
	}
}

// firstActuatingNode finds the node hosting the sink replica that the
// plant's first-command-wins semantics listens to.
func firstActuatingNode(sys *core.System, sink flow.TaskID) network.NodeID {
	base := sys.Strategy.Plans[""]
	best := network.NodeID(-1)
	var bestFinish sim.Time
	for _, id := range base.Aug.TaskIDs() {
		logical, _ := plan.SplitReplica(id)
		if logical != sink {
			continue
		}
		fin := base.Table.Finish[id]
		node := base.Assign[id]
		if best == -1 || fin < bestFinish || (fin == bestFinish && node < best) {
			best, bestFinish = node, fin
		}
	}
	return best
}
