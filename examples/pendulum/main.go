// Pendulum: when the deadline is tight, only a *bounded* recovery will do.
//
// The inverted pendulum is the unstable extreme of the paper's argument:
// its damage deadline is about one second (the water tank gives five, an
// airliner's pitch axis fourteen). BTR's recovery bound of ~0.2s still
// fits underneath — but an eventual-recovery scheme whose tail stretches
// past a second drops the pendulum on the floor. This example shows both:
// the BTR run (attack absorbed), and an open-loop rerun of the same
// outage stretched beyond D (pendulum falls).
//
// Run: go run ./examples/pendulum
package main

import (
	"fmt"
	"log"

	"btr/internal/adversary"
	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plant"
	"btr/internal/sim"
)

func main() {
	period := 20 * sim.Millisecond
	horizon := uint64(400) // 8 seconds
	pend := plant.NewInvertedPendulum()
	loop := plant.NewLoop(pend, period, horizon)
	workload := flow.ControlLoop(period, flow.CritA)

	sys, err := core.NewSystem(core.Config{
		Seed:     9,
		Workload: workload,
		Topology: network.FullMesh(6, 20_000_000, 50*sim.Microsecond),
		PlanOpts: plan.DefaultOptions(1, 500*sim.Millisecond),
		Compute:  loop.Compute,
		Source:   loop.Source,
		Oracle:   loop.Oracle,
		Horizon:  horizon,
		OnActuation: func(node network.NodeID, sink flow.TaskID, p uint64, v []byte, at sim.Time) {
			loop.Apply(p, v)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	loop.Install(sys.Kernel)

	d := pend.DamageDeadline()
	fmt.Printf("pendulum damage deadline D ≈ %v (linearized, conservative)\n", d)
	fmt.Printf("BTR recovery bound R = %v — R < D: %v\n\n", sys.Strategy.RNeeded, sys.Strategy.RNeeded < d)

	victim := firstActuatingNode(sys, "actuator")
	adversary.CorruptTask(victim, "actuator", 100*period).Install(sys) // t = 2s
	fmt.Printf("attack: node %d corrupts the torque command at t=2s\n", victim)

	rep := sys.Run()
	fmt.Printf("measured recovery: %v; wrong commands reaching the motor: %d\n",
		rep.MaxRecovery(), rep.WrongValues)
	fmt.Printf("max |angle| stayed in envelope: violations = %d\n\n", loop.Violations)

	// Counterfactual: the same plant, but the outage lasts 2×D (an
	// eventual-recovery system having a bad day).
	counter := plant.NewInvertedPendulum()
	steps := func(dur sim.Time) int { return int(dur / period) }
	for i := 0; i < steps(2*sim.Second); i++ {
		counter.Step(counter.Control(counter.Sense()), period)
	}
	fell := false
	for i := 0; i < steps(2*d); i++ {
		counter.Step(0, period)
		if !counter.InEnvelope() {
			fell = true
			break
		}
	}
	fmt.Printf("counterfactual outage of 2×D without BTR: pendulum fell = %v\n", fell)
	if loop.Violations == 0 && fell {
		fmt.Println("\n✓ bounded recovery is the difference between a wobble and the floor")
	}
}

// firstActuatingNode finds the node hosting the sink replica the plant
// listens to (earliest scheduled finish).
func firstActuatingNode(sys *core.System, sink flow.TaskID) network.NodeID {
	base := sys.Strategy.Plans[""]
	best := network.NodeID(-1)
	var bestFinish sim.Time
	for _, id := range base.Aug.TaskIDs() {
		logical, _ := plan.SplitReplica(id)
		if logical != sink {
			continue
		}
		fin := base.Table.Finish[id]
		node := base.Assign[id]
		if best == -1 || fin < bestFinish || (fin == bestFinish && node < best) {
			best, bestFinish = node, fin
		}
	}
	return best
}
