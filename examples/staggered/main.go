// Staggered: the §3 worst-case adversary and the kR bound.
//
// "If an adversary controls k <= f nodes, he can trigger a new fault every
// R seconds and thus potentially force the system to produce bad outputs
// for kR seconds; thus, if the system has an overall deadline D … it seems
// prudent to set R := D/f rather than R := D."
//
// This example runs f=3 on ten nodes and unleashes one, two, and three
// staggered sink corruptions, printing the total incorrect-output time
// against the k·R envelope.
//
// Run: go run ./examples/staggered
package main

import (
	"fmt"
	"log"

	"btr/internal/adversary"
	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

func main() {
	period := 25 * sim.Millisecond
	for k := 1; k <= 3; k++ {
		sys, err := core.NewSystem(core.Config{
			Seed:     11,
			Workload: flow.Chain(3, period, sim.Millisecond, 64, flow.CritA),
			Topology: network.FullMesh(10, 20_000_000, 50*sim.Microsecond),
			PlanOpts: plan.DefaultOptions(3, sim.Second),
			Horizon:  uint64(30 + 25*k),
		})
		if err != nil {
			log.Fatal(err)
		}
		gap := sys.Strategy.RNeeded + 2*period

		// k distinct victims, each corrupted one recovery-bound apart.
		victims := map[network.NodeID]bool{}
		base := sys.Strategy.Plans[""]
		var order []network.NodeID
		for _, id := range base.Aug.TaskIDs() {
			n := base.Assign[id]
			if !victims[n] {
				victims[n] = true
				order = append(order, n)
			}
		}
		for i := 0; i < k; i++ {
			at := 5*period + sim.Time(i)*gap
			adversary.CorruptEverything(order[i], at).Install(sys)
		}

		rep := sys.Run()
		total := rep.TotalBadTime()
		bound := sim.Time(k) * rep.RNeeded
		fmt.Printf("k=%d staggered faults: %v of bad output (k·R envelope %v) — within: %v\n",
			k, total, bound, total <= bound)
	}
	fmt.Println("\nthe outage grows with k, which is why the planner budgets R := D/f")
}
