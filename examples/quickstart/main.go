// Quickstart: the smallest complete BTR deployment.
//
// A three-stage dataflow pipeline (sensor -> worker -> actuator) runs on a
// six-node mesh with fault bound f=1. We crash one node mid-run and watch
// the system detect it, distribute evidence, and reconfigure — while the
// actuator output never misses a beat, because every task runs f+1
// replicas and consumers take the first audited-correct input.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"btr/internal/adversary"
	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

func main() {
	// 1. Describe the workload: a periodic dataflow graph (§2.1).
	period := 25 * sim.Millisecond
	workload := flow.Chain(3, period, sim.Millisecond, 64, flow.CritA)

	// 2. Describe the platform: nodes and links with finite bandwidth.
	topo := network.FullMesh(6, 20_000_000 /* B/s */, 50*sim.Microsecond)

	// 3. Assemble: this runs the offline planner (strategy = one plan per
	//    fault pattern) and wires up the per-node runtimes.
	sys, err := core.NewSystem(core.Config{
		Seed:     42,
		Workload: workload,
		Topology: topo,
		PlanOpts: plan.DefaultOptions(1 /* f */, 500*sim.Millisecond /* R */),
		Horizon:  40, // periods to simulate
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy has %d plans; provable recovery bound R = %v\n",
		len(sys.Strategy.Plans), sys.Strategy.RNeeded)

	// 4. Compromise a node: crash whichever node hosts worker replica 0.
	victim := sys.Strategy.Plans[""].Assign["c1#0"]
	adversary.Crash(victim, 5*period).Install(sys)
	fmt.Printf("scheduled crash of node %d at %v\n\n", victim, 5*period)

	// 5. Run and inspect the report.
	rep := sys.Run()
	fmt.Printf("actuations: %d, wrong: %d, missed: %d\n",
		rep.Actuations, rep.WrongValues, rep.MissedPeriods)
	fmt.Printf("evidence raised: %v\n", rep.EvidenceByKind)
	fmt.Printf("mode switches: %d (all correct nodes converge on plan {%d})\n",
		len(rep.SwitchTimes), victim)
	fmt.Printf("measured recovery: %v (bound %v)\n", rep.MaxRecovery(), rep.RNeeded)

	if rep.WrongValues == 0 && rep.MissedPeriods == 0 {
		fmt.Println("\n✓ the crash never disturbed the actuator: detection-based")
		fmt.Println("  replication (f+1) reconfigured around the fault in bounded time")
	}
}
