// Avionics: mixed-criticality degradation under attack.
//
// The workload is the paper's motivating airplane suite (§1): flight
// control (criticality A), engine protection (B), navigation (C), and
// in-flight entertainment (D) share eight embedded nodes. We compromise
// two nodes in sequence. Watch the planner's strategy shed the
// entertainment system first, then navigation — flight control keeps its
// deadline through both faults ("the system can disable some of the less
// critical tasks and allocate their resources to the more critical ones").
//
// Run: go run ./examples/avionics
package main

import (
	"fmt"
	"log"

	"btr/internal/adversary"
	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

func main() {
	period := 25 * sim.Millisecond
	workload := flow.Avionics(period)
	topo := network.FullMesh(8, 20_000_000, 50*sim.Microsecond)

	sys, err := core.NewSystem(core.Config{
		Seed:     7,
		Workload: workload,
		Topology: topo,
		PlanOpts: plan.DefaultOptions(2, sim.Second),
		Horizon:  60,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mode ladder (what each fault pattern costs):")
	for _, key := range []string{"", "0", "0,1"} {
		p := sys.Strategy.Plans[key]
		fmt.Printf("  %d fault(s): shed %v\n", p.Faults.Len(), p.ShedSinks)
	}
	fmt.Println()

	// Two staggered node compromises: a crash, then a corruption.
	adversary.Crash(0, 5*period).Install(sys)
	adversary.CorruptEverything(1, 30*period).Install(sys)

	rep := sys.Run()

	fmt.Printf("evidence: %v, switches: %d\n\n", rep.EvidenceByKind, len(rep.SwitchTimes))
	fmt.Println("per-sink outcome:")
	for _, sink := range workload.Sinks() {
		crit := workload.Tasks[sink].Crit
		bad := rep.PerSink[sink].FalseIntervals(rep.Horizon)
		var badTotal sim.Time
		for _, iv := range bad {
			badTotal += iv.Duration()
		}
		status := "kept every deadline"
		if badTotal > 0 {
			status = fmt.Sprintf("incorrect/shed for %v of %v", badTotal, rep.Horizon)
		}
		fmt.Printf("  %-10s (crit %v): %s\n", sink, crit, status)
	}
	fmt.Printf("\nflight control (A) recovery: %v (bound %v)\n",
		rep.MaxRecovery("elevator"), rep.RNeeded)
}
