package adversary

import (
	"testing"

	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plan/cache"
	"btr/internal/sim"
)

// cachedChainConfig is the E8-style chain deployment, optionally backed
// by a plan cache.
func cachedChainConfig(c *cache.Cache) core.Config {
	return core.Config{
		Seed:      1,
		Workload:  flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA),
		Topology:  network.FullMesh(6, 20_000_000, 50*sim.Microsecond),
		PlanOpts:  plan.DefaultOptions(1, 500*sim.Millisecond),
		Horizon:   40,
		PlanCache: c,
	}
}

// TestPlanCacheBackedRecovery runs the same fault scenario with and
// without the incremental plan engine: both deployments must recover
// within their strategy's bound, the engine-backed runtime must consult
// the cache during failover, and a second cache-backed deployment must
// reuse the warm cache instead of re-planning.
func TestPlanCacheBackedRecovery(t *testing.T) {
	var lastEngine *cache.Engine
	run := func(c *cache.Cache) *core.Report {
		sys, err := core.NewSystem(cachedChainConfig(c))
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		lastEngine = sys.PlanEngine
		period := sys.Cfg.Workload.Period
		// Corrupt the first-actuating sink replica: the only single
		// victim whose corruption is externally visible.
		base := sys.Strategy.Plans[""]
		victim := network.NodeID(-1)
		var victimFinish sim.Time
		for _, id := range base.Aug.TaskIDs() {
			if logical, _ := plan.SplitReplica(id); logical != "c2" {
				continue
			}
			fin := base.Table.Finish[id]
			node := base.Assign[id]
			if victim == -1 || fin < victimFinish || (fin == victimFinish && node < victim) {
				victim, victimFinish = node, fin
			}
		}
		CorruptTask(victim, "c2", 5*period).Install(sys)
		return sys.Run()
	}

	plain := run(nil)
	if plain.MaxRecovery() == 0 || plain.MaxRecovery() > plain.RNeeded {
		t.Fatalf("plain run: recovery %v outside (0, %v]", plain.MaxRecovery(), plain.RNeeded)
	}

	c := cache.New()
	cached := run(c)
	if cached.MaxRecovery() == 0 || cached.MaxRecovery() > cached.RNeeded {
		t.Fatalf("cached run: recovery %v outside (0, %v]", cached.MaxRecovery(), cached.RNeeded)
	}
	if cached.RNeeded != plain.RNeeded {
		// Both derivations plan the same lattice; the strategy-wide
		// bound is dominated by topology constants, but log if they
		// diverge so a regression is visible.
		t.Logf("note: RNeeded differs: plain %v vs cached %v", plain.RNeeded, cached.RNeeded)
	}
	if c.Len() == 0 {
		t.Fatal("cache empty after an engine-backed deployment")
	}
	if st := lastEngine.Stats(); st.ExactHits == 0 {
		t.Fatalf("failover never consulted the cache: %+v", st)
	}

	// Second deployment on the warm shared cache: must not synthesize
	// anything new and must behave identically to the first cached run.
	entries := c.Len()
	cached2 := run(c)
	if c.Len() != entries {
		t.Errorf("warm deployment grew the cache: %d -> %d entries", entries, c.Len())
	}
	if st := lastEngine.Stats(); st.Misses != 0 || st.ExactHits == 0 {
		t.Errorf("warm deployment synthesized instead of reusing: %+v", st)
	}
	if cached2.MaxRecovery() != cached.MaxRecovery() {
		t.Errorf("warm deployment recovery %v != first cached run %v",
			cached2.MaxRecovery(), cached.MaxRecovery())
	}
}
