package adversary

import (
	"testing"

	"btr/internal/core"
	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plant"
	"btr/internal/runtime"
	"btr/internal/sim"
)

// TestKitchenSink throws everything at the avionics suite at once: a
// bogus-evidence flood, a crash, and a corruption, with f=2 on 8 nodes —
// the full pipeline (plan / schedule / detect / distribute / attribute /
// switch / shed) under combined attack. Flight control must keep its
// recovery within R.
func TestKitchenSink(t *testing.T) {
	g := flow.Avionics(25 * sim.Millisecond)
	s, err := core.NewSystem(core.Config{
		Seed:     31,
		Workload: g,
		Topology: network.FullMesh(8, 20_000_000, 50*sim.Microsecond),
		PlanOpts: plan.DefaultOptions(2, sim.Second),
		Horizon:  70,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := g.Period
	FloodBogus(7, 6, 2*p).Install(s)
	Crash(0, 10*p).Install(s)
	CorruptEverything(1, 35*p).Install(s)
	rep := s.Run()

	// The flood convicts node 7 (first "fault"); the crash and corruption
	// follow. That's 3 > f=2 — beyond budget, so the *guarantee* is void,
	// but the system must stay sane and flight control must survive: with
	// PlanFor's subset fallback the elevator keeps running.
	if rep.EvidenceByKind[evidence.KindBogus] == 0 {
		t.Error("flood not convicted")
	}
	if len(rep.SwitchTimes) == 0 {
		t.Error("no mode changes under combined attack")
	}
	// Elevator: bounded badness around each fault; since faults exceed f
	// we only demand total bad time stays under 3R (one R per fault).
	bad := rep.TotalBadTime("elevator")
	if bad > 3*rep.RNeeded {
		t.Errorf("elevator bad time %v exceeds 3R = %v", bad, 3*rep.RNeeded)
	}
}

// TestPlantClosedLoopUnderOmission runs the water tank with the actuator
// replica silenced (omission) rather than corrupted: the second replica's
// command keeps the valve working, the plant never notices.
func TestPlantClosedLoopUnderOmission(t *testing.T) {
	period := 50 * sim.Millisecond
	horizon := uint64(150)
	tank := plant.NewWaterTank()
	loop := plant.NewLoop(tank, period, horizon)
	g := flow.ControlLoop(period, flow.CritA)
	s, err := core.NewSystem(core.Config{
		Seed: 32, Workload: g,
		Topology: network.FullMesh(6, 20_000_000, 50*sim.Microsecond),
		PlanOpts: plan.DefaultOptions(1, sim.Second),
		Compute:  loop.Compute, Source: loop.Source, Oracle: loop.Oracle,
		Horizon: horizon,
		OnActuation: func(node network.NodeID, sink flow.TaskID, p uint64, v []byte, at sim.Time) {
			loop.Apply(p, v)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	loop.Install(s.Kernel)
	victim := s.Strategy.Plans[""].Assign["actuator#0"]
	s.InjectAt(30*period, func(rt *runtime.System) {
		rt.SetBehavior(victim, &runtime.Behavior{SkipActuation: true,
			OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
				if rec.Logical == "actuator" {
					return rec, 0, false
				}
				return rec, 0, true
			}})
	})
	rep := s.Run()
	if loop.Violations != 0 {
		t.Errorf("envelope violated under actuator omission: %d", loop.Violations)
	}
	if rep.MissedPeriods != 0 {
		t.Errorf("missed %d periods despite replica redundancy", rep.MissedPeriods)
	}
	// Pressure regulated at the setpoint throughout.
	if tank.Pressure > tank.Setpoint+1 || tank.Pressure < tank.Setpoint-1 {
		t.Errorf("pressure drifted to %v", tank.Pressure)
	}
}

// TestPendulumClosedLoopWithCrash exercises the tight-deadline plant with
// a controller-node crash: control continuity through the surviving
// replica, recovery and stability.
func TestPendulumClosedLoopWithCrash(t *testing.T) {
	period := 20 * sim.Millisecond
	horizon := uint64(300)
	pend := plant.NewInvertedPendulum()
	loop := plant.NewLoop(pend, period, horizon)
	g := flow.ControlLoop(period, flow.CritA)
	s, err := core.NewSystem(core.Config{
		Seed: 33, Workload: g,
		Topology: network.FullMesh(6, 20_000_000, 50*sim.Microsecond),
		PlanOpts: plan.DefaultOptions(1, sim.Second),
		Compute:  loop.Compute, Source: loop.Source, Oracle: loop.Oracle,
		Horizon: horizon,
		OnActuation: func(node network.NodeID, sink flow.TaskID, p uint64, v []byte, at sim.Time) {
			loop.Apply(p, v)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	loop.Install(s.Kernel)
	victim := s.Strategy.Plans[""].Assign["controller#0"]
	Crash(victim, 50*period).Install(s)
	rep := s.Run()
	if loop.Violations != 0 {
		t.Errorf("pendulum left envelope after controller crash: %d violations", loop.Violations)
	}
	if rep.MaxRecovery() > rep.RNeeded {
		t.Errorf("recovery %v exceeds bound %v", rep.MaxRecovery(), rep.RNeeded)
	}
}
