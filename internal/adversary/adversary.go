// Package adversary packages the threat model (§2.1) as reusable attack
// scripts: "there is an adversary who has compromised some subset of the
// nodes and has complete control over them". Each Attack installs a
// Byzantine behavior (or crash) on a node at a chosen time; Staggered
// builds the paper's worst-case schedule — a fresh fault every R seconds,
// stretching the outage toward k·R (§3).
package adversary

import (
	"fmt"

	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/runtime"
	"btr/internal/sim"
)

// Attack is one scheduled compromise.
type Attack struct {
	Name string
	At   sim.Time
	Node network.NodeID
	// Apply installs the malicious behavior.
	Apply func(rt *runtime.System)
}

// Injector schedules fault injections against a deployment and records
// their times for recovery attribution. Both execution modes satisfy it —
// core.System (simulated) and live.Deployment (wall clock) — so the same
// attack scripts run unchanged against either.
type Injector interface {
	InjectAt(t sim.Time, f func(*runtime.System))
}

// Install registers the attack on a deployment (records the fault time
// for recovery accounting).
func (a Attack) Install(sys Injector) {
	sys.InjectAt(a.At, a.Apply)
}

// InstallAll registers a batch of attacks.
func InstallAll(sys Injector, attacks ...Attack) {
	for _, a := range attacks {
		a.Install(sys)
	}
}

// Crash fail-stops the node.
func Crash(node network.NodeID, at sim.Time) Attack {
	return Attack{
		Name: fmt.Sprintf("crash(%d)", node), At: at, Node: node,
		Apply: func(rt *runtime.System) { rt.Crash(node) },
	}
}

// CorruptTask makes the node emit wrong values for every replica of the
// given logical task it hosts (commission fault; provable by
// re-execution, or by checkers when the task is a sink).
func CorruptTask(node network.NodeID, logical flow.TaskID, at sim.Time) Attack {
	return Attack{
		Name: fmt.Sprintf("corrupt(%d,%s)", node, logical), At: at, Node: node,
		Apply: func(rt *runtime.System) {
			rt.SetBehavior(node, &runtime.Behavior{
				OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
					if rec.Logical == logical {
						rec.Value = append([]byte("corrupt:"), rec.Value...)
					}
					return rec, 0, true
				},
			})
		},
	}
}

// CorruptEverything corrupts every output of the node.
func CorruptEverything(node network.NodeID, at sim.Time) Attack {
	return Attack{
		Name: fmt.Sprintf("corrupt-all(%d)", node), At: at, Node: node,
		Apply: func(rt *runtime.System) {
			rt.SetBehavior(node, &runtime.Behavior{
				OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
					rec.Value = append([]byte("x"), rec.Value...)
					return rec, 0, true
				},
			})
		},
	}
}

// Equivocate sends conflicting values of the logical task to different
// consumers (split-brain).
func Equivocate(node network.NodeID, logical flow.TaskID, at sim.Time) Attack {
	return Attack{
		Name: fmt.Sprintf("equivocate(%d,%s)", node, logical), At: at, Node: node,
		Apply: func(rt *runtime.System) {
			rt.SetBehavior(node, &runtime.Behavior{
				OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
					if rec.Logical == logical {
						_, idx := plan.SplitReplica(consumer)
						if idx%2 == 0 {
							rec.Value = append([]byte("fork:"), rec.Value...)
						}
					}
					return rec, 0, true
				},
			})
		},
	}
}

// Omit silently drops all outputs of the logical task (omission fault;
// convictable only via path accusations).
func Omit(node network.NodeID, logical flow.TaskID, at sim.Time) Attack {
	return Attack{
		Name: fmt.Sprintf("omit(%d,%s)", node, logical), At: at, Node: node,
		Apply: func(rt *runtime.System) {
			rt.SetBehavior(node, &runtime.Behavior{
				OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
					if rec.Logical == logical {
						return rec, 0, false
					}
					return rec, 0, true
				},
			})
		},
	}
}

// Delay holds the logical task's messages back by d without admitting it
// (claimed send time stays in-window — only watchdogs can catch this).
func Delay(node network.NodeID, logical flow.TaskID, d, at sim.Time) Attack {
	return Attack{
		Name: fmt.Sprintf("delay(%d,%s,%v)", node, logical, d), At: at, Node: node,
		Apply: func(rt *runtime.System) {
			rt.SetBehavior(node, &runtime.Behavior{
				OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
					if rec.Logical == logical {
						return rec, d, true
					}
					return rec, 0, true
				},
			})
		},
	}
}

// LieAboutSendTime stamps an out-of-window send offset (timing fault with
// a cryptographic proof).
func LieAboutSendTime(node network.NodeID, logical flow.TaskID, skew, at sim.Time) Attack {
	return Attack{
		Name: fmt.Sprintf("timestamp-lie(%d,%s)", node, logical), At: at, Node: node,
		Apply: func(rt *runtime.System) {
			rt.SetBehavior(node, &runtime.Behavior{
				OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
					if rec.Logical == logical {
						rec.SendOff += skew
					}
					return rec, 0, true
				},
			})
		},
	}
}

// FloodBogus sprays invalid evidence at every neighbor each period (the
// §4.3 DoS attack on the evidence channel).
func FloodBogus(node network.NodeID, perPeriod int, at sim.Time) Attack {
	return Attack{
		Name: fmt.Sprintf("bogus-flood(%d,%d/period)", node, perPeriod), At: at, Node: node,
		Apply: func(rt *runtime.System) {
			rt.SetBehavior(node, &runtime.Behavior{BogusEvidencePerPeriod: perPeriod})
		},
	}
}

// SkipActuation suppresses the node's actuations only (its dataflow and
// audit records stay correct) — the residual split-brain actuator fault
// that is visible only through the physics (see DESIGN.md).
func SkipActuation(node network.NodeID, at sim.Time) Attack {
	return Attack{
		Name: fmt.Sprintf("skip-actuation(%d)", node), At: at, Node: node,
		Apply: func(rt *runtime.System) {
			rt.SetBehavior(node, &runtime.Behavior{SkipActuation: true})
		},
	}
}

// Staggered schedules one attack every interval starting at start — the
// §3 adversary that "can trigger a new fault every R seconds and thus
// potentially force the system to produce bad outputs for kR seconds".
// The builder receives the attack index and its fire time.
func Staggered(start, interval sim.Time, k int,
	build func(i int, at sim.Time) Attack) []Attack {
	out := make([]Attack, 0, k)
	for i := 0; i < k; i++ {
		at := start + sim.Time(i)*interval
		out = append(out, build(i, at))
	}
	return out
}
