package adversary

import (
	"testing"

	"btr/internal/core"
	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

func newSystem(t *testing.T, seed uint64) *core.System {
	t.Helper()
	s, err := core.NewSystem(core.Config{
		Seed:     seed,
		Workload: flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA),
		Topology: network.FullMesh(6, 20_000_000, 50*sim.Microsecond),
		PlanOpts: plan.DefaultOptions(1, 500*sim.Millisecond),
		Horizon:  30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCrashAttack(t *testing.T) {
	s := newSystem(t, 1)
	victim := s.Strategy.Plans[""].Assign["c1#0"]
	Crash(victim, 3*s.Cfg.Workload.Period).Install(s)
	rep := s.Run()
	if len(rep.SwitchTimes) == 0 {
		t.Error("crash attack caused no mode change")
	}
	if rep.WrongValues != 0 {
		t.Error("crash should not corrupt values")
	}
}

func TestCorruptTaskAttack(t *testing.T) {
	s := newSystem(t, 2)
	victim := s.Strategy.Plans[""].Assign["c1#0"]
	CorruptTask(victim, "c1", 3*s.Cfg.Workload.Period).Install(s)
	rep := s.Run()
	if rep.EvidenceByKind[evidence.KindWrongOutput] == 0 {
		t.Error("corruption produced no wrong-output proof")
	}
	if rep.WrongValues != 0 {
		t.Error("intermediate-task corruption should be masked by audited input choice")
	}
}

func TestEquivocateAttack(t *testing.T) {
	s := newSystem(t, 3)
	victim := s.Strategy.Plans[""].Assign["c1#0"]
	Equivocate(victim, "c1", 3*s.Cfg.Workload.Period).Install(s)
	rep := s.Run()
	// Equivocation on a re-executable task is caught as wrong-output
	// (one fork must disagree with re-execution) or as equivocation.
	if rep.EvidenceByKind[evidence.KindWrongOutput]+
		rep.EvidenceByKind[evidence.KindEquivocation] == 0 {
		t.Errorf("equivocation undetected: %v", rep.EvidenceByKind)
	}
}

func TestOmitAttack(t *testing.T) {
	s := newSystem(t, 4)
	victim := s.Strategy.Plans[""].Assign["c1#0"]
	Omit(victim, "c1", 3*s.Cfg.Workload.Period).Install(s)
	rep := s.Run()
	if rep.EvidenceByKind[evidence.KindPathAccusation] == 0 {
		t.Error("omission produced no accusations")
	}
	if len(rep.SwitchTimes) == 0 {
		t.Error("omission not attributed")
	}
}

func TestLieAboutSendTimeAttack(t *testing.T) {
	s := newSystem(t, 5)
	victim := s.Strategy.Plans[""].Assign["c1#0"]
	LieAboutSendTime(victim, "c1", 10*sim.Millisecond, 3*s.Cfg.Workload.Period).Install(s)
	rep := s.Run()
	if rep.EvidenceByKind[evidence.KindTiming] == 0 {
		t.Error("timestamp lie produced no timing proof")
	}
}

func TestFloodBogusAttack(t *testing.T) {
	s := newSystem(t, 6)
	FloodBogus(0, 4, 3*s.Cfg.Workload.Period).Install(s)
	rep := s.Run()
	if rep.EvidenceByKind[evidence.KindBogus] == 0 {
		t.Error("bogus flood produced no endorsement proof")
	}
	if rep.WrongValues != 0 || rep.MissedPeriods != 0 {
		t.Error("flood disturbed outputs")
	}
}

func TestStaggeredBuilder(t *testing.T) {
	attacks := Staggered(100, 50, 3, func(i int, at sim.Time) Attack {
		return Crash(network.NodeID(i), at)
	})
	if len(attacks) != 3 {
		t.Fatalf("got %d attacks", len(attacks))
	}
	for i, a := range attacks {
		want := sim.Time(100 + i*50)
		if a.At != want {
			t.Errorf("attack %d at %v, want %v", i, a.At, want)
		}
	}
}

func TestAttackNames(t *testing.T) {
	for _, a := range []Attack{
		Crash(1, 0), CorruptTask(1, "t", 0), CorruptEverything(1, 0),
		Equivocate(1, "t", 0), Omit(1, "t", 0), Delay(1, "t", 5, 0),
		LieAboutSendTime(1, "t", 5, 0), FloodBogus(1, 2, 0), SkipActuation(1, 0),
	} {
		if a.Name == "" {
			t.Error("attack without a name")
		}
	}
}
