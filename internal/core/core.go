// Package core assembles a complete BTR deployment — workload, topology,
// offline strategy, per-node runtimes, and the correctness monitor — and
// turns simulation runs into Reports.
//
// The monitor operationalizes Definition 3.1: the system's outputs (first
// actuation command per logical sink per period) are compared against an
// oracle ("the outputs of a system in which all nodes are correct") and
// checked against their deadlines; the resulting per-sink correctness
// timelines yield measured recovery intervals that experiments compare
// with the strategy's provable bound R.
package core

import (
	"fmt"
	"sort"

	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/member"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plan/cache"
	"btr/internal/runtime"
	"btr/internal/sig"
	"btr/internal/sim"
)

// Oracle returns the expected (correct) output value for a sink at a
// period.
type Oracle func(sink flow.TaskID, period uint64) []byte

// Config describes one deployment.
type Config struct {
	Seed     uint64
	Workload *flow.Graph
	Topology *network.Topology
	PlanOpts plan.Options
	Net      network.Config

	// PlanCache, when set, builds the strategy through the incremental
	// plan engine instead of plan.Build — solved plans are memoized in
	// (and reused from) the given cache across deployments — and wires
	// the engine into the runtime so node failover consults the cache
	// before any synthesis.
	PlanCache *cache.Cache

	// Members, when non-nil, enables online membership reconfiguration:
	// Topology becomes the slot *universe*, the listed slots form the
	// genesis epoch's active membership (pass every slot to start full),
	// and Reconfigure schedules join/retire/replace epochs at runtime.
	// All epoch planning runs through the incremental plan engine
	// (PlanCache if set, else a private cache). nil keeps the classic
	// static deployment, byte-for-byte.
	Members []network.NodeID

	// Optional semantic overrides (plants install their own).
	Compute runtime.TaskFunc
	Source  runtime.SourceFunc
	Oracle  Oracle

	// Horizon is the number of periods to simulate.
	Horizon uint64

	// EvidenceRateLimit forwards to the runtime (0 = default).
	EvidenceRateLimit int

	// ForgiveAfter forwards to the runtime: non-zero puts convictions on
	// a parole clock and enables the over-budget / reconciled verdicts
	// that feed Report.Degraded (the high-fault-rate regime,
	// internal/faultrate). 0 keeps the classic append-only fault set.
	ForgiveAfter sim.Time

	// OnActuation, if set, observes every actuation command (a physical
	// plant subscribes here; it should apply first-command-per-period
	// semantics itself, as plant.Loop.Apply does).
	OnActuation runtime.ActuationFunc
}

// System is an assembled deployment ready to run.
type System struct {
	Cfg      Config
	Kernel   *sim.Kernel
	Net      *network.Network
	Registry *sig.Registry
	Strategy *plan.Strategy
	Runtime  *runtime.System
	// PlanEngine is the incremental plan engine backing this deployment
	// (nil unless Config.PlanCache was set); tests and tools read its
	// Stats.
	PlanEngine *cache.Engine
	// MemberPlanner is the epoch planner backing this deployment (nil
	// unless Config.Members was set).
	MemberPlanner *member.Planner

	oracle Oracle
	report *Report

	// Degradation tracking (high-fault-rate regime): which reporters have
	// an open over-budget declaration, and when the current globally
	// degraded window opened. The flood bound Delta is far below the gap
	// between a reporter's consecutive capacity crossings (≥ one period),
	// so first observations arrive in emission order.
	degradedBy map[network.NodeID]bool
	degradedAt sim.Time
}

// Report aggregates everything a run measured.
type Report struct {
	Horizon    sim.Time
	Period     sim.Time
	PerSink    map[flow.TaskID]*metrics.Timeline
	SinkCrit   map[flow.TaskID]flow.Criticality
	FaultTimes []sim.Time

	Actuations    int
	WrongValues   int
	MissedPeriods int

	EvidenceByKind  map[evidence.Kind]int
	FirstEvidenceAt sim.Time
	SwitchTimes     []sim.Time
	NetStats        network.Stats
	RNeeded         sim.Time

	// Epochs records every membership reconfiguration the run performed
	// (empty without Config.Members; rejected proposals appear with Err
	// set). EpochReplans is the total number of plan syntheses the epoch
	// planner performed — near zero on a warm cache.
	Epochs       []EpochRow
	EpochReplans uint64

	// Degraded lists the windows during which at least one node had
	// declared itself over budget (signed KindOverBudget verdict without
	// a matching KindReconciled yet) — the spans where the recovery
	// guarantee is suspended-but-flagged rather than live. A window still
	// open at the horizon is closed there. Empty without
	// Config.ForgiveAfter.
	Degraded []metrics.Interval
}

// EpochRow is one membership epoch's lifecycle measurements (recorded
// by the runtime operator; shared with the live report layer).
type EpochRow = runtime.EpochRow

// RBoundFor returns the recovery bound to hold a fault at time t
// against: the largest R among the epochs whose activity window
// overlaps [t, end] (genesis included). With no epochs it is RNeeded.
func (r *Report) RBoundFor(t, end sim.Time) sim.Time {
	return runtime.EpochRBound(r.RNeeded, r.Epochs, t, end)
}

// MaxEpochR returns the largest provable recovery bound across every
// epoch of the run (RNeeded without epochs).
func (r *Report) MaxEpochR() sim.Time {
	return runtime.EpochMaxR(r.RNeeded, r.Epochs)
}

// NewSystem validates the config, runs the offline planner, and wires the
// runtime. It does not start the clock; install faults, then call Run.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Horizon == 0 {
		cfg.Horizon = 40
	}
	if cfg.Net.EvidenceShare == 0 && cfg.Net.LossProb == 0 {
		cfg.Net = network.DefaultConfig()
	}
	var strategy *plan.Strategy
	var planner runtime.PlanSource
	var eng *cache.Engine
	var mplanner *member.Planner
	var epochCfg *runtime.EpochConfig
	switch {
	case cfg.Members != nil:
		// Membership epochs: all planning goes through the epoch planner
		// (which shares PlanCache when provided).
		mplanner = member.NewPlanner(cfg.Workload, cfg.PlanOpts, cfg.PlanCache)
		genesis := member.Genesis(cfg.Members)
		glog, err := member.NewLog(cfg.Topology, genesis)
		if err != nil {
			return nil, fmt.Errorf("core: invalid initial membership: %w", err)
		}
		ep0, err := mplanner.ForEpoch(genesis, glog.Wiring())
		if err != nil {
			return nil, fmt.Errorf("core: planning failed: %w", err)
		}
		strategy = ep0.Strategy
		planner = ep0.Resolve
		epochCfg = &runtime.EpochConfig{Genesis: genesis, Resolve: runtime.PlannerResolve(mplanner)}
	case cfg.PlanCache != nil:
		eng = cache.NewEngine(cfg.Workload, cfg.Topology, cfg.PlanOpts, cfg.PlanCache)
		s, err := eng.BuildStrategy()
		if err != nil {
			return nil, fmt.Errorf("core: planning failed: %w", err)
		}
		strategy = s
		planner = eng.Resolve
	default:
		s, err := plan.Build(cfg.Workload, cfg.Topology, cfg.PlanOpts)
		if err != nil {
			return nil, fmt.Errorf("core: planning failed: %w", err)
		}
		strategy = s
	}
	k := sim.NewKernel(cfg.Seed)
	nw := network.New(k, cfg.Topology, cfg.Net)
	reg := sig.NewRegistry(cfg.Seed, cfg.Topology.N)

	s := &System{
		Cfg: cfg, Kernel: k, Net: nw, Registry: reg, Strategy: strategy,
		PlanEngine: eng, MemberPlanner: mplanner,
		degradedBy: map[network.NodeID]bool{},
	}
	source := cfg.Source
	if source == nil {
		source = evidence.SourceValue
	}
	s.oracle = cfg.Oracle
	if s.oracle == nil {
		s.oracle = HashOracle(cfg.Workload, source)
	}
	rep := &Report{
		Horizon:         sim.Time(cfg.Horizon) * cfg.Workload.Period,
		Period:          cfg.Workload.Period,
		PerSink:         map[flow.TaskID]*metrics.Timeline{},
		SinkCrit:        map[flow.TaskID]flow.Criticality{},
		EvidenceByKind:  map[evidence.Kind]int{},
		FirstEvidenceAt: sim.Never,
		RNeeded:         strategy.RNeeded,
	}
	for _, sk := range cfg.Workload.Sinks() {
		rep.PerSink[sk] = metrics.NewTimeline(0, true)
		rep.SinkCrit[sk] = cfg.Workload.Tasks[sk].Crit
	}
	s.report = rep

	first := map[string]bool{} // first actuation per (sink, period)
	got := map[string][]byte{}
	s.Runtime = runtime.New(runtime.Config{
		Kernel: k, Net: nw, Registry: reg, Strategy: strategy, Planner: planner, Epochs: epochCfg,
		Compute: cfg.Compute, Source: source,
		EvidenceRateLimit: cfg.EvidenceRateLimit,
		ForgiveAfter:      cfg.ForgiveAfter,
		OnActuation: func(node network.NodeID, sink flow.TaskID, period uint64, value []byte, at sim.Time) {
			rep.Actuations++
			if cfg.OnActuation != nil {
				cfg.OnActuation(node, sink, period, value, at)
			}
			key := fmt.Sprintf("%s|%d", sink, period)
			if first[key] {
				return // the plant acts on the first command only
			}
			first[key] = true
			got[key] = append([]byte(nil), value...)
		},
		OnEvidence: func(node network.NodeID, ev evidence.Evidence, at sim.Time) {
			rep.EvidenceByKind[ev.Kind]++
			if at < rep.FirstEvidenceAt {
				rep.FirstEvidenceAt = at
			}
			// Degradation windows open on the first over-budget
			// observation from a reporter and close when every open
			// declaration has been matched by a reconciled one.
			switch ev.Kind {
			case evidence.KindOverBudget:
				if !s.degradedBy[ev.Reporter] {
					if len(s.degradedBy) == 0 {
						s.degradedAt = at
					}
					s.degradedBy[ev.Reporter] = true
				}
			case evidence.KindReconciled:
				if s.degradedBy[ev.Reporter] {
					delete(s.degradedBy, ev.Reporter)
					if len(s.degradedBy) == 0 {
						rep.Degraded = append(rep.Degraded, metrics.Interval{Start: s.degradedAt, End: at})
					}
				}
			}
		},
		OnSwitch: func(node network.NodeID, from, to string, at sim.Time) {
			rep.SwitchTimes = append(rep.SwitchTimes, at)
		},
	})

	// Schedule the per-period deadline checks for every sink.
	period := cfg.Workload.Period
	for p := uint64(0); p < cfg.Horizon; p++ {
		p := p
		for _, sk := range cfg.Workload.Sinks() {
			sk := sk
			deadline := sim.Time(p)*period + cfg.Workload.Tasks[sk].Deadline
			k.At(deadline, func() {
				key := fmt.Sprintf("%s|%d", sk, p)
				v, present := got[key]
				ok := present && string(v) == string(s.oracle(sk, p))
				if !present {
					rep.MissedPeriods++
				} else if !ok {
					rep.WrongValues++
				}
				rep.PerSink[sk].Set(deadline, ok)
			})
		}
	}
	return s, nil
}

// InjectAt schedules a fault injection and records its time for recovery
// attribution. The callback receives the runtime to install behaviors or
// crashes.
func (s *System) InjectAt(t sim.Time, f func(*runtime.System)) {
	s.report.FaultTimes = append(s.report.FaultTimes, t)
	s.Kernel.At(t, func() { f(s.Runtime) })
}

// Reconfigure schedules a membership reconfiguration (join / retire /
// replace, with optional link delta) to be proposed at time t. Requires
// Config.Members.
func (s *System) Reconfigure(t sim.Time, d member.Delta) {
	s.Runtime.ScheduleReconfig(t, d)
}

// Run starts the runtime and simulates the configured horizon, returning
// the report.
func (s *System) Run() *Report {
	s.Runtime.Start()
	s.Kernel.Run(s.report.Horizon)
	if len(s.degradedBy) > 0 {
		// Still degraded at the horizon: close the window there so the
		// unreconciled span is visible rather than dropped.
		s.report.Degraded = append(s.report.Degraded, metrics.Interval{Start: s.degradedAt, End: s.report.Horizon})
		s.degradedBy = map[network.NodeID]bool{}
	}
	s.report.NetStats = s.Net.Snapshot()
	if s.MemberPlanner != nil {
		s.report.EpochReplans = s.MemberPlanner.Replans()
		s.report.Epochs = s.Runtime.EpochRows()
	}
	return s.report
}

// HashOracle builds the default oracle by recursively evaluating the base
// dataflow graph on the (deterministic) environment samples.
func HashOracle(g *flow.Graph, source runtime.SourceFunc) Oracle {
	type key struct {
		task   flow.TaskID
		period uint64
	}
	memo := map[key][]byte{}
	var eval func(task flow.TaskID, p uint64) []byte
	eval = func(task flow.TaskID, p uint64) []byte {
		k := key{task, p}
		if v, ok := memo[k]; ok {
			return v
		}
		t := g.Tasks[task]
		var v []byte
		if t.Source {
			v = source(task, p)
		} else {
			var ins []evidence.Record
			for _, e := range g.Inputs(task) {
				ins = append(ins, evidence.Record{Logical: e.From, Value: eval(e.From, p)})
			}
			v = evidence.HashCompute(task, p, ins)
		}
		memo[k] = v
		return v
	}
	return func(sink flow.TaskID, p uint64) []byte { return eval(sink, p) }
}

// --- Report analysis -------------------------------------------------------

// BadIntervals returns the merged intervals during which any of the given
// sinks (all sinks if none specified) produced incorrect output.
func (r *Report) BadIntervals(sinks ...flow.TaskID) []metrics.Interval {
	if len(sinks) == 0 {
		for sk := range r.PerSink {
			sinks = append(sinks, sk)
		}
		sort.Slice(sinks, func(i, j int) bool { return sinks[i] < sinks[j] })
	}
	var all []metrics.Interval
	for _, sk := range sinks {
		if tl := r.PerSink[sk]; tl != nil {
			all = append(all, tl.FalseIntervals(r.Horizon)...)
		}
	}
	return MergeIntervals(all)
}

// SinksAtOrAbove lists the report's sinks with criticality c or higher.
func (r *Report) SinksAtOrAbove(c flow.Criticality) []flow.TaskID {
	var out []flow.TaskID
	for sk, crit := range r.SinkCrit {
		if crit <= c {
			out = append(out, sk)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Recoveries pairs the run's fault injections with the bad intervals of
// the given sinks (all if none).
func (r *Report) Recoveries(sinks ...flow.TaskID) []metrics.Recovery {
	return metrics.MatchRecoveries(append([]sim.Time(nil), r.FaultTimes...), r.BadIntervals(sinks...))
}

// MaxRecovery returns the worst measured recovery over the given sinks.
func (r *Report) MaxRecovery(sinks ...flow.TaskID) sim.Time {
	var max sim.Time
	for _, rec := range r.Recoveries(sinks...) {
		if rec.Duration() > max {
			max = rec.Duration()
		}
	}
	return max
}

// TotalBadTime sums incorrect-output time across the given sinks' merged
// intervals.
func (r *Report) TotalBadTime(sinks ...flow.TaskID) sim.Time {
	var sum sim.Time
	for _, iv := range r.BadIntervals(sinks...) {
		sum += iv.Duration()
	}
	return sum
}

// EvidenceTotal counts all evidence observations.
func (r *Report) EvidenceTotal() int {
	n := 0
	for _, c := range r.EvidenceByKind {
		n += c
	}
	return n
}

// MergeIntervals merges overlapping/adjacent intervals into a minimal
// sorted set.
func MergeIntervals(ivs []metrics.Interval) []metrics.Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]metrics.Interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := []metrics.Interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}
