package core

import (
	"testing"

	"btr/internal/adversary"
	"btr/internal/flow"
	"btr/internal/member"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// epochConfig is the standard churn deployment: 3-task chain over an
// 8-slot full-mesh universe, slots 0..5 active at genesis, f=1.
func epochConfig(seed uint64, horizon uint64) Config {
	return Config{
		Seed:     seed,
		Workload: flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA),
		Topology: network.FullMesh(8, 20_000_000, 50*sim.Microsecond),
		PlanOpts: plan.DefaultOptions(1, 500*sim.Millisecond),
		Members:  []network.NodeID{0, 1, 2, 3, 4, 5},
		Horizon:  horizon,
	}
}

func TestEpochJoinRetireReplaceLifecycle(t *testing.T) {
	s, err := NewSystem(epochConfig(1, 40))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	period := s.Cfg.Workload.Period
	// Dormant slots start down and idle.
	if s.Runtime.IsMember(6) || s.Runtime.IsMember(7) {
		t.Fatal("dormant slots reported as members")
	}
	if !s.Net.IsDown(6) || !s.Net.IsDown(7) {
		t.Fatal("dormant slots not down on the transport")
	}
	s.Reconfigure(5*period, member.Delta{Join: []network.NodeID{6}})
	s.Reconfigure(15*period, member.Delta{Retire: []network.NodeID{0}})
	s.Reconfigure(25*period, member.Delta{Join: []network.NodeID{7}, Retire: []network.NodeID{1}})
	rep := s.Run()

	if rep.MissedPeriods != 0 || rep.WrongValues != 0 {
		t.Errorf("churn-only run not clean: missed=%d wrong=%d", rep.MissedPeriods, rep.WrongValues)
	}
	if len(rep.Epochs) != 3 {
		t.Fatalf("recorded %d epochs, want 3: %+v", len(rep.Epochs), rep.Epochs)
	}
	for _, e := range rep.Epochs {
		if e.ActivatedAt == 0 {
			t.Fatalf("epoch %d never activated: %+v", e.Num, e)
		}
		if e.CommittedAt < e.ProposedAt || e.ActivatedAt <= e.CommittedAt {
			t.Errorf("epoch %d lifecycle out of order: %+v", e.Num, e)
		}
		// Quorum: n-f acks with n the outgoing membership size.
		if e.Acks < 5 {
			t.Errorf("epoch %d committed on %d acks", e.Num, e.Acks)
		}
		if e.R <= 0 {
			t.Errorf("epoch %d carries no recovery bound", e.Num)
		}
		// The switch completes within the conservative window the
		// operator schedules: Delta' rounded up to a boundary.
		if lat := e.SwitchLatency(); lat <= 0 || lat > e.R {
			t.Errorf("epoch %d switch latency %v outside (0, R=%v]", e.Num, lat, e.R)
		}
	}
	// Final membership: {2,3,4,5,6,7}.
	for id, want := range map[network.NodeID]bool{
		0: false, 1: false, 2: true, 3: true, 4: true, 5: true, 6: true, 7: true,
	} {
		if got := s.Runtime.IsMember(id); got != want {
			t.Errorf("final membership of %d = %v, want %v", id, got, want)
		}
		if got := s.Runtime.EpochOf(id); got != 3 {
			t.Errorf("node %d ended on epoch %d, want 3", id, got)
		}
	}
	// Retired slots: transport down, no armed watchdogs.
	for _, id := range []network.NodeID{0, 1} {
		if !s.Net.IsDown(id) {
			t.Errorf("retired slot %d still up on the transport", id)
		}
		if n := s.Runtime.WatchdogCount(id); n != 0 {
			t.Errorf("retired slot %d still holds %d armed watchdogs", id, n)
		}
	}
	// Every active member converged on the same plan.
	if key, ok := s.Runtime.Converged(plan.NewFaultSet()); !ok {
		t.Error("members did not converge after churn")
	} else if key == "" {
		t.Error("final epoch plan key empty (exclusions missing)")
	}
}

func TestEpochChurnDeterministic(t *testing.T) {
	run := func() []EpochRow {
		s, err := NewSystem(epochConfig(7, 30))
		if err != nil {
			t.Fatal(err)
		}
		period := s.Cfg.Workload.Period
		s.Reconfigure(4*period, member.Delta{Join: []network.NodeID{6}})
		s.Reconfigure(14*period, member.Delta{Join: []network.NodeID{7}, Retire: []network.NodeID{2}})
		return s.Run().Epochs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("epoch counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("epoch row %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestEpochRecoveryWithinBoundAcrossBoundary injects the externally
// visible commission fault right next to an epoch switch and checks the
// measured recovery against the epoch-aware bound — the C6 claim in
// miniature.
func TestEpochRecoveryWithinBoundAcrossBoundary(t *testing.T) {
	s, err := NewSystem(epochConfig(3, 40))
	if err != nil {
		t.Fatal(err)
	}
	period := s.Cfg.Workload.Period
	s.Reconfigure(6*period, member.Delta{Join: []network.NodeID{6}})
	victim := firstSinkHost(s)
	at := 8 * period // lands in the middle of the switch window
	adversary.CorruptTask(victim, s.Cfg.Workload.Sinks()[0], at).Install(s)
	rep := s.Run()

	recs := rep.Recoveries()
	if len(recs) == 0 {
		t.Fatal("no recovery measured for the injected fault")
	}
	for _, rec := range recs {
		bound := rep.RBoundFor(rec.FaultAt, rec.FaultAt+rec.Duration())
		if rec.Duration() > bound {
			t.Errorf("recovery %v exceeded the epoch-aware bound %v", rec.Duration(), bound)
		}
	}
	if len(rep.Epochs) != 1 || rep.Epochs[0].ActivatedAt == 0 {
		t.Fatalf("epoch did not activate alongside the fault: %+v", rep.Epochs)
	}
}

// TestEpochRetireConvictedNode is the repair story: convict a faulty
// node, then retire it; the system must return to clean output and the
// joiner must converge with everyone despite never seeing the original
// evidence (the retired slot is excluded by the epoch itself).
func TestEpochRetireConvictedNode(t *testing.T) {
	s, err := NewSystem(epochConfig(5, 44))
	if err != nil {
		t.Fatal(err)
	}
	period := s.Cfg.Workload.Period
	victim := firstSinkHost(s)
	adversary.CorruptEverything(victim, 5*period).Install(s)
	// After conviction settles, replace the faulty node with slot 6.
	s.Reconfigure(20*period, member.Delta{Join: []network.NodeID{6}, Retire: []network.NodeID{victim}})
	rep := s.Run()

	if !s.Runtime.IsMember(6) || s.Runtime.IsMember(victim) {
		t.Fatal("replacement epoch did not apply")
	}
	if key, ok := s.Runtime.Converged(plan.NewFaultSet()); !ok || key == "" {
		t.Errorf("members (joiner included) did not converge after repairing via churn: %q %v", key, ok)
	}
	// The tail of the run (well after repair) must be clean.
	for _, iv := range rep.BadIntervals() {
		if iv.End > 30*period {
			t.Errorf("bad output after churn repair: %v", iv)
		}
	}
}

// firstSinkHost mirrors exp.firstActuatingSinkNode for the chain's sink.
func firstSinkHost(s *System) network.NodeID {
	sink := s.Cfg.Workload.Sinks()[0]
	base := s.Strategy.Plans[""]
	best := network.NodeID(-1)
	var bestFin sim.Time
	for _, id := range base.Aug.TaskIDs() {
		logical, _ := plan.SplitReplica(id)
		if logical != sink {
			continue
		}
		fin := base.Table.Finish[id]
		node := base.Assign[id]
		if best == -1 || fin < bestFin || (fin == bestFin && node < best) {
			best, bestFin = node, fin
		}
	}
	return best
}
