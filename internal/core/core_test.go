package core

import (
	"testing"

	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/runtime"
	"btr/internal/sim"
)

func chainConfig(seed uint64) Config {
	return Config{
		Seed:     seed,
		Workload: flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA),
		Topology: network.FullMesh(6, 20_000_000, 50*sim.Microsecond),
		PlanOpts: plan.DefaultOptions(1, 500*sim.Millisecond),
		Horizon:  30,
	}
}

func TestFaultFreeReportClean(t *testing.T) {
	s, err := NewSystem(chainConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run()
	if rep.WrongValues != 0 || rep.MissedPeriods != 0 {
		t.Errorf("fault-free: wrong=%d missed=%d", rep.WrongValues, rep.MissedPeriods)
	}
	if bad := rep.BadIntervals(); len(bad) != 0 {
		t.Errorf("bad intervals in fault-free run: %v", bad)
	}
	if rep.EvidenceTotal() != 0 {
		t.Errorf("evidence in fault-free run: %v", rep.EvidenceByKind)
	}
	if rep.Actuations == 0 {
		t.Error("no actuations observed")
	}
}

func TestSinkFaultRecoveryWithinR(t *testing.T) {
	s, err := NewSystem(chainConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt whichever sink replica actuates first: its command is the
	// one the plant acts on, so the fault is externally visible.
	base := s.Strategy.Plans[""]
	firstSink := flow.TaskID("c2#0")
	f0, f1 := base.Table.Finish["c2#0"], base.Table.Finish["c2#1"]
	// Ties in finish time resolve by node scheduling order (lower ID
	// schedules its period events first).
	if f1 < f0 || (f1 == f0 && base.Assign["c2#1"] < base.Assign["c2#0"]) {
		firstSink = "c2#1"
	}
	victim := base.Assign[firstSink]
	faultAt := 5 * s.Cfg.Workload.Period
	s.InjectAt(faultAt, func(rt *runtime.System) {
		rt.SetBehavior(victim, &runtime.Behavior{
			OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
				if rec.Logical == "c2" {
					rec.Value = []byte("wrong")
				}
				return rec, 0, true
			},
		})
	})
	rep := s.Run()
	if rep.WrongValues == 0 {
		t.Fatal("sink fault produced no wrong outputs — test ineffective")
	}
	recs := rep.Recoveries()
	if len(recs) != 1 {
		t.Fatalf("recoveries = %v", recs)
	}
	if recs[0].Duration() > rep.RNeeded {
		t.Errorf("measured recovery %v exceeds bound %v", recs[0].Duration(), rep.RNeeded)
	}
	if recs[0].Duration() == 0 {
		t.Error("recovery duration zero despite wrong outputs")
	}
}

func TestCrashNoOutputDisruption(t *testing.T) {
	s, err := NewSystem(chainConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	victim := s.Strategy.Plans[""].Assign["c1#0"]
	s.InjectAt(4*s.Cfg.Workload.Period, func(rt *runtime.System) { rt.Crash(victim) })
	rep := s.Run()
	// f+1 replication: a crash of one replica host never corrupts output.
	if rep.WrongValues != 0 {
		t.Errorf("crash caused %d wrong values", rep.WrongValues)
	}
	if rep.MissedPeriods != 0 {
		t.Errorf("crash caused %d missed periods", rep.MissedPeriods)
	}
	if got := rep.MaxRecovery(); got != 0 {
		t.Errorf("recovery %v, want 0 (outputs never wrong)", got)
	}
	// But the system must still have reconfigured.
	if len(rep.SwitchTimes) == 0 {
		t.Error("no mode switches after crash")
	}
}

func TestHashOracleMatchesRuntimeSemantics(t *testing.T) {
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	oracle := HashOracle(g, evidence.SourceValue)
	// Manual recursion for the 3-chain.
	v0 := evidence.SourceValue("c0", 7)
	v1 := evidence.HashCompute("c1", 7, []evidence.Record{{Logical: "c0", Value: v0}})
	v2 := evidence.HashCompute("c2", 7, []evidence.Record{{Logical: "c1", Value: v1}})
	if string(oracle("c2", 7)) != string(v2) {
		t.Error("oracle disagrees with manual evaluation")
	}
	// Memoized second call identical.
	if string(oracle("c2", 7)) != string(v2) {
		t.Error("memoized oracle changed value")
	}
}

func TestReportSinksAtOrAbove(t *testing.T) {
	cfg := chainConfig(4)
	cfg.Workload = flow.Avionics(25 * sim.Millisecond)
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run()
	a := rep.SinksAtOrAbove(flow.CritA)
	if len(a) != 1 || a[0] != "elevator" {
		t.Errorf("A sinks = %v", a)
	}
	all := rep.SinksAtOrAbove(flow.CritD)
	if len(all) != 4 {
		t.Errorf("all sinks = %v", all)
	}
}

func TestMergeIntervals(t *testing.T) {
	in := []metrics.Interval{
		{Start: 10, End: 20}, {Start: 15, End: 30}, {Start: 40, End: 50},
		{Start: 50, End: 60}, {Start: 5, End: 8},
	}
	out := MergeIntervals(in)
	want := []metrics.Interval{
		{Start: 5, End: 8}, {Start: 10, End: 30}, {Start: 40, End: 60},
	}
	if len(out) != len(want) {
		t.Fatalf("merged = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("merged = %v, want %v", out, want)
		}
	}
}

func TestMergeIntervalsEmpty(t *testing.T) {
	if MergeIntervals(nil) != nil {
		t.Error("merge of nothing should be nil")
	}
}

func TestDeterministicReports(t *testing.T) {
	run := func() (int, int, sim.Time) {
		s, err := NewSystem(chainConfig(42))
		if err != nil {
			t.Fatal(err)
		}
		victim := s.Strategy.Plans[""].Assign["c2#0"]
		s.InjectAt(5*s.Cfg.Workload.Period, func(rt *runtime.System) {
			rt.SetBehavior(victim, &runtime.Behavior{
				OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
					rec.Value = []byte("x")
					return rec, 0, true
				},
			})
		})
		rep := s.Run()
		return rep.WrongValues, rep.EvidenceTotal(), rep.MaxRecovery()
	}
	w1, e1, r1 := run()
	w2, e2, r2 := run()
	if w1 != w2 || e1 != e2 || r1 != r2 {
		t.Errorf("nondeterministic: (%d,%d,%v) vs (%d,%d,%v)", w1, e1, r1, w2, e2, r2)
	}
}
