package core

import (
	"testing"

	"btr/internal/adversary"
	"btr/internal/evidence"
	"btr/internal/network"
	"btr/internal/sim"
)

// twoHosts returns two distinct task-hosting nodes of the base plan, in
// deterministic order.
func twoHosts(s *System, t *testing.T) (network.NodeID, network.NodeID) {
	t.Helper()
	base := s.Strategy.Plans[""]
	first := network.NodeID(-1)
	for _, id := range base.Aug.TaskIDs() {
		n := base.Assign[id]
		if first == -1 {
			first = n
		} else if n != first {
			return first, n
		}
	}
	t.Fatal("base plan places every replica on one node")
	return -1, -1
}

// TestDegradedWindowOpensAndReconciles is the mechanism pin for the
// > f regimes of the fault-model matrix: with a parole clock
// (Config.ForgiveAfter) and two staggered Byzantine nodes against f=1,
// every correct node's fault set crosses the budget — raising signed
// over-budget verdicts that open a Report.Degraded window — and the
// parole of the first conviction closes it again with reconciled
// verdicts, before the horizon. Degradation is flagged, never silent.
func TestDegradedWindowOpensAndReconciles(t *testing.T) {
	cfg := chainConfig(9)
	cfg.Horizon = 80
	cfg.ForgiveAfter = 8 * 25 * sim.Millisecond
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := twoHosts(s, t)
	p := s.Strategy.Base.Period
	// Both victims heal before their paroles land — an unhealed Byzantine
	// node would simply be re-convicted after parole and re-open the
	// window (correct, but not the shape this test pins).
	adversary.CorruptEverything(v1, 5*p).Install(s)
	adversary.CorruptEverything(v2, 15*p).Install(s)
	s.Kernel.At(20*p, func() {
		s.Runtime.SetBehavior(v1, nil)
		s.Runtime.SetBehavior(v2, nil)
	})
	rep := s.Run()

	if rep.EvidenceByKind[evidence.KindOverBudget] == 0 {
		t.Fatal("no over-budget verdicts despite two convictions against f=1")
	}
	if rep.EvidenceByKind[evidence.KindReconciled] == 0 {
		t.Fatal("no reconciled verdicts: parole never brought the fault sets back within budget")
	}
	if len(rep.Degraded) == 0 {
		t.Fatal("no degraded window recorded")
	}
	for _, w := range rep.Degraded {
		if w.End >= rep.Horizon {
			t.Errorf("degraded window %v still open at the horizon — reconciliation never completed", w)
		}
		if w.End <= w.Start {
			t.Errorf("degenerate degraded window %v", w)
		}
	}
}

// TestClassicModeRaisesNoBudgetVerdicts pins the compatibility
// guarantee: without ForgiveAfter the same two-fault run convicts
// append-only (§4.4) and produces no budget verdicts and no degraded
// windows — the classic configuration is byte-for-byte unaffected by
// the degradation machinery.
func TestClassicModeRaisesNoBudgetVerdicts(t *testing.T) {
	cfg := chainConfig(9)
	cfg.Horizon = 80
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := twoHosts(s, t)
	p := s.Strategy.Base.Period
	adversary.CorruptEverything(v1, 5*p).Install(s)
	adversary.CorruptEverything(v2, 15*p).Install(s)
	rep := s.Run()

	if n := rep.EvidenceByKind[evidence.KindOverBudget] + rep.EvidenceByKind[evidence.KindReconciled]; n != 0 {
		t.Errorf("%d budget verdict(s) raised without ForgiveAfter", n)
	}
	if len(rep.Degraded) != 0 {
		t.Errorf("degraded windows without ForgiveAfter: %v", rep.Degraded)
	}
}

// TestRestartAfterCrashResumesOutput pins System.Restart: a crashed and
// restarted node re-arms its period chain exactly once and the
// deployment keeps actuating to the horizon.
func TestRestartAfterCrashResumesOutput(t *testing.T) {
	cfg := chainConfig(9)
	cfg.Horizon = 60
	cfg.ForgiveAfter = 8 * 25 * sim.Millisecond
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := twoHosts(s, t)
	p := s.Strategy.Base.Period
	adversary.Crash(v1, 5*p).Install(s)
	s.Kernel.At(13*p, func() { s.Runtime.Restart(v1) })
	rep := s.Run()
	if rep.Actuations == 0 {
		t.Fatal("no actuations after crash+restart")
	}
	// The tail of the run must be clean: conviction, parole and rejoin
	// all complete well before the horizon.
	for _, tl := range rep.PerSink {
		for _, iv := range tl.FalseIntervals(rep.Horizon) {
			if iv.End > rep.Horizon-5*p {
				t.Errorf("bad output %v persists near the horizon after restart", iv)
			}
		}
	}
}
