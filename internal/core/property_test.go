package core

import (
	"testing"
	"testing/quick"

	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/runtime"
	"btr/internal/sim"
)

// buildRandomSystem draws a random feasible deployment, or nil if the draw
// is structurally infeasible.
func buildRandomSystem(seed uint64) *System {
	rng := sim.NewRNG(seed)
	g := flow.Random(rng, 40*sim.Millisecond, flow.RandomOpts{
		Layers:      2 + rng.Intn(2),
		Width:       1 + rng.Intn(2),
		EdgeProb:    0.3,
		MinWCET:     200 * sim.Microsecond,
		MaxWCET:     800 * sim.Microsecond,
		MinBytes:    32,
		MaxBytes:    128,
		StateBytes:  256,
		DeadlineFrc: 1.0,
	})
	topo := network.FullMesh(6+rng.Intn(3), 20_000_000, 50*sim.Microsecond)
	s, err := NewSystem(Config{
		Seed:     seed,
		Workload: g,
		Topology: topo,
		PlanOpts: plan.DefaultOptions(1, sim.Second),
		Horizon:  30,
	})
	if err != nil {
		return nil
	}
	return s
}

func TestPropertyFaultFreeRandomWorkloads(t *testing.T) {
	// Any feasible random deployment runs fault-free with zero wrong
	// values, zero missed periods, zero evidence — end to end through
	// the planner, scheduler, runtime, network, and monitor.
	f := func(seed uint64) bool {
		s := buildRandomSystem(seed)
		if s == nil {
			return true
		}
		rep := s.Run()
		return rep.WrongValues == 0 && rep.MissedPeriods == 0 && rep.EvidenceTotal() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRandomFaultRecoversWithinR(t *testing.T) {
	// The headline theorem, property-tested: a random Byzantine fault
	// (crash / corrupt-everything / omission on a random node) never
	// produces incorrect output outside the derived bound R.
	f := func(seed uint64) bool {
		s := buildRandomSystem(seed)
		if s == nil {
			return true
		}
		rng := sim.NewRNG(seed ^ 0xfa417)
		victim := network.NodeID(rng.Intn(s.Cfg.Topology.N))
		faultAt := 4 * s.Cfg.Workload.Period
		switch rng.Intn(3) {
		case 0:
			s.InjectAt(faultAt, func(rt *runtime.System) { rt.Crash(victim) })
		case 1:
			s.InjectAt(faultAt, func(rt *runtime.System) {
				rt.SetBehavior(victim, &runtime.Behavior{
					OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
						rec.Value = append([]byte("z"), rec.Value...)
						return rec, 0, true
					},
				})
			})
		default:
			s.InjectAt(faultAt, func(rt *runtime.System) {
				rt.SetBehavior(victim, &runtime.Behavior{
					OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
						return rec, 0, false
					},
				})
			})
		}
		rep := s.Run()
		return rep.MaxRecovery() <= rep.RNeeded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestPropertyReportInternallyConsistent(t *testing.T) {
	// TotalBadTime equals the sum of merged bad intervals; recoveries
	// never start before their fault.
	f := func(seed uint64) bool {
		s := buildRandomSystem(seed)
		if s == nil {
			return true
		}
		victim := network.NodeID(int(seed % uint64(s.Cfg.Topology.N)))
		s.InjectAt(4*s.Cfg.Workload.Period, func(rt *runtime.System) { rt.Crash(victim) })
		rep := s.Run()
		var sum sim.Time
		for _, iv := range rep.BadIntervals() {
			if iv.End <= iv.Start {
				return false
			}
			sum += iv.Duration()
		}
		if sum != rep.TotalBadTime() {
			return false
		}
		for _, rec := range rep.Recoveries() {
			if rec.RecoverAt < rec.FaultAt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
