// Package runtime implements BTR's online components (§4.2–§4.4): the
// per-node executive that runs the current plan's static schedule, the
// fault detector (replica comparison, re-execution audit, arrival
// watchdogs), the evidence distributor (validate-then-forward flooding on
// the reserved bandwidth share, with endorsement so bogus evidence counts
// against its sender), and the mode switcher (append-only fault set, plan
// lookup, coordinated activation at a deterministic time — no agreement
// protocol needed).
//
// Byzantine behavior is injected via Behavior hooks installed on
// compromised nodes: the adversary controls what those nodes send and
// when, but not other nodes' keys.
package runtime

import (
	"fmt"

	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sig"
	"btr/internal/sim"
)

// TaskFunc computes a non-source task's output value from its chosen
// inputs. It must be deterministic: detection relies on re-execution.
type TaskFunc func(task flow.TaskID, period uint64, inputs []evidence.Record) []byte

// SourceFunc samples the environment for a source task. All replicas of a
// source observe the same value for the same period (sample-and-hold at
// the period boundary, standard in digital control).
type SourceFunc func(task flow.TaskID, period uint64) []byte

// ActuationFunc observes a sink replica delivering its command to the
// physical world. The monitor (and any physical plant) subscribes here;
// BTR semantics: the plant acts on the first command per (sink, period).
type ActuationFunc func(node network.NodeID, sink flow.TaskID, period uint64, value []byte, at sim.Time)

// EvidenceFunc observes every piece of evidence accepted by any correct
// node (for metrics and tests).
type EvidenceFunc func(node network.NodeID, ev evidence.Evidence, at sim.Time)

// SwitchFunc observes mode changes (for metrics and tests).
type SwitchFunc func(node network.NodeID, from, to string, at sim.Time)

// PlanSource resolves the plan to activate for a fault set. When set on
// Config, node failover consults it before falling back to the
// precomputed Strategy.PlanFor table — this is how the incremental plan
// engine (internal/plan/cache, Engine.Resolve) plugs in: cached or
// delta-synthesized plans with a bounded fallback to full synthesis.
// Returning nil defers to the strategy table. Implementations must be
// safe for concurrent use and must return plans valid for the given
// fault set (or a covered subset of it, per the Strategy.PlanFor
// fallback contract).
type PlanSource func(fs plan.FaultSet) *plan.Plan

// Behavior is the adversary's hook on a compromised node. Fields are
// optional; zero value = correct behavior (useful for "compromised but
// currently dormant" nodes).
type Behavior struct {
	// OnOutput intercepts each outgoing record (per consumer replica).
	// Return the possibly-mutated record, an extra send delay, and false
	// to suppress the send entirely.
	OnOutput func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool)
	// SuppressDetection stops the node from reporting faults it observes.
	SuppressDetection bool
	// SuppressForwarding stops the node from forwarding evidence.
	SuppressForwarding bool
	// BogusEvidencePerPeriod floods this many invalid evidence blobs per
	// period to every neighbor (the §4.3 DoS attack).
	BogusEvidencePerPeriod int
	// SuppressEpochAcks stops the node from acknowledging membership
	// epoch prepares (a Byzantine node trying to stall reconfiguration;
	// the n-f quorum tolerates up to f of these).
	SuppressEpochAcks bool
	// SkipActuation suppresses the node's sink replicas' actuations.
	SkipActuation bool
}

// Config assembles a runtime system.
//
// Kernel and Net are seams, not concrete engines: any sim.Scheduler
// (discrete-event kernel or wall-clock WallScheduler) and any
// network.Transport (simulated Network, live Bus, or real-socket TCPBus)
// work, and the runtime behaves identically on either — that is the
// transport-agnostic contract internal/live and cmd/btrlive build on.
//
// The runtime leans on exactly two delivery guarantees from Net, both
// part of the Transport contract (asserted per implementation by
// TestTransportFIFOPerLink): handlers run serially with scheduler
// callbacks — node state is entirely lock-free on that strength — and
// per-(link, class) FIFO, so a slot output for period p enqueued before
// one for p+1 on the same adjacency can never arrive behind it and
// trip the later period's watchdog spuriously. No cross-link, cross-
// direction, or cross-class ordering is assumed anywhere.
type Config struct {
	Kernel   sim.Scheduler
	Net      network.Transport
	Registry *sig.Registry
	Strategy *plan.Strategy
	// Planner optionally overrides plan resolution at failover time (see
	// PlanSource). Strategy is still required for the derived timing
	// constants (Delta, period, watchdog margin).
	Planner PlanSource

	Compute TaskFunc   // default: evidence.HashCompute
	Source  SourceFunc // default: evidence.SourceValue

	OnActuation ActuationFunc
	OnEvidence  EvidenceFunc
	OnSwitch    SwitchFunc

	// EvidenceRateLimit caps evidence messages processed per neighbor per
	// period (DoS bound). 0 means the default of 16.
	EvidenceRateLimit int

	// ForgiveAfter, when non-zero, puts every conviction on a clock: a
	// convicted node is paroled — removed from the local fault set, with
	// the plan re-activated — at the first period boundary at least
	// ForgiveAfter past the conviction's DetectedAt. This opens the
	// high-fault-rate regime (faults arriving continuously at rate λ)
	// where the fault set must be able to shrink again; each node flags
	// the capacity crossings with signed over-budget / reconciled
	// verdicts on the evidence share. 0 keeps the classic §4.4
	// append-only fault set, byte for byte.
	ForgiveAfter sim.Time

	// Epochs enables online membership reconfiguration (see epoch.go).
	// When set, Strategy and Planner must describe the genesis epoch.
	Epochs *EpochConfig
}

// System is the collection of BTR nodes driving one simulation.
type System struct {
	cfg   Config
	nodes []*Node
	// op drives membership reconfigurations (nil without Config.Epochs).
	op *operator
}

// New builds the per-node runtimes and registers network handlers. Call
// Start to schedule the first period.
func New(cfg Config) *System {
	if cfg.Compute == nil {
		cfg.Compute = func(task flow.TaskID, period uint64, inputs []evidence.Record) []byte {
			return evidence.HashCompute(task, period, inputs)
		}
	}
	if cfg.Source == nil {
		cfg.Source = evidence.SourceValue
	}
	if cfg.EvidenceRateLimit == 0 {
		cfg.EvidenceRateLimit = 16
	}
	s := &System{cfg: cfg}
	n := cfg.Net.Topology().N
	for id := 0; id < n; id++ {
		s.nodes = append(s.nodes, newNode(network.NodeID(id), &cfg))
	}
	for _, nd := range s.nodes {
		nd.sys = s
		cfg.Net.Handle(nd.id, nd.onMessage)
	}
	// Live transports that coalesce inbound traffic (Bus lanes, TCPBus
	// batch frames) expose a pre-verifier seam; wire the batched
	// signature verifier into it so flood bursts are bulk-verified off
	// the executor. The simulated Network has no such seam — its
	// deterministic schedules are untouched.
	if t, ok := cfg.Net.(interface{ SetPreVerifier(network.PreVerifier) }); ok {
		t.SetPreVerifier(batchPreVerifier(cfg.Registry))
	}
	if cfg.Epochs != nil {
		s.initEpochs()
	}
	return s
}

// batchPreVerifier adapts the registry's batched cofactored verification
// to the transport PreVerifier seam: it decodes the endorsement envelope
// of every evidence-flood message in a coalesced inbound batch and runs
// them through Registry.CheckBatch on the transport's own goroutine.
// The point is purely to PRIME the shared verify memo concurrently with
// the executor — by the time the handler re-checks each envelope
// (distributor endorsement validation), the signature is a memo hit.
// Verdicts are deliberately ignored here: a batch containing bogus
// signatures falls back to per-envelope memoized verification inside
// CheckBatch, and the handler path remains the sole authority on
// accept/convict decisions. Registry.CheckBatch is safe for concurrent
// use (sharded memo locks, atomic per-signer tables), which this seam
// requires.
func batchPreVerifier(reg *sig.Registry) network.PreVerifier {
	return func(ms []*network.Message) {
		envs := make([]sig.Envelope, 0, len(ms))
		for _, m := range ms {
			if len(m.Payload) < 2 || m.Payload[0] != msgEvidence {
				continue
			}
			env, err := sig.DecodeEnvelope(m.Payload[1:])
			if err != nil {
				continue
			}
			envs = append(envs, env)
		}
		if len(envs) >= 2 {
			reg.CheckBatch(envs)
		}
	}
}

// Node returns the runtime for node id.
func (s *System) Node(id network.NodeID) *Node { return s.nodes[int(id)] }

// Start schedules every node's first period at t=0.
func (s *System) Start() {
	for _, nd := range s.nodes {
		nd.start()
	}
}

// StartNode schedules only node id's first period at t=0 — the
// multi-process entry point: each process builds the full System (so
// plans, topology, and keys agree everywhere) but runs just the one
// slot it hosts; the other slots' executives exist in other processes.
func (s *System) StartNode(id network.NodeID) {
	s.nodes[int(id)].start()
}

// StartNodeFrom schedules node id's period chain starting at period p
// instead of 0 — how a killed-and-restarted process rejoins a running
// cluster: the orchestrator picks a future period, the fresh process
// aligns its wall clock to the cluster's origin (sim.WallScheduler
// StartAt) and begins executing at that period boundary. Periods before
// p never ran locally, which is correct — their outputs were (or were
// not) produced by the pre-kill incarnation, and peers' evidence
// machinery already adjudicated them.
func (s *System) StartNodeFrom(id network.NodeID, p uint64) {
	s.nodes[int(id)].schedulePeriod(p)
}

// SetBehavior installs (or clears, with nil) a Byzantine behavior.
func (s *System) SetBehavior(id network.NodeID, b *Behavior) {
	s.nodes[int(id)].behavior = b
}

// Crash marks the node as crashed: it stops executing and the network
// drops its traffic.
func (s *System) Crash(id network.NodeID) {
	s.nodes[int(id)].crashed = true
	s.cfg.Net.SetDown(id, true)
}

// Restart clears a crash: the network carries the node's traffic again
// and its period chain resumes at the next strictly-future period
// boundary — the simulated analogue of the orchestrator's kill-restart
// path (StartNodeFrom) without the process boundary. The node keeps its
// pre-crash fault set (paroles kept firing while it was down, so the set
// matches what every other correct node holds) and re-activates the plan
// for it immediately.
func (s *System) Restart(id network.NodeID) {
	nd := s.nodes[int(id)]
	if !nd.crashed {
		return
	}
	nd.crashed = false
	s.cfg.Net.SetDown(id, false)
	nd.activate()
	if nd.chainArmed {
		return // crashed and restarted within one period: chain still live
	}
	nd.schedulePeriod(uint64(s.cfg.Kernel.Now()/nd.strat.Base.Period) + 1)
}

// FaultSetOf returns node id's current local fault set (for tests).
func (s *System) FaultSetOf(id network.NodeID) plan.FaultSet {
	return s.nodes[int(id)].faults
}

// PlanKeyOf returns node id's current plan key (for tests).
func (s *System) PlanKeyOf(id network.NodeID) string {
	return s.nodes[int(id)].cur.Key()
}

// Converged reports whether all correct (non-crashed, non-compromised per
// the caller's knowledge) *active-member* nodes run the plan for the
// same fault set. Callers pass the ground-truth faulty set to exclude;
// dormant and retired slots are skipped — they execute nothing.
func (s *System) Converged(exclude plan.FaultSet) (string, bool) {
	key := ""
	first := true
	for _, nd := range s.nodes {
		if nd.crashed || !nd.memberNow || exclude.Contains(nd.id) {
			continue
		}
		if first {
			key, first = nd.cur.Key(), false
			continue
		}
		if nd.cur.Key() != key {
			return "", false
		}
	}
	return key, true
}

// msgKind tags the first byte of every payload.
const (
	msgData     = 'D'
	msgEvidence = 'E'
	msgMember   = 'M'
)

// dataPayload frames a dataflow record: kind byte, record envelope,
// attached input envelopes. One exact-size allocation; the envelope and
// attachment encodings are appended in place.
func dataPayload(env sig.Envelope, attachments []sig.Envelope) []byte {
	eb := env.EncodedSize()
	out := make([]byte, 0, 5+eb+evidence.EnvelopesSize(attachments))
	out = append(out, msgData, byte(eb), byte(eb>>8), byte(eb>>16), byte(eb>>24))
	out = env.AppendTo(out)
	return evidence.AppendEnvelopes(out, attachments)
}

// parseDataPayload reverses dataPayload.
func parseDataPayload(b []byte) (sig.Envelope, []sig.Envelope, error) {
	if len(b) < 5 || b[0] != msgData {
		return sig.Envelope{}, nil, fmt.Errorf("runtime: bad data frame")
	}
	n := int(b[1]) | int(b[2])<<8 | int(b[3])<<16 | int(b[4])<<24
	if n < 0 || len(b) < 5+n {
		return sig.Envelope{}, nil, fmt.Errorf("runtime: truncated data frame")
	}
	env, err := sig.DecodeEnvelope(b[5 : 5+n])
	if err != nil {
		return sig.Envelope{}, nil, err
	}
	atts, err := evidence.DecodeEnvelopes(b[5+n:])
	if err != nil {
		return sig.Envelope{}, nil, err
	}
	return env, atts, nil
}

// evidencePayload frames evidence wrapped in the forwarder's endorsement
// envelope: the receiver can prove who handed it an invalid blob.
func evidencePayload(wrapper sig.Envelope) []byte {
	return append([]byte{msgEvidence}, wrapper.Encode()...)
}

func parseEvidencePayload(b []byte) (sig.Envelope, error) {
	if len(b) < 1 || b[0] != msgEvidence {
		return sig.Envelope{}, fmt.Errorf("runtime: bad evidence frame")
	}
	return sig.DecodeEnvelope(b[1:])
}
