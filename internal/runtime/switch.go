package runtime

import (
	"btr/internal/evidence"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// Mode switching (§4.4): no agreement protocol. The fault set is
// append-only; valid evidence adds its accused node, path accusations feed
// the threshold attributor, and the successor plan is a pure function of
// the local fault set. Every correct node activates the new plan at
//
//	ceil((DetectedAt + Delta) / P) * P
//
// where Delta >= the evidence distribution bound, so all correct nodes
// hold the evidence before any of them activates — they converge on the
// same plan at the same period boundary. ("Since BTR allows the system to
// produce incorrect outputs for a limited time, some brief confusion may
// even be acceptable.")

// actOnEvidence updates the fault set from validated evidence.
func (n *Node) actOnEvidence(ev evidence.Evidence) {
	if ev.Kind.Proof() {
		n.addFault(ev.Accused, ev.DetectedAt)
		return
	}
	// Path accusation: aggregate; convictions come from the attributor.
	acc, err := evidence.DecodeAccusation(ev.Primary.Body)
	if err != nil {
		return // validated evidence always decodes; defensive
	}
	for _, convicted := range n.attributor.Add(acc.Path, acc.Reporter) {
		if convicted == n.id {
			continue // a node never excludes itself; others will
		}
		n.addFault(convicted, ev.DetectedAt)
	}
}

// addFault registers a newly-convicted node and schedules the mode change.
func (n *Node) addFault(x network.NodeID, detectedAt sim.Time) {
	if x < 0 || n.faults.Contains(x) || x == n.id {
		return
	}
	n.faults = n.faults.With(x)
	p := n.strat.Base.Period
	delta := n.strat.Delta
	// Activate one microsecond before a period boundary so the next
	// period is scheduled entirely under the new plan.
	boundary := ((detectedAt+delta)/p + 1) * p
	at := boundary - 1
	now := n.cfg.Kernel.Now()
	if at < now {
		at = now
	}
	n.cfg.Kernel.At(at, n.activate)
}

// planFor resolves the plan for a fault set: the current epoch's
// PlanSource (the incremental plan engine, when wired) first, the
// epoch's precomputed strategy table as the fallback.
func (n *Node) planFor(fs plan.FaultSet) *plan.Plan {
	if n.planner != nil {
		if p := n.planner(fs); p != nil {
			return p
		}
	}
	return n.strat.PlanFor(fs)
}

// activate swaps to the plan for the current fault set.
func (n *Node) activate() {
	if n.crashed {
		return
	}
	next := n.planFor(n.faults)
	if next == nil || next.Key() == n.cur.Key() {
		return
	}
	from := n.cur.Key()
	n.cur = next
	n.Switches++
	if n.cfg.OnSwitch != nil {
		n.cfg.OnSwitch(n.id, from, next.Key(), n.cfg.Kernel.Now())
	}
}
