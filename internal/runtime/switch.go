package runtime

import (
	"btr/internal/evidence"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// Mode switching (§4.4): no agreement protocol. The fault set is
// append-only; valid evidence adds its accused node, path accusations feed
// the threshold attributor, and the successor plan is a pure function of
// the local fault set. Every correct node activates the new plan at
//
//	ceil((DetectedAt + Delta) / P) * P
//
// where Delta >= the evidence distribution bound, so all correct nodes
// hold the evidence before any of them activates — they converge on the
// same plan at the same period boundary. ("Since BTR allows the system to
// produce incorrect outputs for a limited time, some brief confusion may
// even be acceptable.")

// actOnEvidence updates the fault set from validated evidence.
func (n *Node) actOnEvidence(ev evidence.Evidence) {
	if ev.Kind == evidence.KindOverBudget || ev.Kind == evidence.KindReconciled {
		// Budget verdicts convict no one: they exist so degradation is a
		// signed, flooded fact instead of a silent condition. Observers
		// (core's correctness monitor) subscribe via Config.OnEvidence.
		return
	}
	if ev.Kind.Proof() {
		n.addFault(ev.Accused, ev.DetectedAt)
		return
	}
	// Path accusation: aggregate; convictions come from the attributor.
	acc, err := evidence.DecodeAccusation(ev.Primary.Body)
	if err != nil {
		return // validated evidence always decodes; defensive
	}
	for _, convicted := range n.attributor.Add(acc.Path, acc.Reporter) {
		if convicted == n.id {
			continue // a node never excludes itself; others will
		}
		n.addFault(convicted, ev.DetectedAt)
	}
}

// addFault registers a newly-convicted node and schedules the mode change.
func (n *Node) addFault(x network.NodeID, detectedAt sim.Time) {
	if x < 0 || n.faults.Contains(x) || x == n.id {
		return
	}
	wasOver := n.overBudget()
	n.faults = n.faults.With(x)
	p := n.strat.Base.Period
	delta := n.strat.Delta
	// Activate one microsecond before a period boundary so the next
	// period is scheduled entirely under the new plan.
	boundary := ((detectedAt+delta)/p + 1) * p
	at := boundary - 1
	now := n.cfg.Kernel.Now()
	if at < now {
		at = now
	}
	n.cfg.Kernel.At(at, n.activate)
	if fa := n.cfg.ForgiveAfter; fa > 0 {
		// Parole is the conviction's expiry: boundary-aligned like the
		// activation above and derived from the same DetectedAt that rides
		// in the evidence, so every correct node paroles the same node at
		// the same instant without any agreement protocol (§4.4's argument,
		// run in reverse).
		pb := ((detectedAt+fa+delta)/p+1)*p - 1
		if pb < now {
			pb = now
		}
		n.cfg.Kernel.At(pb, func() { n.parole(x) })
	}
	// Budget verdicts exist only in the parole regime: the classic
	// append-only configuration (ForgiveAfter = 0) must stay byte-for-byte
	// unchanged, silent over-budget fallback included.
	if n.cfg.ForgiveAfter > 0 && !wasOver && n.overBudget() {
		n.raiseBudgetVerdict(evidence.KindOverBudget)
	}
}

// overBudget reports whether the local fault set exceeds the plan
// capacity f — the regime where Strategy.PlanFor falls back to the
// largest covered subset and the recovery bound is suspended.
func (n *Node) overBudget() bool { return n.faults.Len() > n.strat.Opts.F }

// parole removes an expired conviction (Config.ForgiveAfter elapsed since
// its DetectedAt) from the fault set and re-activates the plan. The fault
// set mutation is applied even while crashed so a later Restart resumes
// with the same set every other correct node holds; activate itself
// no-ops while crashed.
func (n *Node) parole(x network.NodeID) {
	if !n.faults.Contains(x) {
		return
	}
	wasOver := n.overBudget()
	n.faults = n.faults.Without(x)
	n.activate()
	if wasOver && !n.overBudget() {
		n.raiseBudgetVerdict(evidence.KindReconciled)
	}
}

// raiseBudgetVerdict seals and floods this node's declaration that its
// fault set just crossed the plan capacity boundary (in either
// direction): over-budget on the way up, reconciled on the way back.
func (n *Node) raiseBudgetVerdict(kind evidence.Kind) {
	bv := evidence.BudgetVerdict{
		Reporter: n.id,
		Active:   uint32(n.faults.Len()),
		Capacity: uint32(n.strat.Opts.F),
	}
	env := n.cfg.Registry.Seal(n.id, bv.Encode())
	n.raiseEvidence(evidence.Evidence{
		Kind:       kind,
		Accused:    -1,
		Reporter:   n.id,
		DetectedAt: n.cfg.Kernel.Now(),
		Primary:    env,
	})
}

// planFor resolves the plan for a fault set: the current epoch's
// PlanSource (the incremental plan engine, when wired) first, the
// epoch's precomputed strategy table as the fallback.
func (n *Node) planFor(fs plan.FaultSet) *plan.Plan {
	if n.planner != nil {
		if p := n.planner(fs); p != nil {
			return p
		}
	}
	return n.strat.PlanFor(fs)
}

// activate swaps to the plan for the current fault set.
func (n *Node) activate() {
	if n.crashed {
		return
	}
	next := n.planFor(n.faults)
	if next == nil || next.Key() == n.cur.Key() {
		return
	}
	from := n.cur.Key()
	n.cur = next
	n.Switches++
	if n.cfg.OnSwitch != nil {
		n.cfg.OnSwitch(n.id, from, next.Key(), n.cfg.Kernel.Now())
	}
}
