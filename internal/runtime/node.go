package runtime

import (
	"fmt"
	"os"
	"sort"

	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/member"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sig"
	"btr/internal/sim"
)

// debugTrace gates stderr diagnostics for record rejection and watchdog
// firings (BTR_DEBUG_WATCHDOG=1) — the tool for diagnosing why a live or
// multi-process deployment misses arrivals. Cached: the checks sit on the
// per-message hot path.
var debugTrace = os.Getenv("BTR_DEBUG_WATCHDOG") != ""

// arrival is one received (or locally produced) record with provenance.
type arrival struct {
	env  sig.Envelope
	rec  evidence.Record
	atts []sig.Envelope
	at   sim.Time
	// audited is set once re-execution confirmed the record is
	// self-consistent (or the producer is a source, where consistency
	// cannot be checked).
	audited bool
	// consistent is the audit verdict.
	consistent bool
}

// slotKey indexes the inbox by (consumer replica, logical producer).
type slotKey struct {
	consumer flow.TaskID
	logical  flow.TaskID
}

// watchKey names one armed arrival watchdog: the edge it guards plus the
// period it covers.
type watchKey struct {
	period   uint64
	from, to flow.TaskID // producer replica -> consumer replica
}

// Node is one BTR runtime node.
type Node struct {
	id  network.NodeID
	cfg *Config
	sys *System

	behavior *Behavior
	crashed  bool
	// chainArmed tracks whether the self-rescheduling period chain is
	// still alive: schedulePeriod re-arms it, and the chain dies (flag
	// cleared) when a link fires while crashed or non-member. Restart
	// consults it so a crash healed within the same period does not end
	// up with two concurrent chains.
	chainArmed bool

	// strat and planner are the node's *current epoch's* strategy and
	// plan source. Without membership epochs they alias cfg.Strategy /
	// cfg.Planner forever; an epoch activation swaps both atomically
	// with the plan.
	strat   *plan.Strategy
	planner PlanSource
	// memberNow reports whether this node is an active member of the
	// current epoch. Dormant slots (not yet joined, or retired) keep
	// their runtime but schedule no periods, emit nothing, and flood
	// nothing.
	memberNow bool
	// Epoch-switch state (nil / empty unless Config.Epochs is set).
	elog        *member.Log
	seenEpoch   map[[16]byte]bool
	activeEpoch uint64

	cur    *plan.Plan    // current mode's plan
	faults plan.FaultSet // append-only local fault set

	// inbox: per period, per (consumer, logical producer), arrivals.
	inbox map[uint64]map[slotKey][]*arrival
	// firstRecord tracks the first record content per (producer replica,
	// period) for equivocation detection.
	firstRecord map[string]sig.Envelope
	// seenEvidence dedups evidence by ID.
	seenEvidence map[[16]byte]bool
	// attributor aggregates path accusations.
	attributor *evidence.Attributor
	// evBudget counts evidence messages processed per neighbor this
	// period (rate limit).
	evBudget map[network.NodeID]int
	// accusedSlots dedups locally-generated accusations.
	accusedSlots map[string]bool
	// watchdogs holds the armed arrival-watchdog handles. When the
	// awaited record arrives, the watchdog is cancelled immediately —
	// dead watchdog closures no longer sit in the event heap until their
	// timestamp drains (they used to dominate the pending set: one per
	// consumed edge per period, almost all of them no-ops).
	watchdogs map[watchKey]sim.Handle
	// val is the lazily built, node-lifetime evidence validator (see
	// validator() in detect.go).
	val *evidence.Validator

	// Stats.
	EvidenceAccepted int
	EvidenceRejected int
	EvidenceDropped  int // rate-limited
	Switches         int
	EpochSwitches    int
}

func newNode(id network.NodeID, cfg *Config) *Node {
	return &Node{
		id:           id,
		cfg:          cfg,
		strat:        cfg.Strategy,
		planner:      cfg.Planner,
		memberNow:    true,
		cur:          cfg.Strategy.Plans[""],
		faults:       plan.NewFaultSet(),
		inbox:        map[uint64]map[slotKey][]*arrival{},
		firstRecord:  map[string]sig.Envelope{},
		seenEvidence: map[[16]byte]bool{},
		attributor:   evidence.NewAttributor(cfg.Strategy.Opts.OmissionThreshold),
		evBudget:     map[network.NodeID]int{},
		accusedSlots: map[string]bool{},
		watchdogs:    map[watchKey]sim.Handle{},
	}
}

// ID returns the node's identity.
func (n *Node) ID() network.NodeID { return n.id }

// FaultSet returns the node's local fault set.
func (n *Node) FaultSet() plan.FaultSet { return n.faults }

// start schedules period 0.
func (n *Node) start() { n.schedulePeriod(0) }

// periodStart returns the absolute start time of period p.
func (n *Node) periodStart(p uint64) sim.Time {
	return sim.Time(p) * n.strat.Base.Period
}

// schedulePeriod sets up all of this node's slot executions and watchdogs
// for period p, then re-arms for p+1. A node that is not a member of the
// current epoch (dormant or retired) schedules nothing — retirement ends
// the chain here.
func (n *Node) schedulePeriod(p uint64) {
	if n.crashed || !n.memberNow {
		n.chainArmed = false
		return
	}
	n.chainArmed = true
	k := n.cfg.Kernel
	base := n.periodStart(p)
	cur := n.cur // capture: activation may swap plans mid-period

	// Reset per-period evidence budgets (clear keeps the map's storage
	// instead of re-growing a fresh one every period) and flood bogus
	// evidence if the adversary asked for it.
	clear(n.evBudget)
	if b := n.behavior; b != nil && b.BogusEvidencePerPeriod > 0 {
		n.floodBogus(b.BogusEvidencePerPeriod)
	}

	// Execute this node's slots.
	for _, slot := range cur.Table.Slots[n.id] {
		slot := slot
		k.At(base+slot.Start, func() { n.beginTask(cur, p, slot.Task) })
		k.At(base+slot.End, func() { n.finishTask(cur, p, slot.Task) })
	}
	// Arm arrival watchdogs for edges whose consumer lives here (local
	// handoffs included: a colocated producer replica can omit too). The
	// handle is kept so the watchdog can be disarmed the moment the
	// record arrives.
	margin := n.strat.Opts.WatchdogMargin
	for e, w := range cur.Table.Msgs {
		if cur.Assign[e.To] != n.id {
			continue
		}
		e, w := e, w
		h := k.At(base+w.Arrive+margin, func() { n.checkArrived(cur, p, e, w) })
		n.watchdogs[watchKey{p, e.From, e.To}] = h
	}
	// Garbage-collect old inbox periods (keep two).
	if p >= 2 {
		delete(n.inbox, p-2)
	}
	k.At(base+n.strat.Base.Period, func() { n.schedulePeriod(p + 1) })
}

// chosenInputs picks, for each logical input of task, the record the task
// will compute with: the first *audited-consistent* arrival, with majority
// vote among source replicas (sources cannot be audited). Returns nil if
// some logical input has no usable record (omission upstream).
func (n *Node) chosenInputs(cur *plan.Plan, p uint64, task flow.TaskID) ([]*arrival, bool) {
	byLogical := map[flow.TaskID][]*arrival{}
	var logicals []flow.TaskID
	for _, e := range cur.Aug.Inputs(task) {
		logical, _ := plan.SplitReplica(e.From)
		if _, ok := byLogical[logical]; !ok {
			logicals = append(logicals, logical)
			byLogical[logical] = nil
		}
	}
	sort.Slice(logicals, func(i, j int) bool { return logicals[i] < logicals[j] })
	perSlot := n.inbox[p]
	var chosen []*arrival
	for _, logical := range logicals {
		arr := perSlot[slotKey{task, logical}]
		var pick *arrival
		if len(arr) > 0 && arr[0].rec.Producer != "" {
			if isSourceLogical(cur, logical) {
				pick = majority(arr)
				if pick != nil {
					n.accuseSourceMinority(p, task, arr, pick)
				}
			} else {
				for _, a := range arr {
					if a.audited && a.consistent {
						pick = a
						break
					}
				}
			}
		}
		if pick == nil {
			return nil, false
		}
		chosen = append(chosen, pick)
	}
	return chosen, true
}

func isSourceLogical(cur *plan.Plan, logical flow.TaskID) bool {
	if t, ok := cur.Pruned.Tasks[logical]; ok {
		return t.Source
	}
	return false
}

// majority returns the arrival whose value has the most supporters
// (ties: earliest arrival among the largest class).
func majority(arr []*arrival) *arrival {
	counts := map[string]int{}
	for _, a := range arr {
		counts[string(a.rec.Value)]++
	}
	best, bestCount := -1, 0
	for i, a := range arr {
		c := counts[string(a.rec.Value)]
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return nil
	}
	return arr[best]
}

// beginTask is a hook at slot start; execution semantics are applied at
// finishTask (the table accounts for the WCET in between).
func (n *Node) beginTask(cur *plan.Plan, p uint64, task flow.TaskID) {
	if n.crashed || n.cur != cur {
		return
	}
}

// finishTask computes the task's output at its slot end and emits it.
func (n *Node) finishTask(cur *plan.Plan, p uint64, task flow.TaskID) {
	if n.crashed || n.cur != cur {
		return
	}
	logical, _ := plan.SplitReplica(task)
	lt, ok := cur.Pruned.Tasks[logical]
	isChecker := plan.IsChecker(logical)
	if !ok && !isChecker {
		return
	}

	var value []byte
	var chosen []*arrival
	switch {
	case isChecker:
		n.runChecker(cur, p, task)
		return
	case lt.Source:
		value = n.cfg.Source(logical, p)
	default:
		var usable bool
		chosen, usable = n.chosenInputs(cur, p, task)
		if !usable {
			return // upstream omission: this replica stays silent
		}
		recs := make([]evidence.Record, len(chosen))
		for i, a := range chosen {
			recs[i] = a.rec
		}
		value = n.cfg.Compute(logical, p, recs)
	}

	// Build the signed record committing to the chosen inputs.
	var atts []sig.Envelope
	for _, a := range chosen {
		atts = append(atts, a.env)
	}
	slotEnd := n.slotEnd(cur, task)
	rec := evidence.Record{
		Producer: task, Logical: logical, Node: n.id,
		Period: p, SendOff: slotEnd, Value: value,
		InputsDigest: evidence.DigestEnvelopes(atts),
	}

	// Actuate if this replica implements a logical sink.
	if lt != nil && lt.Sink {
		n.actuate(cur, p, logical, rec, atts)
	}

	// Emit one message per output edge.
	for _, e := range cur.Aug.Outputs(task) {
		n.emit(cur, p, rec, atts, e)
	}
}

// slotEnd looks up the task's planned completion offset.
func (n *Node) slotEnd(cur *plan.Plan, task flow.TaskID) sim.Time {
	return cur.Table.Finish[task]
}

// actuate delivers the sink command to the physical world (unless the
// adversary suppresses it).
func (n *Node) actuate(cur *plan.Plan, p uint64, logical flow.TaskID, rec evidence.Record, atts []sig.Envelope) {
	if b := n.behavior; b != nil {
		if b.SkipActuation {
			return
		}
		if b.OnOutput != nil {
			mutated, delay, send := b.OnOutput(rec, logical)
			if !send {
				return
			}
			rec = mutated
			if delay > 0 {
				at := n.cfg.Kernel.Now() + delay
				n.cfg.Kernel.After(delay, func() {
					if n.cfg.OnActuation != nil {
						n.cfg.OnActuation(n.id, logical, p, rec.Value, at)
					}
				})
				return
			}
		}
	}
	if n.cfg.OnActuation != nil {
		n.cfg.OnActuation(n.id, logical, p, rec.Value, n.cfg.Kernel.Now())
	}
}

// emit signs and sends one record instance along edge e, applying the
// adversary's output hook if installed.
func (n *Node) emit(cur *plan.Plan, p uint64, rec evidence.Record, atts []sig.Envelope, e flow.Edge) {
	outRec := rec
	var extraDelay sim.Time
	if b := n.behavior; b != nil && b.OnOutput != nil {
		mutated, delay, send := b.OnOutput(rec, e.To)
		if !send {
			return
		}
		outRec, extraDelay = mutated, delay
	}
	env := n.cfg.Registry.Seal(n.id, outRec.Encode())
	// Equivocation requires a fresh digest? No: the adversary mutates the
	// record but keeps the committed attachments (a mismatched digest
	// would be a bad-input proof instead).
	payload := dataPayload(env, atts)
	dst := cur.Assign[e.To]
	send := func() {
		if dst == n.id {
			n.acceptRecord(env, atts, nil)
			return
		}
		n.cfg.Net.Send(n.id, dst, network.ClassForeground, payload)
	}
	if extraDelay > 0 {
		n.cfg.Kernel.After(extraDelay, send)
	} else {
		send()
	}
}

// runChecker audits the sink replicas feeding checker task `task`
// (performed in detect.go; split for readability).
func (n *Node) runChecker(cur *plan.Plan, p uint64, task flow.TaskID) {
	n.auditSinkRecords(cur, p, task)
}

// onMessage is the network delivery handler.
func (n *Node) onMessage(m *network.Message) {
	if n.crashed {
		return
	}
	if len(m.Payload) == 0 {
		return
	}
	switch m.Payload[0] {
	case msgData:
		env, atts, err := parseDataPayload(m.Payload)
		if err != nil {
			return // malformed frame: MAC-level noise, drop
		}
		n.acceptRecord(env, atts, m)
	case msgEvidence:
		n.onEvidenceMessage(m)
	case msgMember:
		n.onEpochFrame(m.Payload, m)
	}
}

// acceptRecord ingests a dataflow record (remote or local handoff),
// running the detector checks.
func (n *Node) acceptRecord(env sig.Envelope, atts []sig.Envelope, m *network.Message) {
	dbg := func(reason string, rec *evidence.Record) {
		if !debugTrace {
			return
		}
		if rec != nil {
			fmt.Fprintf(os.Stderr, "[node %d] acceptRecord: %s (producer %s period %d from node %d)\n",
				n.id, reason, rec.Producer, rec.Period, env.Signer)
		} else {
			fmt.Fprintf(os.Stderr, "[node %d] acceptRecord: %s (signer %d)\n", n.id, reason, env.Signer)
		}
	}
	if !n.cfg.Registry.Check(env) {
		dbg("bad signature", nil)
		return // unsigned garbage: drop
	}
	if n.faults.Contains(env.Signer) {
		dbg("convicted signer", nil)
		return // isolate convicted nodes: their records are ignored
	}
	rec, err := evidence.DecodeRecord(env.Body)
	if err != nil || rec.Node != env.Signer {
		dbg("malformed record", nil)
		return
	}
	cur := n.cur
	// Find the consumer for this record on this node: the edge whose
	// producer is rec.Producer and whose consumer is assigned here.
	var consumers []flow.TaskID
	for _, e := range cur.Aug.Outputs(rec.Producer) {
		if cur.Assign[e.To] == n.id {
			consumers = append(consumers, e.To)
		}
	}
	if len(consumers) == 0 {
		dbg("no consumer in current mode", &rec)
		return // stale record from a previous mode
	}
	a := &arrival{env: env, rec: rec, atts: atts, at: n.cfg.Kernel.Now()}
	if !n.detectOnArrival(cur, a) {
		dbg("failed arrival detector", &rec)
		return // malformed (digest/attachment tampering): not an arrival
	}
	for _, c := range consumers {
		key := slotKey{c, rec.Logical}
		per := n.inbox[rec.Period]
		if per == nil {
			per = map[slotKey][]*arrival{}
			n.inbox[rec.Period] = per
		}
		// Dedup: one arrival per producer replica per consumer slot.
		dup := false
		for _, prev := range per[key] {
			if prev.rec.Producer == a.rec.Producer {
				dup = true
				break
			}
		}
		if !dup {
			per[key] = append(per[key], a)
		}
		// The awaited record is here: disarm the edge's watchdog instead
		// of letting a dead closure fire later (checkArrived would only
		// have found the arrival and returned).
		wk := watchKey{rec.Period, rec.Producer, c}
		if h, ok := n.watchdogs[wk]; ok {
			n.cfg.Kernel.Cancel(h)
			delete(n.watchdogs, wk)
		}
	}
}
