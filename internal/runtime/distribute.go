package runtime

import (
	"errors"

	"btr/internal/evidence"
	"btr/internal/network"
)

// Evidence distribution (§4.3): flooding on the reserved bandwidth class.
// Every forwarder endorses the blob with its own signature, validates
// before forwarding, and rate-limits per neighbor — so (a) distribution
// latency is bounded regardless of foreground load, (b) a node that
// injects invalid evidence hands every neighbor a proof against itself,
// and (c) a flooding adversary cannot exhaust verification capacity.

// forwardEvidence floods ev to all neighbors, endorsed by this node.
//
// This is the encode-once fast path: decoded (or Canon'd) evidence
// returns its retained wire bytes from Encode, and the endorsement seal +
// frame come from the registry's seal memo — so re-flooding a blob this
// node (or a same-seed trial anywhere in the process) has sealed before
// allocates nothing and performs no signing.
func (n *Node) forwardEvidence(ev evidence.Evidence) {
	if b := n.behavior; b != nil && b.SuppressForwarding {
		return
	}
	payload := n.cfg.Registry.SealedPayload(n.id, msgEvidence, ev.Encode())
	for _, nb := range n.cfg.Net.Topology().Neighbors(n.id) {
		n.cfg.Net.SendDirect(n.id, nb, network.ClassEvidence, payload)
	}
}

// floodBogus implements the DoS adversary: invalid evidence blobs signed
// by this node, sprayed at every neighbor. The "re-sent identical
// payload" amortization is local: the junk is sealed and framed once and
// sprayed count x neighbors times. It deliberately does NOT go through
// the seal memo — every period's junk is fresh random bytes, so each
// entry would be dead weight whose only effect is churning honest cached
// seals out of the capped shards. The attacker pays for its own spray.
func (n *Node) floodBogus(count int) {
	junk := make([]byte, 200)
	for i := range junk {
		junk[i] = byte(n.cfg.Kernel.RNG().Uint64())
	}
	payload := evidencePayload(n.cfg.Registry.Seal(n.id, junk))
	for i := 0; i < count; i++ {
		for _, nb := range n.cfg.Net.Topology().Neighbors(n.id) {
			n.cfg.Net.SendDirect(n.id, nb, network.ClassEvidence, payload)
		}
	}
}

// onEvidenceMessage handles an incoming evidence frame from a neighbor.
func (n *Node) onEvidenceMessage(m *network.Message) {
	if n.faults.Contains(m.From) {
		return // isolate convicted nodes: no further verification work
	}
	// Rate limit per neighbor per period: bounded verification work no
	// matter how hard a neighbor floods.
	n.evBudget[m.From]++
	if n.evBudget[m.From] > n.cfg.EvidenceRateLimit {
		n.EvidenceDropped++
		return
	}
	wrapper, err := parseEvidencePayload(m.Payload)
	if err != nil {
		return // unframeable: MAC-level garbage
	}
	if !n.cfg.Registry.Check(wrapper) {
		return // endorsement signature invalid: cannot attribute, drop
	}
	inner, err := evidence.Decode(wrapper.Body)
	if err != nil {
		// The endorser signed an undecodable blob: proof against it.
		n.EvidenceRejected++
		n.raiseEvidence(evidence.Evidence{
			Kind: evidence.KindBogus, Accused: wrapper.Signer, Reporter: n.id,
			DetectedAt: n.cfg.Kernel.Now(), Primary: wrapper,
		})
		return
	}
	id := inner.ID()
	if n.seenEvidence[id] {
		return
	}
	if verr := n.validator().Validate(inner); verr != nil {
		n.EvidenceRejected++
		// Mode-dependent kinds (timing) can fail validation during a
		// transition without the endorser being faulty; don't convert
		// those into bogus-endorsement proofs. Everything else validates
		// against mode-independent facts (signatures, digests,
		// re-execution), so a failure there convicts the endorser.
		if inner.Kind != evidence.KindTiming && !errors.Is(verr, errModeSkew) {
			n.raiseEvidence(evidence.Evidence{
				Kind: evidence.KindBogus, Accused: wrapper.Signer, Reporter: n.id,
				DetectedAt: n.cfg.Kernel.Now(), Primary: wrapper,
			})
		}
		return
	}
	n.seenEvidence[id] = true
	n.EvidenceAccepted++
	if n.cfg.OnEvidence != nil {
		n.cfg.OnEvidence(n.id, inner, n.cfg.Kernel.Now())
	}
	n.actOnEvidence(inner)
	n.forwardEvidence(inner)
}

// errModeSkew is a sentinel for validation failures that may stem from the
// validator's own mode lagging the reporter's (reserved for future use;
// timing evidence is currently the only mode-dependent kind and is
// special-cased by kind).
var errModeSkew = errors.New("runtime: validation depends on mode state")
