package runtime

import (
	"fmt"
	"os"

	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sched"
	"btr/internal/sig"
	"btr/internal/sim"
)

// validator returns this node's evidence validator. It is built once per
// node lifetime (no per-message allocation): the closures read the node's
// current plan dynamically, so mode switches need no rebuild.
func (n *Node) validator() *evidence.Validator {
	if n.val != nil {
		return n.val
	}
	n.val = &evidence.Validator{
		Reg: n.cfg.Registry,
		Recompute: func(task flow.TaskID, period uint64, inputs []evidence.Record) ([]byte, bool) {
			if n.isSourceTask(task) {
				return nil, false // environment samples cannot be re-executed
			}
			return n.cfg.Compute(task, period, inputs), true
		},
		Window: func(producer flow.TaskID, period uint64) (sim.Time, sim.Time, bool) {
			_, slot, ok := n.slotOf(producer)
			if !ok {
				return 0, 0, false
			}
			return slot.Start, slot.End, true
		},
	}
	return n.val
}

func (n *Node) isSourceTask(logical flow.TaskID) bool {
	if t, ok := n.strat.Base.Tasks[logical]; ok {
		return t.Source
	}
	return false
}

// slotOf finds the producer's slot in the current plan.
func (n *Node) slotOf(task flow.TaskID) (node int, s sched.Slot, ok bool) {
	nd, slot, ok := n.cur.Table.SlotFor(task)
	return int(nd), slot, ok
}

// detectOnArrival runs the detector checks on a freshly received record:
// equivocation tracking (including the producer's attached inputs, which
// catches cross-consumer equivocation), timing validation, and the
// re-execution audit. It returns false if the record is malformed and
// should not count as an arrival.
func (n *Node) detectOnArrival(cur *plan.Plan, a *arrival) bool {
	rec := a.rec

	// Equivocation tracking for the record itself...
	n.trackEquivocation(a.env, rec)
	// ...and for each well-signed attachment (another producer's record).
	for _, att := range a.atts {
		if n.cfg.Registry.Check(att) {
			if ar, err := evidence.DecodeRecord(att.Body); err == nil && ar.Node == att.Signer {
				n.trackEquivocation(att, ar)
			}
		}
	}

	// Timing: the claimed send offset must lie inside the producer's
	// scheduled slot. (A lying claim that stays in-window but arrives
	// late is handled by the arrival watchdog as a path accusation.)
	if _, slot, ok := n.cur.Table.SlotFor(rec.Producer); ok {
		if rec.SendOff < slot.Start || rec.SendOff > slot.End {
			n.raiseEvidence(evidence.Evidence{
				Kind: evidence.KindTiming, Accused: rec.Node, Reporter: n.id,
				DetectedAt: n.cfg.Kernel.Now(), Primary: a.env,
			})
			// Still an arrival: the value may be fine, and the proof
			// already convicts the producer.
		}
	}

	// Audit: sources cannot be re-executed; their cross-replica
	// comparison happens at input-choice time (majority voting).
	if n.isSourceTask(rec.Logical) {
		a.audited, a.consistent = true, true
		return true
	}
	// Digest must cover the attachments exactly; otherwise a relay may
	// have tampered and we cannot attribute — treat as non-arrival.
	if evidence.DigestEnvelopes(a.atts) != rec.InputsDigest {
		return false
	}
	inputs := make([]evidence.Record, 0, len(a.atts))
	for _, att := range a.atts {
		if !n.cfg.Registry.Check(att) {
			// The producer committed to a garbage input: bad-input proof.
			n.raiseEvidence(evidence.Evidence{
				Kind: evidence.KindBadInput, Accused: rec.Node, Reporter: n.id,
				DetectedAt: n.cfg.Kernel.Now(), Primary: a.env, Attachments: a.atts,
			})
			a.audited, a.consistent = true, false
			return true
		}
		ar, err := evidence.DecodeRecord(att.Body)
		if err != nil || ar.Node != att.Signer {
			n.raiseEvidence(evidence.Evidence{
				Kind: evidence.KindBadInput, Accused: rec.Node, Reporter: n.id,
				DetectedAt: n.cfg.Kernel.Now(), Primary: a.env, Attachments: a.atts,
			})
			a.audited, a.consistent = true, false
			return true
		}
		inputs = append(inputs, ar)
	}
	want := n.cfg.Compute(rec.Logical, rec.Period, inputs)
	a.audited = true
	a.consistent = string(want) == string(rec.Value)
	if !a.consistent {
		n.raiseEvidence(evidence.Evidence{
			Kind: evidence.KindWrongOutput, Accused: rec.Node, Reporter: n.id,
			DetectedAt: n.cfg.Kernel.Now(), Primary: a.env, Attachments: a.atts,
		})
	}
	return true
}

// trackEquivocation remembers the first record content seen per (producer
// replica, period) and emits an equivocation proof when a conflicting
// second version appears.
func (n *Node) trackEquivocation(env sig.Envelope, rec evidence.Record) {
	key := fmt.Sprintf("%s|%d", rec.Producer, rec.Period)
	if prev, ok := n.firstRecord[key]; ok {
		prevRec, err := evidence.DecodeRecord(prev.Body)
		if err == nil && evidence.SameSlot(prevRec, rec) && evidence.Conflicts(prevRec, rec) {
			n.raiseEvidence(evidence.Evidence{
				Kind: evidence.KindEquivocation, Accused: rec.Node, Reporter: n.id,
				DetectedAt: n.cfg.Kernel.Now(), Primary: prev, Secondary: env,
			})
		}
		return
	}
	n.firstRecord[key] = env
}

// auditSinkRecords is the checker's scheduled body. The per-arrival audit
// has already re-executed each sink replica's command and fed its
// attachments through the equivocation tracker, so the slot mainly
// represents the checker's reserved CPU time; what remains is detecting
// silent sink replicas, which the arrival watchdogs cover.
func (n *Node) auditSinkRecords(cur *plan.Plan, p uint64, task flow.TaskID) {}

// checkArrived is the arrival watchdog: if the record for edge e (period
// p) has not arrived by its planned window plus margin, the node raises a
// path accusation over the route the message should have taken (§4.2:
// "allow both the sender and the recipient to declare a problem with the
// path between them").
func (n *Node) checkArrived(cur *plan.Plan, p uint64, e flow.Edge, w sched.MsgWindow) {
	delete(n.watchdogs, watchKey{p, e.From, e.To}) // fired; drop the handle
	if n.crashed || n.cur != cur {
		return
	}
	logical, _ := plan.SplitReplica(e.From)
	for _, a := range n.inbox[p][slotKey{e.To, logical}] {
		if a.rec.Producer == e.From {
			return // arrived
		}
	}
	srcNode := cur.Assign[e.From]
	if debugTrace {
		fmt.Fprintf(os.Stderr, "[node %d] watchdog: edge %s->%s period %d missing (producer on node %d)\n",
			n.id, e.From, e.To, p, srcNode)
	}
	if n.faults.Contains(srcNode) {
		return // already convicted; mode change under way
	}
	slotKeyStr := fmt.Sprintf("%s|%d|%s", e.From, p, e.To)
	if n.accusedSlots[slotKeyStr] {
		return
	}
	n.accusedSlots[slotKeyStr] = true
	path, ok := n.cfg.Net.Topology().Path(srcNode, n.id)
	if !ok {
		path = []network.NodeID{srcNode, n.id}
	}
	n.accusePath(path, e.From, e.To, p)
}

// accuseSourceMinority raises accusations against source replicas whose
// value disagrees with the majority (sensor disagreement cannot be
// re-executed; see DESIGN.md).
func (n *Node) accuseSourceMinority(p uint64, consumer flow.TaskID, arr []*arrival, winner *arrival) {
	for _, a := range arr {
		if string(a.rec.Value) == string(winner.rec.Value) {
			continue
		}
		key := fmt.Sprintf("src|%s|%d", a.rec.Producer, p)
		if n.accusedSlots[key] {
			continue
		}
		n.accusedSlots[key] = true
		n.accusePath([]network.NodeID{a.rec.Node, n.id}, a.rec.Producer, consumer, p)
	}
}

// accusePath signs and raises a path accusation.
func (n *Node) accusePath(path []network.NodeID, producer, consumer flow.TaskID, p uint64) {
	acc := evidence.Accusation{
		Reporter: n.id, Path: path, Producer: producer, Consumer: consumer, Period: p,
	}
	env := n.cfg.Registry.Seal(n.id, acc.Encode())
	n.raiseEvidence(evidence.Evidence{
		Kind: evidence.KindPathAccusation, Accused: -1, Reporter: n.id,
		DetectedAt: n.cfg.Kernel.Now(), Primary: env,
	})
}

// raiseEvidence handles locally-generated evidence: act on it and flood it
// (unless the adversary suppresses detection on this node).
func (n *Node) raiseEvidence(ev evidence.Evidence) {
	if b := n.behavior; b != nil && b.SuppressDetection {
		return
	}
	ev = ev.Canon() // encode once: ID and the flood below reuse the wire
	id := ev.ID()
	if n.seenEvidence[id] {
		return
	}
	n.seenEvidence[id] = true
	if n.cfg.OnEvidence != nil {
		n.cfg.OnEvidence(n.id, ev, n.cfg.Kernel.Now())
	}
	n.actOnEvidence(ev)
	n.forwardEvidence(ev)
}
