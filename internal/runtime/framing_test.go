package runtime

import (
	"bytes"
	"testing"
	"testing/quick"

	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/sig"
)

func TestDataPayloadRoundTrip(t *testing.T) {
	reg := sig.NewRegistry(1, 3)
	rec := evidence.Record{Producer: "t#0", Logical: "t", Node: 1, Period: 9, Value: []byte("v")}
	env := reg.Seal(1, rec.Encode())
	att := reg.Seal(0, evidence.Record{Producer: "s#0", Logical: "s", Node: 0, Period: 9, Value: []byte("u")}.Encode())
	p := dataPayload(env, []sig.Envelope{att})
	gotEnv, gotAtts, err := parseDataPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotEnv.Body, env.Body) || gotEnv.Signer != 1 {
		t.Error("envelope mangled")
	}
	if len(gotAtts) != 1 || !bytes.Equal(gotAtts[0].Body, att.Body) {
		t.Error("attachments mangled")
	}
}

func TestDataPayloadRejectsMalformed(t *testing.T) {
	reg := sig.NewRegistry(1, 2)
	env := reg.Seal(0, []byte("x"))
	good := dataPayload(env, nil)
	cases := [][]byte{
		{},
		{msgData},
		good[:len(good)-1],
		append([]byte{msgEvidence}, good[1:]...), // wrong kind byte
	}
	for i, c := range cases {
		if _, _, err := parseDataPayload(c); err == nil {
			t.Errorf("case %d: malformed payload accepted", i)
		}
	}
}

func TestDataPayloadFuzz(t *testing.T) {
	f := func(b []byte) bool {
		_, _, _ = parseDataPayload(b) // must not panic
		_, _ = parseEvidencePayload(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEvidencePayloadRoundTrip(t *testing.T) {
	reg := sig.NewRegistry(1, 2)
	wrapper := reg.Seal(1, []byte("inner-evidence-bytes"))
	p := evidencePayload(wrapper)
	got, err := parseEvidencePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Signer != 1 || !bytes.Equal(got.Body, wrapper.Body) {
		t.Error("wrapper mangled")
	}
}

func TestMajoritySelection(t *testing.T) {
	mk := func(prod string, val string) *arrival {
		return &arrival{rec: evidence.Record{
			Producer: flow.TaskID("s#" + prod), Logical: "s", Value: []byte(val),
		}}
	}
	// 2-vs-1: majority wins regardless of order.
	win := majority([]*arrival{mk("0", "bad"), mk("1", "good"), mk("2", "good")})
	if string(win.rec.Value) != "good" {
		t.Errorf("majority picked %q", win.rec.Value)
	}
	// Tie: first arrival among the largest classes wins (deterministic).
	win = majority([]*arrival{mk("0", "a"), mk("1", "b")})
	if string(win.rec.Value) != "a" {
		t.Errorf("tie-break picked %q", win.rec.Value)
	}
	if majority(nil) != nil {
		t.Error("majority of nothing should be nil")
	}
}
