package runtime

import (
	"bytes"
	"testing"

	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sig"
	"btr/internal/sim"
)

// lossyHarness builds a chain system with residual per-hop loss.
func lossyHarness(t *testing.T, seed uint64, lossProb float64) *harness {
	t.Helper()
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	k := sim.NewKernel(seed)
	topo := network.FullMesh(6, 20_000_000, 50*sim.Microsecond)
	cfg := network.DefaultConfig()
	cfg.LossProb = lossProb
	nw := network.New(k, topo, cfg)
	reg := sig.NewRegistry(seed, 6)
	strategy, err := plan.Build(g, topo, plan.DefaultOptions(1, 500*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{k: k, net: nw, strategy: strategy,
		actuations: map[flow.TaskID]map[uint64][][]byte{}}
	h.sys = New(Config{
		Kernel: k, Net: nw, Registry: reg, Strategy: strategy,
		OnActuation: func(node network.NodeID, sink flow.TaskID, period uint64, value []byte, at sim.Time) {
			per := h.actuations[sink]
			if per == nil {
				per = map[uint64][][]byte{}
				h.actuations[sink] = per
			}
			per[period] = append(per[period], value)
		},
		OnEvidence: func(node network.NodeID, ev evidence.Evidence, at sim.Time) {
			h.evidences = append(h.evidences, ev)
		},
		OnSwitch: func(node network.NodeID, from, to string, at sim.Time) { h.switches++ },
	})
	return h
}

func TestResidualLossDoesNotCorruptOutputs(t *testing.T) {
	// The paper assumes FEC masks most losses; the residual must be
	// absorbed by f+1 replication without output disturbance. Spurious
	// accusations may occur but must stay below the conviction threshold
	// often enough for the system to keep producing correct output.
	h := lossyHarness(t, 5, 0.0005)
	h.run(40)
	for p := uint64(0); p < 38; p++ {
		acts := h.actuations["c2"][p]
		if len(acts) == 0 {
			t.Fatalf("period %d: actuation lost under residual loss", p)
		}
		if !bytes.Equal(acts[0], expectedChainValue(2, p)) {
			t.Fatalf("period %d: output corrupted under residual loss", p)
		}
	}
}

func TestHeavyLossStillNoWrongValues(t *testing.T) {
	// Even absurd loss (1%) may cost actuations but must never produce a
	// *wrong* value: losses cannot forge signatures.
	h := lossyHarness(t, 6, 0.01)
	h.run(30)
	for p := uint64(0); p < 28; p++ {
		for _, v := range h.actuations["c2"][p] {
			if !bytes.Equal(v, expectedChainValue(2, p)) {
				t.Fatalf("period %d: wrong value under loss", p)
			}
		}
	}
}

func TestDualBusOmissionAttribution(t *testing.T) {
	// Multi-hop accusation paths include the bus guardians (the known
	// attribution ambiguity documented on evidence.Attributor): the
	// omitting node must be convicted; a guardian sharing every
	// problematic path may be convicted alongside it. Outputs must stay
	// correct either way.
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	k := sim.NewKernel(7)
	topo := network.DualBus(7, 20_000_000, 50*sim.Microsecond)
	nw := network.New(k, topo, network.DefaultConfig())
	reg := sig.NewRegistry(7, 7)
	strategy, err := plan.Build(g, topo, plan.DefaultOptions(1, 500*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{k: k, net: nw, strategy: strategy,
		actuations: map[flow.TaskID]map[uint64][][]byte{}}
	h.sys = New(Config{
		Kernel: k, Net: nw, Registry: reg, Strategy: strategy,
		OnActuation: func(node network.NodeID, sink flow.TaskID, period uint64, value []byte, at sim.Time) {
			per := h.actuations[sink]
			if per == nil {
				per = map[uint64][][]byte{}
				h.actuations[sink] = per
			}
			per[period] = append(per[period], value)
		},
	})
	victim := h.nodeOf("c1#0")
	h.k.At(4*h.strategy.Base.Period-1, func() {
		h.sys.SetBehavior(victim, &Behavior{
			OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
				if rec.Logical == "c1" {
					return rec, 0, false
				}
				return rec, 0, true
			},
		})
	})
	h.run(30)
	// Every correct node must hold the victim in its fault set.
	for id := 0; id < 7; id++ {
		n := network.NodeID(id)
		if n == victim {
			continue
		}
		if !h.sys.FaultSetOf(n).Contains(victim) {
			t.Errorf("node %d did not convict the omitter on the dual bus", id)
		}
	}
	for p := uint64(0); p < 28; p++ {
		if len(h.actuations["c2"][p]) == 0 {
			t.Errorf("period %d: output lost on dual bus", p)
		}
	}
}

func TestFaultDuringTransition(t *testing.T) {
	// Second fault lands while the first transition is still in flight
	// (§4.4's "some confusion can briefly result"): the system must still
	// converge on the union fault set and keep outputs flowing.
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritB)
	h := newHarness(t, g, 8, 2, 20)
	v1 := h.nodeOf("c1#0")
	v2 := h.nodeOf("c0#0")
	if v1 == v2 {
		t.Fatalf("fixture degenerate: same node hosts both targets")
	}
	p := h.strategy.Base.Period
	h.k.At(3*p+sim.Millisecond, func() { h.sys.Crash(v1) })
	// Strike again inside the first fault's recovery window.
	h.k.At(3*p+sim.Millisecond+h.strategy.Delta/2, func() { h.sys.Crash(v2) })
	h.run(40)

	want := plan.NewFaultSet(v1, v2)
	key, ok := h.sys.Converged(want)
	if !ok || key != want.Key() {
		t.Fatalf("no convergence after overlapping faults: key=%q ok=%v", key, ok)
	}
	// Outputs must resume (brief disruption allowed within 2R).
	missing := 0
	for p := uint64(0); p < 38; p++ {
		if len(h.actuations["c2"][p]) == 0 {
			missing++
		}
	}
	maxMissing := int(2*h.strategy.RNeeded/h.strategy.Base.Period) + 1
	if missing > maxMissing {
		t.Errorf("%d periods without actuation, budget %d", missing, maxMissing)
	}
}

func TestColludingSuppressorDoesNotBlockDetection(t *testing.T) {
	// f=2: one node corrupts the first-actuating sink replica; a second
	// compromised node suppresses its own detection and forwarding.
	// The remaining correct checker replicas must still convict the
	// corruptor within R.
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	h := newHarness(t, g, 8, 2, 21)
	base := h.strategy.Plans[""]
	firstSink := flow.TaskID("c2#0")
	for _, cand := range []flow.TaskID{"c2#1", "c2#2"} {
		if base.Table.Finish[cand] < base.Table.Finish[firstSink] {
			firstSink = cand
		}
	}
	corruptor := base.Assign[firstSink]
	// The suppressor: a node hosting one of the checker replicas.
	var suppressor network.NodeID = -1
	for _, id := range base.Aug.TaskIDs() {
		logical, _ := plan.SplitReplica(id)
		if plan.IsChecker(logical) && base.Assign[id] != corruptor {
			suppressor = base.Assign[id]
			break
		}
	}
	if suppressor == -1 {
		t.Fatal("no checker host found")
	}
	p := h.strategy.Base.Period
	faultAt := 5 * p
	h.k.At(faultAt-1, func() {
		h.sys.SetBehavior(suppressor, &Behavior{SuppressDetection: true, SuppressForwarding: true})
		h.sys.SetBehavior(corruptor, &Behavior{
			OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
				if rec.Logical == "c2" {
					rec.Value = []byte("bad")
				}
				return rec, 0, true
			},
		})
	})
	h.run(40)
	convicted := 0
	for id := 0; id < 8; id++ {
		n := network.NodeID(id)
		if n == corruptor || n == suppressor {
			continue
		}
		if h.sys.FaultSetOf(n).Contains(corruptor) {
			convicted++
		}
	}
	if convicted < 6 {
		t.Fatalf("only %d/6 correct nodes convicted the corruptor despite a colluding suppressor", convicted)
	}
	// Bad actuations bounded by R.
	var lastBad sim.Time
	for p := uint64(0); p < 38; p++ {
		for _, v := range h.actuations["c2"][p] {
			if !bytes.Equal(v, expectedChainValue(2, p)) {
				lastBad = sim.Time(p+1) * h.strategy.Base.Period
			}
		}
	}
	if lastBad > faultAt+h.strategy.RNeeded {
		t.Errorf("bad outputs until %v despite bound %v after %v", lastBad, h.strategy.RNeeded, faultAt)
	}
}

func TestSimultaneousFaultsSameInstant(t *testing.T) {
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritB)
	h := newHarness(t, g, 8, 2, 22)
	v1, v2 := h.nodeOf("c1#0"), h.nodeOf("c1#1")
	p := h.strategy.Base.Period
	h.k.At(3*p+sim.Millisecond, func() {
		h.sys.Crash(v1)
		h.sys.Crash(v2)
	})
	h.run(40)
	want := plan.NewFaultSet(v1, v2)
	key, ok := h.sys.Converged(want)
	if !ok || key != want.Key() {
		t.Fatalf("no convergence after simultaneous crashes: key=%q ok=%v", key, ok)
	}
}

func TestBeyondFaultBudgetDegradesGracefully(t *testing.T) {
	// f=1 but TWO nodes crash: the BTR guarantee is void, yet the system
	// must not panic, and PlanFor falls back to a covered subset.
	h := chainHarness(t, 23)
	v1, v2 := h.nodeOf("c1#0"), h.nodeOf("c1#1")
	p := h.strategy.Base.Period
	h.k.At(3*p, func() { h.sys.Crash(v1) })
	h.k.At(10*p, func() { h.sys.Crash(v2) })
	h.run(30) // must not panic
	// All c1 replicas are gone: outputs necessarily stop. Nothing to
	// assert beyond survival and bounded fault sets.
	for id := 0; id < 6; id++ {
		if h.sys.FaultSetOf(network.NodeID(id)).Len() > 2 {
			t.Errorf("node %d convicted more nodes than failed", id)
		}
	}
}
