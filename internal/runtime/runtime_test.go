package runtime

import (
	"bytes"
	"fmt"
	"testing"

	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sig"
	"btr/internal/sim"
)

// harness bundles a complete runtime system plus observation hooks.
type harness struct {
	k        *sim.Kernel
	net      *network.Network
	strategy *plan.Strategy
	sys      *System

	// actuations[period] lists commands in arrival order per sink.
	actuations map[flow.TaskID]map[uint64][][]byte
	evidences  []evidence.Evidence
	evidenceAt []sim.Time
	switches   int
}

// chainHarness builds a 3-task chain on a 6-node mesh with f=1.
func chainHarness(t *testing.T, seed uint64) *harness {
	t.Helper()
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	return newHarness(t, g, 6, 1, seed)
}

func newHarness(t *testing.T, g *flow.Graph, nodes, f int, seed uint64) *harness {
	t.Helper()
	k := sim.NewKernel(seed)
	topo := network.FullMesh(nodes, 20_000_000, 50*sim.Microsecond)
	nw := network.New(k, topo, network.DefaultConfig())
	reg := sig.NewRegistry(seed, nodes)
	strategy, err := plan.Build(g, topo, plan.DefaultOptions(f, 500*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		k: k, net: nw, strategy: strategy,
		actuations: map[flow.TaskID]map[uint64][][]byte{},
	}
	h.sys = New(Config{
		Kernel: k, Net: nw, Registry: reg, Strategy: strategy,
		OnActuation: func(node network.NodeID, sink flow.TaskID, period uint64, value []byte, at sim.Time) {
			per := h.actuations[sink]
			if per == nil {
				per = map[uint64][][]byte{}
				h.actuations[sink] = per
			}
			per[period] = append(per[period], value)
		},
		OnEvidence: func(node network.NodeID, ev evidence.Evidence, at sim.Time) {
			h.evidences = append(h.evidences, ev)
			h.evidenceAt = append(h.evidenceAt, at)
		},
		OnSwitch: func(node network.NodeID, from, to string, at sim.Time) {
			h.switches++
		},
	})
	return h
}

// run starts the system and simulates n periods.
func (h *harness) run(n uint64) {
	h.sys.Start()
	h.k.Run(sim.Time(n) * h.strategy.Base.Period)
}

// expectedChainValue computes the oracle output of chain task c<i> at p.
func expectedChainValue(i int, p uint64) []byte {
	v := evidence.SourceValue("c0", p)
	for j := 1; j <= i; j++ {
		v = evidence.HashCompute(flow.TaskID(fmt.Sprintf("c%d", j)), p,
			[]evidence.Record{{Logical: flow.TaskID(fmt.Sprintf("c%d", j-1)), Value: v}})
	}
	return v
}

// nodeOf returns the node hosting a replica in the base plan.
func (h *harness) nodeOf(replica flow.TaskID) network.NodeID {
	return h.strategy.Plans[""].Assign[replica]
}

func TestFaultFreeRun(t *testing.T) {
	h := chainHarness(t, 1)
	h.run(20)
	if len(h.evidences) != 0 {
		t.Fatalf("fault-free run produced %d pieces of evidence: first %v",
			len(h.evidences), h.evidences[0].Kind)
	}
	if h.switches != 0 {
		t.Fatalf("fault-free run switched modes %d times", h.switches)
	}
	// Every period 0..18 must have actuations with the oracle value
	// (period 19's slots may extend past the run horizon).
	for p := uint64(0); p < 19; p++ {
		acts := h.actuations["c2"][p]
		if len(acts) == 0 {
			t.Fatalf("no actuation in period %d", p)
		}
		want := expectedChainValue(2, p)
		for _, v := range acts {
			if !bytes.Equal(v, want) {
				t.Fatalf("period %d: actuation %x, want %x", p, v, want)
			}
		}
	}
	// All nodes still on the base plan.
	if key, ok := h.sys.Converged(plan.NewFaultSet()); !ok || key != "" {
		t.Errorf("converged=%v key=%q", ok, key)
	}
}

func TestCrashFaultConvictsAndSwitches(t *testing.T) {
	h := chainHarness(t, 2)
	victim := h.nodeOf("c1#0")
	h.k.At(3*h.strategy.Base.Period+sim.Millisecond, func() {
		h.sys.Crash(victim)
	})
	h.run(30)

	// Path accusations must exist, and the victim must be convicted on
	// every correct node.
	sawAccusation := false
	for _, ev := range h.evidences {
		if ev.Kind == evidence.KindPathAccusation {
			sawAccusation = true
		}
	}
	if !sawAccusation {
		t.Fatal("crash produced no path accusations")
	}
	excl := plan.NewFaultSet(victim)
	key, ok := h.sys.Converged(excl)
	if !ok {
		t.Fatal("correct nodes did not converge")
	}
	if key != excl.Key() {
		t.Fatalf("converged on plan %q, want %q", key, excl.Key())
	}
	// Outputs must continue: the surviving c1 replica feeds both c2
	// replicas (f+1 replication means a single crash never interrupts).
	for p := uint64(0); p < 28; p++ {
		if len(h.actuations["c2"][p]) == 0 {
			t.Errorf("no actuation in period %d despite replication", p)
		}
	}
}

func TestWrongOutputDetectedAndMasked(t *testing.T) {
	h := chainHarness(t, 3)
	victim := h.nodeOf("c1#0")
	// From period 5 on, node hosting c1#0 lies about its output value.
	h.k.At(5*h.strategy.Base.Period-1, func() {
		h.sys.SetBehavior(victim, &Behavior{
			OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
				if rec.Logical == "c1" {
					rec.Value = []byte("corrupted!")
				}
				return rec, 0, false || true
			},
		})
	})
	h.run(30)

	sawProof := false
	for _, ev := range h.evidences {
		if ev.Kind == evidence.KindWrongOutput && ev.Accused == victim {
			sawProof = true
			break
		}
	}
	if !sawProof {
		t.Fatal("no wrong-output proof against the lying node")
	}
	// Consumers only compute from audited-consistent inputs, so the lie
	// never reaches the actuator: every actuation matches the oracle.
	for p := uint64(0); p < 28; p++ {
		for _, v := range h.actuations["c2"][p] {
			if !bytes.Equal(v, expectedChainValue(2, p)) {
				t.Fatalf("period %d: corrupted value reached the actuator", p)
			}
		}
	}
	// And the system reconfigured away from the victim.
	if key, ok := h.sys.Converged(plan.NewFaultSet(victim)); !ok || key != plan.NewFaultSet(victim).Key() {
		t.Errorf("not converged on exclusion of %d: key=%q ok=%v", victim, key, ok)
	}
}

func TestSinkCommissionBoundedByR(t *testing.T) {
	h := chainHarness(t, 4)
	// Corrupt whichever sink replica actuates first so the fault is
	// externally visible (the plant acts on the first command).
	base := h.strategy.Plans[""]
	firstSink := flow.TaskID("c2#0")
	if base.Table.Finish["c2#1"] < base.Table.Finish["c2#0"] {
		firstSink = "c2#1"
	}
	victim := base.Assign[firstSink]
	faultAt := 5 * h.strategy.Base.Period
	h.k.At(faultAt-1, func() {
		h.sys.SetBehavior(victim, &Behavior{
			OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
				if rec.Logical == "c2" {
					rec.Value = []byte("bad actuation")
				}
				return rec, 0, true
			},
		})
	})
	h.run(40)

	// Wrong actuations exist (the actuator takes the first arrival)...
	var lastBadPeriod uint64
	sawBad := false
	for p := uint64(0); p < 38; p++ {
		for _, v := range h.actuations["c2"][p] {
			if !bytes.Equal(v, expectedChainValue(2, p)) {
				sawBad = true
				if p > lastBadPeriod {
					lastBadPeriod = p
				}
			}
		}
	}
	if !sawBad {
		t.Fatal("sink commission fault never produced a wrong actuation — test ineffective")
	}
	// ...but they stop within the strategy's recovery bound.
	lastBadTime := sim.Time(lastBadPeriod+1) * h.strategy.Base.Period
	if lastBadTime > faultAt+h.strategy.RNeeded {
		t.Errorf("bad outputs until %v, fault at %v, R=%v — bound violated",
			lastBadTime, faultAt, h.strategy.RNeeded)
	}
	// Checkers must have produced a wrong-output proof for the sink.
	sawProof := false
	for _, ev := range h.evidences {
		if ev.Kind == evidence.KindWrongOutput && ev.Accused == victim {
			sawProof = true
		}
	}
	if !sawProof {
		t.Error("checker did not prove the sink fault")
	}
}

func TestTimingFaultProof(t *testing.T) {
	h := chainHarness(t, 5)
	victim := h.nodeOf("c1#0")
	h.k.At(5*h.strategy.Base.Period-1, func() {
		h.sys.SetBehavior(victim, &Behavior{
			// The record *admits* an out-of-window send time (e.g., a
			// compromised executive stamping honestly) while the bytes
			// still arrive on time — the purest "right thing at the
			// wrong time" signature (§4.2). An actually-late send is
			// convicted through watchdog accusations instead (see
			// TestOmissionViaDelayAccusations).
			OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
				if rec.Logical == "c1" {
					rec.SendOff += 10 * sim.Millisecond
				}
				return rec, 0, true
			},
		})
	})
	h.run(30)
	saw := false
	for _, ev := range h.evidences {
		if ev.Kind == evidence.KindTiming && ev.Accused == victim {
			saw = true
			break
		}
	}
	if !saw {
		t.Fatal("no timing proof despite out-of-window send offset")
	}
}

func TestOmissionViaDelayAccusations(t *testing.T) {
	// The adversary delays without admitting it (SendOff stays in-window,
	// actual send late): no cryptographic proof is possible, so the
	// arrival watchdogs must accuse and the attributor convict.
	h := chainHarness(t, 6)
	victim := h.nodeOf("c1#0")
	h.k.At(5*h.strategy.Base.Period-1, func() {
		h.sys.SetBehavior(victim, &Behavior{
			OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
				if rec.Logical == "c1" {
					return rec, 0, false // pure omission
				}
				return rec, 0, true
			},
		})
	})
	h.run(30)
	if key, ok := h.sys.Converged(plan.NewFaultSet(victim)); !ok || key != plan.NewFaultSet(victim).Key() {
		t.Fatalf("omission not attributed: key=%q ok=%v", key, ok)
	}
	// Outputs never degraded (the other c1 replica serves consumers).
	for p := uint64(0); p < 28; p++ {
		if len(h.actuations["c2"][p]) == 0 {
			t.Errorf("period %d lost actuation", p)
		}
	}
}

func TestEquivocationAcrossConsumersDetected(t *testing.T) {
	// Avionics: gyro feeds both fc.filter and nav.fuse. A gyro replica
	// equivocating across the two consumers is caught when both versions
	// meet — via attachments or co-located consumers.
	g := flow.Avionics(25 * sim.Millisecond)
	h := newHarness(t, g, 6, 1, 7)
	victim := h.nodeOf("gyro#0")
	h.k.At(4*h.strategy.Base.Period-1, func() {
		h.sys.SetBehavior(victim, &Behavior{
			OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
				if rec.Logical == "gyro" {
					logical, _ := plan.SplitReplica(consumer)
					if logical == "fc.filter" {
						rec.Value = []byte("lie-to-fc")
					}
				}
				return rec, 0, true
			},
		})
	})
	h.run(30)
	// Either an equivocation proof or minority accusations must convict.
	if key, ok := h.sys.Converged(plan.NewFaultSet(victim)); !ok || key != plan.NewFaultSet(victim).Key() {
		t.Fatalf("equivocating source not excluded: key=%q ok=%v", key, ok)
	}
}

func TestBogusFloodSelfConvicts(t *testing.T) {
	h := chainHarness(t, 8)
	flooder := network.NodeID(0)
	// Make sure the flooder hosts nothing critical: flood from whichever
	// node it is anyway — conviction must happen regardless.
	h.k.At(3*h.strategy.Base.Period, func() {
		h.sys.SetBehavior(flooder, &Behavior{BogusEvidencePerPeriod: 4})
	})
	h.run(30)
	sawBogusProof := false
	for _, ev := range h.evidences {
		if ev.Kind == evidence.KindBogus && ev.Accused == flooder {
			sawBogusProof = true
			break
		}
	}
	if !sawBogusProof {
		t.Fatal("bogus flood produced no endorsement proof")
	}
	// Every correct node must have excluded the flooder.
	for id := 1; id < 6; id++ {
		if !h.sys.FaultSetOf(network.NodeID(id)).Contains(flooder) {
			t.Errorf("node %d did not convict the flooder", id)
		}
	}
	// Outputs unaffected throughout.
	for p := uint64(0); p < 28; p++ {
		acts := h.actuations["c2"][p]
		if len(acts) == 0 {
			t.Errorf("period %d lost actuation during flood", p)
			continue
		}
		if !bytes.Equal(acts[0], expectedChainValue(2, p)) {
			t.Errorf("period %d actuation corrupted during flood", p)
		}
	}
}

func TestEvidenceRateLimiting(t *testing.T) {
	// Repeatedly inject the *same valid* evidence from one neighbor: the
	// sender is not punishable (the blob is valid), so the per-neighbor
	// budget is the only thing bounding the receiver's verification work.
	h := chainHarness(t, 9)
	reg := h.sys.cfg.Registry
	acc := evidence.Accusation{Reporter: 1, Path: []network.NodeID{3, 4}, Producer: "c1#0", Consumer: "c2#0", Period: 1}
	ev := evidence.Evidence{
		Kind: evidence.KindPathAccusation, Accused: -1, Reporter: 1,
		DetectedAt: sim.Millisecond, Primary: reg.Seal(1, acc.Encode()),
	}
	wrapper := reg.Seal(1, ev.Encode())
	payload := evidencePayload(wrapper)
	receiver := h.sys.Node(2)
	for i := 0; i < 30; i++ {
		receiver.onEvidenceMessage(&network.Message{From: 1, To: 2, Payload: payload})
	}
	if receiver.EvidenceDropped == 0 {
		t.Error("per-neighbor budget never tripped after 30 injections")
	}
	if receiver.EvidenceDropped < 30-h.sys.cfg.EvidenceRateLimit {
		t.Errorf("dropped %d, want at least %d", receiver.EvidenceDropped, 30-h.sys.cfg.EvidenceRateLimit)
	}
}

func TestTwoStaggeredFaultsF2(t *testing.T) {
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritB)
	h := newHarness(t, g, 8, 2, 10)
	v1 := h.nodeOf("c1#0")
	h.k.At(3*h.strategy.Base.Period+sim.Millisecond, func() { h.sys.Crash(v1) })
	// Second fault after the first recovery: crash whichever node now
	// hosts c1#1 (from the base plan; it does not move since its node
	// stays healthy).
	v2 := h.nodeOf("c1#1")
	h.k.At(20*h.strategy.Base.Period+sim.Millisecond, func() { h.sys.Crash(v2) })
	h.run(45)

	want := plan.NewFaultSet(v1, v2)
	key, ok := h.sys.Converged(want)
	if !ok {
		t.Fatal("no convergence after two staggered faults")
	}
	if key != want.Key() {
		t.Fatalf("converged on %q, want %q", key, want.Key())
	}
	for p := uint64(0); p < 43; p++ {
		if len(h.actuations["c2"][p]) == 0 {
			t.Errorf("period %d lost actuation", p)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, int) {
		h := chainHarness(t, 42)
		victim := h.nodeOf("c1#0")
		h.k.At(3*h.strategy.Base.Period+sim.Millisecond, func() { h.sys.Crash(victim) })
		h.run(20)
		return len(h.evidences), h.switches
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Errorf("nondeterministic: evidence %d vs %d, switches %d vs %d", e1, e2, s1, s2)
	}
}

func TestNodeNeverConvictsItself(t *testing.T) {
	h := chainHarness(t, 11)
	victim := h.nodeOf("c1#0")
	h.k.At(3*h.strategy.Base.Period, func() {
		h.sys.SetBehavior(victim, &Behavior{
			OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
				rec.Value = []byte("junk")
				return rec, 0, true
			},
		})
	})
	h.run(20)
	if h.sys.FaultSetOf(victim).Contains(victim) {
		t.Error("node excluded itself from its own fault set")
	}
}

func TestConvictedNodeTrafficIgnored(t *testing.T) {
	h := chainHarness(t, 12)
	victim := h.nodeOf("c1#0")
	h.k.At(3*h.strategy.Base.Period-1, func() {
		h.sys.SetBehavior(victim, &Behavior{
			OnOutput: func(rec evidence.Record, consumer flow.TaskID) (evidence.Record, sim.Time, bool) {
				if rec.Logical == "c1" {
					rec.Value = []byte("junk")
				}
				return rec, 0, true
			},
		})
	})
	h.run(30)
	// After conviction the victim keeps sending on its stale plan; the
	// outputs must remain correct regardless.
	for p := uint64(20); p < 28; p++ {
		for _, v := range h.actuations["c2"][p] {
			if !bytes.Equal(v, expectedChainValue(2, p)) {
				t.Fatalf("period %d: stale traffic corrupted output", p)
			}
		}
	}
}

func BenchmarkFaultFreePeriod(b *testing.B) {
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	k := sim.NewKernel(1)
	topo := network.FullMesh(6, 20_000_000, 50*sim.Microsecond)
	nw := network.New(k, topo, network.DefaultConfig())
	reg := sig.NewRegistry(1, 6)
	strategy, err := plan.Build(g, topo, plan.DefaultOptions(1, 500*sim.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	sys := New(Config{Kernel: k, Net: nw, Registry: reg, Strategy: strategy})
	sys.Start()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Run(sim.Time(i+1) * g.Period)
	}
}
