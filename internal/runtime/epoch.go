package runtime

import (
	"fmt"

	"btr/internal/member"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// Online membership reconfiguration: the two-phase epoch switch.
//
// Phase 1 (prepare): the operator — the external configuration
// authority holding the registry's operator key, never a node — seals
// the next epoch record (ActivateAt zero) and hands it to every current
// member through its console attachment; members also flood it to their
// neighbors on the reserved evidence share, so a console drop does not
// strand anyone. Each member validates the record against its local
// chained log (exact next number, predecessor hash, legal membership)
// and acknowledges to the operator.
//
// Phase 2 (commit): once n-f distinct members acknowledge — every
// member that is not one of the up-to-f faulty nodes provably holds the
// record — the operator picks the activation instant
//
//	ceil((now + Delta') / P) * P - 1,   Delta' = max(Delta_cur, Delta_next)
//
// (mirroring the fault switch's boundary-minus-epsilon convention, with
// Delta' covering evidence and commit distribution in both the outgoing
// and incoming epoch), seals the commit form of the record with that
// instant, and distributes it the same two ways. Every node — dormant
// slots included, which is how joiners are provisioned — appends the
// commit to its log and schedules activation.
//
// Activation: at the recorded instant every correct node atomically
// swaps strategy, plan source, and plan; disarms every armed watchdog
// (the new period re-arms under the new plan — watchdogs guarding
// retired producers must not fire); retiring nodes schedule no further
// periods; joining nodes schedule their first; and the operator swaps
// the transport wiring, tearing down lanes of retired links and
// spinning up lanes toward joiners. In-flight evidence stays valid: node
// identities and keys are never reassigned across epochs, so a
// signature attributes the same physical signer in every epoch, and
// local fault sets remain append-only through any number of
// reconfigurations.
//
// Why correct nodes converge: commits are operator-signed (the
// adversary cannot forge or alter them), logs accept exactly the next
// chain record (replays and reorders are inert), the quorum rule plus
// console delivery put the commit on every correct member before
// activation, and ActivateAt is embedded in the signed record — so all
// correct members activate the same epoch at the same instant, the same
// argument §4.4 makes for fault-mode switches.

// EpochConfig enables online membership reconfiguration on a runtime
// System. Strategy/Planner in the enclosing Config must describe the
// genesis epoch (the harness builds them through member.Planner).
type EpochConfig struct {
	// Genesis is the epoch-0 record (initial membership, no link delta).
	Genesis member.Record
	// Resolve produces the per-epoch planning artifacts for a record
	// under the wiring the record activates (the operator's log computes
	// it). Called once per epoch and memoized; must be a pure function
	// of (record, wiring) — the plan cache makes warm calls cheap.
	Resolve func(rec member.Record, wiring *network.Topology) (*EpochInfo, error)
	// OnEvent observes epoch lifecycle events (reports, tests; may be
	// nil).
	OnEvent func(ev EpochEvent)
}

// EpochInfo is everything the runtime needs to execute one epoch.
// Harnesses build it from member.EpochPlan.
type EpochInfo struct {
	Record   member.Record
	Members  []network.NodeID
	Excluded plan.FaultSet
	Wiring   *network.Topology
	Strategy *plan.Strategy
	Planner  PlanSource
}

// memberOf reports whether id is active in this epoch.
func (i *EpochInfo) memberOf(id network.NodeID) bool {
	for _, m := range i.Members {
		if m == id {
			return true
		}
	}
	return false
}

// EpochEvent is one observable step of a reconfiguration.
type EpochEvent struct {
	Kind string // "proposed" | "ack" | "committed" | "activated" | "rejected"
	Num  uint64
	Node network.NodeID // the acker for "ack"; -1 for operator-level events
	At   sim.Time
	Acks int
	Err  error // set for "rejected"
}

// EpochRow is one epoch's lifecycle as the operator recorded it; both
// report layers (core and live) expose the same rows. A rejected
// proposal leaves a row with Err set and no activation.
type EpochRow struct {
	Num         uint64
	Members     string
	ProposedAt  sim.Time
	CommittedAt sim.Time
	ActivatedAt sim.Time
	Acks        int
	R           sim.Time // the epoch strategy's provable recovery bound
	Err         string   // rejection reason, "" for a healthy epoch
}

// SwitchLatency returns propose-to-activate latency (the epoch-switch
// latency the perf bundle tracks), or 0 if the epoch never activated.
func (e EpochRow) SwitchLatency() sim.Time {
	if e.ActivatedAt == 0 {
		return 0
	}
	return e.ActivatedAt - e.ProposedAt
}

// EpochMaxR returns the largest provable recovery bound across the
// genesis bound and every activated epoch.
func EpochMaxR(baseR sim.Time, rows []EpochRow) sim.Time {
	max := baseR
	for _, e := range rows {
		if e.ActivatedAt != 0 && e.R > max {
			max = e.R
		}
	}
	return max
}

// EpochRBound returns the recovery bound to hold a fault against: the
// largest R among the epochs (genesis included) whose activity window
// overlaps [t, end]. Epoch i is active from its ActivatedAt until the
// next activation; genesis covers [0, first activation).
func EpochRBound(baseR sim.Time, rows []EpochRow, t, end sim.Time) sim.Time {
	var bound sim.Time
	prevStart, prevR := sim.Time(0), baseR
	for _, e := range rows {
		if e.ActivatedAt == 0 {
			continue
		}
		if prevStart <= end && t <= e.ActivatedAt && prevR > bound {
			bound = prevR
		}
		prevStart, prevR = e.ActivatedAt, e.R
	}
	if prevStart <= end && prevR > bound {
		bound = prevR
	}
	if bound == 0 {
		bound = baseR // no window overlapped (degenerate [t,end])
	}
	return bound
}

// PlannerResolve adapts a member.Planner into the EpochConfig.Resolve
// seam — the one-liner every harness (core, live, tests) needs.
func PlannerResolve(p *member.Planner) func(member.Record, *network.Topology) (*EpochInfo, error) {
	return func(rec member.Record, wiring *network.Topology) (*EpochInfo, error) {
		ep, err := p.ForEpoch(rec, wiring)
		if err != nil {
			return nil, err
		}
		return &EpochInfo{
			Record: rec, Members: ep.Members, Excluded: ep.Excluded,
			Wiring: ep.Wiring, Strategy: ep.Strategy,
			Planner: PlanSource(ep.Resolve),
		}, nil
	}
}

// epochFrame wire framing: kind byte 'M', then a phase byte, then the
// operator-sealed record. Acks do not cross the node network — they are
// the node's console reply to the operator.
const (
	epochPhasePrepare = 'P'
	epochPhaseCommit  = 'C'
)

func epochPayload(phase byte, sealed []byte) []byte {
	out := make([]byte, 0, 2+len(sealed))
	return append(append(out, msgMember, phase), sealed...)
}

// operator drives reconfigurations for one System. All methods run in
// scheduler callbacks (single-threaded, like the rest of the runtime).
type operator struct {
	sys   *System
	log   *member.Log // the authoritative chain the operator proposes from
	infos map[[16]byte]*EpochInfo
	rows  []EpochRow // lifecycle log the report layers expose

	queue    []member.Delta
	pending  *pendingEpoch
	awaiting bool // a committed epoch has not activated yet
}

type pendingEpoch struct {
	rec        member.Record
	sealed     []byte
	proposedAt sim.Time
	acks       map[network.NodeID]bool
}

// initEpochs wires the epoch machinery into a freshly built System:
// per-node membership logs, genesis membership/dormancy, and the
// genesis transport state (wiring restricted to the member links,
// dormant slots down). Called from New before Start.
func (s *System) initEpochs() {
	ec := s.cfg.Epochs
	universe := s.cfg.Net.Topology()
	mkLog := func() *member.Log {
		l, err := member.NewLog(universe, ec.Genesis)
		if err != nil {
			panic(fmt.Sprintf("runtime: invalid genesis record: %v", err))
		}
		return l
	}
	s.op = &operator{sys: s, log: mkLog(), infos: map[[16]byte]*EpochInfo{}}
	genesis, err := s.op.resolveInfo(ec.Genesis)
	if err != nil {
		panic(fmt.Sprintf("runtime: genesis epoch unplannable: %v", err))
	}
	s.cfg.Net.SetWiring(genesis.Wiring)
	for _, nd := range s.nodes {
		nd.elog = mkLog()
		nd.seenEpoch = map[[16]byte]bool{}
		nd.memberNow = genesis.memberOf(nd.id)
		if !nd.memberNow {
			s.cfg.Net.SetDown(nd.id, true) // dormant slot: no lanes serve it anyway
		}
	}
}

// ScheduleReconfig enqueues a reconfiguration to be proposed at time t
// (deltas proposed while an earlier one is still in flight wait their
// turn; epochs are strictly ordered). Panics unless Config.Epochs was
// set.
func (s *System) ScheduleReconfig(t sim.Time, d member.Delta) {
	if s.op == nil {
		panic("runtime: ScheduleReconfig without Config.Epochs")
	}
	s.cfg.Kernel.At(t, func() {
		s.op.queue = append(s.op.queue, d)
		s.op.maybePropose()
	})
}

// EpochOf returns node id's current epoch number (0 without epochs).
func (s *System) EpochOf(id network.NodeID) uint64 {
	nd := s.nodes[int(id)]
	if nd.elog == nil {
		return 0
	}
	return nd.activeEpoch
}

// IsMember reports whether node id considers itself an active member of
// its current epoch. Note a crashed node's view freezes at its crash —
// use Members for the operator's authoritative membership.
func (s *System) IsMember(id network.NodeID) bool { return s.nodes[int(id)].memberNow }

// Members returns the newest committed epoch's membership from the
// operator's authoritative log (nil without Config.Epochs).
func (s *System) Members() []network.NodeID {
	if s.op == nil {
		return nil
	}
	return s.op.log.Members()
}

// WatchdogCount returns the number of armed arrival watchdogs on node
// id (teardown tests).
func (s *System) WatchdogCount(id network.NodeID) int { return len(s.nodes[int(id)].watchdogs) }

// EpochRows returns the operator's epoch lifecycle log (nil without
// Config.Epochs). The slice is a copy; rows for rejected proposals
// carry Err and no activation time.
func (s *System) EpochRows() []EpochRow {
	if s.op == nil {
		return nil
	}
	return append([]EpochRow(nil), s.op.rows...)
}

// lastRow returns the newest lifecycle row for epoch num.
func (op *operator) lastRow(num uint64) *EpochRow {
	for i := len(op.rows) - 1; i >= 0; i-- {
		if op.rows[i].Num == num {
			return &op.rows[i]
		}
	}
	return nil
}

// emit reports an epoch event to the harness.
func (op *operator) emit(ev EpochEvent) {
	if op.sys.cfg.Epochs.OnEvent != nil {
		op.sys.cfg.Epochs.OnEvent(ev)
	}
}

// resolveInfo memoizes EpochConfig.Resolve by record ID, computing the
// record's wiring from the operator's log (the current record's own
// wiring, or a validated preview for the next one).
func (op *operator) resolveInfo(rec member.Record) (*EpochInfo, error) {
	id := rec.ID()
	if info, ok := op.infos[id]; ok {
		return info, nil
	}
	var wiring *network.Topology
	if rec.Num == op.log.Epoch() && id == op.log.Current().ID() {
		wiring = op.log.Wiring()
	} else {
		var err error
		if wiring, err = op.log.PreviewWiring(rec); err != nil {
			return nil, err
		}
	}
	info, err := op.sys.cfg.Epochs.Resolve(rec, wiring)
	if err != nil {
		return nil, err
	}
	op.infos[id] = info
	return info, nil
}

// maybePropose starts the prepare phase for the next queued delta, if
// idle.
func (op *operator) maybePropose() {
	if op.pending != nil || op.awaiting || len(op.queue) == 0 {
		return
	}
	d := op.queue[0]
	op.queue = op.queue[1:]
	now := op.sys.cfg.Kernel.Now()
	rec, err := op.log.Propose(d)
	if err != nil {
		op.rows = append(op.rows, EpochRow{Num: op.log.NextNum(), ProposedAt: now, Err: err.Error()})
		op.emit(EpochEvent{Kind: "rejected", Num: op.log.NextNum(), Node: -1, At: now, Err: err})
		op.maybePropose()
		return
	}
	op.pending = &pendingEpoch{
		rec:        rec,
		sealed:     member.Seal(op.sys.cfg.Registry, rec),
		proposedAt: now,
		acks:       map[network.NodeID]bool{},
	}
	op.rows = append(op.rows, EpochRow{Num: rec.Num, ProposedAt: now})
	op.emit(EpochEvent{Kind: "proposed", Num: rec.Num, Node: -1, At: now})
	// Console-deliver the prepare to every current member; each also
	// floods it in-band.
	payload := epochPayload(epochPhasePrepare, op.pending.sealed)
	for _, m := range op.log.Members() {
		op.sys.nodes[int(m)].onEpochFrame(payload, nil)
	}
}

// onAck counts a member's prepare acknowledgment; quorum commits.
func (op *operator) onAck(from network.NodeID, id [16]byte) {
	p := op.pending
	if p == nil || p.rec.ID() != id || p.acks[from] {
		return
	}
	p.acks[from] = true
	now := op.sys.cfg.Kernel.Now()
	if row := op.lastRow(p.rec.Num); row != nil {
		row.Acks = len(p.acks)
	}
	op.emit(EpochEvent{Kind: "ack", Num: p.rec.Num, Node: from, At: now, Acks: len(p.acks)})
	if len(p.acks) >= member.Quorum(len(op.log.Members()), op.sys.cfg.Strategy.Opts.F) {
		op.commit()
	}
}

// commit seals the activation instant into the record and distributes
// it to every slot (dormant ones included: that is how joiners are
// provisioned with the chain).
func (op *operator) commit() {
	p := op.pending
	now := op.sys.cfg.Kernel.Now()
	tmp, err := op.resolveInfo(p.rec)
	if err != nil {
		if row := op.lastRow(p.rec.Num); row != nil {
			row.Err = err.Error()
		}
		op.emit(EpochEvent{Kind: "rejected", Num: p.rec.Num, Node: -1, At: now, Err: err})
		op.pending = nil
		op.maybePropose()
		return
	}
	// The activation delay must cover distribution in whichever epoch is
	// slower, then round to just before a period boundary so the next
	// period runs entirely under the new epoch.
	curStrat := op.curStrategy()
	delta := curStrat.Delta
	if tmp.Strategy.Delta > delta {
		delta = tmp.Strategy.Delta
	}
	period := curStrat.Base.Period
	activateAt := ((now+delta)/period+1)*period - 1
	final := p.rec.WithActivation(activateAt)
	info := &EpochInfo{
		Record:   final,
		Members:  tmp.Members,
		Excluded: tmp.Excluded,
		Wiring:   tmp.Wiring,
		Strategy: tmp.Strategy,
		Planner:  tmp.Planner,
	}
	op.infos[final.ID()] = info
	if err := op.log.Append(final); err != nil {
		panic(fmt.Sprintf("runtime: operator log rejected its own record: %v", err))
	}
	if row := op.lastRow(final.Num); row != nil {
		row.CommittedAt = now
	}
	op.emit(EpochEvent{Kind: "committed", Num: final.Num, Node: -1, At: now, Acks: len(p.acks)})
	// Operator-side activation runs before any node's (inserted first at
	// the same instant): wiring and lane changes are visible the moment
	// nodes start their first period under the new epoch.
	op.sys.cfg.Kernel.At(activateAt, func() { op.applyActivation(info) })
	payload := epochPayload(epochPhaseCommit, member.Seal(op.sys.cfg.Registry, final))
	for _, nd := range op.sys.nodes {
		nd.onEpochFrame(payload, nil)
	}
	op.pending = nil
	op.awaiting = true
}

// curStrategy returns the newest activated-or-committed epoch's
// strategy (falls back to the genesis strategy).
func (op *operator) curStrategy() *plan.Strategy {
	if info, ok := op.infos[op.log.Current().ID()]; ok {
		return info.Strategy
	}
	return op.sys.cfg.Strategy
}

// applyActivation swaps the transport to the new epoch's wiring and
// up/down state. Node crash state always wins: a crashed member stays
// down.
func (op *operator) applyActivation(info *EpochInfo) {
	net := op.sys.cfg.Net
	net.SetWiring(info.Wiring)
	for _, nd := range op.sys.nodes {
		net.SetDown(nd.id, nd.crashed || !info.memberOf(nd.id))
	}
	op.awaiting = false
	if row := op.lastRow(info.Record.Num); row != nil {
		row.ActivatedAt = op.sys.cfg.Kernel.Now()
		row.R = info.Strategy.RNeeded
		row.Members = plan.NewFaultSet(info.Members...).String()
	}
	op.emit(EpochEvent{Kind: "activated", Num: info.Record.Num, Node: -1,
		At: op.sys.cfg.Kernel.Now(), Acks: len(info.Members)})
	op.maybePropose()
}

// --- node side --------------------------------------------------------------

// onEpochFrame handles a membership frame, from the network (m != nil)
// or the operator console (m == nil).
func (n *Node) onEpochFrame(payload []byte, m *network.Message) {
	if n.crashed || n.elog == nil || len(payload) < 2 {
		return
	}
	if m != nil {
		// Network path: membership frames share the per-neighbor
		// evidence budget, so a Byzantine 'M' flood cannot exhaust
		// signature-verification capacity any more than an evidence
		// flood can.
		n.evBudget[m.From]++
		if n.evBudget[m.From] > n.cfg.EvidenceRateLimit {
			n.EvidenceDropped++
			return
		}
	}
	phase, sealed := payload[1], payload[2:]
	rec, err := member.Open(n.cfg.Registry, sealed)
	if err != nil {
		return // forged, bit-flipped, or truncated: drop
	}
	switch phase {
	case epochPhasePrepare:
		n.onEpochPrepare(rec, payload)
	case epochPhaseCommit:
		n.onEpochCommit(rec, payload)
	}
}

// onEpochPrepare validates and acknowledges a prepare, and floods it.
func (n *Node) onEpochPrepare(rec member.Record, payload []byte) {
	if rec.ActivateAt != 0 {
		return // prepare must not carry an activation instant
	}
	if err := n.elog.Validate(rec); err != nil {
		return // stale, replayed, forked, or illegal: inert
	}
	id := rec.ID()
	if n.seenEpoch[id] {
		return
	}
	n.seenEpoch[id] = true
	n.floodEpochFrame(payload)
	if b := n.behavior; b != nil && b.SuppressEpochAcks {
		return
	}
	n.sys.op.onAck(n.id, id)
}

// onEpochCommit appends a commit to the local chain, floods it, and
// schedules activation at the recorded instant.
func (n *Node) onEpochCommit(rec member.Record, payload []byte) {
	if rec.ActivateAt <= 0 {
		return // commit must carry the activation instant
	}
	id := rec.ID()
	if n.seenEpoch[id] {
		return
	}
	if err := n.elog.Append(rec); err != nil {
		return // stale, replayed, forked, or illegal: inert
	}
	n.seenEpoch[id] = true
	n.floodEpochFrame(payload)
	now := n.cfg.Kernel.Now()
	if rec.ActivateAt > now {
		n.cfg.Kernel.At(rec.ActivateAt, func() { n.activateEpoch(rec) })
		return
	}
	// Catch-up (a provisioned joiner replaying the chain): the epoch is
	// already live; adopt it immediately.
	n.activateEpoch(rec)
}

// floodEpochFrame relays a membership frame to all neighbors on the
// reserved evidence share (members only; dormant slots are silent).
func (n *Node) floodEpochFrame(payload []byte) {
	if n.memberNow {
		for _, nb := range n.cfg.Net.Topology().Neighbors(n.id) {
			n.cfg.Net.SendDirect(n.id, nb, network.ClassEvidence, payload)
		}
	}
}

// activateEpoch performs this node's side of the epoch switch.
func (n *Node) activateEpoch(rec member.Record) {
	if n.crashed {
		return
	}
	info, err := n.sys.op.resolveInfo(rec)
	if err != nil {
		return // the operator rejected the epoch before commit; unreachable for committed records
	}
	wasMember := n.memberNow
	n.memberNow = info.memberOf(n.id)
	n.strat = info.Strategy
	n.planner = info.Planner
	n.activeEpoch = rec.Num
	n.EpochSwitches++
	// Disarm every armed watchdog: edges guarded under the old epoch's
	// plan — including every edge from or to a retired node — must not
	// fire into the new epoch. The first period under the new plan
	// re-arms its own.
	for wk, h := range n.watchdogs {
		n.cfg.Kernel.Cancel(h)
		delete(n.watchdogs, wk)
	}
	if next := n.planFor(n.faults); next != nil && next.Key() != n.cur.Key() {
		n.cur = next
	}
	if n.memberNow && !wasMember {
		// Joining: the first full period after activation is ours.
		// ActivateAt is one microsecond before a period boundary.
		n.schedulePeriod(uint64((rec.ActivateAt + 1) / n.strat.Base.Period))
	}
}
