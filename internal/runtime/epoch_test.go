package runtime

import (
	"testing"

	"btr/internal/flow"
	"btr/internal/member"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sig"
	"btr/internal/sim"
)

// epochHarness assembles a runtime System with membership epochs over
// an 8-slot mesh universe (slots 0..5 active), the way core/live glue
// does, but exposed for protocol-level poking.
type epochHarness struct {
	k      *sim.Kernel
	net    *network.Network
	reg    *sig.Registry
	sys    *System
	events []EpochEvent
}

func newEpochHarness(t *testing.T, seed uint64) *epochHarness {
	t.Helper()
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	universe := network.FullMesh(8, 20_000_000, 50*sim.Microsecond)
	opts := plan.DefaultOptions(1, 500*sim.Millisecond)
	k := sim.NewKernel(seed)
	nw := network.New(k, universe, network.DefaultConfig())
	reg := sig.NewRegistry(seed, universe.N)
	mp := member.NewPlanner(g, opts, nil)
	genesis := member.Genesis([]network.NodeID{0, 1, 2, 3, 4, 5})
	glog, err := member.NewLog(universe, genesis)
	if err != nil {
		t.Fatal(err)
	}
	ep0, err := mp.ForEpoch(genesis, glog.Wiring())
	if err != nil {
		t.Fatal(err)
	}
	h := &epochHarness{k: k, net: nw, reg: reg}
	h.sys = New(Config{
		Kernel: k, Net: nw, Registry: reg,
		Strategy: ep0.Strategy, Planner: PlanSource(ep0.Resolve),
		Epochs: &EpochConfig{
			Genesis: genesis,
			Resolve: func(rec member.Record, wiring *network.Topology) (*EpochInfo, error) {
				ep, err := mp.ForEpoch(rec, wiring)
				if err != nil {
					return nil, err
				}
				return &EpochInfo{
					Record: rec, Members: ep.Members, Excluded: ep.Excluded,
					Wiring: ep.Wiring, Strategy: ep.Strategy,
					Planner: PlanSource(ep.Resolve),
				}, nil
			},
			OnEvent: func(ev EpochEvent) { h.events = append(h.events, ev) },
		},
	})
	return h
}

func (h *epochHarness) kinds() map[string]int {
	out := map[string]int{}
	for _, ev := range h.events {
		out[ev.Kind]++
	}
	return out
}

const epochTestPeriod = 25 * sim.Millisecond

func TestEpochQuorumToleratesAckSuppression(t *testing.T) {
	h := newEpochHarness(t, 1)
	// One Byzantine member refuses to acknowledge prepares; with n=6,
	// f=1 the quorum is 5 and reconfiguration must still commit.
	h.sys.SetBehavior(3, &Behavior{SuppressEpochAcks: true})
	h.sys.ScheduleReconfig(3*epochTestPeriod, member.Delta{Join: []network.NodeID{6}})
	h.sys.Start()
	h.k.Run(20 * epochTestPeriod)
	k := h.kinds()
	if k["committed"] != 1 || k["activated"] != 1 {
		t.Fatalf("reconfig did not complete under ack suppression: %v", k)
	}
	if k["ack"] != 5 {
		t.Errorf("expected exactly 5 acks (suppressor silent), got %d", k["ack"])
	}
	if !h.sys.IsMember(6) {
		t.Error("joiner not active after quorum commit")
	}
}

func TestEpochRejectsIllegalProposal(t *testing.T) {
	h := newEpochHarness(t, 1)
	// Retiring a non-member is rejected at propose time; a later legal
	// delta still goes through (the queue drains past rejections).
	h.sys.ScheduleReconfig(2*epochTestPeriod, member.Delta{Retire: []network.NodeID{7}})
	h.sys.ScheduleReconfig(3*epochTestPeriod, member.Delta{Join: []network.NodeID{6}})
	h.sys.Start()
	h.k.Run(20 * epochTestPeriod)
	k := h.kinds()
	if k["rejected"] != 1 {
		t.Fatalf("illegal proposal not rejected: %v", k)
	}
	if k["activated"] != 1 || !h.sys.IsMember(6) {
		t.Fatalf("legal proposal after a rejection did not activate: %v", k)
	}
}

func TestEpochFramesInertAgainstForgeryAndReplay(t *testing.T) {
	h := newEpochHarness(t, 1)
	h.sys.ScheduleReconfig(3*epochTestPeriod, member.Delta{Join: []network.NodeID{6}})
	// Adversarial frames fired at a member mid-run: node-signed (forged)
	// records, bit-flipped commits, and replays of the genesis record.
	h.k.At(5*epochTestPeriod, func() {
		nd := h.sys.Node(2)
		forged := member.Genesis([]network.NodeID{0, 1}).Encode()
		forged = append(forged, h.reg.Sign(4, forged)...) // node key, not operator
		nd.onEpochFrame(epochPayload(epochPhaseCommit, forged), nil)
		replay := member.Seal(h.reg, member.Genesis([]network.NodeID{0, 1, 2, 3, 4, 5}))
		nd.onEpochFrame(epochPayload(epochPhasePrepare, replay), nil)
		nd.onEpochFrame([]byte{msgMember}, nil)
		nd.onEpochFrame([]byte{msgMember, epochPhaseCommit, 0xff, 0x01}, nil)
	})
	h.sys.Start()
	h.k.Run(20 * epochTestPeriod)
	// The only epoch that exists is the legitimate join; node 2 sits on
	// it like everyone else.
	if got := h.sys.EpochOf(2); got != 1 {
		t.Fatalf("node 2 on epoch %d after adversarial frames, want 1", got)
	}
	if key, ok := h.sys.Converged(plan.NewFaultSet()); !ok || key == "" {
		t.Fatalf("members did not converge: %q %v", key, ok)
	}
}

func TestEpochRetireTearsDownWatchdogsAndSchedules(t *testing.T) {
	h := newEpochHarness(t, 1)
	h.sys.ScheduleReconfig(3*epochTestPeriod, member.Delta{Retire: []network.NodeID{5}})
	h.sys.Start()
	var activatedAt sim.Time
	h.k.Run(30 * epochTestPeriod)
	for _, ev := range h.events {
		if ev.Kind == "activated" {
			activatedAt = ev.At
		}
	}
	if activatedAt == 0 {
		t.Fatal("retire epoch never activated")
	}
	if h.sys.IsMember(5) {
		t.Fatal("slot 5 still a member")
	}
	if n := h.sys.WatchdogCount(5); n != 0 {
		t.Errorf("retired slot 5 holds %d armed watchdogs", n)
	}
	if !h.net.IsDown(5) {
		t.Error("retired slot 5 still up on the transport")
	}
	// The survivors keep running cleanly (their own watchdogs re-armed
	// under the new plan).
	for _, id := range []network.NodeID{0, 1, 2, 3, 4} {
		if !h.sys.IsMember(id) {
			t.Errorf("survivor %d lost membership", id)
		}
	}
	if key, ok := h.sys.Converged(plan.NewFaultSet()); !ok || key == "" {
		t.Fatalf("survivors did not converge: %q %v", key, ok)
	}
}
