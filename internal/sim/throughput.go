package sim

import (
	"container/heap"
	"time"
)

// This file carries the kernel-throughput measurement used by the perf
// bundle (BENCH_campaign.json) and its frozen baseline: a copy of the
// pre-refactor closure-heap kernel (container/heap over boxed *event
// records, no cancellation, no batching). The baseline is deliberately
// kept in-tree so the throughput gate is machine-independent — both
// kernels run the identical logical workload in the same process and
// cmd/btrcheckbench gates on their ratio, the way the warm-plan-cache
// speedup is gated.

// legacyEvent / legacyHeap / legacyKernel are the old implementation,
// verbatim modulo renames. Do not "improve" them: they are the yardstick.
type legacyEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type legacyHeap []*legacyEvent

func (h legacyHeap) Len() int { return len(h) }
func (h legacyHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h legacyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *legacyHeap) Push(x any)   { *h = append(*h, x.(*legacyEvent)) }
func (h *legacyHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type legacyKernel struct {
	now Time
	seq uint64
	pq  legacyHeap
}

func (k *legacyKernel) At(t Time, fn func()) {
	k.seq++
	heap.Push(&k.pq, &legacyEvent{at: t, seq: k.seq, fn: fn})
}

func (k *legacyKernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

func (k *legacyKernel) runAll() {
	for len(k.pq) > 0 {
		ev := heap.Pop(&k.pq).(*legacyEvent)
		k.now = ev.at
		ev.fn()
	}
}

// throughputChains is the fan-in of the standard workload: enough
// concurrent activity to keep a realistic pending-set depth (a BTR
// deployment keeps hundreds-to-thousands of events in flight — slot
// starts/ends, arrival watchdogs, and network deliveries per period).
const throughputChains = 1024

// watchdogHoldoff is how far past its work event each chain's watchdog is
// armed, mirroring the runtime's arrival-watchdog margin.
const watchdogHoldoff = 1000 * Microsecond

// throughputExec abstracts the executive under test. cancel is nil for
// executives without cancellation (the legacy kernel): their watchdogs
// cannot be revoked and fire as dead closures — exactly the pre-refactor
// runtime behavior the typed kernel eliminates.
type throughputExec struct {
	after  func(d Time, fn func()) Handle
	cancel func(h Handle) bool
}

// throughputLoad seeds the standard kernel workload: per chain, a
// self-rescheduling work event (pseudo-random delay, cheap LCG, identical
// across implementations) that arms an arrival watchdog each round and —
// where the executive supports it — cancels the previous round's watchdog,
// the way the runtime disarms a watchdog when the awaited record arrives.
// One chain in 64 "omits": its watchdog is left to fire, so both
// executives also exercise the firing path. The returned counter is the
// number of useful (work) events dispatched; read it after the run drains.
func throughputLoad(e throughputExec, events int) *int {
	useful := new(int)
	remaining := events
	for c := 0; c < throughputChains; c++ {
		state := uint64(c)*0x9e3779b97f4a7c15 + 1
		var armed Handle
		var tick func()
		tick = func() {
			*useful++
			if remaining <= 0 {
				return
			}
			remaining--
			if e.cancel != nil && armed != 0 {
				e.cancel(armed)
			}
			state = state*6364136223846793005 + 1442695040888963407
			delay := Time(state>>54) + 1 // [1, 1024] us
			if state&63 != 0 {           // the omission case leaves no watchdog to cancel
				armed = e.after(delay+watchdogHoldoff, func() {})
			} else {
				armed = 0
			}
			e.after(delay, tick)
		}
		e.after(Time(c+1), tick)
	}
	return useful
}

// MeasureKernelThroughput runs the standard workload for the given event
// budget on the current Kernel and on the frozen legacy closure-heap
// kernel, returning useful (work) events per second for each. The ratio
// eventsPerSec/legacyEventsPerSec is the machine-independent kernel
// speedup the perf bundle records and cmd/btrcheckbench gates (the
// acceptance floor is 2x).
func MeasureKernelThroughput(events int) (eventsPerSec, legacyEventsPerSec float64) {
	if events <= 0 {
		events = 1 << 20
	}
	best := func(run func() int) float64 {
		var b float64
		for i := 0; i < 3; i++ {
			start := time.Now()
			n := run()
			if s := float64(n) / time.Since(start).Seconds(); s > b {
				b = s
			}
		}
		return b
	}
	cur := best(func() int {
		k := NewKernel(1)
		n := throughputLoad(throughputExec{after: k.After, cancel: k.Cancel}, events)
		k.RunAll()
		return *n
	})
	legacy := best(func() int {
		k := &legacyKernel{}
		n := throughputLoad(throughputExec{after: func(d Time, fn func()) Handle {
			k.After(d, fn)
			return 0
		}}, events)
		k.runAll()
		return *n
	})
	return cur, legacy
}
