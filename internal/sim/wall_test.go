package sim

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitNoLeak asserts the goroutine count returns to the baseline,
// extending the leak-test pattern from internal/campaign.
func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}

func TestWallSchedulerDispatchesInOrder(t *testing.T) {
	before := runtime.NumGoroutine()
	w := NewWallScheduler(1)
	var mu sync.Mutex
	var order []int
	done := make(chan struct{})
	w.At(2*Millisecond, func() { mu.Lock(); order = append(order, 2); mu.Unlock() })
	w.At(1*Millisecond, func() { mu.Lock(); order = append(order, 1); mu.Unlock() })
	w.At(3*Millisecond, func() {
		mu.Lock()
		order = append(order, 3)
		mu.Unlock()
		close(done)
	})
	w.Start()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wall scheduler did not dispatch within 5s")
	}
	w.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("dispatch order %v, want [1 2 3]", order)
	}
	waitNoLeak(t, before)
}

func TestWallSchedulerPastTimeClampsToNow(t *testing.T) {
	w := NewWallScheduler(1)
	w.Start()
	defer w.Close()
	time.Sleep(2 * time.Millisecond)
	done := make(chan Time, 1)
	// Schedule "in the past": must run promptly, not panic.
	w.At(0, func() { done <- w.Now() })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("past-scheduled event never ran")
	}
}

func TestWallSchedulerCancel(t *testing.T) {
	w := NewWallScheduler(1)
	w.Start()
	defer w.Close()
	fired := make(chan struct{}, 1)
	h := w.After(50*Millisecond, func() { fired <- struct{}{} })
	if !w.Cancel(h) {
		t.Fatal("Cancel of pending wall event returned false")
	}
	marker := make(chan struct{})
	w.After(80*Millisecond, func() { close(marker) })
	select {
	case <-fired:
		t.Fatal("cancelled wall event fired")
	case <-marker:
	case <-time.After(5 * time.Second):
		t.Fatal("marker event never ran")
	}
	if w.Cancel(h) {
		t.Error("second Cancel of same handle returned true")
	}
}

func TestWallSchedulerCallbacksNeverOverlap(t *testing.T) {
	// The single-executor guarantee the runtime's no-locking discipline
	// rests on: no two callbacks run concurrently even when scheduled from
	// many goroutines at identical times.
	w := NewWallScheduler(1)
	w.Start()
	var inFlight, maxFlight int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				wg.Add(1)
				w.At(Millisecond, func() {
					mu.Lock()
					inFlight++
					if inFlight > maxFlight {
						maxFlight = inFlight
					}
					mu.Unlock()
					mu.Lock()
					inFlight--
					mu.Unlock()
					wg.Done()
				})
			}
		}()
	}
	wg.Wait()
	w.Close()
	if maxFlight > 1 {
		t.Fatalf("callbacks overlapped: max in flight %d", maxFlight)
	}
}

func TestWallSchedulerWaitUntil(t *testing.T) {
	w := NewWallScheduler(1)
	w.Start()
	defer w.Close()
	start := time.Now()
	w.WaitUntil(20 * Millisecond)
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("WaitUntil returned after %v, want >=20ms-ish", elapsed)
	}
	if now := w.Now(); now < 15*Millisecond {
		t.Errorf("Now() = %v after WaitUntil(20ms)", now)
	}
}

func TestWallSchedulerCloseIsLeakFreeAndIdempotent(t *testing.T) {
	before := runtime.NumGoroutine()
	// Close with pending events, double Close, Close before Start.
	w := NewWallScheduler(1)
	w.Start()
	w.After(Minute, func() { t.Error("discarded event ran") })
	w.Close()
	w.Close()
	unstarted := NewWallScheduler(2)
	unstarted.Close()
	// Scheduling after Stop is accepted but never runs.
	w.At(0, func() { t.Error("post-Stop event ran") })
	time.Sleep(5 * time.Millisecond)
	waitNoLeak(t, before)
}

func TestWallSchedulerEarlierEventPreemptsSleep(t *testing.T) {
	// The executor sleeps toward a far deadline; a new earlier event must
	// wake it and run first.
	w := NewWallScheduler(1)
	w.Start()
	defer w.Close()
	var mu sync.Mutex
	var order []string
	done := make(chan struct{})
	w.After(200*Millisecond, func() {
		mu.Lock()
		order = append(order, "late")
		mu.Unlock()
		close(done)
	})
	time.Sleep(2 * time.Millisecond)
	w.After(5*Millisecond, func() { mu.Lock(); order = append(order, "early"); mu.Unlock() })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("late event never ran")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "early" {
		t.Fatalf("order = %v, want [early late]", order)
	}
}

func TestMeasureKernelThroughputAgreesAcrossImplementations(t *testing.T) {
	// Smoke the shared workload: both kernels dispatch the same number of
	// useful events and the measured rates are positive. (The >=2x speedup
	// gate lives in the perf bundle, not here, to keep unit tests
	// timing-free.)
	k := NewKernel(1)
	got := throughputLoad(throughputExec{after: k.After, cancel: k.Cancel}, 2000)
	k.RunAll()
	lk := &legacyKernel{}
	want := throughputLoad(throughputExec{after: func(d Time, fn func()) Handle {
		lk.After(d, fn)
		return 0
	}}, 2000)
	lk.runAll()
	if *got != *want {
		t.Fatalf("workload diverged: new kernel dispatched %d useful events, legacy %d", *got, *want)
	}
	if *got < 2000 {
		t.Fatalf("workload dispatched only %d useful events", *got)
	}
}

// TestWallSchedulerStartAtOrigin proves the joining-in-flight clock: a
// scheduler started at origin reads origin immediately, dispatches
// events scheduled relative to origin at the right wall instants, and
// clamps pre-origin times to "run next".
func TestWallSchedulerStartAtOrigin(t *testing.T) {
	before := runtime.NumGoroutine()
	const origin = 5 * Second
	w := NewWallScheduler(1)
	var mu sync.Mutex
	var seen []Time
	note := func() {
		mu.Lock()
		seen = append(seen, w.Now())
		mu.Unlock()
	}
	w.At(origin, note)                // due immediately at start
	w.At(2*Second, note)              // pre-origin: clamps, runs first
	w.At(origin+20*Millisecond, note) // genuinely in the future
	done := make(chan struct{})
	w.At(origin+30*Millisecond, func() { close(done) })
	w.StartAt(origin)
	if now := w.Now(); now < origin {
		t.Fatalf("Now = %v right after StartAt, want >= %v", now, origin)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("origin-relative events never dispatched")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("dispatched %d events, want 3", len(seen))
	}
	// The pre-origin event clamps to the origin cursor; logical times
	// never read below origin.
	for i, ts := range seen {
		if ts < origin {
			t.Errorf("event %d saw Now %v < origin", i, ts)
		}
	}
	if seen[2] < origin+20*Millisecond {
		t.Errorf("future event ran at %v, before its scheduled time", seen[2])
	}
	w.Close()
	waitNoLeak(t, before)
}

func TestWallSchedulerStartAtNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative origin accepted")
		}
	}()
	NewWallScheduler(1).StartAt(-1)
}
