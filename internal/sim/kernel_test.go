package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0us"},
		{5, "5us"},
		{1500, "1.500ms"},
		{2 * Second, "2.000s"},
		{Never, "never"},
		{-3 * Millisecond, "-3.000ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds() = %v, want 2.5", got)
	}
	if got := (3 * Millisecond).Millis(); got != 3.0 {
		t.Errorf("Millis() = %v, want 3", got)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
}

func TestKernelOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if k.Now() != 30 {
		t.Errorf("Now() = %v, want 30", k.Now())
	}
}

func TestKernelFIFOTieBreak(t *testing.T) {
	// Events at the same timestamp must run in insertion order.
	k := NewKernel(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated at index %d: got %d", i, v)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	var hits []Time
	k.At(10, func() {
		hits = append(hits, k.Now())
		k.After(5, func() { hits = append(hits, k.Now()) })
	})
	k.RunAll()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("nested scheduling wrong: %v", hits)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel(1)
	var count int
	for _, tm := range []Time{5, 10, 15, 20} {
		k.At(tm, func() { count++ })
	}
	n := k.Run(12)
	if n != 2 || count != 2 {
		t.Fatalf("Run(12) dispatched %d (count %d), want 2", n, count)
	}
	if k.Now() != 12 {
		t.Errorf("clock after Run(12) = %v, want 12", k.Now())
	}
	if k.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", k.Pending())
	}
	if k.NextEventTime() != 15 {
		t.Errorf("NextEventTime() = %v, want 15", k.NextEventTime())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel(1)
	var count int
	k.At(1, func() { count++; k.Stop() })
	k.At(2, func() { count++ })
	k.RunAll()
	if count != 1 {
		t.Fatalf("Stop did not halt: count = %d", count)
	}
	if !k.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
	if k.Step() {
		t.Error("Step() succeeded after Stop")
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.RunAll()
}

func TestKernelNegativeAfterPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("After(-1) did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestKernelEmptyNextEventTime(t *testing.T) {
	k := NewKernel(1)
	if k.NextEventTime() != Never {
		t.Errorf("NextEventTime on empty queue = %v, want Never", k.NextEventTime())
	}
}

func TestKernelDeterminism(t *testing.T) {
	// Two kernels with identical seeds and schedules produce identical
	// random draws interleaved with events.
	run := func() []uint64 {
		k := NewKernel(42)
		var draws []uint64
		for i := 0; i < 50; i++ {
			k.At(Time(i*3), func() { draws = append(draws, k.RNG().Uint64()) })
		}
		k.RunAll()
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism violated at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + int(seed%50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r1 := NewRNG(99)
	f1 := r1.Fork()
	// Drawing from the fork must not perturb the parent relative to a
	// parent that forked but never used the child.
	r2 := NewRNG(99)
	_ = r2.Fork()
	for i := 0; i < 100; i++ {
		f1.Uint64()
	}
	for i := 0; i < 100; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("fork usage perturbed parent stream")
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGDurationRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		d := r.Duration(Second)
		if d < 0 || d >= Second {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	// Crude chi-square-ish check: each of 10 buckets of Intn(10) should
	// receive roughly 1/10 of 100k draws.
	r := NewRNG(1234)
	const draws = 100000
	var buckets [10]int
	for i := 0; i < draws; i++ {
		buckets[r.Intn(10)]++
	}
	for b, c := range buckets {
		if c < draws/10-draws/50 || c > draws/10+draws/50 {
			t.Errorf("bucket %d has %d draws, expected ~%d", b, c, draws/10)
		}
	}
}

func BenchmarkKernelEventDispatch(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.At(k.Now()+1, func() {})
		k.Step()
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}
