package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0us"},
		{5, "5us"},
		{1500, "1.500ms"},
		{2 * Second, "2.000s"},
		{Never, "never"},
		{-3 * Millisecond, "-3.000ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds() = %v, want 2.5", got)
	}
	if got := (3 * Millisecond).Millis(); got != 3.0 {
		t.Errorf("Millis() = %v, want 3", got)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
}

func TestKernelOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if k.Now() != 30 {
		t.Errorf("Now() = %v, want 30", k.Now())
	}
}

func TestKernelFIFOTieBreak(t *testing.T) {
	// Events at the same timestamp must run in insertion order.
	k := NewKernel(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated at index %d: got %d", i, v)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	var hits []Time
	k.At(10, func() {
		hits = append(hits, k.Now())
		k.After(5, func() { hits = append(hits, k.Now()) })
	})
	k.RunAll()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("nested scheduling wrong: %v", hits)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel(1)
	var count int
	for _, tm := range []Time{5, 10, 15, 20} {
		k.At(tm, func() { count++ })
	}
	n := k.Run(12)
	if n != 2 || count != 2 {
		t.Fatalf("Run(12) dispatched %d (count %d), want 2", n, count)
	}
	if k.Now() != 12 {
		t.Errorf("clock after Run(12) = %v, want 12", k.Now())
	}
	if k.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", k.Pending())
	}
	if k.NextEventTime() != 15 {
		t.Errorf("NextEventTime() = %v, want 15", k.NextEventTime())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel(1)
	var count int
	k.At(1, func() { count++; k.Stop() })
	k.At(2, func() { count++ })
	k.RunAll()
	if count != 1 {
		t.Fatalf("Stop did not halt: count = %d", count)
	}
	if !k.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
	if k.Step() {
		t.Error("Step() succeeded after Stop")
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.RunAll()
}

func TestKernelNegativeAfterPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("After(-1) did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestKernelEmptyNextEventTime(t *testing.T) {
	k := NewKernel(1)
	if k.NextEventTime() != Never {
		t.Errorf("NextEventTime on empty queue = %v, want Never", k.NextEventTime())
	}
}

func TestKernelDeterminism(t *testing.T) {
	// Two kernels with identical seeds and schedules produce identical
	// random draws interleaved with events.
	run := func() []uint64 {
		k := NewKernel(42)
		var draws []uint64
		for i := 0; i < 50; i++ {
			k.At(Time(i*3), func() { draws = append(draws, k.RNG().Uint64()) })
		}
		k.RunAll()
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism violated at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + int(seed%50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r1 := NewRNG(99)
	f1 := r1.Fork()
	// Drawing from the fork must not perturb the parent relative to a
	// parent that forked but never used the child.
	r2 := NewRNG(99)
	_ = r2.Fork()
	for i := 0; i < 100; i++ {
		f1.Uint64()
	}
	for i := 0; i < 100; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("fork usage perturbed parent stream")
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGDurationRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		d := r.Duration(Second)
		if d < 0 || d >= Second {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	// Crude chi-square-ish check: each of 10 buckets of Intn(10) should
	// receive roughly 1/10 of 100k draws.
	r := NewRNG(1234)
	const draws = 100000
	var buckets [10]int
	for i := 0; i < draws; i++ {
		buckets[r.Intn(10)]++
	}
	for b, c := range buckets {
		if c < draws/10-draws/50 || c > draws/10+draws/50 {
			t.Errorf("bucket %d has %d draws, expected ~%d", b, c, draws/10)
		}
	}
}

func BenchmarkKernelEventDispatch(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.At(k.Now()+1, func() {})
		k.Step()
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

// --- Handle / cancellation edge cases ---------------------------------------

func TestKernelCancelPending(t *testing.T) {
	k := NewKernel(1)
	var fired []int
	k.At(10, func() { fired = append(fired, 1) })
	h := k.At(20, func() { fired = append(fired, 2) })
	k.At(30, func() { fired = append(fired, 3) })
	if !k.Cancel(h) {
		t.Fatal("Cancel of a pending event returned false")
	}
	if k.Pending() != 2 {
		t.Fatalf("Pending() = %d after cancel, want 2", k.Pending())
	}
	k.RunAll()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("cancelled event ran: fired = %v", fired)
	}
}

func TestKernelCancelAlreadyFired(t *testing.T) {
	k := NewKernel(1)
	h := k.At(5, func() {})
	k.RunAll()
	if k.Cancel(h) {
		t.Error("Cancel of an already-fired event returned true")
	}
	// A second cancel of the same stale handle must also be a no-op.
	if k.Cancel(h) {
		t.Error("double Cancel returned true")
	}
}

func TestKernelCancelZeroHandle(t *testing.T) {
	k := NewKernel(1)
	if k.Cancel(0) {
		t.Error("Cancel(0) returned true")
	}
	if k.Cancel(Handle(1<<40 | 7)) {
		t.Error("Cancel of a never-issued handle returned true")
	}
}

func TestKernelStaleHandleAfterSlotReuse(t *testing.T) {
	// A handle whose pool slot was recycled must not cancel the new
	// occupant (generation guard).
	k := NewKernel(1)
	h := k.At(1, func() {})
	k.Step() // fires h; its slot returns to the pool
	ran := false
	k.At(2, func() { ran = true }) // reuses the slot
	if k.Cancel(h) {
		t.Error("stale handle cancelled a recycled slot")
	}
	k.RunAll()
	if !ran {
		t.Error("recycled-slot event did not run")
	}
}

func TestKernelAtExactlyNow(t *testing.T) {
	// Scheduling at exactly Now must run (not panic), after already-queued
	// same-instant events, in insertion order.
	k := NewKernel(1)
	var order []int
	k.At(10, func() {
		order = append(order, 1)
		k.At(k.Now(), func() { order = append(order, 3) })
	})
	k.At(10, func() { order = append(order, 2) })
	k.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("At(Now) ordering wrong: %v", order)
	}
	if k.Now() != 10 {
		t.Errorf("Now() = %v, want 10", k.Now())
	}
}

func TestKernelRunUntilClockSemantics(t *testing.T) {
	// Run(until) with an empty queue advances the clock to until; with a
	// later event pending, the clock stops at until and the event stays.
	k := NewKernel(1)
	k.Run(50)
	if k.Now() != 50 {
		t.Fatalf("Run on empty queue left clock at %v, want 50", k.Now())
	}
	fired := false
	k.At(100, func() { fired = true })
	if n := k.Run(70); n != 0 {
		t.Fatalf("Run(70) dispatched %d events, want 0", n)
	}
	if k.Now() != 70 || fired {
		t.Fatalf("clock %v fired=%v, want 70/false", k.Now(), fired)
	}
	// An event exactly at until is dispatched and the clock lands on it.
	if n := k.Run(100); n != 1 || !fired || k.Now() != 100 {
		t.Fatalf("Run(100): n=%d fired=%v now=%v", n, fired, k.Now())
	}
	// Running backwards-in-time bounds is a no-op that never rewinds.
	k.Run(10)
	if k.Now() != 100 {
		t.Errorf("Run(10) rewound the clock to %v", k.Now())
	}
}

func TestKernelStopMidBatchKeepsRemainderPending(t *testing.T) {
	// Stop inside a same-timestamp batch: later events of the batch must
	// not run and must stay pending (matching one-at-a-time semantics).
	k := NewKernel(1)
	var order []int
	k.At(5, func() { order = append(order, 1); k.Stop() })
	k.At(5, func() { order = append(order, 2) })
	k.At(5, func() { order = append(order, 3) })
	k.RunAll()
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("events ran after Stop: %v", order)
	}
	if k.Pending() != 2 {
		t.Fatalf("Pending() = %d after mid-batch Stop, want 2", k.Pending())
	}
}

func TestKernelCancelInterleavedWithDispatch(t *testing.T) {
	// A callback cancelling a same-timestamp later event: the event was
	// already popped into the batch, so cancellation reports false and the
	// event still runs — Cancel only covers events still in the queue.
	// Cancelling a *later-timestamp* event from a callback works.
	k := NewKernel(1)
	var fired []int
	var hLater Handle
	k.At(5, func() {
		fired = append(fired, 1)
		if k.Cancel(hLater) != true {
			t.Error("cancel of later-timestamp event from callback failed")
		}
	})
	hLater = k.At(9, func() { fired = append(fired, 9) })
	k.RunAll()
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
}

func TestKernelHeapStressOrdering(t *testing.T) {
	// Random schedule/cancel interleavings must still dispatch in strict
	// (time, seq) order with no event lost or duplicated.
	k := NewKernel(7)
	rng := NewRNG(99)
	type rec struct {
		at  Time
		seq int
	}
	var got []rec
	n := 0
	var handles []Handle
	for i := 0; i < 5000; i++ {
		at := Time(rng.Intn(1000))
		i := i
		h := k.At(at, func() { got = append(got, rec{k.Now(), i}) })
		n++
		handles = append(handles, h)
		if rng.Bool(0.3) && len(handles) > 0 {
			j := rng.Intn(len(handles))
			if k.Cancel(handles[j]) {
				n--
			}
		}
	}
	k.RunAll()
	if len(got) != n {
		t.Fatalf("dispatched %d events, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("time order violated at %d: %v after %v", i, got[i].at, got[i-1].at)
		}
	}
}

func BenchmarkKernelThroughput(b *testing.B) {
	// The headline kernel benchmark: one op = one useful (work) event of
	// the standard BTR-shaped workload — 1024 self-rescheduling chains,
	// each arming an arrival watchdog per round and cancelling it when the
	// "record" arrives (1/64 rounds omit, letting the watchdog fire). The
	// acceptance criterion pins this at >=2x the frozen legacy
	// closure-heap kernel (BenchmarkKernelThroughputLegacy, which cannot
	// cancel and therefore dispatches every dead watchdog), gated
	// continuously via BENCH_campaign.json and cmd/btrcheckbench.
	b.ReportAllocs()
	k := NewKernel(1)
	throughputLoad(throughputExec{after: k.After, cancel: k.Cancel}, b.N)
	b.ResetTimer()
	k.RunAll()
}

func BenchmarkKernelThroughputLegacy(b *testing.B) {
	b.ReportAllocs()
	k := &legacyKernel{}
	throughputLoad(throughputExec{after: func(d Time, fn func()) Handle {
		k.After(d, fn)
		return 0
	}}, b.N)
	b.ResetTimer()
	k.runAll()
}

func BenchmarkKernelWatchdogArmCancel(b *testing.B) {
	// The watchdog pattern the runtime uses: arm a timer, cancel it before
	// it fires (the old kernel had no Cancel and let dead closures fire).
	b.ReportAllocs()
	k := NewKernel(1)
	for i := 0; i < b.N; i++ {
		h := k.After(1000, func() { b.Fatal("cancelled watchdog fired") })
		k.Cancel(h)
		if i%64 == 0 {
			k.Run(k.Now() + 1) // keep the clock moving
		}
	}
}
