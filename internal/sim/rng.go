package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**, seeded via splitmix64). We do not use math/rand so that
// the simulation's determinism does not depend on stdlib internals and so
// that every random decision is tied to an explicit, logged seed.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64 (the
// recommended seeding procedure for xoshiro, which must not be seeded with
// all zeros).
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method is overkill here; simple modulo
	// bias is negligible for the n (<2^32) used in simulation decisions,
	// but we still reject to keep distributions exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int64(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform Time in [0, d). It panics if d <= 0.
func (r *RNG) Duration(d Time) Time { return Time(r.Int63n(int64(d))) }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator from this one. Using Fork for each
// subsystem keeps their random streams decoupled: adding a draw in one
// subsystem does not perturb another's sequence.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
