// Package sim provides a deterministic discrete-event simulation kernel.
//
// All of BTR's substrates (network, node runtimes, plants, adversaries) run
// on top of a single Kernel that advances a virtual clock from event to
// event. Determinism is guaranteed by (a) a total order on events — primary
// key virtual time, tie-break by insertion sequence number — and (b) a
// seeded PRNG (see RNG) instead of any ambient source of randomness.
//
// Time is measured in microseconds of virtual time (type Time). One
// microsecond granularity is fine enough for the CAN-bus / avionics-style
// networks the paper targets and coarse enough to avoid overflow: int64
// microseconds cover ~292k years.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in microseconds since simulation start.
// It doubles as a duration; helper constructors Millisecond etc. make
// call sites readable.
type Time int64

// Convenient units for constructing Time values.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// Never is a sentinel meaning "no deadline / unreachable time".
const Never Time = 1<<63 - 1

// String renders a Time using the largest unit that keeps it readable.
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%dus", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to Time, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // insertion order; total-order tie-break
	fn  func()
}

// eventHeap is a min-heap over (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is the discrete-event simulation engine. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	pq      eventHeap
	rng     *RNG
	stopped bool

	// Executed counts events dispatched so far (for diagnostics and as a
	// runaway guard in tests).
	Executed uint64
}

// NewKernel returns a kernel whose clock reads zero and whose PRNG is
// seeded with seed. Two kernels constructed with the same seed and fed the
// same schedule of events produce byte-identical behavior.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it indicates a logic bug, and silently clamping would
// hide causality violations.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.pq, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fn)
}

// Step dispatches the single earliest pending event. It reports false when
// no events remain or Stop has been called.
func (k *Kernel) Step() bool {
	if k.stopped || len(k.pq) == 0 {
		return false
	}
	ev := heap.Pop(&k.pq).(*event)
	k.now = ev.at
	k.Executed++
	ev.fn()
	return true
}

// Run dispatches events until the queue is empty, Stop is called, or the
// next event lies strictly after until. The clock is left at the time of
// the last dispatched event (or until, if that is later and events remain).
// It returns the number of events dispatched by this call.
func (k *Kernel) Run(until Time) uint64 {
	var n uint64
	for !k.stopped && len(k.pq) > 0 && k.pq[0].at <= until {
		k.Step()
		n++
	}
	if k.now < until && !k.stopped {
		k.now = until
	}
	return n
}

// RunAll dispatches events until none remain or Stop is called.
func (k *Kernel) RunAll() uint64 {
	var n uint64
	for k.Step() {
		n++
	}
	return n
}

// Stop halts the simulation: subsequent Step/Run calls do nothing. Safe to
// call from inside an event callback.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Pending returns the number of events waiting in the queue.
func (k *Kernel) Pending() int { return len(k.pq) }

// NextEventTime returns the time of the earliest pending event, or Never if
// the queue is empty.
func (k *Kernel) NextEventTime() Time {
	if len(k.pq) == 0 {
		return Never
	}
	return k.pq[0].at
}
