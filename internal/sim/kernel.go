// Package sim provides BTR's executive seam: a Scheduler interface over
// virtual or wall-clock time, a deterministic discrete-event Kernel
// implementing it, and a real-time WallScheduler for live deployments.
//
// Every substrate above this package (network, node runtimes, plants,
// adversaries) is written against Scheduler only, so the same runtime code
// executes in two modes:
//
//   - Simulation: Kernel advances a virtual clock from event to event.
//     Determinism is guaranteed by (a) a total order on events — primary
//     key virtual time, tie-break by insertion sequence number — and (b) a
//     seeded PRNG (see RNG) instead of any ambient source of randomness.
//   - Live: WallScheduler dispatches the same callbacks at real wall-clock
//     deadlines on a single executor goroutine (see wall.go), which is how
//     cmd/btrlive measures recovery in wall time rather than virtual time.
//
// Time is measured in microseconds (type Time) in both modes. One
// microsecond granularity is fine enough for the CAN-bus / avionics-style
// networks the paper targets and coarse enough to avoid overflow: int64
// microseconds cover ~292k years.
package sim

import "fmt"

// Time is a point in virtual (or live-run wall) time, in microseconds
// since execution start. It doubles as a duration; helper constructors
// Millisecond etc. make call sites readable.
type Time int64

// Convenient units for constructing Time values.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// Never is a sentinel meaning "no deadline / unreachable time".
const Never Time = 1<<63 - 1

// String renders a Time using the largest unit that keeps it readable.
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%dus", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to Time, rounding to the
// nearest microsecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// Scheduler is the executive seam between BTR's runtime layers and
// whatever drives them. The discrete-event Kernel implements it on virtual
// time; WallScheduler implements it on the wall clock. Code written
// against Scheduler (the network transports, the node runtime, the plants)
// runs unchanged in both modes.
//
// Contract shared by all implementations:
//
//   - Callbacks are dispatched one at a time in (time, insertion) order;
//     no two callbacks ever run concurrently, so runtime state needs no
//     locking.
//   - At/After return a Handle; Cancel(h) prevents the callback from
//     running if it has not fired yet and reports whether it did so.
//     Cancelling an already-fired or already-cancelled event returns
//     false.
//   - RNG returns the executive's deterministic random source. It is not
//     synchronized: use it only from event callbacks (or before the
//     executive starts dispatching).
type Scheduler interface {
	// Now returns the current time.
	Now() Time
	// At schedules fn at absolute time t.
	At(t Time, fn func()) Handle
	// After schedules fn d after the current time. Negative d panics.
	After(d Time, fn func()) Handle
	// Cancel revokes a scheduled event; see the interface contract.
	Cancel(h Handle) bool
	// RNG returns the executive's deterministic random source.
	RNG() *RNG
}

// Kernel is the discrete-event simulation engine. The zero value is not
// usable; construct with NewKernel.
//
// The hot path is allocation-free at steady state: events are typed
// records in a pooled 4-ary index heap (see eventQueue), and same-
// timestamp runs dispatch as one batch — a single clock advance and heap
// drain per distinct instant instead of a full pop cycle per event.
type Kernel struct {
	now     Time
	q       eventQueue
	rng     *RNG
	stopped bool

	// batch is the reusable same-timestamp dispatch buffer. It is
	// detached while in use so a callback that re-enters Run/RunAll
	// (unusual but legal) gets a fresh buffer instead of clobbering the
	// in-flight one.
	batch []batchEvent

	// Executed counts events dispatched so far (for diagnostics and as a
	// runaway guard in tests).
	Executed uint64
}

// batchEvent is one popped event awaiting dispatch in the current batch.
type batchEvent struct {
	seq uint64
	fn  func()
}

// Kernel implements Scheduler.
var _ Scheduler = (*Kernel)(nil)

// NewKernel returns a kernel whose clock reads zero and whose PRNG is
// seeded with seed. Two kernels constructed with the same seed and fed the
// same schedule of events produce byte-identical behavior.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it indicates a logic bug, and silently clamping would
// hide causality violations.
func (k *Kernel) At(t Time, fn func()) Handle {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	return k.q.schedule(t, fn)
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Cancel revokes a scheduled event. It reports false when the handle is
// zero, stale, or the event already fired or was cancelled.
func (k *Kernel) Cancel(h Handle) bool { return k.q.cancel(h) }

// Step dispatches the single earliest pending event. It reports false when
// no events remain or Stop has been called.
func (k *Kernel) Step() bool {
	if k.stopped || k.q.len() == 0 {
		return false
	}
	at, _, fn := k.q.pop()
	k.now = at
	k.Executed++
	fn()
	return true
}

// dispatchBatch advances the clock to t and runs every event scheduled at
// exactly t in insertion order, popping them all before running any — one
// heap drain per instant. Events a callback schedules at the same t land
// back in the heap and are picked up by the caller's next batch (their
// sequence numbers are larger, so insertion order is preserved). If a
// callback calls Stop mid-batch, the unexecuted remainder is requeued with
// its original sequence numbers, matching the one-event-at-a-time
// semantics (stopped events stay pending).
func (k *Kernel) dispatchBatch(t Time) uint64 {
	k.now = t
	_, seq0, fn := k.q.pop()
	if k.q.len() == 0 || k.q.topAt() != t {
		// Fast path: the instant holds a single event.
		k.Executed++
		fn()
		return 1
	}
	batch := k.batch[:0]
	k.batch = nil
	batch = append(batch, batchEvent{seq0, fn})
	for k.q.len() > 0 && k.q.topAt() == t {
		_, seq, fn := k.q.pop()
		batch = append(batch, batchEvent{seq, fn})
	}
	var n uint64
	for i := range batch {
		if k.stopped {
			for _, rest := range batch[i:] {
				k.q.scheduleSeq(t, rest.seq, rest.fn)
			}
			break
		}
		fn := batch[i].fn
		batch[i].fn = nil // release the closure before running it
		k.Executed++
		n++
		fn()
	}
	k.batch = batch[:0]
	return n
}

// Run dispatches events until the queue is empty, Stop is called, or the
// next event lies strictly after until. The clock is left at the time of
// the last dispatched event (or until, if that is later and events remain).
// It returns the number of events dispatched by this call.
func (k *Kernel) Run(until Time) uint64 {
	var n uint64
	for !k.stopped && k.q.len() > 0 {
		t := k.q.topAt()
		if t > until {
			break
		}
		n += k.dispatchBatch(t)
	}
	if k.now < until && !k.stopped {
		k.now = until
	}
	return n
}

// RunAll dispatches events until none remain or Stop is called.
func (k *Kernel) RunAll() uint64 {
	var n uint64
	for !k.stopped && k.q.len() > 0 {
		n += k.dispatchBatch(k.q.topAt())
	}
	return n
}

// Stop halts the simulation: subsequent Step/Run calls do nothing. Safe to
// call from inside an event callback; events not yet dispatched (including
// later events of the current same-timestamp batch) stay pending.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Pending returns the number of events waiting in the queue.
func (k *Kernel) Pending() int { return k.q.len() }

// NextEventTime returns the time of the earliest pending event, or Never if
// the queue is empty.
func (k *Kernel) NextEventTime() Time {
	if k.q.len() == 0 {
		return Never
	}
	return k.q.topAt()
}
