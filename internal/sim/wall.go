package sim

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// wallSpinSlack is the window before an event's deadline in which the
// executor yield-spins instead of arming an OS timer (whose ~1ms
// overshoot on non-realtime kernels would otherwise become per-event
// dispatch jitter). Timers are still used for longer waits, so an idle
// executive does not burn CPU.
const wallSpinSlack = 2 * Millisecond

// wallCatchUpLag is how far behind the wall clock the executor must fall
// before it starts yielding between dispatches (see the catch-up fairness
// note in loop). On-time operation never pays it.
const wallCatchUpLag = 2 * Millisecond

// WallScheduler implements Scheduler on the wall clock: the same runtime
// code that simulates under Kernel executes live, with sim.Time measured
// as real microseconds since Start. It is the executive behind
// internal/live deployments and cmd/btrlive.
//
// Concurrency model: a single executor goroutine (started by Start) owns
// all callback dispatch — callbacks never run concurrently, preserving
// the no-locking discipline runtime code relies on under Kernel. At,
// After, Cancel, and Now are safe to call from any goroutine (transports
// hand deliveries back to the executor this way); RNG is not synchronized
// and must be used only from callbacks, matching the Scheduler contract.
//
// Two deliberate departures from Kernel semantics, both inherent to real
// time: scheduling at a time already in the past clamps to "run next"
// instead of panicking (wall-clock races make slightly-past deadlines
// inevitable), and Now advances continuously rather than from event to
// event. Dispatch order remains (time, insertion order): an event
// scheduled at T runs before one at T' > T even when the executor is
// running behind the wall clock.
type WallScheduler struct {
	mu      sync.Mutex
	q       eventQueue
	rng     *RNG
	start   time.Time
	started bool
	stopped bool

	// cursor is the scheduled time of the most recently dispatched event
	// (max-monotonic); dispatching marks a callback in flight. Together
	// they give callbacks kernel-style logical time — see Now.
	cursor      Time
	dispatching bool

	wake chan struct{} // signals the executor that the head changed
	quit chan struct{} // closed by Stop
	done chan struct{} // closed when the executor exits

	stopOnce sync.Once

	// Executed counts dispatched events (read it after Close for
	// diagnostics; it is not synchronized for concurrent readers).
	Executed uint64
}

// WallScheduler implements Scheduler.
var _ Scheduler = (*WallScheduler)(nil)

// NewWallScheduler returns a wall-clock executive whose PRNG is seeded
// with seed. Call Start to begin dispatching.
func NewWallScheduler(seed uint64) *WallScheduler {
	return &WallScheduler{
		rng:  NewRNG(seed),
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start pins t=0 to the current wall clock and launches the executor
// goroutine. Events scheduled before Start run as soon as it is called.
// Starting twice panics.
func (w *WallScheduler) Start() { w.StartAt(0) }

// StartAt pins logical time t=origin (not 0) to the current wall clock
// and launches the executor. A process joining a deployment already in
// flight uses it — e.g. a restarted node whose cluster is at period N:
// starting at origin = N·period makes all period arithmetic, watchdog
// deadlines, and evidence timestamps agree with the running peers
// without replaying the missed interval. Events scheduled before origin
// clamp to "run next", like any past time. Negative origin panics;
// starting twice panics.
func (w *WallScheduler) StartAt(origin Time) {
	if origin < 0 {
		panic(fmt.Sprintf("sim: negative start origin %v", origin))
	}
	w.mu.Lock()
	if w.started {
		w.mu.Unlock()
		panic("sim: WallScheduler started twice")
	}
	w.started = true
	// Back-dating start by origin makes nowLocked (and therefore Now,
	// WallElapsed, and every deadline comparison) read origin at this
	// instant with no further arithmetic anywhere.
	w.start = time.Now().Add(-time.Duration(origin) * time.Microsecond)
	if origin > w.cursor {
		w.cursor = origin
	}
	w.mu.Unlock()
	go w.loop()
}

// Now returns the executive's logical clock. Inside an event callback it
// is the callback's scheduled time — the same semantics as the
// discrete-event kernel — so timing computed from Now (message send
// stamps, period arithmetic, evidence timestamps) stays on the modeled
// timeline even when the executor momentarily lags the wall clock and is
// catching up in causal order. Outside callbacks it is the elapsed wall
// time since Start (never rewinding behind the cursor; zero before
// Start). An event never dispatches before the wall clock reaches its
// scheduled time, so when the executor is keeping up the two views
// coincide to within dispatch jitter.
func (w *WallScheduler) Now() Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dispatching {
		return w.cursor
	}
	now := w.nowLocked()
	if now < w.cursor {
		return w.cursor
	}
	return now
}

// WallElapsed returns the raw elapsed wall time since Start (zero
// before Start), regardless of any in-flight dispatch. Transports use it
// for pacing decisions (how long to sleep) where the logical clock of
// Now would overstate the wait while the executor is catching up.
func (w *WallScheduler) WallElapsed() Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nowLocked()
}

func (w *WallScheduler) nowLocked() Time {
	if !w.started {
		return 0
	}
	return Time(time.Since(w.start) / time.Microsecond)
}

// RNG returns the deterministic random source. Per the Scheduler
// contract, use it only from event callbacks (or before Start).
func (w *WallScheduler) RNG() *RNG { return w.rng }

// At schedules fn at absolute time t (microseconds since Start). Times in
// the past clamp to "run as soon as possible". After Stop, scheduling is
// accepted but the event never runs.
func (w *WallScheduler) At(t Time, fn func()) Handle {
	w.mu.Lock()
	wasHead := w.q.len() == 0 || t < w.q.topAt()
	h := w.q.schedule(t, fn)
	w.mu.Unlock()
	if wasHead {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	return h
}

// After schedules fn d after the current time (logical time inside a
// callback, wall time outside — see Now). Negative d panics.
func (w *WallScheduler) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	w.mu.Lock()
	base := w.nowLocked()
	if w.dispatching || base < w.cursor {
		base = w.cursor
	}
	t := base + d
	wasHead := w.q.len() == 0 || t < w.q.topAt()
	h := w.q.schedule(t, fn)
	w.mu.Unlock()
	if wasHead {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	return h
}

// Cancel revokes a scheduled event; it reports false for zero, stale, or
// already-fired handles.
func (w *WallScheduler) Cancel(h Handle) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.q.cancel(h)
}

// Pending returns the number of scheduled events not yet dispatched.
func (w *WallScheduler) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.q.len()
}

// loop is the executor: it sleeps until the head event is due, then
// dispatches every due event in (time, insertion) order.
func (w *WallScheduler) loop() {
	defer close(w.done)
	for {
		w.mu.Lock()
		w.dispatching = false
		if w.stopped {
			w.mu.Unlock()
			return
		}
		if w.q.len() == 0 {
			w.mu.Unlock()
			select {
			case <-w.wake:
				continue
			case <-w.quit:
				return
			}
		}
		next := w.q.topAt()
		now := w.nowLocked()
		if next > now {
			w.mu.Unlock()
			if next-now <= wallSpinSlack {
				// Nearly due: OS timers on non-realtime kernels
				// overshoot by ~1ms, which would add a full
				// millisecond of dispatch jitter to every event.
				// Yield-spin through the last stretch instead.
				runtime.Gosched()
				continue
			}
			timer := time.NewTimer(time.Duration(next-now-wallSpinSlack) * time.Microsecond)
			select {
			case <-timer.C:
			case <-w.wake: // an earlier event arrived; recompute
				timer.Stop()
			case <-w.quit:
				timer.Stop()
				return
			}
			continue
		}
		if now-next > wallCatchUpLag {
			// Catching up: the executor is running overdue events
			// back-to-back and would otherwise never block, starving the
			// goroutines (transport lanes) whose pending handoffs belong
			// *before* the next overdue event. Yield once per dispatch so
			// their schedules land in the heap and causal order repairs
			// itself; when running on time this branch never triggers.
			w.mu.Unlock()
			runtime.Gosched()
			w.mu.Lock()
			if w.stopped || w.q.len() == 0 {
				w.mu.Unlock()
				continue
			}
		}
		at, _, fn := w.q.pop()
		if at > w.cursor {
			w.cursor = at
		}
		w.dispatching = true
		w.Executed++
		w.mu.Unlock()
		fn()
	}
}

// WaitUntil blocks the calling goroutine until the wall clock reaches t
// (events keep dispatching meanwhile). It is how drivers express "run the
// deployment for this horizon".
func (w *WallScheduler) WaitUntil(t Time) {
	for {
		w.mu.Lock()
		now := w.nowLocked()
		started := w.started
		w.mu.Unlock()
		if !started {
			panic("sim: WaitUntil before Start")
		}
		if now >= t {
			return
		}
		d := time.Duration(t-now) * time.Microsecond
		select {
		case <-time.After(d):
			return
		case <-w.quit:
			return
		}
	}
}

// Stop halts dispatch: no further callbacks run after the in-flight one
// returns. Safe to call from any goroutine, from callbacks, and more than
// once.
func (w *WallScheduler) Stop() {
	w.stopOnce.Do(func() {
		w.mu.Lock()
		w.stopped = true
		w.mu.Unlock()
		close(w.quit)
	})
}

// Close stops the executive and waits for the executor goroutine to exit
// — the shutdown path leak tests pin. Events still pending are discarded.
// Close before Start is safe.
func (w *WallScheduler) Close() {
	w.mu.Lock()
	started := w.started
	w.mu.Unlock()
	w.Stop()
	if started {
		<-w.done
	}
}
