package sim

// Handle identifies a scheduled event for cancellation. The zero Handle is
// invalid (Cancel returns false for it), so callers can keep a Handle field
// around without an extra "armed" flag. Handles are single-use: once the
// event fires or is cancelled, the handle goes stale and a later Cancel
// returns false — slot reuse is guarded by a generation counter, so a stale
// handle can never cancel an unrelated newer event.
type Handle uint64

// eventRec is the pooled, typed per-event record: the callback plus the
// bookkeeping cancellation needs. Records are recycled through a free
// list; fn is nilled out the moment the event fires or is cancelled, so
// finished events never pin their closures (the old closure-heap kernel
// kept dead watchdog closures alive until their timestamp drained).
type eventRec struct {
	fn  func()
	pos int32  // index in heap; -1 when not queued
	gen uint32 // handle generation (guards slot reuse)
}

// heapEntry is one heap element. The ordering key (at, seq) lives inline so
// sift comparisons never chase a pool pointer — with the 4-ary layout a
// child scan reads one or two cache lines of contiguous entries instead of
// four scattered heap objects (the old kernel's []*event paid a cache miss
// per comparison once the pending set outgrew L1).
type heapEntry struct {
	at  Time
	seq uint64 // insertion order; total-order tie-break
	idx int32  // pool index of the record
}

// eventQueue is a pooled 4-ary index min-heap over (at, seq). It is the
// shared engine under both the discrete-event Kernel and the wall-clock
// WallScheduler: each pooled record tracks its heap position, so Cancel
// removes the event eagerly in O(log n) — the queue never accumulates dead
// entries, keeping the watchdog arm/cancel pattern cheap — and freed slots
// recycle through a free list so steady-state scheduling allocates
// nothing.
type eventQueue struct {
	pool []eventRec
	free []int32
	heap []heapEntry
	seq  uint64
}

func makeHandle(idx int32, gen uint32) Handle {
	return Handle(uint64(uint32(idx+1)) | uint64(gen)<<32)
}

func (q *eventQueue) len() int { return len(q.heap) }

// topAt returns the earliest pending time; call only when len() > 0.
func (q *eventQueue) topAt() Time { return q.heap[0].at }

// schedule inserts fn at time at with a fresh sequence number.
func (q *eventQueue) schedule(at Time, fn func()) Handle {
	q.seq++
	return q.scheduleSeq(at, q.seq, fn)
}

// scheduleSeq inserts with an explicit sequence number (used to requeue
// events popped into a dispatch batch that Stop interrupted, preserving
// their original tie-break order).
func (q *eventQueue) scheduleSeq(at Time, seq uint64, fn func()) Handle {
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		q.pool = append(q.pool, eventRec{})
		idx = int32(len(q.pool) - 1)
	}
	rec := &q.pool[idx]
	rec.fn = fn
	q.heap = append(q.heap, heapEntry{at: at, seq: seq, idx: idx})
	q.siftUp(len(q.heap) - 1)
	return makeHandle(idx, rec.gen)
}

// cancel removes the event named by h. It reports false when h is zero,
// stale, or already fired — cancellation after the fact is a no-op, not an
// error.
func (q *eventQueue) cancel(h Handle) bool {
	lo := uint32(h)
	if lo == 0 {
		return false
	}
	idx := int32(lo - 1)
	if int(idx) >= len(q.pool) {
		return false
	}
	rec := &q.pool[idx]
	if rec.gen != uint32(h>>32) || rec.pos < 0 {
		return false
	}
	pos := int(rec.pos)
	last := len(q.heap) - 1
	moved := q.heap[last]
	q.heap = q.heap[:last]
	if pos != last {
		q.heap[pos] = moved
		q.pool[moved.idx].pos = int32(pos)
		q.siftDown(pos)
		if q.heap[pos].idx == moved.idx {
			q.siftUp(pos)
		}
	}
	q.release(idx)
	return true
}

// pop removes and returns the earliest event; call only when len() > 0.
func (q *eventQueue) pop() (at Time, seq uint64, fn func()) {
	e := q.heap[0]
	at, seq, fn = e.at, e.seq, q.pool[e.idx].fn
	last := len(q.heap) - 1
	moved := q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.heap[0] = moved
		q.pool[moved.idx].pos = 0
		q.siftDown(0)
	}
	q.release(e.idx)
	return at, seq, fn
}

// release recycles a fired/cancelled record, dropping its closure and
// bumping the generation so outstanding handles go stale.
func (q *eventQueue) release(idx int32) {
	rec := &q.pool[idx]
	rec.fn = nil
	rec.pos = -1
	rec.gen++
	q.free = append(q.free, idx)
}

func less(a, b *heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) siftUp(pos int) {
	e := q.heap[pos]
	for pos > 0 {
		parent := (pos - 1) >> 2
		p := q.heap[parent]
		if !less(&e, &p) {
			break
		}
		q.heap[pos] = p
		q.pool[p.idx].pos = int32(pos)
		pos = parent
	}
	q.heap[pos] = e
	q.pool[e.idx].pos = int32(pos)
}

func (q *eventQueue) siftDown(pos int) {
	e := q.heap[pos]
	n := len(q.heap)
	for {
		first := pos<<2 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(&q.heap[c], &q.heap[best]) {
				best = c
			}
		}
		if !less(&q.heap[best], &e) {
			break
		}
		q.heap[pos] = q.heap[best]
		q.pool[q.heap[pos].idx].pos = int32(pos)
		pos = best
	}
	q.heap[pos] = e
	q.pool[e.idx].pos = int32(pos)
}
