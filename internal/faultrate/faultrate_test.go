package faultrate

import (
	"reflect"
	"testing"

	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/sim"
)

func testParams(seed uint64) Params {
	p := sim.Time(25 * sim.Millisecond)
	return Params{
		Lambda: 8, Heal: 8 * p, Forgive: 8 * p, Period: p,
		Start: 4 * p, Horizon: 200 * p, F: 1, Seed: seed,
	}
}

func testVictims(n int) []Victim {
	var out []Victim
	for i := 0; i < n; i++ {
		out = append(out, Victim{Node: network.NodeID(i), Logicals: []flow.TaskID{"t0", "t1"}})
	}
	return out
}

// The arrival process is a pure function of (Params, victims): the same
// seed must reproduce the identical schedule, and distinct seeds must
// not (the C8 byte-determinism pin rides on the former).
func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(testParams(42), testVictims(5))
	b := Schedule(testParams(42), testVictims(5))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("schedule empty — test exercises nothing")
	}
	c := Schedule(testParams(43), testVictims(5))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Every arrival must land inside [Start, Horizon), heal exactly Heal
// later, use a catalog behavior, and target a hosted task.
func TestScheduleBounds(t *testing.T) {
	p := testParams(7)
	arr := Schedule(p, testVictims(4))
	if len(arr) == 0 {
		t.Fatal("schedule empty")
	}
	cat := map[string]bool{}
	for _, b := range Catalog() {
		cat[b] = true
	}
	for _, a := range arr {
		if a.At < p.Start || a.At >= p.Horizon {
			t.Errorf("arrival at %v outside [%v, %v)", a.At, p.Start, p.Horizon)
		}
		if a.HealAt != a.At+p.Heal {
			t.Errorf("heal at %v, want %v", a.HealAt, a.At+p.Heal)
		}
		if !cat[a.Behavior] {
			t.Errorf("behavior %q not in the catalog", a.Behavior)
		}
		if a.Logical != "t0" && a.Logical != "t1" {
			t.Errorf("logical %q not hosted by the victim", a.Logical)
		}
	}
}

// A single victim can never hold two overlapping episodes: consecutive
// arrivals must be separated by the full influence window
// (heal + forgive + 2 periods), and every arrival sees exactly one
// active episode — itself.
func TestScheduleSingleVictimNeverOverlaps(t *testing.T) {
	p := testParams(3)
	p.Lambda = 64 // saturate: most draws find the victim still convicted
	arr := Schedule(p, testVictims(1))
	if len(arr) < 2 {
		t.Fatalf("want >=2 arrivals, got %d", len(arr))
	}
	for i, a := range arr {
		if a.ActiveAtArrival != 1 {
			t.Errorf("arrival %d: active=%d, want 1", i, a.ActiveAtArrival)
		}
		if i > 0 {
			prevEnd := arr[i-1].HealAt + linger(p)
			if a.At < prevEnd {
				t.Errorf("arrival %d at %v inside predecessor's influence window (ends %v)", i, a.At, prevEnd)
			}
		}
	}
}

// ActiveAtArrival must equal the count of influence windows (own
// included) covering the arrival instant, recomputed independently from
// the schedule itself.
func TestScheduleActiveAccounting(t *testing.T) {
	p := testParams(11)
	arr := Schedule(p, testVictims(6))
	if len(arr) == 0 {
		t.Fatal("schedule empty")
	}
	peak := 0
	for i, a := range arr {
		want := 1
		for j := 0; j < i; j++ {
			if arr[j].HealAt+linger(p) > a.At {
				want++
			}
		}
		if a.ActiveAtArrival != want {
			t.Errorf("arrival %d: active=%d, recount=%d", i, a.ActiveAtArrival, want)
		}
		if a.ActiveAtArrival > peak {
			peak = a.ActiveAtArrival
		}
	}
	if peak <= p.F {
		t.Fatalf("peak active %d never exceeded f=%d — λ=8 schedule exercises no over-budget regime", peak, p.F)
	}
}

func TestInstallRejectsUnknownBehavior(t *testing.T) {
	err := Install(nil, []Arrival{{Behavior: "meltdown"}})
	if err == nil {
		t.Fatal("unknown behavior accepted")
	}
}

// syntheticReport builds a report with one sink whose output is bad over
// the given false intervals.
func syntheticReport(period, horizon, r sim.Time, bad []metrics.Interval, degraded []metrics.Interval) *core.Report {
	tl := metrics.NewTimeline(0, true)
	for _, iv := range bad {
		tl.Set(iv.Start, false)
		tl.Set(iv.End, true)
	}
	return &core.Report{
		Horizon: horizon, Period: period, RNeeded: r,
		PerSink:  map[flow.TaskID]*metrics.Timeline{"sink": tl},
		Degraded: degraded,
	}
}

func TestClassifyThreeWays(t *testing.T) {
	const p = 25 * sim.Millisecond
	// One within-budget arrival at 100ms (tolerated spans [100, 150+25]ms
	// with R=50ms), one over-budget degraded window [400, 500]ms
	// (lead=grace=25ms), and bad output in three separate spans: one per
	// class.
	arrivals := []Arrival{
		{At: 100 * sim.Millisecond, ActiveAtArrival: 1},
		{At: 400 * sim.Millisecond, ActiveAtArrival: 2},
	}
	bad := []metrics.Interval{
		{Start: 100 * sim.Millisecond, End: 150 * sim.Millisecond}, // tolerated (2 periods)
		{Start: 425 * sim.Millisecond, End: 475 * sim.Millisecond}, // detected (2 periods)
		{Start: 800 * sim.Millisecond, End: 825 * sim.Millisecond}, // untolerated (1 period)
	}
	degraded := []metrics.Interval{{Start: 400 * sim.Millisecond, End: 500 * sim.Millisecond}}
	rep := syntheticReport(p, 1000*sim.Millisecond, 50*sim.Millisecond, bad, degraded)
	out := Classify(rep, arrivals, 1, p, p)
	if out.Tolerated != 2 || out.Detected != 2 || out.Untolerated != 1 {
		t.Fatalf("tolerated=%d detected=%d untolerated=%d, want 2/2/1", out.Tolerated, out.Detected, out.Untolerated)
	}
	if out.Periods != 40 {
		t.Fatalf("periods=%d, want 40", out.Periods)
	}
	if out.OK != 40-5 {
		t.Fatalf("ok=%d, want 35", out.OK)
	}
	if out.WorstWindow != 100*sim.Millisecond || len(out.Windows) != 1 {
		t.Fatalf("windows=%v worst=%v", out.Windows, out.WorstWindow)
	}
}

// Tolerated wins over detected: a bad period covered by both a
// within-budget arrival's recovery span and a degraded window counts
// against the classic guarantee, not the degradation ledger.
func TestClassifyToleratedPrecedence(t *testing.T) {
	const p = 25 * sim.Millisecond
	arrivals := []Arrival{{At: 400 * sim.Millisecond, ActiveAtArrival: 1}}
	bad := []metrics.Interval{{Start: 425 * sim.Millisecond, End: 450 * sim.Millisecond}}
	degraded := []metrics.Interval{{Start: 400 * sim.Millisecond, End: 500 * sim.Millisecond}}
	rep := syntheticReport(p, 1000*sim.Millisecond, 50*sim.Millisecond, bad, degraded)
	out := Classify(rep, arrivals, 1, p, p)
	if out.Tolerated != 1 || out.Detected != 0 {
		t.Fatalf("tolerated=%d detected=%d, want 1/0", out.Tolerated, out.Detected)
	}
}

// An over-budget arrival's damage is not excused by the tolerated span
// of the classic guarantee — without a degraded window it is a silent
// miss.
func TestClassifyOverBudgetWithoutWindowIsUntolerated(t *testing.T) {
	const p = 25 * sim.Millisecond
	arrivals := []Arrival{{At: 400 * sim.Millisecond, ActiveAtArrival: 2}}
	bad := []metrics.Interval{{Start: 425 * sim.Millisecond, End: 450 * sim.Millisecond}}
	rep := syntheticReport(p, 1000*sim.Millisecond, 50*sim.Millisecond, bad, nil)
	out := Classify(rep, arrivals, 1, p, p)
	if out.Untolerated != 1 || out.Tolerated != 0 || out.Detected != 0 {
		t.Fatalf("tolerated=%d detected=%d untolerated=%d, want 0/0/1", out.Tolerated, out.Detected, out.Untolerated)
	}
}

// TestScheduleExtendedCatalog pins the C10 draw rules: with Behaviors =
// ExtendedCatalog() every arrival uses an extended behavior, sink-bound
// behaviors target hosted sinks only, delay episodes carry the hold, and
// skip-actuation never consumes fault budget (it cannot convict).
func TestScheduleExtendedCatalog(t *testing.T) {
	p := testParams(9)
	p.Behaviors = ExtendedCatalog()
	victims := testVictims(6)
	for i := range victims {
		victims[i].Sinks = []flow.TaskID{"t1"}
	}
	arr := Schedule(p, victims)
	if len(arr) == 0 {
		t.Fatal("schedule empty")
	}
	ext := map[string]bool{}
	for _, b := range ExtendedCatalog() {
		ext[b] = true
	}
	seen := map[string]bool{}
	for i, a := range arr {
		if !ext[a.Behavior] {
			t.Errorf("arrival %d: behavior %q not in the extended catalog", i, a.Behavior)
		}
		seen[a.Behavior] = true
		if sinkBound(a.Behavior) && a.Logical != "t1" {
			t.Errorf("arrival %d: sink-bound %s targets non-sink %q", i, a.Behavior, a.Logical)
		}
		if (a.Behavior == "delay") != (a.Hold > 0) {
			t.Errorf("arrival %d: %s carries hold %v", i, a.Behavior, a.Hold)
		}
		if a.Behavior == "skip-actuation" {
			// The episode itself must not enter the budget count.
			want := 0
			for j := 0; j < i; j++ {
				if Convicts(arr[j].Behavior) && arr[j].HealAt+linger(p) > a.At {
					want++
				}
			}
			if a.ActiveAtArrival != want {
				t.Errorf("arrival %d: skip-actuation active=%d, convicting recount=%d", i, a.ActiveAtArrival, want)
			}
		}
	}
	for _, b := range ExtendedCatalog() {
		if !seen[b] {
			t.Errorf("λ=8 schedule never drew %q — test exercises too little", b)
		}
	}
}

// A sink-bound draw against a victim pool with no hosted sinks must be
// dropped, not panic or target a non-sink.
func TestScheduleSinklessVictimsDropSinkBoundDraws(t *testing.T) {
	p := testParams(9)
	p.Behaviors = []string{"corrupt-sink", "skip-actuation"}
	arr := Schedule(p, testVictims(4)) // no Sinks set
	if len(arr) != 0 {
		t.Fatalf("sink-bound draws against sinkless victims survived: %+v", arr)
	}
}

// TestClassifyWindowAtPeriodBoundary pins the open/close arithmetic with
// zero lead and grace: a degraded window covers bad periods from exactly
// its open instant through exactly its close instant (inclusive — the
// close stamps the reconcile verdict, so the period starting then is
// still flagged), and nothing either side.
func TestClassifyWindowAtPeriodBoundary(t *testing.T) {
	const p = 25 * sim.Millisecond
	degraded := []metrics.Interval{{Start: 400 * sim.Millisecond, End: 450 * sim.Millisecond}}
	bad := []metrics.Interval{
		{Start: 375 * sim.Millisecond, End: 400 * sim.Millisecond}, // period before open
		{Start: 400 * sim.Millisecond, End: 425 * sim.Millisecond}, // period at open
		{Start: 450 * sim.Millisecond, End: 475 * sim.Millisecond}, // period at close
		{Start: 475 * sim.Millisecond, End: 500 * sim.Millisecond}, // period after close
	}
	rep := syntheticReport(p, 1000*sim.Millisecond, 50*sim.Millisecond, bad, degraded)
	out := Classify(rep, nil, 1, 0, 0)
	if out.Detected != 2 || out.Untolerated != 2 || out.Tolerated != 0 {
		t.Fatalf("tolerated=%d detected=%d untolerated=%d, want 0/2/2",
			out.Tolerated, out.Detected, out.Untolerated)
	}
	// The lead/grace extension moves both boundaries by exactly one period.
	out = Classify(rep, nil, 1, p, p)
	if out.Detected != 4 || out.Untolerated != 0 {
		t.Fatalf("lead=grace=period: detected=%d untolerated=%d, want 4/0", out.Detected, out.Untolerated)
	}
}

// TestClassifyZeroDwellArrival: an episode healed the instant it arrived
// still opens the full tolerated span [At, At+R+P] — and the span's end
// is inclusive, closing exactly one period later than R.
func TestClassifyZeroDwellArrival(t *testing.T) {
	const p = 25 * sim.Millisecond
	arrivals := []Arrival{{At: 400 * sim.Millisecond, HealAt: 400 * sim.Millisecond, ActiveAtArrival: 1}}
	bad := []metrics.Interval{
		{Start: 400 * sim.Millisecond, End: 425 * sim.Millisecond}, // at the arrival instant
		{Start: 475 * sim.Millisecond, End: 500 * sim.Millisecond}, // at At+R+P exactly
		{Start: 500 * sim.Millisecond, End: 525 * sim.Millisecond}, // one period past the span
	}
	rep := syntheticReport(p, 1000*sim.Millisecond, 50*sim.Millisecond, bad, nil)
	out := Classify(rep, arrivals, 1, 0, 0)
	if out.Tolerated != 2 || out.Untolerated != 1 {
		t.Fatalf("tolerated=%d untolerated=%d, want 2/1", out.Tolerated, out.Untolerated)
	}
}

// TestClassifyOverlappingDegradedWindows: overlapping windows (two
// reporters degraded at once) merge for coverage — a bad period in the
// overlap counts once — while Windows and WorstWindow keep the raw
// per-window spans.
func TestClassifyOverlappingDegradedWindows(t *testing.T) {
	const p = 25 * sim.Millisecond
	degraded := []metrics.Interval{
		{Start: 400 * sim.Millisecond, End: 500 * sim.Millisecond},
		{Start: 450 * sim.Millisecond, End: 600 * sim.Millisecond},
	}
	bad := []metrics.Interval{
		{Start: 450 * sim.Millisecond, End: 500 * sim.Millisecond}, // inside the overlap
		{Start: 575 * sim.Millisecond, End: 600 * sim.Millisecond}, // inside the second window only
	}
	rep := syntheticReport(p, 1000*sim.Millisecond, 50*sim.Millisecond, bad, degraded)
	out := Classify(rep, nil, 1, 0, 0)
	if out.Detected != 3 || out.Untolerated != 0 {
		t.Fatalf("detected=%d untolerated=%d, want 3/0", out.Detected, out.Untolerated)
	}
	if len(out.Windows) != 2 {
		t.Fatalf("windows=%v, want the 2 raw spans", out.Windows)
	}
	if out.WorstWindow != 150*sim.Millisecond {
		t.Fatalf("worst=%v, want 150ms (the longer raw window, not the merged span)", out.WorstWindow)
	}
}

func TestCovered(t *testing.T) {
	ivs := []metrics.Interval{{Start: 10, End: 20}, {Start: 40, End: 50}}
	for _, c := range []struct {
		t    sim.Time
		want bool
	}{{5, false}, {10, true}, {20, true}, {25, false}, {45, true}, {55, false}} {
		if got := covered(ivs, c.t); got != c.want {
			t.Errorf("covered(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}
