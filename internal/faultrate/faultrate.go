// Package faultrate drives the high-fault-rate regime: instead of a
// fixed set of at most f compromised nodes, faults *arrive* continuously
// at rate λ (Pippenger's framing for cellular automata at high fault
// rates) and heal again, so the instantaneous active-fault count wanders
// above and below the plan capacity f.
//
// The package has three parts. Schedule draws a deterministic
// Poisson-style arrival process (seeded; exponential inter-arrivals)
// over a victim pool, pairing every fault with its heal instant.
// Install replays such a schedule against a simulated deployment
// (core.System built with Config.ForgiveAfter, so convictions expire
// and the fault set can shrink again). Classify then judges every bad
// sink-period of the run's report:
//
//   - tolerated — within the recovery bound of a fault that arrived
//     while the system was within budget (≤ f active episodes): the
//     classic BTR guarantee held.
//   - detected — inside a window in which some node had flooded a
//     signed over-budget verdict (Report.Degraded): the guarantee was
//     suspended but *flagged*; Building on Quicksand's
//     detect-and-apologize, never a silent wrong answer.
//   - untolerated — neither: a silent miss. The C8 campaign gates this
//     class at zero.
package faultrate

import (
	"fmt"
	"math"

	"btr/internal/adversary"
	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/sim"
)

// Catalog lists the behavior names the arrival process draws from — the
// convictable C1 catalog: crash heals by restart, the Byzantine
// behaviors heal by clearing the behavior hook. cmd/btrfaultmodel uses
// this list (plus the live process faults) as the required rows of the
// FAULT_MODEL.md matrix.
func Catalog() []string {
	return []string{"crash", "corrupt-all", "corrupt-task", "omit", "equivocate", "timestamp-lie"}
}

// ExtendedCatalog lists the non-catalog behaviors the C10 multifault
// sweep draws: corrupt-sink and skip-actuation are judged at the plant
// (they target a hosted sink replica), delay at the transport boundary
// (outputs are held back, not falsified). They are kept out of Catalog
// so the C8 schedule stays byte-identical.
func ExtendedCatalog() []string {
	return []string{"corrupt-sink", "delay", "skip-actuation"}
}

// Convicts reports whether a behavior produces evidence that convicts
// its victim. skip-actuation does not: the skipped actuation is masked
// by sink replication (a peer replica of the same sink still actuates),
// so no watchdog fires and no conviction is ever flooded. A
// non-convicting episode saturates its victim but consumes no fault
// budget — counting it toward ActiveAtArrival would claim the plan was
// over capacity while no degraded window could ever open.
func Convicts(behavior string) bool { return behavior != "skip-actuation" }

// sinkBound reports whether a behavior must target a hosted sink
// replica (the plant-judged behaviors of ExtendedCatalog).
func sinkBound(behavior string) bool {
	return behavior == "corrupt-sink" || behavior == "skip-actuation"
}

// Params configures one arrival schedule.
type Params struct {
	Lambda  float64  // mean fault arrivals per second
	Heal    sim.Time // how long an injected fault stays active
	Forgive sim.Time // the deployment's Config.ForgiveAfter (parole clock)
	Period  sim.Time // the workload period
	Start   sim.Time // earliest arrival instant (let the system boot first)
	Horizon sim.Time // absolute end of the run
	F       int      // the plan capacity (for ActiveAtArrival accounting)
	Seed    uint64

	// Behaviors is the list the arrival process draws from; empty means
	// Catalog() (the C8 default, byte-identical to the pre-C10 schedule).
	Behaviors []string
	// Hold is how long a "delay" episode holds each output back; zero
	// defaults to 4 periods — far past the deadline, so held outputs are
	// late at the transport boundary, not merely jittered.
	Hold sim.Time
}

// Victim is a node eligible for compromise plus the logical tasks it
// hosts in the base plan. Restricting behaviors to hosted tasks keeps
// every episode a real perturbation of the dataflow — a fault against a
// task the node does not run would inflate the concurrency accounting
// without ever touching an output.
type Victim struct {
	Node     network.NodeID
	Logicals []flow.TaskID
	// Sinks are the hosted logicals that are workload sinks — the pool
	// for the plant-judged behaviors (corrupt-sink, skip-actuation). A
	// sink-bound draw against a victim with no hosted sinks is dropped.
	Sinks []flow.TaskID
}

// Arrival is one scheduled fault episode.
type Arrival struct {
	At       sim.Time
	HealAt   sim.Time
	Node     network.NodeID
	Logical  flow.TaskID
	Behavior string
	// Hold is the per-output delay of a "delay" episode (zero for every
	// other behavior).
	Hold sim.Time
	// ActiveAtArrival counts the budget-consuming episodes — this one
	// included, if it convicts — whose influence window covers At. An
	// episode's influence outlives its heal: the conviction lingers in
	// every fault set until the cluster-wide parole, Forgive (+ boundary
	// rounding) past detection, so the window is
	// [At, HealAt + Forgive + 2 periods). Non-convicting episodes
	// (see Convicts) saturate their victim but never enter the count.
	// Arrivals with ActiveAtArrival ≤ f are the ones the classic
	// guarantee must tolerate.
	ActiveAtArrival int
}

// linger bounds how long an episode's conviction can outlive its heal.
func linger(p Params) sim.Time { return p.Forgive + 2*p.Period }

// Schedule draws the deterministic arrival process: exponential
// inter-arrival times at rate Lambda, victims drawn uniformly from the
// currently healthy pool (a node with an open episode cannot be
// compromised again until its conviction has expired — re-infecting a
// node that is already convicted would change nothing), behaviors drawn
// uniformly from p.Behaviors (default Catalog), target tasks drawn
// uniformly from the victim's hosted tasks — or hosted sinks, for the
// plant-judged behaviors. Arrivals that find every victim saturated are
// dropped, as are sink-bound draws against sinkless victims.
func Schedule(p Params, victims []Victim) []Arrival {
	if p.Lambda <= 0 || len(victims) == 0 {
		return nil
	}
	rng := sim.NewRNG(p.Seed)
	cat := p.Behaviors
	if len(cat) == 0 {
		cat = Catalog()
	}
	hold := p.Hold
	if hold == 0 {
		hold = 4 * p.Period
	}
	end := make(map[network.NodeID]sim.Time, len(victims)) // influence end per victim
	// convictEnd tracks only the budget-consuming (convicting) episodes:
	// for the default catalog it mirrors end exactly, so the C8 schedule
	// is byte-identical to the pre-C10 accounting.
	convictEnd := make(map[network.NodeID]sim.Time, len(victims))
	var out []Arrival
	t := p.Start
	for {
		t += expInterval(rng, p.Lambda)
		if t >= p.Horizon {
			return out
		}
		var elig []Victim
		for _, v := range victims {
			if end[v.Node] <= t {
				elig = append(elig, v)
			}
		}
		if len(elig) == 0 {
			continue
		}
		v := elig[rng.Intn(len(elig))]
		b := cat[rng.Intn(len(cat))]
		pool := v.Logicals
		if sinkBound(b) {
			pool = v.Sinks
		}
		if len(pool) == 0 {
			continue // sink-bound draw against a sinkless victim: dropped
		}
		l := pool[rng.Intn(len(pool))]
		active := 0
		if Convicts(b) {
			active = 1
		}
		for _, e := range convictEnd {
			if e > t {
				active++
			}
		}
		heal := t + p.Heal
		end[v.Node] = heal + linger(p)
		if Convicts(b) {
			convictEnd[v.Node] = heal + linger(p)
		}
		a := Arrival{
			At: t, HealAt: heal, Node: v.Node, Logical: l,
			Behavior: b, ActiveAtArrival: active,
		}
		if b == "delay" {
			a.Hold = hold
		}
		out = append(out, a)
	}
}

// expInterval samples an exponential inter-arrival time (mean 1/lambda
// seconds) via inversion, floored at one tick.
func expInterval(rng *sim.RNG, lambda float64) sim.Time {
	u := rng.Float64() // in [0, 1)
	d := sim.Time(-math.Log(1-u) / lambda * float64(sim.Second))
	if d < 1 {
		d = 1
	}
	return d
}

// Install schedules every arrival's fault and heal against a simulated
// deployment. Faults go through the adversary catalog (recorded as
// FaultTimes via InjectAt); heals are plain kernel events — a heal is
// repair, not a fault, and must not skew recovery attribution. Crash
// episodes heal by runtime restart, behavior episodes by clearing the
// behavior hook; either way the node only rejoins the dataflow once its
// conviction expires on the parole clock.
func Install(s *core.System, arrivals []Arrival) error {
	for _, a := range arrivals {
		a := a
		var atk adversary.Attack
		switch a.Behavior {
		case "crash":
			atk = adversary.Crash(a.Node, a.At)
		case "corrupt-all":
			atk = adversary.CorruptEverything(a.Node, a.At)
		case "corrupt-task":
			atk = adversary.CorruptTask(a.Node, a.Logical, a.At)
		case "omit":
			atk = adversary.Omit(a.Node, a.Logical, a.At)
		case "equivocate":
			atk = adversary.Equivocate(a.Node, a.Logical, a.At)
		case "timestamp-lie":
			atk = adversary.LieAboutSendTime(a.Node, a.Logical, 10*sim.Millisecond, a.At)
		case "corrupt-sink":
			// Logical is drawn from the victim's hosted sinks, so this is
			// corruption judged directly at the plant.
			atk = adversary.CorruptTask(a.Node, a.Logical, a.At)
		case "delay":
			atk = adversary.Delay(a.Node, a.Logical, a.Hold, a.At)
		case "skip-actuation":
			atk = adversary.SkipActuation(a.Node, a.At)
		default:
			return fmt.Errorf("faultrate: unknown behavior %q", a.Behavior)
		}
		atk.Install(s)
		if a.Behavior == "crash" {
			s.Kernel.At(a.HealAt, func() { s.Runtime.Restart(a.Node) })
		} else {
			s.Kernel.At(a.HealAt, func() { s.Runtime.SetBehavior(a.Node, nil) })
		}
	}
	return nil
}

// Outcome is the per-run classification of every judged sink-period.
type Outcome struct {
	Periods     int // judged (sink, period) pairs
	OK          int // correct and on time
	Tolerated   int // bad, within the bound of a within-budget fault
	Detected    int // bad, inside a flagged over-budget window
	Untolerated int // bad, silent — the class the C8 gate holds at zero

	// Windows are the run's degraded (over-budget) spans; WorstWindow is
	// the longest one — the reconciliation bound the knee criterion
	// checks.
	Windows     []metrics.Interval
	WorstWindow sim.Time
}

// Classify judges every bad sink-period of the report. A bad deadline is
// tolerated when it falls within [At, At+R+P] of a within-budget arrival
// (R the run's provable bound, one period of deadline quantization);
// otherwise detected when it falls inside a degraded window extended by
// lead before its open and grace after its close — detection latency is
// bounded, not zero: the second fault does damage before the conviction
// that pushes the fault set over budget, and the tail of the damage
// drains after reconciliation; otherwise untolerated. Tolerated wins
// over detected so degradation windows never absorb periods the classic
// guarantee already covers.
func Classify(rep *core.Report, arrivals []Arrival, f int, lead, grace sim.Time) Outcome {
	r := rep.MaxEpochR()
	var tolerated []metrics.Interval
	for _, a := range arrivals {
		if a.ActiveAtArrival <= f {
			tolerated = append(tolerated, metrics.Interval{Start: a.At, End: a.At + r + rep.Period})
		}
	}
	tolerated = core.MergeIntervals(tolerated)
	var detected []metrics.Interval
	for _, w := range rep.Degraded {
		detected = append(detected, metrics.Interval{Start: w.Start - lead, End: w.End + grace})
	}
	detected = core.MergeIntervals(detected)

	out := Outcome{
		Periods: len(rep.PerSink) * int(rep.Horizon/rep.Period),
		Windows: append([]metrics.Interval(nil), rep.Degraded...),
	}
	for _, w := range rep.Degraded {
		if d := w.Duration(); d > out.WorstWindow {
			out.WorstWindow = d
		}
	}
	for _, tl := range rep.PerSink {
		for _, iv := range tl.FalseIntervals(rep.Horizon) {
			for t := iv.Start; t < iv.End; t += rep.Period {
				switch {
				case covered(tolerated, t):
					out.Tolerated++
				case covered(detected, t):
					out.Detected++
				default:
					out.Untolerated++
				}
			}
		}
	}
	out.OK = out.Periods - out.Tolerated - out.Detected - out.Untolerated
	return out
}

// covered reports whether t lies in one of the sorted merged intervals.
func covered(ivs []metrics.Interval, t sim.Time) bool {
	for _, iv := range ivs {
		if t < iv.Start {
			return false
		}
		if t <= iv.End {
			return true
		}
	}
	return false
}
