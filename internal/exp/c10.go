package exp

// C10: the multifault regime — the two fault-model frontiers C8 and C7
// left open, in one family. The sweep half drives the C8 arrival
// process, but drawing the *non-catalog* behaviors (corrupt-sink and
// skip-actuation judged at the plant, delay at the transport boundary)
// with the same λ grid, knee locator, and tolerated/detected/untolerated
// classification — simulated time, byte-deterministic across workers
// like C8. The storm half drives live.RunOrchestrator with a fault
// *schedule*: ≥ 2 concurrent process-level faults with independent heal
// times against a parole-clock multi-process deployment, where the
// classic guarantee is suspended and the verdict is detect-and-apologize
// — some node must flood a signed over-budget verdict, every bad
// interval must be fault-attributable (confined), and every repaired
// victim's links must re-establish. Storm trials are wall-clock, so the
// family joins "live"/"liveproc"/"saturation" outside the campaign
// determinism pin; the sweep half has its own cross-worker byte-identity
// test.

import (
	"fmt"
	"strings"

	"btr/internal/campaign"
	"btr/internal/core"
	"btr/internal/faultrate"
	"btr/internal/flow"
	"btr/internal/live"
	"btr/internal/metrics"
	"btr/internal/plan"
	"btr/internal/sim"
)

// c10Victims extends c8Victims with each victim's hosted sink logicals:
// the sink-bound behaviors (corrupt-sink, skip-actuation) draw their
// target from Victim.Sinks.
func c10Victims(s *core.System, workload *flow.Graph) []faultrate.Victim {
	isSink := map[flow.TaskID]bool{}
	for _, sk := range workload.Sinks() {
		isSink[sk] = true
	}
	victims := c8Victims(s)
	for i := range victims {
		for _, l := range victims[i].Logicals {
			if isSink[l] {
				victims[i].Sinks = append(victims[i].Sinks, l)
			}
		}
	}
	return victims
}

// runC10Sweep executes one (topology, λ) deployment exactly like
// runC8Case, but with the arrival process drawing the extended
// (non-catalog) behaviors.
func runC10Sweep(c c8Case, lambda float64, seed uint64, quick bool) (C8Row, error) {
	const period = 25 * sim.Millisecond
	horizon := uint64(160)
	if quick {
		horizon = 80
	}
	heal, forgive, bound := c8Timing(period)
	workload := flow.Chain(3, period, sim.Millisecond, 64, flow.CritA)
	s, err := core.NewSystem(core.Config{
		Seed:         seed,
		Workload:     workload,
		Topology:     c.mk(),
		PlanOpts:     plan.DefaultOptions(c.f, 500*sim.Millisecond),
		Horizon:      horizon,
		ForgiveAfter: forgive,
	})
	if err != nil {
		return C8Row{}, err
	}
	// Arrivals stop one reconcile bound before the horizon: the extended
	// behaviors convict on watchdog pace (a delay's damage IS lateness,
	// so conviction trails injection by up to hold + margin), and an
	// episode whose detect-and-reconcile lifecycle is cut off by the end
	// of the run would be judged on damage whose flagging never had time
	// to arrive.
	arrivals := faultrate.Schedule(faultrate.Params{
		Lambda: lambda, Heal: heal, Forgive: forgive, Period: period,
		Start: 4 * period, Horizon: sim.Time(horizon)*period - bound,
		F: c.f, Seed: seed,
		Behaviors: faultrate.ExtendedCatalog(),
	}, c10Victims(s, workload))
	if err := faultrate.Install(s, arrivals); err != nil {
		return C8Row{}, err
	}
	rep := s.Run()
	slack := rep.RNeeded + period
	out := faultrate.Classify(rep, arrivals, c.f, slack, slack)
	row := C8Row{
		Topology: c.kind, Lambda: lambda, Arrivals: len(arrivals),
		Periods: out.Periods, Tolerated: out.Tolerated,
		Detected: out.Detected, Untolerated: out.Untolerated,
		Windows: len(out.Windows), WorstWindow: out.WorstWindow,
		Bound: bound, Reconciled: out.WorstWindow <= bound,
	}
	for _, a := range arrivals {
		if a.ActiveAtArrival > row.PeakActive {
			row.PeakActive = a.ActiveAtArrival
		}
	}
	return row, nil
}

// c10Storm is one scripted concurrent process-fault storm.
type c10Storm struct {
	name   string
	topo   string
	nodes  int
	f      int
	faults []live.FaultSpec
}

// c10Storms lists the scripted storms: two concurrent process-level
// faults each — more than f — with independent injection and heal
// clocks overlapping mid-run.
func c10Storms(p campaign.Params) []c10Storm {
	storms := []c10Storm{
		{"kill-restart+partition", "full-mesh", 4, 1, []live.FaultSpec{
			{Kind: "kill-restart", Node: -1, FaultAt: 3, HealAfter: 3},
			{Kind: "partition", Node: -1, FaultAt: 5, HealAfter: 3},
		}},
		{"stop+kill-restart", "full-mesh", 4, 1, []live.FaultSpec{
			{Kind: "stop", Node: -1, FaultAt: 3, HealAfter: 3},
			{Kind: "kill-restart", Node: -1, FaultAt: 5, HealAfter: 3},
		}},
	}
	if p.Quick {
		storms = storms[:1]
	}
	return storms
}

// C10StormRow is one storm's verdict (exported for the perf-bundle
// emitter, which records these as the BENCH_campaign.json multifault
// storms).
type C10StormRow struct {
	Name     string
	Topology string
	Nodes    int
	F        int
	Faults   string // human-readable schedule
	// OverBudget/Reconciled total the budget verdicts the node processes
	// flooded; Flagged is OverBudget > 0 — the > f storm was never
	// silent.
	OverBudget int
	Reconciled int
	Flagged    bool
	// Confined: every bad interval of the plant report lies inside the
	// fault-attributable window [first fault, last repair + parole + R +
	// slack].
	Confined bool
	// ReconnectChecked/Reconnected fold the per-victim transport
	// verdicts: every repaired victim's links re-established.
	ReconnectChecked bool
	Reconnected      bool
}

// c10StormFaultsDesc renders a schedule compactly: "kind@at+heal ...".
func c10StormFaultsDesc(faults []live.FaultSpec) string {
	var parts []string
	for _, fs := range faults {
		parts = append(parts, fmt.Sprintf("%s@%d+%d", fs.Kind, fs.FaultAt, fs.HealAfter))
	}
	return strings.Join(parts, " ")
}

// runC10Storm drives one scripted storm against a real multi-process
// deployment (wall clock; the caller holds liveGate).
func runC10Storm(st c10Storm, seed uint64) (C10StormRow, error) {
	res, err := live.RunOrchestrator(live.OrchestratorConfig{
		Topo: st.topo, Nodes: st.nodes, F: st.f, Seed: seed,
		Period: c7Period, Margin: c7Margin, Horizon: 16,
		Faults:  append([]live.FaultSpec(nil), st.faults...),
		Forgive: 2 * c7Period,
	})
	if err != nil {
		return C10StormRow{}, err
	}
	row := C10StormRow{
		Name: st.name, Topology: st.topo, Nodes: st.nodes, F: st.f,
		Faults:     c10StormFaultsDesc(st.faults),
		OverBudget: res.OverBudget, Reconciled: res.Reconciled,
		Flagged:  res.OverBudget > 0,
		Confined: res.Confined,
	}
	for _, sv := range res.Storm {
		if sv.ReconnectChecked {
			row.ReconnectChecked = true
			if !sv.Reconnected {
				return row, fmt.Errorf("storm %s: %s victim %d did not re-establish", st.name, sv.Kind, sv.Node)
			}
		}
	}
	row.Reconnected = row.ReconnectChecked
	return row, nil
}

// c10SweepSpecs builds the deterministic sweep half's trial specs.
func c10SweepSpecs(p campaign.Params) []campaign.TrialSpec {
	var specs []campaign.TrialSpec
	for _, c := range c8Cases(p) {
		for _, lambda := range c8Lambdas(p) {
			c, lambda := c, lambda
			specs = append(specs, campaign.TrialSpec{
				Name: fmt.Sprintf("sweep/%s/lambda=%g", c.kind, lambda),
				Run: func(t *campaign.T) (any, error) {
					return runC10Sweep(c, lambda, t.TrialSeed(), p.Quick)
				},
			})
		}
	}
	return specs
}

// c10SweepTable aggregates the sweep trials (aligned with c10SweepSpecs)
// into the C8-shaped table plus knee notes.
func c10SweepTable(p campaign.Params, trials []campaign.TrialResult) *metrics.Table {
	t := metrics.NewTable("C10: multifault sweep (Poisson arrivals drawing corrupt-sink / delay / skip-actuation)",
		"topology", "λ/s", "arrivals", "peak active", "periods", "tolerated", "detected", "untolerated", "windows", "worst window", "bound", "reconciled")
	byTopo := map[string][]C8Row{}
	i := 0
	for _, c := range c8Cases(p) {
		for _, lambda := range c8Lambdas(p) {
			row, ok := campaign.Value[C8Row](trials[i])
			i++
			if !ok {
				t.AddRow(failedRow(c.kind), fmt.Sprintf("%g", lambda), "-", "-", "-", "-", "-", "-", "-", "-", "-", "-")
				continue
			}
			byTopo[c.kind] = append(byTopo[c.kind], row)
			t.AddRow(row.Topology, fmt.Sprintf("%g", row.Lambda), row.Arrivals, row.PeakActive,
				row.Periods, row.Tolerated, row.Detected, row.Untolerated,
				row.Windows, row.WorstWindow, row.Bound, boolMark(row.Reconciled))
		}
	}
	for _, c := range c8Cases(p) {
		t.Note("%s: knee λ = %g/s (largest swept rate with zero untolerated periods and every degraded window within the reconcile bound at and below it)",
			c.kind, C8Knee(byTopo[c.kind]))
	}
	t.Note("corrupt-sink and skip-actuation target hosted sink replicas (judged at the plant); delay holds outputs 4 periods past the transport boundary; skip-actuation is masked by sink replication and consumes no fault budget (it never convicts)")
	return t
}

// C10Scenario returns the multifault scenario: the deterministic
// non-catalog sweep plus the wall-clock concurrent storms. Exported so
// the perf-bundle emitter can run it standalone.
func C10Scenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "C10",
		Family: "multifault",
		Claim:  "the non-catalog behaviors sweep clean to a positive knee, and concurrent > f process-fault storms are flagged over-budget, confined to the fault window, and heal with every link re-established",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			specs := c10SweepSpecs(p)
			for _, st := range c10Storms(p) {
				st := st
				specs = append(specs, campaign.TrialSpec{
					Name: fmt.Sprintf("storm/%s", st.name),
					Run: func(t *campaign.T) (any, error) {
						liveGate.Lock()
						defer liveGate.Unlock()
						return runC10Storm(st, t.TrialSeed())
					},
				})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			nSweep := len(c10SweepSpecs(p))
			sweep := c10SweepTable(p, trials[:nSweep])
			if note := campaign.FailNote(trials); note != "" {
				sweep.Note("%s", note)
			}
			t := metrics.NewTable(fmt.Sprintf("C10: concurrent process-fault storms (> f faults active, period %v, parole %v)", c7Period, 2*c7Period),
				"storm", "topology", "nodes", "schedule", "over-budget", "reconciled", "flagged", "confined", "reconnect")
			storms := c10Storms(p)
			for i, st := range storms {
				row, ok := campaign.Value[C10StormRow](trials[nSweep+i])
				if !ok {
					t.AddRow(failedRow(st.name), st.topo, st.nodes, c10StormFaultsDesc(st.faults), "-", "-", "-", "-", "-")
					continue
				}
				reconnect := "n/a"
				if row.ReconnectChecked {
					reconnect = boolMark(row.Reconnected)
				}
				t.AddRow(row.Name, row.Topology, row.Nodes, row.Faults,
					row.OverBudget, row.Reconciled, boolMark(row.Flagged), boolMark(row.Confined), reconnect)
			}
			t.Note("wall-clock multi-process runs — budget-verdict counts vary run to run; the invariants are the 'flagged', 'confined', and 'reconnect' columns")
			return []*metrics.Table{sweep, t}
		},
	}
}

// c10SweepOnlyScenario is the sweep half alone — the byte-determinism
// test renders it at different worker counts (the storms are wall-clock
// and exempt, like every live family).
func c10SweepOnlyScenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "C10-sweep",
		Family: "multifault",
		Claim:  "non-catalog behavior sweep, deterministic half only",
		Trials: func(p campaign.Params) []campaign.TrialSpec { return c10SweepSpecs(p) },
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			return []*metrics.Table{c10SweepTable(p, trials)}
		},
	}
}

// MultiFaultKinds lists the C10 sweep topology families (the full,
// non-quick set), for standalone benchmarking.
func MultiFaultKinds() []string { return FaultRateKinds() }

// MultiFaultLambdas lists the full swept λ grid, ascending.
func MultiFaultLambdas() []float64 { return FaultRateLambdas() }

// RunMultiFaultBench runs one (topology, λ) C10 sweep case standalone
// (the perf-bundle emitter's entry point).
func RunMultiFaultBench(kind string, lambda float64, seed uint64) (C8Row, error) {
	for _, c := range c8Cases(campaign.Params{}) {
		if c.kind == kind {
			return runC10Sweep(c, lambda, seed, false)
		}
	}
	return C8Row{}, fmt.Errorf("exp: unknown multifault topology %q", kind)
}

// MultiFaultStorms lists the scripted storm names (full set).
func MultiFaultStorms() []string {
	var out []string
	for _, st := range c10Storms(campaign.Params{}) {
		out = append(out, st.name)
	}
	return out
}

// RunMultiFaultStormBench runs one scripted storm standalone. The caller
// must serialize wall-clock runs (the campaign path holds liveGate; a
// bench harness is naturally serial).
func RunMultiFaultStormBench(name string, seed uint64) (C10StormRow, error) {
	for _, st := range c10Storms(campaign.Params{}) {
		if st.name == name {
			return runC10Storm(st, seed)
		}
	}
	return C10StormRow{}, fmt.Errorf("exp: unknown multifault storm %q", name)
}
