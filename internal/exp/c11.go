package exp

// C11: the client-SLO regime — the serving surface judged from the
// outside. C7 and C10 judge the deployment at the plant (actuations
// within R); C11 attaches what the paper's five-second rule is actually
// *for*: clients. A load generator drives concurrent sessions of
// epoch-aware quorum reads and writes (internal/client) against an
// orchestrated multi-process deployment while a ≤ f process fault lands
// mid-run, and the verdict is client-visible — zero errors (retries
// must absorb the fault) and a longest success gap within the recovery
// bound R plus one detection period and the watchdog margin. Trials are
// wall-clock multi-process runs, so the family joins
// "live"/"liveproc"/"saturation"/"multifault" outside the campaign
// determinism pin.

import (
	"fmt"
	"time"

	"btr/internal/campaign"
	"btr/internal/live"
	"btr/internal/metrics"
)

// c11Clients is the session count per run: enough concurrency that a
// stalled replica shows up in the tail, small enough that a CI host's
// scheduler noise stays out of the verdict columns.
const c11Clients = 8

// c11Case is one (fault, deployment) client-SLO measurement.
type c11Case struct {
	name  string
	topo  string
	nodes int
	f     int
	fault string // "none" = steady state
}

func c11Cases(p campaign.Params) []c11Case {
	cases := []c11Case{
		{"steady", "full-mesh", 4, 1, "none"},
		{"kill-restart", "full-mesh", 4, 1, "kill-restart"},
		{"partition", "full-mesh", 4, 1, "partition"},
	}
	if p.Quick {
		cases = cases[:2]
	}
	return cases
}

// C11Row is one run's client-visible measurement (exported for the
// perf-bundle emitter, which records these as the BENCH_campaign.json
// clientslo section).
type C11Row struct {
	Name     string
	Topology string
	Nodes    int
	F        int
	Fault    string
	Sessions int

	Ops          uint64
	Errors       uint64
	Retries      uint64
	StaleRetries uint64

	P50, P99, P999 time.Duration
	MaxUnavail     time.Duration
	// Bound is the client-visible unavailability budget: the plant bound R
	// plus one detection period and the watchdog margin (clients observe a
	// fault one op-latency after the plant does).
	Bound time.Duration
	// Within: MaxUnavail <= Bound — the SLO verdict for fault runs. Steady
	// runs are additionally judged error-free at p99 (Errors == 0).
	Within bool
}

// runC11Case drives one orchestrated deployment with client load (wall
// clock; the caller holds liveGate).
func runC11Case(c c11Case, seed uint64) (C11Row, error) {
	res, err := live.RunOrchestrator(live.OrchestratorConfig{
		Topo: c.topo, Nodes: c.nodes, F: c.f, Seed: seed,
		Period: c7Period, Margin: c7Margin, Horizon: 10,
		Fault: c.fault, FaultAt: 3, HealAfter: 3,
		Clients: c11Clients,
	})
	if err != nil {
		return C11Row{}, err
	}
	if res.SLO == nil {
		return C11Row{}, fmt.Errorf("exp: %s run returned no client SLO report", c.name)
	}
	bound := time.Duration(res.Report.RNeeded+2*c7Period+c7Margin) * time.Microsecond
	slo := res.SLO
	return C11Row{
		Name: c.name, Topology: c.topo, Nodes: c.nodes, F: c.f, Fault: c.fault,
		Sessions: slo.Sessions,
		Ops:      slo.Ops, Errors: slo.Errors,
		Retries: slo.Retries, StaleRetries: slo.StaleRetries,
		P50: slo.P50, P99: slo.P99, P999: slo.P999,
		MaxUnavail: slo.MaxUnavail, Bound: bound,
		Within: slo.MaxUnavail <= bound && slo.Errors == 0,
	}, nil
}

// C11Scenario returns the client-SLO soak. Exported (like C7Scenario)
// so the perf-bundle emitter can run it standalone.
func C11Scenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "C11",
		Family: "clientslo",
		Claim:  "quorum clients ride through a <= f process fault with zero client-visible errors and unavailability bounded by R plus detection slack",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for _, c := range c11Cases(p) {
				c := c
				specs = append(specs, campaign.TrialSpec{
					Name: fmt.Sprintf("clientslo/%s/n=%d/%s", c.topo, c.nodes, c.name),
					Run: func(t *campaign.T) (any, error) {
						liveGate.Lock()
						defer liveGate.Unlock()
						return runC11Case(c, t.TrialSeed())
					},
				})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable(fmt.Sprintf("C11: client-visible SLO through process faults (%d sessions, period %v)", c11Clients, c7Period),
				"case", "topology", "fault", "ops", "errors", "p50", "p99", "p999", "max unavail", "bound", "within")
			for i, c := range c11Cases(p) {
				row, ok := campaign.Value[C11Row](trials[i])
				if !ok {
					t.AddRow(failedRow(c.name), c.topo, c.fault, "-", "-", "-", "-", "-", "-", "-", "-")
					continue
				}
				t.AddRow(row.Name, row.Topology, row.Fault, row.Ops, row.Errors,
					row.P50, row.P99, row.P999, row.MaxUnavail.Round(time.Millisecond),
					row.Bound.Round(time.Millisecond), boolMark(row.Within))
			}
			if note := campaign.FailNote(trials); note != "" {
				t.Note("%s", note)
			}
			t.Note("wall-clock measurements through real sockets — latencies vary run to run; the invariants are 'errors' == 0 and the 'within' column (max unavail <= R + 2·period + margin)")
			return []*metrics.Table{t}
		},
	}
}

// ClientSLOCases lists the C11 case names (full, non-quick set), for
// standalone benchmarking.
func ClientSLOCases() []string {
	var out []string
	for _, c := range c11Cases(campaign.Params{}) {
		out = append(out, c.name)
	}
	return out
}

// RunClientSLOBench runs one C11 case standalone (the perf-bundle
// emitter's entry point). The caller must serialize wall-clock runs
// (the campaign path holds liveGate; a bench harness is naturally
// serial).
func RunClientSLOBench(name string, seed uint64) (C11Row, error) {
	for _, c := range c11Cases(campaign.Params{}) {
		if c.name == name {
			return runC11Case(c, seed)
		}
	}
	return C11Row{}, fmt.Errorf("exp: unknown clientslo case %q", name)
}
