package exp

// C8: the high-fault-rate regime. Every other family keeps at most f
// faults concurrently active; C8 drives a continuous Poisson-style
// arrival process (internal/faultrate) at rate λ against deployments
// whose convictions expire on a parole clock (core.Config.ForgiveAfter),
// so the active-fault count wanders above and below f. The claim under
// test is Building on Quicksand's detect-and-apologize stance: beyond
// the budget the system may degrade but must *flag* it (signed
// over-budget verdicts on the evidence share, closed by reconciled
// verdicts) and reconcile within a bounded window once back at ≤ f —
// silent misses (untolerated periods) must be zero at and below the
// graceful-degradation knee. Simulated time only, so C8 tables are
// byte-deterministic and ride the same cross-worker byte-identity pin as
// C1–C4/C6.

import (
	"fmt"

	"btr/internal/campaign"
	"btr/internal/core"
	"btr/internal/faultrate"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// c8Case is one swept deployment family.
type c8Case struct {
	kind string
	f    int
	mk   func() *network.Topology
}

func c8Cases(p campaign.Params) []c8Case {
	const bw, prop = 20_000_000, 50 * sim.Microsecond
	cases := []c8Case{
		{"full-mesh", 1, func() *network.Topology { return network.FullMesh(6, bw, prop) }},
		{"ring", 1, func() *network.Topology { return network.Ring(7, bw, prop) }},
		{"grid-3x3", 1, func() *network.Topology { return network.Grid(3, 3, bw, prop) }},
	}
	if p.Quick {
		cases = cases[:1]
	}
	return cases
}

// c8Lambdas is the swept arrival-rate grid (per second), ascending — the
// knee search walks it in order.
func c8Lambdas(p campaign.Params) []float64 {
	if p.Quick {
		return []float64{1, 8}
	}
	return []float64{0.5, 1, 2, 4, 8}
}

// C8Row is one (topology, λ) trial's classification (exported for the
// perf-bundle emitter, which records these as the BENCH_campaign.json
// faultrate section).
type C8Row struct {
	Topology    string
	Lambda      float64 // arrivals per second
	Arrivals    int     // episodes actually injected
	PeakActive  int     // max concurrently-open episodes
	Periods     int     // judged sink-periods
	Tolerated   int
	Detected    int
	Untolerated int
	Windows     int      // degraded (over-budget) windows
	WorstWindow sim.Time // longest degraded window
	Bound       sim.Time // the reconcile-window bound
	Reconciled  bool     // WorstWindow <= Bound
}

// c8Timing derives the per-run timing constants from the workload
// period: faults stay active for 8 periods, convictions expire 8 periods
// after detection, and a degraded window must close within
// heal + forgive + 4 periods (one episode's full lifetime plus boundary
// rounding and the flood bound).
func c8Timing(period sim.Time) (heal, forgive, bound sim.Time) {
	heal = 8 * period
	forgive = 8 * period
	bound = heal + forgive + 4*period
	return
}

// c8Victims lists every task-hosting node of the base plan with its
// hosted logical tasks, in deterministic order.
func c8Victims(s *core.System) []faultrate.Victim {
	base := s.Strategy.Plans[""]
	byNode := map[network.NodeID][]flow.TaskID{}
	var hosts []network.NodeID
	for _, id := range base.Aug.TaskIDs() { // deterministic order
		n := base.Assign[id]
		logical, _ := plan.SplitReplica(id)
		if _, ok := byNode[n]; !ok {
			hosts = append(hosts, n)
		}
		dup := false
		for _, l := range byNode[n] {
			if l == logical {
				dup = true
			}
		}
		if !dup {
			byNode[n] = append(byNode[n], logical)
		}
	}
	out := make([]faultrate.Victim, 0, len(hosts))
	for _, h := range hosts {
		out = append(out, faultrate.Victim{Node: h, Logicals: byNode[h]})
	}
	return out
}

// runC8Case executes one (topology, λ) deployment: schedule the arrival
// process, run it against a parole-enabled deployment, classify every
// bad sink-period.
func runC8Case(c c8Case, lambda float64, seed uint64, quick bool) (C8Row, error) {
	const period = 25 * sim.Millisecond
	horizon := uint64(160)
	if quick {
		horizon = 80
	}
	heal, forgive, bound := c8Timing(period)
	s, err := core.NewSystem(core.Config{
		Seed:         seed,
		Workload:     flow.Chain(3, period, sim.Millisecond, 64, flow.CritA),
		Topology:     c.mk(),
		PlanOpts:     plan.DefaultOptions(c.f, 500*sim.Millisecond),
		Horizon:      horizon,
		ForgiveAfter: forgive,
	})
	if err != nil {
		return C8Row{}, err
	}
	arrivals := faultrate.Schedule(faultrate.Params{
		Lambda: lambda, Heal: heal, Forgive: forgive, Period: period,
		Start: 4 * period, Horizon: sim.Time(horizon) * period,
		F: c.f, Seed: seed,
	}, c8Victims(s))
	if err := faultrate.Install(s, arrivals); err != nil {
		return C8Row{}, err
	}
	rep := s.Run()
	// Detection latency is bounded, not zero: a fault does damage before
	// the conviction that pushes the fault set over budget, and the tail
	// of the damage drains after reconciliation — extend the flagged
	// windows by the provable bound (plus deadline quantization) on both
	// sides.
	slack := rep.RNeeded + period
	out := faultrate.Classify(rep, arrivals, c.f, slack, slack)
	row := C8Row{
		Topology: c.kind, Lambda: lambda, Arrivals: len(arrivals),
		Periods: out.Periods, Tolerated: out.Tolerated,
		Detected: out.Detected, Untolerated: out.Untolerated,
		Windows: len(out.Windows), WorstWindow: out.WorstWindow,
		Bound: bound, Reconciled: out.WorstWindow <= bound,
	}
	for _, a := range arrivals {
		if a.ActiveAtArrival > row.PeakActive {
			row.PeakActive = a.ActiveAtArrival
		}
	}
	return row, nil
}

// C8Knee returns the graceful-degradation knee for one topology's rows
// (ascending λ): the largest λ such that every row at or below it has
// zero untolerated periods and every degraded window reconciled within
// the bound. 0 means even the smallest swept rate broke the criterion.
func C8Knee(rows []C8Row) float64 {
	knee := 0.0
	for _, r := range rows {
		if r.Untolerated > 0 || !r.Reconciled {
			break
		}
		knee = r.Lambda
	}
	return knee
}

// C8Scenario returns the high-fault-rate scenario. Exported so the
// perf-bundle emitter can run it standalone.
func C8Scenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "C8",
		Family: "faultrate",
		Claim:  "continuous fault arrivals at rate λ never produce a silent miss at or below the knee: every bad period is tolerated (within R) or flagged over-budget and reconciled within a bounded window",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for _, c := range c8Cases(p) {
				for _, lambda := range c8Lambdas(p) {
					c, lambda := c, lambda
					specs = append(specs, campaign.TrialSpec{
						Name: fmt.Sprintf("rate/%s/lambda=%g", c.kind, lambda),
						Run: func(t *campaign.T) (any, error) {
							return runC8Case(c, lambda, t.TrialSeed(), p.Quick)
						},
					})
				}
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable("C8: high-fault-rate sweep (Poisson arrivals at rate λ, parole-clock convictions)",
				"topology", "λ/s", "arrivals", "peak active", "periods", "tolerated", "detected", "untolerated", "windows", "worst window", "bound", "reconciled")
			byTopo := map[string][]C8Row{}
			i := 0
			for _, c := range c8Cases(p) {
				for _, lambda := range c8Lambdas(p) {
					row, ok := campaign.Value[C8Row](trials[i])
					i++
					if !ok {
						t.AddRow(failedRow(c.kind), fmt.Sprintf("%g", lambda), "-", "-", "-", "-", "-", "-", "-", "-", "-", "-")
						continue
					}
					byTopo[c.kind] = append(byTopo[c.kind], row)
					t.AddRow(row.Topology, fmt.Sprintf("%g", row.Lambda), row.Arrivals, row.PeakActive,
						row.Periods, row.Tolerated, row.Detected, row.Untolerated,
						row.Windows, row.WorstWindow, row.Bound, boolMark(row.Reconciled))
				}
			}
			if note := campaign.FailNote(trials); note != "" {
				t.Note("%s", note)
			}
			for _, c := range c8Cases(p) {
				t.Note("%s: knee λ = %g/s (largest swept rate with zero untolerated periods and every degraded window within the reconcile bound at and below it)",
					c.kind, C8Knee(byTopo[c.kind]))
			}
			t.Note("'tolerated' = bad period within R of a within-budget fault; 'detected' = bad period inside a signed over-budget window (suspended but flagged, never silent); 'untolerated' = silent miss — gated at zero at and below the knee")
			return []*metrics.Table{t}
		},
	}
}

// FaultRateKinds lists the C8 topology families (the full, non-quick
// set), for standalone benchmarking.
func FaultRateKinds() []string {
	var out []string
	for _, c := range c8Cases(campaign.Params{}) {
		out = append(out, c.kind)
	}
	return out
}

// FaultRateLambdas lists the full swept λ grid, ascending.
func FaultRateLambdas() []float64 { return c8Lambdas(campaign.Params{}) }

// RunFaultRateBench runs one (topology, λ) C8 case standalone (the
// perf-bundle emitter's entry point).
func RunFaultRateBench(kind string, lambda float64, seed uint64) (C8Row, error) {
	for _, c := range c8Cases(campaign.Params{}) {
		if c.kind == kind {
			return runC8Case(c, lambda, seed, false)
		}
	}
	return C8Row{}, fmt.Errorf("exp: unknown faultrate topology %q", kind)
}
