package exp

// C6: online membership churn. Every other family runs a frozen
// membership; C6 runs join/retire/replace storms — the two-phase epoch
// switch of internal/member + internal/runtime — across five topology
// families, with fault injections landing between and across epoch
// boundaries. The claim under test is the reconfiguration analogue of
// the five-second rule: measured recovery stays within the *per-epoch*
// provable bound R at every epoch boundary, and churn alone (no fault)
// never produces a single bad output. Tables are deterministic (epoch
// lifecycle times are simulated time), so C6 is covered by the same
// byte-identity pin as the other simulated families.

import (
	"fmt"

	"btr/internal/adversary"
	"btr/internal/campaign"
	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/member"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plan/cache"
	"btr/internal/sim"
)

// c6Case is one churn deployment: a slot universe with spare slots plus
// the genesis membership. The churn script itself is uniform (see
// C6Script): join a spare, retire the convicted victim (or the first
// legally retirable member), replace another member with the second
// spare, then crash a survivor once the fault budget is free again.
type c6Case struct {
	kind    string
	f       int
	mk      func() *network.Topology
	genesis []network.NodeID
}

func c6Cases(p campaign.Params) []c6Case {
	const bw, prop = 20_000_000, 50 * sim.Microsecond
	ids := func(n int) []network.NodeID {
		out := make([]network.NodeID, n)
		for i := range out {
			out[i] = network.NodeID(i)
		}
		return out
	}
	cases := []c6Case{
		{"full-mesh", 1, func() *network.Topology { return network.FullMesh(8, bw, prop) }, ids(6)},
		{"dual-bus", 1, func() *network.Topology { return network.DualBus(9, bw, prop) }, ids(7)},
		{"ring", 1, func() *network.Topology { return network.Ring(9, bw, prop) }, ids(7)},
		{"grid-3x3", 1, func() *network.Topology { return network.Grid(3, 3, bw, prop) }, ids(7)},
		{"line", 1, func() *network.Topology { return network.Line(8, bw, prop) }, ids(6)},
	}
	if p.Quick {
		cases = []c6Case{cases[0], cases[2]}
	}
	return cases
}

// C6Row is one churn trial's measurement (exported for the perf-bundle
// emitter, which records these as the BENCH_campaign.json churn
// section).
type C6Row struct {
	Topology      string
	Slots         int
	GenesisSize   int
	Epochs        int // activated epochs (3 expected)
	Faults        int
	WorstSwitch   sim.Time // worst propose-to-activate latency
	WorstRecovery sim.Time
	WorstBound    sim.Time // worst per-epoch provable R
	Replans       uint64   // epoch-planner syntheses (private cache)
	WithinR       bool     // every recovery within its epoch-aware bound
	CleanChurn    bool     // no bad output outside fault windows
}

// c6RetireTarget picks who a retire/replace event removes: the
// preferred node (the convicted victim — churn as repair) when its
// removal keeps the membership connected, else the first member
// (ascending) whose removal does. Membership arithmetic is static: the
// script is fixed before the run, like a real maintenance plan.
func c6RetireTarget(universe *network.Topology, members []network.NodeID, preferred network.NodeID, avoid map[network.NodeID]bool) network.NodeID {
	ok := func(gone network.NodeID) bool {
		in := map[network.NodeID]bool{}
		for _, m := range members {
			if m != gone {
				in[m] = true
			}
		}
		return universe.DiameterWithin(func(n network.NodeID) bool { return in[n] }) >= 0
	}
	if !avoid[preferred] && contains(members, preferred) && ok(preferred) {
		return preferred
	}
	for _, m := range members {
		if !avoid[m] && m != preferred && ok(m) {
			return m
		}
	}
	return preferred // unreachable for the scripted cases
}

// c6SurvivesLoss reports whether the members stay mutually connected
// after losing one of them.
func c6SurvivesLoss(universe *network.Topology, members []network.NodeID, gone network.NodeID) bool {
	in := map[network.NodeID]bool{}
	for _, m := range members {
		if m != gone {
			in[m] = true
		}
	}
	return universe.DiameterWithin(func(n network.NodeID) bool { return in[n] }) >= 0
}

func contains(members []network.NodeID, x network.NodeID) bool {
	for _, m := range members {
		if m == x {
			return true
		}
	}
	return false
}

func without(members []network.NodeID, x network.NodeID) []network.NodeID {
	var out []network.NodeID
	for _, m := range members {
		if m != x {
			out = append(out, m)
		}
	}
	return out
}

// C6Scenario returns the churn scenario. Exported so the perf-bundle
// emitter can run it standalone.
func C6Scenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "C6",
		Family: "churn",
		Claim:  "join/retire/replace storms keep recovery within the per-epoch bound R across every epoch boundary",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for _, c := range c6Cases(p) {
				c := c
				specs = append(specs, campaign.TrialSpec{
					Name: fmt.Sprintf("churn/%s", c.kind),
					Run: func(t *campaign.T) (any, error) {
						return runChurnCase(c, p.Seed, nil)
					},
				})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable("C6: membership churn (join/retire/replace + faults, two-phase epoch switch)",
				"topology", "slots", "members", "epochs", "faults", "worst switch", "worst recovery", "worst bound R", "replans", "within R", "clean churn")
			for i, c := range c6Cases(p) {
				row, ok := campaign.Value[C6Row](trials[i])
				if !ok {
					t.AddRow(failedRow(c.kind), "-", "-", "-", "-", "-", "-", "-", "-", "-", "-")
					continue
				}
				t.AddRow(row.Topology, row.Slots, row.GenesisSize, row.Epochs, row.Faults,
					row.WorstSwitch, row.WorstRecovery, row.WorstBound, row.Replans,
					boolMark(row.WithinR && row.Epochs == 3), boolMark(row.CleanChurn))
			}
			if note := campaign.FailNote(trials); note != "" {
				t.Note("%s", note)
			}
			t.Note("script per topology: join a spare slot, corrupt the first-actuating sink host, retire the convicted victim (or the first legally retirable member where removing the victim would disconnect the membership), replace a member with the second spare; where the victim was retired, a survivor additionally crashes in the final epoch")
			t.Note("'within R' holds each measured recovery against the worst provable bound among the epochs its recovery window overlaps; 'clean churn' asserts no bad output outside any fault's recovery window")
			return []*metrics.Table{t}
		},
	}
}

// runChurnCase executes one churn deployment (the C6 trial body). A
// non-nil plan cache is shared into the deployment so the perf bundle
// can measure cold-vs-warm churn replans.
func runChurnCase(c c6Case, seed uint64, pc *cache.Cache) (C6Row, error) {
	const period = 25 * sim.Millisecond
	const horizon = uint64(40)
	universe := c.mk()
	s, err := core.NewSystem(core.Config{
		Seed:      seed,
		Workload:  flow.Chain(3, period, sim.Millisecond, 64, flow.CritA),
		Topology:  universe,
		PlanOpts:  plan.DefaultOptions(c.f, sim.Second),
		Members:   c.genesis,
		PlanCache: pc,
		Horizon:   horizon,
	})
	if err != nil {
		return C6Row{}, err
	}
	spare1 := network.NodeID(universe.N - 2)
	spare2 := network.NodeID(universe.N - 1)
	// The externally visible victim is the first-
	// actuating sink host of the *epoch-1* plan (the
	// fault lands after the join re-places replicas).
	// Planning is pure, so previewing the epoch through
	// the deployment's own planner costs one warm
	// lookup and matches the runtime's plan exactly.
	elog, err := member.NewLog(universe, member.Genesis(c.genesis))
	if err != nil {
		return C6Row{}, err
	}
	rec1, err := elog.Propose(member.Delta{Join: []network.NodeID{spare1}})
	if err != nil {
		return C6Row{}, err
	}
	wiring1, err := elog.PreviewWiring(rec1)
	if err != nil {
		return C6Row{}, err
	}
	ep1, err := s.MemberPlanner.ForEpoch(rec1, wiring1)
	if err != nil {
		return C6Row{}, err
	}
	victim := firstSinkHostOfPlan(ep1.Strategy.Plans[""], "c2")

	// The maintenance plan: join, fault, repair-by-
	// retire, replace, then (budget free again) a crash.
	s.Reconfigure(5*period, member.Delta{Join: []network.NodeID{spare1}})
	adversary.CorruptTask(victim, "c2", 9*period).Install(s)
	faults := 1

	afterJoin := append(append([]network.NodeID(nil), c.genesis...), spare1)
	retire1 := c6RetireTarget(universe, afterJoin, victim, nil)
	s.Reconfigure(16*period, member.Delta{Retire: []network.NodeID{retire1}})

	afterRetire := without(afterJoin, retire1)
	retire2 := c6RetireTarget(universe, afterRetire, victim,
		map[network.NodeID]bool{retire1: true})
	s.Reconfigure(23*period, member.Delta{
		Join: []network.NodeID{spare2}, Retire: []network.NodeID{retire2},
	})

	// The second fault only fires when the convicted
	// victim was actually retired — otherwise its
	// conviction still occupies the whole f=1 budget
	// and a further fault is outside the guarantee.
	// Crash a survivor whose loss keeps the remaining
	// members connected — BTR's model (like the static
	// deployments') assumes faults do not partition the
	// wiring; a topology where any crash partitions is a
	// deployment error, not a recovery-bound violation.
	final := append(without(afterRetire, retire2), spare2)
	if retire1 == victim || retire2 == victim {
		for _, m := range final {
			if m == victim || m == spare2 || !c6SurvivesLoss(universe, final, m) {
				continue
			}
			adversary.Crash(m, 30*period).Install(s)
			faults++
			break
		}
	}
	rep := s.Run()

	row := C6Row{
		Topology: c.kind, Slots: universe.N, GenesisSize: len(c.genesis),
		Faults: faults, Replans: rep.EpochReplans,
		WithinR: true, CleanChurn: true,
		WorstBound: rep.MaxEpochR(),
	}
	for _, e := range rep.Epochs {
		if e.ActivatedAt == 0 {
			continue
		}
		row.Epochs++
		if lat := e.SwitchLatency(); lat > row.WorstSwitch {
			row.WorstSwitch = lat
		}
	}
	for _, rec := range rep.Recoveries() {
		d := rec.Duration()
		if d > row.WorstRecovery {
			row.WorstRecovery = d
		}
		if d > rep.RBoundFor(rec.FaultAt, rec.FaultAt+d) {
			row.WithinR = false
		}
	}
	// Bad output is attributable only inside a fault's
	// recovery window; anything else means churn itself
	// corrupted the output.
	for _, iv := range rep.BadIntervals() {
		attributed := false
		for _, rec := range rep.Recoveries() {
			if iv.Start >= rec.FaultAt && iv.End <= rec.FaultAt+rec.Duration() {
				attributed = true
				break
			}
		}
		if !attributed {
			row.CleanChurn = false
		}
	}
	return row, nil
}

// ChurnKinds lists the churn topology families (the full, non-quick
// set), for standalone benchmarking.
func ChurnKinds() []string {
	var out []string
	for _, c := range c6Cases(campaign.Params{}) {
		out = append(out, c.kind)
	}
	return out
}

// RunChurnBench runs one churn topology family standalone (the perf-
// bundle emitter's entry point). pc may be shared across calls to
// measure warm-churn replans.
func RunChurnBench(kind string, seed uint64, pc *cache.Cache) (C6Row, error) {
	for _, c := range c6Cases(campaign.Params{}) {
		if c.kind == kind {
			return runChurnCase(c, seed, pc)
		}
	}
	return C6Row{}, fmt.Errorf("exp: unknown churn topology %q", kind)
}
