package exp

// C9: the saturation regime. C5 and C7 measure recovery on a lightly
// loaded wall-clock deployment; C9 asks what the live transport can
// actually absorb. Each trial walks an ascending ladder of sustained
// bogus-evidence flood rates (the §4.3 DoS generator reused as a load
// generator) against a full live deployment, locating the knee where the
// class-aware backpressure starts shedding in bulk — the message-rate
// collapse of the evidence channel — and then injects a catalog fault
// while the flood runs at ≥80% of that measured sustainable rate. The
// claims under test: the knee exists (a positive sustainable events/sec
// with zero deadline misses below it), the transport sheds by class
// policy above it instead of starving foreground traffic, and measured
// recovery still lands within the provable bound R at 80% load. Like C5
// and C7 the numbers are wall-clock and machine-bound, so the family is
// exempt from the byte-identity determinism pin (filters skip
// Family == "saturation"); the invariants are what btrcheckbench gates
// through the BENCH_campaign.json v8 saturation section.

import (
	"fmt"

	"btr/internal/campaign"
	"btr/internal/live"
	"btr/internal/metrics"
	"btr/internal/sim"
)

// c9Period/c9Margin match the C5 live-soak budget: the jitter allowance
// must cover OS timer overshoot on shared hosts, and under flood the
// executor carries tens of thousands of deliveries per second besides.
const (
	c9Period = 150 * sim.Millisecond
	c9Margin = 50 * sim.Millisecond
)

// c9LoadFraction is the recovery-under-load operating point: the flood
// runs at (at least) this fraction of the measured sustainable rate
// while the catalog fault lands.
const c9LoadFraction = 0.8

type c9Case struct {
	kind  string
	nodes int
	f     int
}

// c9Cases: f must be ≥ 2 — the bogus flooder self-convicts within a
// period or two, permanently spending one slot of the fault budget, and
// the recovery fault then lands as the second concurrent fault.
func c9Cases(p campaign.Params) []c9Case {
	return []c9Case{{"full-mesh", 8, 2}}
}

// c9Ladder is the swept flood-intensity grid (bogus envelopes per
// period, each sprayed to every flooder neighbor), ascending. The top
// rung sits far past the evidence channel's modeled bandwidth so the
// ladder always exhibits the collapse, not just the climb.
func c9Ladder(p campaign.Params) []int {
	if p.Quick {
		return []int{64, 768, 3072}
	}
	return []int{8, 64, 256, 768, 3072}
}

// C9Point is one ladder rung (exported for the perf-bundle emitter).
type C9Point struct {
	PerPeriod    int
	OfferedEPS   float64
	DeliveredEPS float64
	Missed       int
	Wrong        int
	Shed         uint64
	Sustained    bool
}

// C9Row is one topology's full saturation probe: the ladder, the located
// knee, and the recovery-under-load measurement at ≥80% of it.
type C9Row struct {
	Topology string
	Nodes    int
	F        int
	Points   []C9Point

	SustainableEPS float64

	LoadEPS      float64
	LoadFraction float64 // realized flood fraction of the sustainable rate
	Recovery     sim.Time
	Bound        sim.Time
	WithinR      bool
	Missed       int
	Wrong        int
	Delivered    uint64
	Dropped      uint64
	Shed         uint64 // sheds during the loaded recovery run
}

// runC9Case walks the ladder and then measures recovery under load. Both
// halves live in one trial because the operating point of the second is
// derived from the knee the first one measures.
func runC9Case(c c9Case, ladder []int, seed uint64) (C9Row, error) {
	cfg := live.SaturationConfig{
		Seed: seed, Topo: c.kind, Nodes: c.nodes, F: c.f,
		Period: c9Period, Margin: c9Margin, Horizon: 12,
		Ladder: ladder,
	}
	sat, err := live.MeasureSaturation(cfg)
	if err != nil {
		return C9Row{}, err
	}
	row := C9Row{Topology: c.kind, Nodes: c.nodes, F: c.f, SustainableEPS: sat.SustainableEPS}
	for _, pt := range sat.Points {
		row.Points = append(row.Points, C9Point{
			PerPeriod: pt.PerPeriod, OfferedEPS: pt.OfferedEPS, DeliveredEPS: pt.DeliveredEPS,
			Missed: pt.Missed, Wrong: pt.Wrong, Shed: pt.Shed, Sustained: pt.Sustained,
		})
	}
	load, frac := live.LoadFractionFor(sat.SustainablePerPeriod, c9LoadFraction)
	if load == 0 {
		return row, fmt.Errorf("saturation %s: even the smallest swept flood rate collapsed the deployment", c.kind)
	}
	rec, err := live.MeasureRecoveryUnderLoad(cfg, load)
	if err != nil {
		return C9Row{}, err
	}
	row.LoadEPS = rec.LoadEPS
	row.LoadFraction = frac
	row.Recovery, row.Bound, row.WithinR = rec.Recovery, rec.Bound, rec.WithinR
	row.Missed, row.Wrong = rec.Missed, rec.Wrong
	row.Delivered, row.Dropped, row.Shed = rec.Delivered, rec.Dropped, rec.Shed
	return row, nil
}

// C9Scenario returns the saturation campaign family. Exported so the
// perf-bundle emitter can run it standalone.
func C9Scenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "C9",
		Family: "saturation",
		Claim:  "the live transport has a measurable sustainable event rate; above it the class-aware backpressure sheds load instead of deadlines, and at 80% of it a fault still recovers within R",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for _, c := range c9Cases(p) {
				c := c
				specs = append(specs, campaign.TrialSpec{
					Name: fmt.Sprintf("saturation/%s/n=%d", c.kind, c.nodes),
					Run: func(t *campaign.T) (any, error) {
						liveGate.Lock()
						defer liveGate.Unlock()
						return runC9Case(c, c9Ladder(p), t.TrialSeed())
					},
				})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			ladder := metrics.NewTable(fmt.Sprintf("C9: saturation ladder (sustained bogus flood, period %v)", c9Period),
				"topology", "flood/period", "offered ev/s", "delivered ev/s", "missed", "shed", "sustained")
			rec := metrics.NewTable("C9: recovery under load (corrupt-all at ≥80% of measured saturation)",
				"topology", "nodes", "f", "sustainable ev/s", "load ev/s", "load frac", "recovery", "bound R", "within R", "shed")
			for i, c := range c9Cases(p) {
				row, ok := campaign.Value[C9Row](trials[i])
				if !ok {
					ladder.AddRow(failedRow(c.kind), "-", "-", "-", "-", "-", "-")
					rec.AddRow(failedRow(c.kind), c.nodes, c.f, "-", "-", "-", "-", "-", "-", "-")
					continue
				}
				for _, pt := range row.Points {
					ladder.AddRow(row.Topology, pt.PerPeriod, fmt.Sprintf("%.0f", pt.OfferedEPS),
						fmt.Sprintf("%.0f", pt.DeliveredEPS), pt.Missed, pt.Shed, boolMark(pt.Sustained))
				}
				rec.AddRow(row.Topology, row.Nodes, row.F,
					fmt.Sprintf("%.0f", row.SustainableEPS), fmt.Sprintf("%.0f", row.LoadEPS),
					fmt.Sprintf("%.2f", row.LoadFraction), row.Recovery, row.Bound,
					boolMark(row.WithinR), row.Shed)
			}
			if note := campaign.FailNote(trials); note != "" {
				ladder.Note("%s", note)
			}
			ladder.Note("'sustained' = zero deadline misses and sheds ≤1%% of deliveries; the knee is the last sustained rung — above it the evidence channel sheds by class policy (bogus/heartbeat first, evidence last, foreground protected)")
			rec.Note("wall-clock measurements on a live executor under sustained flood — the invariant is the 'within R' column at load fraction ≥%.1f", c9LoadFraction)
			return []*metrics.Table{ladder, rec}
		},
	}
}

// SaturationKinds lists the C9 topology families, for standalone
// benchmarking.
func SaturationKinds() []string {
	var out []string
	for _, c := range c9Cases(campaign.Params{}) {
		out = append(out, c.kind)
	}
	return out
}

// RunSaturationBench runs one C9 case standalone with the full ladder
// (the perf-bundle emitter's entry point).
func RunSaturationBench(kind string, seed uint64) (C9Row, error) {
	for _, c := range c9Cases(campaign.Params{}) {
		if c.kind == kind {
			return runC9Case(c, c9Ladder(campaign.Params{}), seed)
		}
	}
	return C9Row{}, fmt.Errorf("exp: unknown saturation topology %q", kind)
}
