package exp

import (
	"os"
	"strings"
	"testing"

	"btr/internal/campaign"
	"btr/internal/live"
)

// TestMain lets this test binary double as the node-process binary: the
// C7 orchestrator re-executes os.Executable() with BTR_PROC_SPEC set,
// and MaybeRunNodeProc turns that re-execution into a deployment node
// instead of a second test run.
func TestMain(m *testing.M) {
	live.MaybeRunNodeProc()
	os.Exit(m.Run())
}

// renderAll runs every deterministic scenario (paper + campaign families;
// the live family measures real wall-clock timings and is pinned by its
// own tests instead) in quick mode with the given worker count and
// renders the aggregated tables.
func renderAll(t *testing.T, workers int) string {
	t.Helper()
	results := campaign.Run(DeterministicScenarios(), campaign.Options{
		Workers: workers,
		Params:  campaign.Params{Seed: 1, Quick: true, Trials: 1},
	})
	var b strings.Builder
	for _, r := range results {
		if r.Failed > 0 {
			for _, tr := range r.Trials {
				if tr.Err != nil {
					t.Errorf("%s/%s failed: %v", r.ID, tr.Name, tr.Err)
				}
			}
		}
		WriteResult(&b, r)
	}
	return b.String()
}

// TestCampaignDeterministicAcrossWorkers is the headline determinism
// guarantee: the full campaign — every experiment and sweep family —
// produces byte-identical aggregated tables at -workers=1 and -workers=8.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	serial := renderAll(t, 1)
	parallel := renderAll(t, 8)
	if serial != parallel {
		t.Fatalf("workers=1 and workers=8 disagree:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			serial, parallel)
	}
	for _, id := range []string{"E1", "E5", "E10", "C1", "C2", "C3"} {
		if !strings.Contains(serial, "---- "+id+":") {
			t.Errorf("campaign output missing %s", id)
		}
	}
}

// TestSerialPathMatchesCampaignPath pins the tentpole refactor contract:
// the legacy serial API (All/Run) and the campaign runner produce the
// same tables.
func TestSerialPathMatchesCampaignPath(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison in -short mode")
	}
	var serial strings.Builder
	for _, e := range All() {
		res := e.Run(1, true)
		serial.WriteString("---- " + res.ID + ": " + res.Claim + " ----\n")
		for _, tb := range res.Tables {
			serial.WriteString(tb.String())
			serial.WriteString("\n")
		}
	}
	var parallel strings.Builder
	RunAllWorkers(&parallel, 1, true, 4)
	if serial.String() != parallel.String() {
		t.Fatalf("serial experiment path and parallel campaign path disagree:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

// TestCampaignSweepsHoldBounds asserts the sweep families' claims on the
// quick configuration: every C1 schedule stays within k·R, every
// schedulable C2 topology recovers within R, every C3 ensemble stays
// within the analytic skew bound.
func TestCampaignSweepsHoldBounds(t *testing.T) {
	var sweeps []campaign.Scenario
	for _, sc := range Scenarios() {
		if sc.Family == "campaign" {
			sweeps = append(sweeps, sc)
		}
	}
	results := campaign.Run(sweeps, campaign.Options{
		Workers: 4,
		Params:  campaign.Params{Seed: 1, Quick: true, Trials: 1},
	})
	for _, r := range results {
		if r.Failed > 0 {
			for _, tr := range r.Trials {
				if tr.Err != nil {
					t.Errorf("%s/%s failed: %v", r.ID, tr.Name, tr.Err)
				}
			}
		}
		var b strings.Builder
		WriteResult(&b, r)
		if strings.Contains(b.String(), "NO") {
			t.Errorf("%s violated its bound:\n%s", r.ID, b.String())
		}
	}
}

// TestC5LiveSmoke boots the quick live soak end to end: every trial must
// complete without error (bound columns are wall-clock measurements and
// are asserted in internal/live and the perf bundle, not here, so this
// stays meaningful under the race detector's ~10x slowdown).
func TestC5LiveSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live wall-clock soak in -short mode")
	}
	results := campaign.Run([]campaign.Scenario{C5Scenario()}, campaign.Options{
		Workers: 2,
		Params:  campaign.Params{Seed: 1, Quick: true, Trials: 1},
	})
	r := results[0]
	for _, tr := range r.Trials {
		if tr.Err != nil {
			t.Errorf("C5/%s failed: %v", tr.Name, tr.Err)
		}
	}
	var b strings.Builder
	WriteResult(&b, r)
	if !strings.Contains(b.String(), "C5: live wall-clock soak") {
		t.Errorf("C5 table missing:\n%s", b.String())
	}
}

// TestC7ProcSmoke boots the quick multi-process deployment family end to
// end: one OS process per node over real TCP sockets. Every trial must
// complete without error and with a transport-reconnect verdict where one
// applies; the recovery bounds are wall-clock measurements asserted in
// internal/live, not here.
func TestC7ProcSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process wall-clock soak in -short mode")
	}
	results := campaign.Run([]campaign.Scenario{C7Scenario()}, campaign.Options{
		Workers: 1,
		Params:  campaign.Params{Seed: 1, Quick: true, Trials: 1},
	})
	r := results[0]
	for _, tr := range r.Trials {
		if tr.Err != nil {
			t.Errorf("C7/%s failed: %v", tr.Name, tr.Err)
			continue
		}
		row, ok := campaign.Value[C7Row](tr)
		if !ok {
			t.Errorf("C7/%s: no row", tr.Name)
			continue
		}
		if row.ReconnectChecked && !row.Reconnected {
			t.Errorf("C7/%s: victim link did not re-establish on every peer", tr.Name)
		}
	}
	var b strings.Builder
	WriteResult(&b, r)
	if !strings.Contains(b.String(), "C7: multi-process TCP deployment soak") {
		t.Errorf("C7 table missing:\n%s", b.String())
	}
}

// TestC9SaturationSmoke boots the quick saturation family end to end:
// the ladder must locate a positive sustainable rate (the bottom rung is
// far below the evidence channel's modeled bandwidth, so a zero knee
// means the probe itself broke) and the loaded recovery trial must
// complete. Whether recovery landed within R is a wall-clock measurement
// gated in the perf bundle, not here, so the test stays meaningful under
// the race detector's slowdown.
func TestC9SaturationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation wall-clock probe in -short mode")
	}
	results := campaign.Run([]campaign.Scenario{C9Scenario()}, campaign.Options{
		Workers: 1,
		Params:  campaign.Params{Seed: 1, Quick: true, Trials: 1},
	})
	r := results[0]
	for _, tr := range r.Trials {
		if tr.Err != nil {
			t.Errorf("C9/%s failed: %v", tr.Name, tr.Err)
			continue
		}
		row, ok := campaign.Value[C9Row](tr)
		if !ok {
			t.Errorf("C9/%s: no row", tr.Name)
			continue
		}
		if row.SustainableEPS <= 0 {
			t.Errorf("C9/%s: no sustainable rate located (points: %+v)", tr.Name, row.Points)
		}
		if row.LoadFraction < 0.8 {
			t.Errorf("C9/%s: loaded recovery ran at fraction %.2f, want >= 0.8", tr.Name, row.LoadFraction)
		}
	}
	var b strings.Builder
	WriteResult(&b, r)
	if !strings.Contains(b.String(), "C9: saturation ladder") || !strings.Contains(b.String(), "C9: recovery under load") {
		t.Errorf("C9 tables missing:\n%s", b.String())
	}
}

// TestC6ChurnHoldsBounds runs the full (non-quick) churn family and
// asserts the acceptance invariant: on all five topology families,
// every epoch activates, recovery stays within the per-epoch bound
// across every epoch boundary, and churn alone produces no bad output.
func TestC6ChurnHoldsBounds(t *testing.T) {
	results := campaign.Run([]campaign.Scenario{C6Scenario()}, campaign.Options{
		Workers: 4,
		Params:  campaign.Params{Seed: 1, Quick: false, Trials: 1},
	})
	r := results[0]
	if r.Failed > 0 {
		for _, tr := range r.Trials {
			if tr.Err != nil {
				t.Fatalf("%s failed: %v", tr.Name, tr.Err)
			}
		}
	}
	if len(r.Trials) != 5 {
		t.Fatalf("C6 ran %d topology families, want 5", len(r.Trials))
	}
	for _, tr := range r.Trials {
		row, ok := campaign.Value[C6Row](tr)
		if !ok {
			t.Fatalf("%s: no row", tr.Name)
		}
		if row.Epochs != 3 {
			t.Errorf("%s: %d epochs activated, want 3", tr.Name, row.Epochs)
		}
		if !row.WithinR {
			t.Errorf("%s: recovery exceeded the epoch-aware bound (worst %v vs %v)",
				tr.Name, row.WorstRecovery, row.WorstBound)
		}
		if !row.CleanChurn {
			t.Errorf("%s: churn produced bad output outside fault windows", tr.Name)
		}
		if row.WorstSwitch <= 0 || row.WorstSwitch > row.WorstBound {
			t.Errorf("%s: epoch-switch latency %v outside (0, R=%v]", tr.Name, row.WorstSwitch, row.WorstBound)
		}
	}
}
