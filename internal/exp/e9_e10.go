package exp

import (
	"fmt"

	"btr/internal/adversary"
	"btr/internal/baseline"
	"btr/internal/campaign"
	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plant"
	"btr/internal/sim"
)

// --- E9: the five-second rule -----------------------------------------------

type e9Plant struct {
	name string
	mk   func() plant.Plant
}

func e9Plants(p campaign.Params) []e9Plant {
	plants := []e9Plant{
		{"water tank", func() plant.Plant { return plant.NewWaterTank() }},
		{"inverted pendulum", func() plant.Plant { return plant.NewInvertedPendulum() }},
		{"aircraft pitch", func() plant.Plant { return plant.NewPitchHold() }},
	}
	if p.Quick {
		plants = plants[:1]
	}
	return plants
}

var e9Fractions = []float64{0.5, 0.8, 1.2, 2.0}

type e9aRow struct {
	Deadline sim.Time
	Violated bool
}

type e9bRow struct {
	Deadline   sim.Time
	Bound      sim.Time
	Recovery   sim.Time
	Violations int
}

type e9cRow struct {
	Protocol string
	Samples  int
	Frac     float64
}

// e9Scenario reproduces the paper's namesake argument: physical inertia
// tolerates outages up to a damage deadline D, so BTR with recovery bound
// R < D keeps the plant safe — while eventual-recovery schemes gamble
// with D.
func e9Scenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "E9",
		Family: "paper",
		Claim:  "physical inertia tolerates ≤D of bad output; BTR guarantees recovery in R < D, eventual recovery does not",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			// Part 1: plant physics — outage sweep vs envelope violation.
			for _, mp := range e9Plants(p) {
				for _, frac := range e9Fractions {
					mp, frac := mp, frac
					specs = append(specs, campaign.TrialSpec{
						Name: fmt.Sprintf("outage/%s/%.1fxD", mp.name, frac),
						Run: func(t *campaign.T) (any, error) {
							d := mp.mk().DamageDeadline()
							outage := sim.Time(float64(d) * frac)
							return e9aRow{Deadline: d, Violated: outageViolates(mp.mk(), outage)}, nil
						},
					})
				}
			}
			// Part 2: BTR closing the loop on the water tank with a
			// corrupted sink: recovery R << D keeps the envelope.
			specs = append(specs, campaign.TrialSpec{Name: "btr-watertank", Run: func(t *campaign.T) (any, error) {
				period := 50 * sim.Millisecond
				horizon := uint64(200) // 10 seconds
				tank := plant.NewWaterTank()
				loop := plant.NewLoop(tank, period, horizon)
				g := flow.ControlLoop(period, flow.CritA)
				sys, err := core.NewSystem(core.Config{
					Seed: p.Seed, Workload: g,
					Topology: network.FullMesh(6, 20_000_000, 50*sim.Microsecond),
					PlanOpts: plan.DefaultOptions(1, sim.Second),
					Compute:  loop.Compute, Source: loop.Source, Oracle: loop.Oracle,
					Horizon: horizon,
					OnActuation: func(node network.NodeID, sink flow.TaskID, pp uint64, value []byte, at sim.Time) {
						loop.Apply(pp, value)
					},
				})
				if err != nil {
					return nil, err
				}
				loop.Install(sys.Kernel)
				// The attacker corrupts the first-actuating sink replica's
				// command; a corrupted command decodes to valve-shut
				// (pressure climbs 1 bar/s).
				victim := firstActuatingSinkNode(sys, "actuator")
				adversary.CorruptTask(victim, "actuator", 40*period).Install(sys)
				rep := sys.Run()
				return e9bRow{
					Deadline:   tank.DamageDeadline(),
					Bound:      rep.RNeeded,
					Recovery:   rep.MaxRecovery(),
					Violations: loop.Violations,
				}, nil
			}})
			// Part 3: which recovery distributions respect D?
			specs = append(specs, campaign.TrialSpec{Name: "recovery-models", Run: func(t *campaign.T) (any, error) {
				period := 50 * sim.Millisecond
				d := plant.NewWaterTank().DamageDeadline()
				rng := sim.NewRNG(p.Seed)
				nSamples := 2000
				if p.Quick {
					nSamples = 300
				}
				var rows []e9cRow
				for _, pr := range []baseline.Protocol{baseline.BFTMask, baseline.ZZReactive, baseline.SelfStab, baseline.Unreplicated} {
					m := baseline.DefaultRecoveryModel(pr, period)
					over := 0
					for i := 0; i < nSamples; i++ {
						if m.Sample(rng) > d {
							over++
						}
					}
					rows = append(rows, e9cRow{
						Protocol: pr.String(), Samples: nSamples,
						Frac: float64(over) / float64(nSamples),
					})
				}
				return rows, nil
			}})
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t1 := metrics.NewTable("E9a: outage tolerance of the plants (open sweep, no protocol)",
				"plant", "damage deadline D", "outage", "envelope violated")
			plants := e9Plants(p)
			idx := 0
			for _, mp := range plants {
				for _, frac := range e9Fractions {
					row, ok := campaign.Value[e9aRow](trials[idx])
					idx++
					if !ok {
						t1.AddRow(failedRow(mp.name), "-", fmt.Sprintf("%.1f×D", frac), "-")
						continue
					}
					t1.AddRow(mp.name, row.Deadline, fmt.Sprintf("%.1f×D", frac), boolMark(row.Violated))
				}
			}
			t1.Note("outage = actuator frozen at the pre-fault command (crash) or held adversarially at zero control")

			t2 := metrics.NewTable("E9b: BTR on the water tank under a sink-commission attack",
				"metric", "value")
			btr, btrOK := campaign.Value[e9bRow](trials[idx])
			if btrOK {
				t2.AddRow("plant damage deadline D", btr.Deadline)
				t2.AddRow("strategy recovery bound R", btr.Bound)
				t2.AddRow("measured recovery", btr.Recovery)
				t2.AddRow("envelope violations", btr.Violations)
				t2.AddRow("R < D (safe by design)", boolMark(btr.Bound < btr.Deadline))
			} else {
				t2.AddRow(failedRow("btr-watertank"), "-")
			}
			t2.Note("the valve-shut attack is externally visible for ≤ R, far below the 5s damage deadline")
			idx++

			t3 := metrics.NewTable("E9c: P(recovery > D) per protocol (water tank, D = 5s)",
				"protocol", "samples", "P(recovery > D)", "verdict")
			if rows, ok := campaign.Value[[]e9cRow](trials[idx]); ok {
				for _, r := range rows {
					verdict := "safe"
					if r.Frac > 0 {
						verdict = "gambles with damage"
					}
					t3.AddRow(r.Protocol, r.Samples, fmt.Sprintf("%.4f", r.Frac), verdict)
				}
			} else {
				t3.AddRow(failedRow("recovery-models"), "-", "-", "-")
			}
			if btrOK {
				over := 0.0
				if btr.Recovery > btr.Deadline {
					over = 1
				}
				t3.AddRow("BTR", 1, fmt.Sprintf("%.4f", over), "safe (hard bound)")
			} else {
				t3.AddRow(failedRow("BTR"), "-", "-", "-")
			}
			return []*metrics.Table{t1, t2, t3}
		},
	}
}

// outageViolates simulates good control, then an outage of the given
// length with the actuator forced to zero, then good control again.
func outageViolates(p plant.Plant, outage sim.Time) bool {
	c, _ := p.(interface{ Control(float64) float64 })
	period := 20 * sim.Millisecond
	steps := func(d sim.Time) int { return int(d / period) }
	for i := 0; i < steps(5*sim.Second); i++ {
		p.Step(c.Control(p.Sense()), period)
	}
	for i := 0; i < steps(outage); i++ {
		p.Step(0, period)
		if !p.InEnvelope() {
			return true
		}
	}
	for i := 0; i < steps(5*sim.Second); i++ {
		p.Step(c.Control(p.Sense()), period)
		if !p.InEnvelope() {
			return true
		}
	}
	return false
}

// --- E10: baselines ---------------------------------------------------------

type e10BtrRun struct {
	RecoveryMS float64
	Util       float64
	Bound      sim.Time
}

type e10ModelRow struct {
	Cells []string
}

func e10Runs(p campaign.Params) int {
	if p.Quick {
		return 3
	}
	return 8
}

// e10Scenario compares recovery distributions and steady-state cost
// across the fault-tolerance designs (§3.1, §5).
func e10Scenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "E10",
		Family: "paper",
		Claim:  "BTR occupies the gap between masking (expensive) and eventual recovery (unbounded): cheap normal case, hard bound",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			// BTR: measure real recoveries across seeds (sink commission —
			// the worst externally-visible fault). One system per trial.
			for i := 0; i < e10Runs(p); i++ {
				i := i
				specs = append(specs, campaign.TrialSpec{Name: fmt.Sprintf("btr/run-%d", i), Run: func(t *campaign.T) (any, error) {
					sys, err := chainSystem(p.Seed+uint64(100+i), 1, 8, 40)
					if err != nil {
						return nil, err
					}
					period := sys.Cfg.Workload.Period
					_, util := sys.Strategy.Plans[""].Table.MaxUtilization()
					victim := firstActuatingSinkNode(sys, "c2")
					adversary.CorruptTask(victim, "c2", 5*period).Install(sys)
					rep := sys.Run()
					return e10BtrRun{
						RecoveryMS: rep.MaxRecovery().Millis(),
						Util:       util,
						Bound:      sys.Strategy.RNeeded,
					}, nil
				}})
			}
			// Analytic models share one RNG stream, so they stay a single
			// trial (splitting them would change the sampled values).
			specs = append(specs, campaign.TrialSpec{Name: "models", Run: func(t *campaign.T) (any, error) {
				g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
				topo := network.FullMesh(8, 20_000_000, 50*sim.Microsecond)
				period := g.Period
				rng := sim.NewRNG(p.Seed ^ 0xe10)
				nSamples := 5000
				if p.Quick {
					nSamples = 500
				}
				var rows []e10ModelRow
				for _, pr := range []baseline.Protocol{baseline.BFTMask, baseline.ZZReactive, baseline.SelfStab, baseline.Unreplicated} {
					m := baseline.DefaultRecoveryModel(pr, period)
					s := metrics.NewSeries(pr.String())
					never := false
					for i := 0; i < nSamples; i++ {
						v := m.Sample(rng)
						if v == sim.Never {
							never = true
							break
						}
						s.AddTime(v)
					}
					util, _ := baseline.Utilization(pr, g, topo, 1)
					guarantee := map[baseline.Protocol]string{
						baseline.BFTMask:      "masks (needs 3f+1)",
						baseline.ZZReactive:   "detection, no timing bound",
						baseline.SelfStab:     "eventual only (unbounded tail)",
						baseline.Unreplicated: "none",
					}[pr]
					if never {
						rows = append(rows, e10ModelRow{Cells: []string{
							pr.String() + " (model)", "never", "never", "never",
							fmt.Sprintf("%.3f", util), guarantee}})
						continue
					}
					rows = append(rows, e10ModelRow{Cells: []string{
						pr.String() + " (model)",
						fmt.Sprintf("%.1fms", s.Percentile(50)),
						fmt.Sprintf("%.1fms", s.Percentile(99)),
						fmt.Sprintf("%.1fms", s.Max()),
						fmt.Sprintf("%.3f", util), guarantee}})
				}
				return rows, nil
			}})
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable("E10: recovery distribution and steady-state cost (chain, f=1)",
				"protocol", "recovery p50", "recovery p99", "recovery max", "peak util", "guarantee")
			runs := e10Runs(p)
			// Fold per-trial samples in trial-index order (the
			// deterministic shard reduction), keeping failures visible.
			btrSamples := metrics.NewSeries("btr")
			var btrUtil float64
			var rBound sim.Time
			failed := 0
			for _, tr := range trials[:runs] {
				run, ok := campaign.Value[e10BtrRun](tr)
				if !ok {
					failed++
					continue
				}
				btrSamples.Add(run.RecoveryMS)
				btrUtil, rBound = run.Util, run.Bound
			}
			if btrSamples.N() == 0 {
				t.AddRow(failedRow("BTR (measured)"), "-", "-", "-", "-", "-")
			} else {
				label := "BTR (measured)"
				if failed > 0 {
					label = fmt.Sprintf("BTR (measured, %d/%d trials failed)", failed, runs)
				}
				t.AddRow(label,
					fmt.Sprintf("%.1fms", btrSamples.Percentile(50)),
					fmt.Sprintf("%.1fms", btrSamples.Percentile(99)),
					fmt.Sprintf("%.1fms", btrSamples.Max()),
					fmt.Sprintf("%.3f", btrUtil),
					fmt.Sprintf("hard bound %v", rBound))
			}
			if rows, ok := campaign.Value[[]e10ModelRow](trials[runs]); ok {
				for _, r := range rows {
					cells := make([]any, len(r.Cells))
					for i, c := range r.Cells {
						cells[i] = c
					}
					t.AddRow(cells...)
				}
			} else {
				t.AddRow(failedRow("models"), "-", "-", "-", "-", "-")
			}
			t.Note("non-BTR recovery distributions are analytic models with documented parameters (internal/baseline); shapes, not absolutes")
			return []*metrics.Table{t}
		},
	}
}
