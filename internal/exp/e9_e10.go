package exp

import (
	"fmt"

	"btr/internal/adversary"
	"btr/internal/baseline"
	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plant"
	"btr/internal/sim"
)

// E9FiveSecondRule reproduces the paper's namesake argument: physical
// inertia tolerates outages up to a damage deadline D, so BTR with
// recovery bound R < D keeps the plant safe — while eventual-recovery
// schemes gamble with D.
func E9FiveSecondRule(seed uint64, quick bool) Result {
	// Part 1: plant physics — outage sweep vs envelope violation.
	t1 := metrics.NewTable("E9a: outage tolerance of the plants (open sweep, no protocol)",
		"plant", "damage deadline D", "outage", "envelope violated")
	type mkPlant struct {
		name string
		mk   func() plant.Plant
	}
	plants := []mkPlant{
		{"water tank", func() plant.Plant { return plant.NewWaterTank() }},
		{"inverted pendulum", func() plant.Plant { return plant.NewInvertedPendulum() }},
		{"aircraft pitch", func() plant.Plant { return plant.NewPitchHold() }},
	}
	if quick {
		plants = plants[:1]
	}
	fractions := []float64{0.5, 0.8, 1.2, 2.0}
	for _, mp := range plants {
		d := mp.mk().DamageDeadline()
		for _, frac := range fractions {
			outage := sim.Time(float64(d) * frac)
			violated := outageViolates(mp.mk(), outage)
			t1.AddRow(mp.name, d, fmt.Sprintf("%.1f×D", frac), boolMark(violated))
		}
	}
	t1.Note("outage = actuator frozen at the pre-fault command (crash) or held adversarially at zero control")

	// Part 2: BTR closing the loop on the water tank with a corrupted
	// sink: recovery R << D keeps the envelope.
	t2 := metrics.NewTable("E9b: BTR on the water tank under a sink-commission attack",
		"metric", "value")
	period := 50 * sim.Millisecond
	horizon := uint64(200) // 10 seconds
	tank := plant.NewWaterTank()
	loop := plant.NewLoop(tank, period, horizon)
	g := flow.ControlLoop(period, flow.CritA)
	sys, err := core.NewSystem(core.Config{
		Seed: seed, Workload: g,
		Topology: network.FullMesh(6, 20_000_000, 50*sim.Microsecond),
		PlanOpts: plan.DefaultOptions(1, sim.Second),
		Compute:  loop.Compute, Source: loop.Source, Oracle: loop.Oracle,
		Horizon: horizon,
		OnActuation: func(node network.NodeID, sink flow.TaskID, p uint64, value []byte, at sim.Time) {
			loop.Apply(p, value)
		},
	})
	if err != nil {
		panic(err)
	}
	loop.Install(sys.Kernel)
	// The attacker corrupts the first-actuating sink replica's command;
	// a corrupted command decodes to valve-shut (pressure climbs 1 bar/s).
	victim := firstActuatingSinkNode(sys, "actuator")
	adversary.CorruptTask(victim, "actuator", 40*period).Install(sys)
	rep := sys.Run()
	t2.AddRow("plant damage deadline D", tank.DamageDeadline())
	t2.AddRow("strategy recovery bound R", rep.RNeeded)
	t2.AddRow("measured recovery", rep.MaxRecovery())
	t2.AddRow("envelope violations", loop.Violations)
	t2.AddRow("R < D (safe by design)", boolMark(rep.RNeeded < tank.DamageDeadline()))
	t2.Note("the valve-shut attack is externally visible for ≤ R, far below the 5s damage deadline")

	// Part 3: which recovery distributions respect D?
	t3 := metrics.NewTable("E9c: P(recovery > D) per protocol (water tank, D = 5s)",
		"protocol", "samples", "P(recovery > D)", "verdict")
	d := plant.NewWaterTank().DamageDeadline()
	rng := sim.NewRNG(seed)
	nSamples := 2000
	if quick {
		nSamples = 300
	}
	for _, p := range []baseline.Protocol{baseline.BFTMask, baseline.ZZReactive, baseline.SelfStab, baseline.Unreplicated} {
		m := baseline.DefaultRecoveryModel(p, period)
		over := 0
		for i := 0; i < nSamples; i++ {
			if m.Sample(rng) > d {
				over++
			}
		}
		frac := float64(over) / float64(nSamples)
		verdict := "safe"
		if frac > 0 {
			verdict = "gambles with damage"
		}
		t3.AddRow(p.String(), nSamples, fmt.Sprintf("%.4f", frac), verdict)
	}
	t3.AddRow("BTR", 1, fmt.Sprintf("%.4f", btrOverD(rep, d)), "safe (hard bound)")
	return Result{
		ID:     "E9",
		Claim:  "physical inertia tolerates ≤D of bad output; BTR guarantees recovery in R < D, eventual recovery does not",
		Tables: []*metrics.Table{t1, t2, t3},
	}
}

func btrOverD(rep *core.Report, d sim.Time) float64 {
	if rep.MaxRecovery() > d {
		return 1
	}
	return 0
}

// outageViolates simulates good control, then an outage of the given
// length with the actuator forced to zero, then good control again.
func outageViolates(p plant.Plant, outage sim.Time) bool {
	c, _ := p.(interface{ Control(float64) float64 })
	period := 20 * sim.Millisecond
	steps := func(d sim.Time) int { return int(d / period) }
	for i := 0; i < steps(5*sim.Second); i++ {
		p.Step(c.Control(p.Sense()), period)
	}
	for i := 0; i < steps(outage); i++ {
		p.Step(0, period)
		if !p.InEnvelope() {
			return true
		}
	}
	for i := 0; i < steps(5*sim.Second); i++ {
		p.Step(c.Control(p.Sense()), period)
		if !p.InEnvelope() {
			return true
		}
	}
	return false
}

// E10Baselines compares recovery distributions and steady-state cost
// across the fault-tolerance designs (§3.1, §5).
func E10Baselines(seed uint64, quick bool) Result {
	t := metrics.NewTable("E10: recovery distribution and steady-state cost (chain, f=1)",
		"protocol", "recovery p50", "recovery p99", "recovery max", "peak util", "guarantee")

	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	topo := network.FullMesh(8, 20_000_000, 50*sim.Microsecond)
	period := g.Period
	rng := sim.NewRNG(seed ^ 0xe10)

	// BTR: measure real recoveries across seeds (sink commission — the
	// worst externally-visible fault).
	btrSamples := metrics.NewSeries("btr")
	runs := 8
	if quick {
		runs = 3
	}
	var btrUtil float64
	var rBound sim.Time
	for i := 0; i < runs; i++ {
		sys, err := chainSystem(seed+uint64(100+i), 1, 8, 40)
		if err != nil {
			panic(err)
		}
		_, btrUtil = sys.Strategy.Plans[""].Table.MaxUtilization()
		rBound = sys.Strategy.RNeeded
		victim := firstActuatingSinkNode(sys, "c2")
		adversary.CorruptTask(victim, "c2", 5*period).Install(sys)
		rep := sys.Run()
		btrSamples.AddTime(rep.MaxRecovery())
	}
	t.AddRow("BTR (measured)",
		fmt.Sprintf("%.1fms", btrSamples.Percentile(50)),
		fmt.Sprintf("%.1fms", btrSamples.Percentile(99)),
		fmt.Sprintf("%.1fms", btrSamples.Max()),
		fmt.Sprintf("%.3f", btrUtil),
		fmt.Sprintf("hard bound %v", rBound))

	nSamples := 5000
	if quick {
		nSamples = 500
	}
	for _, p := range []baseline.Protocol{baseline.BFTMask, baseline.ZZReactive, baseline.SelfStab, baseline.Unreplicated} {
		m := baseline.DefaultRecoveryModel(p, period)
		s := metrics.NewSeries(p.String())
		never := false
		for i := 0; i < nSamples; i++ {
			v := m.Sample(rng)
			if v == sim.Never {
				never = true
				break
			}
			s.AddTime(v)
		}
		util, _ := baseline.Utilization(p, g, topo, 1)
		guarantee := map[baseline.Protocol]string{
			baseline.BFTMask:      "masks (needs 3f+1)",
			baseline.ZZReactive:   "detection, no timing bound",
			baseline.SelfStab:     "eventual only (unbounded tail)",
			baseline.Unreplicated: "none",
		}[p]
		if never {
			t.AddRow(p.String()+" (model)", "never", "never", "never",
				fmt.Sprintf("%.3f", util), guarantee)
			continue
		}
		t.AddRow(p.String()+" (model)",
			fmt.Sprintf("%.1fms", s.Percentile(50)),
			fmt.Sprintf("%.1fms", s.Percentile(99)),
			fmt.Sprintf("%.1fms", s.Max()),
			fmt.Sprintf("%.3f", util), guarantee)
	}
	t.Note("non-BTR recovery distributions are analytic models with documented parameters (internal/baseline); shapes, not absolutes")
	return Result{
		ID:     "E10",
		Claim:  "BTR occupies the gap between masking (expensive) and eventual recovery (unbounded): cheap normal case, hard bound",
		Tables: []*metrics.Table{t},
	}
}
