package exp

// C4: incremental plan-engine sweep. The paper's bounded-recovery
// argument requires a valid plan per anticipated fault pattern *before*
// the pattern manifests, so plan synthesis is the scaling bottleneck as
// topologies grow. C4 measures, per topology family, how far symmetry
// canonicalization and delta derivation compress that work: fault sets
// vs. symmetry orbits, syntheses actually run, and whether a warm cache
// resolves the whole lattice synthesis-free. Wall-clock latency is
// machine-dependent and therefore lives in BENCH_campaign.json (the
// plan_cache section), not in these deterministic tables.

import (
	"fmt"

	"btr/internal/campaign"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/plan/cache"
	"btr/internal/sim"
)

type c4Case struct {
	kind string
	n, f int
	mk   func() *network.Topology
}

func c4Cases(p campaign.Params) []c4Case {
	const bw, prop = 20_000_000, 50 * sim.Microsecond
	cases := []c4Case{
		{"full-mesh", 8, 2, func() *network.Topology { return network.FullMesh(8, bw, prop) }},
		{"full-mesh", 12, 2, func() *network.Topology { return network.FullMesh(12, bw, prop) }},
		{"ring", 8, 1, func() *network.Topology { return network.Ring(8, bw, prop) }},
		{"ring", 10, 2, func() *network.Topology { return network.Ring(10, bw, prop) }},
		{"grid-3x3", 9, 2, func() *network.Topology { return network.Grid(3, 3, bw, prop) }},
		{"dual-bus", 8, 2, func() *network.Topology { return network.DualBus(8, bw, prop) }},
		{"star", 8, 1, func() *network.Topology { return network.Star(8, bw, prop) }},
	}
	if p.Quick {
		cases = []c4Case{cases[1], cases[2], cases[5]}
	}
	return cases
}

type c4Row struct {
	Sched   bool
	PlanErr string
	Sets    int
	Orbits  int
	Synth   uint64 // cold syntheses (delta + full)
	Delta   uint64 // of which delta repairs
	Warm    uint64 // syntheses during the warm rebuild (must be 0)
	REngine sim.Time
	RBuild  sim.Time
}

// c4PlanCache sweeps the incremental plan engine across topology
// families: cold synthesis must scale with symmetry orbits (not fault
// sets), a warm cache must resolve the whole lattice synthesis-free, and
// the engine must agree with the from-scratch planner on feasibility.
func c4PlanCache() campaign.Scenario {
	return campaign.Scenario{
		ID:     "C4",
		Family: "campaign",
		Claim:  "plan synthesis scales with symmetry orbits, not fault sets; a warm cache replans synthesis-free",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for _, c := range c4Cases(p) {
				c := c
				specs = append(specs, campaign.TrialSpec{
					Name: fmt.Sprintf("plancache/%s/n=%d/f=%d", c.kind, c.n, c.f),
					Run: func(t *campaign.T) (any, error) {
						g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
						topo := c.mk()
						opts := plan.DefaultOptions(c.f, 500*sim.Millisecond)
						eng := cache.NewEngine(g, topo, opts, nil)
						s, err := eng.BuildStrategy()
						ref, refErr := plan.Build(g, topo, opts)
						if (err == nil) != (refErr == nil) {
							return nil, fmt.Errorf("feasibility disagrees: engine=%v build=%v", err, refErr)
						}
						if err != nil {
							return c4Row{Sched: false, PlanErr: campaign.FirstLine(err.Error())}, nil
						}
						cold := eng.Stats()
						if _, err := eng.BuildStrategy(); err != nil {
							return nil, fmt.Errorf("warm rebuild: %v", err)
						}
						warm := eng.Stats()
						sym := cache.NewSymmetry(topo)
						orbits := map[string]bool{}
						for _, fs := range plan.EnumerateFaultSets(topo.N, c.f) {
							orbits[sym.Canonicalize(fs).Key] = true
						}
						return c4Row{
							Sched:   true,
							Sets:    len(s.Plans),
							Orbits:  len(orbits),
							Synth:   cold.DeltaBuilds + cold.FullBuilds,
							Delta:   cold.DeltaBuilds,
							Warm:    (warm.DeltaBuilds + warm.FullBuilds) - (cold.DeltaBuilds + cold.FullBuilds),
							REngine: s.RNeeded,
							RBuild:  ref.RNeeded,
						}, nil
					},
				})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable("C4: incremental plan engine (chain workload, canonicalized plan cache)",
				"topology", "nodes", "f", "fault sets", "orbits", "syntheses", "delta", "synth=orbits", "warm synth-free", "R engine", "R full")
			cases := c4Cases(p)
			for i, tr := range trials {
				c := cases[i]
				row, ok := campaign.Value[c4Row](tr)
				if !ok {
					t.AddRow(failedRow(c.kind), c.n, c.f, "-", "-", "-", "-", "-", "-", "-", "-")
					continue
				}
				if !row.Sched {
					t.AddRow(c.kind, c.n, c.f, "no: "+row.PlanErr, "-", "-", "-", "-", "-", "-", "-")
					continue
				}
				t.AddRow(c.kind, c.n, c.f, row.Sets, row.Orbits,
					row.Synth, row.Delta,
					boolMark(row.Synth == uint64(row.Orbits)),
					boolMark(row.Warm == 0),
					row.REngine, row.RBuild)
			}
			if note := campaign.FailNote(trials); note != "" {
				t.Note("%s", note)
			}
			t.Note("orbits = distinct canonical fault-set keys under topology automorphism; cold synthesis runs once per orbit, warm rebuilds run zero; R engine vs R full may differ in the third digit (different — equally valid — derivation chains)")
			return []*metrics.Table{t}
		},
	}
}
