package exp

// C5: live wall-clock soak. Every other scenario family measures recovery
// in virtual time on the discrete-event kernel; C5 boots the same runtime
// on the real-time executor (sim.WallScheduler + network.Bus via
// internal/live) across the C2 topology families, injects catalog faults
// at runtime, and records *measured wall-clock* recovery latencies
// against the provable bound R. Its tables carry real timings and are
// therefore exempt from the byte-identical determinism pin that covers
// the simulated families (the determinism tests filter Family == "live").

import (
	"fmt"
	"sync"

	"btr/internal/adversary"
	"btr/internal/campaign"
	"btr/internal/flow"
	"btr/internal/live"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// liveGate serializes live trials across campaign workers: wall-clock
// deployments must not compete for cores mid-measurement, and their wall
// time does not parallelize anyway.
var liveGate sync.Mutex

// c5Period is deliberately generous (and the watchdog margin with it):
// the live executor runs all nodes on one goroutine over a non-realtime
// kernel, so the jitter budget must cover OS timer overshoot and
// transient scheduling stalls on shared CI hosts. The recovery bound R
// scales with the period; the claim under test is recovery ≤ R, not R's
// absolute size.
const (
	c5Period = 150 * sim.Millisecond
	c5Margin = 50 * sim.Millisecond
)

type c5Case struct {
	kind string
	n    int
	f    int
	mk   func() *network.Topology
}

func c5Cases(p campaign.Params) []c5Case {
	const bw, prop = 20_000_000, 50 * sim.Microsecond
	cases := []c5Case{
		{"full-mesh", 6, 1, func() *network.Topology { return network.FullMesh(6, bw, prop) }},
		{"full-mesh", 8, 2, func() *network.Topology { return network.FullMesh(8, bw, prop) }},
		{"dual-bus", 6, 1, func() *network.Topology { return network.DualBus(6, bw, prop) }},
		{"grid-3x3", 9, 1, func() *network.Topology { return network.Grid(3, 3, bw, prop) }},
		{"ring", 8, 1, func() *network.Topology { return network.Ring(8, bw, prop) }},
	}
	if p.Quick {
		cases = []c5Case{cases[0], cases[2]}
	}
	return cases
}

// c5Reps is the number of soak runs per topology (each one full live
// deployment, alternating fault behaviors).
func c5Reps(p campaign.Params) int {
	reps := 2
	if p.Quick {
		reps = 1
	}
	return reps * p.Trials
}

// C5Row is one live soak run's measurement (exported for the perf-bundle
// emitter, which records these as the BENCH_campaign.json live section).
type C5Row struct {
	Topology string
	Nodes    int
	F        int
	Fault    string
	Recovery sim.Time // measured wall-clock recovery (0 = masked)
	Bound    sim.Time // provable R
	Missed   int
	Wrong    int
	Switches int
}

// C5Scenario returns the live soak scenario. Exported (unlike the
// simulated families) so the perf-bundle emitter can run it standalone.
func C5Scenario() campaign.Scenario {
	horizon := func(p campaign.Params) uint64 {
		if p.Quick {
			return 10
		}
		return 14
	}
	return campaign.Scenario{
		ID:     "C5",
		Family: "live",
		Claim:  "the same runtime recovers within R on the wall clock: live executor + bus transport across topology families",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for _, c := range c5Cases(p) {
				for rep := 0; rep < c5Reps(p); rep++ {
					c, rep := c, rep
					specs = append(specs, campaign.TrialSpec{
						Name: fmt.Sprintf("live/%s/n=%d/rep=%d", c.kind, c.n, rep),
						Run: func(t *campaign.T) (any, error) {
							liveGate.Lock()
							defer liveGate.Unlock()
							opts := plan.DefaultOptions(c.f, 100*c5Period)
							opts.WatchdogMargin = c5Margin
							d, err := live.New(live.Config{
								Seed:     t.TrialSeed(),
								Workload: flow.Chain(3, c5Period, sim.Millisecond, 64, flow.CritA),
								Topology: c.mk(),
								PlanOpts: opts,
								Horizon:  horizon(p),
							})
							if err != nil {
								return nil, err
							}
							victim := live.FirstSinkNode(d)
							fault := "corrupt-all"
							attack := adversary.CorruptEverything(victim, 3*c5Period)
							if rep%2 == 1 {
								fault = "crash"
								attack = adversary.Crash(victim, 3*c5Period)
							}
							attack.Install(d)
							rep := d.Run()
							return C5Row{
								Topology: c.kind, Nodes: c.n, F: c.f, Fault: fault,
								Recovery: rep.MaxRecovery(), Bound: rep.RNeeded,
								Missed: rep.MissedPeriods, Wrong: rep.WrongValues,
								Switches: len(rep.SwitchTimes),
							}, nil
						},
					})
				}
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable(fmt.Sprintf("C5: live wall-clock soak (chain workload, period %v, %d run(s)/topology)", c5Period, c5Reps(p)),
				"topology", "nodes", "f", "runs", "worst recovery", "bound R", "within R")
			for _, c := range c5Cases(p) {
				var worst, bound sim.Time
				n, within := 0, 0
				for _, tr := range trials {
					row, ok := campaign.Value[C5Row](tr)
					if !ok || row.Topology != c.kind || row.Nodes != c.n {
						continue
					}
					n++
					bound = row.Bound
					if row.Recovery > worst {
						worst = row.Recovery
					}
					if row.Recovery <= row.Bound {
						within++
					}
				}
				if n == 0 {
					t.AddRow(failedRow(c.kind), c.n, c.f, 0, "-", "-", "-")
					continue
				}
				t.AddRow(c.kind, c.n, c.f, n, worst, bound, boolMark(within == n))
			}
			if note := campaign.FailNote(trials); note != "" {
				t.Note("%s", note)
			}
			t.Note("wall-clock measurements on a live executor — values vary run to run; the invariant is the 'within R' column")
			return []*metrics.Table{t}
		},
	}
}
