// Package exp implements the reproduction experiments E1–E10 (see
// DESIGN.md §3 and EXPERIMENTS.md). "Fault Tolerance and the Five-Second
// Rule" is a HotOS position paper without numbered tables or figures, so
// each experiment regenerates one of its quantitative *claims*; the tables
// printed here are the repository's equivalent of the paper's evaluation.
//
// Every experiment is deterministic given its seed and returns plain-text
// tables; cmd/btrbench prints them all, and bench_test.go wraps each in a
// testing.B benchmark.
package exp

import (
	"fmt"
	"io"

	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// Result is one experiment's output.
type Result struct {
	ID     string
	Claim  string // the paper claim being reproduced
	Tables []*metrics.Table
}

// Experiment is a runnable experiment definition.
type Experiment struct {
	ID  string
	Run func(seed uint64, quick bool) Result
}

// All lists every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", E1Recovery},
		{"E2", E2ReplicaCost},
		{"E3", E3ClockFrequency},
		{"E4", E4Staggered},
		{"E5", E5MixedCriticality},
		{"E6", E6EvidenceDoS},
		{"E7", E7Planner},
		{"E8", E8ModeChange},
		{"E9", E9FiveSecondRule},
		{"E10", E10Baselines},
	}
}

// RunAll executes every experiment and writes the tables to w.
func RunAll(w io.Writer, seed uint64, quick bool) {
	for _, e := range All() {
		res := e.Run(seed, quick)
		fmt.Fprintf(w, "---- %s: %s ----\n", res.ID, res.Claim)
		for _, t := range res.Tables {
			fmt.Fprintln(w, t.String())
		}
	}
}

// --- shared fixtures --------------------------------------------------------

// chainSystem builds the standard 3-task chain deployment.
func chainSystem(seed uint64, f, nodes int, horizon uint64) (*core.System, error) {
	return core.NewSystem(core.Config{
		Seed:     seed,
		Workload: flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA),
		Topology: network.FullMesh(nodes, 20_000_000, 50*sim.Microsecond),
		PlanOpts: plan.DefaultOptions(f, 500*sim.Millisecond),
		Horizon:  horizon,
	})
}

// firstActuatingSinkNode returns the node whose sink replica actuates
// first in the base plan (ties resolved by node scheduling order) — the
// replica whose corruption is externally visible.
func firstActuatingSinkNode(s *core.System, sink flow.TaskID) network.NodeID {
	base := s.Strategy.Plans[""]
	bestNode := network.NodeID(-1)
	var bestFinish sim.Time
	for _, id := range base.Aug.TaskIDs() {
		logical, _ := plan.SplitReplica(id)
		if logical != sink {
			continue
		}
		fin := base.Table.Finish[id]
		node := base.Assign[id]
		if bestNode == -1 || fin < bestFinish || (fin == bestFinish && node < bestNode) {
			bestNode, bestFinish = node, fin
		}
	}
	return bestNode
}

func boolMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
