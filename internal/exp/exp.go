// Package exp implements the reproduction experiments E1–E10 (see
// DESIGN.md §3 and EXPERIMENTS.md) plus the campaign sweep families C1–C3.
// "Fault Tolerance and the Five-Second Rule" is a HotOS position paper
// without numbered tables or figures, so each experiment regenerates one
// of its quantitative *claims*; the tables printed here are the
// repository's equivalent of the paper's evaluation.
//
// Every experiment is a declarative campaign.Scenario: an enumeration of
// independent trials (each owning its own deterministic simulation
// kernel) plus an aggregation fold into plain-text tables. The scenario
// table (Scenarios) is the single source of truth; the serial path
// (RunAll, cmd/btrbench) and the parallel path (cmd/btrcampaign,
// RunAllWorkers) run the very same trials, so their tables are
// byte-identical for any worker count.
package exp

import (
	"fmt"
	"io"
	"sort"

	"btr/internal/campaign"
	"btr/internal/core"
	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// Result is one experiment's output.
type Result struct {
	ID     string
	Claim  string // the paper claim being reproduced
	Tables []*metrics.Table
}

// Experiment is a runnable experiment definition.
type Experiment struct {
	ID  string
	Run func(seed uint64, quick bool) Result
}

// Scenarios lists every scenario in order: the paper reproductions E1–E10,
// the simulated campaign sweep families C1–C4, the live wall-clock soak
// family C5, the membership-churn family C6, the multi-process TCP
// deployment family C7, the high-fault-rate family C8, the saturation
// family C9, the multifault family C10, and the client-SLO family C11.
// Families: "paper", "campaign", "churn", and "faultrate" are
// deterministic (byte-identical tables for any seed+worker count);
// "live", "liveproc", "saturation", "multifault", and "clientslo" run
// on the wall clock and their tables carry real measured timings.
func Scenarios() []campaign.Scenario {
	return []campaign.Scenario{
		e1Scenario(),
		e2Scenario(),
		e3Scenario(),
		e4Scenario(),
		e5Scenario(),
		e6Scenario(),
		e7Scenario(),
		e8Scenario(),
		e9Scenario(),
		e10Scenario(),
		c1Colluding(),
		c2Topology(),
		c3ClockSkew(),
		c4PlanCache(),
		C5Scenario(),
		C6Scenario(),
		C7Scenario(),
		C8Scenario(),
		C9Scenario(),
		C10Scenario(),
		C11Scenario(),
	}
}

// DeterministicScenarios returns every scenario whose tables are pinned
// byte-identical (everything except the wall-clock families "live",
// "liveproc", "saturation", "multifault", and "clientslo" — the C10
// storms and C11 client loads run real processes; C10's sweep half has
// a dedicated byte-identity test).
func DeterministicScenarios() []campaign.Scenario {
	var out []campaign.Scenario
	for _, sc := range Scenarios() {
		switch sc.Family {
		case "live", "liveproc", "saturation", "multifault", "clientslo":
		default:
			out = append(out, sc)
		}
	}
	return out
}

// PaperScenarios returns only the E1–E10 paper reproductions.
func PaperScenarios() []campaign.Scenario {
	var out []campaign.Scenario
	for _, sc := range Scenarios() {
		if sc.Family == "paper" {
			out = append(out, sc)
		}
	}
	return out
}

// All lists every paper experiment in order, as serially runnable
// Experiments (each Run executes the scenario's trials on one worker).
func All() []Experiment {
	var out []Experiment
	for _, sc := range PaperScenarios() {
		sc := sc
		out = append(out, Experiment{ID: sc.ID, Run: func(seed uint64, quick bool) Result {
			res := campaign.Run([]campaign.Scenario{sc}, campaign.Options{
				Workers: 1,
				Params:  campaign.Params{Seed: seed, Quick: quick},
			})
			return Result{ID: sc.ID, Claim: sc.Claim, Tables: res[0].Tables}
		}})
	}
	return out
}

// RunAll executes every paper experiment serially and writes the tables
// to w.
func RunAll(w io.Writer, seed uint64, quick bool) {
	RunAllWorkers(w, seed, quick, 1)
}

// RunAllWorkers executes every paper experiment through the campaign
// runner with the given worker count and writes the tables to w in
// experiment order. Output is identical for every worker count.
func RunAllWorkers(w io.Writer, seed uint64, quick bool, workers int) {
	results := campaign.Run(PaperScenarios(), campaign.Options{
		Workers: workers,
		Params:  campaign.Params{Seed: seed, Quick: quick},
	})
	for _, r := range results {
		WriteResult(w, r)
	}
}

// WriteResult renders one scenario result in the btrbench text format.
func WriteResult(w io.Writer, r campaign.ScenarioResult) {
	fmt.Fprintf(w, "---- %s: %s ----\n", r.ID, r.Claim)
	for _, t := range r.Tables {
		fmt.Fprintln(w, t.String())
	}
}

// --- shared fixtures --------------------------------------------------------

// chainSystem builds the standard 3-task chain deployment.
func chainSystem(seed uint64, f, nodes int, horizon uint64) (*core.System, error) {
	return core.NewSystem(core.Config{
		Seed:     seed,
		Workload: flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA),
		Topology: network.FullMesh(nodes, 20_000_000, 50*sim.Microsecond),
		PlanOpts: plan.DefaultOptions(f, 500*sim.Millisecond),
		Horizon:  horizon,
	})
}

// firstActuatingSinkNode returns the node whose sink replica actuates
// first in the base plan (ties resolved by node scheduling order) — the
// replica whose corruption is externally visible.
func firstActuatingSinkNode(s *core.System, sink flow.TaskID) network.NodeID {
	return firstSinkHostOfPlan(s.Strategy.Plans[""], sink)
}

// firstSinkHostOfPlan returns the node hosting the earliest-finishing
// replica of the given sink in the plan.
func firstSinkHostOfPlan(base *plan.Plan, sink flow.TaskID) network.NodeID {
	bestNode := network.NodeID(-1)
	var bestFinish sim.Time
	for _, id := range base.Aug.TaskIDs() {
		logical, _ := plan.SplitReplica(id)
		if logical != sink {
			continue
		}
		fin := base.Table.Finish[id]
		node := base.Assign[id]
		if bestNode == -1 || fin < bestFinish || (fin == bestFinish && node < bestNode) {
			bestNode, bestFinish = node, fin
		}
	}
	return bestNode
}

func boolMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// dominantEvidence names the evidence kind to report for a run: want if it
// was observed, otherwise the lowest-numbered observed kind (sorted so the
// choice is deterministic).
func dominantEvidence(byKind map[evidence.Kind]int, want evidence.Kind) string {
	if byKind[want] > 0 {
		return want.String()
	}
	kinds := make([]int, 0, len(byKind))
	for k, c := range byKind {
		if c > 0 {
			kinds = append(kinds, int(k))
		}
	}
	sort.Ints(kinds)
	if len(kinds) == 0 {
		return ""
	}
	return evidence.Kind(kinds[0]).String()
}

// failedRow renders a placeholder first cell for a failed trial's table
// row.
func failedRow(name string) string { return name + " [trial failed]" }
