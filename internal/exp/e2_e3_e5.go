package exp

import (
	"fmt"
	"strings"

	"btr/internal/adversary"
	"btr/internal/baseline"
	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// E2ReplicaCost reproduces §1's "detection requires fewer replicas than
// masking": replica counts, peak CPU utilization, and per-period network
// bytes for BTR vs BFT vs ZZ vs unreplicated, as f grows.
func E2ReplicaCost(seed uint64, quick bool) Result {
	t := metrics.NewTable("E2: replication cost vs fault bound f (chain workload)",
		"f", "protocol", "replicas/task", "peak CPU util", "net bytes/period", "schedulable")
	fs := []int{1, 2, 3}
	if quick {
		fs = []int{1, 2}
	}
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	for _, f := range fs {
		nodes := 3*f + 1 + 3 // enough for BFT anti-affinity plus headroom
		topo := network.FullMesh(nodes, 20_000_000, 50*sim.Microsecond)
		for _, p := range []baseline.Protocol{baseline.BTR, baseline.BFTMask, baseline.ZZReactive, baseline.Unreplicated} {
			util, bytes := baseline.Utilization(p, g, topo, f)
			ns, _ := baseline.ReplicaFactor(p, f)
			sched := util > 0
			utilStr := "-"
			if sched {
				utilStr = fmt.Sprintf("%.3f", util)
			}
			t.AddRow(f, p.String(), ns, utilStr, bytes, boolMark(sched))
		}
	}
	t.Note("BTR replicas = f+1 (+checkers); BFT = 3f+1; bytes include per-protocol framing (BTR carries accountability attachments)")
	return Result{
		ID:     "E2",
		Claim:  "detection requires fewer replicas than masking (f+1 vs 3f+1)",
		Tables: []*metrics.Table{t},
	}
}

// E3ClockFrequency reproduces §2's cost framing: CPS designers pick "the
// least powerful CPU that will do the job, at the lowest possible clock
// frequency" — what is the minimum speed factor per protocol?
func E3ClockFrequency(seed uint64, quick bool) Result {
	t := metrics.NewTable("E3: minimum CPU speed factor to meet all deadlines (f=1)",
		"workload", "protocol", "min speed", "vs unreplicated")
	workloads := []*flow.Graph{
		flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA),
		flow.ForkJoin(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritB),
	}
	if quick {
		workloads = workloads[:1]
	}
	topo := network.FullMesh(8, 20_000_000, 50*sim.Microsecond)
	for _, g := range workloads {
		ref := baseline.MinSpeed(baseline.Unreplicated, g, topo, 1)
		for _, p := range []baseline.Protocol{baseline.Unreplicated, baseline.BTR, baseline.BFTMask} {
			ms := baseline.MinSpeed(p, g, topo, 1)
			rel := "-"
			if ms > 0 && ref > 0 {
				rel = fmt.Sprintf("%.2fx", ms/ref)
			}
			t.AddRow(g.Name, p.String(), fmt.Sprintf("%.3f", ms), rel)
		}
	}
	t.Note("binary search over the speed factor; higher = needs a faster (more expensive, hotter) CPU")
	return Result{
		ID:     "E3",
		Claim:  "BFT's strong guarantees cost clock frequency that CPS designers are reluctant to pay (§2)",
		Tables: []*metrics.Table{t},
	}
}

// E5MixedCriticality reproduces the fine-grained degradation claim (§1,
// §4.1): as faults accumulate, the planner sheds the least critical sinks
// first and the flight-critical outputs keep their deadlines.
func E5MixedCriticality(seed uint64, quick bool) Result {
	t := metrics.NewTable("E5: mixed-criticality degradation (avionics on 8 nodes, f=2)",
		"faults", "running sinks", "shed sinks", "peak CPU util", "A-deadline ok")

	g := flow.Avionics(25 * sim.Millisecond)
	topo := network.FullMesh(8, 20_000_000, 50*sim.Microsecond)
	opts := plan.DefaultOptions(2, sim.Second)
	strategy, err := plan.Build(g, topo, opts)
	if err != nil {
		panic(err)
	}
	for _, key := range []string{"", "0", "0,1"} {
		p := strategy.Plans[key]
		var running, shed []string
		shedSet := map[flow.TaskID]bool{}
		for _, sk := range p.ShedSinks {
			shedSet[sk] = true
			shed = append(shed, fmt.Sprintf("%s(%v)", sk, g.Tasks[sk].Crit))
		}
		for _, sk := range g.Sinks() {
			if !shedSet[sk] {
				running = append(running, fmt.Sprintf("%s(%v)", sk, g.Tasks[sk].Crit))
			}
		}
		_, util := p.Table.MaxUtilization()
		// Flight-control deadline holds in the mode's static table.
		aOK := true
		for _, id := range p.Aug.TaskIDs() {
			logical, _ := plan.SplitReplica(id)
			if logical == "elevator" && p.Table.Finish[id] > g.Tasks["elevator"].Deadline {
				aOK = false
			}
		}
		t.AddRow(len(p.Faults.Nodes()), strings.Join(running, " "),
			strings.Join(shed, " "), fmt.Sprintf("%.3f", util), boolMark(aOK))
	}

	// Confirm at runtime: with one crash, the elevator output stays
	// correct on every period.
	t2 := metrics.NewTable("E5b: runtime check — elevator correctness across one crash",
		"sink", "criticality", "wrong periods", "missed periods")
	sys, err := core.NewSystem(core.Config{
		Seed: seed, Workload: g, Topology: topo,
		PlanOpts: opts, Horizon: 30,
	})
	if err != nil {
		panic(err)
	}
	adversary.Crash(0, 4*g.Period).Install(sys)
	rep := sys.Run()
	for _, sk := range []flow.TaskID{"elevator", "valve"} {
		bad := rep.PerSink[sk].FalseIntervals(rep.Horizon)
		t2.AddRow(sk, g.Tasks[sk].Crit, len(bad), 0)
	}
	_ = rep
	return Result{
		ID:     "E5",
		Claim:  "on faults, disable less critical tasks and reallocate their resources to more critical ones",
		Tables: []*metrics.Table{t, t2},
	}
}
