package exp

import (
	"fmt"
	"strings"

	"btr/internal/adversary"
	"btr/internal/baseline"
	"btr/internal/campaign"
	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// --- E2: replication cost vs f ----------------------------------------------

type e2Row struct {
	F        int
	Protocol string
	Replicas int
	Util     string
	Bytes    int64
	Sched    bool
}

// e2Scenario reproduces §1's "detection requires fewer replicas than
// masking": replica counts, peak CPU utilization, and per-period network
// bytes for BTR vs BFT vs ZZ vs unreplicated, as f grows.
func e2Scenario() campaign.Scenario {
	fsOf := func(p campaign.Params) []int {
		if p.Quick {
			return []int{1, 2}
		}
		return []int{1, 2, 3}
	}
	return campaign.Scenario{
		ID:     "E2",
		Family: "paper",
		Claim:  "detection requires fewer replicas than masking (f+1 vs 3f+1)",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for _, f := range fsOf(p) {
				f := f
				specs = append(specs, campaign.TrialSpec{Name: fmt.Sprintf("f=%d", f), Run: func(t *campaign.T) (any, error) {
					g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
					nodes := 3*f + 1 + 3 // enough for BFT anti-affinity plus headroom
					topo := network.FullMesh(nodes, 20_000_000, 50*sim.Microsecond)
					var rows []e2Row
					for _, pr := range []baseline.Protocol{baseline.BTR, baseline.BFTMask, baseline.ZZReactive, baseline.Unreplicated} {
						util, bytes := baseline.Utilization(pr, g, topo, f)
						ns, _ := baseline.ReplicaFactor(pr, f)
						sched := util > 0
						utilStr := "-"
						if sched {
							utilStr = fmt.Sprintf("%.3f", util)
						}
						rows = append(rows, e2Row{F: f, Protocol: pr.String(), Replicas: ns, Util: utilStr, Bytes: bytes, Sched: sched})
					}
					return rows, nil
				}})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable("E2: replication cost vs fault bound f (chain workload)",
				"f", "protocol", "replicas/task", "peak CPU util", "net bytes/period", "schedulable")
			fs := fsOf(p)
			for i, tr := range trials {
				rows, ok := campaign.Value[[]e2Row](tr)
				if !ok {
					t.AddRow(failedRow(fmt.Sprintf("f=%d", fs[i])), "-", "-", "-", "-", "-")
					continue
				}
				for _, r := range rows {
					t.AddRow(r.F, r.Protocol, r.Replicas, r.Util, r.Bytes, boolMark(r.Sched))
				}
			}
			t.Note("BTR replicas = f+1 (+checkers); BFT = 3f+1; bytes include per-protocol framing (BTR carries accountability attachments)")
			return []*metrics.Table{t}
		},
	}
}

// --- E3: minimum clock frequency --------------------------------------------

type e3Row struct {
	Workload string
	Protocol string
	MinSpeed float64
	Rel      string
}

// e3Scenario reproduces §2's cost framing: CPS designers pick "the least
// powerful CPU that will do the job, at the lowest possible clock
// frequency" — what is the minimum speed factor per protocol?
func e3Scenario() campaign.Scenario {
	workloadsOf := func(p campaign.Params) []*flow.Graph {
		ws := []*flow.Graph{
			flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA),
			flow.ForkJoin(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritB),
		}
		if p.Quick {
			ws = ws[:1]
		}
		return ws
	}
	return campaign.Scenario{
		ID:     "E3",
		Family: "paper",
		Claim:  "BFT's strong guarantees cost clock frequency that CPS designers are reluctant to pay (§2)",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for _, g := range workloadsOf(p) {
				g := g
				specs = append(specs, campaign.TrialSpec{Name: g.Name, Run: func(t *campaign.T) (any, error) {
					topo := network.FullMesh(8, 20_000_000, 50*sim.Microsecond)
					ref := baseline.MinSpeed(baseline.Unreplicated, g, topo, 1)
					var rows []e3Row
					for _, pr := range []baseline.Protocol{baseline.Unreplicated, baseline.BTR, baseline.BFTMask} {
						ms := baseline.MinSpeed(pr, g, topo, 1)
						rel := "-"
						if ms > 0 && ref > 0 {
							rel = fmt.Sprintf("%.2fx", ms/ref)
						}
						rows = append(rows, e3Row{Workload: g.Name, Protocol: pr.String(), MinSpeed: ms, Rel: rel})
					}
					return rows, nil
				}})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable("E3: minimum CPU speed factor to meet all deadlines (f=1)",
				"workload", "protocol", "min speed", "vs unreplicated")
			for _, tr := range trials {
				rows, ok := campaign.Value[[]e3Row](tr)
				if !ok {
					t.AddRow(failedRow(tr.Name), "-", "-", "-")
					continue
				}
				for _, r := range rows {
					t.AddRow(r.Workload, r.Protocol, fmt.Sprintf("%.3f", r.MinSpeed), r.Rel)
				}
			}
			t.Note("binary search over the speed factor; higher = needs a faster (more expensive, hotter) CPU")
			return []*metrics.Table{t}
		},
	}
}

// --- E5: mixed-criticality degradation --------------------------------------

type e5PlanRow struct {
	Faults  int
	Running string
	Shed    string
	Util    float64
	AOK     bool
}

type e5RuntimeRow struct {
	Sink   string
	Crit   string
	Wrong  int
	Missed int
}

// e5Scenario reproduces the fine-grained degradation claim (§1, §4.1): as
// faults accumulate, the planner sheds the least critical sinks first and
// the flight-critical outputs keep their deadlines.
func e5Scenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "E5",
		Family: "paper",
		Claim:  "on faults, disable less critical tasks and reallocate their resources to more critical ones",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			return []campaign.TrialSpec{
				{Name: "planner-degradation", Run: func(t *campaign.T) (any, error) {
					g := flow.Avionics(25 * sim.Millisecond)
					topo := network.FullMesh(8, 20_000_000, 50*sim.Microsecond)
					strategy, err := plan.Build(g, topo, plan.DefaultOptions(2, sim.Second))
					if err != nil {
						return nil, err
					}
					var rows []e5PlanRow
					for _, key := range []string{"", "0", "0,1"} {
						pl := strategy.Plans[key]
						var running, shed []string
						shedSet := map[flow.TaskID]bool{}
						for _, sk := range pl.ShedSinks {
							shedSet[sk] = true
							shed = append(shed, fmt.Sprintf("%s(%v)", sk, g.Tasks[sk].Crit))
						}
						for _, sk := range g.Sinks() {
							if !shedSet[sk] {
								running = append(running, fmt.Sprintf("%s(%v)", sk, g.Tasks[sk].Crit))
							}
						}
						_, util := pl.Table.MaxUtilization()
						// Flight-control deadline holds in the mode's static table.
						aOK := true
						for _, id := range pl.Aug.TaskIDs() {
							logical, _ := plan.SplitReplica(id)
							if logical == "elevator" && pl.Table.Finish[id] > g.Tasks["elevator"].Deadline {
								aOK = false
							}
						}
						rows = append(rows, e5PlanRow{
							Faults:  len(pl.Faults.Nodes()),
							Running: strings.Join(running, " "),
							Shed:    strings.Join(shed, " "),
							Util:    util,
							AOK:     aOK,
						})
					}
					return rows, nil
				}},
				{Name: "runtime-crash-check", Run: func(t *campaign.T) (any, error) {
					g := flow.Avionics(25 * sim.Millisecond)
					sys, err := core.NewSystem(core.Config{
						Seed: p.Seed, Workload: g,
						Topology: network.FullMesh(8, 20_000_000, 50*sim.Microsecond),
						PlanOpts: plan.DefaultOptions(2, sim.Second), Horizon: 30,
					})
					if err != nil {
						return nil, err
					}
					adversary.Crash(0, 4*g.Period).Install(sys)
					rep := sys.Run()
					var rows []e5RuntimeRow
					for _, sk := range []flow.TaskID{"elevator", "valve"} {
						bad := rep.PerSink[sk].FalseIntervals(rep.Horizon)
						rows = append(rows, e5RuntimeRow{
							Sink: string(sk), Crit: fmt.Sprint(g.Tasks[sk].Crit), Wrong: len(bad),
						})
					}
					return rows, nil
				}},
			}
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable("E5: mixed-criticality degradation (avionics on 8 nodes, f=2)",
				"faults", "running sinks", "shed sinks", "peak CPU util", "A-deadline ok")
			if rows, ok := campaign.Value[[]e5PlanRow](trials[0]); ok {
				for _, r := range rows {
					t.AddRow(r.Faults, r.Running, r.Shed, fmt.Sprintf("%.3f", r.Util), boolMark(r.AOK))
				}
			} else {
				t.AddRow(failedRow("planner-degradation"), "-", "-", "-", "-")
			}
			t2 := metrics.NewTable("E5b: runtime check — elevator correctness across one crash",
				"sink", "criticality", "wrong periods", "missed periods")
			if rows, ok := campaign.Value[[]e5RuntimeRow](trials[1]); ok {
				for _, r := range rows {
					t2.AddRow(r.Sink, r.Crit, r.Wrong, r.Missed)
				}
			} else {
				t2.AddRow(failedRow("runtime-crash-check"), "-", "-", "-")
			}
			return []*metrics.Table{t, t2}
		},
	}
}
