package exp

// The C-family scenarios are campaign-only sweeps that go beyond the
// paper's E1–E10 reproductions: Monte Carlo colluding-adversary sweeps
// over the internal/adversary behavior catalog (C1), topology-family
// scaling (C2), and clock-skew sweeps over internal/clock ensembles (C3).
// They exist to widen the explored failure space — the credibility of a
// bounded-recovery claim scales with the number of fault scenarios swept,
// not with any single trace.

import (
	"fmt"
	"strings"

	"btr/internal/adversary"
	"btr/internal/campaign"
	"btr/internal/clock"
	"btr/internal/core"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// --- C1: colluding-adversary Monte Carlo sweep ------------------------------

// c1Behavior is one entry of the attack catalog the colluders draw from.
type c1Behavior struct {
	name string
	mk   func(node network.NodeID, logical flow.TaskID, at sim.Time) adversary.Attack
}

func c1Catalog() []c1Behavior {
	return []c1Behavior{
		{"crash", func(n network.NodeID, l flow.TaskID, at sim.Time) adversary.Attack {
			return adversary.Crash(n, at)
		}},
		{"corrupt-all", func(n network.NodeID, l flow.TaskID, at sim.Time) adversary.Attack {
			return adversary.CorruptEverything(n, at)
		}},
		{"corrupt-task", func(n network.NodeID, l flow.TaskID, at sim.Time) adversary.Attack {
			return adversary.CorruptTask(n, l, at)
		}},
		{"omit", func(n network.NodeID, l flow.TaskID, at sim.Time) adversary.Attack {
			return adversary.Omit(n, l, at)
		}},
		{"equivocate", func(n network.NodeID, l flow.TaskID, at sim.Time) adversary.Attack {
			return adversary.Equivocate(n, l, at)
		}},
		{"timestamp-lie", func(n network.NodeID, l flow.TaskID, at sim.Time) adversary.Attack {
			return adversary.LieAboutSendTime(n, l, 10*sim.Millisecond, at)
		}},
	}
}

type c1Row struct {
	K        int
	Attacks  string
	TotalBad sim.Time
	Recovery sim.Time
	Bound    sim.Time
}

func c1Reps(p campaign.Params) int {
	reps := 4
	if p.Quick {
		reps = 2
	}
	return reps * p.Trials
}

// c1Colluding sweeps random colluding-adversary schedules: k ≤ f
// compromised nodes, each running a behavior drawn from the catalog,
// staggered R apart (the §3 worst case generalized from one behavior to
// the full behavior space). The claim under test: total incorrect-output
// time stays within k·R no matter which behaviors collude.
func c1Colluding() campaign.Scenario {
	const f, nodes = 2, 10
	return campaign.Scenario{
		ID:     "C1",
		Family: "campaign",
		Claim:  "any k≤f colluding behaviors from the catalog keep total bad output within k·R (Monte Carlo)",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for k := 1; k <= f; k++ {
				for rep := 0; rep < c1Reps(p); rep++ {
					k := k
					specs = append(specs, campaign.TrialSpec{
						Name: fmt.Sprintf("collude/k=%d/rep=%d", k, rep),
						Run: func(t *campaign.T) (any, error) {
							s, err := chainSystem(t.TrialSeed(), f, nodes, uint64(30+25*k))
							if err != nil {
								return nil, err
							}
							rng := t.RNG()
							period := s.Cfg.Workload.Period
							gap := s.Strategy.RNeeded + 2*period
							cat := c1Catalog()
							victims := pickColluders(s, rng, k)
							var names []string
							for i, v := range victims {
								b := cat[rng.Intn(len(cat))]
								// Attack a logical task the victim actually
								// hosts, so the behavior can manifest.
								hosted := v.logicals
								l := hosted[rng.Intn(len(hosted))]
								at := 5*period + sim.Time(i)*gap
								b.mk(v.node, l, at).Install(s)
								names = append(names, fmt.Sprintf("%s(%d,%s)", b.name, v.node, l))
							}
							rep := s.Run()
							return c1Row{
								K:        k,
								Attacks:  strings.Join(names, "+"),
								TotalBad: rep.TotalBadTime(),
								Recovery: rep.MaxRecovery(),
								Bound:    sim.Time(k) * rep.RNeeded,
							}, nil
						},
					})
				}
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable(fmt.Sprintf("C1: colluding-adversary sweep (chain, f=%d, %d nodes, %d random schedules/k)", f, nodes, c1Reps(p)),
				"k (colluders)", "trials", "masked", "worst total bad", "mean total bad", "bound k·R", "all within k·R")
			for k := 1; k <= f; k++ {
				bad := metrics.NewSeries("bad")
				var bound sim.Time
				n, within, masked := 0, 0, 0
				for _, tr := range trials {
					row, ok := campaign.Value[c1Row](tr)
					if !ok || row.K != k {
						continue
					}
					n++
					bad.AddTime(row.TotalBad)
					bound = row.Bound
					if row.TotalBad <= row.Bound {
						within++
					}
					if row.TotalBad == 0 {
						masked++
					}
				}
				t.AddRow(k, n, masked,
					fmt.Sprintf("%.1fms", bad.Max()),
					fmt.Sprintf("%.1fms", bad.Mean()),
					bound, boolMark(within == n && n > 0))
			}
			if note := campaign.FailNote(trials); note != "" {
				t.Note("%s", note)
			}
			t.Note("first colluder is the first-actuating sink host (the externally visible victim); behaviors drawn uniformly from {crash, corrupt-all, corrupt-task, omit, equivocate, timestamp-lie}, staggered R apart")
			return []*metrics.Table{t}
		},
	}
}

// colluder is one victim node together with the logical tasks it hosts in
// the base plan.
type colluder struct {
	node     network.NodeID
	logicals []flow.TaskID
}

// pickColluders draws k distinct victim nodes from the replica-hosting
// nodes of the base plan, using the trial's private generator. Each comes
// with its hosted logical tasks so attacks can target work the node
// actually does.
func pickColluders(s *core.System, rng *sim.RNG, k int) []colluder {
	base := s.Strategy.Plans[""]
	byNode := map[network.NodeID][]flow.TaskID{}
	var hosts []network.NodeID
	for _, id := range base.Aug.TaskIDs() { // deterministic order
		n := base.Assign[id]
		logical, _ := plan.SplitReplica(id)
		if _, ok := byNode[n]; !ok {
			hosts = append(hosts, n)
		}
		dup := false
		for _, l := range byNode[n] {
			if l == logical {
				dup = true
			}
		}
		if !dup {
			byNode[n] = append(byNode[n], logical)
		}
	}
	if k > len(hosts) {
		k = len(hosts)
	}
	// The first colluder is always the first-actuating sink replica's node
	// — the only single victim whose corruption is externally visible (the
	// E4 worst case); the rest are drawn uniformly.
	visible := firstActuatingSinkNode(s, "c2")
	out := []colluder{{node: visible, logicals: byNode[visible]}}
	for _, i := range rng.Perm(len(hosts)) {
		if len(out) >= k {
			break
		}
		if hosts[i] != visible {
			out = append(out, colluder{node: hosts[i], logicals: byNode[hosts[i]]})
		}
	}
	return out
}

// --- C2: topology-family scaling sweep --------------------------------------

type c2Case struct {
	kind string
	n    int
	f    int
	mk   func(n int) *network.Topology
}

func c2Cases(p campaign.Params) []c2Case {
	mesh := func(n int) *network.Topology { return network.FullMesh(n, 20_000_000, 50*sim.Microsecond) }
	dual := func(n int) *network.Topology { return network.DualBus(n, 20_000_000, 50*sim.Microsecond) }
	grid := func(n int) *network.Topology { return network.Grid(3, 3, 20_000_000, 50*sim.Microsecond) }
	ring := func(n int) *network.Topology { return network.Ring(n, 20_000_000, 50*sim.Microsecond) }
	cases := []c2Case{
		{"full-mesh", 6, 1, mesh},
		{"full-mesh", 8, 2, mesh},
		{"full-mesh", 10, 2, mesh},
		{"full-mesh", 12, 2, mesh},
		{"dual-bus", 6, 1, dual},
		{"dual-bus", 8, 1, dual},
		{"grid-3x3", 9, 1, grid},
		{"ring", 8, 1, ring},
	}
	if p.Quick {
		cases = []c2Case{cases[0], cases[1], cases[4], cases[7]}
	}
	return cases
}

type c2Row struct {
	Sched    bool
	PlanErr  string
	Plans    int
	R        sim.Time
	Recovery sim.Time
}

// c2Topology sweeps the deployment topology family and size: can the
// planner still find an R-bounded strategy, and does the runtime still
// recover within it, when the full mesh is replaced by the sparse
// interconnects real CPS platforms use (dual buses, grids, rings)?
func c2Topology() campaign.Scenario {
	return campaign.Scenario{
		ID:     "C2",
		Family: "campaign",
		Claim:  "the recovery bound survives topology scaling: sparse interconnects either plan within R or fail loudly at plan time",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			horizon := uint64(30)
			if p.Quick {
				horizon = 20
			}
			var specs []campaign.TrialSpec
			for _, c := range c2Cases(p) {
				c := c
				specs = append(specs, campaign.TrialSpec{
					Name: fmt.Sprintf("topo/%s/n=%d", c.kind, c.n),
					Run: func(t *campaign.T) (any, error) {
						sys, err := core.NewSystem(core.Config{
							Seed:     p.Seed,
							Workload: flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA),
							Topology: c.mk(c.n),
							PlanOpts: plan.DefaultOptions(c.f, 500*sim.Millisecond),
							Horizon:  horizon,
						})
						if err != nil {
							// Unschedulable is a sweep result, not a failure.
							return c2Row{Sched: false, PlanErr: campaign.FirstLine(err.Error())}, nil
						}
						period := sys.Cfg.Workload.Period
						victim := firstActuatingSinkNode(sys, "c2")
						adversary.CorruptTask(victim, "c2", 5*period).Install(sys)
						rep := sys.Run()
						return c2Row{
							Sched:    true,
							Plans:    len(sys.Strategy.Plans),
							R:        rep.RNeeded,
							Recovery: rep.MaxRecovery(),
						}, nil
					},
				})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable("C2: topology scaling (chain workload, sink commission fault)",
				"topology", "nodes", "f", "schedulable", "plans", "bound R", "measured recovery", "within R")
			cases := c2Cases(p)
			for i, tr := range trials {
				c := cases[i]
				row, ok := campaign.Value[c2Row](tr)
				if !ok {
					t.AddRow(failedRow(c.kind), c.n, c.f, "-", "-", "-", "-", "-")
					continue
				}
				if !row.Sched {
					t.AddRow(c.kind, c.n, c.f, "no: "+row.PlanErr, "-", "-", "-", "-")
					continue
				}
				t.AddRow(c.kind, c.n, c.f, "yes", row.Plans, row.R, row.Recovery,
					boolMark(row.Recovery <= row.R))
			}
			t.Note("an unschedulable topology is the correct answer when no placement meets R — the planner must refuse, not degrade silently")
			return []*metrics.Table{t}
		},
	}
}

// --- C3: clock-skew sweep ---------------------------------------------------

type c3Point struct {
	drift    float64 // max per-clock drift (fraction)
	interval sim.Time
}

func c3Points(p campaign.Params) []c3Point {
	pts := []c3Point{
		{10e-6, 100 * sim.Millisecond},
		{50e-6, 100 * sim.Millisecond},
		{200e-6, 100 * sim.Millisecond},
		{50e-6, 500 * sim.Millisecond},
		{200e-6, 500 * sim.Millisecond},
		{50e-6, sim.Second},
	}
	if p.Quick {
		pts = []c3Point{pts[1], pts[4]}
	}
	return pts
}

type c3Row struct {
	WorstSkew sim.Time
	Bound     sim.Time
	Margin    sim.Time
}

// c3ClockSkew sweeps oscillator drift and sync interval for a Welch–Lynch
// ensemble with f Byzantine clocks lying adversarially, checking the
// measured steady-state skew against the analytic bound the planner's
// watchdog margin is derived from. Each sweep point runs p.Trials
// independent random ensembles.
func c3ClockSkew() campaign.Scenario {
	const n, f = 10, 2
	rounds := 40
	return campaign.Scenario{
		ID:     "C3",
		Family: "campaign",
		Claim:  "measured ensemble skew under Byzantine clocks stays within the analytic bound the watchdog margin assumes",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for _, pt := range c3Points(p) {
				for rep := 0; rep < p.Trials; rep++ {
					pt := pt
					specs = append(specs, campaign.TrialSpec{
						Name: fmt.Sprintf("skew/%.0fppm/%v/rep=%d", pt.drift*1e6, pt.interval, rep),
						Run: func(t *campaign.T) (any, error) {
							rng := t.RNG()
							e := clock.NewEnsemble(rng, n, f, pt.drift, 5*sim.Millisecond)
							// f Byzantine clocks lie with random extreme
							// offsets, drawn from the trial's private stream.
							for _, i := range rng.Perm(n)[:f] {
								off := rng.Duration(2*sim.Minute) - sim.Minute
								e.Byzantine[i] = func(now sim.Time) sim.Time { return now + off }
							}
							e.Run(0, pt.interval, 5) // settle from initial offsets
							now := 5 * pt.interval
							var worst sim.Time
							for r := 0; r < rounds; r++ {
								now += pt.interval
								if s := e.Skew(now); s > worst {
									worst = s
								}
								e.SyncRound(now)
							}
							return c3Row{
								WorstSkew: worst,
								Bound:     clock.SkewBound(pt.drift, pt.interval),
								Margin:    clock.WatchdogMarginFor(pt.drift, pt.interval, sim.Millisecond),
							}, nil
						},
					})
				}
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable(fmt.Sprintf("C3: clock-skew sweep (Welch–Lynch, n=%d, f=%d Byzantine, %d rounds, %d ensemble(s)/point)", n, f, rounds, p.Trials),
				"max drift", "sync interval", "worst skew", "bound", "watchdog margin", "within bound")
			pts := c3Points(p)
			for i, pt := range pts {
				worst := metrics.NewSeries("skew")
				var bound, margin sim.Time
				nOK, within := 0, 0
				for rep := 0; rep < p.Trials; rep++ {
					row, ok := campaign.Value[c3Row](trials[i*p.Trials+rep])
					if !ok {
						continue
					}
					nOK++
					worst.AddTime(row.WorstSkew)
					bound, margin = row.Bound, row.Margin
					if row.WorstSkew <= row.Bound {
						within++
					}
				}
				if nOK == 0 {
					t.AddRow(failedRow(fmt.Sprintf("%.0fppm", pt.drift*1e6)), pt.interval, "-", "-", "-", "-")
					continue
				}
				t.AddRow(fmt.Sprintf("%.0fppm", pt.drift*1e6), pt.interval,
					sim.FromSeconds(worst.Max()/1000), bound, margin,
					boolMark(within == nOK))
			}
			t.Note("the planner's WatchdogMargin must dominate the bound column; 2×bound + 1ms jitter shown for comparison")
			return []*metrics.Table{t}
		},
	}
}
