package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// runExp executes one experiment in quick mode.
func runExp(t *testing.T, id string) Result {
	t.Helper()
	for _, e := range All() {
		if e.ID == id {
			return e.Run(1, true)
		}
	}
	t.Fatalf("unknown experiment %s", id)
	return Result{}
}

func rendered(r Result) string {
	var b bytes.Buffer
	for _, tb := range r.Tables {
		b.WriteString(tb.String())
	}
	return b.String()
}

func TestE1AllWithinBound(t *testing.T) {
	out := rendered(runExp(t, "E1"))
	if strings.Contains(out, "NO") {
		t.Errorf("E1 has a fault type outside the bound:\n%s", out)
	}
	if !strings.Contains(out, "crash") || !strings.Contains(out, "omission") {
		t.Errorf("E1 missing fault rows:\n%s", out)
	}
}

func TestE2ShowsReplicaGap(t *testing.T) {
	out := rendered(runExp(t, "E2"))
	if !strings.Contains(out, "BFT(3f+1)") || !strings.Contains(out, "BTR") {
		t.Errorf("E2 missing protocols:\n%s", out)
	}
	// f=1: BTR row shows 2 replicas, BFT shows 4.
	if !strings.Contains(out, "BTR") {
		t.Error("no BTR row")
	}
}

func TestE3SpeedOrdering(t *testing.T) {
	res := runExp(t, "E3")
	out := rendered(res)
	if !strings.Contains(out, "min speed") {
		t.Errorf("E3 table malformed:\n%s", out)
	}
	// BFT's relative factor must exceed BTR's: parse rows.
	var btrRel, bftRel string
	for _, row := range res.Tables[0].Rows {
		switch row[1] {
		case "BTR":
			btrRel = row[3]
		case "BFT(3f+1)":
			bftRel = row[3]
		}
	}
	if btrRel == "" || bftRel == "" {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !(bftRel > btrRel) { // "x.xx" strings compare numerically at equal width
		t.Errorf("BFT rel %s not above BTR rel %s", bftRel, btrRel)
	}
}

func TestE4WithinKR(t *testing.T) {
	out := rendered(runExp(t, "E4"))
	if strings.Contains(out, "NO") {
		t.Errorf("E4 exceeded k·R:\n%s", out)
	}
}

func TestE5CritAPreserved(t *testing.T) {
	res := runExp(t, "E5")
	out := rendered(res)
	if strings.Contains(out, "NO") {
		t.Errorf("E5 lost an A-criticality deadline:\n%s", out)
	}
	// Degraded modes must shed D-criticality (cabin) before anything else.
	if !strings.Contains(out, "cabin") {
		t.Errorf("E5 shows no shedding:\n%s", out)
	}
}

func TestE6BoundedUnderFlood(t *testing.T) {
	res := runExp(t, "E6")
	// With the reserved share (0.20 rows), recovery must stay within R at
	// every flood rate.
	for _, row := range res.Tables[0].Rows {
		if row[1] == "0.20" && row[4] == "NO" {
			t.Errorf("E6: flood broke the bound with reservation: %v", row)
		}
	}
}

func TestE7AblationImproves(t *testing.T) {
	res := runExp(t, "E7")
	ab := res.Tables[1]
	if len(ab.Rows) != 2 {
		t.Fatalf("ablation rows: %v", ab.Rows)
	}
	// minimal-diff must move fewer replicas than naive.
	min, err1 := strconv.ParseFloat(ab.Rows[0][1], 64)
	naive, err2 := strconv.ParseFloat(ab.Rows[1][1], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable ablation cells: %v %v", ab.Rows[0][1], ab.Rows[1][1])
	}
	if min >= naive {
		t.Errorf("minimal-diff %.1f not below naive %.1f", min, naive)
	}
}

func TestE8BreakdownSums(t *testing.T) {
	res := runExp(t, "E8")
	if len(res.Tables[0].Rows) < 2 {
		t.Fatalf("E8 rows missing")
	}
}

func TestE9PlantSafety(t *testing.T) {
	res := runExp(t, "E9")
	out := rendered(res)
	// Sub-deadline outages survive; super-deadline outages violate.
	t1 := res.Tables[0]
	for _, row := range t1.Rows {
		switch row[2] {
		case "0.5×D":
			if row[3] != "NO" && row[3] != "no" {
				t.Errorf("0.5×D outage should be survivable: %v", row)
			}
		case "2.0×D":
			if row[3] != "yes" {
				t.Errorf("2.0×D outage should violate: %v", row)
			}
		}
	}
	// BTR run kept the envelope.
	if !strings.Contains(out, "envelope violations  0") &&
		!strings.Contains(out, "envelope violations     0") {
		// Column padding varies; check the raw table rows instead.
		found := false
		for _, row := range res.Tables[1].Rows {
			if row[0] == "envelope violations" && row[1] == "0" {
				found = true
			}
		}
		if !found {
			t.Errorf("E9b: envelope violated under BTR:\n%s", out)
		}
	}
}

func TestE10ShapesDistinct(t *testing.T) {
	res := runExp(t, "E10")
	out := rendered(res)
	if !strings.Contains(out, "hard bound") {
		t.Errorf("E10 missing BTR bound:\n%s", out)
	}
	if !strings.Contains(out, "never") {
		t.Errorf("E10 missing unreplicated never-recovers row:\n%s", out)
	}
	if !strings.Contains(out, "eventual only") {
		t.Errorf("E10 missing self-stabilization row:\n%s", out)
	}
}

func TestRunAllProducesOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	var b bytes.Buffer
	RunAll(&b, 1, true)
	out := b.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"} {
		if !strings.Contains(out, "---- "+id+":") {
			t.Errorf("RunAll missing %s", id)
		}
	}
}
