package exp

import (
	"fmt"

	"btr/internal/adversary"
	"btr/internal/campaign"
	"btr/internal/core"
	"btr/internal/evidence"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/sim"
)

// --- E1: recovery bound per fault type --------------------------------------

type e1Case struct {
	name  string
	wantK evidence.Kind
	mk    func(s *core.System, at sim.Time) adversary.Attack
}

func e1Cases() []e1Case {
	return []e1Case{
		{"crash", evidence.KindPathAccusation, func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.Crash(s.Strategy.Plans[""].Assign["c1#0"], at)
		}},
		{"commission (intermediate)", evidence.KindWrongOutput, func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.CorruptTask(s.Strategy.Plans[""].Assign["c1#0"], "c1", at)
		}},
		{"commission (sink)", evidence.KindWrongOutput, func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.CorruptTask(firstActuatingSinkNode(s, "c2"), "c2", at)
		}},
		{"omission", evidence.KindPathAccusation, func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.Omit(s.Strategy.Plans[""].Assign["c1#0"], "c1", at)
		}},
		{"timing (timestamp lie)", evidence.KindTiming, func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.LieAboutSendTime(s.Strategy.Plans[""].Assign["c1#0"], "c1", 10*sim.Millisecond, at)
		}},
		{"equivocation (source)", evidence.KindPathAccusation, func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.Equivocate(s.Strategy.Plans[""].Assign["c0#0"], "c0", at)
		}},
	}
}

type e1Row struct {
	Evidence string
	Wrong    int
	Recovery sim.Time
	Bound    sim.Time
}

// e1Scenario reproduces Definition 3.1: for a single fault of every type,
// the system's outputs are incorrect for at most R after the fault
// manifests, and correct everywhere else.
func e1Scenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "E1",
		Family: "paper",
		Claim:  "outputs are correct in any interval with no fault in the preceding R (Def. 3.1)",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			horizon := uint64(40)
			if p.Quick {
				horizon = 25
			}
			var specs []campaign.TrialSpec
			for i, sc := range e1Cases() {
				i, sc := i, sc
				specs = append(specs, campaign.TrialSpec{Name: sc.name, Run: func(t *campaign.T) (any, error) {
					s, err := chainSystem(p.Seed+uint64(i), 1, 6, horizon)
					if err != nil {
						return nil, err
					}
					at := 5 * s.Cfg.Workload.Period
					sc.mk(s, at).Install(s)
					rep := s.Run()
					return e1Row{
						Evidence: dominantEvidence(rep.EvidenceByKind, sc.wantK),
						Wrong:    rep.WrongValues,
						Recovery: rep.MaxRecovery(),
						Bound:    rep.RNeeded,
					}, nil
				}})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable("E1: recovery bound per fault type (chain workload, f=1)",
				"fault", "evidence", "wrong outputs", "measured recovery", "bound R", "within R")
			cases := e1Cases()
			for i, tr := range trials {
				row, ok := campaign.Value[e1Row](tr)
				if !ok {
					t.AddRow(failedRow(cases[i].name), "-", "-", "-", "-", "-")
					continue
				}
				t.AddRow(cases[i].name, row.Evidence, row.Wrong, row.Recovery, row.Bound,
					boolMark(row.Recovery <= row.Bound))
			}
			t.Note("intermediate commission/omission recover in 0: audited input choice masks them (detection without disruption)")
			return []*metrics.Table{t}
		},
	}
}

// --- E4: staggered attacks --------------------------------------------------

type e4Row struct {
	K      int
	Total  sim.Time
	Bound  sim.Time
	Period sim.Time
}

// e4Scenario reproduces §3: an adversary controlling k <= f nodes can
// trigger a new fault every R seconds, forcing at most k·R of bad output —
// hence R := D/f.
func e4Scenario() campaign.Scenario {
	plan := func(p campaign.Params) (f int, ks []int) {
		f, ks = 3, []int{1, 2, 3}
		if p.Quick {
			f, ks = 2, []int{1, 2}
		}
		return f, ks
	}
	return campaign.Scenario{
		ID:     "E4",
		Family: "paper",
		Claim:  "k staggered faults can stretch the outage to at most k·R; set R := D/f",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			f, ks := plan(p)
			var specs []campaign.TrialSpec
			for _, k := range ks {
				k := k
				specs = append(specs, campaign.TrialSpec{Name: fmt.Sprintf("k=%d", k), Run: func(t *campaign.T) (any, error) {
					s, err := chainSystem(p.Seed, f, 10, uint64(30+25*k))
					if err != nil {
						return nil, err
					}
					period := s.Cfg.Workload.Period
					// One sink corruption per stage, spaced by the
					// strategy's bound so each fault lands in a recovered
					// system (the §3 worst-case adversary).
					gap := s.Strategy.RNeeded + 2*period
					victims := pickVictims(s, k)
					for i, v := range victims {
						at := 5*period + sim.Time(i)*gap
						adversary.CorruptEverything(v, at).Install(s)
					}
					rep := s.Run()
					return e4Row{K: k, Total: rep.TotalBadTime(), Bound: sim.Time(k) * rep.RNeeded, Period: period}, nil
				}})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable("E4: staggered attacks — total incorrect-output time vs k·R (chain, f=3, 10 nodes)",
				"k (faults)", "total bad output", "k × measured-R1", "k × bound R", "within k·R")
			_, ks := plan(p)
			// Baseline single-fault bad time for scaling comparison.
			var r1 sim.Time
			for i, tr := range trials {
				row, ok := campaign.Value[e4Row](tr)
				if !ok {
					t.AddRow(failedRow(fmt.Sprintf("k=%d", ks[i])), "-", "-", "-", "-")
					continue
				}
				if i == 0 {
					r1 = row.Total
					if r1 == 0 {
						r1 = row.Period // avoid zero scaling when fully masked
					}
				}
				scaled := "-" // k=1 baseline unavailable
				if r1 > 0 {
					scaled = (sim.Time(row.K) * r1).String()
				}
				t.AddRow(row.K, row.Total, scaled, row.Bound,
					boolMark(row.Total <= row.Bound))
			}
			t.Note("each fault corrupts every output of one fresh node, spaced R apart (the §3 worst-case adversary)")
			return []*metrics.Table{t}
		},
	}
}

// pickVictims returns k distinct nodes, preferring the first-actuating
// sink replica's node, then other replica hosts.
func pickVictims(s *core.System, k int) []network.NodeID {
	base := s.Strategy.Plans[""]
	seen := map[network.NodeID]bool{}
	var out []network.NodeID
	add := func(n network.NodeID) {
		if !seen[n] && len(out) < k {
			seen[n] = true
			out = append(out, n)
		}
	}
	add(firstActuatingSinkNode(s, "c2"))
	for _, id := range base.Aug.TaskIDs() {
		add(base.Assign[id])
	}
	if len(out) < k {
		panic(fmt.Sprintf("exp: cannot pick %d victims", k))
	}
	return out
}
