package exp

import (
	"fmt"

	"btr/internal/adversary"
	"btr/internal/core"
	"btr/internal/evidence"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/sim"
)

// E1Recovery reproduces Definition 3.1: for a single fault of every type,
// the system's outputs are incorrect for at most R after the fault
// manifests, and correct everywhere else.
func E1Recovery(seed uint64, quick bool) Result {
	t := metrics.NewTable("E1: recovery bound per fault type (chain workload, f=1)",
		"fault", "evidence", "wrong outputs", "measured recovery", "bound R", "within R")

	type scenario struct {
		name  string
		wantK evidence.Kind
		mk    func(s *core.System, at sim.Time) adversary.Attack
	}
	scenarios := []scenario{
		{"crash", evidence.KindPathAccusation, func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.Crash(s.Strategy.Plans[""].Assign["c1#0"], at)
		}},
		{"commission (intermediate)", evidence.KindWrongOutput, func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.CorruptTask(s.Strategy.Plans[""].Assign["c1#0"], "c1", at)
		}},
		{"commission (sink)", evidence.KindWrongOutput, func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.CorruptTask(firstActuatingSinkNode(s, "c2"), "c2", at)
		}},
		{"omission", evidence.KindPathAccusation, func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.Omit(s.Strategy.Plans[""].Assign["c1#0"], "c1", at)
		}},
		{"timing (timestamp lie)", evidence.KindTiming, func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.LieAboutSendTime(s.Strategy.Plans[""].Assign["c1#0"], "c1", 10*sim.Millisecond, at)
		}},
		{"equivocation (source)", evidence.KindPathAccusation, func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.Equivocate(s.Strategy.Plans[""].Assign["c0#0"], "c0", at)
		}},
	}
	horizon := uint64(40)
	if quick {
		horizon = 25
	}
	for i, sc := range scenarios {
		s, err := chainSystem(seed+uint64(i), 1, 6, horizon)
		if err != nil {
			panic(err)
		}
		at := 5 * s.Cfg.Workload.Period
		sc.mk(s, at).Install(s)
		rep := s.Run()
		recovery := rep.MaxRecovery()
		evs := ""
		if rep.EvidenceByKind[sc.wantK] > 0 {
			evs = sc.wantK.String()
		} else {
			for k, c := range rep.EvidenceByKind {
				if c > 0 {
					evs = k.String()
					break
				}
			}
		}
		t.AddRow(sc.name, evs, rep.WrongValues, recovery, rep.RNeeded,
			boolMark(recovery <= rep.RNeeded))
	}
	t.Note("intermediate commission/omission recover in 0: audited input choice masks them (detection without disruption)")
	return Result{
		ID:     "E1",
		Claim:  "outputs are correct in any interval with no fault in the preceding R (Def. 3.1)",
		Tables: []*metrics.Table{t},
	}
}

// E4Staggered reproduces §3: an adversary controlling k <= f nodes can
// trigger a new fault every R seconds, forcing at most k·R of bad output —
// hence R := D/f.
func E4Staggered(seed uint64, quick bool) Result {
	t := metrics.NewTable("E4: staggered attacks — total incorrect-output time vs k·R (chain, f=3, 10 nodes)",
		"k (faults)", "total bad output", "k × measured-R1", "k × bound R", "within k·R")

	f := 3
	ks := []int{1, 2, 3}
	if quick {
		ks = []int{1, 2}
		f = 2
	}
	// Baseline single-fault bad time for scaling comparison.
	var r1 sim.Time
	for _, k := range ks {
		s, err := chainSystem(seed, f, 10, uint64(30+25*k))
		if err != nil {
			panic(err)
		}
		period := s.Cfg.Workload.Period
		// One sink corruption per stage: always the replica that
		// actuates first in the *current* plan would be ideal; we attack
		// the first-actuating replicas of the base plan in order, spaced
		// by the strategy's bound so each fault lands in a recovered
		// system.
		gap := s.Strategy.RNeeded + 2*period
		victims := pickVictims(s, k)
		for i, v := range victims {
			at := 5*period + sim.Time(i)*gap
			adversary.CorruptEverything(v, at).Install(s)
		}
		rep := s.Run()
		total := rep.TotalBadTime()
		if k == ks[0] {
			r1 = total
			if r1 == 0 {
				r1 = period // avoid zero scaling when fully masked
			}
		}
		bound := sim.Time(k) * rep.RNeeded
		t.AddRow(k, total, sim.Time(k)*r1, bound, boolMark(total <= bound))
	}
	t.Note("each fault corrupts every output of one fresh node, spaced R apart (the §3 worst-case adversary)")
	return Result{
		ID:     "E4",
		Claim:  "k staggered faults can stretch the outage to at most k·R; set R := D/f",
		Tables: []*metrics.Table{t},
	}
}

// pickVictims returns k distinct nodes, preferring the first-actuating
// sink replica's node, then other replica hosts.
func pickVictims(s *core.System, k int) []network.NodeID {
	base := s.Strategy.Plans[""]
	seen := map[network.NodeID]bool{}
	var out []network.NodeID
	add := func(n network.NodeID) {
		if !seen[n] && len(out) < k {
			seen[n] = true
			out = append(out, n)
		}
	}
	add(firstActuatingSinkNode(s, "c2"))
	for _, id := range base.Aug.TaskIDs() {
		add(base.Assign[id])
	}
	if len(out) < k {
		panic(fmt.Sprintf("exp: cannot pick %d victims", k))
	}
	return out
}
