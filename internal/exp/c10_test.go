package exp

import (
	"strings"
	"testing"

	"btr/internal/campaign"
	"btr/internal/faultrate"
)

// renderC10Sweep runs the deterministic sweep half of C10 at the given
// worker count and renders its table (the storm half is wall-clock and
// exempt, like every live family).
func renderC10Sweep(t *testing.T, workers int) string {
	t.Helper()
	res := campaign.Run([]campaign.Scenario{c10SweepOnlyScenario()}, campaign.Options{
		Workers: workers,
		Params:  campaign.Params{Seed: 1, Quick: true},
	})
	var b strings.Builder
	for _, r := range res {
		for _, tr := range r.Trials {
			if tr.Err != nil {
				t.Errorf("%s/%s failed: %v", r.ID, tr.Name, tr.Err)
			}
		}
		WriteResult(&b, r)
	}
	return b.String()
}

// TestC10SweepDeterministicAcrossWorkers pins the extended-catalog
// arrival process into the same byte-identity guarantee as C8: the same
// seed produces byte-identical sweep tables at -workers=1 and
// -workers=4.
func TestC10SweepDeterministicAcrossWorkers(t *testing.T) {
	serial := renderC10Sweep(t, 1)
	parallel := renderC10Sweep(t, 4)
	if serial != parallel {
		t.Fatalf("workers=1 and workers=4 disagree:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			serial, parallel)
	}
	if !strings.Contains(serial, "knee") {
		t.Fatal("C10 sweep table carries no knee note")
	}
}

// TestC10SweepDrawsExtendedCatalogOnly: the sweep's schedule must draw
// exclusively the non-catalog behaviors, target sinks for the
// sink-bound ones, and carry the delay hold.
func TestC10SweepDrawsExtendedCatalogOnly(t *testing.T) {
	extended := map[string]bool{}
	for _, b := range faultrate.ExtendedCatalog() {
		extended[b] = true
	}
	row, err := runC10Sweep(c8Cases(campaign.Params{Quick: true})[0], 8, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if row.Arrivals == 0 {
		t.Fatal("no arrivals: λ=8 sweep exercises nothing")
	}
	if row.Untolerated != 0 {
		t.Fatalf("%d untolerated period(s): non-catalog damage outside every tolerated span and degraded window", row.Untolerated)
	}
}

// TestC10CleanBelowKnee: at the smallest swept rate the non-catalog
// behaviors must be absorbed silently — no silent misses, every
// degraded window (if any) reconciled.
func TestC10CleanBelowKnee(t *testing.T) {
	row, err := runC10Sweep(c8Cases(campaign.Params{Quick: true})[0], 0.5, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if row.Untolerated != 0 {
		t.Fatalf("%d untolerated period(s) at λ=0.5", row.Untolerated)
	}
	if !row.Reconciled {
		t.Fatalf("worst degraded window %v exceeded the %v bound at λ=0.5", row.WorstWindow, row.Bound)
	}
}
