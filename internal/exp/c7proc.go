package exp

// C7: multi-process deployment soak. C5 exercises the wall-clock executor
// with every node in one process over the channel transport; C7 goes the
// last step the paper's deployment story implies: one OS process per node
// over real TCP sockets (network.TCPBus), orchestrated and judged by a
// parent acting as the physical plant. Faults are injected against real
// processes — the in-process catalog plus SIGKILL-and-restart and
// userspace partitions — and the claim is the same as everywhere else:
// measured recovery within the provable bound R, with the transport-level
// addendum that repaired links demonstrably re-establish. Like C5 its
// tables carry real timings and are exempt from the determinism pin (the
// filters skip Family == "liveproc").
//
// The host binary must call live.MaybeRunNodeProc() at the top of main or
// TestMain: the orchestrator re-executes os.Executable() as node
// processes, and without the hook those re-executions would run the
// campaign recursively instead of becoming nodes.

import (
	"fmt"

	"btr/internal/campaign"
	"btr/internal/live"
	"btr/internal/metrics"
	"btr/internal/sim"
)

// c7Period/c7Margin are wider still than C5's: an orchestrated run
// multiplies the executor count by the node count on possibly one core,
// and every hop crosses real sockets plus OS scheduling latency (see
// live.ProcTopology for the link model this implies).
const (
	c7Period = 500 * sim.Millisecond
	c7Margin = 200 * sim.Millisecond
)

type c7Case struct {
	topo  string
	nodes int
	f     int
	fault string
}

func c7Cases(p campaign.Params) []c7Case {
	cases := []c7Case{
		{"full-mesh", 4, 1, "corrupt-all"},
		{"full-mesh", 4, 1, "kill-restart"},
		{"full-mesh", 4, 1, "partition"},
		{"ring", 4, 1, "corrupt-all"},
	}
	if p.Quick {
		cases = cases[:2]
	}
	return cases
}

// C7Row is one orchestrated run's measurement (exported for the
// perf-bundle emitter, which records these as the BENCH_campaign.json
// liveproc section).
type C7Row struct {
	Topology string
	Nodes    int
	F        int
	Fault    string
	Recovery sim.Time // measured wall-clock recovery at the plant (0 = masked)
	Bound    sim.Time // provable R
	Missed   int
	Wrong    int
	// ReconnectChecked is set for faults whose repair must be visible at
	// the transport; Reconnected then reports the supervised-redial verdict.
	ReconnectChecked bool
	Reconnected      bool
}

// C7Scenario returns the multi-process deployment soak. Exported (like
// C5Scenario) so the perf-bundle emitter can run it standalone.
func C7Scenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "C7",
		Family: "liveproc",
		Claim:  "one OS process per node over real TCP sockets recovers within R, including SIGKILL-and-restart with supervised link re-establishment",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for _, c := range c7Cases(p) {
				c := c
				specs = append(specs, campaign.TrialSpec{
					Name: fmt.Sprintf("liveproc/%s/n=%d/%s", c.topo, c.nodes, c.fault),
					Run: func(t *campaign.T) (any, error) {
						liveGate.Lock()
						defer liveGate.Unlock()
						res, err := live.RunOrchestrator(live.OrchestratorConfig{
							Topo: c.topo, Nodes: c.nodes, F: c.f, Seed: t.TrialSeed(),
							Period: c7Period, Margin: c7Margin, Horizon: 10,
							Fault: c.fault, FaultAt: 3, HealAfter: 3,
						})
						if err != nil {
							return nil, err
						}
						rep := res.Report
						return C7Row{
							Topology: c.topo, Nodes: c.nodes, F: c.f, Fault: c.fault,
							Recovery: rep.MaxRecovery(), Bound: rep.RNeeded,
							Missed: rep.MissedPeriods, Wrong: rep.WrongValues,
							ReconnectChecked: res.ReconnectChecked,
							Reconnected:      res.Reconnected,
						}, nil
					},
				})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable(fmt.Sprintf("C7: multi-process TCP deployment soak (one process per node, period %v)", c7Period),
				"topology", "nodes", "fault", "recovery", "bound R", "within R", "reconnect")
			for _, c := range c7Cases(p) {
				found := false
				for _, tr := range trials {
					row, ok := campaign.Value[C7Row](tr)
					if !ok || row.Topology != c.topo || row.Fault != c.fault {
						continue
					}
					found = true
					reconnect := "n/a"
					if row.ReconnectChecked {
						reconnect = boolMark(row.Reconnected)
					}
					t.AddRow(c.topo, c.nodes, c.fault, row.Recovery, row.Bound,
						boolMark(row.Recovery <= row.Bound), reconnect)
				}
				if !found {
					t.AddRow(failedRow(c.topo), c.nodes, c.fault, "-", "-", "-", "-")
				}
			}
			if note := campaign.FailNote(trials); note != "" {
				t.Note("%s", note)
			}
			t.Note("wall-clock measurements across OS processes — values vary run to run; the invariants are the 'within R' and 'reconnect' columns")
			return []*metrics.Table{t}
		},
	}
}
