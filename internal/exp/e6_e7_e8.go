package exp

import (
	"fmt"

	"btr/internal/adversary"
	"btr/internal/campaign"
	"btr/internal/core"
	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// --- E6: evidence DoS -------------------------------------------------------

type e6Point struct {
	Rate     int
	Share    float64
	Reserved bool
}

func e6Points(p campaign.Params) []e6Point {
	rates := []int{0, 4, 16, 64}
	if p.Quick {
		rates = []int{0, 16}
	}
	var out []e6Point
	for _, reserved := range []bool{true, false} {
		share := 0.2
		if !reserved {
			share = 0.0001 // effectively no reservation; single shared channel behavior
		}
		for _, rate := range rates {
			out = append(out, e6Point{Rate: rate, Share: share, Reserved: reserved})
		}
	}
	return out
}

type e6Row struct {
	Converged string
	Recovery  sim.Time
	Bound     sim.Time
	Convicted bool
}

// e6Scenario reproduces §4.3: evidence distribution completes in bounded
// time even under a bogus-evidence flood, *because of* the reserved
// bandwidth share and validate-before-forward; the ablation (share = 0)
// shows the failure mode the design prevents.
func e6Scenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "E6",
		Family: "paper",
		Claim:  "evidence distribution completes in bounded time despite DoS (reserved bandwidth + validate-before-forward + endorsement)",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for _, pt := range e6Points(p) {
				pt := pt
				specs = append(specs, campaign.TrialSpec{
					Name: fmt.Sprintf("share=%.4f/rate=%d", pt.Share, pt.Rate),
					Run: func(t *campaign.T) (any, error) {
						g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
						netCfg := network.Config{EvidenceShare: pt.Share}
						opts := plan.DefaultOptions(2, sim.Second)
						opts.Sched.EvidenceShare = pt.Share
						sys, err := core.NewSystem(core.Config{
							Seed: p.Seed, Workload: g,
							Topology: network.FullMesh(8, 20_000_000, 50*sim.Microsecond),
							PlanOpts: opts, Net: netCfg, Horizon: 45,
						})
						if err != nil {
							return nil, err
						}
						period := g.Period
						flooder := network.NodeID(7)
						omitter := sys.Strategy.Plans[""].Assign["c1#0"]
						if omitter == flooder {
							omitter = sys.Strategy.Plans[""].Assign["c1#1"]
						}
						if pt.Rate > 0 {
							adversary.FloodBogus(flooder, pt.Rate, 2*period).Install(sys)
						}
						faultAt := 8 * period
						adversary.Omit(omitter, "c1", faultAt).Install(sys)
						rep := sys.Run()

						convergedAt := sim.Never
						for _, st := range rep.SwitchTimes {
							if st > convergedAt || convergedAt == sim.Never {
								convergedAt = st
							}
						}
						convStr := "never"
						if convergedAt != sim.Never && convergedAt >= faultAt {
							convStr = (convergedAt - faultAt).String()
						}
						return e6Row{
							Converged: convStr,
							Recovery:  rep.MaxRecovery(),
							Bound:     rep.RNeeded,
							Convicted: pt.Rate == 0 || rep.EvidenceByKind[evidence.KindBogus] > 0,
						}, nil
					},
				})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable("E6: evidence distribution under bogus-evidence flood (chain, f=2, 8 nodes)",
				"flood rate/period", "evidence share", "fault-to-converged", "recovery", "within R", "flooder convicted")
			pts := e6Points(p)
			for i, tr := range trials {
				row, ok := campaign.Value[e6Row](tr)
				if !ok {
					t.AddRow(failedRow(fmt.Sprint(pts[i].Rate)), fmt.Sprintf("%.2f", pts[i].Share), "-", "-", "-", "-")
					continue
				}
				t.AddRow(pts[i].Rate, fmt.Sprintf("%.2f", pts[i].Share), row.Converged, row.Recovery,
					boolMark(row.Recovery <= row.Bound), boolMark(row.Convicted))
			}
			t.Note("share=0.00: ablation without the reserved evidence class — flood and foreground contend on one channel")
			return []*metrics.Table{t}
		},
	}
}

// --- E7: planner scalability ------------------------------------------------

type e7Cfg struct{ nodes, tasks, f int }

func e7Cfgs(p campaign.Params) []e7Cfg {
	cfgs := []e7Cfg{{6, 3, 1}, {8, 5, 1}, {8, 3, 2}, {10, 5, 2}, {12, 8, 2}}
	if p.Quick {
		cfgs = cfgs[:3]
	}
	return cfgs
}

type e7Row struct {
	Plans    int
	Trans    int
	MaxState int64
	R        sim.Time
	Err      string
}

type e7AbRow struct {
	Name  string
	Moved float64
	State float64
	Worst sim.Time
}

// e7Scenario characterizes the offline planner (§4.1): strategy size and
// structure vs topology/workload/f, plus the minimal-diff ablation (the
// "game tree" strategic component). Planning wall-clock time is reported
// per trial by the campaign runner (it is machine-dependent and therefore
// kept out of the deterministic tables).
func e7Scenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "E7",
		Family: "paper",
		Claim:  "strategies are computed offline; careful plan derivation keeps transitions cheap (the game-tree component)",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for _, c := range e7Cfgs(p) {
				c := c
				specs = append(specs, campaign.TrialSpec{
					Name: fmt.Sprintf("plan/%dn-%dt-f%d", c.nodes, c.tasks, c.f),
					Run: func(t *campaign.T) (any, error) {
						g := flow.Chain(c.tasks, 30*sim.Millisecond, 800*sim.Microsecond, 64, flow.CritB)
						topo := network.FullMesh(c.nodes, 20_000_000, 50*sim.Microsecond)
						s, err := plan.Build(g, topo, plan.DefaultOptions(c.f, sim.Second))
						if err != nil {
							return e7Row{Err: err.Error()}, nil
						}
						var maxState int64
						for _, tr := range s.Trans {
							if tr.StateBytes > maxState {
								maxState = tr.StateBytes
							}
						}
						return e7Row{Plans: len(s.Plans), Trans: len(s.Trans), MaxState: maxState, R: s.RNeeded}, nil
					},
				})
			}
			for _, minimal := range []bool{true, false} {
				minimal := minimal
				name := "derive/minimal-diff"
				if !minimal {
					name = "derive/naive-replan"
				}
				specs = append(specs, campaign.TrialSpec{Name: name, Run: func(t *campaign.T) (any, error) {
					g := flow.Avionics(25 * sim.Millisecond)
					topo := network.FullMesh(6, 20_000_000, 50*sim.Microsecond)
					opts := plan.DefaultOptions(1, sim.Second)
					opts.MinimalDiff = minimal
					s, err := plan.Build(g, topo, opts)
					if err != nil {
						return nil, err
					}
					var moved, state int64
					var worst sim.Time
					n := 0
					for _, tr := range s.Trans {
						moved += int64(len(tr.Moved))
						state += tr.StateBytes
						if tr.Bound > worst {
							worst = tr.Bound
						}
						n++
					}
					label := "minimal-diff"
					if !minimal {
						label = "naive replan"
					}
					return e7AbRow{
						Name:  label,
						Moved: float64(moved) / float64(n),
						State: float64(state) / float64(n),
						Worst: worst,
					}, nil
				}})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable("E7: planner scalability",
				"nodes", "tasks", "f", "plans", "transitions", "max transition state", "R achieved")
			cfgs := e7Cfgs(p)
			for i, c := range cfgs {
				row, ok := campaign.Value[e7Row](trials[i])
				if !ok {
					t.AddRow(c.nodes, c.tasks, c.f, failedRow("plan"), "-", "-", "-")
					continue
				}
				if row.Err != "" {
					t.AddRow(c.nodes, c.tasks, c.f, "-", "-", "-", fmt.Sprintf("error: %v", row.Err))
					continue
				}
				t.AddRow(c.nodes, c.tasks, c.f, row.Plans, row.Trans,
					fmt.Sprintf("%dB", row.MaxState), row.R)
			}
			t2 := metrics.NewTable("E7b: plan derivation ablation (avionics, 6 nodes, f=1)",
				"derivation", "avg moved replicas", "avg state moved", "max transition bound")
			for _, tr := range trials[len(cfgs):] {
				row, ok := campaign.Value[e7AbRow](tr)
				if !ok {
					t2.AddRow(failedRow(tr.Name), "-", "-", "-")
					continue
				}
				t2.AddRow(row.Name, fmt.Sprintf("%.1f", row.Moved),
					fmt.Sprintf("%.0fB", row.State), row.Worst)
			}
			t2.Note("§4.1: \"any extra reassignments consume resources and can thus prolong recovery\"")
			return []*metrics.Table{t, t2}
		},
	}
}

// --- E8: mode-change breakdown ----------------------------------------------

type e8Case struct {
	name string
	mk   func(s *core.System, at sim.Time) adversary.Attack
}

func e8Cases(p campaign.Params) []e8Case {
	cases := []e8Case{
		{"commission (sink)", func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.CorruptTask(firstActuatingSinkNode(s, "c2"), "c2", at)
		}},
		{"omission", func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.Omit(s.Strategy.Plans[""].Assign["c1#0"], "c1", at)
		}},
		{"crash", func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.Crash(s.Strategy.Plans[""].Assign["c1#0"], at)
		}},
	}
	if p.Quick {
		cases = cases[:2]
	}
	return cases
}

type e8Row struct {
	Detect     sim.Time
	Distribute sim.Time
	Settle     sim.Time
	Total      sim.Time
	Bound      sim.Time
}

// e8Scenario breaks recovery latency into the paper's pipeline (§4.2–
// §4.4): detection, evidence distribution + activation delay, and the
// mode switch itself.
func e8Scenario() campaign.Scenario {
	return campaign.Scenario{
		ID:     "E8",
		Family: "paper",
		Claim:  "mode changes need no agreement protocol: evidence + deterministic activation converge all correct nodes",
		Trials: func(p campaign.Params) []campaign.TrialSpec {
			var specs []campaign.TrialSpec
			for i, sc := range e8Cases(p) {
				i, sc := i, sc
				specs = append(specs, campaign.TrialSpec{Name: sc.name, Run: func(t *campaign.T) (any, error) {
					s, err := chainSystem(p.Seed+uint64(i), 1, 6, 40)
					if err != nil {
						return nil, err
					}
					faultAt := 5 * s.Cfg.Workload.Period
					sc.mk(s, faultAt).Install(s)
					rep := s.Run()
					detect := sim.Time(0)
					if rep.FirstEvidenceAt != sim.Never {
						detect = rep.FirstEvidenceAt - faultAt
					}
					var lastSwitch sim.Time
					for _, st := range rep.SwitchTimes {
						if st > lastSwitch {
							lastSwitch = st
						}
					}
					distribute := sim.Time(0)
					if lastSwitch > 0 && rep.FirstEvidenceAt != sim.Never {
						distribute = lastSwitch - rep.FirstEvidenceAt
					}
					recovered := faultAt + rep.MaxRecovery()
					settle := sim.Time(0)
					if recovered > lastSwitch && lastSwitch > 0 {
						settle = recovered - lastSwitch
					}
					return e8Row{
						Detect: detect, Distribute: distribute, Settle: settle,
						Total: rep.MaxRecovery(), Bound: rep.RNeeded,
					}, nil
				}})
			}
			return specs
		},
		Aggregate: func(p campaign.Params, trials []campaign.TrialResult) []*metrics.Table {
			t := metrics.NewTable("E8: recovery latency breakdown by fault type (chain, f=1)",
				"fault", "fault-to-evidence", "evidence-to-last-switch", "switch-to-recovered", "total", "bound R")
			cases := e8Cases(p)
			for i, tr := range trials {
				row, ok := campaign.Value[e8Row](tr)
				if !ok {
					t.AddRow(failedRow(cases[i].name), "-", "-", "-", "-", "-")
					continue
				}
				t.AddRow(cases[i].name, row.Detect, row.Distribute, row.Settle, row.Total, row.Bound)
			}
			t.Note("evidence-to-last-switch includes the deliberate activation delay Delta (all correct nodes switch together)")
			return []*metrics.Table{t}
		},
	}
}
