package exp

import (
	"fmt"
	"time"

	"btr/internal/adversary"
	"btr/internal/core"
	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// E6EvidenceDoS reproduces §4.3: evidence distribution completes in
// bounded time even under a bogus-evidence flood, *because of* the
// reserved bandwidth share and validate-before-forward; the ablation
// (share = 0) shows the failure mode the design prevents.
func E6EvidenceDoS(seed uint64, quick bool) Result {
	t := metrics.NewTable("E6: evidence distribution under bogus-evidence flood (chain, f=2, 8 nodes)",
		"flood rate/period", "evidence share", "fault-to-converged", "recovery", "within R", "flooder convicted")

	rates := []int{0, 4, 16, 64}
	if quick {
		rates = []int{0, 16}
	}
	for _, reserved := range []bool{true, false} {
		share := 0.2
		if !reserved {
			share = 0.0001 // effectively no reservation; single shared channel behavior
		}
		for _, rate := range rates {
			g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
			netCfg := network.Config{EvidenceShare: share}
			opts := plan.DefaultOptions(2, sim.Second)
			opts.Sched.EvidenceShare = share
			sys, err := core.NewSystem(core.Config{
				Seed: seed, Workload: g,
				Topology: network.FullMesh(8, 20_000_000, 50*sim.Microsecond),
				PlanOpts: opts, Net: netCfg, Horizon: 45,
			})
			if err != nil {
				panic(err)
			}
			period := g.Period
			flooder := network.NodeID(7)
			omitter := sys.Strategy.Plans[""].Assign["c1#0"]
			if omitter == flooder {
				omitter = sys.Strategy.Plans[""].Assign["c1#1"]
			}
			if rate > 0 {
				adversary.FloodBogus(flooder, rate, 2*period).Install(sys)
			}
			faultAt := 8 * period
			adversary.Omit(omitter, "c1", faultAt).Install(sys)
			rep := sys.Run()

			convergedAt := sim.Never
			for _, st := range rep.SwitchTimes {
				if st > convergedAt || convergedAt == sim.Never {
					convergedAt = st
				}
			}
			convStr := "never"
			if convergedAt != sim.Never && convergedAt >= faultAt {
				convStr = (convergedAt - faultAt).String()
			}
			recovery := rep.MaxRecovery()
			t.AddRow(rate, fmt.Sprintf("%.2f", share), convStr, recovery,
				boolMark(recovery <= rep.RNeeded),
				boolMark(rate == 0 || rep.EvidenceByKind[evidence.KindBogus] > 0))
		}
	}
	t.Note("share=0.00: ablation without the reserved evidence class — flood and foreground contend on one channel")
	return Result{
		ID:     "E6",
		Claim:  "evidence distribution completes in bounded time despite DoS (reserved bandwidth + validate-before-forward + endorsement)",
		Tables: []*metrics.Table{t},
	}
}

// E7Planner characterizes the offline planner (§4.1): strategy size and
// planning time vs topology/workload/f, plus the minimal-diff ablation
// (the "game tree" strategic component).
func E7Planner(seed uint64, quick bool) Result {
	t := metrics.NewTable("E7: planner scalability",
		"nodes", "tasks", "f", "plans", "plan time", "max transition state", "R achieved")

	type cfg struct{ nodes, tasks, f int }
	cfgs := []cfg{{6, 3, 1}, {8, 5, 1}, {8, 3, 2}, {10, 5, 2}, {12, 8, 2}}
	if quick {
		cfgs = cfgs[:3]
	}
	for _, c := range cfgs {
		g := flow.Chain(c.tasks, 30*sim.Millisecond, 800*sim.Microsecond, 64, flow.CritB)
		topo := network.FullMesh(c.nodes, 20_000_000, 50*sim.Microsecond)
		opts := plan.DefaultOptions(c.f, sim.Second)
		start := time.Now()
		s, err := plan.Build(g, topo, opts)
		elapsed := time.Since(start)
		if err != nil {
			t.AddRow(c.nodes, c.tasks, c.f, "-", "-", "-", fmt.Sprintf("error: %v", err))
			continue
		}
		var maxState int64
		for _, tr := range s.Trans {
			if tr.StateBytes > maxState {
				maxState = tr.StateBytes
			}
		}
		t.AddRow(c.nodes, c.tasks, c.f, len(s.Plans),
			fmt.Sprintf("%.1fms", float64(elapsed.Microseconds())/1000),
			fmt.Sprintf("%dB", maxState), s.RNeeded)
	}

	// Ablation: minimal-diff derivation vs naive replanning.
	t2 := metrics.NewTable("E7b: plan derivation ablation (avionics, 6 nodes, f=1)",
		"derivation", "avg moved replicas", "avg state moved", "max transition bound")
	g := flow.Avionics(25 * sim.Millisecond)
	topo := network.FullMesh(6, 20_000_000, 50*sim.Microsecond)
	for _, minimal := range []bool{true, false} {
		opts := plan.DefaultOptions(1, sim.Second)
		opts.MinimalDiff = minimal
		s, err := plan.Build(g, topo, opts)
		if err != nil {
			panic(err)
		}
		var moved, state int64
		var worst sim.Time
		n := 0
		for _, tr := range s.Trans {
			moved += int64(len(tr.Moved))
			state += tr.StateBytes
			if tr.Bound > worst {
				worst = tr.Bound
			}
			n++
		}
		name := "minimal-diff"
		if !minimal {
			name = "naive replan"
		}
		t2.AddRow(name, fmt.Sprintf("%.1f", float64(moved)/float64(n)),
			fmt.Sprintf("%.0fB", float64(state)/float64(n)), worst)
	}
	t2.Note("§4.1: \"any extra reassignments consume resources and can thus prolong recovery\"")
	return Result{
		ID:     "E7",
		Claim:  "strategies are computed offline; careful plan derivation keeps transitions cheap (the game-tree component)",
		Tables: []*metrics.Table{t, t2},
	}
}

// E8ModeChange breaks recovery latency into the paper's pipeline (§4.2–
// §4.4): detection, evidence distribution + activation delay, and the
// mode switch itself.
func E8ModeChange(seed uint64, quick bool) Result {
	t := metrics.NewTable("E8: recovery latency breakdown by fault type (chain, f=1)",
		"fault", "fault-to-evidence", "evidence-to-last-switch", "switch-to-recovered", "total", "bound R")

	type scenario struct {
		name string
		mk   func(s *core.System, at sim.Time) adversary.Attack
	}
	scenarios := []scenario{
		{"commission (sink)", func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.CorruptTask(firstActuatingSinkNode(s, "c2"), "c2", at)
		}},
		{"omission", func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.Omit(s.Strategy.Plans[""].Assign["c1#0"], "c1", at)
		}},
		{"crash", func(s *core.System, at sim.Time) adversary.Attack {
			return adversary.Crash(s.Strategy.Plans[""].Assign["c1#0"], at)
		}},
	}
	if quick {
		scenarios = scenarios[:2]
	}
	for i, sc := range scenarios {
		s, err := chainSystem(seed+uint64(i), 1, 6, 40)
		if err != nil {
			panic(err)
		}
		faultAt := 5 * s.Cfg.Workload.Period
		sc.mk(s, faultAt).Install(s)
		rep := s.Run()
		detect := sim.Time(0)
		if rep.FirstEvidenceAt != sim.Never {
			detect = rep.FirstEvidenceAt - faultAt
		}
		var lastSwitch sim.Time
		for _, st := range rep.SwitchTimes {
			if st > lastSwitch {
				lastSwitch = st
			}
		}
		distribute := sim.Time(0)
		if lastSwitch > 0 && rep.FirstEvidenceAt != sim.Never {
			distribute = lastSwitch - rep.FirstEvidenceAt
		}
		recovered := faultAt + rep.MaxRecovery()
		settle := sim.Time(0)
		if recovered > lastSwitch && lastSwitch > 0 {
			settle = recovered - lastSwitch
		}
		total := rep.MaxRecovery()
		t.AddRow(sc.name, detect, distribute, settle, total, rep.RNeeded)
	}
	t.Note("evidence-to-last-switch includes the deliberate activation delay Delta (all correct nodes switch together)")
	return Result{
		ID:     "E8",
		Claim:  "mode changes need no agreement protocol: evidence + deterministic activation converge all correct nodes",
		Tables: []*metrics.Table{t},
	}
}
