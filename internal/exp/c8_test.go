package exp

import (
	"strings"
	"testing"

	"btr/internal/campaign"
)

// renderC8 runs the C8 scenario at the given worker count and renders
// its tables.
func renderC8(t *testing.T, workers int) string {
	t.Helper()
	res := campaign.Run([]campaign.Scenario{C8Scenario()}, campaign.Options{
		Workers: workers,
		Params:  campaign.Params{Seed: 1, Quick: true},
	})
	var b strings.Builder
	for _, r := range res {
		for _, tr := range r.Trials {
			if tr.Err != nil {
				t.Errorf("%s/%s failed: %v", r.ID, tr.Name, tr.Err)
			}
		}
		WriteResult(&b, r)
	}
	return b.String()
}

// TestC8DeterministicAcrossWorkers pins the λ arrival process into the
// campaign determinism guarantee: the same seed produces byte-identical
// C8 tables at -workers=1 and -workers=4 (the schedule, the simulated
// run, and the classification are all pure functions of the split trial
// seed).
func TestC8DeterministicAcrossWorkers(t *testing.T) {
	serial := renderC8(t, 1)
	parallel := renderC8(t, 4)
	if serial != parallel {
		t.Fatalf("workers=1 and workers=4 disagree:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			serial, parallel)
	}
	if !strings.Contains(serial, "knee") {
		t.Fatal("C8 table carries no knee note")
	}
}

// TestC8SustainedBeyondKneeFlaggedNotSilent is the degradation
// regression: a sustained arrival rate far beyond the knee (λ=8/s
// against full-mesh/6, f=1 — quick-mode knee is 1/s) must drive the
// deployment over budget and produce *detected* bad periods — flagged
// by signed over-budget verdicts — and zero untolerated (silent)
// periods. The seed is pinned; the classification numbers are a pure
// function of it.
func TestC8SustainedBeyondKneeFlaggedNotSilent(t *testing.T) {
	row, err := runC8Case(c8Cases(campaign.Params{Quick: true})[0], 8, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if row.PeakActive <= 1 {
		t.Fatalf("peak active %d never exceeded f=1 — λ=8 run exercises no over-budget regime", row.PeakActive)
	}
	if row.Windows == 0 {
		t.Fatal("no degraded windows: over-budget verdicts never flagged the regime")
	}
	if row.Detected == 0 {
		t.Fatal("no detected periods: sustained over-budget damage left no flagged bad output")
	}
	if row.Untolerated != 0 {
		t.Fatalf("%d untolerated period(s): bad output outside every tolerated span and degraded window", row.Untolerated)
	}
}

// TestC8WithinBudgetRateIsClean: at a rate well below the knee the
// classic guarantee alone must absorb everything — no silent misses,
// and every degraded window (if the process ever stacked two episodes)
// reconciles within the bound.
func TestC8WithinBudgetRateIsClean(t *testing.T) {
	row, err := runC8Case(c8Cases(campaign.Params{Quick: true})[0], 1, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if row.Arrivals == 0 {
		t.Fatal("no arrivals: λ=1 run exercises nothing")
	}
	if row.Untolerated != 0 {
		t.Fatalf("%d untolerated period(s) at λ=1", row.Untolerated)
	}
	if !row.Reconciled {
		t.Fatalf("worst degraded window %v exceeded the %v bound at λ=1", row.WorstWindow, row.Bound)
	}
}

// TestC8KneeSearch pins the knee criterion on synthetic rows: the knee
// is the largest prefix rate with zero untolerated periods and every
// window reconciled; any break stops the walk even if later rates look
// clean again.
func TestC8KneeSearch(t *testing.T) {
	rows := []C8Row{
		{Lambda: 0.5, Reconciled: true},
		{Lambda: 1, Reconciled: true},
		{Lambda: 2, Untolerated: 3, Reconciled: true},
		{Lambda: 4, Reconciled: true}, // clean again — must not resurrect the knee
	}
	if got := C8Knee(rows); got != 1 {
		t.Fatalf("knee = %g, want 1", got)
	}
	if got := C8Knee([]C8Row{{Lambda: 0.5, Untolerated: 1, Reconciled: true}}); got != 0 {
		t.Fatalf("knee = %g, want 0 when the smallest rate already breaks", got)
	}
	if got := C8Knee([]C8Row{{Lambda: 0.5, Reconciled: false}}); got != 0 {
		t.Fatalf("knee = %g, want 0 when the smallest rate fails to reconcile", got)
	}
}
