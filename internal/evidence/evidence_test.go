package evidence

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/sig"
	"btr/internal/sim"
)

func testValidator(reg *sig.Registry) *Validator {
	return &Validator{
		Reg: reg,
		Recompute: func(task flow.TaskID, period uint64, inputs []Record) ([]byte, bool) {
			if task == "sensor" { // sources are not re-executable
				return nil, false
			}
			return HashCompute(task, period, inputs), true
		},
		Window: func(producer flow.TaskID, period uint64) (sim.Time, sim.Time, bool) {
			return 0, 5 * sim.Millisecond, true
		},
	}
}

// mkRecord builds a signed record envelope for node with the given inputs.
func mkRecord(reg *sig.Registry, node network.NodeID, producer, logical flow.TaskID,
	period uint64, sendOff sim.Time, value []byte, inputs []sig.Envelope) sig.Envelope {
	r := Record{
		Producer: producer, Logical: logical, Node: node,
		Period: period, SendOff: sendOff, Value: value,
		InputsDigest: DigestEnvelopes(inputs),
	}
	return reg.Seal(node, r.Encode())
}

func TestRecordRoundTrip(t *testing.T) {
	r := Record{
		Producer: "t#1", Logical: "t", Node: 3, Period: 42,
		SendOff: 1500 * sim.Microsecond, Value: []byte{1, 2, 3},
	}
	r.InputsDigest[0] = 0xaa
	d, err := DecodeRecord(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if d.Producer != r.Producer || d.Logical != r.Logical || d.Node != r.Node ||
		d.Period != r.Period || d.SendOff != r.SendOff ||
		!bytes.Equal(d.Value, r.Value) || d.InputsDigest != r.InputsDigest {
		t.Errorf("round trip mismatch: %+v vs %+v", d, r)
	}
}

func TestRecordDecodeMalformed(t *testing.T) {
	r := Record{Producer: "p", Logical: "l", Node: 1, Period: 1, Value: []byte("v")}
	enc := r.Encode()
	for _, b := range [][]byte{{}, enc[:3], enc[:len(enc)-1], append(append([]byte{}, enc...), 9)} {
		if _, err := DecodeRecord(b); err == nil {
			t.Errorf("decode accepted malformed input of len %d", len(b))
		}
	}
}

func TestRecordDecodeFuzz(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = DecodeRecord(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEvidenceRoundTrip(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	in := mkRecord(reg, 0, "s#0", "s", 7, 10, []byte("iv"), nil)
	env := mkRecord(reg, 1, "t#0", "t", 7, 20, []byte("ov"), []sig.Envelope{in})
	e := Evidence{
		Kind: KindWrongOutput, Accused: 1, Reporter: 2, DetectedAt: 99,
		Primary: env, Attachments: []sig.Envelope{in},
	}
	d, err := Decode(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != e.Kind || d.Accused != 1 || d.Reporter != 2 || d.DetectedAt != 99 {
		t.Errorf("metadata mismatch: %+v", d)
	}
	if len(d.Attachments) != 1 || !bytes.Equal(d.Attachments[0].Body, in.Body) {
		t.Error("attachments lost")
	}
	if d.ID() != e.ID() {
		t.Error("ID not stable across round trip")
	}
}

func TestEvidenceDecodeFuzz(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEquivocationValid(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	e1 := mkRecord(reg, 2, "t#1", "t", 5, 100, []byte("v1"), nil)
	e2 := mkRecord(reg, 2, "t#1", "t", 5, 100, []byte("v2"), nil)
	ev := Evidence{Kind: KindEquivocation, Accused: 2, Reporter: 0, Primary: e1, Secondary: e2}
	if err := v.Validate(ev); err != nil {
		t.Fatalf("valid equivocation rejected: %v", err)
	}
}

func TestEquivocationRejectsConsistentRecords(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	e1 := mkRecord(reg, 2, "t#1", "t", 5, 100, []byte("same"), nil)
	ev := Evidence{Kind: KindEquivocation, Accused: 2, Reporter: 0, Primary: e1, Secondary: e1}
	if err := v.Validate(ev); !errors.Is(err, ErrNotAFault) {
		t.Fatalf("consistent records accepted as equivocation: %v", err)
	}
}

func TestEquivocationRejectsDifferentSlots(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	e1 := mkRecord(reg, 2, "t#1", "t", 5, 100, []byte("v1"), nil)
	e2 := mkRecord(reg, 2, "t#1", "t", 6, 100, []byte("v2"), nil) // different period
	ev := Evidence{Kind: KindEquivocation, Accused: 2, Reporter: 0, Primary: e1, Secondary: e2}
	if err := v.Validate(ev); err == nil {
		t.Fatal("different-slot records accepted as equivocation")
	}
}

func TestEquivocationCannotFrame(t *testing.T) {
	// A reporter cannot frame node 3 with records signed by node 2.
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	e1 := mkRecord(reg, 2, "t#1", "t", 5, 100, []byte("v1"), nil)
	e2 := mkRecord(reg, 2, "t#1", "t", 5, 100, []byte("v2"), nil)
	ev := Evidence{Kind: KindEquivocation, Accused: 3, Reporter: 0, Primary: e1, Secondary: e2}
	if err := v.Validate(ev); err == nil {
		t.Fatal("framing accepted")
	}
}

func TestWrongOutputValid(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	in := mkRecord(reg, 0, "s#0", "s", 7, 10, []byte("sensor-7"), nil)
	atts := []sig.Envelope{in}
	// Node 1 signs an output that does NOT match re-execution.
	bad := mkRecord(reg, 1, "t#0", "t", 7, 20, []byte("lie"), atts)
	ev := Evidence{Kind: KindWrongOutput, Accused: 1, Reporter: 2, Primary: bad, Attachments: atts}
	if err := v.Validate(ev); err != nil {
		t.Fatalf("valid wrong-output proof rejected: %v", err)
	}
}

func TestWrongOutputRejectsCorrectOutput(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	in := mkRecord(reg, 0, "s#0", "s", 7, 10, []byte("sensor-7"), nil)
	atts := []sig.Envelope{in}
	inRec, _ := DecodeRecord(in.Body)
	good := HashCompute("t", 7, []Record{inRec})
	env := mkRecord(reg, 1, "t#0", "t", 7, 20, good, atts)
	ev := Evidence{Kind: KindWrongOutput, Accused: 1, Reporter: 2, Primary: env, Attachments: atts}
	if err := v.Validate(ev); !errors.Is(err, ErrNotAFault) {
		t.Fatalf("correct output accepted as wrong-output proof: %v", err)
	}
}

func TestWrongOutputRejectsSwappedAttachments(t *testing.T) {
	// A malicious reporter cannot substitute different inputs to make a
	// correct node look wrong: the digest check fails.
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	realIn := mkRecord(reg, 0, "s#0", "s", 7, 10, []byte("real"), nil)
	fakeIn := mkRecord(reg, 0, "s#0", "s", 7, 10, []byte("fake"), nil)
	realAtts := []sig.Envelope{realIn}
	realRec, _ := DecodeRecord(realIn.Body)
	good := HashCompute("t", 7, []Record{realRec})
	env := mkRecord(reg, 1, "t#0", "t", 7, 20, good, realAtts)
	ev := Evidence{Kind: KindWrongOutput, Accused: 1, Reporter: 2,
		Primary: env, Attachments: []sig.Envelope{fakeIn}}
	if err := v.Validate(ev); err == nil {
		t.Fatal("swapped attachments accepted")
	}
}

func TestWrongOutputSourceNotReexecutable(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	env := mkRecord(reg, 1, "sensor#0", "sensor", 7, 20, []byte("x"), nil)
	ev := Evidence{Kind: KindWrongOutput, Accused: 1, Reporter: 2, Primary: env}
	if err := v.Validate(ev); err == nil {
		t.Fatal("source wrong-output proof accepted despite no re-execution")
	}
}

func TestBadInputValid(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	// Node 1 commits to an attachment whose signature is garbage.
	garbage := sig.Envelope{Signer: 0, Body: []byte("whatever"), Sig: make([]byte, sig.SignatureSize)}
	atts := []sig.Envelope{garbage}
	env := mkRecord(reg, 1, "t#0", "t", 7, 20, []byte("v"), atts)
	ev := Evidence{Kind: KindBadInput, Accused: 1, Reporter: 2, Primary: env, Attachments: atts}
	if err := v.Validate(ev); err != nil {
		t.Fatalf("valid bad-input proof rejected: %v", err)
	}
}

func TestBadInputRejectsAllValidAttachments(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	in := mkRecord(reg, 0, "s#0", "s", 7, 10, []byte("ok"), nil)
	atts := []sig.Envelope{in}
	env := mkRecord(reg, 1, "t#0", "t", 7, 20, []byte("v"), atts)
	ev := Evidence{Kind: KindBadInput, Accused: 1, Reporter: 2, Primary: env, Attachments: atts}
	if err := v.Validate(ev); !errors.Is(err, ErrNotAFault) {
		t.Fatalf("bad-input proof with valid attachments: %v", err)
	}
}

func TestTimingValid(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg) // window is [0, 5ms]
	late := mkRecord(reg, 1, "t#0", "t", 7, 9*sim.Millisecond, []byte("v"), nil)
	ev := Evidence{Kind: KindTiming, Accused: 1, Reporter: 2, Primary: late}
	if err := v.Validate(ev); err != nil {
		t.Fatalf("valid timing proof rejected: %v", err)
	}
}

func TestTimingRejectsInWindow(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	onTime := mkRecord(reg, 1, "t#0", "t", 7, 2*sim.Millisecond, []byte("v"), nil)
	ev := Evidence{Kind: KindTiming, Accused: 1, Reporter: 2, Primary: onTime}
	if err := v.Validate(ev); !errors.Is(err, ErrNotAFault) {
		t.Fatalf("in-window record accepted as timing fault: %v", err)
	}
}

func TestPathAccusationValid(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	a := Accusation{Reporter: 2, Path: []network.NodeID{1, 3}, Producer: "t#0", Consumer: "u#0", Period: 7}
	env := reg.Seal(2, a.Encode())
	ev := Evidence{Kind: KindPathAccusation, Accused: -1, Reporter: 2, Primary: env}
	if err := v.Validate(ev); err != nil {
		t.Fatalf("valid accusation rejected: %v", err)
	}
}

func TestPathAccusationRejectsForgedReporter(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	a := Accusation{Reporter: 3, Path: []network.NodeID{1}, Producer: "t#0", Consumer: "u#0", Period: 7}
	env := reg.Seal(2, a.Encode()) // signed by 2, claims reporter 3
	ev := Evidence{Kind: KindPathAccusation, Accused: -1, Reporter: 3, Primary: env}
	if err := v.Validate(ev); err == nil {
		t.Fatal("forged-reporter accusation accepted")
	}
}

func TestAccusationRoundTrip(t *testing.T) {
	a := Accusation{Reporter: 2, Path: []network.NodeID{4, 1, 9}, Producer: "p", Consumer: "c", Period: 3}
	d, err := DecodeAccusation(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if d.Reporter != a.Reporter || len(d.Path) != 3 || d.Path[2] != 9 ||
		d.Producer != "p" || d.Consumer != "c" || d.Period != 3 {
		t.Errorf("round trip mismatch: %+v", d)
	}
}

func TestBogusEvidenceValid(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	// Node 3 endorses evidence that fails validation (an "equivocation"
	// with consistent records).
	e1 := mkRecord(reg, 2, "t#1", "t", 5, 100, []byte("same"), nil)
	inner := Evidence{Kind: KindEquivocation, Accused: 2, Reporter: 3, Primary: e1, Secondary: e1}
	wrapper := reg.Seal(3, inner.Encode())
	ev := Evidence{Kind: KindBogus, Accused: 3, Reporter: 0, Primary: wrapper}
	if err := v.Validate(ev); err != nil {
		t.Fatalf("valid bogus-endorsement proof rejected: %v", err)
	}
}

func TestBogusEvidenceRejectsValidInner(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	e1 := mkRecord(reg, 2, "t#1", "t", 5, 100, []byte("v1"), nil)
	e2 := mkRecord(reg, 2, "t#1", "t", 5, 100, []byte("v2"), nil)
	inner := Evidence{Kind: KindEquivocation, Accused: 2, Reporter: 3, Primary: e1, Secondary: e2}
	wrapper := reg.Seal(3, inner.Encode())
	ev := Evidence{Kind: KindBogus, Accused: 3, Reporter: 0, Primary: wrapper}
	if err := v.Validate(ev); !errors.Is(err, ErrNotAFault) {
		t.Fatalf("valid inner evidence flagged bogus: %v", err)
	}
}

func TestBogusEvidenceUndecodableInner(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	wrapper := reg.Seal(3, []byte("complete garbage"))
	ev := Evidence{Kind: KindBogus, Accused: 3, Reporter: 0, Primary: wrapper}
	if err := v.Validate(ev); err != nil {
		t.Fatalf("garbage endorsement not accepted as proof: %v", err)
	}
}

func TestAttributorThreshold(t *testing.T) {
	a := NewAttributor(2)
	// Node 5 accused by two distinct reporters.
	if c := a.Add([]network.NodeID{5, 1}, 1); len(c) != 0 {
		t.Fatalf("convicted too early: %v", c)
	}
	c := a.Add([]network.NodeID{5, 2}, 2)
	if len(c) != 1 || c[0] != 5 {
		t.Fatalf("node 5 not convicted: %v", c)
	}
	if !a.Convicted(5) || a.Convicted(1) {
		t.Error("conviction state wrong")
	}
	if a.Suspicion(5) != 2 {
		t.Errorf("suspicion count wrong: %d", a.Suspicion(5))
	}
}

func TestAttributorDedupsPathReporterPairs(t *testing.T) {
	a := NewAttributor(2)
	a.Add([]network.NodeID{5, 1}, 1)
	a.Add([]network.NodeID{1, 5}, 1) // same set, same reporter
	if a.Suspicion(5) != 1 {
		t.Errorf("duplicate accusation counted: suspicion = %d", a.Suspicion(5))
	}
}

func TestAttributorSingleReporterCannotConvict(t *testing.T) {
	// One reporter spamming different paths against node 5 never convicts
	// at threshold 2: it could be fabricating.
	a := NewAttributor(2)
	a.Add([]network.NodeID{5, 1}, 1)
	c := a.Add([]network.NodeID{5, 3, 1}, 1)
	if len(c) != 0 {
		t.Fatalf("convicted on a single reporter: %v", c)
	}
}

func TestAttributorReporterNotSelfAccused(t *testing.T) {
	// A reporter's own presence on its accusation paths must not accrue
	// suspicion against it, or honest reporting would be punished.
	a := NewAttributor(2)
	a.Add([]network.NodeID{5, 1}, 1)
	a.Add([]network.NodeID{6, 1}, 1)
	if a.Suspicion(1) != 0 {
		t.Errorf("reporter accrued self-suspicion: %d", a.Suspicion(1))
	}
	if a.Convicted(1) {
		t.Error("honest reporter convicted")
	}
}

func TestAttributorFramingResistance(t *testing.T) {
	// f=2 colluding reporters at threshold f+1=3 cannot convict node 9.
	a := NewAttributor(3)
	a.Add([]network.NodeID{9, 1}, 1)
	a.Add([]network.NodeID{9, 2}, 2)
	if a.Convicted(9) {
		t.Fatal("two reporters convicted at threshold 3")
	}
	// A third (correct) reporter only exists if the fault is real.
	c := a.Add([]network.NodeID{9, 3}, 3)
	if len(c) != 1 || c[0] != 9 {
		t.Fatalf("real fault not convicted: %v", c)
	}
}

func TestKindStringsAndProof(t *testing.T) {
	for _, k := range []Kind{KindEquivocation, KindWrongOutput, KindBadInput, KindTiming, KindPathAccusation, KindBogus} {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
	if KindPathAccusation.Proof() {
		t.Error("path accusation must not be a proof")
	}
	if !KindEquivocation.Proof() {
		t.Error("equivocation must be a proof")
	}
}

func TestHashComputeDeterministicAndOrderInsensitive(t *testing.T) {
	in1 := Record{Producer: "a#0", Logical: "a", Value: []byte("x")}
	in2 := Record{Producer: "b#0", Logical: "b", Value: []byte("y")}
	v1 := HashCompute("t", 3, []Record{in1, in2})
	v2 := HashCompute("t", 3, []Record{in2, in1})
	if !bytes.Equal(v1, v2) {
		t.Error("input order changed output")
	}
	v3 := HashCompute("t", 4, []Record{in1, in2})
	if bytes.Equal(v1, v3) {
		t.Error("period did not change output")
	}
}

func TestHashComputeDedupsReplicaInputs(t *testing.T) {
	// Two replicas of the same logical input with the same value must
	// yield the same output as one.
	in1 := Record{Producer: "a#0", Logical: "a", Value: []byte("x")}
	in1b := Record{Producer: "a#1", Logical: "a", Value: []byte("x")}
	one := HashCompute("t", 3, []Record{in1})
	two := HashCompute("t", 3, []Record{in1, in1b})
	if !bytes.Equal(one, two) {
		t.Error("replica duplication changed output")
	}
}

func TestSourceValueDeterministic(t *testing.T) {
	if !bytes.Equal(SourceValue("s", 1), SourceValue("s", 1)) {
		t.Error("source value not deterministic")
	}
	if bytes.Equal(SourceValue("s", 1), SourceValue("s", 2)) {
		t.Error("source value ignores period")
	}
}

func BenchmarkValidateEquivocation(b *testing.B) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	e1 := mkRecord(reg, 2, "t#1", "t", 5, 100, []byte("v1"), nil)
	e2 := mkRecord(reg, 2, "t#1", "t", 5, 100, []byte("v2"), nil)
	ev := Evidence{Kind: KindEquivocation, Accused: 2, Reporter: 0, Primary: e1, Secondary: e2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := v.Validate(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeRetainsWire(t *testing.T) {
	reg := sig.NewRegistry(31, 4)
	ev := floodEvidence(t, reg) // decoded: wire + ID memoized
	wire := ev.Encode()
	// Re-encoding a decoded blob is a slice reuse, not a re-serialization.
	if &wire[0] != &ev.Encode()[0] {
		t.Error("Encode of decoded evidence re-serialized instead of reusing the wire")
	}
	// The retained wire and ID agree with a from-scratch re-encode.
	fresh := Evidence{
		Kind: ev.Kind, Accused: ev.Accused, Reporter: ev.Reporter,
		DetectedAt: ev.DetectedAt, Primary: ev.Primary,
		Secondary: ev.Secondary, Attachments: ev.Attachments,
	}
	if !bytes.Equal(fresh.Encode(), wire) {
		t.Error("retained wire differs from field-wise encoding")
	}
	if fresh.ID() != ev.ID() {
		t.Error("memoized ID differs from recomputed ID")
	}
	// Canon on fresh evidence memoizes without changing anything.
	canon := fresh.Canon()
	if !bytes.Equal(canon.Encode(), wire) || canon.ID() != ev.ID() {
		t.Error("Canon changed the encoding or ID")
	}
	if &canon.Encode()[0] != &canon.Encode()[0] {
		t.Error("Canon did not retain a stable wire")
	}
}

func TestAppendEnvelopesMatchesEncode(t *testing.T) {
	reg := sig.NewRegistry(32, 3)
	envs := []sig.Envelope{
		reg.Seal(0, []byte("a")),
		reg.Seal(1, []byte("bb")),
		reg.Seal(2, []byte("ccc")),
	}
	enc := EncodeEnvelopes(envs)
	if len(enc) != EnvelopesSize(envs) {
		t.Errorf("EnvelopesSize = %d, encoded = %d", EnvelopesSize(envs), len(enc))
	}
	app := AppendEnvelopes([]byte{0xAA}, envs)
	if app[0] != 0xAA || !bytes.Equal(app[1:], enc) {
		t.Error("AppendEnvelopes diverges from EncodeEnvelopes")
	}
	back, err := DecodeEnvelopes(enc)
	if err != nil || len(back) != 3 {
		t.Fatalf("round trip failed: %v", err)
	}
	for i := range back {
		if !bytes.Equal(back[i].Body, envs[i].Body) || !bytes.Equal(back[i].Sig, envs[i].Sig) {
			t.Errorf("envelope %d mangled", i)
		}
	}
}
