package evidence

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"btr/internal/flow"
)

// HashCompute is the canonical deterministic task function used for
// generic (non-plant) workloads: the output value of a task is a hash of
// its identity, the period, and its input values (sorted by producing
// logical task so replica arrival order does not matter). Both the runtime
// (to execute tasks) and validators (to re-execute them for wrong-output
// proofs) use this same function, which is what makes commission faults
// attributable.
func HashCompute(task flow.TaskID, period uint64, inputs []Record) []byte {
	sorted := append([]Record(nil), inputs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Logical != sorted[j].Logical {
			return sorted[i].Logical < sorted[j].Logical
		}
		return sorted[i].Producer < sorted[j].Producer
	})
	h := sha256.New()
	h.Write([]byte(task))
	var pb [8]byte
	binary.LittleEndian.PutUint64(pb[:], period)
	h.Write(pb[:])
	// Deduplicate replicas of the same logical input: replicas carry the
	// same value when correct, and the consumer computes from one value
	// per logical input.
	var lastLogical flow.TaskID
	for i, in := range sorted {
		if i > 0 && in.Logical == lastLogical {
			continue
		}
		lastLogical = in.Logical
		h.Write([]byte(in.Logical))
		h.Write(in.Value)
	}
	return h.Sum(nil)[:16]
}

// SourceValue is the canonical deterministic environment sample: all
// replicas of a source observe the same physical world, modeled as a hash
// of the logical source ID and the period. (Plant-backed workloads replace
// this with real sensor readings.)
func SourceValue(task flow.TaskID, period uint64) []byte {
	h := sha256.New()
	h.Write([]byte("env:"))
	h.Write([]byte(task))
	var pb [8]byte
	binary.LittleEndian.PutUint64(pb[:], period)
	h.Write(pb[:])
	return h.Sum(nil)[:16]
}
