package evidence

import (
	"bytes"
	"testing"

	"btr/internal/network"
	"btr/internal/sim"
)

// FuzzRecordRoundTrip checks the two invariants of the Record codec that
// the evidence layer's security rests on:
//
//  1. Encode∘Decode is the identity on valid records (a verifier that
//     re-encodes what it decoded signs exactly the producer's bytes), and
//  2. Decode either rejects malformed input or yields a record whose
//     re-encoding round-trips — no input may decode to a record that
//     serializes differently (an equivocation-proof forgery vector).
func FuzzRecordRoundTrip(f *testing.F) {
	seed := Record{
		Producer: "fc.law#1",
		Logical:  "fc.law",
		Node:     3,
		Period:   17,
		SendOff:  250 * sim.Microsecond,
		Value:    []byte("v"),
	}
	copy(seed.InputsDigest[:], bytes.Repeat([]byte{0xab}, 32))
	f.Add(seed.Encode())
	f.Add(Record{}.Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	long := Record{Producer: "p", Logical: "l", Value: bytes.Repeat([]byte{7}, 300)}
	f.Add(long.Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return // malformed input rejected: fine
		}
		enc := rec.Encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, enc)
		}
		rec2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-decode of valid encoding failed: %v", err)
		}
		if rec2.Producer != rec.Producer || rec2.Logical != rec.Logical ||
			rec2.Node != rec.Node || rec2.Period != rec.Period ||
			rec2.SendOff != rec.SendOff || !bytes.Equal(rec2.Value, rec.Value) ||
			rec2.InputsDigest != rec.InputsDigest {
			t.Fatalf("round-trip mismatch: %+v vs %+v", rec, rec2)
		}
	})
}

// TestRecordRoundTripStructured complements the fuzz target with a
// structured sweep over field shapes (empty strings, empty and large
// values, extreme numeric fields).
func TestRecordRoundTripStructured(t *testing.T) {
	cases := []Record{
		{},
		{Producer: "a#0", Logical: "a", Node: 0, Period: 0, Value: nil},
		{Producer: "x", Logical: "y", Node: network.NodeID(1<<31 - 1), Period: 1<<64 - 1,
			SendOff: -5 * sim.Millisecond, Value: []byte{}},
		{Producer: "sink#2", Logical: "sink", Node: 9, Period: 1,
			SendOff: sim.Never, Value: bytes.Repeat([]byte{0x55}, 1024)},
	}
	for i, rec := range cases {
		got, err := DecodeRecord(rec.Encode())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Producer != rec.Producer || got.Logical != rec.Logical ||
			got.Node != rec.Node || got.Period != rec.Period ||
			got.SendOff != rec.SendOff || !bytes.Equal(got.Value, rec.Value) ||
			got.InputsDigest != rec.InputsDigest {
			t.Fatalf("case %d round-trip mismatch:\n%+v\n%+v", i, rec, got)
		}
	}
}
