// Package evidence implements BTR's self-certifying fault evidence (§4.2).
//
// Since there are no trusted nodes, compromised nodes may report
// nonexistent faults or lie about others; therefore all actionable
// evidence must be independently verifiable. The package provides:
//
//   - Record: the signed statement embedded in every dataflow message. A
//     record names the producing (replica) task, the logical task, the
//     period, the claimed send offset, the output value, and a digest of
//     the exact signed input records the producer used. The digest is the
//     accountability hook: a producer commits to its inputs, so any
//     verifier holding those inputs can re-execute the deterministic task
//     and check the output (the PeerReview approach, adapted to periodic
//     dataflow).
//
//   - Evidence: a typed proof. Commission faults yield cryptographic
//     proofs (equivocation, wrong-output, bad-input, timing) that any node
//     can validate with the key registry plus the shared strategy.
//     Omission faults cannot be proven directly (§4.2: "there is no direct
//     way to prove that a faulty node failed to send"), so they yield
//     signed path accusations aggregated by a threshold attributor.
//
//   - Validator: validates any Evidence cheaply (fixed number of signature
//     checks plus one bounded re-execution), so bogus evidence can be
//     "quickly recognized and rejected" (§4.3) and counted against its
//     endorser.
package evidence

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/sig"
	"btr/internal/sim"
)

// Record is the body of every signed dataflow message.
type Record struct {
	Producer flow.TaskID    // replica instance, e.g. "fc.law#1"
	Logical  flow.TaskID    // underlying logical task, e.g. "fc.law"
	Node     network.NodeID // producing node (must match the signer)
	Period   uint64
	SendOff  sim.Time // claimed send offset within the period
	Value    []byte
	// InputsDigest commits to the exact encoded envelopes of the input
	// records the producer used (in the order attached). Zero for
	// sources.
	InputsDigest [32]byte
}

// buf is a tiny append-only binary writer; all encodings in this package
// are little-endian with u32 length prefixes.
type buf struct{ b []byte }

func (w *buf) u8(v uint8)     { w.b = append(w.b, v) }
func (w *buf) u32(v uint32)   { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *buf) u64(v uint64)   { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *buf) i64(v int64)    { w.u64(uint64(v)) }
func (w *buf) bytes(v []byte) { w.u32(uint32(len(v))); w.b = append(w.b, v...) }
func (w *buf) str(v string)   { w.bytes([]byte(v)) }
func (w *buf) raw(v []byte)   { w.b = append(w.b, v...) }

type reader struct {
	b   []byte
	err error
}

var errShort = errors.New("evidence: truncated input")

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.err = errShort
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.err = errShort
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.err = errShort
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || len(r.b) < n {
		r.err = errShort
		return nil
	}
	v := make([]byte, n)
	copy(v, r.b[:n])
	r.b = r.b[n:]
	return v
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) raw(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.err = errShort
		return nil
	}
	v := make([]byte, n)
	copy(v, r.b[:n])
	r.b = r.b[n:]
	return v
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("evidence: %d trailing bytes", len(r.b))
	}
	return nil
}

// Encode serializes the record.
func (r Record) Encode() []byte {
	var w buf
	w.str(string(r.Producer))
	w.str(string(r.Logical))
	w.u32(uint32(r.Node))
	w.u64(r.Period)
	w.i64(int64(r.SendOff))
	w.bytes(r.Value)
	w.raw(r.InputsDigest[:])
	return w.b
}

// DecodeRecord parses an encoded record, rejecting malformed input.
func DecodeRecord(b []byte) (Record, error) {
	rd := &reader{b: b}
	var r Record
	r.Producer = flow.TaskID(rd.str())
	r.Logical = flow.TaskID(rd.str())
	r.Node = network.NodeID(rd.u32())
	r.Period = rd.u64()
	r.SendOff = sim.Time(rd.i64())
	r.Value = rd.bytes()
	copy(r.InputsDigest[:], rd.raw(32))
	if err := rd.done(); err != nil {
		return Record{}, err
	}
	return r, nil
}

// scratchPool recycles encoding scratch buffers so steady-state digest
// and marshaling work allocates nothing (the PR 3 kernel's pooled-record
// pattern, applied to the codec).
var scratchPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// DigestEnvelopes computes the commitment over an ordered set of input
// envelopes. Envelope encodings are streamed through a pooled scratch
// buffer; no per-call allocations in steady state.
func DigestEnvelopes(envs []sig.Envelope) [32]byte {
	h := sha256.New()
	sp := scratchPool.Get().(*[]byte)
	scratch := (*sp)[:0]
	for _, e := range envs {
		var lenb [4]byte
		binary.LittleEndian.PutUint32(lenb[:], uint32(e.EncodedSize()))
		h.Write(lenb[:])
		scratch = e.AppendTo(scratch[:0])
		h.Write(scratch)
	}
	*sp = scratch
	scratchPool.Put(sp)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// EnvelopesSize returns len(EncodeEnvelopes(envs)) without encoding.
func EnvelopesSize(envs []sig.Envelope) int {
	n := 4
	for _, e := range envs {
		n += 4 + e.EncodedSize()
	}
	return n
}

// AppendEnvelopes appends the count-prefixed envelope-list encoding to
// dst and returns the extended slice (zero allocations when dst has
// capacity).
func AppendEnvelopes(dst []byte, envs []sig.Envelope) []byte {
	w := buf{b: dst}
	w.u32(uint32(len(envs)))
	for _, e := range envs {
		w.u32(uint32(e.EncodedSize()))
		w.b = e.AppendTo(w.b)
	}
	return w.b
}

// EncodeEnvelopes serializes a list of envelopes (count-prefixed).
func EncodeEnvelopes(envs []sig.Envelope) []byte {
	return AppendEnvelopes(make([]byte, 0, EnvelopesSize(envs)), envs)
}

// DecodeEnvelopes parses a count-prefixed envelope list.
func DecodeEnvelopes(b []byte) ([]sig.Envelope, error) {
	rd := &reader{b: b}
	n := int(rd.u32())
	if rd.err != nil {
		return nil, rd.err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("evidence: implausible envelope count %d", n)
	}
	envs := make([]sig.Envelope, 0, n)
	for i := 0; i < n; i++ {
		eb := rd.bytes()
		if rd.err != nil {
			return nil, rd.err
		}
		e, err := sig.DecodeEnvelope(eb)
		if err != nil {
			return nil, err
		}
		envs = append(envs, e)
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return envs, nil
}

// SameSlot reports whether two records claim the same output slot (same
// logical task and period) — the precondition for equivocation.
func SameSlot(a, b Record) bool {
	return a.Logical == b.Logical && a.Period == b.Period && a.Node == b.Node
}

// Conflicts reports whether two same-slot records are mutually
// inconsistent (different value or different input commitment).
func Conflicts(a, b Record) bool {
	return !bytes.Equal(a.Value, b.Value) || a.InputsDigest != b.InputsDigest ||
		a.SendOff != b.SendOff || a.Producer != b.Producer
}
