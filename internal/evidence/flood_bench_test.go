package evidence

import (
	"bytes"
	"testing"

	"btr/internal/network"
	"btr/internal/sig"
	"btr/internal/sim"
)

// msgEvidence mirrors the runtime's evidence frame tag (the prefix byte a
// flood hop puts in front of the endorsement envelope).
const msgEvidence = 'E'

// floodEvidence builds a realistic wrong-output proof (primary record +
// two attachments) and returns it decoded — i.e. in the state a flood hop
// holds it: wire retained, ID memoized.
func floodEvidence(t testing.TB, reg *sig.Registry) Evidence {
	atts := []sig.Envelope{
		reg.Seal(0, Record{Producer: "s0#0", Logical: "s0", Node: 0, Period: 7, Value: []byte("u")}.Encode()),
		reg.Seal(1, Record{Producer: "s1#0", Logical: "s1", Node: 1, Period: 7, Value: []byte("v")}.Encode()),
	}
	rec := Record{
		Producer: "c#0", Logical: "c", Node: 2, Period: 7,
		SendOff: 3 * sim.Millisecond, Value: []byte("wrong"),
		InputsDigest: DigestEnvelopes(atts),
	}
	ev := Evidence{
		Kind: KindWrongOutput, Accused: 2, Reporter: 3,
		DetectedAt:  42 * sim.Millisecond,
		Primary:     reg.Seal(2, rec.Encode()),
		Attachments: atts,
	}
	dec, err := Decode(ev.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return dec
}

// legacyEncodeEvidence is a frozen copy of the pre-fast-path Encode: it
// re-serializes every nested envelope on every call, exactly as every
// flood hop used to.
func legacyEncodeEvidence(e Evidence) []byte {
	var w buf
	w.u8(uint8(e.Kind))
	w.u32(uint32(e.Accused))
	w.u32(uint32(e.Reporter))
	w.i64(int64(e.DetectedAt))
	legacyEncodeEnvelope := func(env sig.Envelope) []byte {
		out := make([]byte, 0, env.EncodedSize())
		return env.AppendTo(out)
	}
	w.bytes(legacyEncodeEnvelope(e.Primary))
	var secBytes []byte
	if e.Secondary.Sig != nil {
		secBytes = legacyEncodeEnvelope(e.Secondary)
	}
	w.bytes(secBytes)
	var envsW buf
	envsW.u32(uint32(len(e.Attachments)))
	for _, env := range e.Attachments {
		envsW.bytes(legacyEncodeEnvelope(env))
	}
	w.raw(envsW.b)
	return w.b
}

// forwardHop is the steady-state encode-once forwarding path: retained
// wire reuse plus a memoized seal+frame. This is what BTR's evidence
// distributor executes per hop (internal/runtime.forwardEvidence).
func forwardHop(reg *sig.Registry, forwarder network.NodeID, ev Evidence) []byte {
	return reg.SealedPayload(forwarder, msgEvidence, ev.Encode())
}

// legacyHop is the frozen pre-fast-path equivalent: re-encode the
// evidence, sign it fresh, frame with an extra copy.
func legacyHop(reg *sig.Registry, forwarder network.NodeID, ev Evidence) []byte {
	wrapper := reg.Seal(forwarder, legacyEncodeEvidence(ev))
	return append([]byte{msgEvidence}, wrapper.Encode()...)
}

// TestForwardHopMatchesLegacy pins the fast path to the frozen one: both
// produce byte-identical frames.
func TestForwardHopMatchesLegacy(t *testing.T) {
	reg := sig.NewRegistry(21, 4)
	reg.UseMemos(sig.NewVerifyMemo(), sig.NewSealMemo())
	plain := sig.NewRegistry(21, 4)
	plain.UseMemos(nil, nil)
	ev := floodEvidence(t, reg)
	for i := 0; i < 2; i++ { // second pass hits the seal memo
		if !bytes.Equal(forwardHop(reg, 3, ev), legacyHop(plain, 3, ev)) {
			t.Fatalf("pass %d: fast forwarding frame diverges from legacy", i)
		}
	}
}

// TestEvidenceFloodZeroAlloc asserts the acceptance criterion directly:
// the steady-state encode-once forwarding path allocates nothing.
func TestEvidenceFloodZeroAlloc(t *testing.T) {
	reg := sig.NewRegistry(22, 4)
	reg.UseMemos(sig.NewVerifyMemo(), sig.NewSealMemo())
	ev := floodEvidence(t, reg)
	forwardHop(reg, 1, ev) // warm the seal memo
	if allocs := testing.AllocsPerRun(200, func() {
		forwardHop(reg, 1, ev)
	}); allocs != 0 {
		t.Fatalf("steady-state flood hop allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkEvidenceFlood compares one evidence-flood hop on the
// encode-once fast path (retained wire + seal memo; 0 allocs/op steady
// state) against the frozen legacy path (full re-encode + fresh seal).
func BenchmarkEvidenceFlood(b *testing.B) {
	b.Run("encode-once", func(b *testing.B) {
		reg := sig.NewRegistry(23, 4)
		reg.UseMemos(sig.NewVerifyMemo(), sig.NewSealMemo())
		ev := floodEvidence(b, reg)
		forwardHop(reg, 1, ev) // warm
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			forwardHop(reg, 1, ev)
		}
	})
	b.Run("legacy", func(b *testing.B) {
		reg := sig.NewRegistry(23, 4)
		reg.UseMemos(nil, nil)
		ev := floodEvidence(b, reg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			legacyHop(reg, 1, ev)
		}
	})
}

// BenchmarkDigestEnvelopes measures the pooled-scratch digest (the
// per-emit and per-arrival commitment computation).
func BenchmarkDigestEnvelopes(b *testing.B) {
	reg := sig.NewRegistry(24, 4)
	envs := []sig.Envelope{
		reg.Seal(0, Record{Producer: "a#0", Logical: "a", Node: 0, Period: 1, Value: []byte("x")}.Encode()),
		reg.Seal(1, Record{Producer: "b#0", Logical: "b", Node: 1, Period: 1, Value: []byte("y")}.Encode()),
		reg.Seal(2, Record{Producer: "c#0", Logical: "c", Node: 2, Period: 1, Value: []byte("z")}.Encode()),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DigestEnvelopes(envs)
	}
}
