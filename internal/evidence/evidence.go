package evidence

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/sig"
	"btr/internal/sim"
)

// Kind classifies evidence.
type Kind uint8

const (
	// KindEquivocation: two valid envelopes from the same node for the
	// same output slot with conflicting records. Cryptographic proof.
	KindEquivocation Kind = iota + 1
	// KindWrongOutput: a valid envelope whose record's value does not
	// match re-executing the (deterministic) logical task on the signed
	// inputs the record committed to. Cryptographic proof.
	KindWrongOutput
	// KindBadInput: a valid envelope committing (via InputsDigest) to an
	// attachment set containing an envelope with an invalid signature —
	// the producer endorsed garbage input. Cryptographic proof.
	KindBadInput
	// KindTiming: a valid envelope whose claimed SendOff lies outside the
	// slot the shared strategy schedules for that producer/period. Doing
	// the right thing at the wrong time (§4.2). Cryptographic proof.
	KindTiming
	// KindPathAccusation: a signed claim that a required message did not
	// traverse a path in time. Not independently provable; aggregated by
	// the threshold Attributor (§4.2's omission countermeasure).
	KindPathAccusation
	// KindBogus: an endorsement wrapper proving that some node endorsed
	// evidence that fails validation — counted against the endorser
	// (§4.3: "invalid evidence can be counted as evidence against the
	// signer").
	KindBogus
	// KindOverBudget: a signed declaration by the reporter that its local
	// fault set has grown past the plan capacity f — the guarantee is
	// suspended, not silently violated (Building on Quicksand's
	// detect-and-apologize stance). Accuses no one (Accused = -1); the
	// body is a BudgetVerdict.
	KindOverBudget
	// KindReconciled: the matching close: the reporter's fault set is
	// back within plan capacity and the bound is live again. Accuses no
	// one; the body is a BudgetVerdict.
	KindReconciled
)

func (k Kind) String() string {
	switch k {
	case KindEquivocation:
		return "equivocation"
	case KindWrongOutput:
		return "wrong-output"
	case KindBadInput:
		return "bad-input"
	case KindTiming:
		return "timing"
	case KindPathAccusation:
		return "path-accusation"
	case KindBogus:
		return "bogus-endorsement"
	case KindOverBudget:
		return "over-budget"
	case KindReconciled:
		return "reconciled"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Proof reports whether this kind is independently verifiable (true) or an
// aggregatable accusation (false). Budget verdicts convict nobody either
// way, so they are grouped with the non-proofs.
func (k Kind) Proof() bool {
	return k != KindPathAccusation && k != KindOverBudget && k != KindReconciled
}

// Accusation is the body of a KindPathAccusation: the reporter claims the
// message for Edge at Period did not arrive in time over Path.
type Accusation struct {
	Reporter network.NodeID
	Path     []network.NodeID // every node the message should have crossed
	Producer flow.TaskID
	Consumer flow.TaskID
	Period   uint64
}

// Encode serializes the accusation.
func (a Accusation) Encode() []byte {
	var w buf
	w.u32(uint32(a.Reporter))
	w.u32(uint32(len(a.Path)))
	for _, n := range a.Path {
		w.u32(uint32(n))
	}
	w.str(string(a.Producer))
	w.str(string(a.Consumer))
	w.u64(a.Period)
	return w.b
}

// DecodeAccusation parses an encoded accusation.
func DecodeAccusation(b []byte) (Accusation, error) {
	rd := &reader{b: b}
	var a Accusation
	a.Reporter = network.NodeID(rd.u32())
	n := int(rd.u32())
	if rd.err == nil && n > 1<<12 {
		return Accusation{}, fmt.Errorf("evidence: implausible path length %d", n)
	}
	for i := 0; i < n; i++ {
		a.Path = append(a.Path, network.NodeID(rd.u32()))
	}
	a.Producer = flow.TaskID(rd.str())
	a.Consumer = flow.TaskID(rd.str())
	a.Period = rd.u64()
	if err := rd.done(); err != nil {
		return Accusation{}, err
	}
	return a, nil
}

// BudgetVerdict is the body of a KindOverBudget / KindReconciled
// statement: the reporter's local active-fault count versus the plan
// capacity f at the moment the budget boundary was crossed.
type BudgetVerdict struct {
	Reporter network.NodeID
	Active   uint32 // convicted faults the reporter holds active
	Capacity uint32 // the plan's fault budget f
}

// Encode serializes the verdict.
func (b BudgetVerdict) Encode() []byte {
	var w buf
	w.u32(uint32(b.Reporter))
	w.u32(b.Active)
	w.u32(b.Capacity)
	return w.b
}

// DecodeBudgetVerdict parses an encoded budget verdict.
func DecodeBudgetVerdict(p []byte) (BudgetVerdict, error) {
	rd := &reader{b: p}
	var b BudgetVerdict
	b.Reporter = network.NodeID(rd.u32())
	b.Active = rd.u32()
	b.Capacity = rd.u32()
	if err := rd.done(); err != nil {
		return BudgetVerdict{}, err
	}
	return b, nil
}

// Evidence is one typed, transportable piece of evidence.
//
// Decoded evidence retains its original wire bytes and its ID (see
// Decode), so re-encoding a received blob — the flood-forwarding hot path
// — is a slice reuse instead of a re-serialization. Evidence must be
// treated as immutable once decoded or canonicalized; code that needs a
// modified copy must build a fresh value field by field.
type Evidence struct {
	Kind     Kind
	Accused  network.NodeID // -1 for path accusations (not yet attributed)
	Reporter network.NodeID
	// DetectedAt is the reporter-local detection time; all correct nodes
	// derive the mode-change activation instant from it.
	DetectedAt sim.Time
	// Primary is the main signed statement (the faulty record; or the
	// accusation for KindPathAccusation; or the endorsed blob's wrapper
	// for KindBogus).
	Primary sig.Envelope
	// Secondary is the conflicting record (equivocation) — unused
	// otherwise.
	Secondary sig.Envelope
	// Attachments carry the committed input envelopes (wrong-output /
	// bad-input re-execution).
	Attachments []sig.Envelope

	// wire is the retained original encoding (set by Decode/Canon) and id
	// its memoized identifier. Both ride along in value copies.
	wire  []byte
	id    [16]byte
	hasID bool
}

// EncodedSize returns len(Encode()) without encoding.
func (e Evidence) EncodedSize() int {
	n := 1 + 4 + 4 + 8 + 4 + e.Primary.EncodedSize() + 4
	if e.Secondary.Sig != nil {
		n += e.Secondary.EncodedSize()
	}
	return n + EnvelopesSize(e.Attachments)
}

// Encode serializes evidence for transport. For decoded (or Canon'd)
// evidence this returns the retained wire bytes — callers must not mutate
// the result.
func (e Evidence) Encode() []byte {
	if e.wire != nil {
		return e.wire
	}
	return e.AppendTo(make([]byte, 0, e.EncodedSize()))
}

// AppendTo appends the evidence encoding to dst and returns the extended
// slice (zero allocations when dst has capacity).
func (e Evidence) AppendTo(dst []byte) []byte {
	if e.wire != nil {
		return append(dst, e.wire...)
	}
	w := buf{b: dst}
	w.u8(uint8(e.Kind))
	w.u32(uint32(e.Accused))
	w.u32(uint32(e.Reporter))
	w.i64(int64(e.DetectedAt))
	w.u32(uint32(e.Primary.EncodedSize()))
	w.b = e.Primary.AppendTo(w.b)
	if e.Secondary.Sig != nil { // absent Secondary encodes as empty
		w.u32(uint32(e.Secondary.EncodedSize()))
		w.b = e.Secondary.AppendTo(w.b)
	} else {
		w.u32(0)
	}
	w.b = AppendEnvelopes(w.b, e.Attachments)
	return w.b
}

// Canon returns e with its encoding and ID memoized, so subsequent
// Encode/ID calls are slice reuses. Locally raised evidence is Canon'd
// once before flooding; decoded evidence is already canonical.
func (e Evidence) Canon() Evidence {
	if e.wire == nil {
		e.wire = e.AppendTo(make([]byte, 0, e.EncodedSize()))
	}
	if !e.hasID {
		h := sha256.Sum256(e.wire)
		copy(e.id[:], h[:16])
		e.hasID = true
	}
	return e
}

// Decode parses encoded evidence; it is strict about framing so bogus
// blobs are rejected before any signature verification. The returned
// Evidence retains b as its canonical wire form (callers hand over
// ownership of b) and carries a precomputed ID, so forwarding a received
// blob re-encodes nothing.
func Decode(b []byte) (Evidence, error) {
	rd := &reader{b: b}
	var e Evidence
	e.Kind = Kind(rd.u8())
	e.Accused = network.NodeID(int32(rd.u32()))
	e.Reporter = network.NodeID(int32(rd.u32()))
	e.DetectedAt = sim.Time(rd.i64())
	pb := rd.bytes()
	sb := rd.bytes()
	if rd.err != nil {
		return Evidence{}, rd.err
	}
	var err error
	if e.Primary, err = sig.DecodeEnvelope(pb); err != nil {
		return Evidence{}, err
	}
	if len(sb) > 0 {
		if e.Secondary, err = sig.DecodeEnvelope(sb); err != nil {
			return Evidence{}, err
		}
	}
	if e.Attachments, err = DecodeEnvelopes(rd.b); err != nil {
		return Evidence{}, err
	}
	rd.b = nil
	e.wire = b
	h := sha256.Sum256(b)
	copy(e.id[:], h[:16])
	e.hasID = true
	return e, nil
}

// ID returns a stable 16-byte identifier (for dedup) derived from the
// encoded bytes. Decoded/Canon'd evidence returns the memoized value.
func (e Evidence) ID() [16]byte {
	if e.hasID {
		return e.id
	}
	h := sha256.Sum256(e.Encode())
	var id [16]byte
	copy(id[:], h[:16])
	return id
}

// Recompute re-executes logical task `task` for `period` on the given
// decoded input records, returning the expected output value. ok=false
// means the task cannot be re-executed (e.g., a source sampling the
// physical world), in which case wrong-output proofs are impossible and
// detection falls back to accusations.
type Recompute func(task flow.TaskID, period uint64, inputs []Record) (value []byte, ok bool)

// SendWindow returns the scheduled send window (inclusive offsets) for a
// producer replica in the current mode. ok=false if the validator does not
// know a window (no timing judgment possible).
type SendWindow func(producer flow.TaskID, period uint64) (lo, hi sim.Time, ok bool)

// Validator validates evidence. Validation cost is intentionally bounded:
// at most 2 + len(Attachments) signature checks and one re-execution.
type Validator struct {
	Reg       *sig.Registry
	Recompute Recompute
	Window    SendWindow
}

// Common validation errors (wrapped with detail).
var (
	ErrBadSignature = errors.New("evidence: bad signature")
	ErrMalformed    = errors.New("evidence: malformed")
	ErrNotAFault    = errors.New("evidence: statements are consistent — no fault shown")
)

// Validate checks evidence of any kind. A nil error means any correct node
// must accept the evidence and act on it.
func (v *Validator) Validate(e Evidence) error {
	switch e.Kind {
	case KindEquivocation:
		return v.validateEquivocation(e)
	case KindWrongOutput:
		return v.validateWrongOutput(e)
	case KindBadInput:
		return v.validateBadInput(e)
	case KindTiming:
		return v.validateTiming(e)
	case KindPathAccusation:
		return v.validateAccusation(e)
	case KindBogus:
		return v.validateBogus(e)
	case KindOverBudget, KindReconciled:
		return v.validateBudget(e)
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrMalformed, e.Kind)
	}
}

func (v *Validator) checkedRecord(env sig.Envelope) (Record, error) {
	if !v.Reg.Check(env) {
		return Record{}, fmt.Errorf("%w: envelope from %d", ErrBadSignature, env.Signer)
	}
	r, err := DecodeRecord(env.Body)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if r.Node != env.Signer {
		return Record{}, fmt.Errorf("%w: record names node %d but signed by %d", ErrMalformed, r.Node, env.Signer)
	}
	return r, nil
}

func (v *Validator) validateEquivocation(e Evidence) error {
	r1, err := v.checkedRecord(e.Primary)
	if err != nil {
		return err
	}
	r2, err := v.checkedRecord(e.Secondary)
	if err != nil {
		return err
	}
	if e.Primary.Signer != e.Secondary.Signer {
		return fmt.Errorf("%w: different signers", ErrMalformed)
	}
	if !SameSlot(r1, r2) {
		return fmt.Errorf("%w: records for different slots", ErrMalformed)
	}
	if !Conflicts(r1, r2) {
		return ErrNotAFault
	}
	if e.Accused != e.Primary.Signer {
		return fmt.Errorf("%w: accused %d is not the signer %d", ErrMalformed, e.Accused, e.Primary.Signer)
	}
	return nil
}

func (v *Validator) validateWrongOutput(e Evidence) error {
	r, err := v.checkedRecord(e.Primary)
	if err != nil {
		return err
	}
	if DigestEnvelopes(e.Attachments) != r.InputsDigest {
		return fmt.Errorf("%w: attachments do not match the record's input digest", ErrMalformed)
	}
	// Wrong-output proofs need every attachment valid (an invalid one
	// under a matching digest is a *bad-input* proof; demand the right
	// kind). All-or-nothing, so one memoized batch sweep checks the
	// signatures and the loop below only decodes.
	if i, ok := v.Reg.CheckBatch(e.Attachments); !ok {
		return fmt.Errorf("%w: attachment %d invalid (use bad-input): %v", ErrMalformed, i, ErrBadSignature)
	}
	inputs := make([]Record, 0, len(e.Attachments))
	for _, env := range e.Attachments {
		ir, err := DecodeRecord(env.Body)
		if err != nil || ir.Node != env.Signer {
			return fmt.Errorf("%w: attachment record invalid (use bad-input)", ErrMalformed)
		}
		inputs = append(inputs, ir)
	}
	want, ok := v.Recompute(r.Logical, r.Period, inputs)
	if !ok {
		return fmt.Errorf("%w: task %q not re-executable", ErrMalformed, r.Logical)
	}
	if string(want) == string(r.Value) {
		return ErrNotAFault
	}
	if e.Accused != e.Primary.Signer {
		return fmt.Errorf("%w: accused %d is not the signer %d", ErrMalformed, e.Accused, e.Primary.Signer)
	}
	return nil
}

func (v *Validator) validateBadInput(e Evidence) error {
	r, err := v.checkedRecord(e.Primary)
	if err != nil {
		return err
	}
	if DigestEnvelopes(e.Attachments) != r.InputsDigest {
		return fmt.Errorf("%w: attachments do not match the record's input digest", ErrMalformed)
	}
	for _, env := range e.Attachments {
		if _, err := v.checkedRecord(env); err != nil {
			// Found the endorsed-garbage input: the producer committed to
			// it via the digest, so the proof stands.
			if e.Accused != e.Primary.Signer {
				return fmt.Errorf("%w: accused %d is not the signer %d", ErrMalformed, e.Accused, e.Primary.Signer)
			}
			return nil
		}
	}
	return ErrNotAFault
}

func (v *Validator) validateTiming(e Evidence) error {
	r, err := v.checkedRecord(e.Primary)
	if err != nil {
		return err
	}
	lo, hi, ok := v.Window(r.Producer, r.Period)
	if !ok {
		return fmt.Errorf("%w: no schedule window known for %q", ErrMalformed, r.Producer)
	}
	if r.SendOff >= lo && r.SendOff <= hi {
		return ErrNotAFault
	}
	if e.Accused != e.Primary.Signer {
		return fmt.Errorf("%w: accused %d is not the signer %d", ErrMalformed, e.Accused, e.Primary.Signer)
	}
	return nil
}

func (v *Validator) validateAccusation(e Evidence) error {
	if !v.Reg.Check(e.Primary) {
		return fmt.Errorf("%w: accusation envelope", ErrBadSignature)
	}
	a, err := DecodeAccusation(e.Primary.Body)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if a.Reporter != e.Primary.Signer || a.Reporter != e.Reporter {
		return fmt.Errorf("%w: accusation reporter mismatch", ErrMalformed)
	}
	if len(a.Path) == 0 {
		return fmt.Errorf("%w: empty path", ErrMalformed)
	}
	if e.Accused != -1 {
		return fmt.Errorf("%w: path accusations must not pre-attribute", ErrMalformed)
	}
	return nil
}

func (v *Validator) validateBogus(e Evidence) error {
	// Primary: endorser's signature over the (encoded) inner evidence.
	if !v.Reg.Check(e.Primary) {
		return fmt.Errorf("%w: endorsement envelope", ErrBadSignature)
	}
	inner, err := Decode(e.Primary.Body)
	if err != nil {
		// Endorsing an undecodable blob is itself proof.
		if e.Accused != e.Primary.Signer {
			return fmt.Errorf("%w: accused is not the endorser", ErrMalformed)
		}
		return nil
	}
	if inner.Kind == KindBogus {
		return fmt.Errorf("%w: nested bogus evidence", ErrMalformed)
	}
	if err := v.Validate(inner); err == nil {
		return ErrNotAFault // the endorsed evidence is fine
	}
	if e.Accused != e.Primary.Signer {
		return fmt.Errorf("%w: accused is not the endorser", ErrMalformed)
	}
	return nil
}

func (v *Validator) validateBudget(e Evidence) error {
	if !v.Reg.Check(e.Primary) {
		return fmt.Errorf("%w: budget verdict envelope", ErrBadSignature)
	}
	b, err := DecodeBudgetVerdict(e.Primary.Body)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if b.Reporter != e.Primary.Signer || b.Reporter != e.Reporter {
		return fmt.Errorf("%w: budget verdict reporter mismatch", ErrMalformed)
	}
	if e.Accused != -1 {
		return fmt.Errorf("%w: budget verdicts accuse no one", ErrMalformed)
	}
	if e.Kind == KindOverBudget && b.Active <= b.Capacity {
		return fmt.Errorf("%w: %d active within capacity %d", ErrNotAFault, b.Active, b.Capacity)
	}
	if e.Kind == KindReconciled && b.Active > b.Capacity {
		return fmt.Errorf("%w: %d active still beyond capacity %d", ErrMalformed, b.Active, b.Capacity)
	}
	return nil
}

// Attributor aggregates path accusations and convicts a node once at
// least Threshold distinct *reporters* have accused paths containing it --
// the paper's "if a node is on a large number of problematic paths, it may
// be possible to attribute the problem to that node" (§4.2).
//
// Counting distinct reporters (rather than raw accusations) makes framing
// expensive: with Threshold = f+1, the f compromised nodes cannot convict
// a correct node by themselves, and a correct reporter never appears in
// its own accusations' paths, so reporting real faults is safe.
//
// Known limitation (inherent to accusations; the paper flags omission
// attribution as an open challenge): on multi-hop paths, an innocent relay
// that happens to sit on many problematic paths can cross the threshold
// together with the real culprit. Deployments that care should use
// topologies with direct or dual redundant paths (see network.DualBus).
type Attributor struct {
	Threshold int
	seen      map[string]bool                            // (path, reporter) dedup
	reporters map[network.NodeID]map[network.NodeID]bool // accused -> distinct reporters
	convicted map[network.NodeID]bool
}

// NewAttributor returns an attributor with the given conviction threshold
// (minimum 1).
func NewAttributor(threshold int) *Attributor {
	if threshold < 1 {
		threshold = 1
	}
	return &Attributor{
		Threshold: threshold,
		seen:      map[string]bool{},
		reporters: map[network.NodeID]map[network.NodeID]bool{},
		convicted: map[network.NodeID]bool{},
	}
}

// pathKey canonicalizes a (path set, reporter) pair for dedup.
func pathKey(path []network.NodeID, reporter network.NodeID) string {
	s := append([]network.NodeID(nil), path...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var w buf
	w.u32(uint32(reporter))
	for _, n := range s {
		w.u32(uint32(n))
	}
	return string(w.b)
}

// Add records an accusation and returns any nodes newly convicted by it
// (sorted). Duplicate (path, reporter) pairs are ignored, as is the
// reporter's own presence on the path (a receiver is always an endpoint of
// the paths it reports; counting it would punish honest reporting).
func (a *Attributor) Add(path []network.NodeID, reporter network.NodeID) []network.NodeID {
	key := pathKey(path, reporter)
	if a.seen[key] {
		return nil
	}
	a.seen[key] = true
	var newly []network.NodeID
	for _, n := range path {
		if n == reporter {
			continue
		}
		rs := a.reporters[n]
		if rs == nil {
			rs = map[network.NodeID]bool{}
			a.reporters[n] = rs
		}
		rs[reporter] = true
		if !a.convicted[n] && len(rs) >= a.Threshold {
			a.convicted[n] = true
			newly = append(newly, n)
		}
	}
	sort.Slice(newly, func(i, j int) bool { return newly[i] < newly[j] })
	return newly
}

// Suspicion returns the number of distinct reporters that have accused
// paths containing n.
func (a *Attributor) Suspicion(n network.NodeID) int { return len(a.reporters[n]) }

// Convicted reports whether n has crossed the attribution threshold.
func (a *Attributor) Convicted(n network.NodeID) bool { return a.convicted[n] }
