package evidence

import (
	"errors"
	"testing"

	"btr/internal/network"
	"btr/internal/sig"
)

func TestBudgetVerdictRoundTrip(t *testing.T) {
	b := BudgetVerdict{Reporter: 3, Active: 2, Capacity: 1}
	d, err := DecodeBudgetVerdict(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if d != b {
		t.Errorf("round trip mismatch: %+v vs %+v", d, b)
	}
	enc := b.Encode()
	for _, raw := range [][]byte{{}, enc[:3], enc[:len(enc)-1], append(append([]byte{}, enc...), 9)} {
		if _, err := DecodeBudgetVerdict(raw); err == nil {
			t.Errorf("decode accepted malformed input of len %d", len(raw))
		}
	}
}

// mkBudget seals a budget verdict by the reporter and wraps it in an
// Evidence of the given kind.
func mkBudget(reg *sig.Registry, kind Kind, rep network.NodeID, active, capacity uint32) Evidence {
	b := BudgetVerdict{Reporter: rep, Active: active, Capacity: capacity}
	return Evidence{
		Kind: kind, Accused: -1, Reporter: rep, DetectedAt: 10,
		Primary: reg.Seal(rep, b.Encode()),
	}
}

func TestBudgetVerdictValid(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	if err := v.Validate(mkBudget(reg, KindOverBudget, 2, 2, 1)); err != nil {
		t.Errorf("valid over-budget rejected: %v", err)
	}
	if err := v.Validate(mkBudget(reg, KindReconciled, 2, 1, 1)); err != nil {
		t.Errorf("valid reconciled rejected: %v", err)
	}
}

func TestBudgetVerdictRejectsInconsistentCounts(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	// An over-budget claim whose own body says the set is within budget
	// is not a fault declaration at all.
	if err := v.Validate(mkBudget(reg, KindOverBudget, 2, 1, 1)); !errors.Is(err, ErrNotAFault) {
		t.Errorf("within-budget over-budget claim: err=%v, want ErrNotAFault", err)
	}
	// A reconciled claim still over capacity is malformed.
	if err := v.Validate(mkBudget(reg, KindReconciled, 2, 2, 1)); !errors.Is(err, ErrMalformed) {
		t.Errorf("over-capacity reconciled claim: err=%v, want ErrMalformed", err)
	}
}

func TestBudgetVerdictCannotFrame(t *testing.T) {
	reg := sig.NewRegistry(1, 4)
	v := testValidator(reg)
	// Body reporter differs from the signer: node 1 cannot publish a
	// verdict in node 2's name.
	b := BudgetVerdict{Reporter: 2, Active: 2, Capacity: 1}
	e := Evidence{Kind: KindOverBudget, Accused: -1, Reporter: 2, DetectedAt: 10,
		Primary: reg.Seal(1, b.Encode())}
	if err := v.Validate(e); !errors.Is(err, ErrMalformed) {
		t.Errorf("signer/reporter mismatch: err=%v, want ErrMalformed", err)
	}
	// A verdict must not accuse anyone — smuggling an accusation through
	// the non-proof kind is rejected.
	e2 := mkBudget(reg, KindOverBudget, 2, 2, 1)
	e2.Accused = 4
	if err := v.Validate(e2); !errors.Is(err, ErrMalformed) {
		t.Errorf("accusing verdict: err=%v, want ErrMalformed", err)
	}
}

func TestBudgetKindsAreNotProofs(t *testing.T) {
	if KindOverBudget.Proof() || KindReconciled.Proof() {
		t.Error("budget verdicts must not count as proofs of misbehavior")
	}
	if KindOverBudget.String() != "over-budget" || KindReconciled.String() != "reconciled" {
		t.Errorf("kind names: %s / %s", KindOverBudget, KindReconciled)
	}
}
