package plant

import (
	"math"
	"sort"
	"testing"

	"btr/internal/evidence"
	"btr/internal/sim"
)

func TestEncodeDecodeFloat(t *testing.T) {
	for _, v := range []float64{0, 1.5, -273.15, math.Pi, math.MaxFloat64} {
		if got := DecodeFloat(EncodeFloat(v)); got != v {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	if DecodeFloat([]byte{1, 2}) != 0 {
		t.Error("malformed decode should be 0")
	}
}

// simulateControlled runs a plant closed-loop at the given period.
func simulateControlled(p Plant, ctrl func(float64) float64, period sim.Time, seconds float64) bool {
	steps := int(seconds / period.Seconds())
	for i := 0; i < steps; i++ {
		u := ctrl(p.Sense())
		p.Step(u, period)
		if !p.InEnvelope() {
			return false
		}
	}
	return true
}

// timeToViolation runs a plant with frozen (or zero) actuation until it
// leaves the envelope.
func timeToViolation(p Plant, u float64, period sim.Time, maxSeconds float64) sim.Time {
	steps := int(maxSeconds / period.Seconds())
	for i := 0; i < steps; i++ {
		p.Step(u, period)
		if !p.InEnvelope() {
			return sim.Time(i+1) * period
		}
	}
	return sim.Never
}

func TestWaterTankControlledStable(t *testing.T) {
	w := NewWaterTank()
	if !simulateControlled(w, w.Control, 50*sim.Millisecond, 60) {
		t.Fatal("controlled tank left the envelope")
	}
	if math.Abs(w.Pressure-w.Setpoint) > 0.5 {
		t.Errorf("pressure %v far from setpoint %v", w.Pressure, w.Setpoint)
	}
}

func TestWaterTankUncontrolledDamageNearD(t *testing.T) {
	w := NewWaterTank()
	d := w.DamageDeadline()
	got := timeToViolation(w, 0, 50*sim.Millisecond, 30)
	if got == sim.Never {
		t.Fatal("valve stuck shut never caused damage")
	}
	// Within 10% of the analytic deadline.
	lo, hi := d*9/10, d*11/10
	if got < lo || got > hi {
		t.Errorf("violation at %v, analytic D = %v", got, d)
	}
}

func TestWaterTankFiveSecondRule(t *testing.T) {
	// The headline: a 4-second outage is survivable, a 6-second one is
	// not (D = 5s for the default tank).
	survive := func(outage float64) bool {
		w := NewWaterTank()
		period := 50 * sim.Millisecond
		// 10s of good control, then `outage` seconds of valve-shut, then
		// good control again.
		for i := 0; i < int(10/period.Seconds()); i++ {
			w.Step(w.Control(w.Sense()), period)
		}
		for i := 0; i < int(outage/period.Seconds()); i++ {
			w.Step(0, period)
			if !w.InEnvelope() {
				return false
			}
		}
		for i := 0; i < int(10/period.Seconds()); i++ {
			w.Step(w.Control(w.Sense()), period)
			if !w.InEnvelope() {
				return false
			}
		}
		return true
	}
	if !survive(4.0) {
		t.Error("4s outage should be survivable (D=5s)")
	}
	if survive(6.0) {
		t.Error("6s outage should cause damage (D=5s)")
	}
}

func TestPendulumControlledStable(t *testing.T) {
	ip := NewInvertedPendulum()
	if !simulateControlled(ip, ip.Control, 20*sim.Millisecond, 30) {
		t.Fatal("controlled pendulum fell")
	}
	if math.Abs(ip.Theta) > 0.1 {
		t.Errorf("pendulum angle %v not regulated", ip.Theta)
	}
}

func TestPendulumUncontrolledFalls(t *testing.T) {
	ip := NewInvertedPendulum()
	got := timeToViolation(ip, 0, 20*sim.Millisecond, 30)
	if got == sim.Never {
		t.Fatal("uncontrolled inverted pendulum never fell")
	}
	// The pendulum's deadline is much shorter than the tank's.
	if got > 3*sim.Second {
		t.Errorf("pendulum survived %v uncontrolled; expected < 3s", got)
	}
}

func TestPitchHoldControlledStable(t *testing.T) {
	ph := NewPitchHold()
	if !simulateControlled(ph, ph.Control, 25*sim.Millisecond, 60) {
		t.Fatal("controlled pitch left envelope")
	}
	if math.Abs(ph.ThetaRad) > 0.05 {
		t.Errorf("pitch %v not held", ph.ThetaRad)
	}
}

func TestPitchHoldSlowDrift(t *testing.T) {
	// The aircraft has far more inertia than the pendulum: its damage
	// deadline is long.
	ph := NewPitchHold()
	got := timeToViolation(ph, 0, 25*sim.Millisecond, 120)
	if got == sim.Never {
		t.Fatal("disturbed pitch never left the envelope")
	}
	if got < 5*sim.Second {
		t.Errorf("pitch left envelope after only %v; expected slow drift", got)
	}
}

func TestDamageDeadlinesOrdering(t *testing.T) {
	// Pendulum (unstable) < tank (5s rule) < aircraft (inertia).
	p := NewInvertedPendulum().DamageDeadline()
	w := NewWaterTank().DamageDeadline()
	a := NewPitchHold().DamageDeadline()
	if !(p < w && w < a) {
		t.Errorf("deadline ordering wrong: pendulum %v, tank %v, aircraft %v", p, w, a)
	}
}

func TestPlantDeterminism(t *testing.T) {
	run := func() float64 {
		ip := NewInvertedPendulum()
		for i := 0; i < 500; i++ {
			ip.Step(ip.Control(ip.Sense()), 20*sim.Millisecond)
		}
		return ip.Theta
	}
	if run() != run() {
		t.Error("plant integration not deterministic")
	}
}

// fakeKernel implements the loop's kernel interface for isolated tests.
type fakeKernel struct {
	now    sim.Time
	events []struct {
		at sim.Time
		fn func()
	}
}

func (f *fakeKernel) At(t sim.Time, fn func()) sim.Handle {
	f.events = append(f.events, struct {
		at sim.Time
		fn func()
	}{t, fn})
	return sim.Handle(len(f.events))
}
func (f *fakeKernel) Now() sim.Time { return f.now }

func (f *fakeKernel) runAll() {
	// Stable sort by time so interleaved schedules run in order.
	sort.SliceStable(f.events, func(i, j int) bool { return f.events[i].at < f.events[j].at })
	for i := 0; i < len(f.events); i++ {
		f.now = f.events[i].at
		f.events[i].fn()
	}
}

func TestLoopSampleAndHold(t *testing.T) {
	w := NewWaterTank()
	l := NewLoop(w, 50*sim.Millisecond, 10)
	// Period 0 sample is the initial state for every replica.
	v := l.Source("sensor", 0)
	if DecodeFloat(v) != 5.0 {
		t.Errorf("sample = %v, want 5.0", DecodeFloat(v))
	}
	if string(l.Source("sensor", 0)) != string(v) {
		t.Error("sample-and-hold violated")
	}
}

func TestLoopComputeSemantics(t *testing.T) {
	w := NewWaterTank()
	l := NewLoop(w, 50*sim.Millisecond, 10)
	sensorRec := evidence.Record{Logical: "sensor", Value: EncodeFloat(7.5)}
	u := l.Compute("controller", 0, []evidence.Record{sensorRec})
	if DecodeFloat(u) != w.Control(7.5) {
		t.Errorf("controller output %v, want %v", DecodeFloat(u), w.Control(7.5))
	}
	act := l.Compute("actuator", 0, []evidence.Record{{Logical: "controller", Value: u}})
	if string(act) != string(u) {
		t.Error("actuator is not the identity")
	}
}

func TestLoopOracleMatchesCompute(t *testing.T) {
	w := NewWaterTank()
	l := NewLoop(w, 50*sim.Millisecond, 10)
	sensor := l.Source("sensor", 0)
	u := l.Compute("controller", 0, []evidence.Record{{Logical: "sensor", Value: sensor}})
	act := l.Compute("actuator", 0, []evidence.Record{{Logical: "controller", Value: u}})
	if string(l.Oracle("actuator", 0)) != string(act) {
		t.Error("oracle disagrees with the computed pipeline")
	}
}

func TestLoopAppliesFirstCommandOnly(t *testing.T) {
	w := NewWaterTank()
	l := NewLoop(w, 50*sim.Millisecond, 10)
	l.Apply(0, EncodeFloat(0.9))
	l.Apply(0, EncodeFloat(0.1)) // ignored
	if !l.uSet[0] || l.u[0] != 0.9 {
		t.Errorf("first-command semantics broken: %v", l.u[0])
	}
}

func TestLoopPhysicsAdvance(t *testing.T) {
	w := NewWaterTank()
	l := NewLoop(w, 50*sim.Millisecond, 20)
	k := &fakeKernel{}
	l.Install(k)
	// Apply the correct command every period, mid-period (after that
	// period's sample exists): pressure stays put.
	for p := uint64(0); p < 20; p++ {
		p := p
		k.At(sim.Time(p)*l.Period+sim.Millisecond, func() {
			l.Apply(p, EncodeFloat(w.Control(l.samples[p])))
		})
	}
	k.runAll()
	if l.Violations != 0 {
		t.Errorf("violations = %d with perfect control", l.Violations)
	}
	if math.Abs(w.Pressure-w.Setpoint) > 0.2 {
		t.Errorf("pressure drifted to %v", w.Pressure)
	}
}

func TestLoopHoldsLastCommandOnOmission(t *testing.T) {
	w := NewWaterTank()
	l := NewLoop(w, 50*sim.Millisecond, 20)
	k := &fakeKernel{}
	l.Install(k)
	// No commands at all: the actuator holds the initial trim, which for
	// the tank equals the equilibrium command — pressure stays flat.
	k.runAll()
	if math.Abs(w.Pressure-5.0) > 0.3 {
		t.Errorf("held trim should hold pressure; got %v", w.Pressure)
	}
}

func TestLoopViolationDetection(t *testing.T) {
	w := NewWaterTank()
	l := NewLoop(w, 50*sim.Millisecond, 200) // 10 seconds
	k := &fakeKernel{}
	l.Install(k)
	// Adversarial commands: valve shut the whole run.
	for p := uint64(0); p < 200; p++ {
		l.Apply(p, EncodeFloat(0))
	}
	k.runAll()
	if l.Violations == 0 {
		t.Fatal("no violations despite valve-shut attack")
	}
	if l.FirstViolation == sim.Never || l.FirstViolation > 6*sim.Second {
		t.Errorf("first violation at %v, want ~5s", l.FirstViolation)
	}
}
