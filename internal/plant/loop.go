package plant

import (
	"fmt"

	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/sim"
)

// Loop binds a Plant to the flow.ControlLoop workload (sensor ->
// controller -> actuator): it samples the plant at period boundaries
// (sample-and-hold, so every sensor replica reads the same value), applies
// the first actuation command per period, and exposes the deterministic
// task functions and oracle the BTR runtime needs.
type Loop struct {
	P       Plant
	Period  sim.Time
	Horizon uint64
	ctrl    func(float64) float64

	samples []float64
	uSet    []bool
	u       []float64
	holdU   float64 // actuator holds its last command when none arrives

	// Violations counts period boundaries at which the plant was outside
	// its envelope; FirstViolation is the earliest such time (Never if
	// none).
	Violations     int
	FirstViolation sim.Time
}

// controller describes plants whose control law is a pure function.
type controller interface {
	Control(sensed float64) float64
}

// NewLoop wraps the plant for a run of horizon periods. The plant must
// expose a Control method (all plants in this package do).
func NewLoop(p Plant, period sim.Time, horizon uint64) *Loop {
	c, ok := p.(controller)
	if !ok {
		panic("plant: plant has no Control method")
	}
	l := &Loop{
		P: p, Period: period, Horizon: horizon,
		ctrl:           c.Control,
		samples:        make([]float64, horizon+2),
		uSet:           make([]bool, horizon+2),
		u:              make([]float64, horizon+2),
		FirstViolation: sim.Never,
	}
	l.samples[0] = p.Sense()
	l.holdU = l.ctrl(l.samples[0]) // trim the actuator at the initial law
	return l
}

// kernel is the subset of sim.Scheduler the loop needs (keeps the package
// decoupled and trivially testable); any Scheduler — discrete-event or
// wall-clock — satisfies it.
type kernel interface {
	At(t sim.Time, fn func()) sim.Handle
	Now() sim.Time
}

// Install schedules the physics boundary steps. Call before starting the
// runtime so boundary events precede same-instant task events.
func (l *Loop) Install(k kernel) {
	for p := uint64(0); p < l.Horizon+1; p++ {
		p := p
		k.At(sim.Time(p+1)*l.Period, func() {
			u := l.holdU
			if l.uSet[p] {
				u = l.u[p]
				l.holdU = u
			}
			l.P.Step(u, l.Period)
			l.samples[p+1] = l.P.Sense()
			if !l.P.InEnvelope() {
				l.Violations++
				if l.FirstViolation == sim.Never {
					l.FirstViolation = k.Now()
				}
			}
		})
	}
}

// Apply records an actuation command; the first one per period wins (BTR
// actuator semantics). Use as (or from) the system's OnActuation hook.
func (l *Loop) Apply(period uint64, value []byte) {
	if period >= uint64(len(l.u)) || l.uSet[period] {
		return
	}
	l.uSet[period] = true
	l.u[period] = DecodeFloat(value)
}

// Source is the runtime.SourceFunc: every sensor replica reads the
// period's sample-and-hold value.
func (l *Loop) Source(task flow.TaskID, period uint64) []byte {
	if period >= uint64(len(l.samples)) {
		return EncodeFloat(0)
	}
	return EncodeFloat(l.samples[period])
}

// Compute is the runtime.TaskFunc for the control-loop tasks: the
// controller applies the plant's pure control law to the sensor sample;
// the actuator forwards the controller output. Any other task falls back
// to the canonical hash semantics.
func (l *Loop) Compute(task flow.TaskID, period uint64, inputs []evidence.Record) []byte {
	switch task {
	case "controller":
		return EncodeFloat(l.ctrl(DecodeFloat(valueOf(inputs, "sensor"))))
	case "actuator":
		v := valueOf(inputs, "controller")
		out := make([]byte, len(v))
		copy(out, v)
		return out
	default:
		return evidence.HashCompute(task, period, inputs)
	}
}

// Oracle returns the expected actuator command for the period: the pure
// control law applied to the actual sample. This is functional correctness
// given the real physical trajectory — after recovery, commands must again
// be the correct function of current sensor readings.
func (l *Loop) Oracle(sink flow.TaskID, period uint64) []byte {
	if sink != "actuator" {
		panic(fmt.Sprintf("plant: oracle asked about unknown sink %q", sink))
	}
	if period >= uint64(len(l.samples)) {
		return EncodeFloat(0)
	}
	return EncodeFloat(l.ctrl(l.samples[period]))
}

// valueOf picks the value of the first input with the given logical task.
func valueOf(inputs []evidence.Record, logical flow.TaskID) []byte {
	for _, in := range inputs {
		if in.Logical == logical {
			return in.Value
		}
	}
	return nil
}
