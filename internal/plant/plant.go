// Package plant models the physical side of a cyber-physical system: the
// paper's core argument is that plants have inertia ("the flight control
// system … can typically operate within a relatively large flight
// envelope"), so a bounded period R of wrong or missing control commands
// is harmless, while an unbounded outage causes physical damage. The
// package provides three plants with tunable damage deadlines, plus the
// deterministic controller functions that run as BTR tasks (pure
// functions of the sensor sample, so commission faults on controllers
// remain provable by re-execution).
package plant

import (
	"encoding/binary"
	"math"

	"btr/internal/sim"
)

// Plant is a discrete-time physical system under control.
type Plant interface {
	// Step advances the physics by dt under actuation u.
	Step(u float64, dt sim.Time)
	// Sense returns the current sensor reading.
	Sense() float64
	// InEnvelope reports whether the state is inside the safe envelope.
	InEnvelope() bool
	// DamageDeadline estimates how long the plant tolerates a frozen or
	// adversarial actuation before leaving the envelope (the paper's D).
	DamageDeadline() sim.Time
}

// EncodeFloat serializes a float64 for dataflow values (little-endian
// IEEE-754 bits; deterministic and exact).
func EncodeFloat(v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:]
}

// DecodeFloat reverses EncodeFloat (0 for malformed input).
func DecodeFloat(b []byte) float64 {
	if len(b) != 8 {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// --- Water tank -------------------------------------------------------------

// WaterTank models the paper's §2 motivating example: "when a sensor
// indicates a pressure increase in some part of the system, the system may
// need to respond within seconds — e.g., by opening a safety valve — to
// prevent an explosion."
//
// Pressure rises at InflowRate and is relieved proportionally to the valve
// command u ∈ [0,1]:
//
//	dP/dt = InflowRate - OutflowRate·u
//
// The controller holds pressure near Setpoint; the envelope is
// [0, MaxPressure]. With the valve stuck shut, pressure climbs at
// InflowRate, so D ≈ (MaxPressure - Setpoint) / InflowRate.
type WaterTank struct {
	Pressure    float64 // current pressure (bar)
	InflowRate  float64 // bar per second
	OutflowRate float64 // bar per second at u=1
	Setpoint    float64
	MaxPressure float64
}

// NewWaterTank returns a tank whose pressure sits at the setpoint with a
// damage deadline of roughly five seconds — the five-second rule made
// physical.
func NewWaterTank() *WaterTank {
	return &WaterTank{
		Pressure:    5.0,
		InflowRate:  1.0, // +1 bar/s uncontrolled
		OutflowRate: 2.5,
		Setpoint:    5.0,
		MaxPressure: 10.0, // 5 bar of headroom / 1 bar/s = 5 s
	}
}

// Step integrates the pressure dynamics.
func (w *WaterTank) Step(u float64, dt sim.Time) {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	w.Pressure += (w.InflowRate - w.OutflowRate*u) * dt.Seconds()
	if w.Pressure < 0 {
		w.Pressure = 0
	}
}

// Sense returns the pressure.
func (w *WaterTank) Sense() float64 { return w.Pressure }

// InEnvelope reports pressure within [0, MaxPressure].
func (w *WaterTank) InEnvelope() bool { return w.Pressure <= w.MaxPressure }

// DamageDeadline is headroom divided by the uncontrolled rise rate.
func (w *WaterTank) DamageDeadline() sim.Time {
	return sim.FromSeconds((w.MaxPressure - w.Setpoint) / w.InflowRate)
}

// Control computes the proportional valve command holding the setpoint.
// Exported as a pure function so BTR can re-execute it for audit.
func (w *WaterTank) Control(pressure float64) float64 {
	// Feedforward holds the inflow; proportional action corrects error.
	u := w.InflowRate/w.OutflowRate + 0.8*(pressure-w.Setpoint)
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return u
}

// --- Inverted pendulum -------------------------------------------------------

// InvertedPendulum is the classic unstable plant: without control the
// angle diverges exponentially, so its damage deadline is short — a
// demanding case for BTR's recovery bound.
//
//	θ'' = (g/L)·sin(θ) - damping·θ' + u
type InvertedPendulum struct {
	Theta, Omega float64 // angle (rad) and angular velocity
	GravOverLen  float64
	Damping      float64
	MaxAngle     float64 // envelope bound (rad)
	substep      sim.Time
}

// NewInvertedPendulum starts slightly off-vertical.
func NewInvertedPendulum() *InvertedPendulum {
	return &InvertedPendulum{
		Theta:       0.02,
		GravOverLen: 9.8, // g/L for L=1m
		Damping:     0.3,
		MaxAngle:    0.5, // ~28.6 degrees
		substep:     sim.Millisecond,
	}
}

// Step integrates with fixed millisecond substeps (deterministic;
// explicit Euler is adequate at this resolution for the angles involved).
func (ip *InvertedPendulum) Step(u float64, dt sim.Time) {
	for elapsed := sim.Time(0); elapsed < dt; elapsed += ip.substep {
		h := ip.substep
		if dt-elapsed < h {
			h = dt - elapsed
		}
		hs := h.Seconds()
		acc := ip.GravOverLen*math.Sin(ip.Theta) - ip.Damping*ip.Omega + u
		ip.Theta += ip.Omega * hs
		ip.Omega += acc * hs
	}
}

// Sense returns the angle.
func (ip *InvertedPendulum) Sense() float64 { return ip.Theta }

// InEnvelope reports |θ| within the safe cone.
func (ip *InvertedPendulum) InEnvelope() bool { return math.Abs(ip.Theta) <= ip.MaxAngle }

// DamageDeadline estimates the time for the angle to grow from the
// setpoint offset to the envelope edge under zero control (linearized
// doubling time of the unstable mode).
func (ip *InvertedPendulum) DamageDeadline() sim.Time {
	lambda := math.Sqrt(ip.GravOverLen) // unstable eigenvalue ≈ √(g/L)
	start := math.Max(math.Abs(ip.Theta), 0.01)
	t := math.Log(ip.MaxAngle/start) / lambda
	return sim.FromSeconds(t)
}

// Control is the stabilizing proportional law (a pure function of the
// sampled angle; the closed loop relies on the plant's physical damping
// for its derivative term, keeping the controller stateless and therefore
// re-executable for audit).
func (ip *InvertedPendulum) Control(theta float64) float64 {
	return -30 * theta
}

// --- Aircraft pitch hold ------------------------------------------------------

// PitchHold models the paper's airplane example: a slow, stable-ish
// second-order pitch axis with a persistent disturbance (trim offset,
// turbulence bias). Lots of inertia — the flight envelope tolerates many
// seconds of outage, unlike the pendulum.
//
//	q' = -a·q + b·δ + d
//	θ' = q
type PitchHold struct {
	ThetaRad, Q float64 // pitch angle and rate
	A, B        float64 // dynamics coefficients
	Disturb     float64 // constant disturbance (rad/s²)
	MaxPitch    float64 // envelope half-width (rad)
}

// NewPitchHold returns a pitch axis trimmed at zero with a gentle nose-up
// disturbance.
func NewPitchHold() *PitchHold {
	return &PitchHold{
		A: 0.8, B: 2.0,
		Disturb:  0.02,
		MaxPitch: 0.35, // ~20 degrees
	}
}

// Step integrates the linear dynamics.
func (ph *PitchHold) Step(u float64, dt sim.Time) {
	s := dt.Seconds()
	// Sub-step for accuracy over long periods.
	const sub = 0.001
	for remaining := s; remaining > 1e-12; remaining -= sub {
		h := math.Min(sub, remaining)
		qdot := -ph.A*ph.Q + ph.B*u + ph.Disturb
		ph.ThetaRad += ph.Q * h
		ph.Q += qdot * h
	}
}

// Sense returns the pitch angle.
func (ph *PitchHold) Sense() float64 { return ph.ThetaRad }

// InEnvelope reports pitch within the flight envelope.
func (ph *PitchHold) InEnvelope() bool { return math.Abs(ph.ThetaRad) <= ph.MaxPitch }

// DamageDeadline estimates time to exit the envelope under frozen
// controls: the disturbance accelerates pitch toward the limit.
func (ph *PitchHold) DamageDeadline() sim.Time {
	// q settles to Disturb/A; pitch then ramps at that rate.
	rate := ph.Disturb / ph.A
	return sim.FromSeconds(ph.MaxPitch / rate)
}

// Control is the PD pitch-hold law.
func (ph *PitchHold) Control(theta float64) float64 {
	return (-2.0*theta - ph.Disturb/ph.B)
}
