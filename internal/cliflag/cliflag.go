// Package cliflag holds the shared flag-validation helpers the btr
// commands use, so every command rejects a bad flag value the same way:
// loudly, naming the flag, and listing the valid choices. (Before this
// package, btrcampaign -family listed its choices while btrlive -fault
// did not — a typo silently meant "guess from the error-less usage
// dump".)
package cliflag

import (
	"fmt"
	"sort"
	"strings"
)

// OneOf validates that got is one of the valid choices, returning an
// error that names the flag and lists every valid value in sorted
// order.
func OneOf(flagName, got string, valid []string) error {
	for _, v := range valid {
		if got == v {
			return nil
		}
	}
	sorted := append([]string(nil), valid...)
	sort.Strings(sorted)
	return fmt.Errorf("unknown -%s %q (valid: %s)", flagName, got, strings.Join(sorted, ", "))
}

// OneOfSet is OneOf over a set of valid choices.
func OneOfSet(flagName, got string, valid map[string]bool) error {
	choices := make([]string, 0, len(valid))
	for v := range valid {
		choices = append(choices, v)
	}
	return OneOf(flagName, got, choices)
}

// InRange validates an integer flag against [lo, hi], returning an
// error that names the flag and states the valid range.
func InRange(flagName string, got, lo, hi int64) error {
	if got < lo || got > hi {
		return fmt.Errorf("invalid -%s %d (valid: %d..%d)", flagName, got, lo, hi)
	}
	return nil
}
