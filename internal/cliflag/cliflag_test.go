package cliflag

import (
	"strings"
	"testing"
)

func TestOneOf(t *testing.T) {
	valid := []string{"crash", "omit", "flood"}
	if err := OneOf("fault", "omit", valid); err != nil {
		t.Fatalf("valid choice rejected: %v", err)
	}
	err := OneOf("fault", "omitt", valid)
	if err == nil {
		t.Fatal("invalid choice accepted")
	}
	msg := err.Error()
	for _, want := range []string{`-fault`, `"omitt"`, "crash, flood, omit"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestOneOfSet(t *testing.T) {
	if err := OneOfSet("family", "paper", map[string]bool{"paper": true, "live": true}); err != nil {
		t.Fatalf("valid choice rejected: %v", err)
	}
	err := OneOfSet("family", "papr", map[string]bool{"paper": true, "live": true})
	if err == nil || !strings.Contains(err.Error(), "live, paper") {
		t.Fatalf("set error does not list sorted choices: %v", err)
	}
}

func TestInRange(t *testing.T) {
	if err := InRange("at", 3, 0, 19); err != nil {
		t.Fatalf("in-range value rejected: %v", err)
	}
	err := InRange("at", 25, 0, 19)
	if err == nil || !strings.Contains(err.Error(), "0..19") {
		t.Fatalf("range error unhelpful: %v", err)
	}
}
