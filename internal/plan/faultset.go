// Package plan implements BTR's offline planner (§4.1): it augments the
// workload dataflow graph with replicas and checking tasks, maps tasks to
// nodes under hard constraints and heuristics, computes a static schedule
// per mode, and assembles the full strategy — one plan per anticipated
// fault pattern plus the conditions (activation delay, recovery bounds)
// for switching between them.
//
// "Choosing the strategy offline seems safer than dynamic rescheduling at
// runtime because a) a centralized scheduler would be an obvious target
// for the adversary, and because b) to guarantee BTR, we would need a time
// bound on rescheduling, which seems difficult to obtain." (§4.1)
package plan

import (
	"fmt"
	"sort"
	"strings"

	"btr/internal/network"
)

// FaultSet is a canonical (sorted, deduplicated) set of faulty nodes. The
// set of faulty nodes is append-only at runtime (§4.4), so FaultSets form
// a lattice ordered by inclusion; plans are keyed by FaultSet.
type FaultSet struct {
	nodes []network.NodeID
}

// NewFaultSet builds a canonical fault set from the given nodes.
func NewFaultSet(nodes ...network.NodeID) FaultSet {
	s := append([]network.NodeID(nil), nodes...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, n := range s {
		if i == 0 || n != s[i-1] {
			out = append(out, n)
		}
	}
	return FaultSet{nodes: out}
}

// Key returns the canonical string key ("" for the empty set, "1,4" etc.).
func (f FaultSet) Key() string {
	if len(f.nodes) == 0 {
		return ""
	}
	parts := make([]string, len(f.nodes))
	for i, n := range f.nodes {
		parts[i] = fmt.Sprint(int(n))
	}
	return strings.Join(parts, ",")
}

// String renders the set for humans.
func (f FaultSet) String() string {
	if len(f.nodes) == 0 {
		return "{}"
	}
	return "{" + f.Key() + "}"
}

// Len returns the number of faulty nodes.
func (f FaultSet) Len() int { return len(f.nodes) }

// Nodes returns the members (shared slice; do not mutate).
func (f FaultSet) Nodes() []network.NodeID { return f.nodes }

// Contains reports membership.
func (f FaultSet) Contains(n network.NodeID) bool {
	i := sort.Search(len(f.nodes), func(i int) bool { return f.nodes[i] >= n })
	return i < len(f.nodes) && f.nodes[i] == n
}

// With returns f ∪ {n}.
func (f FaultSet) With(n network.NodeID) FaultSet {
	if f.Contains(n) {
		return f
	}
	return NewFaultSet(append(append([]network.NodeID{}, f.nodes...), n)...)
}

// Without returns f \ {n}.
func (f FaultSet) Without(n network.NodeID) FaultSet {
	var out []network.NodeID
	for _, m := range f.nodes {
		if m != n {
			out = append(out, m)
		}
	}
	return FaultSet{nodes: out}
}

// SubsetOf reports whether every member of f is in g.
func (f FaultSet) SubsetOf(g FaultSet) bool {
	for _, n := range f.nodes {
		if !g.Contains(n) {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (f FaultSet) Equal(g FaultSet) bool {
	if len(f.nodes) != len(g.nodes) {
		return false
	}
	for i := range f.nodes {
		if f.nodes[i] != g.nodes[i] {
			return false
		}
	}
	return true
}

// Predecessors returns all fault sets obtained by removing one member —
// the plans the system may be running when this set's plan activates.
func (f FaultSet) Predecessors() []FaultSet {
	out := make([]FaultSet, 0, len(f.nodes))
	for _, n := range f.nodes {
		out = append(out, f.Without(n))
	}
	return out
}

// EnumerateFaultSets lists every fault set of size <= f over n nodes, in
// BFS order (size 0, then 1, ...), deterministic.
func EnumerateFaultSets(n, f int) []FaultSet {
	nodes := make([]network.NodeID, n)
	for i := range nodes {
		nodes[i] = network.NodeID(i)
	}
	return EnumerateFaultSetsOver(nodes, f)
}

// EnumerateFaultSetsOver lists every fault set of size <= f drawn from
// the given nodes (an arbitrary subset of the slot universe), in the
// same deterministic BFS order as EnumerateFaultSets. Membership epochs
// use it: per-epoch strategies cover fault patterns over the active
// members only.
func EnumerateFaultSetsOver(nodes []network.NodeID, f int) []FaultSet {
	pool := NewFaultSet(nodes...).Nodes() // canonical: sorted, deduplicated
	var out []FaultSet
	var cur []network.NodeID
	var rec func(start, remaining int)
	rec = func(start, remaining int) {
		out = append(out, NewFaultSet(cur...))
		if remaining == 0 {
			return
		}
		for i := start; i < len(pool); i++ {
			cur = append(cur, pool[i])
			rec(i+1, remaining-1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, f)
	// Stable sort by size yields BFS order while keeping the
	// lexicographic order within each size class.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Len() < out[j].Len() })
	return out
}
