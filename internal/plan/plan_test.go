package plan

import (
	"strings"
	"testing"
	"testing/quick"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/sim"
)

func TestFaultSetCanonical(t *testing.T) {
	a := NewFaultSet(3, 1, 3, 2)
	if a.Key() != "1,2,3" {
		t.Errorf("Key = %q, want 1,2,3", a.Key())
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d", a.Len())
	}
	if !a.Contains(2) || a.Contains(4) {
		t.Error("Contains wrong")
	}
	if NewFaultSet().Key() != "" {
		t.Error("empty key should be empty string")
	}
	if NewFaultSet().String() != "{}" {
		t.Error("empty String wrong")
	}
}

func TestFaultSetOps(t *testing.T) {
	a := NewFaultSet(1, 2)
	b := a.With(3)
	if b.Key() != "1,2,3" || a.Key() != "1,2" {
		t.Error("With mutated receiver or failed")
	}
	if b.With(3).Key() != b.Key() {
		t.Error("With duplicate changed set")
	}
	if b.Without(2).Key() != "1,3" {
		t.Error("Without failed")
	}
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	if !a.Equal(NewFaultSet(2, 1)) {
		t.Error("Equal wrong")
	}
}

func TestFaultSetPredecessors(t *testing.T) {
	preds := NewFaultSet(1, 5, 9).Predecessors()
	if len(preds) != 3 {
		t.Fatalf("got %d predecessors", len(preds))
	}
	keys := map[string]bool{}
	for _, p := range preds {
		keys[p.Key()] = true
	}
	for _, want := range []string{"5,9", "1,9", "1,5"} {
		if !keys[want] {
			t.Errorf("missing predecessor %q", want)
		}
	}
}

func TestEnumerateFaultSets(t *testing.T) {
	sets := EnumerateFaultSets(4, 2)
	// C(4,0)+C(4,1)+C(4,2) = 1+4+6 = 11
	if len(sets) != 11 {
		t.Fatalf("got %d sets, want 11", len(sets))
	}
	if sets[0].Len() != 0 {
		t.Error("first set should be empty (BFS order)")
	}
	for i := 1; i < len(sets); i++ {
		if sets[i].Len() < sets[i-1].Len() {
			t.Fatal("not in BFS order")
		}
	}
	seen := map[string]bool{}
	for _, s := range sets {
		if seen[s.Key()] {
			t.Fatalf("duplicate set %v", s)
		}
		seen[s.Key()] = true
	}
}

func TestFaultSetPropertyCanonical(t *testing.T) {
	f := func(xs []uint8) bool {
		nodes := make([]network.NodeID, len(xs))
		for i, x := range xs {
			nodes[i] = network.NodeID(x % 16)
		}
		a := NewFaultSet(nodes...)
		b := NewFaultSet(append([]network.NodeID{}, a.Nodes()...)...)
		return a.Key() == b.Key() && a.Len() <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitReplica(t *testing.T) {
	cases := []struct {
		in      flow.TaskID
		logical flow.TaskID
		idx     int
	}{
		{"fc.law#2", "fc.law", 2},
		{"chk:valve#0", "chk:valve", 0},
		{"plain", "plain", -1},
		{"odd#name#3", "odd#name", 3},
	}
	for _, c := range cases {
		l, i := SplitReplica(c.in)
		if l != c.logical || i != c.idx {
			t.Errorf("SplitReplica(%q) = %q,%d want %q,%d", c.in, l, i, c.logical, c.idx)
		}
	}
}

func TestAugmentStructure(t *testing.T) {
	g := flow.Chain(3, 20*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	aug := Augment(g, DefaultAugment(1)) // f=1: sources 3x, others 2x
	if err := aug.Validate(); err != nil {
		t.Fatalf("augmented graph invalid: %v", err)
	}
	// c0 is a source: 3 replicas. c1: 2. c2 (sink): 2. chk:c2: 2.
	counts := map[flow.TaskID]int{}
	for _, id := range aug.TaskIDs() {
		logical, _ := SplitReplica(id)
		counts[logical]++
	}
	if counts["c0"] != 3 || counts["c1"] != 2 || counts["c2"] != 2 || counts["chk:c2"] != 2 {
		t.Errorf("replica counts = %v", counts)
	}
	// Edge bundle c0->c1: 3x2 = 6 edges; c1->c2: 2x2 = 4; c2->chk: 2x2 = 4.
	if len(aug.Edges) != 6+4+4 {
		t.Errorf("edges = %d, want 14", len(aug.Edges))
	}
	// Sink status moved to checkers.
	for _, s := range aug.Sinks() {
		logical, _ := SplitReplica(s)
		if !IsChecker(logical) {
			t.Errorf("augmented sink %q is not a checker", s)
		}
	}
}

func TestAugmentWireBytesGrow(t *testing.T) {
	g := flow.Chain(3, 20*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	aug := Augment(g, DefaultAugment(1))
	for _, e := range aug.Edges {
		if e.Bytes <= 64 {
			t.Fatalf("edge %s->%s bytes %d: accountability overhead missing", e.From, e.To, e.Bytes)
		}
	}
}

func TestAssignAntiAffinity(t *testing.T) {
	g := flow.Chain(3, 20*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	aug := Augment(g, DefaultAugment(1))
	topo := network.FullMesh(5, 10_000_000, 0)
	a, err := assign(aug, topo, assignOptions{faults: NewFaultSet(), locality: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAssignment(aug, a, NewFaultSet()); err != nil {
		t.Fatal(err)
	}
}

func TestAssignAvoidsFaultyNodes(t *testing.T) {
	g := flow.Chain(3, 20*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	aug := Augment(g, DefaultAugment(1))
	topo := network.FullMesh(5, 10_000_000, 0)
	fs := NewFaultSet(0, 3)
	a, err := assign(aug, topo, assignOptions{faults: fs, locality: true})
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range a {
		if fs.Contains(n) {
			t.Errorf("%q assigned to faulty node %d", id, n)
		}
	}
}

func TestAssignFailsWithTooFewNodes(t *testing.T) {
	g := flow.Chain(3, 20*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	aug := Augment(g, DefaultAugment(1)) // sources need 3 distinct nodes
	topo := network.FullMesh(4, 10_000_000, 0)
	_, err := assign(aug, topo, assignOptions{faults: NewFaultSet(0, 1), locality: true})
	if err == nil {
		t.Fatal("assignment with 2 healthy nodes for 3 source replicas should fail")
	}
	if !strings.Contains(err.Error(), "replicas") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestAssignStickiness(t *testing.T) {
	g := flow.Chain(3, 20*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	aug := Augment(g, DefaultAugment(1))
	topo := network.FullMesh(6, 10_000_000, 0)
	base, err := assign(aug, topo, assignOptions{faults: NewFaultSet(), locality: true})
	if err != nil {
		t.Fatal(err)
	}
	// Fail a node not hosting anything, or any node; sticky assignment
	// should keep every replica that is not on the failed node.
	failed := base["c1#0"]
	derived, err := assign(aug, topo, assignOptions{
		faults: NewFaultSet(failed), parent: base, locality: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	movedUnnecessarily := 0
	for id, n := range base {
		if n == failed {
			continue
		}
		if derived[id] != n {
			movedUnnecessarily++
		}
	}
	if movedUnnecessarily != 0 {
		t.Errorf("%d replicas moved despite their node being healthy", movedUnnecessarily)
	}
}

func strategyFixture(t *testing.T, f int) *Strategy {
	t.Helper()
	g := flow.Avionics(25 * sim.Millisecond)
	topo := network.FullMesh(6, 20_000_000, 50*sim.Microsecond)
	opts := DefaultOptions(f, 500*sim.Millisecond)
	s, err := Build(g, topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildStrategyF1(t *testing.T) {
	s := strategyFixture(t, 1)
	// 1 + 6 plans.
	if len(s.Plans) != 7 {
		t.Fatalf("plans = %d, want 7", len(s.Plans))
	}
	for key, p := range s.Plans {
		if err := VerifyAssignment(p.Aug, p.Assign, p.Faults); err != nil {
			t.Errorf("mode %q: %v", key, err)
		}
		if err := p.Table.VerifySanity(p.Aug); err != nil {
			t.Errorf("mode %q: %v", key, err)
		}
	}
	if s.RNeeded <= 0 {
		t.Error("RNeeded not derived")
	}
	if !s.RFeasible() {
		t.Errorf("avionics strategy infeasible: needs %v", s.RNeeded)
	}
	if !strings.Contains(s.Summary(), "strategy: 7 plans") {
		t.Error("summary unhelpful")
	}
}

func TestBuildStrategyF2HasAllModes(t *testing.T) {
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritB)
	topo := network.FullMesh(7, 20_000_000, 50*sim.Microsecond)
	s, err := Build(g, topo, DefaultOptions(2, sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 7 + 21 = 29.
	if len(s.Plans) != 29 {
		t.Fatalf("plans = %d, want 29", len(s.Plans))
	}
	// Transitions exist for every non-empty mode.
	if len(s.Trans) != 28 {
		t.Fatalf("transitions = %d, want 28", len(s.Trans))
	}
}

func TestShedOnDegradedMode(t *testing.T) {
	// Avionics on 4 slowish nodes: with 1 failure, only 3 nodes remain;
	// the D-criticality IFE should be shed before anything critical.
	g := flow.Avionics(25 * sim.Millisecond)
	topo := network.FullMesh(4, 20_000_000, 50*sim.Microsecond)
	opts := DefaultOptions(1, 500*sim.Millisecond)
	s, err := Build(g, topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := s.Plans[""]
	degraded := s.Plans["0"]
	if len(degraded.ShedSinks) <= len(base.ShedSinks) {
		t.Errorf("degraded mode shed %v, base shed %v — expected more shedding with fewer nodes",
			degraded.ShedSinks, base.ShedSinks)
	}
	// Whatever was shed, criticality A must survive.
	for _, shed := range degraded.ShedSinks {
		if g.Tasks[shed].Crit == flow.CritA {
			t.Errorf("shed a criticality-A sink: %v", shed)
		}
	}
	if !degraded.RunsTask("elevator") {
		t.Error("flight control lost in degraded mode")
	}
}

func TestPlanForFallback(t *testing.T) {
	s := strategyFixture(t, 1)
	// Exact.
	if p := s.PlanFor(NewFaultSet(2)); p == nil || p.Key() != "2" {
		t.Error("exact lookup failed")
	}
	// Beyond F: falls back to a covered subset.
	p := s.PlanFor(NewFaultSet(2, 4))
	if p == nil {
		t.Fatal("no fallback plan")
	}
	if p.Faults.Len() != 1 {
		t.Errorf("fallback plan covers %v, want a single-fault subset", p.Faults)
	}
	// Empty set.
	if s.PlanFor(NewFaultSet()).Key() != "" {
		t.Error("empty lookup failed")
	}
}

func TestMinimalDiffBeatsNaive(t *testing.T) {
	g := flow.Avionics(25 * sim.Millisecond)
	topo := network.FullMesh(6, 20_000_000, 50*sim.Microsecond)

	optMin := DefaultOptions(1, 500*sim.Millisecond)
	sMin, err := Build(g, topo, optMin)
	if err != nil {
		t.Fatal(err)
	}
	optNaive := optMin
	optNaive.MinimalDiff = false
	sNaive, err := Build(g, topo, optNaive)
	if err != nil {
		t.Fatal(err)
	}
	var minMoved, naiveMoved int
	for k := range sMin.Trans {
		minMoved += len(sMin.Trans[k].Moved)
		naiveMoved += len(sNaive.Trans[k].Moved)
	}
	if minMoved >= naiveMoved {
		t.Errorf("minimal-diff moved %d tasks, naive moved %d — heuristic not helping",
			minMoved, naiveMoved)
	}
}

func TestTransitionOnlyMovesFromFailedNode(t *testing.T) {
	s := strategyFixture(t, 1)
	base := s.Plans[""]
	for n := 0; n < 6; n++ {
		key := NewFaultSet(network.NodeID(n)).Key()
		p := s.Plans[key]
		moved := base.Assign.Diff(p.Assign)
		for _, id := range moved {
			if base.Assign[id] != network.NodeID(n) {
				t.Errorf("mode %s: %q moved from healthy node %d", key, id, base.Assign[id])
			}
		}
	}
}

func TestStrategyBoundsPositive(t *testing.T) {
	s := strategyFixture(t, 1)
	if s.DetectBound <= 0 || s.DistributeBound <= 0 || s.Delta <= 0 {
		t.Errorf("bounds not derived: detect=%v distribute=%v delta=%v",
			s.DetectBound, s.DistributeBound, s.Delta)
	}
	if s.RNeeded < s.DetectBound+s.Delta {
		t.Error("RNeeded inconsistent")
	}
}

func TestBuildRejectsInvalidWorkload(t *testing.T) {
	g := flow.NewGraph("bad", 0)
	topo := network.FullMesh(3, 1_000_000, 0)
	if _, err := Build(g, topo, DefaultOptions(1, sim.Second)); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestBuildFailsOnTinyTopology(t *testing.T) {
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	topo := network.Line(2, 1_000_000, 0) // 3 source replicas can't fit
	if _, err := Build(g, topo, DefaultOptions(1, sim.Second)); err == nil {
		t.Fatal("expected failure with too few nodes")
	}
}

func TestPruneRemovesExclusiveSupport(t *testing.T) {
	g := flow.Avionics(25 * sim.Millisecond)
	pruned := prune(g, []flow.TaskID{"cabin"})
	if pruned == nil {
		t.Fatal("prune removed everything")
	}
	// media and ife.decode serve only cabin.
	if _, ok := pruned.Tasks["media"]; ok {
		t.Error("media survived shedding of cabin")
	}
	if _, ok := pruned.Tasks["ife.decode"]; ok {
		t.Error("ife.decode survived shedding of cabin")
	}
	// gyro serves elevator too; must survive.
	if _, ok := pruned.Tasks["gyro"]; !ok {
		t.Error("gyro wrongly pruned")
	}
	if err := pruned.Validate(); err != nil {
		t.Fatalf("pruned graph invalid: %v", err)
	}
}

func TestNextShedSinkOrder(t *testing.T) {
	g := flow.Avionics(25 * sim.Millisecond)
	first, ok := nextShedSink(g, nil)
	if !ok || first != "cabin" {
		t.Errorf("first shed = %v, want cabin (criticality D)", first)
	}
	second, ok := nextShedSink(g, []flow.TaskID{"cabin"})
	if !ok || second != "display" {
		t.Errorf("second shed = %v, want display (criticality C)", second)
	}
}

func BenchmarkBuildStrategyAvionicsF1(b *testing.B) {
	g := flow.Avionics(25 * sim.Millisecond)
	topo := network.FullMesh(6, 20_000_000, 50*sim.Microsecond)
	opts := DefaultOptions(1, 500*sim.Millisecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, topo, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEnumerateFaultSetsOver(t *testing.T) {
	members := []network.NodeID{5, 2, 9, 2} // unsorted, duplicated on purpose
	sets := EnumerateFaultSetsOver(members, 2)
	want := []string{"", "2", "5", "9", "2,5", "2,9", "5,9"}
	if len(sets) != len(want) {
		t.Fatalf("got %d sets, want %d: %v", len(sets), len(want), sets)
	}
	for i, fs := range sets {
		if fs.Key() != want[i] {
			t.Fatalf("set %d = %q, want %q (full: %v)", i, fs.Key(), want[i], sets)
		}
	}
	// Over the full universe it matches EnumerateFaultSets exactly.
	full := EnumerateFaultSets(5, 2)
	over := EnumerateFaultSetsOver([]network.NodeID{0, 1, 2, 3, 4}, 2)
	if len(full) != len(over) {
		t.Fatalf("full %d vs over %d", len(full), len(over))
	}
	for i := range full {
		if full[i].Key() != over[i].Key() {
			t.Fatalf("index %d: %q vs %q", i, full[i].Key(), over[i].Key())
		}
	}
}
