package plan

import (
	"fmt"
	"sort"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/sched"
	"btr/internal/sim"
)

// Options configures strategy construction.
type Options struct {
	// F is the maximum number of simultaneously faulty nodes.
	F int
	// R is the requested recovery bound. Build reports (but does not
	// fail on) infeasibility; callers decide.
	R sim.Time
	// Sched carries CPU speed, crypto costs, and the evidence share.
	Sched sched.Params
	// SourceReplicas overrides source replication (default 2F+1).
	SourceReplicas int
	// CheckerWCET is the per-checker execution budget.
	CheckerWCET sim.Time
	// MinimalDiff derives each plan from its canonical predecessor to
	// minimize reassignment (§4.1). False = naive replanning (ablation).
	MinimalDiff bool
	// Locality enables the producer-proximity placement heuristic.
	Locality bool
	// OmissionThreshold is the attribution threshold for path
	// accusations; defaults to F+1 (so F colluding accusers cannot frame
	// a correct node).
	OmissionThreshold int
	// WatchdogMargin is added to planned arrival offsets before a
	// consumer declares an omission.
	WatchdogMargin sim.Time
}

// DefaultOptions returns the planner defaults for fault bound f and
// recovery bound r.
func DefaultOptions(f int, r sim.Time) Options {
	return Options{
		F:                 f,
		R:                 r,
		Sched:             sched.DefaultParams(),
		CheckerWCET:       300 * sim.Microsecond,
		MinimalDiff:       true,
		Locality:          true,
		OmissionThreshold: f + 1,
		WatchdogMargin:    2 * sim.Millisecond,
	}
}

// Plan is one mode's complete configuration: which tasks run where on
// what schedule, and which logical sinks were shed to fit.
type Plan struct {
	Faults FaultSet
	// Pruned is the base workload minus shed tasks; Aug is its
	// replica-augmented runtime graph.
	Pruned *flow.Graph
	Aug    *flow.Graph
	Assign Assignment
	Table  *sched.Table
	// ShedSinks lists logical sinks dropped in this mode (lowest
	// criticality first).
	ShedSinks []flow.TaskID
}

// Key returns the plan's strategy key.
func (p *Plan) Key() string { return p.Faults.Key() }

// RunsTask reports whether logical task id still runs in this mode.
func (p *Plan) RunsTask(id flow.TaskID) bool {
	_, ok := p.Pruned.Tasks[id]
	return ok
}

// Transition describes switching from one plan to a successor.
type Transition struct {
	From, To   string
	Moved      []flow.TaskID // replicas whose node changes
	StateBytes int64         // total state that must migrate
	Bound      sim.Time      // worst-case completion time of the switch
}

// Strategy is the full offline artifact installed on every node: plans
// for every fault pattern up to F, transition bounds, and the derived
// timing constants that make recovery bounded.
type Strategy struct {
	Base *flow.Graph
	Topo *network.Topology
	Opts Options

	// Members restricts the strategy to a subset of the topology's node
	// slots (nil = every slot, the classic static deployment). A
	// membership epoch's strategy covers fault patterns over its active
	// members only, and the derived bounds use the member-induced
	// subgraph's diameter/bandwidth/propagation — dormant slots must not
	// dilate (or flatter) the provable recovery bound.
	Members []network.NodeID

	Plans map[string]*Plan
	// Trans holds, for each non-empty plan key, the worst-case transition
	// into it over all predecessors.
	Trans map[string]Transition

	// Derived bounds (see DESIGN.md):
	DetectBound     sim.Time // fault manifestation -> evidence exists
	DistributeBound sim.Time // evidence exists -> all correct nodes have it
	SwitchBound     sim.Time // activation -> new mode fully running
	// Delta is the activation delay: every correct node activates the
	// successor plan at detection_time + Delta (rounded up to a period
	// boundary), which is safe because Delta >= DistributeBound.
	Delta sim.Time
	// RNeeded is the provable recovery bound this strategy achieves.
	RNeeded sim.Time
}

// RFeasible reports whether the achieved bound meets the requested R.
func (s *Strategy) RFeasible() bool { return s.RNeeded <= s.Opts.R }

// Normalized fills the defaulted Options fields the way Build always
// has. Callers that fingerprint or compare Options should normalize
// first so implicit and explicit defaults coincide.
func (o Options) Normalized() Options {
	if o.OmissionThreshold == 0 {
		o.OmissionThreshold = o.F + 1
	}
	if o.CheckerWCET == 0 {
		o.CheckerWCET = 300 * sim.Microsecond
	}
	if o.WatchdogMargin == 0 {
		o.WatchdogMargin = 2 * sim.Millisecond
	}
	return o
}

// Build computes the complete strategy for the workload on the topology.
func Build(base *flow.Graph, topo *network.Topology, opts Options) (*Strategy, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("plan: invalid workload: %w", err)
	}
	if opts.F < 0 {
		return nil, fmt.Errorf("plan: negative fault bound")
	}
	opts = opts.Normalized()
	syn := NewSynth(base, topo, opts)
	plans := map[string]*Plan{}
	sets := EnumerateFaultSets(topo.N, opts.F)
	for _, fs := range sets {
		var parent Assignment
		if opts.MinimalDiff && fs.Len() > 0 {
			// Canonical predecessor: remove the largest member. Its plan
			// exists because sets enumerate in BFS order.
			preds := fs.Predecessors()
			canon := preds[len(preds)-1]
			if pp := plans[canon.Key()]; pp != nil {
				parent = pp.Assign
			}
		}
		p, err := syn.BuildPlan(fs, parent)
		if err != nil {
			return nil, fmt.Errorf("plan: mode %v: %w", fs, err)
		}
		plans[fs.Key()] = p
	}
	return NewStrategyFromPlans(base, topo, opts, plans, nil), nil
}

// TransitionFunc computes (or recalls) the transition analysis between
// two plans. The incremental engine passes a memoizing implementation so
// warm strategy assembly skips recomputing unchanged transitions.
type TransitionFunc func(a, b *Plan) Transition

// NewStrategyFromPlans assembles a Strategy from externally synthesized
// plans — one per fault set of size <= opts.F, keyed by FaultSet.Key —
// running the transition analysis and deriving the strategy-wide timing
// bounds. trans overrides the per-pair transition analysis (nil means
// TransitionBetween). Build uses it internally; the incremental plan
// engine (internal/plan/cache) uses it to assemble strategies from
// memoized plans. Options are normalized the same way Build normalizes
// them.
func NewStrategyFromPlans(base *flow.Graph, topo *network.Topology, opts Options, plans map[string]*Plan, trans TransitionFunc) *Strategy {
	return NewStrategyForMembers(base, topo, opts, nil, plans, trans)
}

// NewStrategyForMembers is NewStrategyFromPlans for a membership epoch:
// plans cover fault sets drawn from members only (still keyed by the
// member fault set's FaultSet.Key — each Plan may itself exclude the
// dormant slots on top), and the derived bounds use the member-induced
// subgraph metrics. members == nil means every slot (the classic case).
func NewStrategyForMembers(base *flow.Graph, topo *network.Topology, opts Options, members []network.NodeID, plans map[string]*Plan, trans TransitionFunc) *Strategy {
	opts = opts.Normalized()
	if trans == nil {
		trans = func(a, b *Plan) Transition {
			return TransitionBetween(a, b, topo, opts)
		}
	}
	s := &Strategy{
		Base:    base,
		Topo:    topo,
		Opts:    opts,
		Members: members,
		Plans:   plans,
		Trans:   map[string]Transition{},
	}
	var sets []FaultSet
	if members != nil {
		sets = EnumerateFaultSetsOver(members, opts.F)
	} else {
		sets = EnumerateFaultSets(topo.N, opts.F)
	}
	// Transition analysis: worst-case into each plan over all direct
	// predecessors.
	for _, fs := range sets {
		if fs.Len() == 0 {
			continue
		}
		to := s.Plans[fs.Key()]
		worst := Transition{From: "?", To: fs.Key()}
		for _, pred := range fs.Predecessors() {
			from := s.Plans[pred.Key()]
			tr := trans(from, to)
			if tr.Bound >= worst.Bound {
				worst = tr
			}
		}
		s.Trans[fs.Key()] = worst
	}
	s.deriveBounds()
	return s
}

// Synth is a reusable plan-synthesis context for one (workload, topology,
// options) triple. It memoizes the fault-set-independent work — the
// all-pairs hop matrix and the pruned/augmented graphs per shed set — so
// that building many plans (one per fault set during Build, or many delta
// repairs in the incremental engine) does not redo it. A Synth is not
// safe for concurrent use; callers that synthesize from multiple
// goroutines must serialize (see internal/plan/cache).
type Synth struct {
	base *flow.Graph
	topo *network.Topology
	opts Options
	hops [][]int
	augs map[string]synthGraphs
}

type synthGraphs struct{ pruned, aug *flow.Graph }

// NewSynth builds a synthesis context. Options are normalized once.
func NewSynth(base *flow.Graph, topo *network.Topology, opts Options) *Synth {
	return &Synth{
		base: base,
		topo: topo,
		opts: opts.Normalized(),
		hops: hopMatrix(topo),
		augs: map[string]synthGraphs{},
	}
}

// graphsFor returns the pruned and replica-augmented graphs for a shed
// set, memoized. pruned is nil when nothing schedulable remains.
func (s *Synth) graphsFor(shed []flow.TaskID) (*flow.Graph, *flow.Graph) {
	key := ""
	for _, id := range shed {
		key += string(id) + "\x00"
	}
	if g, ok := s.augs[key]; ok {
		return g.pruned, g.aug
	}
	pruned := prune(s.base, shed)
	var aug *flow.Graph
	if pruned != nil && len(pruned.Sinks()) > 0 {
		aug = Augment(pruned, AugmentOptions{
			F:              s.opts.F,
			SourceReplicas: s.opts.SourceReplicas,
			CheckerWCET:    s.opts.CheckerWCET,
		})
	}
	s.augs[key] = synthGraphs{pruned: pruned, aug: aug}
	return pruned, aug
}

// BuildPlan computes one mode's plan from scratch, shedding
// low-criticality sinks until the mode schedules ("the planner removes
// some of the less critical tasks and retries", §4.1). parent biases
// placement toward an existing assignment (nil for naive placement).
func (s *Synth) BuildPlan(fs FaultSet, parent Assignment) (*Plan, error) {
	return s.buildFrom(fs, parent, nil)
}

// DeltaPlan repairs prior's plan for fault set fs — intended for the
// incremental case where fs differs from prior.Faults by a single added
// or removed fault. The fast path reuses prior's pruned/augmented graphs
// and shed set verbatim and re-places only the replicas the fault delta
// displaces (assignment stickiness keeps every still-eligible replica on
// its node), then rebuilds and re-verifies the schedule table. If the
// repaired placement cannot schedule, it falls back to the full shedding
// loop seeded with prior's shed set and placement. The result is always
// fully verified (deadlines, anti-affinity) — delta derivation is an
// optimization, never a weakening of the plan contract. Note the repair
// never un-sheds: a plan derived from a shedding predecessor keeps its
// shed sinks even if a from-scratch build could avoid them.
func (s *Synth) DeltaPlan(prior *Plan, fs FaultSet) (*Plan, error) {
	if prior == nil {
		return s.BuildPlan(fs, nil)
	}
	pruned, aug := s.graphsFor(prior.ShedSinks)
	if aug != nil {
		asn, err := assign(aug, s.topo, assignOptions{
			faults:   fs,
			parent:   prior.Assign,
			locality: s.opts.Locality,
			hops:     s.hops,
		})
		if err == nil {
			table, terr := sched.Build(aug, asn, s.topo, s.opts.Sched)
			if terr == nil && deadlinesOK(pruned, aug, table) == nil {
				return &Plan{
					Faults: fs, Pruned: pruned, Aug: aug,
					Assign: asn, Table: table,
					ShedSinks: prior.ShedSinks,
				}, nil
			}
		}
	}
	return s.buildFrom(fs, prior.Assign, prior.ShedSinks)
}

// buildFrom is the shedding loop, starting from an initial shed set.
func (s *Synth) buildFrom(fs FaultSet, parent Assignment, shed []flow.TaskID) (*Plan, error) {
	shed = append([]flow.TaskID(nil), shed...)
	var lastErr error
	for {
		pruned, aug := s.graphsFor(shed)
		if aug == nil {
			if lastErr == nil {
				lastErr = fmt.Errorf("nothing schedulable")
			}
			return nil, fmt.Errorf("all sinks shed and still unschedulable: %v", lastErr)
		}
		asn, err := assign(aug, s.topo, assignOptions{
			faults:   fs,
			parent:   parent,
			locality: s.opts.Locality,
			hops:     s.hops,
		})
		if err == nil {
			var table *sched.Table
			table, err = sched.Build(aug, asn, s.topo, s.opts.Sched)
			if err == nil {
				if verr := deadlinesOK(pruned, aug, table); verr != nil {
					err = verr
				} else {
					return &Plan{
						Faults: fs, Pruned: pruned, Aug: aug,
						Assign: asn, Table: table, ShedSinks: shed,
					}, nil
				}
			}
		}
		lastErr = err
		next, ok := nextShedSink(s.base, shed)
		if !ok {
			return nil, fmt.Errorf("unschedulable even after shedding everything sheddable: %v", lastErr)
		}
		shed = append(shed, next)
	}
}

// prune removes the shed sinks and every task that only serves shed sinks.
// Returns nil if nothing remains.
func prune(base *flow.Graph, shedSinks []flow.TaskID) *flow.Graph {
	if len(shedSinks) == 0 {
		return base
	}
	dead := map[flow.TaskID]bool{}
	for _, s := range shedSinks {
		dead[s] = true
	}
	sinkOf := base.SinkOf()
	keep := map[flow.TaskID]bool{}
	for _, id := range base.TaskIDs() {
		alive := false
		for _, s := range sinkOf[id] {
			if !dead[s] {
				alive = true
				break
			}
		}
		if alive {
			keep[id] = true
		}
	}
	if len(keep) == 0 {
		return nil
	}
	g := flow.NewGraph(base.Name, base.Period)
	for _, id := range base.TaskIDs() {
		if keep[id] {
			g.AddTask(*base.Tasks[id])
		}
	}
	for _, e := range base.Edges {
		if keep[e.From] && keep[e.To] {
			g.Connect(e.From, e.To, e.Bytes)
		}
	}
	return g
}

// nextShedSink picks the least critical not-yet-shed sink (largest
// criticality letter, then largest WCET of its exclusive support group,
// then ID).
func nextShedSink(base *flow.Graph, already []flow.TaskID) (flow.TaskID, bool) {
	shed := map[flow.TaskID]bool{}
	for _, s := range already {
		shed[s] = true
	}
	var best flow.TaskID
	found := false
	for _, s := range base.Sinks() {
		if shed[s] {
			continue
		}
		if !found {
			best, found = s, true
			continue
		}
		bc, sc := base.Tasks[best].Crit, base.Tasks[s].Crit
		if sc > bc || (sc == bc && s < best) {
			best = s
		}
	}
	return best, found
}

// deadlinesOK checks both the augmented graph's own sinks (checkers) and
// the actuation deadlines of the original sinks' replicas.
func deadlinesOK(pruned, aug *flow.Graph, table *sched.Table) error {
	if vs := table.CheckDeadlines(aug); len(vs) != 0 {
		return fmt.Errorf("deadline violations: %v", vs[0])
	}
	for _, s := range pruned.Sinks() {
		dl := pruned.Tasks[s].Deadline
		for _, id := range aug.TaskIDs() {
			logical, _ := SplitReplica(id)
			if logical != s {
				continue
			}
			if f := table.Finish[id]; f > dl {
				return fmt.Errorf("actuation deadline: replica %q finishes %v after %v", id, f, dl)
			}
		}
	}
	return nil
}

// TransitionBetween analyzes switching from plan a to plan b: which
// replicas move, how much state migrates, and the worst-case completion
// bound of the switch.
func TransitionBetween(a, b *Plan, topo *network.Topology, opts Options) Transition {
	return TransitionWithin(a, b, topo, opts, nil)
}

// TransitionWithin is TransitionBetween restricted to a membership (nil =
// every slot): state migration crosses the member-induced subgraph only,
// so per-epoch transition bounds reflect the active wiring.
func TransitionWithin(a, b *Plan, topo *network.Topology, opts Options, members []network.NodeID) Transition {
	moved := a.Assign.Diff(b.Assign)
	var bytes int64
	for _, id := range moved {
		if t, ok := b.Aug.Tasks[id]; ok {
			bytes += t.StateBytes
		}
	}
	// Also count tasks newly started on b (state must be initialized or
	// fetched from surviving replicas).
	for id := range b.Assign {
		if _, existed := a.Assign[id]; !existed {
			if t, ok := b.Aug.Tasks[id]; ok {
				bytes += t.StateBytes
			}
		}
	}
	minBW, maxProp, diam := topo.MinBandwidth(), topo.MaxProp(), topo.Diameter()
	if members != nil {
		in := memberFunc(members)
		minBW, maxProp, diam = topo.MinBandwidthWithin(in), topo.MaxPropWithin(in), topo.DiameterWithin(in)
	}
	if diam < 0 {
		diam = 0
	}
	// Worst-case transfer: all state crosses the slowest foreground
	// share sequentially plus one diameter of propagation. Conservative.
	capMin := fgShare(minBW, opts.Sched.EvidenceShare)
	transfer := network.TxTime(bytes, capMin) + sim.Time(diam)*maxProp
	return Transition{
		From: a.Key(), To: b.Key(),
		Moved: moved, StateBytes: bytes,
		Bound: transfer + b.Pruned.Period, // settle within one period after transfer
	}
}

// memberFunc adapts a member slice to the Topology *Within predicates.
func memberFunc(members []network.NodeID) func(network.NodeID) bool {
	in := make(map[network.NodeID]bool, len(members))
	for _, m := range members {
		in[m] = true
	}
	return func(n network.NodeID) bool { return in[n] }
}

func fgShare(bw int64, evidenceShare float64) int64 {
	c := int64(float64(bw) * (1 - evidenceShare))
	if c < 1 {
		c = 1
	}
	return c
}

// deriveBounds computes the strategy-wide timing constants.
func (s *Strategy) deriveBounds() {
	p := s.Base.Period
	// Commission faults: a bad record sent in period k is compared by
	// checkers/consumers within the same period; evidence exists by the
	// end of period k+1 in the worst case. Omission faults: conviction
	// needs OmissionThreshold distinct accusation paths; all consumer
	// replicas accuse within one period of the omission, so allow one
	// extra period for the attributor to cross its threshold.
	s.DetectBound = 2 * p
	if s.Opts.OmissionThreshold > s.Opts.F+1 {
		// Fewer accusers per period than the threshold needs: scale.
		extra := (s.Opts.OmissionThreshold + s.Opts.F) / (s.Opts.F + 1)
		s.DetectBound = sim.Time(1+extra) * p
	}

	// Evidence flooding: per hop, the message serializes on the evidence
	// share of the slowest link, propagates, and is verified before
	// being forwarded. Worst case crosses the diameter. All three metrics
	// come from the member-induced subgraph when the strategy is
	// membership-restricted: dormant slots carry no traffic.
	minBW, maxProp, d := s.Topo.MinBandwidth(), s.Topo.MaxProp(), s.Topo.Diameter()
	if s.Members != nil {
		in := memberFunc(s.Members)
		minBW, maxProp, d = s.Topo.MinBandwidthWithin(in), s.Topo.MaxPropWithin(in), s.Topo.DiameterWithin(in)
	}
	evCap := int64(float64(minBW) * s.Opts.Sched.EvidenceShare)
	if evCap < 1 {
		evCap = 1
	}
	maxEv := s.maxEvidenceBytes()
	hop := network.TxTime(maxEv, evCap) + maxProp + s.Opts.Sched.VerifyCost*4
	if d < 1 {
		d = 1
	}
	s.DistributeBound = sim.Time(d)*hop + sim.Millisecond

	for _, tr := range s.Trans {
		if tr.Bound > s.SwitchBound {
			s.SwitchBound = tr.Bound
		}
	}
	s.Delta = s.DistributeBound
	// Activation rounds up to a period boundary (+P), then the switch
	// completes within SwitchBound.
	s.RNeeded = s.DetectBound + s.Delta + p + s.SwitchBound
}

// maxEvidenceBytes bounds the wire size of any evidence this workload can
// produce (wrong-output proofs carry one envelope per logical input).
func (s *Strategy) maxEvidenceBytes() int64 {
	var maxIn int
	var maxBytes int64
	for _, id := range s.Base.TaskIDs() {
		if n := len(s.Base.Inputs(id)); n > maxIn {
			maxIn = n
		}
		for _, e := range s.Base.Outputs(id) {
			if e.Bytes > maxBytes {
				maxBytes = e.Bytes
			}
		}
	}
	return 2*(maxBytes+recordOverhead+envelopeOverhead) +
		int64(maxIn)*(maxBytes+recordOverhead+2*envelopeOverhead) + 64
}

// PlanFor returns the plan for the given fault set. If the exact set is
// not covered (more than F faults suspected), it falls back to the largest
// covered subset — the BTR guarantee is void beyond F faults, but the
// system should still do something sensible.
func (s *Strategy) PlanFor(fs FaultSet) *Plan {
	if p, ok := s.Plans[fs.Key()]; ok {
		return p
	}
	nodes := fs.Nodes()
	for len(nodes) > s.Opts.F {
		nodes = nodes[:len(nodes)-1]
	}
	for len(nodes) >= 0 {
		if p, ok := s.Plans[NewFaultSet(nodes...).Key()]; ok {
			return p
		}
		if len(nodes) == 0 {
			break
		}
		nodes = nodes[:len(nodes)-1]
	}
	return s.Plans[""]
}

// Summary renders a human-readable strategy overview.
func (s *Strategy) Summary() string {
	keys := make([]string, 0, len(s.Plans))
	for k := range s.Plans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return keys[i] < keys[j]
	})
	out := fmt.Sprintf("strategy: %d plans, F=%d, R requested %v, R achieved %v (feasible=%v)\n",
		len(s.Plans), s.Opts.F, s.Opts.R, s.RNeeded, s.RFeasible())
	out += fmt.Sprintf("  detect<=%v distribute<=%v switch<=%v delta=%v\n",
		s.DetectBound, s.DistributeBound, s.SwitchBound, s.Delta)
	for _, k := range keys {
		p := s.Plans[k]
		_, maxU := p.Table.MaxUtilization()
		out += fmt.Sprintf("  mode %-12s tasks=%-3d shed=%v maxUtil=%.2f\n",
			p.Faults.String(), len(p.Aug.Tasks), p.ShedSinks, maxU)
	}
	return out
}
