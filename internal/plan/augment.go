package plan

import (
	"fmt"
	"strconv"
	"strings"

	"btr/internal/flow"
	"btr/internal/sim"
)

// Replica naming: logical task "fc.law" yields replicas "fc.law#0",
// "fc.law#1", ... Checker tasks for sink S are the logical task "chk:S".

// ReplicaID builds the replica instance name.
func ReplicaID(logical flow.TaskID, idx int) flow.TaskID {
	return flow.TaskID(fmt.Sprintf("%s#%d", logical, idx))
}

// CheckerID builds the checker logical-task name for sink s.
func CheckerID(s flow.TaskID) flow.TaskID { return flow.TaskID("chk:" + string(s)) }

// SplitReplica parses a replica instance name into (logical, index).
// Non-replica names return (id, -1).
func SplitReplica(id flow.TaskID) (flow.TaskID, int) {
	s := string(id)
	i := strings.LastIndexByte(s, '#')
	if i < 0 {
		return id, -1
	}
	idx, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return id, -1
	}
	return flow.TaskID(s[:i]), idx
}

// IsChecker reports whether the logical task is a checker.
func IsChecker(logical flow.TaskID) bool { return strings.HasPrefix(string(logical), "chk:") }

// Wire-size model: the runtime wraps every dataflow value in a signed
// Record and attaches the producer's committed input envelopes (one per
// logical input), so consumers and checkers can re-execute. These
// constants are deliberate over-estimates so planned link windows always
// cover actual transmissions.
const (
	recordOverhead   = 96 // ids, period, offset, digest
	envelopeOverhead = 96 // signer, framing, ed25519 signature
	checkerMsgBytes  = 48 // sink replicas forward only value+digest to checkers
)

// WireBytes returns the on-the-wire payload size for an edge whose
// producer has the given logical inputs (each attached as an envelope).
func WireBytes(valueBytes int64, producerInputs []flow.Edge) int64 {
	size := valueBytes + recordOverhead + envelopeOverhead
	for _, in := range producerInputs {
		size += in.Bytes + recordOverhead + 2*envelopeOverhead
	}
	return size
}

// AugmentOptions tunes graph augmentation.
type AugmentOptions struct {
	// F is the fault bound; non-source tasks get F+1 replicas.
	F int
	// SourceReplicas overrides the replica count for sources; 0 means the
	// default 2F+1 (sensor disagreement cannot be re-executed, so
	// majority voting among sources needs 2F+1; see DESIGN.md).
	SourceReplicas int
	// CheckerWCET is the execution budget for checker tasks.
	CheckerWCET sim.Time
}

// DefaultAugment returns augmentation defaults for the given fault bound.
func DefaultAugment(f int) AugmentOptions {
	return AugmentOptions{F: f, CheckerWCET: 300 * sim.Microsecond}
}

// Augment builds the runtime graph for one mode: every logical task is
// replicated, every logical edge becomes a full bipartite bundle between
// producer and consumer replicas (consumers take the first arrival and
// compare the rest — detection, not masking), and each logical sink gains
// replicated checker tasks that audit the sink replicas' actuation
// commands (a sink's output goes to the physical world, so no downstream
// consumer would otherwise see it).
//
// The returned graph's edge byte counts use the wire-size model above, so
// scheduling accounts for the accountability overhead — "there are no
// extra resources for BTR" (§4.1).
func Augment(g *flow.Graph, o AugmentOptions) *flow.Graph {
	if o.F < 0 {
		panic("plan: negative fault bound")
	}
	srcReps := o.SourceReplicas
	if srcReps == 0 {
		srcReps = 2*o.F + 1
	}
	nonSrcReps := o.F + 1
	reps := func(t *flow.Task) int {
		if t.Source {
			return srcReps
		}
		return nonSrcReps
	}

	a := flow.NewGraph(g.Name+"+btr", g.Period)
	// Replicate workload tasks.
	for _, id := range g.TaskIDs() {
		t := g.Tasks[id]
		for i := 0; i < reps(t); i++ {
			rt := *t
			rt.ID = ReplicaID(id, i)
			a.AddTask(rt)
		}
	}
	// Checker logical tasks for each sink, replicated like non-sources.
	for _, s := range g.Sinks() {
		for i := 0; i < nonSrcReps; i++ {
			a.AddTask(flow.Task{
				ID:         ReplicaID(CheckerID(s), i),
				WCET:       o.CheckerWCET,
				Crit:       g.Tasks[s].Crit,
				StateBytes: 64,
				Sink:       true,
				Deadline:   g.Period,
			})
		}
	}
	// Edge bundles.
	for _, e := range g.Edges {
		prod := g.Tasks[e.From]
		cons := g.Tasks[e.To]
		bytes := WireBytes(e.Bytes, g.Inputs(e.From))
		for i := 0; i < reps(prod); i++ {
			for j := 0; j < reps(cons); j++ {
				a.Connect(ReplicaID(e.From, i), ReplicaID(e.To, j), bytes)
			}
		}
	}
	// Sink -> checker audit edges. Sink replicas lose their "no outputs"
	// property in the augmented graph; flip Sink off for the original
	// sink replicas and keep actuating semantics in the runtime via the
	// logical graph. The checker replicas are the augmented graph's
	// sinks.
	for _, s := range g.Sinks() {
		bytes := WireBytes(checkerMsgBytes, g.Inputs(s))
		for i := 0; i < nonSrcReps; i++ {
			for j := 0; j < nonSrcReps; j++ {
				a.Connect(ReplicaID(s, i), ReplicaID(CheckerID(s), j), bytes)
			}
		}
		for i := 0; i < nonSrcReps; i++ {
			rt := a.Tasks[ReplicaID(s, i)]
			rt.Sink = false
			rt.Deadline = 0
		}
	}
	return a
}

// ActuationDeadline returns the deadline for the logical sink s as given
// by the base workload (the augmented graph moves Sink status to the
// checkers, so the runtime asks the base graph).
func ActuationDeadline(base *flow.Graph, s flow.TaskID) sim.Time {
	return base.Tasks[s].Deadline
}
