package plan

import (
	"fmt"
	"sort"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/sim"
)

// Assignment maps replica task IDs to nodes.
type Assignment map[flow.TaskID]network.NodeID

// Clone copies the assignment.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// Diff returns the replica tasks present in both assignments whose node
// changed, sorted — the tasks whose state must migrate in a transition.
func (a Assignment) Diff(b Assignment) []flow.TaskID {
	var moved []flow.TaskID
	for id, na := range a {
		if nb, ok := b[id]; ok && na != nb {
			moved = append(moved, id)
		}
	}
	sort.Slice(moved, func(i, j int) bool { return moved[i] < moved[j] })
	return moved
}

// assignOptions tunes the mapper.
type assignOptions struct {
	faults FaultSet
	// parent biases placement toward an existing assignment so that
	// transitions stay cheap ("it should otherwise change as little as
	// possible", §4.1). nil disables (naive replanning ablation).
	parent Assignment
	// locality prefers placing consumers near their producers
	// ("putting replicas close to each other may save bandwidth", §4.1).
	locality bool
	// hops is an optional precomputed all-pairs hop matrix for topo
	// (see hopMatrix); nil recomputes it per call.
	hops [][]int
}

// hopMatrix precomputes all-pairs hop distances.
func hopMatrix(topo *network.Topology) [][]int {
	m := make([][]int, topo.N)
	for s := 0; s < topo.N; s++ {
		m[s] = make([]int, topo.N)
		// BFS per source; reuse Path for simplicity would be O(n^3), so
		// do a local BFS over neighbors.
		dist := make([]int, topo.N)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		q := []network.NodeID{network.NodeID(s)}
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, w := range topo.Neighbors(v) {
				if dist[w] == -1 {
					dist[w] = dist[v] + 1
					q = append(q, w)
				}
			}
		}
		copy(m[s], dist)
	}
	return m
}

// assign maps every replica in aug to a non-faulty node. Hard constraint:
// no two replicas of the same logical task share a node. Heuristics: load
// balance, producer locality, and (in minimal-diff mode) stickiness to the
// parent plan's placement.
func assign(aug *flow.Graph, topo *network.Topology, o assignOptions) (Assignment, error) {
	var eligible []network.NodeID
	for n := 0; n < topo.N; n++ {
		if !o.faults.Contains(network.NodeID(n)) {
			eligible = append(eligible, network.NodeID(n))
		}
	}
	// Feasibility: the widest replica group must fit on distinct nodes.
	groupSize := map[flow.TaskID]int{}
	for _, id := range aug.TaskIDs() {
		logical, _ := SplitReplica(id)
		groupSize[logical]++
	}
	for logical, sz := range groupSize {
		if sz > len(eligible) {
			return nil, fmt.Errorf("plan: %d replicas of %q need distinct nodes but only %d are healthy",
				sz, logical, len(eligible))
		}
	}

	hops := o.hops
	if hops == nil {
		hops = hopMatrix(topo)
	}
	load := make(map[network.NodeID]sim.Time, len(eligible))
	used := map[flow.TaskID]map[network.NodeID]bool{} // logical -> occupied nodes
	out := Assignment{}

	// Group replicas by logical task (preserving topological order of the
	// groups; replicas of one logical task share a precedence level).
	// Within a group, replicas whose parent placement is still eligible go
	// first: otherwise a displaced replica could steal a sibling's sticky
	// node and trigger a cascade of unnecessary moves.
	var logicals []flow.TaskID
	groups := map[flow.TaskID][]flow.TaskID{}
	for _, id := range aug.TopoOrder() {
		logical, _ := SplitReplica(id)
		if _, ok := groups[logical]; !ok {
			logicals = append(logicals, logical)
		}
		groups[logical] = append(groups[logical], id)
	}
	var order []flow.TaskID
	for _, logical := range logicals {
		members := groups[logical]
		var sticky, displaced []flow.TaskID
		for _, id := range members {
			if o.parent != nil {
				if prev, ok := o.parent[id]; ok && !o.faults.Contains(prev) {
					sticky = append(sticky, id)
					continue
				}
			}
			displaced = append(displaced, id)
		}
		order = append(order, sticky...)
		order = append(order, displaced...)
	}

	for _, id := range order {
		logical, _ := SplitReplica(id)
		task := aug.Tasks[id]
		occupied := used[logical]
		if occupied == nil {
			occupied = map[network.NodeID]bool{}
			used[logical] = occupied
		}
		var best network.NodeID = -1
		var bestScore float64
		for _, n := range eligible {
			if occupied[n] {
				continue
			}
			// Load term: current committed execution time, in ms.
			score := float64(load[n]) / float64(sim.Millisecond)
			// Locality term: hop distance to each assigned producer —
			// but with a witness-diversity penalty for exact colocation:
			// a consumer on the same node as its producer cannot act as
			// an independent omission witness (its accusations would
			// name its own node). "Putting checking tasks close to
			// replicas" (§4.1) — close, yet distinct.
			if o.locality {
				for _, e := range aug.Inputs(id) {
					if pn, ok := out[e.From]; ok {
						if pn == n {
							score += 0.75
						} else {
							score += 0.25 * float64(hops[pn][n])
						}
					}
				}
			}
			// Stickiness: keeping the parent's placement makes this
			// replica free to transition.
			if o.parent != nil {
				if prev, ok := o.parent[id]; ok && prev == n {
					score -= 1000
				}
			}
			if best == -1 || score < bestScore {
				best, bestScore = n, score
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("plan: no eligible node for %q", id)
		}
		out[id] = best
		occupied[best] = true
		load[best] += task.WCET
	}
	return out, nil
}

// AssignGreedy maps an augmented graph onto healthy nodes with the
// default heuristics (load balance + locality), without a parent plan.
// Baseline protocols reuse it to get comparable placements.
func AssignGreedy(aug *flow.Graph, topo *network.Topology, faults FaultSet) (Assignment, error) {
	return assign(aug, topo, assignOptions{faults: faults, locality: true})
}

// VerifyAssignment checks the hard constraints: every replica assigned to
// a healthy node, and replica anti-affinity. Used by tests and the
// planner's paranoid mode.
func VerifyAssignment(aug *flow.Graph, a Assignment, faults FaultSet) error {
	seen := map[string]flow.TaskID{}
	for _, id := range aug.TaskIDs() {
		n, ok := a[id]
		if !ok {
			return fmt.Errorf("plan: %q unassigned", id)
		}
		if faults.Contains(n) {
			return fmt.Errorf("plan: %q assigned to faulty node %d", id, n)
		}
		logical, _ := SplitReplica(id)
		key := fmt.Sprintf("%s@%d", logical, n)
		if other, dup := seen[key]; dup {
			return fmt.Errorf("plan: replicas %q and %q share node %d", other, id, n)
		}
		seen[key] = id
	}
	return nil
}
