package plan

import (
	"testing"
	"testing/quick"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/sim"
)

// randomScenario draws a workload + topology for property tests. Returns
// nil when the draw is structurally infeasible (too few nodes for the
// replica counts) so properties can skip it.
func randomScenario(seed uint64) (*flow.Graph, *network.Topology, Options) {
	rng := sim.NewRNG(seed)
	opts := flow.RandomOpts{
		Layers:      2 + rng.Intn(3),
		Width:       1 + rng.Intn(3),
		EdgeProb:    0.3,
		MinWCET:     200 * sim.Microsecond,
		MaxWCET:     900 * sim.Microsecond,
		MinBytes:    32,
		MaxBytes:    256,
		StateBytes:  512,
		DeadlineFrc: 1.0,
	}
	g := flow.Random(rng, 40*sim.Millisecond, opts)
	f := 1
	nodes := 6 + rng.Intn(4)
	var topo *network.Topology
	switch rng.Intn(3) {
	case 0:
		topo = network.FullMesh(nodes, 20_000_000, 50*sim.Microsecond)
	case 1:
		topo = network.Ring(nodes, 20_000_000, 50*sim.Microsecond)
	default:
		topo = network.DualBus(nodes, 20_000_000, 50*sim.Microsecond)
	}
	return g, topo, DefaultOptions(f, sim.Second)
}

func TestPropertyStrategyInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		g, topo, opts := randomScenario(seed)
		s, err := Build(g, topo, opts)
		if err != nil {
			return true // infeasible draws are legitimate
		}
		for _, p := range s.Plans {
			// Hard constraints hold in every mode.
			if VerifyAssignment(p.Aug, p.Assign, p.Faults) != nil {
				return false
			}
			// Tables are self-consistent.
			if p.Table.VerifySanity(p.Aug) != nil {
				return false
			}
			// Shedding respects criticality order: if a sink of
			// criticality c was shed, no sink with crit > c (less
			// critical) may still run.
			shed := map[flow.TaskID]bool{}
			worstShed := flow.Criticality(-1) // most critical level shed
			for _, sk := range p.ShedSinks {
				shed[sk] = true
				if c := g.Tasks[sk].Crit; worstShed == -1 || c < worstShed {
					worstShed = c
				}
			}
			if worstShed >= 0 {
				for _, sk := range g.Sinks() {
					if !shed[sk] && g.Tasks[sk].Crit > worstShed {
						return false // a less critical sink survived
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTransitionsOnlyTouchNecessaryTasks(t *testing.T) {
	// With minimal-diff derivation, a transition from the base plan into
	// a single-fault mode moves only replicas that were hosted on the
	// failed node (unless shedding changed the task set).
	f := func(seed uint64) bool {
		g, topo, opts := randomScenario(seed)
		s, err := Build(g, topo, opts)
		if err != nil {
			return true
		}
		base := s.Plans[""]
		for n := 0; n < topo.N; n++ {
			p := s.Plans[NewFaultSet(network.NodeID(n)).Key()]
			if p == nil || len(p.ShedSinks) != len(base.ShedSinks) {
				continue // shedding changes the comparison
			}
			for _, id := range base.Assign.Diff(p.Assign) {
				if base.Assign[id] != network.NodeID(n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRNeededMonotoneInDiameter(t *testing.T) {
	// Distribution crosses the diameter: a line topology must not yield a
	// smaller achieved R than a full mesh of the same size.
	g := flow.Chain(3, 30*sim.Millisecond, sim.Millisecond, 64, flow.CritB)
	mesh, err := Build(g, network.FullMesh(6, 20_000_000, 50*sim.Microsecond), DefaultOptions(1, sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	line, err := Build(g, network.Line(6, 20_000_000, 50*sim.Microsecond), DefaultOptions(1, sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if line.DistributeBound < mesh.DistributeBound {
		t.Errorf("line distribute bound %v below mesh %v", line.DistributeBound, mesh.DistributeBound)
	}
	if line.RNeeded < mesh.RNeeded {
		t.Errorf("line R %v below mesh R %v", line.RNeeded, mesh.RNeeded)
	}
}

func TestLocalityAblation(t *testing.T) {
	// Disabling the locality heuristic must not break any invariant; it
	// typically increases cross-node traffic distance (not asserted, but
	// both must schedule).
	g := flow.Avionics(25 * sim.Millisecond)
	topo := network.Ring(8, 20_000_000, 50*sim.Microsecond)
	for _, locality := range []bool{true, false} {
		opts := DefaultOptions(1, sim.Second)
		opts.Locality = locality
		s, err := Build(g, topo, opts)
		if err != nil {
			t.Fatalf("locality=%v: %v", locality, err)
		}
		for _, p := range s.Plans {
			if err := VerifyAssignment(p.Aug, p.Assign, p.Faults); err != nil {
				t.Fatalf("locality=%v: %v", locality, err)
			}
		}
	}
}

func TestPropertySourceReplicaOverride(t *testing.T) {
	// SourceReplicas override is honored and validated.
	g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	opts := DefaultOptions(1, sim.Second)
	opts.SourceReplicas = 2 // below the 2f+1 default
	topo := network.FullMesh(5, 20_000_000, 50*sim.Microsecond)
	s, err := Build(g, topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, id := range s.Plans[""].Aug.TaskIDs() {
		logical, _ := SplitReplica(id)
		if logical == "c0" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("source replicas = %d, want 2", count)
	}
}
