// Package cache implements the incremental recovery-plan engine: a
// canonicalizing, sharded, concurrency-safe memo of solved plans plus a
// delta-planner front end (see Engine).
//
// The paper's bounded-recovery argument assumes a valid plan exists for
// every anticipated fault pattern *before* the pattern manifests; as
// topologies and fault bounds grow, plan synthesis — not execution —
// becomes the scaling bottleneck. Most fault sets are symmetric variants
// or single-fault deltas of patterns the planner has already solved, so
// the engine exploits that structure instead of recomputing: fault sets
// are canonicalized up to topology symmetry (this file), solved plans are
// memoized under content-addressed keys (cache.go), and new plans are
// repaired from their canonical predecessor instead of re-running full
// assignment (engine.go, plan.Synth.DeltaPlan).
package cache

import (
	"encoding/binary"
	"sort"
	"sync"

	"btr/internal/network"
	"btr/internal/plan"
)

// searchBudget bounds the total backtracking steps one Canonicalize call
// may spend across all candidate images. Exhausting it falls back to the
// exact (symmetry-free) key, which is always sound — it only costs cache
// sharing, never correctness.
const searchBudget = 200_000

// Canon is the result of canonicalizing one fault set.
type Canon struct {
	// Key is the canonical cache key: "c:<rep>" for a genuine canonical
	// representative, "x:<fs>" when the search gave up (distinct
	// namespaces, so a budget fallback can never collide with a real
	// orbit key).
	Key string
	// Rep is the canonical representative fault set (== the input for
	// exact fallbacks and orbit minima).
	Rep plan.FaultSet
	// FromRep maps a representative-plan node to the corresponding node
	// for the queried fault set (the inverse automorphism); nil means
	// identity. Shared across callers — treat as immutable.
	FromRep []network.NodeID
	// Exact reports a budget fallback (no symmetry reduction applied).
	Exact bool
}

// Symmetry canonicalizes fault sets up to the automorphism group of one
// topology. Automorphisms must preserve adjacency *and* link attributes
// (bandwidth, propagation delay): only then is a relabeled plan
// timing-identical to the original (see plan.Plan.Relabel). All search
// and refinement order is sorted, so canonical keys are deterministic.
// A Symmetry is safe for concurrent use; results are memoized per fault
// set.
type Symmetry struct {
	topo *network.Topology
	n    int
	// lc holds link equivalence classes: lc[a*n+b] is 0 for "no link",
	// otherwise 1+index of the link's (bandwidth, prop) class. Two node
	// pairs relate identically iff their lc entries are equal.
	lc   []int32
	base []int // attribute-aware Weisfeiler–Leman colors, stable partition

	memoMu sync.RWMutex
	memo   map[string]Canon
}

// NewSymmetry analyzes the topology's symmetry structure: iterated color
// refinement over (degree, incident link attributes, neighbor colors)
// until the partition stabilizes. The refined colors are automorphism
// invariants; they prune the exact search but never decide it — every
// returned mapping is verified edge-by-edge.
func NewSymmetry(topo *network.Topology) *Symmetry {
	s := &Symmetry{
		topo: topo,
		n:    topo.N,
		lc:   make([]int32, topo.N*topo.N),
		memo: map[string]Canon{},
	}
	type attr struct {
		bw   int64
		prop int64
	}
	classes := map[attr]int32{}
	for _, l := range topo.Links {
		a := attr{l.Bandwidth, int64(l.Prop)}
		cls, ok := classes[a]
		if !ok {
			cls = int32(len(classes) + 1)
			classes[a] = cls
		}
		s.lc[int(l.A)*s.n+int(l.B)] = cls
		s.lc[int(l.B)*s.n+int(l.A)] = cls
	}
	s.base, _ = s.refinePair(nil, nil)
	return s
}

// linkClass returns the equivalence class of the (possibly absent) link
// between two nodes; equal classes mean "same adjacency and same link
// attributes".
func (s *Symmetry) linkClass(a, b network.NodeID) int32 {
	return s.lc[int(a)*s.n+int(b)]
}

// refinePair refines two markings of the same topology in lockstep
// through a shared signature table, so the returned color IDs are
// directly comparable between the two markings; cb is meaningless when
// marksB is nil. Signatures are byte-encoded (own color, then the
// sorted multiset of (neighbor color, link class) pairs) — this runs in
// the engine's cold path, so no fmt in sight.
func (s *Symmetry) refinePair(marksA, marksB []bool) (ca, cb []int) {
	mark := func(m []bool, i int) uint32 {
		if m != nil && m[i] {
			return 1
		}
		return 0
	}
	ca = make([]int, s.n)
	cb = make([]int, s.n)
	pair := marksB != nil

	ids := map[string]int{}
	var buf []byte
	intern := func(b []byte) int {
		if v, ok := ids[string(b)]; ok {
			return v
		}
		v := len(ids)
		ids[string(b)] = v
		return v
	}
	u32 := func(b []byte, v uint32) []byte {
		return binary.LittleEndian.AppendUint32(b, v)
	}

	baseOf := func(i int) uint32 {
		if s.base != nil {
			return uint32(s.base[i])
		}
		return 0
	}
	for i := 0; i < s.n; i++ {
		buf = u32(buf[:0], baseOf(i))
		buf = u32(buf, mark(marksA, i))
		ca[i] = intern(buf)
	}
	if pair {
		for i := 0; i < s.n; i++ {
			buf = u32(buf[:0], baseOf(i))
			buf = u32(buf, mark(marksB, i))
			cb[i] = intern(buf)
		}
	}

	var pairs []uint64 // (neighbor color << 32) | link class, sorted
	sig := func(c []int, i int) []byte {
		pairs = pairs[:0]
		for _, nb := range s.topo.Neighbors(network.NodeID(i)) {
			pairs = append(pairs, uint64(c[nb])<<32|uint64(uint32(s.linkClass(network.NodeID(i), nb))))
		}
		sort.Slice(pairs, func(x, y int) bool { return pairs[x] < pairs[y] })
		buf = u32(buf[:0], uint32(c[i]))
		for _, p := range pairs {
			buf = binary.LittleEndian.AppendUint64(buf, p)
		}
		return buf
	}
	for round := 0; round < s.n; round++ {
		ids = map[string]int{}
		na := make([]int, s.n)
		nb := make([]int, s.n)
		for i := 0; i < s.n; i++ {
			na[i] = intern(sig(ca, i))
		}
		if pair {
			for i := 0; i < s.n; i++ {
				nb[i] = intern(sig(cb, i))
			}
		}
		if classCount(na)+classCount(nb) == classCount(ca)+classCount(cb) {
			return na, nb
		}
		ca = na
		if pair {
			cb = nb
		}
	}
	if !pair {
		cb = nil
	}
	return ca, cb
}

func classCount(c []int) int {
	seen := map[int]bool{}
	for _, v := range c {
		seen[v] = true
	}
	return len(seen)
}

// Canonicalize returns the canonical form of fs: the lexicographically
// smallest image of fs under the topology's (attribute-preserving)
// automorphism group, together with the inverse automorphism needed to
// relabel a plan solved for the representative back to fs. Soundness
// contract: two fault sets receive the same "c:" key only if a verified
// automorphism maps one onto the other — in which case their plans have
// identical recovery-time bounds (plan.Plan.Relabel preserves every
// offset in the schedule table). Results are memoized.
func (s *Symmetry) Canonicalize(fs plan.FaultSet) Canon {
	if fs.Len() == 0 {
		return Canon{Key: "c:", Rep: fs}
	}
	memoKey := fs.Key()
	s.memoMu.RLock()
	c, ok := s.memo[memoKey]
	s.memoMu.RUnlock()
	if ok {
		return c
	}
	c = s.canonicalize(fs)
	s.memoMu.Lock()
	s.memo[memoKey] = c
	s.memoMu.Unlock()
	return c
}

func (s *Symmetry) canonicalize(fs plan.FaultSet) Canon {
	k := fs.Len()
	budget := searchBudget
	src := fs.Nodes()
	marksA := make([]bool, s.n)
	for _, v := range src {
		if int(v) >= s.n {
			// Out-of-range fault sets (defensive): exact key only.
			return s.exact(fs)
		}
		marksA[v] = true
	}
	wantBase := s.colorMultiset(s.base, src)

	comb := make([]network.NodeID, k)
	for i := range comb {
		comb[i] = network.NodeID(i)
	}
	for {
		if s.colorMultiset(s.base, comb) == wantBase {
			if perm, ok := s.findAutomorphism(marksA, comb, &budget); ok {
				rep := plan.NewFaultSet(comb...)
				c := Canon{Key: "c:" + rep.Key(), Rep: rep}
				if !isIdentity(perm) {
					c.FromRep = invert(perm)
				}
				return c
			}
			if budget <= 0 {
				return s.exact(fs)
			}
		}
		if !nextCombination(comb, s.n) || less(src, comb) {
			break
		}
	}
	// The identity candidate (comb == fs) either matched above or blew
	// the budget; fall back to the exact key.
	return s.exact(fs)
}

func (s *Symmetry) exact(fs plan.FaultSet) Canon {
	return Canon{Key: "x:" + fs.Key(), Rep: fs, Exact: true}
}

// colorMultiset encodes the sorted color multiset of a node subset.
func (s *Symmetry) colorMultiset(colors []int, nodes []network.NodeID) string {
	cs := make([]int, len(nodes))
	for i, v := range nodes {
		cs[i] = colors[v]
	}
	sort.Ints(cs)
	buf := make([]byte, 0, 4*len(cs))
	for _, c := range cs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
	}
	return string(buf)
}

// findAutomorphism searches for a full automorphism mapping the marked
// source nodes (marksA) onto the target set, extending to all nodes.
// Every returned mapping is verified pairwise (adjacency + link
// attributes), so refinement pruning cannot compromise soundness.
func (s *Symmetry) findAutomorphism(marksA []bool, target []network.NodeID, budget *int) ([]network.NodeID, bool) {
	marksB := make([]bool, s.n)
	for _, v := range target {
		marksB[v] = true
	}
	ca, cb := s.refinePair(marksA, marksB)
	if s.colorMultiset(ca, allNodes(s.n)) != s.colorMultiset(cb, allNodes(s.n)) {
		return nil, false
	}
	// Process marked sources first (ascending), then the rest by
	// (refined class size, color, id): rare classes bind early.
	classSize := map[int]int{}
	for _, c := range ca {
		classSize[c]++
	}
	var order []network.NodeID
	for i := 0; i < s.n; i++ {
		if marksA[i] {
			order = append(order, network.NodeID(i))
		}
	}
	var rest []network.NodeID
	for i := 0; i < s.n; i++ {
		if !marksA[i] {
			rest = append(rest, network.NodeID(i))
		}
	}
	sort.SliceStable(rest, func(i, j int) bool {
		a, b := rest[i], rest[j]
		if classSize[ca[a]] != classSize[ca[b]] {
			return classSize[ca[a]] < classSize[ca[b]]
		}
		if ca[a] != ca[b] {
			return ca[a] < ca[b]
		}
		return a < b
	})
	order = append(order, rest...)

	perm := make([]network.NodeID, s.n)
	used := make([]bool, s.n)
	for i := range perm {
		perm[i] = -1
	}
	mapped := make([]network.NodeID, 0, s.n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(order) {
			return true
		}
		v := order[i]
		for w := 0; w < s.n; w++ {
			*budget--
			if *budget <= 0 {
				return false
			}
			if used[w] || cb[w] != ca[v] {
				continue
			}
			ok := true
			for _, u := range mapped {
				if s.linkClass(v, u) != s.linkClass(network.NodeID(w), perm[u]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			perm[v] = network.NodeID(w)
			used[w] = true
			mapped = append(mapped, v)
			if rec(i + 1) {
				return true
			}
			mapped = mapped[:len(mapped)-1]
			used[w] = false
			perm[v] = -1
			if *budget <= 0 {
				return false
			}
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	return perm, true
}

func allNodes(n int) []network.NodeID {
	out := make([]network.NodeID, n)
	for i := range out {
		out[i] = network.NodeID(i)
	}
	return out
}

func isIdentity(perm []network.NodeID) bool {
	for i, v := range perm {
		if int(v) != i {
			return false
		}
	}
	return true
}

func invert(perm []network.NodeID) []network.NodeID {
	inv := make([]network.NodeID, len(perm))
	for i, v := range perm {
		inv[v] = network.NodeID(i)
	}
	return inv
}

// nextCombination advances a sorted k-combination over [0, n) to its
// lexicographic successor; false means the last combination was reached.
func nextCombination(c []network.NodeID, n int) bool {
	k := len(c)
	for i := k - 1; i >= 0; i-- {
		if int(c[i]) < n-(k-i) {
			c[i]++
			for j := i + 1; j < k; j++ {
				c[j] = c[j-1] + 1
			}
			return true
		}
	}
	return false
}

// less compares two sorted node slices lexicographically.
func less(a, b []network.NodeID) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
