package cache

import (
	"fmt"

	"btr/internal/network"
	"btr/internal/plan"
)

// EpochView couples an Engine with a membership epoch: a subset of the
// topology's node slots that are active. Planning-wise, a dormant slot
// is indistinguishable from a faulty node — no replica may be placed on
// it — so the view resolves every query through the engine with the
// epoch's excluded set folded into the fault set. This is what makes
// warm churn cheap: the effective sets of successive epochs differ by
// one or two nodes, so the engine's canonical-predecessor delta chain
// repairs the predecessor *epoch's* plan instead of synthesizing from
// scratch, and the shared content-addressed cache makes replaying a
// reconfiguration sequence (same workload, wiring, options) pure
// lookups.
//
// Like Engine.PlanFor, every view method is a pure function of its
// arguments — the cache only memoizes — so epoch plans are byte-
// identical whether reached by a churn sequence or planned directly for
// the final membership (pinned by TestEpochViewSequenceMatchesScratch).
type EpochView struct {
	eng      *Engine
	members  []network.NodeID
	excluded plan.FaultSet
}

// View returns the epoch view for the given active members (the
// remaining slots are excluded from placement). Members outside the
// topology's slot range panic: membership records are validated before
// planning ever sees them, so this is a programmer error.
func (e *Engine) View(members []network.NodeID) *EpochView {
	canon := plan.NewFaultSet(members...).Nodes()
	in := make(map[network.NodeID]bool, len(canon))
	for _, m := range canon {
		if int(m) < 0 || int(m) >= e.topo.N {
			panic(fmt.Sprintf("cache: member %d outside slot range [0,%d)", m, e.topo.N))
		}
		in[m] = true
	}
	var excl []network.NodeID
	for s := 0; s < e.topo.N; s++ {
		if !in[network.NodeID(s)] {
			excl = append(excl, network.NodeID(s))
		}
	}
	return &EpochView{
		eng:      e,
		members:  append([]network.NodeID(nil), canon...),
		excluded: plan.NewFaultSet(excl...),
	}
}

// Members returns the view's active members (shared slice; do not
// mutate).
func (v *EpochView) Members() []network.NodeID { return v.members }

// Excluded returns the dormant-slot set the view folds into every
// query.
func (v *EpochView) Excluded() plan.FaultSet { return v.excluded }

// effective unions a member fault set with the epoch's exclusions.
func (v *EpochView) effective(fs plan.FaultSet) plan.FaultSet {
	if fs.Len() == 0 {
		return v.excluded
	}
	return plan.NewFaultSet(append(append([]network.NodeID(nil),
		v.excluded.Nodes()...), fs.Nodes()...)...)
}

// PlanFor resolves the plan for a member fault set under this epoch's
// membership, synthesizing (and memoizing in the shared cache) if
// needed.
func (v *EpochView) PlanFor(fs plan.FaultSet) (*plan.Plan, error) {
	return v.eng.PlanFor(v.effective(fs))
}

// Resolve is the runtime-facing lookup for this epoch (see
// runtime.PlanSource): convictions of dormant slots are ignored (they
// are already excluded), member faults beyond F are trimmed — the
// guarantee is void there — and unschedulable sets fall back to the
// largest covered subset, exactly like Engine.Resolve.
func (v *EpochView) Resolve(fs plan.FaultSet) *plan.Plan {
	var mf []network.NodeID
	for _, n := range fs.Nodes() {
		if !v.excluded.Contains(n) {
			mf = append(mf, n)
		}
	}
	if len(mf) > v.eng.opts.F {
		mf = mf[:v.eng.opts.F]
		v.eng.resolveTrims.Add(1)
	}
	for {
		p, err := v.PlanFor(plan.NewFaultSet(mf...))
		if err == nil {
			return p
		}
		if len(mf) == 0 {
			return nil
		}
		mf = mf[:len(mf)-1]
		v.eng.resolveTrims.Add(1)
	}
}

// BuildStrategy assembles the epoch's offline strategy: one plan per
// member fault pattern up to F (keyed by the member fault set, so
// runtime fault handling is membership-agnostic), bounds derived from
// the member-induced subgraph. The drop-in, per-epoch equivalent of
// Engine.BuildStrategy.
func (v *EpochView) BuildStrategy() (*plan.Strategy, error) {
	if err := v.eng.base.Validate(); err != nil {
		return nil, fmt.Errorf("plan: invalid workload: %w", err)
	}
	if v.eng.opts.F < 0 {
		return nil, fmt.Errorf("plan: negative fault bound")
	}
	plans := map[string]*plan.Plan{}
	for _, fs := range plan.EnumerateFaultSetsOver(v.members, v.eng.opts.F) {
		p, err := v.PlanFor(fs)
		if err != nil {
			return nil, fmt.Errorf("plan: epoch mode %v over members %v: %w", fs, v.members, err)
		}
		plans[fs.Key()] = p
	}
	return plan.NewStrategyForMembers(v.eng.base, v.eng.topo, v.eng.opts,
		v.members, plans, v.transition), nil
}

// transition memoizes the member-restricted transition analysis in the
// engine's memo, qualified by membership so epochs never cross-read.
func (v *EpochView) transition(a, b *plan.Plan) plan.Transition {
	key := a.Key() + "|" + b.Key() + "|m:" + plan.NewFaultSet(v.members...).Key()
	e := v.eng
	e.transMu.Lock()
	tr, ok := e.trans[key]
	e.transMu.Unlock()
	if ok {
		return tr
	}
	tr = plan.TransitionWithin(a, b, e.topo, e.opts, v.members)
	e.transMu.Lock()
	e.trans[key] = tr
	e.transMu.Unlock()
	return tr
}
