package cache

import (
	"hash/fnv"
	"sync"

	"btr/internal/plan"
)

// shardCount is the fixed shard fan-out; a power of two so the FNV hash
// maps with a mask. 16 shards keep lock contention negligible for any
// realistic PlanFor concurrency while staying cheap to iterate for stats.
const shardCount = 16

// Cache is a sharded, concurrency-safe memo of solved plans, keyed by
// content-addressed strings (context fingerprint + canonical fault key —
// see Engine). There is no invalidation: a key pins everything the plan
// depends on (workload, topology, options, fault set), so entries can
// never go stale, and one Cache may safely back engines for many
// deployments at once. Stored plans are immutable by convention; callers
// must never mutate a returned plan.
type Cache struct {
	shards [shardCount]cacheShard
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]*plan.Plan
}

// New returns an empty cache.
func New() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = map[string]*plan.Plan{}
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()&(shardCount-1)]
}

// Get returns the plan stored under key, if any. Hit/miss accounting
// lives in the Engine (one hit or miss per *resolution*, not per tier
// probe — see Engine.Stats), so Get stays a pure lookup.
func (c *Cache) Get(key string) (*plan.Plan, bool) {
	s := c.shard(key)
	s.mu.RLock()
	p, ok := s.m[key]
	s.mu.RUnlock()
	return p, ok
}

// Put stores a plan under key. First write wins: plans are pure
// functions of their key, so a concurrent duplicate is identical and
// keeping the existing pointer preserves pointer-equality for callers
// that use it as an identity hint.
func (c *Cache) Put(key string, p *plan.Plan) {
	s := c.shard(key)
	s.mu.Lock()
	if _, exists := s.m[key]; !exists {
		s.m[key] = p
	}
	s.mu.Unlock()
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
