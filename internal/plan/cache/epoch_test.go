package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// epochFixture is the standard churn deployment: chain workload on an
// 8-slot full mesh, f=1.
func epochFixture() (*Engine, *network.Topology, plan.Options) {
	g := chainWorkload()
	topo := network.FullMesh(8, testBW, testProp)
	opts := plan.DefaultOptions(1, 500*sim.Millisecond)
	return NewEngine(g, topo, opts, nil), topo, opts
}

func TestEpochViewAllMembersMatchesEngine(t *testing.T) {
	eng, topo, _ := epochFixture()
	all := make([]network.NodeID, topo.N)
	for i := range all {
		all[i] = network.NodeID(i)
	}
	sv, err := eng.View(all).BuildStrategy()
	if err != nil {
		t.Fatalf("view strategy: %v", err)
	}
	se, err := eng.BuildStrategy()
	if err != nil {
		t.Fatalf("engine strategy: %v", err)
	}
	if renderStrategy(sv) != renderStrategy(se) {
		t.Fatal("all-member epoch view strategy differs from the plain engine strategy")
	}
}

// churnSequence derives a legal join/retire/replace sequence over an
// 8-slot universe from a random source, starting from members {0..5}
// and never dropping below 5 members (the mode must stay schedulable).
// It returns the membership after each of `steps` events.
func churnSequence(rng *rand.Rand, steps int) [][]network.NodeID {
	const slots = 8
	members := map[network.NodeID]bool{}
	for s := 0; s < 6; s++ {
		members[network.NodeID(s)] = true
	}
	var out [][]network.NodeID
	for step := 0; step < steps; step++ {
		var dormant, active []network.NodeID
		for s := 0; s < slots; s++ {
			if members[network.NodeID(s)] {
				active = append(active, network.NodeID(s))
			} else {
				dormant = append(dormant, network.NodeID(s))
			}
		}
		switch ev := rng.Intn(3); {
		case ev == 0 && len(dormant) > 0: // join
			members[dormant[rng.Intn(len(dormant))]] = true
		case ev == 1 && len(active) > 5: // retire
			delete(members, active[rng.Intn(len(active))])
		case ev == 2 && len(dormant) > 0 && len(active) > 4: // replace
			members[dormant[rng.Intn(len(dormant))]] = true
			delete(members, active[rng.Intn(len(active))])
		}
		var cur []network.NodeID
		for s := 0; s < slots; s++ {
			if members[network.NodeID(s)] {
				cur = append(cur, network.NodeID(s))
			}
		}
		out = append(out, cur)
	}
	return out
}

// TestEpochViewSequenceMatchesScratch is the reconfiguration soundness
// property (testing/quick): for any legal join/retire/replace sequence,
// every intermediate epoch's plans are byte-identical to planning that
// membership from scratch on a cold engine, and the per-epoch strategy
// stays feasible (the recovery bound holds) at every step. The shared-
// cache engine walks the sequence warm (delta-repaired from predecessor
// epochs); the reference engine starts cold per step.
func TestEpochViewSequenceMatchesScratch(t *testing.T) {
	g := chainWorkload()
	topo := network.FullMesh(8, testBW, testProp)
	opts := plan.DefaultOptions(1, 500*sim.Millisecond)
	shared := NewEngine(g, topo, opts, nil)

	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for step, cur := range churnSequence(rng, 4) {
			warm := shared.View(cur)
			scratch := NewEngine(g, topo, opts, nil).View(cur)
			wp, err := warm.PlanFor(plan.NewFaultSet())
			if err != nil {
				t.Errorf("seed %d step %d: warm plan: %v", seed, step, err)
				return false
			}
			sp, err := scratch.PlanFor(plan.NewFaultSet())
			if err != nil {
				t.Errorf("seed %d step %d: scratch plan: %v", seed, step, err)
				return false
			}
			if renderPlan(wp) != renderPlan(sp) {
				t.Errorf("seed %d step %d members %v: warm epoch plan differs from scratch:\nwarm:    %s\nscratch: %s",
					seed, step, cur, renderPlan(wp), renderPlan(sp))
				return false
			}
			ws, err := warm.BuildStrategy()
			if err != nil {
				t.Errorf("seed %d step %d: warm strategy: %v", seed, step, err)
				return false
			}
			ss, err := scratch.BuildStrategy()
			if err != nil {
				t.Errorf("seed %d step %d: scratch strategy: %v", seed, step, err)
				return false
			}
			if renderStrategy(ws) != renderStrategy(ss) {
				t.Errorf("seed %d step %d members %v: warm epoch strategy differs from scratch", seed, step, cur)
				return false
			}
			if !ws.RFeasible() {
				t.Errorf("seed %d step %d members %v: intermediate epoch infeasible: R needed %v > requested %v",
					seed, step, cur, ws.RNeeded, ws.Opts.R)
				return false
			}
		}
		return true
	}
	max := 5
	if testing.Short() {
		max = 2
	}
	if err := quick.Check(property, &quick.Config{MaxCount: max}); err != nil {
		t.Fatal(err)
	}
}

// TestEpochViewWarmChurnReplansNothing pins the warm-churn acceptance
// claim: replaying a reconfiguration sequence against an already-churned
// shared cache synthesizes zero new plans — every epoch resolves by
// exact or symmetry lookup.
func TestEpochViewWarmChurnReplansNothing(t *testing.T) {
	g := chainWorkload()
	topo := network.FullMesh(8, testBW, testProp)
	opts := plan.DefaultOptions(1, 500*sim.Millisecond)
	c := New()
	sequence := [][]network.NodeID{
		{0, 1, 2, 3, 4, 5},
		{0, 1, 2, 3, 4, 5, 6}, // join 6
		{0, 1, 2, 3, 4, 6},    // retire 5
		{0, 1, 2, 3, 4, 6, 7}, // join 7
		{0, 1, 2, 3, 4, 7},    // retire 6 (completing a replace)
	}
	churn := func() *Engine {
		eng := NewEngine(g, topo, opts, c)
		for _, members := range sequence {
			if _, err := eng.View(members).BuildStrategy(); err != nil {
				t.Fatalf("members %v: %v", members, err)
			}
		}
		return eng
	}
	cold := churn()
	if cold.Stats().Misses == 0 {
		t.Fatal("cold churn synthesized nothing; the warm assertion below would be vacuous")
	}
	warm := churn()
	if st := warm.Stats(); st.Misses != 0 {
		t.Fatalf("warm churn replay synthesized %d plan(s) (delta=%d full=%d); want pure lookups",
			st.Misses, st.DeltaBuilds, st.FullBuilds)
	}
}

// TestEpochViewResolveIgnoresDormantConvictions: convictions of dormant
// slots are already excluded and must not consume the F-trim budget.
func TestEpochViewResolveIgnoresDormantConvictions(t *testing.T) {
	eng, _, _ := epochFixture()
	v := eng.View([]network.NodeID{0, 1, 2, 3, 4, 5}) // 6,7 dormant
	base := v.Resolve(plan.NewFaultSet())
	if base == nil {
		t.Fatal("base resolve failed")
	}
	// Convicting dormant slot 6 changes nothing.
	if p := v.Resolve(plan.NewFaultSet(6)); p == nil || p.Key() != base.Key() {
		t.Fatalf("dormant conviction changed the plan: %v", p)
	}
	// A member conviction plus a dormant conviction resolves to the
	// member-fault plan (dormant one folded into the exclusions, member
	// one within the F=1 budget).
	want, err := v.PlanFor(plan.NewFaultSet(2))
	if err != nil {
		t.Fatal(err)
	}
	if p := v.Resolve(plan.NewFaultSet(2, 6)); p == nil || p.Key() != want.Key() {
		t.Fatalf("member+dormant conviction resolved to %v, want %v", p.Key(), want.Key())
	}
}
