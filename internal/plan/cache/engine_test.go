package cache

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

func chainWorkload() *flow.Graph {
	return flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
}

// largestC2 mirrors the largest topology in the C2 scaling family
// (internal/exp): full mesh, 12 nodes, f=2 — 79 fault sets, 3 orbits.
func largestC2() (*flow.Graph, *network.Topology, plan.Options) {
	return chainWorkload(),
		network.FullMesh(12, testBW, testProp),
		plan.DefaultOptions(2, 500*sim.Millisecond)
}

// renderStrategy renders every plan table of a strategy fully and
// deterministically: plans in key order, slots in node order, messages
// in edge order, plus transitions and derived bounds. Byte equality of
// two renderings means the strategies are operationally identical.
func renderStrategy(s *plan.Strategy) string {
	var b strings.Builder
	keys := make([]string, 0, len(s.Plans))
	for k := range s.Plans {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "bounds detect=%v distribute=%v switch=%v delta=%v rneeded=%v\n",
		s.DetectBound, s.DistributeBound, s.SwitchBound, s.Delta, s.RNeeded)
	for _, k := range keys {
		p := s.Plans[k]
		fmt.Fprintf(&b, "plan %q shed=%v\n", k, p.ShedSinks)
		ids := p.Aug.TaskIDs()
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			fmt.Fprintf(&b, "  task %s node=%d ready=%v finish=%v\n",
				id, p.Assign[id], p.Table.Ready[id], p.Table.Finish[id])
		}
		var nodes []network.NodeID
		for n := range p.Table.Slots {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, n := range nodes {
			fmt.Fprintf(&b, "  node %d:", n)
			for _, sl := range p.Table.Slots[n] {
				fmt.Fprintf(&b, " %s[%v,%v)", sl.Task, sl.Start, sl.End)
			}
			fmt.Fprintln(&b)
		}
		var edges []flow.Edge
		for e := range p.Table.Msgs {
			edges = append(edges, e)
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		for _, e := range edges {
			w := p.Table.Msgs[e]
			fmt.Fprintf(&b, "  msg %s->%s %d->%d depart=%v arrive=%v\n",
				e.From, e.To, w.From, w.To, w.Depart, w.Arrive)
		}
		if tr, ok := s.Trans[k]; ok {
			fmt.Fprintf(&b, "  trans from=%q moved=%v state=%d bound=%v\n",
				tr.From, tr.Moved, tr.StateBytes, tr.Bound)
		}
	}
	return b.String()
}

// TestEngineWarmColdByteIdentical pins the acceptance criterion: the
// plan tables a warm cache returns are byte-identical to the ones the
// cold synthesis that populated it produced, and to a fresh engine with
// an empty cache. Caching memoizes, never alters.
func TestEngineWarmColdByteIdentical(t *testing.T) {
	g, topo, opts := largestC2()
	eng := NewEngine(g, topo, opts, nil)
	cold, err := eng.BuildStrategy()
	if err != nil {
		t.Fatalf("cold build: %v", err)
	}
	warm, err := eng.BuildStrategy()
	if err != nil {
		t.Fatalf("warm build: %v", err)
	}
	fresh, err := NewEngine(g, topo, opts, nil).BuildStrategy()
	if err != nil {
		t.Fatalf("fresh build: %v", err)
	}
	rc, rw, rf := renderStrategy(cold), renderStrategy(warm), renderStrategy(fresh)
	if rc != rw {
		t.Errorf("warm strategy differs from the cold build that populated the cache")
	}
	if rc != rf {
		t.Errorf("cold engine output differs across engine instances")
	}
	st := eng.Stats()
	if st.SymmetryHits == 0 {
		t.Errorf("expected symmetry hits on a full mesh, got %+v", st)
	}
	if st.FullBuilds+st.DeltaBuilds >= uint64(len(cold.Plans)) {
		t.Errorf("engine synthesized %d+%d plans for %d fault sets; symmetry reduction ineffective",
			st.FullBuilds, st.DeltaBuilds, len(cold.Plans))
	}
}

// TestEngineEquivalentToBuild compares the engine against plain
// plan.Build on several deployments: same feasibility, same plan count,
// same shed sets, and every engine plan passes the full validity checks
// (anti-affinity, schedule sanity, actuation deadlines).
func TestEngineEquivalentToBuild(t *testing.T) {
	cases := []struct {
		name string
		topo *network.Topology
		f    int
	}{
		{"mesh6-f1", network.FullMesh(6, testBW, testProp), 1},
		{"mesh8-f2", network.FullMesh(8, testBW, testProp), 2},
		{"ring8-f1", network.Ring(8, testBW, testProp), 1},
		{"dualbus6-f1", network.DualBus(6, testBW, testProp), 1},
		{"grid3x3-f1", network.Grid(3, 3, testBW, testProp), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := chainWorkload()
			opts := plan.DefaultOptions(tc.f, 500*sim.Millisecond)
			ref, refErr := plan.Build(g, tc.topo, opts)
			s, err := NewEngine(g, tc.topo, opts, nil).BuildStrategy()
			if (refErr == nil) != (err == nil) {
				t.Fatalf("feasibility differs: Build=%v engine=%v", refErr, err)
			}
			if refErr != nil {
				return
			}
			if len(s.Plans) != len(ref.Plans) {
				t.Fatalf("plan count %d != %d", len(s.Plans), len(ref.Plans))
			}
			for k, p := range s.Plans {
				rp := ref.Plans[k]
				if rp == nil {
					t.Fatalf("engine plan %q missing from Build", k)
				}
				if fmt.Sprint(p.ShedSinks) != fmt.Sprint(rp.ShedSinks) {
					t.Errorf("plan %q shed %v != %v", k, p.ShedSinks, rp.ShedSinks)
				}
				if err := plan.VerifyAssignment(p.Aug, p.Assign, p.Faults); err != nil {
					t.Errorf("plan %q: %v", k, err)
				}
				if err := p.Table.VerifySanity(p.Aug); err != nil {
					t.Errorf("plan %q: %v", k, err)
				}
				for _, sink := range p.Pruned.Sinks() {
					dl := p.Pruned.Tasks[sink].Deadline
					for _, id := range p.Aug.TaskIDs() {
						if logical, _ := plan.SplitReplica(id); logical != sink {
							continue
						}
						if f := p.Table.Finish[id]; f > dl {
							t.Errorf("plan %q: replica %q misses actuation deadline (%v > %v)", k, id, f, dl)
						}
					}
				}
			}
		})
	}
}

// TestEngineConcurrentPlanFor hammers one shared engine from many
// goroutines (run under -race in CI) and checks every goroutine
// resolves every fault set to the same rendered plan as a serial
// reference — plan resolution is a pure function, so scheduling must
// not matter.
func TestEngineConcurrentPlanFor(t *testing.T) {
	g, topo, opts := largestC2()
	refEng := NewEngine(g, topo, opts, nil)
	sets := plan.EnumerateFaultSets(topo.N, opts.F)
	ref := make(map[string]string, len(sets))
	for _, fs := range sets {
		p, err := refEng.PlanFor(fs)
		if err != nil {
			t.Fatalf("reference plan %v: %v", fs, err)
		}
		ref[fs.Key()] = renderPlan(p)
	}

	eng := NewEngine(g, topo, opts, nil)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			order := sim.NewRNG(uint64(w)).Perm(len(sets))
			for _, i := range order {
				fs := sets[i]
				p, err := eng.PlanFor(fs)
				if err != nil {
					errs <- fmt.Errorf("worker %d: plan %v: %v", w, fs, err)
					return
				}
				if got := renderPlan(p); got != ref[fs.Key()] {
					errs <- fmt.Errorf("worker %d: plan %v differs from serial reference", w, fs)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func renderPlan(p *plan.Plan) string {
	var b strings.Builder
	ids := p.Aug.TaskIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(&b, "%s@%d f=%v;", id, p.Assign[id], p.Table.Finish[id])
	}
	fmt.Fprintf(&b, "shed=%v", p.ShedSinks)
	return b.String()
}

// TestDeltaPlanStickiness: a delta repair moves only the replicas the
// new fault displaces — every replica whose node stays healthy keeps it.
func TestDeltaPlanStickiness(t *testing.T) {
	g, topo, opts := largestC2()
	syn := plan.NewSynth(g, topo, opts)
	base, err := syn.BuildPlan(plan.NewFaultSet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < topo.N; n++ {
		fs := plan.NewFaultSet(network.NodeID(n))
		p, err := syn.DeltaPlan(base, fs)
		if err != nil {
			t.Fatalf("delta %v: %v", fs, err)
		}
		if err := plan.VerifyAssignment(p.Aug, p.Assign, fs); err != nil {
			t.Fatalf("delta %v: %v", fs, err)
		}
		for id, prev := range base.Assign {
			if fs.Contains(prev) {
				continue
			}
			if got := p.Assign[id]; got != prev {
				t.Errorf("delta %v: replica %q moved %d -> %d without displacement", fs, id, prev, got)
			}
		}
	}
}

// TestWarmCacheSpeedup pins the headline acceptance criterion: on the
// largest C2 topology, resolving the full fault-set lattice from a warm
// cache is at least 5x faster than cold full synthesis (plan.Build).
// The real margin is orders of magnitude; 5x keeps the pin robust on
// loaded CI machines.
func TestWarmCacheSpeedup(t *testing.T) {
	g, topo, opts := largestC2()

	cold := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := plan.Build(g, topo, opts); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < cold {
			cold = d
		}
	}

	eng := NewEngine(g, topo, opts, nil)
	if _, err := eng.Precompute(); err != nil {
		t.Fatal(err)
	}
	warm := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := eng.BuildStrategy(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < warm {
			warm = d
		}
	}
	t.Logf("cold full synthesis: %v, warm cache: %v (%.1fx)", cold, warm, float64(cold)/float64(warm))
	if cold < 5*warm {
		t.Errorf("warm cache not >=5x faster: cold %v vs warm %v", cold, warm)
	}
}

// TestResolveBoundedFallback: fault sets beyond F resolve to the
// largest covered subset instead of failing — the runtime must always
// get a plan.
func TestResolveBoundedFallback(t *testing.T) {
	g := chainWorkload()
	topo := network.FullMesh(6, testBW, testProp)
	eng := NewEngine(g, topo, plan.DefaultOptions(1, 500*sim.Millisecond), nil)
	p := eng.Resolve(plan.NewFaultSet(0, 1, 2))
	if p == nil {
		t.Fatal("Resolve returned nil for an over-F fault set")
	}
	if p.Faults.Len() != 1 {
		t.Errorf("expected fallback to a 1-fault plan, got %v", p.Faults)
	}
	if eng.Stats().ResolveTrims == 0 {
		t.Errorf("expected resolve fallbacks to be counted")
	}
}
