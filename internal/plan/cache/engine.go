package cache

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
)

// Engine is the incremental recovery-plan engine for one deployment
// (workload × topology × options). PlanFor resolves the plan for a fault
// set through three tiers, cheapest first:
//
//  1. exact cache hit — the fault set was solved before;
//  2. symmetry hit — a fault set in the same topology-automorphism orbit
//     was solved before; the cached canonical plan is relabeled through
//     the inverse automorphism (timing-identical, see plan.Plan.Relabel);
//  3. synthesis — the canonical representative is delta-planned from its
//     canonical predecessor's plan (plan.Synth.DeltaPlan), falling back
//     to full synthesis when no predecessor plan exists or the repair
//     cannot schedule.
//
// PlanFor is a pure function of the fault set: the cache only memoizes,
// so a warm engine returns byte-identical plans to a cold one (pinned by
// TestEngineWarmColdByteIdentical). Engines are safe for concurrent use:
// lookups are lock-free reads on the sharded cache, synthesis is
// serialized on an internal mutex.
type Engine struct {
	base *flow.Graph
	topo *network.Topology
	opts plan.Options

	cache *Cache
	sym   *Symmetry
	fp    string

	mu  sync.Mutex // serializes synthesis (plan.Synth is single-threaded)
	syn *plan.Synth

	transMu sync.Mutex
	trans   map[string]plan.Transition // memoized per (from,to) plan pair

	// Resolution-level counters: every PlanFor resolves to exactly one
	// of exactHits / symHits / misses (misses = resolutions that had to
	// synthesize, including recursive predecessor resolutions).
	exactHits    atomic.Uint64
	symHits      atomic.Uint64
	misses       atomic.Uint64
	deltaBuilds  atomic.Uint64
	fullBuilds   atomic.Uint64
	canonExact   atomic.Uint64
	resolveTrims atomic.Uint64
}

// NewEngine builds an engine backed by the given cache; a nil cache gets
// a private one. The cache may be shared across engines (and across
// deployments): keys embed a fingerprint of everything a plan depends
// on, so entries are never stale and never collide.
func NewEngine(base *flow.Graph, topo *network.Topology, opts plan.Options, c *Cache) *Engine {
	if c == nil {
		c = New()
	}
	opts = opts.Normalized()
	return &Engine{
		base:  base,
		topo:  topo,
		opts:  opts,
		cache: c,
		sym:   NewSymmetry(topo),
		fp:    fingerprint(base, topo, opts),
		syn:   plan.NewSynth(base, topo, opts),
		trans: map[string]plan.Transition{},
	}
}

// fingerprint hashes the full planning context. Two engines share cache
// entries iff workload, topology (including link attributes), and
// normalized options all coincide.
func fingerprint(base *flow.Graph, topo *network.Topology, opts plan.Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "w:%s/%d;", base.Name, int64(base.Period))
	for _, id := range base.TaskIDs() {
		fmt.Fprintf(h, "t:%+v;", *base.Tasks[id])
		for _, e := range base.Outputs(id) {
			fmt.Fprintf(h, "e:%s>%s/%d;", e.From, e.To, e.Bytes)
		}
	}
	fmt.Fprintf(h, "n:%d;", topo.N)
	for _, l := range topo.Links {
		fmt.Fprintf(h, "l:%d-%d/%d/%d;", l.A, l.B, l.Bandwidth, int64(l.Prop))
	}
	fmt.Fprintf(h, "o:%+v", opts)
	return fmt.Sprintf("%016x", h.Sum64())
}

func (e *Engine) exactKey(fs plan.FaultSet) string { return e.fp + "|x|" + fs.Key() }
func (e *Engine) canonKey(c Canon) string          { return e.fp + "|" + c.Key }

// PlanFor returns the plan for the given fault set, synthesizing (and
// memoizing) it if needed. The error mirrors plan.Build's: a fault set
// whose every shedding level is unschedulable is reported, not masked.
func (e *Engine) PlanFor(fs plan.FaultSet) (*plan.Plan, error) {
	if p, ok := e.lookup(fs); ok {
		return p, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.synthesize(fs)
}

// lookup tries the exact and symmetry cache tiers.
func (e *Engine) lookup(fs plan.FaultSet) (*plan.Plan, bool) {
	if p, ok := e.cache.Get(e.exactKey(fs)); ok {
		e.exactHits.Add(1)
		return p, true
	}
	c := e.sym.Canonicalize(fs)
	rep, ok := e.cache.Get(e.canonKey(c))
	if !ok {
		return nil, false
	}
	e.symHits.Add(1)
	p := rep
	if c.FromRep != nil {
		p = rep.Relabel(c.FromRep)
	}
	// Promote to the exact tier so the relabeling runs once per fault
	// set, not once per query.
	e.cache.Put(e.exactKey(fs), p)
	return p, true
}

// synthesize computes the plan for fs via its canonical representative.
// Caller holds e.mu. The function is pure in fs — the cache only
// memoizes intermediate results — which is what makes warm and cold
// engines byte-identical.
func (e *Engine) synthesize(fs plan.FaultSet) (*plan.Plan, error) {
	if p, ok := e.lookup(fs); ok {
		return p, nil
	}
	e.misses.Add(1)
	c := e.sym.Canonicalize(fs)
	if c.Exact {
		e.canonExact.Add(1)
	}
	rep, err := e.synthesizeRep(c.Rep)
	if err != nil {
		return nil, err
	}
	e.cache.Put(e.canonKey(c), rep)
	p := rep
	if c.FromRep != nil {
		p = rep.Relabel(c.FromRep)
	}
	e.cache.Put(e.exactKey(fs), p)
	return p, nil
}

// synthesizeRep builds the canonical representative's plan: delta-
// repaired from the canonical predecessor's plan under MinimalDiff
// (recursing through the cache, so the chain is shared across the whole
// orbit lattice), full synthesis otherwise or when the predecessor
// itself is unschedulable.
func (e *Engine) synthesizeRep(rep plan.FaultSet) (*plan.Plan, error) {
	if rep.Len() > 0 && e.opts.MinimalDiff {
		preds := rep.Predecessors()
		pred := preds[len(preds)-1]
		if prior, err := e.synthesize(pred); err == nil {
			e.deltaBuilds.Add(1)
			return e.syn.DeltaPlan(prior, rep)
		}
	}
	e.fullBuilds.Add(1)
	return e.syn.BuildPlan(rep, nil)
}

// Resolve is the runtime-facing lookup (see runtime.PlanSource): it
// consults the cache/engine and applies the same bounded fallback as
// Strategy.PlanFor — a fault set beyond F (the guarantee is void there)
// or an unschedulable one falls back to the largest covered subset, so
// the node always gets *some* valid plan within at most F+1 synthesis
// attempts. Returns nil only if even the empty fault set is
// unschedulable, which a deployed system has already ruled out.
func (e *Engine) Resolve(fs plan.FaultSet) *plan.Plan {
	nodes := fs.Nodes()
	if len(nodes) > e.opts.F {
		nodes = nodes[:e.opts.F]
		e.resolveTrims.Add(1)
	}
	for {
		p, err := e.PlanFor(plan.NewFaultSet(nodes...))
		if err == nil {
			return p
		}
		if len(nodes) == 0 {
			return nil
		}
		nodes = nodes[:len(nodes)-1]
		e.resolveTrims.Add(1)
	}
}

// BuildStrategy assembles the full offline strategy through the cache:
// the drop-in, incremental equivalent of plan.Build. A cold call
// populates the cache (one synthesis per symmetry orbit instead of one
// per fault set); a warm call is pure lookups.
func (e *Engine) BuildStrategy() (*plan.Strategy, error) {
	if err := e.base.Validate(); err != nil {
		return nil, fmt.Errorf("plan: invalid workload: %w", err)
	}
	if e.opts.F < 0 {
		return nil, fmt.Errorf("plan: negative fault bound")
	}
	plans := map[string]*plan.Plan{}
	for _, fs := range plan.EnumerateFaultSets(e.topo.N, e.opts.F) {
		p, err := e.PlanFor(fs)
		if err != nil {
			return nil, fmt.Errorf("plan: mode %v: %w", fs, err)
		}
		plans[fs.Key()] = p
	}
	return plan.NewStrategyFromPlans(e.base, e.topo, e.opts, plans, e.transition), nil
}

// transition memoizes the transition analysis per (from, to) plan pair.
// Transitions are pure functions of the two plans, so the memo — like
// the plan cache — can only reproduce, never alter, the cold result.
func (e *Engine) transition(a, b *plan.Plan) plan.Transition {
	key := a.Key() + "|" + b.Key()
	e.transMu.Lock()
	tr, ok := e.trans[key]
	e.transMu.Unlock()
	if ok {
		return tr
	}
	tr = plan.TransitionBetween(a, b, e.topo, e.opts)
	e.transMu.Lock()
	e.trans[key] = tr
	e.transMu.Unlock()
	return tr
}

// Precompute warms the cache with every fault set up to F and returns
// how many fault sets are now resolvable without synthesis.
func (e *Engine) Precompute() (int, error) {
	sets := plan.EnumerateFaultSets(e.topo.N, e.opts.F)
	for _, fs := range sets {
		if _, err := e.PlanFor(fs); err != nil {
			return 0, fmt.Errorf("plan: mode %v: %w", fs, err)
		}
	}
	return len(sets), nil
}

// Stats is a point-in-time snapshot of the engine's counters. Every
// resolved fault set counts exactly once: as an exact hit, a symmetry
// hit (relabel of a cached orbit representative), or a miss (had to
// synthesize — delta_builds + full_builds says how).
type Stats struct {
	Entries      int    `json:"entries"`
	ExactHits    uint64 `json:"exact_hits"`
	SymmetryHits uint64 `json:"symmetry_hits"`
	Misses       uint64 `json:"misses"`
	DeltaBuilds  uint64 `json:"delta_builds"`
	FullBuilds   uint64 `json:"full_builds"`
	CanonExact   uint64 `json:"canon_budget_fallbacks"`
	ResolveTrims uint64 `json:"resolve_fallbacks"`
}

// Stats returns the current counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Entries:      e.cache.Len(),
		ExactHits:    e.exactHits.Load(),
		SymmetryHits: e.symHits.Load(),
		Misses:       e.misses.Load(),
		DeltaBuilds:  e.deltaBuilds.Load(),
		FullBuilds:   e.fullBuilds.Load(),
		CanonExact:   e.canonExact.Load(),
		ResolveTrims: e.resolveTrims.Load(),
	}
}
