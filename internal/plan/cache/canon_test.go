package cache

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

const (
	testBW   = 20_000_000
	testProp = 50 * sim.Microsecond
)

// orbitKeys canonicalizes every fault set of size <= f and returns the
// distinct canonical keys, sorted.
func orbitKeys(t *testing.T, topo *network.Topology, f int) []string {
	t.Helper()
	sym := NewSymmetry(topo)
	seen := map[string]bool{}
	for _, fs := range plan.EnumerateFaultSets(topo.N, f) {
		c := sym.Canonicalize(fs)
		if c.Exact {
			t.Fatalf("budget fallback for %v on %d-node topology", fs, topo.N)
		}
		seen[c.Key] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestCanonicalOrbitsKnownFamilies(t *testing.T) {
	cases := []struct {
		name string
		topo *network.Topology
		f    int
		want []string
	}{
		// Full mesh: every node equivalent, every pair equivalent.
		{"mesh6-f2", network.FullMesh(6, testBW, testProp), 2,
			[]string{"c:", "c:0", "c:0,1"}},
		// Star: the hub is its own orbit; spokes are interchangeable.
		{"star5-f2", network.Star(5, testBW, testProp), 2,
			[]string{"c:", "c:0", "c:0,1", "c:1", "c:1,2"}},
		// Ring: rotations + reflections; pair orbits are indexed by hop
		// distance 1..n/2.
		{"ring8-f2", network.Ring(8, testBW, testProp), 2,
			[]string{"c:", "c:0", "c:0,1", "c:0,2", "c:0,3", "c:0,4"}},
		// 3x3 grid: corners, edge-midpoints, center.
		{"grid3x3-f1", network.Grid(3, 3, testBW, testProp), 1,
			[]string{"c:", "c:0", "c:1", "c:4"}},
		// Dual bus: the two guardians are symmetric, the leaves are.
		{"dualbus6-f1", network.DualBus(6, testBW, testProp), 1,
			[]string{"c:", "c:0", "c:2"}},
	}
	for _, tc := range cases {
		got := orbitKeys(t, tc.topo, tc.f)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("%s: orbits = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestCanonicalizeLinkAttributesBreakSymmetry: nodes that are
// graph-symmetric but sit on links with different attributes must not
// share an orbit — a relabeled plan would otherwise have wrong timing.
func TestCanonicalizeLinkAttributesBreakSymmetry(t *testing.T) {
	// A 4-ring where one link is slower: the reflection symmetry across
	// that link survives, full rotation does not.
	topo := network.NewTopology(4, []network.Link{
		{A: 0, B: 1, Bandwidth: testBW / 2, Prop: testProp},
		{A: 1, B: 2, Bandwidth: testBW, Prop: testProp},
		{A: 2, B: 3, Bandwidth: testBW, Prop: testProp},
		{A: 3, B: 0, Bandwidth: testBW, Prop: testProp},
	})
	sym := NewSymmetry(topo)
	// 0 and 1 touch the slow link, 2 and 3 do not.
	k0 := sym.Canonicalize(plan.NewFaultSet(0)).Key
	k1 := sym.Canonicalize(plan.NewFaultSet(1)).Key
	k2 := sym.Canonicalize(plan.NewFaultSet(2)).Key
	k3 := sym.Canonicalize(plan.NewFaultSet(3)).Key
	if k0 != k1 || k2 != k3 {
		t.Errorf("reflection orbits broken: %s %s %s %s", k0, k1, k2, k3)
	}
	if k0 == k2 {
		t.Errorf("slow-link endpoints share an orbit with fast-link nodes: %s", k0)
	}
}

// verifyAutomorphism checks, edge by edge over all node pairs, that perm
// preserves adjacency and link attributes — the independent re-check of
// what findAutomorphism claims.
func verifyAutomorphism(t *testing.T, topo *network.Topology, perm []network.NodeID) {
	t.Helper()
	seen := make([]bool, topo.N)
	for _, v := range perm {
		if int(v) < 0 || int(v) >= topo.N || seen[v] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[v] = true
	}
	for a := 0; a < topo.N; a++ {
		for b := a + 1; b < topo.N; b++ {
			la, oka := topo.LinkBetween(network.NodeID(a), network.NodeID(b))
			lb, okb := topo.LinkBetween(perm[a], perm[b])
			if oka != okb {
				t.Fatalf("perm %v does not preserve adjacency at (%d,%d)", perm, a, b)
			}
			if oka && (la.Bandwidth != lb.Bandwidth || la.Prop != lb.Prop) {
				t.Fatalf("perm %v does not preserve link attributes at (%d,%d)", perm, a, b)
			}
		}
	}
}

// quickTopology derives a deterministic topology from a seed, spanning
// the generator families plus random connected graphs.
func quickTopology(seed uint64) *network.Topology {
	rng := sim.NewRNG(seed)
	n := 4 + rng.Intn(6) // 4..9
	switch rng.Intn(6) {
	case 0:
		return network.FullMesh(n, testBW, testProp)
	case 1:
		return network.Ring(maxInt(n, 3), testBW, testProp)
	case 2:
		return network.Star(n, testBW, testProp)
	case 3:
		return network.DualBus(maxInt(n, 3), testBW, testProp)
	case 4:
		return network.Grid(2+rng.Intn(2), 2+rng.Intn(2), testBW, testProp)
	default:
		return network.RandomConnected(rng, n, 0.3, testBW, testProp)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestQuickCanonicalizationSound is the property test: for random
// topologies and random fault-set pairs, (a) every returned automorphism
// verifies independently, (b) canonicalization is idempotent and
// minimal, and (c) any two fault sets with the same canonical key yield
// engine plans with identical recovery-time bounds — same makespan, same
// sorted finish-offset profile, same shed set, same peak utilization.
func TestQuickCanonicalizationSound(t *testing.T) {
	check := func(seed uint64) bool {
		topo := quickTopology(seed)
		rng := sim.NewRNG(seed ^ 0x9e3779b97f4a7c15)
		sym := NewSymmetry(topo)
		k := 1 + rng.Intn(2)
		pick := func() plan.FaultSet {
			var nodes []network.NodeID
			for _, i := range rng.Perm(topo.N)[:k] {
				nodes = append(nodes, network.NodeID(i))
			}
			return plan.NewFaultSet(nodes...)
		}
		fs1, fs2 := pick(), pick()
		c1, c2 := sym.Canonicalize(fs1), sym.Canonicalize(fs2)
		for _, pair := range []struct {
			fs plan.FaultSet
			c  Canon
		}{{fs1, c1}, {fs2, c2}} {
			if pair.c.Exact {
				continue // budget fallback: no symmetry claim made
			}
			if pair.c.FromRep != nil {
				verifyAutomorphism(t, topo, pair.c.FromRep)
			}
			if less(pair.fs.Nodes(), pair.c.Rep.Nodes()) {
				t.Errorf("rep %v not minimal for %v", pair.c.Rep, pair.fs)
			}
			again := sym.Canonicalize(pair.c.Rep)
			if again.Key != pair.c.Key || again.FromRep != nil {
				t.Errorf("canonicalize not idempotent: %v -> %v -> %v", pair.c.Rep, pair.c.Key, again.Key)
			}
		}
		if c1.Key != c2.Key || c1.Exact || c2.Exact {
			return true
		}
		// Same orbit: engine plans must be timing-identical.
		g := flow.Chain(3, 25*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
		eng := NewEngine(g, topo, plan.DefaultOptions(k, 500*sim.Millisecond), nil)
		p1, err1 := eng.PlanFor(fs1)
		p2, err2 := eng.PlanFor(fs2)
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("seed %d: feasibility differs within orbit %s: %v vs %v", seed, c1.Key, err1, err2)
			return false
		}
		if err1 != nil {
			return true // both unschedulable: equal bounds, vacuously
		}
		if !p1.Faults.Equal(fs1) || !p2.Faults.Equal(fs2) {
			t.Errorf("seed %d: plan fault sets mismatch", seed)
		}
		if err := plan.VerifyAssignment(p1.Aug, p1.Assign, fs1); err != nil {
			t.Errorf("seed %d: plan for %v invalid: %v", seed, fs1, err)
		}
		if err := plan.VerifyAssignment(p2.Aug, p2.Assign, fs2); err != nil {
			t.Errorf("seed %d: plan for %v invalid: %v", seed, fs2, err)
		}
		if err := p2.Table.VerifySanity(p2.Aug); err != nil {
			t.Errorf("seed %d: relabeled table unsound: %v", seed, err)
		}
		if a, b := boundsProfile(p1), boundsProfile(p2); a != b {
			t.Errorf("seed %d: bounds differ within orbit %s:\n%s\nvs\n%s", seed, c1.Key, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// boundsProfile renders everything recovery-time-relevant about a plan:
// schedule makespan, the sorted finish-offset profile, shed sinks, and
// peak node utilization.
func boundsProfile(p *plan.Plan) string {
	finishes := make([]sim.Time, 0, len(p.Table.Finish))
	for _, f := range p.Table.Finish {
		finishes = append(finishes, f)
	}
	sort.Slice(finishes, func(i, j int) bool { return finishes[i] < finishes[j] })
	_, maxU := p.Table.MaxUtilization()
	return fmt.Sprintf("makespan=%v finishes=%v shed=%v maxU=%.6f",
		p.Table.Makespan(), finishes, p.ShedSinks, maxU)
}
