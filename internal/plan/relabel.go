package plan

import (
	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/sched"
)

// Relabel returns the plan's image under a node permutation
// (perm[old] = new). When perm is an automorphism of the deployment
// topology (adjacency- and link-attribute-preserving), the result is a
// valid plan for the permuted fault set with timing behavior identical
// to the original: every execution slot, message window, and finish
// offset is preserved — only the node labels change. This is what makes
// symmetry-keyed plan caching sound (see internal/plan/cache): the plan
// for a fault set is the relabeled plan of its canonical representative.
//
// The receiver is not mutated. Task-keyed tables (Finish, Ready) and the
// dataflow graphs are shared with the original, node-keyed tables are
// copied; plans are immutable by convention, so sharing is safe.
func (p *Plan) Relabel(perm []network.NodeID) *Plan {
	faults := make([]network.NodeID, 0, p.Faults.Len())
	for _, n := range p.Faults.Nodes() {
		faults = append(faults, perm[n])
	}
	asn := make(Assignment, len(p.Assign))
	for id, n := range p.Assign {
		asn[id] = perm[n]
	}
	slots := make(map[network.NodeID][]sched.Slot, len(p.Table.Slots))
	for n, sl := range p.Table.Slots {
		slots[perm[n]] = sl
	}
	msgs := make(map[flow.Edge]sched.MsgWindow, len(p.Table.Msgs))
	for e, w := range p.Table.Msgs {
		w.From = perm[w.From]
		w.To = perm[w.To]
		msgs[e] = w
	}
	return &Plan{
		Faults: NewFaultSet(faults...),
		Pruned: p.Pruned,
		Aug:    p.Aug,
		Assign: asn,
		Table: &sched.Table{
			Period: p.Table.Period,
			Slots:  slots,
			Msgs:   msgs,
			Finish: p.Table.Finish,
			Ready:  p.Table.Ready,
		},
		ShedSinks: p.ShedSinks,
	}
}
