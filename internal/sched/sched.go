// Package sched builds static, table-driven schedules — the "detailed
// schedules for different scenarios" every BTR plan needs (§3.1). Given a
// (possibly replica-augmented) dataflow graph, a task→node assignment, and
// a topology, it produces a time-triggered table: per-node execution slots
// and per-edge message transmission windows within one period, with all
// contention (CPU and link) resolved offline. This mirrors the
// time-triggered architectures common in CPS (§5, Mars/TTA).
//
// The model charges cryptographic work to the tasks that perform it
// ("these tasks all consume resources at runtime and must therefore be
// scheduled together with the workload tasks — there are no 'extra
// resources' for BTR", §4.1): each output edge costs one signature, each
// input edge one verification.
package sched

import (
	"fmt"
	"sort"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/sim"
)

// Params tunes schedule construction.
type Params struct {
	// Speed is the CPU speed factor: execution time = work / Speed.
	// E3 sweeps this to find the minimum clock frequency per protocol.
	Speed float64
	// SignCost / VerifyCost are per-message crypto charges (at Speed 1).
	SignCost   sim.Time
	VerifyCost sim.Time
	// Class is the traffic class dataflow messages use.
	Class network.Class
	// EvidenceShare mirrors the network config so link windows are
	// computed against the correct foreground capacity.
	EvidenceShare float64
}

// DefaultParams uses nominal speed and the default crypto cost model.
func DefaultParams() Params {
	return Params{
		Speed:         1.0,
		SignCost:      200 * sim.Microsecond,
		VerifyCost:    400 * sim.Microsecond,
		Class:         network.ClassForeground,
		EvidenceShare: 0.2,
	}
}

// Slot is one contiguous execution window for a task on its node.
type Slot struct {
	Task       flow.TaskID
	Start, End sim.Time // offsets within the period
}

// MsgWindow is the planned transmission of one edge instance, one hop at a
// time. Multi-hop routes produce one window per hop; Depart/Arrive are
// offsets within the period of the first (source) end.
type MsgWindow struct {
	Edge     flow.Edge
	From, To network.NodeID // endpoints of the whole route
	Depart   sim.Time       // when the producer hands the message to the NIC
	Arrive   sim.Time       // when the consumer's node receives it
	Hops     int
}

// Table is a complete static schedule for one period.
type Table struct {
	Period sim.Time
	// Slots maps each node to its execution slots, sorted by start.
	Slots map[network.NodeID][]Slot
	// Msgs holds one window per inter-node edge, keyed by edge identity.
	Msgs map[flow.Edge]MsgWindow
	// Finish is each task's completion offset.
	Finish map[flow.TaskID]sim.Time
	// Ready is each task's input-availability offset.
	Ready map[flow.TaskID]sim.Time
}

// UnschedulableError reports why no feasible table exists.
type UnschedulableError struct{ Reason string }

func (e *UnschedulableError) Error() string { return "sched: unschedulable: " + e.Reason }

// intervalSet tracks reserved [start,end) intervals, sorted, for gap
// finding on CPUs and directed links.
type intervalSet struct {
	iv []Slot // Task field unused for links
}

// earliestGap returns the earliest start >= from such that [start,
// start+dur) does not overlap any reserved interval.
func (s *intervalSet) earliestGap(from, dur sim.Time) sim.Time {
	start := from
	for _, in := range s.iv {
		if in.End <= start {
			continue
		}
		if in.Start >= start+dur {
			break // gap before this interval fits
		}
		start = in.End
	}
	return start
}

// reserve inserts [start, end) keeping the set sorted.
func (s *intervalSet) reserve(task flow.TaskID, start, end sim.Time) {
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].Start >= start })
	s.iv = append(s.iv, Slot{})
	copy(s.iv[i+1:], s.iv[i:])
	s.iv[i] = Slot{Task: task, Start: start, End: end}
}

// dirLink identifies one direction of a link for contention tracking.
type dirLink struct{ from, to network.NodeID }

// Build constructs the static table. It returns *UnschedulableError when
// any task cannot complete within the period or a route is missing.
func Build(g *flow.Graph, assign map[flow.TaskID]network.NodeID, topo *network.Topology, p Params) (*Table, error) {
	if p.Speed <= 0 {
		panic("sched: non-positive speed")
	}
	t := &Table{
		Period: g.Period,
		Slots:  map[network.NodeID][]Slot{},
		Msgs:   map[flow.Edge]MsgWindow{},
		Finish: map[flow.TaskID]sim.Time{},
		Ready:  map[flow.TaskID]sim.Time{},
	}
	cpus := map[network.NodeID]*intervalSet{}
	links := map[dirLink]*intervalSet{}
	arrive := map[flow.Edge]sim.Time{} // per-edge delivery offset

	scale := func(d sim.Time) sim.Time {
		return sim.Time(float64(d)/p.Speed + 0.5)
	}

	for _, id := range g.TopoOrder() {
		task := g.Tasks[id]
		node, ok := assign[id]
		if !ok {
			return nil, &UnschedulableError{Reason: fmt.Sprintf("task %q unassigned", id)}
		}
		// Ready when all inputs have arrived.
		var ready sim.Time
		for _, e := range g.Inputs(id) {
			if arrive[e] > ready {
				ready = arrive[e]
			}
		}
		t.Ready[id] = ready

		// Total CPU work: task body + crypto for its I/O.
		work := task.WCET +
			p.SignCost*sim.Time(len(g.Outputs(id))) +
			p.VerifyCost*sim.Time(len(g.Inputs(id)))
		exec := scale(work)
		if exec <= 0 {
			exec = 1
		}
		cpu := cpus[node]
		if cpu == nil {
			cpu = &intervalSet{}
			cpus[node] = cpu
		}
		start := cpu.earliestGap(ready, exec)
		end := start + exec
		if end > g.Period {
			return nil, &UnschedulableError{Reason: fmt.Sprintf(
				"task %q on node %d finishes at %v > period %v", id, node, end, g.Period)}
		}
		cpu.reserve(id, start, end)
		t.Finish[id] = end

		// Plan each output edge's transmission.
		for _, e := range g.Outputs(id) {
			dst, ok := assign[e.To]
			if !ok {
				return nil, &UnschedulableError{Reason: fmt.Sprintf("task %q unassigned", e.To)}
			}
			if dst == node {
				arrive[e] = end // local handoff
				t.Msgs[e] = MsgWindow{Edge: e, From: node, To: dst, Depart: end, Arrive: end}
				continue
			}
			path, ok := topo.Path(node, dst)
			if !ok {
				return nil, &UnschedulableError{Reason: fmt.Sprintf(
					"no route %d -> %d for edge %s->%s", node, dst, e.From, e.To)}
			}
			at := end // message available after producer finishes
			depart := sim.Time(-1)
			for h := 0; h+1 < len(path); h++ {
				a, b := path[h], path[h+1]
				link, _ := topo.LinkBetween(a, b)
				cap := fgCapacity(link.Bandwidth, p.EvidenceShare)
				tx := network.TxTime(e.Bytes, cap)
				ls := links[dirLink{a, b}]
				if ls == nil {
					ls = &intervalSet{}
					links[dirLink{a, b}] = ls
				}
				txStart := ls.earliestGap(at, tx)
				ls.reserve(id, txStart, txStart+tx)
				if depart < 0 {
					depart = txStart
				}
				at = txStart + tx + link.Prop
			}
			arrive[e] = at
			t.Msgs[e] = MsgWindow{
				Edge: e, From: node, To: dst,
				Depart: depart, Arrive: at, Hops: len(path) - 1,
			}
			if at > g.Period {
				return nil, &UnschedulableError{Reason: fmt.Sprintf(
					"edge %s->%s arrives at %v > period %v", e.From, e.To, at, g.Period)}
			}
		}
	}
	for node, cpu := range cpus {
		t.Slots[node] = cpu.iv
	}
	return t, nil
}

// fgCapacity is the foreground share of a link's bandwidth (the rest is
// reserved for evidence).
func fgCapacity(bw int64, evidenceShare float64) int64 {
	c := int64(float64(bw) * (1 - evidenceShare))
	if c < 1 {
		c = 1
	}
	return c
}

// Violation describes a missed deadline in a candidate table.
type Violation struct {
	Sink     flow.TaskID
	Finish   sim.Time
	Deadline sim.Time
}

func (v Violation) String() string {
	return fmt.Sprintf("sink %q finishes %v after deadline %v", v.Sink, v.Finish, v.Deadline)
}

// CheckDeadlines returns all sink-deadline violations in the table.
func (t *Table) CheckDeadlines(g *flow.Graph) []Violation {
	var vs []Violation
	for _, id := range g.Sinks() {
		if t.Finish[id] > g.Tasks[id].Deadline {
			vs = append(vs, Violation{Sink: id, Finish: t.Finish[id], Deadline: g.Tasks[id].Deadline})
		}
	}
	return vs
}

// NodeUtilization returns busy-time / period for node.
func (t *Table) NodeUtilization(node network.NodeID) float64 {
	var busy sim.Time
	for _, s := range t.Slots[node] {
		busy += s.End - s.Start
	}
	return float64(busy) / float64(t.Period)
}

// MaxUtilization returns the highest per-node utilization and its node.
func (t *Table) MaxUtilization() (network.NodeID, float64) {
	var worst network.NodeID = -1
	var max float64 = -1
	// Deterministic iteration: sort node IDs.
	var nodes []network.NodeID
	for n := range t.Slots {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		if u := t.NodeUtilization(n); u > max {
			max, worst = u, n
		}
	}
	return worst, max
}

// SlotFor returns the execution slot of task id, if scheduled.
func (t *Table) SlotFor(id flow.TaskID) (network.NodeID, Slot, bool) {
	for node, slots := range t.Slots {
		for _, s := range slots {
			if s.Task == id {
				return node, s, true
			}
		}
	}
	return -1, Slot{}, false
}

// Makespan returns the latest finish offset over all tasks.
func (t *Table) Makespan() sim.Time {
	var max sim.Time
	for _, f := range t.Finish {
		if f > max {
			max = f
		}
	}
	return max
}

// VerifySanity checks internal invariants of a built table: no CPU slot
// overlap per node, all finishes within the period, message windows
// consistent with producer finishes. It returns the first violation as an
// error; nil means the table is self-consistent. Tests and the planner's
// paranoid mode call this.
func (t *Table) VerifySanity(g *flow.Graph) error {
	for node, slots := range t.Slots {
		for i := 1; i < len(slots); i++ {
			if slots[i].Start < slots[i-1].End {
				return fmt.Errorf("node %d: slots %q and %q overlap", node, slots[i-1].Task, slots[i].Task)
			}
		}
		for _, s := range slots {
			if s.End > t.Period {
				return fmt.Errorf("node %d: slot %q ends after period", node, s.Task)
			}
		}
	}
	for e, w := range t.Msgs {
		if w.Depart < t.Finish[e.From] {
			return fmt.Errorf("edge %s->%s departs %v before producer finish %v",
				e.From, e.To, w.Depart, t.Finish[e.From])
		}
		if w.Arrive < w.Depart {
			return fmt.Errorf("edge %s->%s arrives before departing", e.From, e.To)
		}
	}
	for _, id := range g.TaskIDs() {
		if _, ok := t.Finish[id]; !ok {
			return fmt.Errorf("task %q missing from table", id)
		}
	}
	return nil
}
