package sched

import (
	"strings"
	"testing"
	"testing/quick"

	"btr/internal/flow"
	"btr/internal/network"
	"btr/internal/sim"
)

// fastParams removes crypto costs so latency arithmetic in tests stays
// simple; individual tests opt back in.
func fastParams() Params {
	p := DefaultParams()
	p.SignCost, p.VerifyCost = 0, 0
	return p
}

func allOn(g *flow.Graph, node network.NodeID) map[flow.TaskID]network.NodeID {
	m := map[flow.TaskID]network.NodeID{}
	for _, id := range g.TaskIDs() {
		m[id] = node
	}
	return m
}

func TestSingleNodeChain(t *testing.T) {
	g := flow.Chain(3, 10*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	topo := network.Line(1, 1_000_000, 0)
	tab, err := Build(g, allOn(g, 0), topo, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.VerifySanity(g); err != nil {
		t.Fatal(err)
	}
	// Three sequential 1ms tasks on one CPU.
	if tab.Finish["c2"] != 3*sim.Millisecond {
		t.Errorf("c2 finish = %v, want 3ms", tab.Finish["c2"])
	}
	if vs := tab.CheckDeadlines(g); len(vs) != 0 {
		t.Errorf("unexpected violations: %v", vs)
	}
	if u := tab.NodeUtilization(0); u < 0.29 || u > 0.31 {
		t.Errorf("utilization = %v, want ~0.3", u)
	}
}

func TestTwoNodeChainIncludesNetwork(t *testing.T) {
	g := flow.Chain(2, 10*sim.Millisecond, sim.Millisecond, 968, flow.CritA)
	topo := network.Line(2, 1_250_000, sim.Millisecond) // fg share 1MB/s
	assign := map[flow.TaskID]network.NodeID{"c0": 0, "c1": 1}
	tab, err := Build(g, assign, topo, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	// c0: [0,1ms); tx 968B@1MB/s = 968us; prop 1ms; c1 starts at
	// 1+0.968+1 = 2.968ms, finishes 3.968ms.
	want := sim.Time(3968)
	if tab.Finish["c1"] != want {
		t.Errorf("c1 finish = %v, want %v", tab.Finish["c1"], want)
	}
	w := tab.Msgs[g.Edges[0]]
	if w.Depart != sim.Millisecond || w.Hops != 1 {
		t.Errorf("msg window = %+v", w)
	}
}

func TestCryptoCostsCharged(t *testing.T) {
	g := flow.Chain(2, 10*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	topo := network.Line(2, 1_000_000, 0)
	assign := map[flow.TaskID]network.NodeID{"c0": 0, "c1": 1}
	p := fastParams()
	p.SignCost, p.VerifyCost = 100*sim.Microsecond, 200*sim.Microsecond
	tab, err := Build(g, assign, topo, p)
	if err != nil {
		t.Fatal(err)
	}
	// c0 has one output edge: work = 1ms + 100us.
	if tab.Finish["c0"] != 1100*sim.Microsecond {
		t.Errorf("c0 finish = %v, want 1.1ms", tab.Finish["c0"])
	}
}

func TestSpeedScaling(t *testing.T) {
	g := flow.Chain(3, 10*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	topo := network.Line(1, 1_000_000, 0)
	p := fastParams()
	p.Speed = 2.0
	tab, err := Build(g, allOn(g, 0), topo, p)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Finish["c2"] != 1500*sim.Microsecond {
		t.Errorf("2x speed: c2 finish = %v, want 1.5ms", tab.Finish["c2"])
	}
	p.Speed = 0.5
	tab, err = Build(g, allOn(g, 0), topo, p)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Finish["c2"] != 6*sim.Millisecond {
		t.Errorf("0.5x speed: c2 finish = %v, want 6ms", tab.Finish["c2"])
	}
}

func TestUnschedulableWhenOverloaded(t *testing.T) {
	// 12 x 1ms tasks in a 10ms period on one CPU cannot fit.
	g := flow.Chain(12, 10*sim.Millisecond, sim.Millisecond, 8, flow.CritA)
	topo := network.Line(1, 1_000_000, 0)
	_, err := Build(g, allOn(g, 0), topo, fastParams())
	if err == nil {
		t.Fatal("expected unschedulable")
	}
	if _, ok := err.(*UnschedulableError); !ok {
		t.Errorf("error type = %T, want *UnschedulableError", err)
	}
}

func TestMissingAssignment(t *testing.T) {
	g := flow.Chain(2, 10*sim.Millisecond, sim.Millisecond, 8, flow.CritA)
	topo := network.Line(1, 1_000_000, 0)
	_, err := Build(g, map[flow.TaskID]network.NodeID{"c0": 0}, topo, fastParams())
	if err == nil || !strings.Contains(err.Error(), "unassigned") {
		t.Errorf("err = %v, want unassigned", err)
	}
}

func TestNoRoute(t *testing.T) {
	g := flow.Chain(2, 10*sim.Millisecond, sim.Millisecond, 8, flow.CritA)
	topo := network.NewTopology(3, []network.Link{{A: 0, B: 1, Bandwidth: 1000}})
	assign := map[flow.TaskID]network.NodeID{"c0": 0, "c1": 2} // 2 is isolated
	_, err := Build(g, assign, topo, fastParams())
	if err == nil || !strings.Contains(err.Error(), "no route") {
		t.Errorf("err = %v, want no route", err)
	}
}

func TestParallelTasksOnDistinctNodes(t *testing.T) {
	g := flow.ForkJoin(2, 20*sim.Millisecond, sim.Millisecond, 64, flow.CritB)
	topo := network.FullMesh(4, 10_000_000, 0)
	assign := map[flow.TaskID]network.NodeID{
		"src": 0, "w0": 1, "w1": 2, "join": 3, "sink": 3,
	}
	tab, err := Build(g, assign, topo, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.VerifySanity(g); err != nil {
		t.Fatal(err)
	}
	// w0 and w1 run in parallel: both should start at the same offset.
	_, s0, _ := tab.SlotFor("w0")
	_, s1, _ := tab.SlotFor("w1")
	if s0.Start != s1.Start {
		t.Errorf("parallel workers start at %v and %v", s0.Start, s1.Start)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	// Two producers on node 0 both send 1ms-sized messages to node 1;
	// windows on the directed link must not overlap.
	g := flow.NewGraph("contend", 20*sim.Millisecond)
	g.AddTask(flow.Task{ID: "a", WCET: sim.Millisecond, Crit: flow.CritA, Source: true})
	g.AddTask(flow.Task{ID: "b", WCET: sim.Millisecond, Crit: flow.CritA, Source: true})
	g.AddTask(flow.Task{ID: "k", WCET: sim.Millisecond, Crit: flow.CritA, Sink: true, Deadline: 20 * sim.Millisecond})
	g.Connect("a", "k", 968)
	g.Connect("b", "k", 968)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	topo := network.Line(2, 1_250_000, 0) // fg 1MB/s => 968B ~ 968us... wait header not modeled in sched
	assign := map[flow.TaskID]network.NodeID{"a": 0, "b": 0, "k": 1}
	tab, err := Build(g, assign, topo, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := tab.Msgs[g.Edges[0]], tab.Msgs[g.Edges[1]]
	// Same link, same direction: transmissions must be disjoint.
	lo, hi := w1, w2
	if lo.Depart > hi.Depart {
		lo, hi = hi, lo
	}
	if hi.Depart < lo.Arrive {
		t.Errorf("link transmissions overlap: %+v vs %+v", w1, w2)
	}
}

func TestDeadlineViolationDetected(t *testing.T) {
	g := flow.NewGraph("tight", 10*sim.Millisecond)
	g.AddTask(flow.Task{ID: "s", WCET: sim.Millisecond, Crit: flow.CritA, Source: true})
	g.AddTask(flow.Task{ID: "k", WCET: sim.Millisecond, Crit: flow.CritA, Sink: true,
		Deadline: 1500 * sim.Microsecond}) // needs 2ms
	g.Connect("s", "k", 8)
	topo := network.Line(1, 1_000_000, 0)
	tab, err := Build(g, allOn(g, 0), topo, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	vs := tab.CheckDeadlines(g)
	if len(vs) != 1 || vs[0].Sink != "k" {
		t.Fatalf("violations = %v, want one on k", vs)
	}
	if !strings.Contains(vs[0].String(), "deadline") {
		t.Error("violation string unhelpful")
	}
}

func TestAvionicsSchedulesOnFourNodes(t *testing.T) {
	g := flow.Avionics(20 * sim.Millisecond)
	topo := network.FullMesh(4, 10_000_000, 100*sim.Microsecond)
	// Round-robin assignment.
	assign := map[flow.TaskID]network.NodeID{}
	for i, id := range g.TaskIDs() {
		assign[id] = network.NodeID(i % 4)
	}
	tab, err := Build(g, assign, topo, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.VerifySanity(g); err != nil {
		t.Fatal(err)
	}
	if vs := tab.CheckDeadlines(g); len(vs) != 0 {
		t.Errorf("avionics violations: %v", vs)
	}
}

func TestMakespanAndMaxUtilization(t *testing.T) {
	g := flow.Chain(3, 10*sim.Millisecond, sim.Millisecond, 64, flow.CritA)
	topo := network.Line(2, 1_000_000, 0)
	assign := map[flow.TaskID]network.NodeID{"c0": 0, "c1": 0, "c2": 1}
	tab, err := Build(g, assign, topo, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Makespan() != tab.Finish["c2"] {
		t.Errorf("makespan %v != c2 finish %v", tab.Makespan(), tab.Finish["c2"])
	}
	node, u := tab.MaxUtilization()
	if node != 0 || u < tab.NodeUtilization(1) {
		t.Errorf("MaxUtilization = node %d (%v)", node, u)
	}
}

func TestIntervalSetGapFinding(t *testing.T) {
	s := &intervalSet{}
	s.reserve("a", 10, 20)
	s.reserve("b", 30, 40)
	cases := []struct{ from, dur, want sim.Time }{
		{0, 5, 0},    // fits before first interval
		{0, 10, 0},   // exactly fits
		{0, 11, 40},  // too big for either gap -> after "b"
		{12, 5, 20},  // from inside "a" -> after it
		{20, 10, 20}, // exact middle gap
		{20, 11, 40}, // middle gap too small -> after "b"
		{50, 5, 50},  // after everything
	}
	for _, c := range cases {
		if got := s.earliestGap(c.from, c.dur); got != c.want {
			t.Errorf("earliestGap(%d,%d) = %d, want %d", c.from, c.dur, got, c.want)
		}
	}
}

func TestPropertyNoCPUOverlapRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		g := flow.Random(rng, 40*sim.Millisecond, flow.DefaultRandomOpts())
		topo := network.FullMesh(4, 10_000_000, 0)
		assign := map[flow.TaskID]network.NodeID{}
		for _, id := range g.TaskIDs() {
			assign[id] = network.NodeID(rng.Intn(4))
		}
		tab, err := Build(g, assign, topo, DefaultParams())
		if err != nil {
			return true // unschedulable is a legitimate outcome
		}
		return tab.VerifySanity(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPrecedencesRespected(t *testing.T) {
	// For every edge, the consumer must start at/after the producer's
	// message arrival.
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		g := flow.Random(rng, 40*sim.Millisecond, flow.DefaultRandomOpts())
		topo := network.Ring(5, 10_000_000, 50*sim.Microsecond)
		assign := map[flow.TaskID]network.NodeID{}
		for _, id := range g.TaskIDs() {
			assign[id] = network.NodeID(rng.Intn(5))
		}
		tab, err := Build(g, assign, topo, DefaultParams())
		if err != nil {
			return true
		}
		for _, e := range g.Edges {
			w := tab.Msgs[e]
			_, slot, ok := tab.SlotFor(e.To)
			if !ok || slot.Start < w.Arrive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuildAvionics(b *testing.B) {
	g := flow.Avionics(20 * sim.Millisecond)
	topo := network.FullMesh(4, 10_000_000, 100*sim.Microsecond)
	assign := map[flow.TaskID]network.NodeID{}
	for i, id := range g.TaskIDs() {
		assign[id] = network.NodeID(i % 4)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, assign, topo, DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}
