// Package flow models the paper's workload (§2.1): "a static, periodic
// workload that can be described as a dataflow graph". The system has a
// period P and releases a set of tasks during each period; each task
// requires inputs from sources and/or other tasks and sends at least one
// output to a sink or another task. Each sink output has a criticality
// level and a deadline by which it must arrive.
package flow

import (
	"fmt"
	"sort"

	"btr/internal/sim"
)

// TaskID names a task. Replica tasks derive IDs from the original
// ("ctrl" -> "ctrl#1"), which the plan package manages.
type TaskID string

// Criticality orders tasks by importance, highest first — modeled on
// avionics design-assurance levels. When a degraded mode is not
// schedulable, the planner sheds tasks from the lowest level upward (§4.1).
type Criticality int

const (
	// CritA is the highest level (e.g., flight control).
	CritA Criticality = iota
	// CritB is high (e.g., engine/pressure monitoring).
	CritB
	// CritC is medium (e.g., navigation display).
	CritC
	// CritD is the lowest (e.g., in-flight entertainment).
	CritD
	// NumCrits is the number of criticality levels.
	NumCrits
)

func (c Criticality) String() string {
	switch c {
	case CritA:
		return "A"
	case CritB:
		return "B"
	case CritC:
		return "C"
	case CritD:
		return "D"
	default:
		return fmt.Sprintf("crit(%d)", int(c))
	}
}

// Task is one node of the dataflow graph.
type Task struct {
	ID   TaskID
	WCET sim.Time    // worst-case execution time per period
	Crit Criticality // criticality level
	// StateBytes is internal state that must migrate when the task is
	// reassigned to a different node during a mode change (§4.1: "extra
	// reassignments consume resources, e.g., bandwidth for transferring
	// state, and can thus prolong recovery").
	StateBytes int64
	// Source tasks sample the physical world (no dataflow inputs);
	// Sink tasks actuate it (no dataflow outputs).
	Source, Sink bool
	// Deadline, for sinks, is the offset within each period by which the
	// sink's actuation must happen. Zero for non-sinks.
	Deadline sim.Time
}

// Edge is a directed dataflow dependency carrying Bytes per period.
type Edge struct {
	From, To TaskID
	Bytes    int64
}

// Graph is a validated periodic dataflow workload.
type Graph struct {
	Name   string
	Period sim.Time
	Tasks  map[TaskID]*Task
	Edges  []Edge

	ins, outs map[TaskID][]Edge
	topo      []TaskID
}

// NewGraph returns an empty graph with the given period.
func NewGraph(name string, period sim.Time) *Graph {
	return &Graph{
		Name:   name,
		Period: period,
		Tasks:  map[TaskID]*Task{},
		ins:    map[TaskID][]Edge{},
		outs:   map[TaskID][]Edge{},
	}
}

// AddTask inserts t. It panics on duplicate IDs (workloads are static
// configuration).
func (g *Graph) AddTask(t Task) *Task {
	if t.ID == "" {
		panic("flow: empty task ID")
	}
	if _, dup := g.Tasks[t.ID]; dup {
		panic(fmt.Sprintf("flow: duplicate task %q", t.ID))
	}
	cp := t
	g.Tasks[t.ID] = &cp
	g.topo = nil
	return &cp
}

// Connect adds a dataflow edge carrying bytes per period.
func (g *Graph) Connect(from, to TaskID, bytes int64) {
	if _, ok := g.Tasks[from]; !ok {
		panic(fmt.Sprintf("flow: edge from unknown task %q", from))
	}
	if _, ok := g.Tasks[to]; !ok {
		panic(fmt.Sprintf("flow: edge to unknown task %q", to))
	}
	e := Edge{From: from, To: to, Bytes: bytes}
	g.Edges = append(g.Edges, e)
	g.ins[to] = append(g.ins[to], e)
	g.outs[from] = append(g.outs[from], e)
	g.topo = nil
}

// Inputs returns the edges feeding id.
func (g *Graph) Inputs(id TaskID) []Edge { return g.ins[id] }

// Outputs returns the edges leaving id.
func (g *Graph) Outputs(id TaskID) []Edge { return g.outs[id] }

// Sources returns source task IDs, sorted.
func (g *Graph) Sources() []TaskID { return g.filter(func(t *Task) bool { return t.Source }) }

// Sinks returns sink task IDs, sorted.
func (g *Graph) Sinks() []TaskID { return g.filter(func(t *Task) bool { return t.Sink }) }

func (g *Graph) filter(pred func(*Task) bool) []TaskID {
	var out []TaskID
	for id, t := range g.Tasks {
		if pred(t) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TaskIDs returns all task IDs, sorted (deterministic iteration order).
func (g *Graph) TaskIDs() []TaskID { return g.filter(func(*Task) bool { return true }) }

// TopoOrder returns tasks in a deterministic topological order (Kahn's
// algorithm with lexicographic tie-break). It panics if the graph has a
// cycle; call Validate first on untrusted input.
func (g *Graph) TopoOrder() []TaskID {
	if g.topo != nil {
		return g.topo
	}
	indeg := map[TaskID]int{}
	for id := range g.Tasks {
		indeg[id] = len(g.ins[id])
	}
	var ready []TaskID
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	var order []TaskID
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		var unlocked []TaskID
		for _, e := range g.outs[id] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				unlocked = append(unlocked, e.To)
			}
		}
		sort.Slice(unlocked, func(i, j int) bool { return unlocked[i] < unlocked[j] })
		// Merge keeping ready sorted.
		ready = append(ready, unlocked...)
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	}
	if len(order) != len(g.Tasks) {
		panic("flow: dataflow graph has a cycle")
	}
	g.topo = order
	return order
}

// Validate checks structural invariants and returns a descriptive error
// for the first violation found.
func (g *Graph) Validate() error {
	if g.Period <= 0 {
		return fmt.Errorf("flow: non-positive period %v", g.Period)
	}
	if len(g.Tasks) == 0 {
		return fmt.Errorf("flow: empty graph")
	}
	for id, t := range g.Tasks {
		if t.WCET <= 0 {
			return fmt.Errorf("flow: task %q has non-positive WCET", id)
		}
		if t.WCET > g.Period {
			return fmt.Errorf("flow: task %q WCET %v exceeds period %v", id, t.WCET, g.Period)
		}
		if t.StateBytes < 0 {
			return fmt.Errorf("flow: task %q has negative state", id)
		}
		if t.Crit < CritA || t.Crit > CritD {
			return fmt.Errorf("flow: task %q has invalid criticality %d", id, t.Crit)
		}
		if t.Source && len(g.ins[id]) > 0 {
			return fmt.Errorf("flow: source %q has inputs", id)
		}
		if !t.Source && len(g.ins[id]) == 0 {
			return fmt.Errorf("flow: non-source %q has no inputs", id)
		}
		if t.Sink && len(g.outs[id]) > 0 {
			return fmt.Errorf("flow: sink %q has outputs", id)
		}
		if !t.Sink && len(g.outs[id]) == 0 {
			return fmt.Errorf("flow: non-sink %q has no outputs", id)
		}
		if t.Sink {
			if t.Deadline <= 0 || t.Deadline > g.Period {
				return fmt.Errorf("flow: sink %q deadline %v outside (0, period]", id, t.Deadline)
			}
		}
	}
	for _, e := range g.Edges {
		if e.Bytes <= 0 {
			return fmt.Errorf("flow: edge %s->%s carries %d bytes", e.From, e.To, e.Bytes)
		}
	}
	// Acyclicity: TopoOrder panics on cycles; convert to error.
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%v", r)
			}
		}()
		g.TopoOrder()
		return nil
	}()
	return err
}

// Clone returns a deep copy (tasks and edges).
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.Name, g.Period)
	for _, id := range g.TaskIDs() {
		c.AddTask(*g.Tasks[id])
	}
	for _, e := range g.Edges {
		c.Connect(e.From, e.To, e.Bytes)
	}
	return c
}

// TotalWCET sums per-period execution demand over all tasks.
func (g *Graph) TotalWCET() sim.Time {
	var sum sim.Time
	for _, t := range g.Tasks {
		sum += t.WCET
	}
	return sum
}

// TasksAtOrAbove returns IDs with criticality c or more critical, sorted.
func (g *Graph) TasksAtOrAbove(c Criticality) []TaskID {
	return g.filter(func(t *Task) bool { return t.Crit <= c })
}

// CritPath returns the longest WCET-weighted path (ignoring network
// delays); a quick lower bound on achievable end-to-end latency.
func (g *Graph) CritPath() sim.Time {
	longest := map[TaskID]sim.Time{}
	var max sim.Time
	for _, id := range g.TopoOrder() {
		best := sim.Time(0)
		for _, e := range g.ins[id] {
			if longest[e.From] > best {
				best = longest[e.From]
			}
		}
		longest[id] = best + g.Tasks[id].WCET
		if longest[id] > max {
			max = longest[id]
		}
	}
	return max
}

// SinkOf returns, for each task, the set of sinks reachable from it. The
// planner uses this to propagate deadlines and to decide which sink
// outputs a fault on a given task can corrupt.
func (g *Graph) SinkOf() map[TaskID][]TaskID {
	reach := map[TaskID]map[TaskID]bool{}
	order := g.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		set := map[TaskID]bool{}
		if g.Tasks[id].Sink {
			set[id] = true
		}
		for _, e := range g.outs[id] {
			for s := range reach[e.To] {
				set[s] = true
			}
		}
		reach[id] = set
	}
	out := map[TaskID][]TaskID{}
	for id, set := range reach {
		var sinks []TaskID
		for s := range set {
			sinks = append(sinks, s)
		}
		sort.Slice(sinks, func(i, j int) bool { return sinks[i] < sinks[j] })
		out[id] = sinks
	}
	return out
}
