package flow

import (
	"strings"
	"testing"
	"testing/quick"

	"btr/internal/sim"
)

func mustValid(t *testing.T, g *Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("graph %q invalid: %v", g.Name, err)
	}
}

func TestChainValidates(t *testing.T) {
	g := Chain(5, 10*sim.Millisecond, sim.Millisecond, 64, CritA)
	mustValid(t, g)
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Errorf("chain sources/sinks = %v/%v", g.Sources(), g.Sinks())
	}
	order := g.TopoOrder()
	if len(order) != 5 || order[0] != "c0" || order[4] != "c4" {
		t.Errorf("topo order = %v", order)
	}
}

func TestForkJoinValidates(t *testing.T) {
	g := ForkJoin(3, 20*sim.Millisecond, sim.Millisecond, 64, CritB)
	mustValid(t, g)
	if len(g.Inputs("join")) != 3 {
		t.Errorf("join inputs = %d, want 3", len(g.Inputs("join")))
	}
	if len(g.Outputs("src")) != 3 {
		t.Errorf("src outputs = %d, want 3", len(g.Outputs("src")))
	}
}

func TestAvionicsValidates(t *testing.T) {
	g := Avionics(20 * sim.Millisecond)
	mustValid(t, g)
	if len(g.Tasks) != 13 {
		t.Errorf("avionics has %d tasks, want 13", len(g.Tasks))
	}
	// All four criticality levels must be present.
	seen := map[Criticality]bool{}
	for _, task := range g.Tasks {
		seen[task.Crit] = true
	}
	for c := CritA; c <= CritD; c++ {
		if !seen[c] {
			t.Errorf("criticality %v missing from avionics suite", c)
		}
	}
	// Flight-control deadline must be tighter than the period.
	if g.Tasks["elevator"].Deadline >= g.Period {
		t.Error("elevator deadline should be < period")
	}
}

func TestControlLoopValidates(t *testing.T) {
	g := ControlLoop(50*sim.Millisecond, CritA)
	mustValid(t, g)
	if len(g.Tasks) != 3 {
		t.Errorf("control loop has %d tasks", len(g.Tasks))
	}
}

func TestRandomValidates(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		g := Random(rng, 20*sim.Millisecond, DefaultRandomOpts())
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	g1 := Random(sim.NewRNG(5), 10*sim.Millisecond, DefaultRandomOpts())
	g2 := Random(sim.NewRNG(5), 10*sim.Millisecond, DefaultRandomOpts())
	if len(g1.Edges) != len(g2.Edges) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatal("same seed produced different edges")
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	period := 10 * sim.Millisecond
	cases := []struct {
		name    string
		build   func() *Graph
		wantSub string
	}{
		{"empty", func() *Graph { return NewGraph("e", period) }, "empty"},
		{"bad period", func() *Graph {
			g := NewGraph("p", 0)
			g.AddTask(Task{ID: "a", WCET: 1, Source: true, Sink: true, Deadline: 1})
			return g
		}, "period"},
		{"zero wcet", func() *Graph {
			g := NewGraph("w", period)
			g.AddTask(Task{ID: "a", WCET: 0, Source: true, Sink: true, Deadline: 1})
			return g
		}, "WCET"},
		{"wcet exceeds period", func() *Graph {
			g := NewGraph("w2", period)
			g.AddTask(Task{ID: "a", WCET: period * 2, Source: true, Sink: true, Deadline: period})
			return g
		}, "exceeds period"},
		{"source with inputs", func() *Graph {
			g := NewGraph("si", period)
			g.AddTask(Task{ID: "a", WCET: 1, Source: true})
			g.AddTask(Task{ID: "b", WCET: 1, Source: true, Sink: true, Deadline: 1})
			g.Connect("a", "b", 8)
			return g
		}, "has inputs"},
		{"orphan non-source", func() *Graph {
			g := NewGraph("or", period)
			g.AddTask(Task{ID: "a", WCET: 1, Sink: true, Deadline: 1})
			return g
		}, "no inputs"},
		{"sink with outputs", func() *Graph {
			g := NewGraph("so", period)
			g.AddTask(Task{ID: "a", WCET: 1, Source: true, Sink: true, Deadline: 1})
			g.AddTask(Task{ID: "b", WCET: 1, Sink: true, Deadline: 1})
			g.Connect("a", "b", 8)
			return g
		}, "has outputs"},
		{"dead-end non-sink", func() *Graph {
			g := NewGraph("de", period)
			g.AddTask(Task{ID: "a", WCET: 1, Source: true})
			return g
		}, "no outputs"},
		{"missing sink deadline", func() *Graph {
			g := NewGraph("dl", period)
			g.AddTask(Task{ID: "a", WCET: 1, Source: true, Sink: true})
			return g
		}, "deadline"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.build().Validate()
			if err == nil {
				t.Fatalf("%s: Validate passed", c.name)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
			}
		})
	}
}

func TestCycleDetection(t *testing.T) {
	g := NewGraph("cyc", 10*sim.Millisecond)
	g.AddTask(Task{ID: "s", WCET: 1, Source: true})
	g.AddTask(Task{ID: "a", WCET: 1})
	g.AddTask(Task{ID: "b", WCET: 1})
	g.AddTask(Task{ID: "k", WCET: 1, Sink: true, Deadline: 1})
	g.Connect("s", "a", 8)
	g.Connect("a", "b", 8)
	g.Connect("b", "a", 8) // cycle a<->b
	g.Connect("b", "k", 8)
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	f := func(seed uint64) bool {
		g := Random(sim.NewRNG(seed), 10*sim.Millisecond, DefaultRandomOpts())
		pos := map[TaskID]int{}
		for i, id := range g.TopoOrder() {
			pos[id] = i
		}
		for _, e := range g.Edges {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Avionics(20 * sim.Millisecond)
	c := g.Clone()
	mustValid(t, c)
	c.Tasks["gyro"].WCET = 999
	if g.Tasks["gyro"].WCET == 999 {
		t.Error("clone shares task structs with original")
	}
	if len(c.Edges) != len(g.Edges) {
		t.Error("clone edge count differs")
	}
}

func TestTotalWCETAndCritPath(t *testing.T) {
	g := Chain(4, 10*sim.Millisecond, sim.Millisecond, 8, CritA)
	if got := g.TotalWCET(); got != 4*sim.Millisecond {
		t.Errorf("TotalWCET = %v, want 4ms", got)
	}
	if got := g.CritPath(); got != 4*sim.Millisecond {
		t.Errorf("CritPath = %v, want 4ms", got)
	}
	// Fork-join: crit path is src+w+join+sink = 4 tasks deep, not total.
	fj := ForkJoin(5, 20*sim.Millisecond, sim.Millisecond, 8, CritA)
	if got := fj.CritPath(); got != 4*sim.Millisecond {
		t.Errorf("fork-join CritPath = %v, want 4ms", got)
	}
}

func TestTasksAtOrAbove(t *testing.T) {
	g := Avionics(20 * sim.Millisecond)
	all := g.TasksAtOrAbove(CritD)
	if len(all) != len(g.Tasks) {
		t.Errorf("TasksAtOrAbove(D) = %d tasks, want all %d", len(all), len(g.Tasks))
	}
	aOnly := g.TasksAtOrAbove(CritA)
	for _, id := range aOnly {
		if g.Tasks[id].Crit != CritA {
			t.Errorf("task %q in A-set has crit %v", id, g.Tasks[id].Crit)
		}
	}
	if len(aOnly) == 0 || len(aOnly) >= len(all) {
		t.Errorf("A-set size %d implausible vs %d", len(aOnly), len(all))
	}
}

func TestSinkOf(t *testing.T) {
	g := Avionics(20 * sim.Millisecond)
	so := g.SinkOf()
	// gyro feeds both flight control (elevator) and navigation (display).
	gyroSinks := so["gyro"]
	if len(gyroSinks) != 2 || gyroSinks[0] != "display" || gyroSinks[1] != "elevator" {
		t.Errorf("SinkOf(gyro) = %v, want [display elevator]", gyroSinks)
	}
	// A sink reaches itself only.
	if s := so["valve"]; len(s) != 1 || s[0] != "valve" {
		t.Errorf("SinkOf(valve) = %v", s)
	}
	// media only reaches cabin.
	if s := so["media"]; len(s) != 1 || s[0] != "cabin" {
		t.Errorf("SinkOf(media) = %v", s)
	}
}

func TestDuplicateTaskPanics(t *testing.T) {
	g := NewGraph("dup", sim.Second)
	g.AddTask(Task{ID: "a", WCET: 1, Source: true})
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddTask did not panic")
		}
	}()
	g.AddTask(Task{ID: "a", WCET: 1})
}

func TestConnectUnknownPanics(t *testing.T) {
	g := NewGraph("unk", sim.Second)
	g.AddTask(Task{ID: "a", WCET: 1, Source: true})
	defer func() {
		if recover() == nil {
			t.Error("Connect to unknown task did not panic")
		}
	}()
	g.Connect("a", "ghost", 8)
}

func TestCriticalityString(t *testing.T) {
	if CritA.String() != "A" || CritD.String() != "D" {
		t.Error("criticality strings wrong")
	}
}

func TestTaskIDsSorted(t *testing.T) {
	g := Avionics(20 * sim.Millisecond)
	ids := g.TaskIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("TaskIDs not sorted: %v", ids)
		}
	}
}
