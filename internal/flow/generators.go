package flow

import (
	"fmt"

	"btr/internal/sim"
)

// Chain builds a linear pipeline src -> w1 -> ... -> w(n-2) -> sink with
// uniform WCET, message size, and criticality. Useful as the simplest
// non-trivial workload.
func Chain(n int, period, wcet sim.Time, bytes int64, crit Criticality) *Graph {
	if n < 2 {
		panic("flow: chain needs n >= 2")
	}
	g := NewGraph(fmt.Sprintf("chain-%d", n), period)
	for i := 0; i < n; i++ {
		t := Task{
			ID:         TaskID(fmt.Sprintf("c%d", i)),
			WCET:       wcet,
			Crit:       crit,
			StateBytes: 256,
		}
		switch i {
		case 0:
			t.Source = true
		case n - 1:
			t.Sink = true
			t.Deadline = period
		}
		g.AddTask(t)
	}
	for i := 0; i < n-1; i++ {
		g.Connect(TaskID(fmt.Sprintf("c%d", i)), TaskID(fmt.Sprintf("c%d", i+1)), bytes)
	}
	return g
}

// ForkJoin builds src -> {w1..wK} -> join -> sink: one sensor fanned out to
// K parallel workers whose results are fused.
func ForkJoin(k int, period, wcet sim.Time, bytes int64, crit Criticality) *Graph {
	if k < 1 {
		panic("flow: fork-join needs k >= 1")
	}
	g := NewGraph(fmt.Sprintf("forkjoin-%d", k), period)
	g.AddTask(Task{ID: "src", WCET: wcet, Crit: crit, Source: true, StateBytes: 128})
	for i := 0; i < k; i++ {
		g.AddTask(Task{ID: TaskID(fmt.Sprintf("w%d", i)), WCET: wcet, Crit: crit, StateBytes: 512})
	}
	g.AddTask(Task{ID: "join", WCET: wcet, Crit: crit, StateBytes: 512})
	g.AddTask(Task{ID: "sink", WCET: wcet, Crit: crit, Sink: true, Deadline: period, StateBytes: 64})
	for i := 0; i < k; i++ {
		id := TaskID(fmt.Sprintf("w%d", i))
		g.Connect("src", id, bytes)
		g.Connect(id, "join", bytes)
	}
	g.Connect("join", "sink", bytes)
	return g
}

// Avionics builds the mixed-criticality workload the paper's introduction
// motivates: "the CPS on an airplane might run flight control and the
// in-flight entertainment system". Four subsystems at four criticality
// levels share the platform:
//
//	A: gyro+airspeed -> fc.filter -> fc.law -> elevator   (flight control)
//	B: pressure -> eng.monitor -> valve                    (engine protection)
//	C: gyro+airspeed -> nav.fuse -> display                (navigation)
//	D: media -> ife.decode -> cabin                        (entertainment)
//
// Periods and WCETs are chosen so the whole suite fits on a handful of
// embedded nodes with headroom for f+1 replication but not for 3f+1.
func Avionics(period sim.Time) *Graph {
	g := NewGraph("avionics", period)
	ms := func(x float64) sim.Time { return sim.Time(x * float64(sim.Millisecond)) }

	// Sensors (sources).
	g.AddTask(Task{ID: "gyro", WCET: ms(0.4), Crit: CritA, Source: true, StateBytes: 64})
	g.AddTask(Task{ID: "airspeed", WCET: ms(0.4), Crit: CritA, Source: true, StateBytes: 64})
	g.AddTask(Task{ID: "pressure", WCET: ms(0.4), Crit: CritB, Source: true, StateBytes: 64})
	g.AddTask(Task{ID: "media", WCET: ms(1.5), Crit: CritD, Source: true, StateBytes: 4096})

	// Flight control (criticality A, tightest deadline).
	g.AddTask(Task{ID: "fc.filter", WCET: ms(0.8), Crit: CritA, StateBytes: 1024})
	g.AddTask(Task{ID: "fc.law", WCET: ms(1.0), Crit: CritA, StateBytes: 2048})
	g.AddTask(Task{ID: "elevator", WCET: ms(0.3), Crit: CritA, Sink: true, Deadline: period * 6 / 10, StateBytes: 64})

	// Engine/pressure protection (criticality B).
	g.AddTask(Task{ID: "eng.monitor", WCET: ms(0.7), Crit: CritB, StateBytes: 512})
	g.AddTask(Task{ID: "valve", WCET: ms(0.3), Crit: CritB, Sink: true, Deadline: period * 7 / 10, StateBytes: 64})

	// Navigation (criticality C).
	g.AddTask(Task{ID: "nav.fuse", WCET: ms(1.2), Crit: CritC, StateBytes: 2048})
	g.AddTask(Task{ID: "display", WCET: ms(0.4), Crit: CritC, Sink: true, Deadline: period, StateBytes: 128})

	// In-flight entertainment (criticality D, bulky traffic).
	g.AddTask(Task{ID: "ife.decode", WCET: ms(2.0), Crit: CritD, StateBytes: 8192})
	g.AddTask(Task{ID: "cabin", WCET: ms(0.5), Crit: CritD, Sink: true, Deadline: period, StateBytes: 256})

	g.Connect("gyro", "fc.filter", 64)
	g.Connect("airspeed", "fc.filter", 64)
	g.Connect("fc.filter", "fc.law", 128)
	g.Connect("fc.law", "elevator", 64)

	g.Connect("pressure", "eng.monitor", 64)
	g.Connect("eng.monitor", "valve", 64)

	g.Connect("gyro", "nav.fuse", 64)
	g.Connect("airspeed", "nav.fuse", 64)
	g.Connect("nav.fuse", "display", 256)

	g.Connect("media", "ife.decode", 4096)
	g.Connect("ife.decode", "cabin", 2048)
	return g
}

// ControlLoop builds the minimal sensor->controller->actuator loop used by
// the plant experiments (E9): one source sampling the plant, a controller
// computing the actuation command, and a sink applying it.
func ControlLoop(period sim.Time, crit Criticality) *Graph {
	g := NewGraph("controlloop", period)
	g.AddTask(Task{ID: "sensor", WCET: period / 50, Crit: crit, Source: true, StateBytes: 64})
	g.AddTask(Task{ID: "controller", WCET: period / 20, Crit: crit, StateBytes: 512})
	g.AddTask(Task{ID: "actuator", WCET: period / 50, Crit: crit, Sink: true, Deadline: period / 2, StateBytes: 64})
	g.Connect("sensor", "controller", 64)
	g.Connect("controller", "actuator", 64)
	return g
}

// RandomOpts parameterizes Random.
type RandomOpts struct {
	Layers      int     // DAG depth (>= 2: sources + sinks)
	Width       int     // tasks per inner layer
	EdgeProb    float64 // probability of an edge between adjacent layers beyond the spanning one
	MinWCET     sim.Time
	MaxWCET     sim.Time
	MinBytes    int64
	MaxBytes    int64
	StateBytes  int64
	DeadlineFrc float64 // sink deadline as a fraction of the period
}

// DefaultRandomOpts returns moderate defaults for planner stress tests.
func DefaultRandomOpts() RandomOpts {
	return RandomOpts{
		Layers:      4,
		Width:       3,
		EdgeProb:    0.3,
		MinWCET:     200 * sim.Microsecond,
		MaxWCET:     1500 * sim.Microsecond,
		MinBytes:    32,
		MaxBytes:    512,
		StateBytes:  1024,
		DeadlineFrc: 1.0,
	}
}

// Random generates a layered random DAG: layer 0 is sources, the last
// layer is sinks, and every task has at least one input from the previous
// layer and one output to the next. Criticality is assigned round-robin
// across levels so mixed-criticality shedding always has work to do.
// Deterministic in rng.
func Random(rng *sim.RNG, period sim.Time, o RandomOpts) *Graph {
	if o.Layers < 2 || o.Width < 1 {
		panic("flow: Random needs Layers >= 2, Width >= 1")
	}
	g := NewGraph("random", period)
	id := func(l, i int) TaskID { return TaskID(fmt.Sprintf("L%dT%d", l, i)) }
	wcet := func() sim.Time {
		if o.MaxWCET <= o.MinWCET {
			return o.MinWCET
		}
		return o.MinWCET + rng.Duration(o.MaxWCET-o.MinWCET)
	}
	bytes := func() int64 {
		if o.MaxBytes <= o.MinBytes {
			return o.MinBytes
		}
		return o.MinBytes + rng.Int63n(o.MaxBytes-o.MinBytes)
	}
	crit := 0
	for l := 0; l < o.Layers; l++ {
		for i := 0; i < o.Width; i++ {
			t := Task{
				ID:         id(l, i),
				WCET:       wcet(),
				Crit:       Criticality(crit % int(NumCrits)),
				StateBytes: o.StateBytes,
			}
			crit++
			if l == 0 {
				t.Source = true
			}
			if l == o.Layers-1 {
				t.Sink = true
				t.Deadline = sim.Time(float64(period) * o.DeadlineFrc)
			}
			g.AddTask(t)
		}
	}
	for l := 1; l < o.Layers; l++ {
		for i := 0; i < o.Width; i++ {
			// Guarantee one input from the previous layer...
			g.Connect(id(l-1, rng.Intn(o.Width)), id(l, i), bytes())
			// ...plus extra edges with probability EdgeProb.
			for j := 0; j < o.Width; j++ {
				if rng.Bool(o.EdgeProb) {
					from, to := id(l-1, j), id(l, i)
					dup := false
					for _, e := range g.Inputs(to) {
						if e.From == from {
							dup = true
							break
						}
					}
					if !dup {
						g.Connect(from, to, bytes())
					}
				}
			}
		}
	}
	// Guarantee every non-sink has an output: connect strays to a random
	// next-layer task.
	for l := 0; l < o.Layers-1; l++ {
		for i := 0; i < o.Width; i++ {
			if len(g.Outputs(id(l, i))) == 0 {
				g.Connect(id(l, i), id(l+1, rng.Intn(o.Width)), bytes())
			}
		}
	}
	return g
}
