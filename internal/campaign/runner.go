package campaign

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"btr/internal/metrics"
)

// Options configures the runner.
type Options struct {
	Params
	// Workers is the worker-pool size; values < 1 mean 1. The aggregated
	// tables are identical for every worker count.
	Workers int
	// OnTrial, if set, observes every finished trial. It is called
	// concurrently from worker goroutines; implementations must be
	// thread-safe and must not assume any trial ordering.
	OnTrial func(scenarioID string, tr TrialResult)
}

// unit is one scheduled trial in the flattened campaign work list.
type unit struct {
	sIdx, tIdx int
	spec       TrialSpec
}

// Run executes every scenario's trials on a pool of opts.Workers
// goroutines and returns the aggregated results in scenario order.
//
// The hot path is lock-free: workers claim trials by atomically advancing
// a shared cursor over the flattened work list and write results into
// disjoint, preallocated slots, so no mutex is held while trials execute.
// Aggregation runs once per scenario after all of its trials completed,
// folding results in trial-index order — the combination that makes
// output independent of scheduling.
func Run(scenarios []Scenario, opts Options) []ScenarioResult {
	p := opts.Params.norm()
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}

	var units []unit
	slots := make([][]TrialResult, len(scenarios))
	for si, sc := range scenarios {
		specs := sc.Trials(p)
		slots[si] = make([]TrialResult, len(specs))
		for ti, spec := range specs {
			units = append(units, unit{sIdx: si, tIdx: ti, spec: spec})
		}
	}
	if workers > len(units) && len(units) > 0 {
		workers = len(units)
	}

	var cursor int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&cursor, 1)) - 1
				if i >= len(units) {
					return
				}
				u := units[i]
				sc := scenarios[u.sIdx]
				tr := runTrial(sc, p, u)
				slots[u.sIdx][u.tIdx] = tr
				if opts.OnTrial != nil {
					opts.OnTrial(sc.ID, tr)
				}
			}
		}()
	}
	wg.Wait()

	out := make([]ScenarioResult, len(scenarios))
	for si, sc := range scenarios {
		trials := slots[si]
		var work time.Duration
		for _, tr := range trials {
			work += tr.Elapsed
		}
		out[si] = ScenarioResult{
			ID: sc.ID, Family: sc.Family, Claim: sc.Claim,
			Tables: aggregate(sc, p, trials),
			Trials: trials,
			Failed: CountFailed(trials),
			Work:   work,
		}
	}
	return out
}

// runTrial executes one trial, converting panics into trial failures so a
// bad scenario cannot take the campaign (or its worker) down.
func runTrial(sc Scenario, p Params, u unit) (res TrialResult) {
	t := &T{
		Params:   p,
		Scenario: sc.ID,
		Name:     u.spec.Name,
		Index:    u.tIdx,
		seed:     splitSeed(p.Seed, sc.ID, u.tIdx),
	}
	res = TrialResult{Name: u.spec.Name, Index: u.tIdx}
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			res.Value = nil
			res.Err = fmt.Errorf("campaign: trial %s/%s panicked: %v\n%s",
				sc.ID, u.spec.Name, r, debug.Stack())
		}
	}()
	v, err := u.spec.Run(t)
	res.Value, res.Err = v, err
	if err != nil {
		res.Value = nil
	}
	return res
}

// aggregate runs the scenario's fold, degrading a panicking aggregator to
// an error table rather than poisoning the whole campaign.
func aggregate(sc Scenario, p Params, trials []TrialResult) (tables []*metrics.Table) {
	defer func() {
		if r := recover(); r != nil {
			t := metrics.NewTable(fmt.Sprintf("%s: AGGREGATION FAILED", sc.ID), "error")
			t.AddRow(fmt.Sprint(r))
			tables = []*metrics.Table{t}
		}
	}()
	return sc.Aggregate(p, trials)
}
