package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"btr/internal/metrics"
)

// rngScenario exercises the split-seed path: every trial draws from its
// private generator and reports the draws, so any cross-trial RNG sharing
// or order dependence would change the aggregate.
func rngScenario(id string, nTrials int) Scenario {
	return Scenario{
		ID: id, Family: "test", Claim: "rng trials are worker-count independent",
		Trials: func(p Params) []TrialSpec {
			var specs []TrialSpec
			for i := 0; i < nTrials; i++ {
				i := i
				specs = append(specs, TrialSpec{Name: fmt.Sprintf("t%d", i), Run: func(t *T) (any, error) {
					rng := t.RNG()
					sum := uint64(0)
					for j := 0; j < 100; j++ {
						sum += rng.Uint64() % 1000
					}
					return sum, nil
				}})
			}
			return specs
		},
		Aggregate: func(p Params, trials []TrialResult) []*metrics.Table {
			t := metrics.NewTable(id, "trial", "sum")
			for _, tr := range trials {
				v, _ := Value[uint64](tr)
				t.AddRow(tr.Name, fmt.Sprint(v))
			}
			return []*metrics.Table{t}
		},
	}
}

func render(results []ScenarioResult) string {
	var b strings.Builder
	for _, r := range results {
		for _, t := range r.Tables {
			b.WriteString(t.String())
		}
	}
	return b.String()
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	scens := []Scenario{rngScenario("S1", 13), rngScenario("S2", 7), rngScenario("S3", 1)}
	p := Params{Seed: 42}
	var outputs []string
	for _, workers := range []int{1, 2, 4, 8, 64} {
		res := Run(scens, Options{Workers: workers, Params: p})
		outputs = append(outputs, render(res))
	}
	for i, out := range outputs[1:] {
		if out != outputs[0] {
			t.Errorf("workers=%d output differs from workers=1:\n%s\nvs\n%s",
				[]int{2, 4, 8, 64}[i], out, outputs[0])
		}
	}
}

func TestSeedChangesResults(t *testing.T) {
	scens := []Scenario{rngScenario("S1", 5)}
	a := render(Run(scens, Options{Workers: 2, Params: Params{Seed: 1}}))
	b := render(Run(scens, Options{Workers: 2, Params: Params{Seed: 2}}))
	if a == b {
		t.Error("different campaign seeds produced identical results")
	}
}

func TestSplitSeedStable(t *testing.T) {
	// The derivation is part of the campaign format; a change silently
	// invalidates every recorded campaign result.
	if got := splitSeed(1, "E1", 0); got != splitSeed(1, "E1", 0) {
		t.Fatal("splitSeed not pure")
	}
	seen := map[uint64]string{}
	for _, sc := range []string{"E1", "E2", "C1"} {
		for i := 0; i < 100; i++ {
			s := splitSeed(7, sc, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s/%d vs %s", sc, i, prev)
			}
			seen[s] = fmt.Sprintf("%s/%d", sc, i)
		}
	}
}

// TestPanickingTrialFailsTrialNotCampaign is the worker-pool hardening
// contract: a panicking scenario trial must be captured as that trial's
// failure, every other trial must still run, and no worker goroutine may
// leak.
func TestPanickingTrialFailsTrialNotCampaign(t *testing.T) {
	before := runtime.NumGoroutine()
	sc := Scenario{
		ID: "PANIC", Family: "test", Claim: "panics are contained",
		Trials: func(p Params) []TrialSpec {
			var specs []TrialSpec
			for i := 0; i < 12; i++ {
				i := i
				specs = append(specs, TrialSpec{Name: fmt.Sprintf("t%d", i), Run: func(tr *T) (any, error) {
					if i == 5 {
						panic("injected scenario panic")
					}
					if i == 7 {
						return nil, errors.New("plain failure")
					}
					return i, nil
				}})
			}
			return specs
		},
		Aggregate: func(p Params, trials []TrialResult) []*metrics.Table {
			tab := metrics.NewTable("PANIC", "trial", "ok")
			for _, tr := range trials {
				tab.AddRow(tr.Name, fmt.Sprint(tr.Err == nil))
			}
			return []*metrics.Table{tab}
		},
	}
	res := Run([]Scenario{sc}, Options{Workers: 8, Params: Params{Seed: 1}})
	if len(res) != 1 {
		t.Fatalf("campaign died: %d results", len(res))
	}
	r := res[0]
	if r.Failed != 2 {
		t.Errorf("Failed = %d, want 2 (one panic, one error)", r.Failed)
	}
	for i, tr := range r.Trials {
		switch i {
		case 5:
			if tr.Err == nil || !strings.Contains(tr.Err.Error(), "panicked") {
				t.Errorf("trial 5: err = %v, want captured panic", tr.Err)
			}
			if tr.Value != nil {
				t.Errorf("trial 5: value should be nil after panic")
			}
		case 7:
			if tr.Err == nil || tr.Err.Error() != "plain failure" {
				t.Errorf("trial 7: err = %v", tr.Err)
			}
		default:
			if tr.Err != nil {
				t.Errorf("trial %d: unexpected failure %v", i, tr.Err)
			}
			if v, ok := Value[int](tr); !ok || v != i {
				t.Errorf("trial %d: payload %v", i, tr.Value)
			}
		}
	}
	// Workers must have exited; allow the runtime a moment to reap them.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}

func TestPanickingAggregateDegrades(t *testing.T) {
	sc := Scenario{
		ID: "AGGPANIC", Family: "test", Claim: "aggregate panics degrade",
		Trials: func(p Params) []TrialSpec {
			return []TrialSpec{{Name: "t0", Run: func(tr *T) (any, error) { return 1, nil }}}
		},
		Aggregate: func(p Params, trials []TrialResult) []*metrics.Table {
			panic("aggregate bug")
		},
	}
	res := Run([]Scenario{sc}, Options{Workers: 2, Params: Params{Seed: 1}})
	if len(res) != 1 || len(res[0].Tables) != 1 {
		t.Fatalf("unexpected results: %+v", res)
	}
	if !strings.Contains(res[0].Tables[0].Title, "AGGREGATION FAILED") {
		t.Errorf("missing degradation table: %q", res[0].Tables[0].Title)
	}
}

func TestOnTrialObservesEveryTrial(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	sc := rngScenario("S1", 20)
	Run([]Scenario{sc}, Options{
		Workers: 4, Params: Params{Seed: 1},
		OnTrial: func(id string, tr TrialResult) {
			mu.Lock()
			seen[fmt.Sprintf("%s/%s", id, tr.Name)]++
			mu.Unlock()
		},
	})
	if len(seen) != 20 {
		t.Errorf("OnTrial saw %d trials, want 20", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("trial %s observed %d times", k, n)
		}
	}
}

func TestEmptyCampaign(t *testing.T) {
	res := Run(nil, Options{Workers: 4, Params: Params{Seed: 1}})
	if len(res) != 0 {
		t.Errorf("expected no results, got %d", len(res))
	}
	sc := Scenario{
		ID: "EMPTY", Family: "test", Claim: "no trials",
		Trials:    func(p Params) []TrialSpec { return nil },
		Aggregate: func(p Params, trials []TrialResult) []*metrics.Table { return nil },
	}
	res = Run([]Scenario{sc}, Options{Workers: 4, Params: Params{Seed: 1}})
	if len(res) != 1 || res[0].Failed != 0 {
		t.Errorf("empty scenario mishandled: %+v", res)
	}
}

func TestMergeSeriesSkipsFailures(t *testing.T) {
	mk := func(v float64) *metrics.Series {
		s := metrics.NewSeries("x")
		s.Add(v)
		return s
	}
	trials := []TrialResult{
		{Name: "a", Value: 1.0},
		{Name: "b", Err: errors.New("boom")},
		{Name: "c", Value: 3.0},
	}
	s := MergeSeries("merged", trials, func(tr TrialResult) *metrics.Series {
		v, _ := Value[float64](tr)
		return mk(v)
	})
	if s.N() != 2 {
		t.Errorf("merged N = %d, want 2", s.N())
	}
	if got := s.Mean(); got != 2.0 {
		t.Errorf("merged mean = %v, want 2", got)
	}
}

func TestBundleShape(t *testing.T) {
	scens := []Scenario{rngScenario("S1", 3)}
	opts := Options{Workers: 2, Params: Params{Seed: 9, Trials: 2}}
	res := Run(scens, opts)
	b := NewBundle(opts, 123*time.Millisecond, res)
	if b.Seed != 9 || b.Workers != 2 || b.Trials != 2 {
		t.Errorf("bundle meta wrong: %+v", b)
	}
	if len(b.Scenarios) != 1 || len(b.Scenarios[0].Trials) != 3 || len(b.Scenarios[0].Tables) != 1 {
		t.Fatalf("bundle shape wrong: %+v", b.Scenarios)
	}
	var sb strings.Builder
	if err := b.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for _, want := range []string{`"seed": 9`, `"scenarios"`, `"tables"`, `"rows"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, sb.String())
		}
	}
}
