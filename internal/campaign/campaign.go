// Package campaign runs deterministic, sharded Monte Carlo
// fault-injection campaigns.
//
// A campaign is a set of Scenarios. Each Scenario declares its trials —
// independent units of work such as "build one deployment, inject one
// fault pattern, simulate, measure" — and an aggregation step that folds
// the per-trial results into metrics tables. The runner (see Run) fans
// trials out across a worker pool; because
//
//   - every trial owns an isolated sim.Kernel (trials never share
//     simulator state),
//   - every trial's random stream is derived by splitting the campaign
//     seed with the scenario ID and trial index (never from a shared
//     generator), and
//   - aggregation folds results in trial-index order after all trials
//     finish,
//
// the aggregated output is byte-identical regardless of worker count or
// scheduling order. A panicking trial fails that trial only: the panic is
// captured into TrialResult.Err and the rest of the campaign proceeds.
package campaign

import (
	"fmt"
	"strings"
	"time"

	"btr/internal/metrics"
	"btr/internal/sim"
)

// Params configures one campaign run. The same Params and scenario set
// always produce the same aggregated tables (see package comment).
type Params struct {
	// Seed is the campaign master seed; every trial seed is split from it.
	Seed uint64
	// Quick requests smaller sweeps (smoke runs, unit tests).
	Quick bool
	// Trials is the Monte Carlo multiplier for randomized scenario
	// families: a family that runs k random trials per sweep point at
	// Trials=1 runs k·Trials at higher settings. Values < 1 mean 1.
	Trials int
}

func (p Params) norm() Params {
	if p.Trials < 1 {
		p.Trials = 1
	}
	return p
}

// T is the per-trial context handed to TrialSpec.Run.
type T struct {
	Params
	Scenario string // owning scenario ID
	Name     string // trial name (stable across runs)
	Index    int    // trial index within the scenario
	seed     uint64
	rng      *sim.RNG
}

// TrialSeed returns the trial's split seed: a deterministic function of
// (campaign seed, scenario ID, trial index) only. Trials that need
// randomness must seed from this (or use RNG), never from shared state,
// so that results do not depend on worker count.
func (t *T) TrialSeed() uint64 { return t.seed }

// RNG returns the trial's private generator, lazily seeded from
// TrialSeed.
func (t *T) RNG() *sim.RNG {
	if t.rng == nil {
		t.rng = sim.NewRNG(t.seed)
	}
	return t.rng
}

// splitSeed derives a trial seed from the campaign seed. The derivation
// (FNV-style fold of the scenario ID, golden-ratio index stride, splitmix64
// finalizer) is part of the campaign format: changing it changes every
// randomized scenario's results.
func splitSeed(campaignSeed uint64, scenario string, index int) uint64 {
	h := campaignSeed ^ 0xcbf29ce484222325
	for i := 0; i < len(scenario); i++ {
		h = (h ^ uint64(scenario[i])) * 1099511628211
	}
	h ^= uint64(index) * 0x9e3779b97f4a7c15
	h += 0x9e3779b97f4a7c15
	z := h
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TrialSpec is one independent unit of work.
type TrialSpec struct {
	Name string
	// Run executes the trial and returns its payload. Returning an error
	// (or panicking) fails this trial only.
	Run func(t *T) (any, error)
}

// TrialResult is the outcome of one trial.
type TrialResult struct {
	Name    string
	Index   int
	Value   any           // payload returned by Run (nil on failure)
	Err     error         // non-nil if the trial errored or panicked
	Elapsed time.Duration // wall time of this trial (diagnostic only;
	// never feed it into Tables, or determinism is lost)
}

// Scenario is a declarative experiment: an enumeration of independent
// trials plus a fold from trial results to result tables.
type Scenario struct {
	ID     string
	Family string // "paper" for E1–E10 reproductions, "campaign" for sweeps
	Claim  string // the claim the scenario tests (printed as the header)

	// Trials enumerates the trial specs for the given parameters. It must
	// be cheap and deterministic in p.
	Trials func(p Params) []TrialSpec

	// Aggregate folds the trial results (index order, one entry per spec,
	// failed trials carry Err) into tables. It must depend only on p and
	// the payloads.
	Aggregate func(p Params, trials []TrialResult) []*metrics.Table
}

// ScenarioResult is one scenario's aggregated outcome.
type ScenarioResult struct {
	ID     string
	Family string
	Claim  string
	Tables []*metrics.Table
	Trials []TrialResult
	Failed int
	// Work is the summed wall time of the scenario's trials (total
	// compute, not elapsed wall clock).
	Work time.Duration
}

// --- aggregation helpers ----------------------------------------------------

// Value extracts a typed payload from a trial result; ok is false for
// failed trials or payloads of a different type.
func Value[P any](tr TrialResult) (P, bool) {
	var zero P
	if tr.Err != nil {
		return zero, false
	}
	v, ok := tr.Value.(P)
	return v, ok
}

// Ok returns the successful trials, preserving index order.
func Ok(trials []TrialResult) []TrialResult {
	out := make([]TrialResult, 0, len(trials))
	for _, tr := range trials {
		if tr.Err == nil {
			out = append(out, tr)
		}
	}
	return out
}

// CountFailed returns the number of failed trials.
func CountFailed(trials []TrialResult) int {
	n := 0
	for _, tr := range trials {
		if tr.Err != nil {
			n++
		}
	}
	return n
}

// MergeSeries folds per-trial series into one metrics.Series, visiting
// trials in index order (the deterministic shard reduction). pick may
// return nil to skip a trial; failed trials are skipped.
func MergeSeries(name string, trials []TrialResult, pick func(TrialResult) *metrics.Series) *metrics.Series {
	out := metrics.NewSeries(name)
	for _, tr := range trials {
		if tr.Err != nil {
			continue
		}
		out.Merge(pick(tr))
	}
	return out
}

// FailNote renders a short per-scenario failure summary suitable for a
// table note, or "" when nothing failed.
func FailNote(trials []TrialResult) string {
	failed := CountFailed(trials)
	if failed == 0 {
		return ""
	}
	for _, tr := range trials {
		if tr.Err != nil {
			return fmt.Sprintf("%d/%d trials failed (first: %s: %v)", failed, len(trials), tr.Name, FirstLine(tr.Err.Error()))
		}
	}
	return ""
}

// FirstLine truncates s at its first newline — the rendering rule for
// multi-line errors (panic stacks) in notes and bundles.
func FirstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}
