package campaign

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"btr/internal/metrics"
)

// Bundle is the machine-readable result of one campaign run: everything a
// downstream consumer (CI trend tracking, plotting, regression diffing)
// needs without reparsing rendered tables. Tables, rows, and trial order
// are deterministic; the *_ms timing fields are diagnostics and vary run
// to run.
type Bundle struct {
	Seed    uint64  `json:"seed"`
	Workers int     `json:"workers"`
	Trials  int     `json:"trials"`
	Quick   bool    `json:"quick"`
	Cores   int     `json:"cores"` // runtime.NumCPU at run time
	WallMS  float64 `json:"wall_ms"`

	Scenarios []ScenarioBundle `json:"scenarios"`
}

// ScenarioBundle is one scenario's share of a Bundle.
type ScenarioBundle struct {
	ID     string        `json:"id"`
	Family string        `json:"family"`
	Claim  string        `json:"claim"`
	Failed int           `json:"failed_trials"`
	WorkMS float64       `json:"work_ms"` // summed trial wall time
	Trials []TrialBundle `json:"trials"`
	Tables []TableBundle `json:"tables"`
}

// TrialBundle is one trial's share of a Bundle.
type TrialBundle struct {
	Name string  `json:"name"`
	OK   bool    `json:"ok"`
	Err  string  `json:"err,omitempty"`
	MS   float64 `json:"ms"`
}

// TableBundle mirrors metrics.Table for JSON output.
type TableBundle struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// NewBundle packages campaign results for serialization.
func NewBundle(opts Options, wall time.Duration, results []ScenarioResult) Bundle {
	p := opts.Params.norm()
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	b := Bundle{
		Seed: p.Seed, Workers: workers, Trials: p.Trials, Quick: p.Quick,
		Cores:  runtime.NumCPU(),
		WallMS: float64(wall.Microseconds()) / 1000,
	}
	for _, r := range results {
		sb := ScenarioBundle{
			ID: r.ID, Family: r.Family, Claim: r.Claim,
			Failed: r.Failed,
			WorkMS: float64(r.Work.Microseconds()) / 1000,
		}
		for _, tr := range r.Trials {
			tb := TrialBundle{
				Name: tr.Name, OK: tr.Err == nil,
				MS: float64(tr.Elapsed.Microseconds()) / 1000,
			}
			if tr.Err != nil {
				tb.Err = FirstLine(tr.Err.Error())
			}
			sb.Trials = append(sb.Trials, tb)
		}
		for _, t := range r.Tables {
			sb.Tables = append(sb.Tables, tableBundle(t))
		}
		b.Scenarios = append(b.Scenarios, sb)
	}
	return b
}

func tableBundle(t *metrics.Table) TableBundle {
	return TableBundle{Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes}
}

// WriteJSON serializes the bundle as indented JSON.
func (b Bundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
