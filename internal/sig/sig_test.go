package sig

import (
	"bytes"
	"testing"
	"testing/quick"

	"btr/internal/network"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	r := NewRegistry(1, 4)
	msg := []byte("pressure=42.1 period=7")
	s := r.Sign(2, msg)
	if !r.Verify(2, msg, s) {
		t.Fatal("valid signature rejected")
	}
}

func TestVerifyWrongSigner(t *testing.T) {
	r := NewRegistry(1, 4)
	msg := []byte("m")
	s := r.Sign(2, msg)
	if r.Verify(3, msg, s) {
		t.Error("signature verified under wrong signer")
	}
}

func TestVerifyTamperedMessage(t *testing.T) {
	r := NewRegistry(1, 4)
	msg := []byte("valve=open")
	s := r.Sign(0, msg)
	msg[0] ^= 0xff
	if r.Verify(0, msg, s) {
		t.Error("tampered message verified")
	}
}

func TestVerifyGarbageSignature(t *testing.T) {
	r := NewRegistry(1, 2)
	if r.Verify(0, []byte("m"), make([]byte, SignatureSize)) {
		t.Error("zero signature verified")
	}
	if r.Verify(0, []byte("m"), []byte("short")) {
		t.Error("short signature verified")
	}
	if r.Verify(-1, []byte("m"), make([]byte, SignatureSize)) {
		t.Error("negative signer verified")
	}
	if r.Verify(99, []byte("m"), make([]byte, SignatureSize)) {
		t.Error("out-of-range signer verified")
	}
}

func TestDeterministicKeys(t *testing.T) {
	a := NewRegistry(42, 3)
	b := NewRegistry(42, 3)
	msg := []byte("deterministic")
	if !bytes.Equal(a.Sign(1, msg), b.Sign(1, msg)) {
		t.Error("same seed produced different keys")
	}
	c := NewRegistry(43, 3)
	if bytes.Equal(a.Sign(1, msg), c.Sign(1, msg)) {
		t.Error("different seeds produced identical keys")
	}
}

func TestCrossRegistryRejection(t *testing.T) {
	// A signature from a different key universe must not verify: models
	// that an adversary cannot mint keys for identities it doesn't hold.
	a := NewRegistry(1, 3)
	b := NewRegistry(2, 3)
	msg := []byte("m")
	if a.Verify(0, msg, b.Sign(0, msg)) {
		t.Error("foreign signature verified")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	r := NewRegistry(1, 3)
	e := r.Seal(1, []byte("body bytes"))
	if !r.Check(e) {
		t.Fatal("sealed envelope failed check")
	}
	enc := e.Encode()
	d, err := DecodeEnvelope(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d.Signer != 1 || !bytes.Equal(d.Body, e.Body) || !bytes.Equal(d.Sig, e.Sig) {
		t.Error("decoded envelope differs")
	}
	if !r.Check(d) {
		t.Error("decoded envelope failed check")
	}
}

func TestEnvelopeDecodeRejectsMalformed(t *testing.T) {
	r := NewRegistry(1, 2)
	enc := r.Seal(0, []byte("x")).Encode()
	cases := map[string][]byte{
		"empty":     {},
		"short":     enc[:4],
		"truncated": enc[:len(enc)-1],
		"trailing":  append(append([]byte{}, enc...), 0),
	}
	for name, b := range cases {
		if _, err := DecodeEnvelope(b); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

func TestEnvelopePropertyRoundTrip(t *testing.T) {
	r := NewRegistry(9, 5)
	f := func(body []byte, signer uint8) bool {
		id := network.NodeID(int(signer) % 5)
		e := r.Seal(id, body)
		d, err := DecodeEnvelope(e.Encode())
		if err != nil {
			return false
		}
		return d.Signer == id && bytes.Equal(d.Body, body) && r.Check(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEquivocationIsPossibleAndDetectable(t *testing.T) {
	// A Byzantine node CAN sign two conflicting statements — that is what
	// commission evidence is built from. Both must verify individually.
	r := NewRegistry(1, 2)
	e1 := r.Seal(0, []byte("out=1 period=5"))
	e2 := r.Seal(0, []byte("out=2 period=5"))
	if !r.Check(e1) || !r.Check(e2) {
		t.Fatal("equivocating signatures should each verify")
	}
	if bytes.Equal(e1.Body, e2.Body) {
		t.Fatal("test setup wrong")
	}
}

func TestDefaultCostsPositive(t *testing.T) {
	c := DefaultCosts()
	if c.Sign <= 0 || c.Verify <= 0 {
		t.Error("costs must be positive")
	}
}

func BenchmarkSign(b *testing.B) {
	r := NewRegistry(1, 1)
	msg := make([]byte, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Sign(0, msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	r := NewRegistry(1, 1)
	msg := make([]byte, 128)
	s := r.Sign(0, msg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Verify(0, msg, s)
	}
}

func TestOperatorSignVerify(t *testing.T) {
	r := NewRegistry(1, 4)
	msg := []byte("epoch 3: members 0,1,2,5")
	s := r.OperatorSign(msg)
	if !r.OperatorVerify(msg, s) {
		t.Fatal("valid operator signature rejected")
	}
	if r.OperatorVerify(append([]byte("x"), msg...), s) {
		t.Fatal("operator signature accepted over a different message")
	}
	if r.OperatorVerify(msg, s[:16]) {
		t.Fatal("truncated operator signature accepted")
	}
	// No node key verifies as the operator: a compromised node must not
	// be able to forge reconfigurations.
	for id := network.NodeID(0); int(id) < 4; id++ {
		if r.OperatorVerify(msg, r.Sign(id, msg)) {
			t.Fatalf("node %d signature accepted as operator", id)
		}
	}
}

func TestOperatorKeyDeterministicAndNodeKeysUnchanged(t *testing.T) {
	a, b := NewRegistry(7, 3), NewRegistry(7, 3)
	msg := []byte("m")
	if !b.OperatorVerify(msg, a.OperatorSign(msg)) {
		t.Fatal("same-seed registries derived different operator keys")
	}
	// A different node count shifts the rng draws, so the operator key
	// differs — but node keys for shared ids must match registries built
	// before the operator key existed (derived strictly after them).
	c := NewRegistry(7, 5)
	if !c.Verify(2, msg, a.Sign(2, msg)) {
		t.Fatal("node keys depend on registry size")
	}
}
