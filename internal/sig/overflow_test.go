package sig

import (
	"strings"
	"testing"
)

// mustPanicMaxBody asserts fn panics with the named MaxBody invariant.
// Pre-guard code silently truncated the uint32 length field instead, so
// this test fails there.
func mustPanicMaxBody(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("oversized body encoded without panicking (length was truncated on the wire)")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant MaxBody") {
			t.Fatalf("panic %v, want named MaxBody invariant", r)
		}
	}()
	fn()
}

// TestEnvelopeEncodeAtBodyBoundary proves the boundary is exact: a
// MaxBody-sized body encodes and round-trips; one more byte panics.
func TestEnvelopeEncodeAtBodyBoundary(t *testing.T) {
	e := Envelope{Signer: 1, Body: make([]byte, MaxBody), Sig: make([]byte, SignatureSize)}
	b := e.AppendTo(make([]byte, 0, e.EncodedSize()))
	got, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatalf("decode at boundary: %v", err)
	}
	if len(got.Body) != MaxBody {
		t.Fatalf("round-tripped body %d, want %d", len(got.Body), MaxBody)
	}

	e.Body = make([]byte, MaxBody+1)
	mustPanicMaxBody(t, func() { e.AppendTo(nil) })
}

// TestDecodeEnvelopeRejectsOversizeLength proves the decode side is
// symmetric: a hand-forged frame claiming a body beyond MaxBody is
// rejected before allocation.
func TestDecodeEnvelopeRejectsOversizeLength(t *testing.T) {
	e := Envelope{Signer: 1, Body: []byte("ok"), Sig: make([]byte, SignatureSize)}
	b := e.Encode()
	b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0x7f // length = 2GiB-ish
	if _, err := DecodeEnvelope(b); err == nil {
		t.Fatal("oversize length accepted")
	}
}

// TestSealedPayloadGuardsBody pins the same invariant on the memoized
// framing path.
func TestSealedPayloadGuardsBody(t *testing.T) {
	r := NewRegistry(1, 2)
	r.UseMemos(nil, nil) // force the framedSeal slow path
	mustPanicMaxBody(t, func() { r.SealedPayload(0, 'D', make([]byte, MaxBody+1)) })
}
