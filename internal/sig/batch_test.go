package sig

import (
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"btr/internal/network"
)

const batchTestNodes = 8

func batchTestRegistry() *Registry {
	r := NewRegistry(0xba7c4, batchTestNodes)
	r.UseMemos(NewVerifyMemo(), nil) // isolated memo: no shared-state bleed
	return r
}

func validBatch(r *Registry, n int, tag string) []Envelope {
	envs := make([]Envelope, n)
	for i := range envs {
		envs[i] = r.Seal(network.NodeID(i%batchTestNodes), []byte(fmt.Sprintf("%s record %d", tag, i)))
	}
	return envs
}

func TestBatchVerifyAcceptsValidRejectsInvalid(t *testing.T) {
	r := batchTestRegistry()
	envs := validBatch(r, 20, "valid")
	pubs := make([]ed25519.PublicKey, len(envs))
	msgs := make([][]byte, len(envs))
	sigs := make([][]byte, len(envs))
	for i, e := range envs {
		pubs[i], msgs[i], sigs[i] = r.pubs[e.Signer], e.Body, e.Sig
	}
	if !BatchVerify(pubs, msgs, sigs) {
		t.Fatalf("BatchVerify rejected an all-valid batch")
	}
	if !BatchVerify(nil, nil, nil) {
		t.Fatalf("BatchVerify rejected the empty batch")
	}
	// Any single corrupted signature must sink the whole batch.
	bad := append([]byte(nil), sigs[7]...)
	bad[3] ^= 0x40
	sigs[7] = bad
	if BatchVerify(pubs, msgs, sigs) {
		t.Fatalf("BatchVerify accepted a batch with one corrupted signature")
	}
	sigs[7] = envs[7].Sig
	// Mismatched slice lengths are malformed, not a panic.
	if BatchVerify(pubs[:3], msgs, sigs) {
		t.Fatalf("BatchVerify accepted mismatched slice lengths")
	}
}

// corruptBatch applies one of the adversarial corruption classes the
// satellite names — corrupted signature bits, wrong signer attribution,
// truncated message, truncated signature — to envelope i of a valid
// batch. Every class is reachable by an adversary rewriting flood
// frames, and on every one of them the batch path must agree with the
// sequential baseline.
func corruptBatch(envs []Envelope, i int, class uint8, bit uint16) {
	e := &envs[i]
	switch class % 4 {
	case 0: // flip a signature bit (if an earlier corruption left any)
		if len(e.Sig) > 0 {
			s := append([]byte(nil), e.Sig...)
			s[int(bit)%len(s)] ^= 1 << (bit % 8)
			e.Sig = s
		}
	case 1: // attribute to a different (real) signer
		e.Signer = (e.Signer + 1 + network.NodeID(bit)%(batchTestNodes-1)) % batchTestNodes
	case 2: // truncate the message
		if len(e.Body) > 0 {
			e.Body = e.Body[:int(bit)%len(e.Body)]
		}
	case 3: // truncate the signature
		if len(e.Sig) > 0 {
			e.Sig = e.Sig[:int(bit)%len(e.Sig)]
		}
	}
}

// TestQuickBatchEquivalentToSequential is the differential property: on
// randomly corrupted batches (mixed valid/invalid, every corruption
// class, random positions), CheckBatch and the frozen sequential
// baseline return identical (index, ok) — and both agree with a
// memo-free sequential sweep, so the memo priming the batch path
// performs is invisible to results.
func TestQuickBatchEquivalentToSequential(t *testing.T) {
	property := func(n uint8, corrupt []uint32) bool {
		size := 1 + int(n)%48
		fast := batchTestRegistry()
		slow := batchTestRegistry()
		cold := batchTestRegistry()
		cold.UseMemos(nil, nil)
		envs := validBatch(fast, size, "quick")
		for _, c := range corrupt {
			corruptBatch(envs, int(c>>16)%size, uint8(c>>8), uint16(c))
		}
		fi, fok := fast.CheckBatch(envs)
		si, sok := slow.CheckBatchSequential(envs)
		ci, cok := cold.CheckBatchSequential(envs)
		if fi != si || fok != sok || fi != ci || fok != cok {
			t.Logf("size=%d corrupt=%v: batch=(%d,%v) sequential=(%d,%v) uncached=(%d,%v)",
				size, corrupt, fi, fok, si, sok, ci, cok)
			return false
		}
		// Re-running against the now-primed memo must not change the verdict.
		fi2, fok2 := fast.CheckBatch(envs)
		return fi2 == fi && fok2 == fok
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckBatchPrimesMemo(t *testing.T) {
	r := batchTestRegistry()
	envs := validBatch(r, 24, "prime")
	if i, ok := r.CheckBatch(envs); !ok {
		t.Fatalf("CheckBatch rejected valid batch at %d", i)
	}
	hits0, _ := r.memo.Stats()
	for _, e := range envs {
		if !r.Check(e) {
			t.Fatalf("memoized Check rejected a batch-verified envelope")
		}
	}
	hits, _ := r.memo.Stats()
	if hits-hits0 != uint64(len(envs)) {
		t.Fatalf("batch verification did not prime the memo: %d hits for %d envelopes", hits-hits0, len(envs))
	}
}

func TestCheckBatchLocatesFirstCulprit(t *testing.T) {
	r := batchTestRegistry()
	envs := validBatch(r, 24, "culprit")
	for _, idx := range []int{0, 11, 23} {
		bad := make([]Envelope, len(envs))
		copy(bad, envs)
		e := bad[idx]
		s := append([]byte(nil), e.Sig...)
		s[0] ^= 1
		bad[idx].Sig = s
		if i, ok := r.CheckBatch(bad); ok || i != idx {
			t.Fatalf("CheckBatch(bad@%d) = (%d, %v), want (%d, false)", idx, i, ok, idx)
		}
	}
}

func TestCheckBatchOutOfRangeSigner(t *testing.T) {
	r := batchTestRegistry()
	envs := validBatch(r, 8, "range")
	envs[5].Signer = batchTestNodes + 3
	if i, ok := r.CheckBatch(envs); ok || i != 5 {
		t.Fatalf("CheckBatch with out-of-range signer = (%d, %v), want (5, false)", i, ok)
	}
}

// TestConcurrentBatchIngest is the -race stress: many goroutines batch-
// verifying overlapping envelope sets against one shared memo, mixed
// with per-envelope Check calls — the shape of concurrent flood ingest
// on live transports (lane workers pre-verify while the executor
// re-checks through the memo).
func TestConcurrentBatchIngest(t *testing.T) {
	r := batchTestRegistry()
	envs := validBatch(r, 64, "stress")
	poison := make([]Envelope, len(envs))
	copy(poison, envs)
	s := append([]byte(nil), poison[31].Sig...)
	s[10] ^= 4
	poison[31].Sig = s

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for it := 0; it < 30; it++ {
				lo := rng.Intn(32)
				hi := lo + 8 + rng.Intn(24)
				if i, ok := r.CheckBatch(envs[lo:hi]); !ok {
					t.Errorf("goroutine %d: valid slice [%d:%d) rejected at %d", g, lo, hi, i)
					return
				}
				if i, ok := r.CheckBatch(poison[lo:hi]); 31 >= lo && 31 < hi {
					if ok || i != 31-lo {
						t.Errorf("goroutine %d: poisoned slice [%d:%d) = (%d,%v)", g, lo, hi, i, ok)
						return
					}
				} else if !ok {
					t.Errorf("goroutine %d: clean poison slice [%d:%d) rejected at %d", g, lo, hi, i)
					return
				}
				if !r.Check(envs[rng.Intn(len(envs))]) {
					t.Errorf("goroutine %d: concurrent Check rejected valid envelope", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMeasureBatchSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	b, s := MeasureBatchSpeedup(16)
	if b <= 0 || s <= 0 {
		t.Fatalf("MeasureBatchSpeedup returned non-positive timings: batch=%v sequential=%v", b, s)
	}
	t.Logf("batch=%.0f ns/op sequential=%.0f ns/op speedup=%.2fx", b, s, s/b)
}

func BenchmarkCheckBatch16(b *testing.B)           { benchCheckBatch(b, 16, true) }
func BenchmarkCheckBatch64(b *testing.B)           { benchCheckBatch(b, 64, true) }
func BenchmarkCheckBatchSequential16(b *testing.B) { benchCheckBatch(b, 16, false) }
func BenchmarkCheckBatchSequential64(b *testing.B) { benchCheckBatch(b, 64, false) }

func benchCheckBatch(b *testing.B, size int, batched bool) {
	r := NewRegistry(0xbb, batchTestNodes)
	r.UseMemos(nil, nil)
	envs := make([]Envelope, size)
	idx := make([]int, size)
	for i := 0; i < size; i++ {
		envs[i] = r.Seal(network.NodeID(i%batchTestNodes), []byte(fmt.Sprintf("bench %d/%d", size, i)))
		idx[i] = i
	}
	if !r.batchVerifyCached(envs, idx) { // warm the per-signer tables
		b.Fatal("batch rejected")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			if !r.batchVerifyCached(envs, idx) {
				b.Fatal("batch rejected")
			}
		} else {
			for j := 0; j < size; j++ {
				if !ed25519.Verify(r.pubs[envs[j].Signer], envs[j].Body, envs[j].Sig) {
					b.Fatal("sequential rejected")
				}
			}
		}
	}
}
