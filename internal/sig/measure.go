package sig

import (
	"fmt"
	"time"

	"btr/internal/network"
)

// MeasureVerifySpeedup times memoized vs uncached verification of a
// realistic envelope working set (the same statements re-checked at every
// node and every flood hop), returning the best-of-3 ns/op for each path.
// The ratio uncachedNs/cachedNs is the machine-independent verify speedup
// BENCH_campaign.json records in its crypto section and cmd/btrcheckbench
// gates with -min-crypto-speedup (acceptance floor: 2x).
func MeasureVerifySpeedup(msgs int) (cachedNsOp, uncachedNsOp float64) {
	if msgs <= 0 {
		msgs = 64
	}
	const nodes = 8
	r := NewRegistry(0xbeef, nodes)
	r.UseMemos(NewVerifyMemo(), nil) // isolated memo: no shared-state bleed
	envs := make([]Envelope, msgs)
	for i := range envs {
		signer := i % nodes
		envs[i] = r.Seal(network.NodeID(signer), []byte(fmt.Sprintf("record %d payload for verify measurement", i)))
	}
	// Warm the memo once so the cached path measures steady state (every
	// envelope already verified somewhere, as on a flood's later hops).
	for _, e := range envs {
		r.Check(e)
	}
	best := func(f func()) float64 {
		b := 0.0
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if s := time.Since(start).Seconds(); b == 0 || s < b {
				b = s
			}
		}
		return b * 1e9 / float64(msgs)
	}
	cachedNsOp = best(func() {
		for _, e := range envs {
			if !r.Check(e) {
				panic("sig: cached verify rejected a valid envelope")
			}
		}
	})
	uncachedNsOp = best(func() {
		for _, e := range envs {
			if !r.VerifyUncached(e.Signer, e.Body, e.Sig) {
				panic("sig: uncached verify rejected a valid envelope")
			}
		}
	})
	return cachedNsOp, uncachedNsOp
}
