package sig

import (
	"fmt"
	"time"

	"btr/internal/network"
)

// MeasureVerifySpeedup times memoized vs uncached verification of a
// realistic envelope working set (the same statements re-checked at every
// node and every flood hop), returning the best-of-3 ns/op for each path.
// The ratio uncachedNs/cachedNs is the machine-independent verify speedup
// BENCH_campaign.json records in its crypto section and cmd/btrcheckbench
// gates with -min-crypto-speedup (acceptance floor: 2x).
func MeasureVerifySpeedup(msgs int) (cachedNsOp, uncachedNsOp float64) {
	if msgs <= 0 {
		msgs = 64
	}
	const nodes = 8
	r := NewRegistry(0xbeef, nodes)
	r.UseMemos(NewVerifyMemo(), nil) // isolated memo: no shared-state bleed
	envs := make([]Envelope, msgs)
	for i := range envs {
		signer := i % nodes
		envs[i] = r.Seal(network.NodeID(signer), []byte(fmt.Sprintf("record %d payload for verify measurement", i)))
	}
	// Warm the memo once so the cached path measures steady state (every
	// envelope already verified somewhere, as on a flood's later hops).
	for _, e := range envs {
		r.Check(e)
	}
	best := func(f func()) float64 {
		b := 0.0
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if s := time.Since(start).Seconds(); b == 0 || s < b {
				b = s
			}
		}
		return b * 1e9 / float64(msgs)
	}
	cachedNsOp = best(func() {
		for _, e := range envs {
			if !r.Check(e) {
				panic("sig: cached verify rejected a valid envelope")
			}
		}
	})
	uncachedNsOp = best(func() {
		for _, e := range envs {
			if !r.VerifyUncached(e.Signer, e.Body, e.Sig) {
				panic("sig: uncached verify rejected a valid envelope")
			}
		}
	})
	return cachedNsOp, uncachedNsOp
}

// MeasureBatchSpeedup times the cofactored batch equation against the
// sequential per-signature sweep over a batch of first-sight envelopes
// (distinct signers and bodies — the memo cannot help either path),
// returning the best-of-3 ns/op for each. The ratio
// sequentialNsOp/batchNsOp is the batch-verify speedup the v8
// `saturation` bench section records and cmd/btrcheckbench gates
// (acceptance floor: 2x at batch >= 16).
func MeasureBatchSpeedup(batch int) (batchNsOp, sequentialNsOp float64) {
	if batch <= 0 {
		batch = 16
	}
	r := NewRegistry(0xfeed, batch)
	r.UseMemos(nil, nil) // both paths measured cold, no memo interference
	envs := make([]Envelope, batch)
	idx := make([]int, batch)
	for i := 0; i < batch; i++ {
		envs[i] = r.Seal(network.NodeID(i), []byte(fmt.Sprintf("saturation batch record %d", i)))
		idx[i] = i
	}
	// Warm the per-signer tables once: steady state is what the flood
	// ingest path sees (tables are built once per registry, batches
	// arrive every period).
	if !r.batchVerifyCached(envs, idx) {
		panic("sig: batch verify rejected a valid batch")
	}
	best := func(f func()) float64 {
		b := 0.0
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if s := time.Since(start).Seconds(); b == 0 || s < b {
				b = s
			}
		}
		return b * 1e9 / float64(batch)
	}
	batchNsOp = best(func() {
		if !r.batchVerifyCached(envs, idx) {
			panic("sig: batch verify rejected a valid batch")
		}
	})
	sequentialNsOp = best(func() {
		for i := 0; i < batch; i++ {
			if !r.VerifyUncached(network.NodeID(i), envs[i].Body, envs[i].Sig) {
				panic("sig: sequential verify rejected a valid envelope")
			}
		}
	})
	return batchNsOp, sequentialNsOp
}
