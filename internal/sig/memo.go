package sig

// Verification and seal memoization — the crypto fast path.
//
// Soundness. ed25519 is deterministic in both directions: for a fixed
// (public key, message, signature) triple, Verify always returns the same
// boolean, and for a fixed (private key, message) pair, Sign always
// returns the same signature. Memoizing these pure functions therefore
// cannot change any result — only the host CPU time spent recomputing
// them. Two further rules keep the memo sound under adversarial input:
//
//   - Positive entries only. A cache hit asserts "this exact triple
//     verified before". Failures are never cached, so garbage signatures
//     pay the full verification price and leave no trace. Statements a
//     Byzantine node *validly signs* (e.g. its endorsement over a bogus
//     blob) can enter the memo — that is useful, not harmful: the same
//     flood frame is checked by every neighbor, and the later checks hit.
//     What bounds the exposure is the shard cap, and what makes eviction
//     safe is that entries only ever accelerate: a flooder churning a
//     shard to its cap costs recomputation time, never correctness, and
//     the per-neighbor rate limit (§4.3) bounds how fast it can churn.
//
//   - Full-triple keys. The key binds the public key, the SHA-256 digest
//     of the message, and the complete 64-byte signature, so a hit can
//     never be confused across signers, messages, or (malleable) signature
//     encodings. Since keys are derived from the registry seed, two
//     registries built from the same seed share keys on purpose: that is
//     what lets campaign trials replaying the same seeded deployment reuse
//     each other's verification work.
//
// The memos are sharded maps behind per-shard RW mutexes — safe for
// concurrent campaign workers — and bounded: a shard that reaches its cap
// is cleared (sound, because entries only ever accelerate).

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

const (
	memoShards     = 64 // power of two; shard = first digest byte & mask
	memoShardMask  = memoShards - 1
	verifyShardCap = 2048 // ~128B/key -> <=16MiB worst case across shards
	sealShardCap   = 256  // entries carry payload bytes; keep small
)

// verifyKey is the full verification triple: signer public key, message
// digest, signature.
type verifyKey struct {
	pub [ed25519.PublicKeySize]byte
	dig [sha256.Size]byte
	sig [ed25519.SignatureSize]byte
}

type verifyShard struct {
	mu sync.RWMutex
	m  map[verifyKey]struct{}
}

// VerifyMemo is a sharded, concurrency-safe, positive-entry-only cache of
// successful ed25519 verifications. The zero value is not usable; call
// NewVerifyMemo.
type VerifyMemo struct {
	shards [memoShards]verifyShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewVerifyMemo returns an empty memo.
func NewVerifyMemo() *VerifyMemo {
	m := &VerifyMemo{}
	for i := range m.shards {
		m.shards[i].m = make(map[verifyKey]struct{})
	}
	return m
}

// Verify checks sig over msg under pub, consulting the memo first. The
// result is identical to ed25519.Verify for every input (see the package
// soundness argument); only repeated successful verifications get cheaper.
func (m *VerifyMemo) Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	var k verifyKey
	copy(k.pub[:], pub)
	k.dig = sha256.Sum256(msg)
	copy(k.sig[:], sig)
	sh := &m.shards[k.dig[0]&memoShardMask]
	sh.mu.RLock()
	_, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		m.hits.Add(1)
		return true
	}
	m.misses.Add(1)
	if !ed25519.Verify(pub, msg, sig) {
		return false // never cached: positive entries only
	}
	sh.mu.Lock()
	if len(sh.m) >= verifyShardCap {
		clear(sh.m) // bounded memory; dropping entries is always sound
	}
	sh.m[k] = struct{}{}
	sh.mu.Unlock()
	return true
}

// Stats returns the cumulative hit/miss counters.
func (m *VerifyMemo) Stats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

// makeVerifyKey builds the full-triple memo key for (pub, msg, sig).
// Callers must have length-checked pub and sig.
func makeVerifyKey(pub ed25519.PublicKey, msg, sig []byte) verifyKey {
	var k verifyKey
	copy(k.pub[:], pub)
	k.dig = sha256.Sum256(msg)
	copy(k.sig[:], sig)
	return k
}

// lookup reports whether the triple is already cached, without verifying
// on a miss. The batch path (batch.go) uses it to split a batch into
// memo hits and the miss set one batch equation covers.
func (m *VerifyMemo) lookup(k verifyKey) bool {
	sh := &m.shards[k.dig[0]&memoShardMask]
	sh.mu.RLock()
	_, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	return ok
}

// insert records a triple that verified outside the memo (as part of a
// successful batch equation). The positive-entries-only rule carries
// over: only accepted triples are ever inserted.
func (m *VerifyMemo) insert(k verifyKey) {
	sh := &m.shards[k.dig[0]&memoShardMask]
	sh.mu.Lock()
	if len(sh.m) >= verifyShardCap {
		clear(sh.m)
	}
	sh.m[k] = struct{}{}
	sh.mu.Unlock()
}

// sealKey identifies a deterministic seal: signer public key, payload
// prefix byte, and message digest.
type sealKey struct {
	pub    [ed25519.PublicKeySize]byte
	prefix byte
	dig    [sha256.Size]byte
}

type sealShard struct {
	mu sync.RWMutex
	m  map[sealKey][]byte
}

// SealMemo caches the fully framed wire bytes of deterministic seals:
// prefix || Envelope{signer, body, Sign(body)}.Encode(). Because ed25519
// signing is deterministic, re-sealing an identical body always yields
// identical bytes, so re-sent payloads (evidence re-floods, bogus-flood
// blobs, replayed campaign trials) become a shared-slice lookup. Callers
// must treat returned slices as immutable — they are shared.
type SealMemo struct {
	shards [memoShards]sealShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewSealMemo returns an empty memo.
func NewSealMemo() *SealMemo {
	m := &SealMemo{}
	for i := range m.shards {
		m.shards[i].m = make(map[sealKey][]byte)
	}
	return m
}

// payload consults the memo for the framed seal of body by (priv, pub);
// on a miss it signs, frames, and caches. The returned slice is shared
// and must not be mutated.
func (m *SealMemo) payload(priv ed25519.PrivateKey, pub ed25519.PublicKey, signer uint32, prefix byte, body []byte) []byte {
	var k sealKey
	copy(k.pub[:], pub)
	k.prefix = prefix
	k.dig = sha256.Sum256(body)
	sh := &m.shards[k.dig[0]&memoShardMask]
	sh.mu.RLock()
	p, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		m.hits.Add(1)
		return p
	}
	m.misses.Add(1)
	p = framedSeal(priv, signer, prefix, body)
	sh.mu.Lock()
	if len(sh.m) >= sealShardCap {
		clear(sh.m)
	}
	sh.m[k] = p
	sh.mu.Unlock()
	return p
}

// framedSeal builds prefix || Envelope.Encode() in one exact-size
// allocation. It shares Envelope.AppendTo's length invariant: a body
// longer than MaxBody cannot round-trip and panics instead of
// truncating.
func framedSeal(priv ed25519.PrivateKey, signer uint32, prefix byte, body []byte) []byte {
	if len(body) > MaxBody {
		panic(fmt.Sprintf("sig: invariant MaxBody violated: body %d > %d", len(body), MaxBody))
	}
	p := make([]byte, 1+8+len(body)+ed25519.SignatureSize)
	p[0] = prefix
	binary.LittleEndian.PutUint32(p[1:], signer)
	binary.LittleEndian.PutUint32(p[5:], uint32(len(body)))
	copy(p[9:], body)
	copy(p[9+len(body):], ed25519.Sign(priv, body))
	return p
}

// Stats returns the cumulative hit/miss counters.
func (m *SealMemo) Stats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

// --- process-shared instances ----------------------------------------------

var (
	sharedVerify = NewVerifyMemo()
	sharedSeal   = NewSealMemo()
	memosEnabled atomic.Bool
)

func init() { memosEnabled.Store(true) }

// SharedVerifyMemo returns the process-wide verification memo every
// registry uses by default. Campaign workers running trials built from
// the same seed share verification work through it.
func SharedVerifyMemo() *VerifyMemo { return sharedVerify }

// SharedSealMemo returns the process-wide seal memo (see SharedVerifyMemo).
func SharedSealMemo() *SealMemo { return sharedSeal }

// ResetMemos drops every entry from the shared memos (the hit/miss
// counters keep accumulating). It is a measurement hook — timed runs
// that must start cold (e.g. the serial vs workers=4 pair in the bench
// bundle) call it so one run's warmth cannot leak into the next — and is
// not safe to call concurrently with a benchmark being timed.
func ResetMemos() {
	for i := range sharedVerify.shards {
		sh := &sharedVerify.shards[i]
		sh.mu.Lock()
		clear(sh.m)
		sh.mu.Unlock()
	}
	for i := range sharedSeal.shards {
		sh := &sharedSeal.shards[i]
		sh.mu.Lock()
		clear(sh.m)
		sh.mu.Unlock()
	}
}

// SetMemos enables or disables memo attachment for subsequently
// constructed registries and returns the previous setting. Existing
// registries are unaffected. This is a measurement hook (cached vs
// uncached campaign walls in BENCH_campaign.json), not a tuning knob:
// results are identical either way.
func SetMemos(enabled bool) bool { return memosEnabled.Swap(enabled) }

// MemoStats sums the shared memos' counters: verification and seal
// hit/miss totals since process start.
func MemoStats() (verifyHits, verifyMisses, sealHits, sealMisses uint64) {
	verifyHits, verifyMisses = sharedVerify.Stats()
	sealHits, sealMisses = sharedSeal.Stats()
	return verifyHits, verifyMisses, sealHits, sealMisses
}
