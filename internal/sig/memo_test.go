package sig

import (
	"crypto/ed25519"
	"sync"
	"testing"
	"testing/quick"

	"btr/internal/network"
)

// twoRegistries returns two same-seed registries: memoized and memo-free.
// Same seed means identical keys — the cross-trial sharing case.
func twoRegistries(t *testing.T, seed uint64, n int) (memoized, plain *Registry) {
	t.Helper()
	memoized = NewRegistry(seed, n)
	memoized.UseMemos(NewVerifyMemo(), NewSealMemo())
	plain = NewRegistry(seed, n)
	plain.UseMemos(nil, nil)
	return memoized, plain
}

// TestVerifyMemoDifferential is the memoization soundness property: for
// adversarially mangled inputs — corrupted signatures, wrong signers,
// truncated and extended messages, wrong-length signatures — the
// memoized and unmemoized verification paths return identical
// accept/reject decisions. Each case is checked twice so the second pass
// exercises any entry the first pass cached.
func TestVerifyMemoDifferential(t *testing.T) {
	const nodes = 4
	memoized, plain := twoRegistries(t, 7, nodes)
	check := func(id network.NodeID, msg, sig []byte) bool {
		want := plain.Verify(id, msg, sig)
		for pass := 0; pass < 2; pass++ {
			if got := memoized.Verify(id, msg, sig); got != want {
				t.Logf("id=%d pass=%d: memoized=%v unmemoized=%v", id, pass, got, want)
				return false
			}
		}
		return true
	}
	f := func(msg []byte, signer uint8, mutate uint8, at uint8) bool {
		id := network.NodeID(signer % nodes)
		s := memoized.Sign(id, msg)
		switch mutate % 6 {
		case 0: // pristine
		case 1: // corrupted signature byte
			s[int(at)%len(s)] ^= 0x40
		case 2: // wrong signer
			id = (id + 1) % nodes
		case 3: // truncated message
			if len(msg) > 0 {
				msg = msg[:int(at)%len(msg)]
			}
		case 4: // extended message
			msg = append(append([]byte{}, msg...), at)
		case 5: // truncated signature (wrong length)
			s = s[:ed25519.SignatureSize-1-int(at)%8]
		}
		return check(id, msg, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSealedPayloadDeterministic: the seal memo returns byte-identical
// payloads to a fresh seal+frame, across repeats and across same-seed
// registries (the campaign-worker sharing case).
func TestSealedPayloadDeterministic(t *testing.T) {
	memoized, plain := twoRegistries(t, 11, 3)
	body := []byte("some evidence blob")
	want := append([]byte{0xE5}, plain.Seal(1, body).Encode()...)
	for i := 0; i < 3; i++ {
		got := memoized.SealedPayload(1, 0xE5, body)
		if string(got) != string(want) {
			t.Fatalf("pass %d: SealedPayload diverges from fresh seal+frame", i)
		}
	}
	// A different prefix must not collide with the cached entry.
	got := memoized.SealedPayload(1, 0xD7, body)
	if got[0] != 0xD7 || string(got[1:]) != string(want[1:]) {
		t.Fatal("prefix not honored by seal memo")
	}
	// The payload round-trips as a well-formed envelope.
	env, err := DecodeEnvelope(want[1:])
	if err != nil || !plain.Check(env) || env.Signer != 1 {
		t.Fatalf("framed seal does not round-trip: %v", err)
	}
}

// TestVerifyMemoPositiveOnly: failed verifications must not populate the
// memo (an adversary spraying garbage grows nothing).
func TestVerifyMemoPositiveOnly(t *testing.T) {
	r := NewRegistry(3, 2)
	m := NewVerifyMemo()
	r.UseMemos(m, nil)
	msg := []byte("m")
	bad := make([]byte, ed25519.SignatureSize)
	for i := 0; i < 10; i++ {
		bad[0] = byte(i)
		if r.Verify(0, msg, bad) {
			t.Fatal("garbage signature verified")
		}
	}
	for i := range m.shards {
		if n := len(m.shards[i].m); n != 0 {
			t.Fatalf("shard %d holds %d entries after failures only", i, n)
		}
	}
	if hits, _ := m.Stats(); hits != 0 {
		t.Fatalf("hits = %d for failures only", hits)
	}
}

// TestVerifyMemoBounded: a shard that reaches its cap is cleared, and
// correctness is unaffected.
func TestVerifyMemoBounded(t *testing.T) {
	r := NewRegistry(5, 1)
	m := NewVerifyMemo()
	r.UseMemos(m, nil)
	msg := make([]byte, 8)
	for i := 0; i < 3*verifyShardCap; i++ {
		for j := 0; j < 8; j++ {
			msg[j] = byte(i >> (8 * j))
		}
		if !r.Verify(0, msg, r.Sign(0, msg)) {
			t.Fatalf("valid signature rejected at %d", i)
		}
	}
	for i := range m.shards {
		if n := len(m.shards[i].m); n > verifyShardCap {
			t.Fatalf("shard %d grew to %d > cap %d", i, n, verifyShardCap)
		}
	}
}

// TestSharedMemoConcurrentWorkers is the -race stress test of the shared
// memo under concurrent campaign workers: several goroutines, each with
// its own same-seed registry (as campaign trials have), hammer one memo
// pair with overlapping valid and invalid triples; every decision must
// match the memo-free path.
func TestSharedMemoConcurrentWorkers(t *testing.T) {
	const (
		workers = 8
		nodes   = 4
		msgs    = 200
	)
	vm, sm := NewVerifyMemo(), NewSealMemo()
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			reg := NewRegistry(99, nodes) // same seed: shared keys on purpose
			reg.UseMemos(vm, sm)
			plain := NewRegistry(99, nodes)
			plain.UseMemos(nil, nil)
			msg := make([]byte, 16)
			for i := 0; i < msgs; i++ {
				msg[0], msg[1], msg[2] = byte(i), byte(i>>8), byte(w%2) // overlap across workers
				id := network.NodeID(i % nodes)
				s := reg.Sign(id, msg)
				if i%3 == 0 {
					s[10] ^= 0xFF // invalid: must never hit a positive entry
				}
				if got, want := reg.Verify(id, msg, s), plain.Verify(id, msg, s); got != want {
					errs <- "memoized verify diverged under concurrency"
					return
				}
				p := reg.SealedPayload(id, 'E', msg)
				if env, err := DecodeEnvelope(p[1:]); err != nil || !plain.Check(env) {
					errs <- "concurrent sealed payload malformed"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestResetMemos: entries are dropped, correctness is unaffected, and
// the counters keep accumulating.
func TestResetMemos(t *testing.T) {
	prev := SetMemos(true)
	defer SetMemos(prev)
	r := NewRegistry(13, 2) // attaches the shared memos
	env := r.Seal(0, []byte("payload"))
	if !r.Check(env) || !r.Check(env) {
		t.Fatal("valid envelope rejected")
	}
	h0, m0, _, _ := MemoStats()
	ResetMemos()
	if !r.Check(env) { // re-verifies (miss), then works as before
		t.Fatal("valid envelope rejected after reset")
	}
	h1, m1, _, _ := MemoStats()
	if h1 < h0 || m1 <= m0 {
		t.Fatalf("counters went backwards or no miss recorded: hits %d->%d misses %d->%d", h0, h1, m0, m1)
	}
}

// TestCheckBatch: all-valid returns (-1,true); the index of the first
// invalid envelope is reported otherwise.
func TestCheckBatch(t *testing.T) {
	r := NewRegistry(1, 3)
	envs := []Envelope{r.Seal(0, []byte("a")), r.Seal(1, []byte("b")), r.Seal(2, []byte("c"))}
	if i, ok := r.CheckBatch(envs); !ok || i != -1 {
		t.Fatalf("valid batch rejected (i=%d ok=%v)", i, ok)
	}
	envs[1].Sig[0] ^= 1
	if i, ok := r.CheckBatch(envs); ok || i != 1 {
		t.Fatalf("corrupt batch: got (i=%d ok=%v), want (1,false)", i, ok)
	}
	if i, ok := r.CheckBatch(nil); !ok || i != -1 {
		t.Fatalf("empty batch: got (i=%d ok=%v)", i, ok)
	}
}

// TestSetMemos: registries built while memos are disabled run uncached
// (and still verify correctly).
func TestSetMemos(t *testing.T) {
	prev := SetMemos(false)
	defer SetMemos(prev)
	r := NewRegistry(1, 2)
	if r.memo != nil || r.seals != nil {
		t.Fatal("memos attached while disabled")
	}
	env := r.Seal(0, []byte("x"))
	if !r.Check(env) {
		t.Fatal("uncached registry rejects its own seal")
	}
	p := r.SealedPayload(0, 'E', []byte("x"))
	if env2, err := DecodeEnvelope(p[1:]); err != nil || !r.Check(env2) {
		t.Fatal("uncached SealedPayload malformed")
	}
}
