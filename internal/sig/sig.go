// Package sig provides the cryptographic substrate BTR's evidence relies
// on: every node holds an ed25519 keypair, every dataflow output and every
// piece of evidence is signed, and any node can verify any other node's
// signatures. The Byzantine adversary controls compromised nodes' behavior
// but not other nodes' private keys, so evidence built from signed
// statements is self-certifying (§4.2 of the paper).
//
// Because BTR schedules crypto alongside the workload ("there are no extra
// resources for BTR", §4.1), the package also exposes a CostModel charging
// virtual CPU time for sign/verify operations.
package sig

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"

	"btr/internal/network"
	"btr/internal/sim"
)

// CostModel gives the virtual CPU time consumed by crypto operations.
// Defaults approximate an embedded-class CPU (the paper notes CPS CPUs are
// "far less powerful than CPUs in servers").
type CostModel struct {
	Sign   sim.Time
	Verify sim.Time
}

// DefaultCosts is a plausible embedded-CPU cost model.
func DefaultCosts() CostModel {
	return CostModel{Sign: 200 * sim.Microsecond, Verify: 400 * sim.Microsecond}
}

// Registry maps node IDs to keypairs. Keys are derived deterministically
// from a seed so simulations are reproducible.
type Registry struct {
	privs []ed25519.PrivateKey
	pubs  []ed25519.PublicKey
	Costs CostModel
}

// NewRegistry creates keypairs for nodes 0..n-1, derived from seed.
func NewRegistry(seed uint64, n int) *Registry {
	r := &Registry{
		privs: make([]ed25519.PrivateKey, n),
		pubs:  make([]ed25519.PublicKey, n),
		Costs: DefaultCosts(),
	}
	rng := sim.NewRNG(seed ^ 0x5167_5167_5167_5167)
	for i := 0; i < n; i++ {
		var kseed [ed25519.SeedSize]byte
		for j := 0; j < ed25519.SeedSize; j += 8 {
			binary.LittleEndian.PutUint64(kseed[j:], rng.Uint64())
		}
		r.privs[i] = ed25519.NewKeyFromSeed(kseed[:])
		r.pubs[i] = r.privs[i].Public().(ed25519.PublicKey)
	}
	return r
}

// N returns the number of registered nodes.
func (r *Registry) N() int { return len(r.pubs) }

// Sign returns id's signature over msg. Only the simulation harness calls
// this on behalf of a node; the adversary "owns" compromised nodes' keys,
// which is exactly the Byzantine model.
func (r *Registry) Sign(id network.NodeID, msg []byte) []byte {
	return ed25519.Sign(r.privs[id], msg)
}

// Verify reports whether sig is id's valid signature over msg.
func (r *Registry) Verify(id network.NodeID, msg, sig []byte) bool {
	if int(id) < 0 || int(id) >= len(r.pubs) || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(r.pubs[id], msg, sig)
}

// SignatureSize is the wire size of a signature.
const SignatureSize = ed25519.SignatureSize

// Envelope is a signed statement: Signer attests to Body. Envelopes are
// the unit from which both dataflow messages and evidence are built.
type Envelope struct {
	Signer network.NodeID
	Body   []byte
	Sig    []byte
}

// Seal signs body as signer and returns the envelope.
func (r *Registry) Seal(signer network.NodeID, body []byte) Envelope {
	return Envelope{Signer: signer, Body: body, Sig: r.Sign(signer, body)}
}

// Check verifies the envelope's signature.
func (r *Registry) Check(e Envelope) bool {
	return r.Verify(e.Signer, e.Body, e.Sig)
}

var errTruncated = errors.New("sig: truncated envelope")

// Encode serializes the envelope: signer(4) | len(4) | body | sig(64).
func (e Envelope) Encode() []byte {
	out := make([]byte, 8+len(e.Body)+len(e.Sig))
	binary.LittleEndian.PutUint32(out[0:], uint32(e.Signer))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(e.Body)))
	copy(out[8:], e.Body)
	copy(out[8+len(e.Body):], e.Sig)
	return out
}

// DecodeEnvelope parses an encoded envelope. It is strict: trailing bytes
// or a short signature are errors, so malformed (possibly adversarial)
// input is rejected cheaply before any signature check.
func DecodeEnvelope(b []byte) (Envelope, error) {
	if len(b) < 8 {
		return Envelope{}, errTruncated
	}
	signer := network.NodeID(binary.LittleEndian.Uint32(b[0:]))
	n := int(binary.LittleEndian.Uint32(b[4:]))
	if n < 0 || len(b) != 8+n+SignatureSize {
		return Envelope{}, fmt.Errorf("sig: bad envelope framing (body %d, total %d)", n, len(b))
	}
	body := make([]byte, n)
	copy(body, b[8:8+n])
	s := make([]byte, SignatureSize)
	copy(s, b[8+n:])
	return Envelope{Signer: signer, Body: body, Sig: s}, nil
}
