// Package sig provides the cryptographic substrate BTR's evidence relies
// on: every node holds an ed25519 keypair, every dataflow output and every
// piece of evidence is signed, and any node can verify any other node's
// signatures. The Byzantine adversary controls compromised nodes' behavior
// but not other nodes' private keys, so evidence built from signed
// statements is self-certifying (§4.2 of the paper).
//
// Because BTR schedules crypto alongside the workload ("there are no extra
// resources for BTR", §4.1), the package also exposes a CostModel charging
// virtual CPU time for sign/verify operations. The CostModel is the
// simulated price and never changes; the *host* price is cut by the
// verification/seal memos in memo.go, which exploit ed25519's determinism
// to make Verify a memoized pure function (see memo.go for the soundness
// argument: positive-only entries keyed by the full signer/digest/signature
// triple).
package sig

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"btr/internal/network"
	edwards "btr/internal/sig/edwards25519"
	"btr/internal/sim"
)

// CostModel gives the virtual CPU time consumed by crypto operations.
// Defaults approximate an embedded-class CPU (the paper notes CPS CPUs are
// "far less powerful than CPUs in servers").
type CostModel struct {
	Sign   sim.Time
	Verify sim.Time
}

// DefaultCosts is a plausible embedded-CPU cost model.
func DefaultCosts() CostModel {
	return CostModel{Sign: 200 * sim.Microsecond, Verify: 400 * sim.Microsecond}
}

// Registry maps node IDs to keypairs. Keys are derived deterministically
// from a seed so simulations are reproducible.
type Registry struct {
	privs []ed25519.PrivateKey
	pubs  []ed25519.PublicKey
	Costs CostModel
	// memo / seals are the crypto fast path (nil = always recompute).
	// They default to the process-shared instances so concurrent campaign
	// workers replaying same-seed deployments reuse each other's work.
	memo  *VerifyMemo
	seals *SealMemo
	// opPriv/opPub is the operator (configuration-authority) keypair:
	// membership epoch records (internal/member) are signed with it, so
	// compromised nodes cannot forge reconfigurations. The adversary
	// controls node keys of compromised nodes, never the operator key.
	opPriv ed25519.PrivateKey
	opPub  ed25519.PublicKey
	// btabs lazily caches each node key's decompressed point as a
	// precomputed NAF table for the batch-verification equation
	// (batch.go). Built at most once per node per registry; a racing
	// double build is harmless (both results are identical).
	btabs []atomic.Pointer[edwards.AffineNafTable]
}

// NewRegistry creates keypairs for nodes 0..n-1, derived from seed.
func NewRegistry(seed uint64, n int) *Registry {
	r := &Registry{
		privs: make([]ed25519.PrivateKey, n),
		pubs:  make([]ed25519.PublicKey, n),
		btabs: make([]atomic.Pointer[edwards.AffineNafTable], n),
		Costs: DefaultCosts(),
	}
	if memosEnabled.Load() {
		r.memo, r.seals = sharedVerify, sharedSeal
	}
	rng := sim.NewRNG(seed ^ 0x5167_5167_5167_5167)
	for i := 0; i < n; i++ {
		var kseed [ed25519.SeedSize]byte
		for j := 0; j < ed25519.SeedSize; j += 8 {
			binary.LittleEndian.PutUint64(kseed[j:], rng.Uint64())
		}
		r.privs[i] = ed25519.NewKeyFromSeed(kseed[:])
		r.pubs[i] = r.privs[i].Public().(ed25519.PublicKey)
	}
	// The operator key is drawn after every node key so adding it did not
	// disturb the node keys any historical seed derives.
	var oseed [ed25519.SeedSize]byte
	for j := 0; j < ed25519.SeedSize; j += 8 {
		binary.LittleEndian.PutUint64(oseed[j:], rng.Uint64())
	}
	r.opPriv = ed25519.NewKeyFromSeed(oseed[:])
	r.opPub = r.opPriv.Public().(ed25519.PublicKey)
	return r
}

// OperatorSign returns the operator key's signature over msg. Only the
// deployment harness (the configuration authority proposing membership
// epochs) calls this; nodes hold the public half only.
func (r *Registry) OperatorSign(msg []byte) []byte {
	return ed25519.Sign(r.opPriv, msg)
}

// OperatorVerify reports whether sig is the operator's valid signature
// over msg. Verification goes through the shared memo like node-key
// verification (ed25519 is deterministic, so the memo stays sound).
func (r *Registry) OperatorVerify(msg, sig []byte) bool {
	if len(sig) != ed25519.SignatureSize {
		return false
	}
	if r.memo != nil {
		return r.memo.Verify(r.opPub, msg, sig)
	}
	return ed25519.Verify(r.opPub, msg, sig)
}

// UseMemos overrides the registry's memos (nil disables caching). Tests
// and benchmarks use it to isolate or freeze the cache; production code
// keeps the shared defaults.
func (r *Registry) UseMemos(v *VerifyMemo, s *SealMemo) {
	r.memo, r.seals = v, s
}

// N returns the number of registered nodes.
func (r *Registry) N() int { return len(r.pubs) }

// Sign returns id's signature over msg. Only the simulation harness calls
// this on behalf of a node; the adversary "owns" compromised nodes' keys,
// which is exactly the Byzantine model.
func (r *Registry) Sign(id network.NodeID, msg []byte) []byte {
	return ed25519.Sign(r.privs[id], msg)
}

// Verify reports whether sig is id's valid signature over msg. Repeated
// verifications of the same triple hit the memo (memo.go) and skip the
// ed25519 math; the result is identical either way.
func (r *Registry) Verify(id network.NodeID, msg, sig []byte) bool {
	if int(id) < 0 || int(id) >= len(r.pubs) || len(sig) != ed25519.SignatureSize {
		return false
	}
	if r.memo != nil {
		return r.memo.Verify(r.pubs[id], msg, sig)
	}
	return ed25519.Verify(r.pubs[id], msg, sig)
}

// VerifyUncached is the memo-free verification path — the frozen baseline
// the cached-vs-uncached benchmarks compare against. Behavior is
// identical to Verify.
func (r *Registry) VerifyUncached(id network.NodeID, msg, sig []byte) bool {
	if int(id) < 0 || int(id) >= len(r.pubs) || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(r.pubs[id], msg, sig)
}

// SignatureSize is the wire size of a signature.
const SignatureSize = ed25519.SignatureSize

// Envelope is a signed statement: Signer attests to Body. Envelopes are
// the unit from which both dataflow messages and evidence are built.
type Envelope struct {
	Signer network.NodeID
	Body   []byte
	Sig    []byte
}

// Seal signs body as signer and returns the envelope.
func (r *Registry) Seal(signer network.NodeID, body []byte) Envelope {
	return Envelope{Signer: signer, Body: body, Sig: r.Sign(signer, body)}
}

// Check verifies the envelope's signature.
func (r *Registry) Check(e Envelope) bool {
	return r.Verify(e.Signer, e.Body, e.Sig)
}

// SealedPayload returns prefix || Seal(signer, body).Encode() — the framed
// wire form transport code sends — through the seal memo: re-sealing an
// identical (signer, prefix, body) yields the same cached slice with zero
// allocations. The returned slice is shared; callers must not mutate it.
func (r *Registry) SealedPayload(signer network.NodeID, prefix byte, body []byte) []byte {
	if r.seals != nil {
		return r.seals.payload(r.privs[signer], r.pubs[signer], uint32(signer), prefix, body)
	}
	return framedSeal(r.privs[signer], uint32(signer), prefix, body)
}

var errTruncated = errors.New("sig: truncated envelope")

// MaxBody caps an envelope body on the wire. The length field is a
// uint32, so the hard format limit is 4GiB, but no legitimate BTR
// payload (task outputs, evidence, membership records) comes within
// orders of magnitude of 16MiB — a larger body is a programming error
// upstream, and capping well below the field width makes the invariant
// testable. AppendTo enforces it as an invariant (the earlier behavior
// silently truncated the length through uint32(...), emitting a frame
// that fails decode as a framing or signature mismatch at the receiver);
// DecodeEnvelope rejects it symmetrically before allocating.
const MaxBody = 16 << 20

// Encode serializes the envelope: signer(4) | len(4) | body | sig(64).
func (e Envelope) Encode() []byte {
	return e.AppendTo(make([]byte, 0, e.EncodedSize()))
}

// EncodedSize returns len(Encode()) without encoding.
func (e Envelope) EncodedSize() int { return 8 + len(e.Body) + len(e.Sig) }

// AppendTo appends the envelope's encoding to dst and returns the
// extended slice — the zero-alloc building block hot marshaling paths use
// with preallocated or pooled buffers. A body longer than MaxBody panics
// (invariant MaxBody) instead of truncating the length field on the
// wire.
func (e Envelope) AppendTo(dst []byte) []byte {
	if len(e.Body) > MaxBody {
		panic(fmt.Sprintf("sig: invariant MaxBody violated: body %d > %d", len(e.Body), MaxBody))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Signer))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Body)))
	dst = append(dst, e.Body...)
	return append(dst, e.Sig...)
}

// DecodeEnvelope parses an encoded envelope. It is strict: trailing bytes
// or a short signature are errors, so malformed (possibly adversarial)
// input is rejected cheaply before any signature check.
func DecodeEnvelope(b []byte) (Envelope, error) {
	if len(b) < 8 {
		return Envelope{}, errTruncated
	}
	signer := network.NodeID(binary.LittleEndian.Uint32(b[0:]))
	n := int(binary.LittleEndian.Uint32(b[4:]))
	if n < 0 || n > MaxBody || len(b) != 8+n+SignatureSize {
		return Envelope{}, fmt.Errorf("sig: bad envelope framing (body %d, total %d)", n, len(b))
	}
	body := make([]byte, n)
	copy(body, b[8:8+n])
	s := make([]byte, SignatureSize)
	copy(s, b[8+n:])
	return Envelope{Signer: signer, Body: body, Sig: s}, nil
}
