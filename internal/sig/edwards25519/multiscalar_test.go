package edwards25519

import (
	"crypto/sha512"
	"testing"
)

func testScalar(t *testing.T, seed byte) *Scalar {
	t.Helper()
	var raw [64]byte
	for i := range raw {
		raw[i] = seed ^ byte(i*37)
	}
	h := sha512.Sum512(raw[:])
	s, err := NewScalar().SetUniformBytes(h[:])
	if err != nil {
		t.Fatalf("SetUniformBytes: %v", err)
	}
	return s
}

func TestVarTimeMultiScalarMultMatchesSingle(t *testing.T) {
	a := testScalar(t, 1)
	b := testScalar(t, 2)
	B := NewGeneratorPoint()
	P := new(Point).ScalarBaseMult(testScalar(t, 3))

	// a*B via the constant-time single-base path.
	want := new(Point).ScalarBaseMult(a)
	got := new(Point).VarTimeMultiScalarMult([]*Scalar{a}, []*Point{B})
	if want.Equal(got) != 1 {
		t.Fatalf("VarTimeMultiScalarMult([a],[B]) != ScalarBaseMult(a)")
	}

	// a*B + b*P against the var-time double-scalar path.
	want = new(Point).VarTimeDoubleScalarBaseMult(b, P, a)
	got = new(Point).VarTimeMultiScalarMult([]*Scalar{a, b}, []*Point{B, P})
	if want.Equal(got) != 1 {
		t.Fatalf("VarTimeMultiScalarMult([a,b],[B,P]) != aB+bP")
	}

	// Wider joint: sum of k single multiplications.
	scalars := []*Scalar{testScalar(t, 9), testScalar(t, 10), testScalar(t, 11), testScalar(t, 12)}
	points := []*Point{B, P, new(Point).ScalarBaseMult(testScalar(t, 13)), new(Point).ScalarBaseMult(testScalar(t, 14))}
	sum := NewIdentityPoint()
	for i := range scalars {
		sum.Add(sum, new(Point).ScalarMult(scalars[i], points[i]))
	}
	got = new(Point).VarTimeMultiScalarMult(scalars, points)
	if sum.Equal(got) != 1 {
		t.Fatalf("VarTimeMultiScalarMult over 4 points != sum of ScalarMult")
	}
}

func TestVarTimeBatchMultMatchesGeneric(t *testing.T) {
	base := testScalar(t, 20)
	fresh := []*Scalar{testScalar(t, 21), testScalar(t, 22)}
	freshPts := []*Point{new(Point).ScalarBaseMult(testScalar(t, 23)), new(Point).ScalarBaseMult(testScalar(t, 24))}
	fixed := []*Scalar{testScalar(t, 25), testScalar(t, 26)}
	fixedPts := []*Point{new(Point).ScalarBaseMult(testScalar(t, 27)), new(Point).ScalarBaseMult(testScalar(t, 28))}
	tables := []*AffineNafTable{NewAffineNafTable(fixedPts[0]), NewAffineNafTable(fixedPts[1])}

	scalars := append(append([]*Scalar{base}, fresh...), fixed...)
	points := append(append([]*Point{NewGeneratorPoint()}, freshPts...), fixedPts...)
	want := new(Point).VarTimeMultiScalarMult(scalars, points)
	got := new(Point).VarTimeBatchMult(base, fresh, freshPts, fixed, tables)
	if want.Equal(got) != 1 {
		t.Fatalf("VarTimeBatchMult != VarTimeMultiScalarMult on the same combination")
	}

	// Degenerate shapes: no fresh terms, no fixed terms.
	want = new(Point).ScalarBaseMult(base)
	got = new(Point).VarTimeBatchMult(base, nil, nil, nil, nil)
	if want.Equal(got) != 1 {
		t.Fatalf("VarTimeBatchMult(base only) != ScalarBaseMult(base)")
	}
}

func TestMultByCofactor(t *testing.T) {
	p := new(Point).ScalarBaseMult(testScalar(t, 5))
	want := NewIdentityPoint()
	for i := 0; i < 8; i++ {
		want.Add(want, p)
	}
	got := new(Point).MultByCofactor(p)
	if want.Equal(got) != 1 {
		t.Fatalf("MultByCofactor(p) != 8p")
	}
	if new(Point).MultByCofactor(NewIdentityPoint()).Equal(NewIdentityPoint()) != 1 {
		t.Fatalf("MultByCofactor(identity) != identity")
	}
}
