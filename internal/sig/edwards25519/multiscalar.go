// Copyright (c) 2021 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package edwards25519

// This file extends the vendored package with the two operations the
// upstream copy lacks but batch verification needs: a variable-time
// multi-scalar multiplication (interleaved width-5 NAF Straus, the same
// shape as filippo.io/edwards25519) and multiplication by the curve
// cofactor. Variable-time is fine here: batch verification handles only
// public data (public keys, signatures, message hashes).

// VarTimeMultiScalarMult sets v = sum(scalars[i] * points[i]), and
// returns v. Execution time depends on the inputs, so it must be used
// only with public scalars and points.
//
// Both slices must have the same length, and the points must be
// initialized (the zero Point is not the identity; use
// NewIdentityPoint).
func (v *Point) VarTimeMultiScalarMult(scalars []*Scalar, points []*Point) *Point {
	if len(scalars) != len(points) {
		panic("edwards25519: called VarTimeMultiScalarMult with different size inputs")
	}
	checkInitialized(points...)

	// Proceed as in the single-base VarTimeDoubleScalarBaseMult, but
	// over the joint 255-bit window: one shared doubling per bit, one
	// table addition per non-zero NAF digit of any scalar.
	nafs := make([][256]int8, len(scalars))
	tables := make([]nafLookupTable5, len(points))
	for i := range scalars {
		nafs[i] = scalars[i].nonAdjacentForm(5)
		tables[i].FromP3(points[i])
	}

	multiple := &projCached{}
	tmp1 := &projP1xP1{}
	tmp2 := &projP2{}
	tmp2.Zero()

	// Move from the high bit downward, so that at any point tmp2 holds
	// the partial result scaled by 2^i.
	for i := 255; i >= 0; i-- {
		tmp1.Double(tmp2)

		for j := range nafs {
			if nafs[j][i] > 0 {
				v.fromP1xP1(tmp1)
				tables[j].SelectInto(multiple, nafs[j][i])
				tmp1.Add(v, multiple)
			} else if nafs[j][i] < 0 {
				v.fromP1xP1(tmp1)
				tables[j].SelectInto(multiple, -nafs[j][i])
				tmp1.Sub(v, multiple)
			}
		}

		tmp2.FromP1xP1(tmp1)
	}

	v.fromP2(tmp2)
	return v
}

// AffineNafTable is a precomputed width-8 NAF lookup table for a fixed
// point — 64 affine odd multiples, built once (63 point additions plus
// the batch inversion inside FromP3) and then shared read-only across
// any number of VarTimeBatchMult calls. Batch verification caches one
// per registered public key, so a signer's per-batch marginal cost is
// lookups and affine additions, never decompression or table builds.
type AffineNafTable struct {
	t nafLookupTable8
}

// NewAffineNafTable builds the width-8 NAF table for p.
func NewAffineNafTable(p *Point) *AffineNafTable {
	checkInitialized(p)
	v := &AffineNafTable{}
	v.t.FromP3(p)
	return v
}

// VarTimeBatchMult sets v = base*B + sum(fresh[i] * freshPoints[i]) +
// sum(fixed[j] * fixedTables[j].point), where B is the generator, and
// returns v. It is the batch-equation workhorse: the generator and the
// fixed points use width-8 NAF over precomputed affine tables (the
// generator's is the package's own), while the fresh points (signature
// R values, seen once) get width-5 NAF tables built on the fly.
// Execution time depends on the inputs, so it must be used only with
// public scalars and points.
func (v *Point) VarTimeBatchMult(base *Scalar, fresh []*Scalar, freshPoints []*Point, fixed []*Scalar, fixedTables []*AffineNafTable) *Point {
	if len(fresh) != len(freshPoints) || len(fixed) != len(fixedTables) {
		panic("edwards25519: called VarTimeBatchMult with different size inputs")
	}
	checkInitialized(freshPoints...)

	baseNaf := base.nonAdjacentForm(8)
	baseTable := basepointNafTable()
	freshNafs := make([][256]int8, len(fresh))
	freshTables := make([]nafLookupTable5, len(fresh))
	for i := range fresh {
		freshNafs[i] = fresh[i].nonAdjacentForm(5)
		freshTables[i].FromP3(freshPoints[i])
	}
	fixedNafs := make([][256]int8, len(fixed))
	for i := range fixed {
		fixedNafs[i] = fixed[i].nonAdjacentForm(8)
	}

	multProj := &projCached{}
	multAffine := &affineCached{}
	tmp1 := &projP1xP1{}
	tmp2 := &projP2{}
	tmp2.Zero()

	for i := 255; i >= 0; i-- {
		tmp1.Double(tmp2)

		if d := baseNaf[i]; d > 0 {
			v.fromP1xP1(tmp1)
			baseTable.SelectInto(multAffine, d)
			tmp1.AddAffine(v, multAffine)
		} else if d < 0 {
			v.fromP1xP1(tmp1)
			baseTable.SelectInto(multAffine, -d)
			tmp1.SubAffine(v, multAffine)
		}

		for j := range freshNafs {
			if d := freshNafs[j][i]; d > 0 {
				v.fromP1xP1(tmp1)
				freshTables[j].SelectInto(multProj, d)
				tmp1.Add(v, multProj)
			} else if d < 0 {
				v.fromP1xP1(tmp1)
				freshTables[j].SelectInto(multProj, -d)
				tmp1.Sub(v, multProj)
			}
		}

		for j := range fixedNafs {
			if d := fixedNafs[j][i]; d > 0 {
				v.fromP1xP1(tmp1)
				fixedTables[j].t.SelectInto(multAffine, d)
				tmp1.AddAffine(v, multAffine)
			} else if d < 0 {
				v.fromP1xP1(tmp1)
				fixedTables[j].t.SelectInto(multAffine, -d)
				tmp1.SubAffine(v, multAffine)
			}
		}

		tmp2.FromP1xP1(tmp1)
	}

	v.fromP2(tmp2)
	return v
}

// MultByCofactor sets v = 8 * p, and returns v.
func (v *Point) MultByCofactor(p *Point) *Point {
	checkInitialized(p)
	result := projP1xP1{}
	pp := (&projP2{}).FromP3(p)
	result.Double(pp)
	pp.FromP1xP1(&result)
	result.Double(pp)
	pp.FromP1xP1(&result)
	result.Double(pp)
	return v.fromP1xP1(&result)
}
