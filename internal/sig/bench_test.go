package sig

import (
	"fmt"
	"testing"

	"btr/internal/network"
)

// benchEnvelopes builds a working set of sealed statements resembling a
// period's worth of records crossing a deployment.
func benchEnvelopes(n int) (*Registry, []Envelope) {
	r := NewRegistry(0xbec4, 8)
	envs := make([]Envelope, n)
	for i := range envs {
		envs[i] = r.Seal(network.NodeID(i%8), []byte(fmt.Sprintf("record %d body", i)))
	}
	return r, envs
}

// BenchmarkVerifyMemo measures the memoized steady state: every envelope
// in the working set has verified before (as on every flood hop after
// the first). Compare with BenchmarkVerifyUncached; cmd/btrcheckbench
// gates the ratio at >=2x via the bundle's crypto section.
func BenchmarkVerifyMemo(b *testing.B) {
	r, envs := benchEnvelopes(64)
	r.UseMemos(NewVerifyMemo(), nil)
	for _, e := range envs { // warm
		r.Check(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Check(envs[i%len(envs)]) {
			b.Fatal("valid envelope rejected")
		}
	}
}

// BenchmarkVerifyUncached is the frozen baseline: full ed25519
// verification on every call.
func BenchmarkVerifyUncached(b *testing.B) {
	r, envs := benchEnvelopes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := envs[i%len(envs)]
		if !r.VerifyUncached(e.Signer, e.Body, e.Sig) {
			b.Fatal("valid envelope rejected")
		}
	}
}

// BenchmarkSealedPayload measures the seal-memo steady state: re-sealing
// an already-sealed body (re-sent evidence, bogus floods, replayed
// trials) is a shared-slice lookup.
func BenchmarkSealedPayload(b *testing.B) {
	r, _ := benchEnvelopes(1)
	r.UseMemos(nil, NewSealMemo())
	bodies := make([][]byte, 16)
	for i := range bodies {
		bodies[i] = []byte(fmt.Sprintf("evidence blob %d with some realistic length padding", i))
		r.SealedPayload(network.NodeID(i%8), 'E', bodies[i]) // warm
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SealedPayload(network.NodeID(i%8), 'E', bodies[i%len(bodies)])
	}
}

// BenchmarkSealUncached is the frozen baseline for the seal path.
func BenchmarkSealUncached(b *testing.B) {
	r, _ := benchEnvelopes(1)
	r.UseMemos(nil, nil)
	body := []byte("evidence blob with some realistic length padding")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SealedPayload(network.NodeID(i%8), 'E', body)
	}
}
