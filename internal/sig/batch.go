package sig

// ed25519 batch verification — the saturation fast path.
//
// A flood period delivers N envelopes from up to N distinct signers; the
// sequential path pays N full scalar multiplications even when every
// signature is fresh (the memo only removes *repeated* work). The batch
// path instead checks the single cofactored equation
//
//	[8](−(Σ z_i·s_i)·B + Σ z_i·R_i + Σ (z_i·k_i)·A_i) == identity
//
// with k_i = SHA-512(R_i ‖ A_i ‖ msg_i) mod L and fresh random 128-bit
// scalars z_i, which one variable-time multi-scalar multiplication
// evaluates with a *shared* doubling chain: the per-signature marginal
// cost drops from a full scalar multiplication to one NAF table build
// plus a handful of additions.
//
// Soundness. If every signature satisfies its individual cofactored
// equation, the batch equation holds for any z. Conversely, if some
// signature is invalid, the batch equation is a nontrivial linear
// relation in the random z_i and holds with probability ≤ 2^-128 — so a
// batch "accept" is as strong as per-signature cofactored acceptance,
// and a batch "reject" is re-checked sequentially to locate the culprit
// (never trusting the probabilistic path for a negative verdict).
//
// Cofactored vs cofactorless. crypto/ed25519's Verify uses the
// *cofactorless* equation; the batch equation must be cofactored to be
// well-defined (only the cofactored criterion is compatible with random
// linear combination — see Chalkias et al., "Taming the many EdDSAs").
// The two criteria agree on every signature produced by honest signing
// and on every corruption reachable by flipping bits of such signatures;
// they can disagree only on deliberately crafted signatures exploiting
// the eight small-order torsion points. An adversary can craft such
// signatures only under its OWN key (doing so requires choosing R), so
// acceptance differences never forge statements by honest signers, and
// every node runs the same acceptance path, so the system stays
// internally consistent. The differential quick-check in batch_test.go
// pins agreement on the reachable corruption classes.

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha512"

	edwards "btr/internal/sig/edwards25519"
)

// BatchVerify reports whether every (pub, msg, sig) triple passes the
// cofactored ed25519 batch equation. All three slices must have equal
// length; an empty batch verifies trivially. A false return means at
// least one triple is invalid but does not say which — callers that need
// the culprit fall back to a per-signature sweep (see CheckBatch).
func BatchVerify(pubs []ed25519.PublicKey, msgs, sigs [][]byte) bool {
	n := len(pubs)
	if len(msgs) != n || len(sigs) != n {
		return false
	}
	if n == 0 {
		return true
	}

	// One random draw for every z_i: 16 bytes each, zero-extended to a
	// canonical 32-byte scalar (< 2^128 ≪ L).
	zraw := make([]byte, 16*n)
	if _, err := rand.Read(zraw); err != nil {
		return false // no randomness, no probabilistic acceptance
	}

	// scalars/points for −(Σ z_i·s_i)·B + Σ z_i·R_i + Σ (z_i·k_i)·A_i.
	scalars := make([]*edwards.Scalar, 0, 2*n+1)
	points := make([]*edwards.Point, 0, 2*n+1)
	zsSum := edwards.NewScalar()
	var zbuf [32]byte
	h := sha512.New()
	for i := 0; i < n; i++ {
		if len(pubs[i]) != ed25519.PublicKeySize || len(sigs[i]) != ed25519.SignatureSize {
			return false
		}
		A, err := new(edwards.Point).SetBytes(pubs[i])
		if err != nil {
			return false
		}
		R, err := new(edwards.Point).SetBytes(sigs[i][:32])
		if err != nil {
			return false
		}
		// RFC 8032 §5.1.7: reject non-canonical s (crypto/ed25519 does too).
		s, err := edwards.NewScalar().SetCanonicalBytes(sigs[i][32:])
		if err != nil {
			return false
		}
		copy(zbuf[:16], zraw[16*i:])
		z, err := edwards.NewScalar().SetCanonicalBytes(zbuf[:])
		if err != nil {
			return false // unreachable: top 128 bits are zero
		}
		h.Reset()
		h.Write(sigs[i][:32])
		h.Write(pubs[i])
		h.Write(msgs[i])
		k, err := edwards.NewScalar().SetUniformBytes(h.Sum(nil))
		if err != nil {
			return false // unreachable: input is exactly 64 bytes
		}
		zsSum.MultiplyAdd(z, s, zsSum)
		scalars = append(scalars, z, edwards.NewScalar().Multiply(z, k))
		points = append(points, R, A)
	}
	scalars = append(scalars, edwards.NewScalar().Negate(zsSum))
	points = append(points, edwards.NewGeneratorPoint())

	p := new(edwards.Point).VarTimeMultiScalarMult(scalars, points)
	return p.MultByCofactor(p).Equal(edwards.NewIdentityPoint()) == 1
}

// minBatch is the smallest number of memo-missing envelopes worth the
// batch equation's fixed costs (random scalar draws, point
// decompression, NAF table builds). Below it the sequential memoized
// loop is at least as fast and keeps exact first-failure semantics.
const minBatch = 4

// CheckBatch verifies a batch of envelopes. It returns (-1, true) when
// every envelope verifies, or (i, false) for the first envelope that
// does not — the same contract as the sequential loop it replaced.
//
// Fast path: memo hits are filtered out up front, the remaining
// envelopes are checked in ONE cofactored batch equation, and on success
// every triple is inserted into the memo (so later per-envelope Check
// calls — e.g. the flood ingest path this batch primed — hit). On batch
// failure, or when the miss set is smaller than minBatch, it falls back
// to CheckBatchSequential, which also locates the first culprit.
func (r *Registry) CheckBatch(envs []Envelope) (int, bool) {
	if r.memo == nil || len(envs) < minBatch {
		return r.CheckBatchSequential(envs)
	}
	missIdx := make([]int, 0, len(envs))
	keys := make([]verifyKey, 0, len(envs))
	for i := range envs {
		e := &envs[i]
		if int(e.Signer) < 0 || int(e.Signer) >= len(r.pubs) || len(e.Sig) != ed25519.SignatureSize {
			// Malformed before any crypto: the sequential sweep reports
			// the first failure index with identical semantics.
			return r.CheckBatchSequential(envs)
		}
		k := makeVerifyKey(r.pubs[e.Signer], e.Body, e.Sig)
		if r.memo.lookup(k) {
			continue
		}
		missIdx = append(missIdx, i)
		keys = append(keys, k)
	}
	if len(missIdx) < minBatch {
		return r.CheckBatchSequential(envs) // hits are free, misses few
	}
	if r.batchVerifyCached(envs, missIdx) {
		for _, k := range keys {
			r.memo.insert(k)
		}
		return -1, true
	}
	return r.CheckBatchSequential(envs)
}

// batchTable returns the cached precomputed NAF table for id's public
// key, building it on first use. Registry keys always decompress (they
// are honestly generated), so a nil return is a defensive impossibility
// that just routes the caller to the sequential path.
func (r *Registry) batchTable(id int) *edwards.AffineNafTable {
	if t := r.btabs[id].Load(); t != nil {
		return t
	}
	A, err := new(edwards.Point).SetBytes(r.pubs[id])
	if err != nil {
		return nil
	}
	t := edwards.NewAffineNafTable(A)
	r.btabs[id].Store(t)
	return t
}

// batchVerifyCached evaluates the cofactored batch equation over
// envs[idx...] using the registry's cached per-signer tables: the
// signature R points (seen once) are the only per-batch decompressions
// and on-the-fly tables, while each signer's public-key term reuses the
// precomputed width-8 table. Callers must have range-checked Signer and
// Sig length for every selected envelope.
func (r *Registry) batchVerifyCached(envs []Envelope, idx []int) bool {
	n := len(idx)
	zraw := make([]byte, 16*n)
	if _, err := rand.Read(zraw); err != nil {
		return false // no randomness, no probabilistic acceptance
	}
	zs := make([]*edwards.Scalar, n)
	Rs := make([]*edwards.Point, n)
	zks := make([]*edwards.Scalar, n)
	tabs := make([]*edwards.AffineNafTable, n)
	zsSum := edwards.NewScalar()
	var zbuf [32]byte
	h := sha512.New()
	for j, i := range idx {
		e := &envs[i]
		R, err := new(edwards.Point).SetBytes(e.Sig[:32])
		if err != nil {
			return false
		}
		s, err := edwards.NewScalar().SetCanonicalBytes(e.Sig[32:])
		if err != nil {
			return false
		}
		if tabs[j] = r.batchTable(int(e.Signer)); tabs[j] == nil {
			return false
		}
		copy(zbuf[:16], zraw[16*j:])
		z, err := edwards.NewScalar().SetCanonicalBytes(zbuf[:])
		if err != nil {
			return false // unreachable: top 128 bits are zero
		}
		h.Reset()
		h.Write(e.Sig[:32])
		h.Write(r.pubs[e.Signer])
		h.Write(e.Body)
		k, err := edwards.NewScalar().SetUniformBytes(h.Sum(nil))
		if err != nil {
			return false // unreachable: input is exactly 64 bytes
		}
		zsSum.MultiplyAdd(z, s, zsSum)
		zs[j], Rs[j], zks[j] = z, R, edwards.NewScalar().Multiply(z, k)
	}
	p := new(edwards.Point).VarTimeBatchMult(edwards.NewScalar().Negate(zsSum), zs, Rs, zks, tabs)
	return p.MultByCofactor(p).Equal(edwards.NewIdentityPoint()) == 1
}

// CheckBatchSequential is the frozen differential baseline: the
// per-envelope memoized sweep CheckBatch used to be, stopping at the
// first failure. Differential tests pin CheckBatch against it, and
// MeasureBatchSpeedup times the two paths for the bench bundle.
func (r *Registry) CheckBatchSequential(envs []Envelope) (int, bool) {
	for i := range envs {
		if !r.Check(envs[i]) {
			return i, false
		}
	}
	return -1, true
}
