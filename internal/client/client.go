// Package client is the serving surface over the BTR core: a replicated
// register API that external clients drive against a live deployment's
// node processes. The replication protocol is client-driven, ABD-style
// (the freestore lineage): servers hold a passive tagged register store
// and never talk to each other; a client reads by querying a quorum and
// adopting the largest (ts, writer) tag it sees — writing the winner
// back to any replica that disagreed (read-repair) — and writes by
// querying a quorum for the largest tag, then storing its value under a
// strictly larger one. With n replicas and at most f crashed or
// partitioned, every n−f quorum intersects every other in at least one
// correct replica, so reads always see the newest completed write.
//
// Operations are epoch-aware: every request carries the client's view
// of the active membership epoch, and a server whose epoch has moved on
// rejects the request with its current epoch and member list. The
// client adopts the newer view and resubmits the SAME tagged operation
// — last-writer-wins on (ts, writer) makes the resubmit idempotent, so
// an op that straddles an epoch activation completes exactly once.
// Transient transport failures (a replica being kill-restarted, a
// partition healing) are ridden out with bounded exponential backoff;
// an op fails only after its deadline, which is how client-visible
// unavailability is measured rather than assumed.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"btr/internal/wire"
)

// View is a client's picture of the active epoch: which member slots
// serve the register and where they listen. Quorum is n−f.
type View struct {
	Epoch uint64
	F     int
	Addrs map[uint32]string // member slot → client-service address
}

// Members returns the view's member slots in ascending order.
func (v View) Members() []uint32 {
	ms := make([]uint32, 0, len(v.Addrs))
	for m := range v.Addrs {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return ms
}

// Quorum returns the view's read/write quorum size, n−f.
func (v View) Quorum() int { return len(v.Addrs) - v.F }

// Resolver maps a server-announced newer view (epoch + member slots) to
// a full View with addresses. Deployments with a fixed slot universe —
// the orchestrated cluster — implement it as a table lookup.
type Resolver func(epoch uint64, members []uint32) (View, error)

// Config parameterizes one client.
type Config struct {
	// View is the initial (possibly stale) view.
	View View
	// Resolve maps newer epochs to views; nil clients can still follow
	// epochs whose members all appear in the current view's address table.
	Resolve Resolver
	// Writer tags this client's writes (must be unique per writer for
	// the (ts, writer) order to be total).
	Writer uint32
	// OpTimeout bounds one Read/Write end to end, retries included
	// (default 10s).
	OpTimeout time.Duration
	// IOTimeout bounds one request/response exchange with one replica
	// (default 2s).
	IOTimeout time.Duration
	// BackoffBase/BackoffCap bound the exponential retry backoff
	// (defaults 2ms, 250ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
}

// Client is one register client: a view, one lazily-dialed connection
// per replica, and a quorum engine. Safe for concurrent use; ops from
// one Client to one replica serialize on that replica's connection.
type Client struct {
	cfg     Config
	resolve Resolver

	mu     sync.Mutex
	view   View
	conns  map[uint32]*replicaConn
	closed bool

	opid atomic.Uint64

	// afterWriteQuery, when set (tests only), runs between a write's
	// query phase and its store phase — the seam the epoch-straddle
	// tests use to activate a new epoch mid-operation.
	afterWriteQuery func()

	// Counters the load generator aggregates (atomic; read via Stats).
	retries      atomic.Uint64
	staleRetries atomic.Uint64
	repairs      atomic.Uint64
}

// Stats is a client's retry/repair counters.
type Stats struct {
	Retries      uint64 // op-level retries (backoff rounds)
	StaleRetries uint64 // retries caused by a stale-view rejection
	Repairs      uint64 // read-repair write-backs issued
}

// ErrUnavailable is returned when an operation exhausts its deadline
// without assembling a quorum.
var ErrUnavailable = errors.New("client: quorum unavailable")

// New builds a client over an initial view.
func New(cfg Config) (*Client, error) {
	if len(cfg.View.Addrs) == 0 {
		return nil, fmt.Errorf("client: view has no members")
	}
	if cfg.View.Quorum() <= len(cfg.View.Addrs)/2 {
		return nil, fmt.Errorf("client: quorum %d of %d does not intersect itself (f too large)",
			cfg.View.Quorum(), len(cfg.View.Addrs))
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 10 * time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 2 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 2 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 250 * time.Millisecond
	}
	return &Client{
		cfg:     cfg,
		resolve: cfg.Resolve,
		view:    cfg.View,
		conns:   map[uint32]*replicaConn{},
	}, nil
}

// Stats snapshots the client's retry/repair counters.
func (c *Client) Stats() Stats {
	return Stats{
		Retries:      c.retries.Load(),
		StaleRetries: c.staleRetries.Load(),
		Repairs:      c.repairs.Load(),
	}
}

// View returns the client's current view (it advances as servers
// announce newer epochs).
func (c *Client) View() View {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view
}

// Close tears down every replica connection and refuses new dials.
// In-flight ops fail.
func (c *Client) Close() {
	c.mu.Lock()
	conns := c.conns
	c.conns = map[uint32]*replicaConn{}
	c.closed = true
	c.mu.Unlock()
	for _, rc := range conns {
		rc.close()
	}
}

// Read performs a quorum read of key: query n−f replicas, adopt the
// largest (ts, writer) tag, and write the winner back to any queried
// replica that returned an older tag before returning (read-repair), so
// a value once read stays readable even if its original writer crashed
// mid-write.
func (c *Client) Read(key string) ([]byte, error) {
	if len(key) > wire.MaxQKey {
		return nil, fmt.Errorf("client: key exceeds %d bytes", wire.MaxQKey)
	}
	deadline := time.Now().Add(c.cfg.OpTimeout)
	opid := c.opid.Add(1)
	for attempt := 0; ; attempt++ {
		view := c.View()
		acks, stale := c.broadcast(view, wire.QRequest{
			Op: wire.QOpGet, OpID: opid, Epoch: view.Epoch, Key: []byte(key),
		}, deadline)
		if len(acks) >= view.Quorum() {
			best := acks[0]
			for _, a := range acks[1:] {
				if tagLess(best.resp.TS, best.resp.Writer, a.resp.TS, a.resp.Writer) {
					best = a
				}
			}
			c.repair(view, key, best, acks, deadline)
			return best.resp.Value, nil
		}
		if err := c.retryGate(stale, attempt, deadline); err != nil {
			return nil, err
		}
	}
}

// Write performs a quorum write of key: query n−f replicas for the
// largest tag, then store value under (maxts+1, writer) at n−f
// replicas. A retry — backoff or stale-view — resubmits the SAME tag,
// which last-writer-wins makes idempotent.
func (c *Client) Write(key string, value []byte) error {
	if len(key) > wire.MaxQKey {
		return fmt.Errorf("client: key exceeds %d bytes", wire.MaxQKey)
	}
	if len(value) > wire.MaxQValue {
		return fmt.Errorf("client: value exceeds %d bytes", wire.MaxQValue)
	}
	deadline := time.Now().Add(c.cfg.OpTimeout)
	opid := c.opid.Add(1)

	// Phase 1: learn the largest committed tag from a quorum.
	var ts uint64
	for attempt := 0; ; attempt++ {
		view := c.View()
		acks, stale := c.broadcast(view, wire.QRequest{
			Op: wire.QOpGet, OpID: opid, Epoch: view.Epoch, Key: []byte(key),
		}, deadline)
		if len(acks) >= view.Quorum() {
			var maxTS uint64
			for _, a := range acks {
				if a.resp.TS > maxTS {
					maxTS = a.resp.TS
				}
			}
			ts = maxTS + 1
			break
		}
		if err := c.retryGate(stale, attempt, deadline); err != nil {
			return err
		}
	}

	if c.afterWriteQuery != nil {
		c.afterWriteQuery()
	}

	// Phase 2: store under the chosen tag. The tag is fixed across
	// retries — that is the idempotence.
	for attempt := 0; ; attempt++ {
		view := c.View()
		acks, stale := c.broadcast(view, wire.QRequest{
			Op: wire.QOpSet, OpID: opid, Epoch: view.Epoch,
			TS: ts, Writer: c.cfg.Writer, Key: []byte(key), Value: value,
		}, deadline)
		if len(acks) >= view.Quorum() {
			return nil
		}
		if err := c.retryGate(stale, attempt, deadline); err != nil {
			return err
		}
	}
}

// ack is one replica's successful answer.
type ack struct {
	member uint32
	resp   wire.QResponse
}

// broadcast sends req to every member of view concurrently and collects
// OK acks, returning as soon as a quorum is assembled — a stalled or
// partitioned replica must cost nothing beyond its missing vote, not
// drag every op's latency to the IO timeout. Laggard goroutines drain
// into the buffered channel and exit on their own deadlines. Stale-view
// rejections adopt the newer view immediately (the retry then runs
// against it); transport errors drop the replica's connection for
// redial on the next attempt.
func (c *Client) broadcast(view View, req wire.QRequest, deadline time.Time) (acks []ack, stale bool) {
	members := view.Members()
	type result struct {
		member uint32
		resp   wire.QResponse
		err    error
	}
	ch := make(chan result, len(members))
	for _, m := range members {
		m := m
		go func() {
			resp, err := c.exchange(m, view.Addrs[m], req, deadline)
			ch <- result{m, resp, err}
		}()
	}
	var staleEpoch uint64
	var staleMembers []uint32
	for received := 0; received < len(members) && len(acks) < view.Quorum(); received++ {
		r := <-ch
		if r.err != nil {
			continue
		}
		switch r.resp.Status {
		case wire.QStatusOK:
			acks = append(acks, ack{r.member, r.resp})
		case wire.QStatusStaleView:
			if r.resp.Epoch > view.Epoch && r.resp.Epoch > staleEpoch {
				staleEpoch, staleMembers = r.resp.Epoch, r.resp.Members
			}
		}
	}
	if staleEpoch > 0 {
		stale = c.adoptView(staleEpoch, staleMembers)
	}
	return acks, stale
}

// repair writes the winning tag back to every queried replica that
// returned an older one, so the read's result survives the original
// writer. Best effort: the read already has its quorum.
func (c *Client) repair(view View, key string, best ack, acks []ack, deadline time.Time) {
	req := wire.QRequest{
		Op: wire.QOpSet, OpID: c.opid.Add(1), Epoch: view.Epoch,
		TS: best.resp.TS, Writer: best.resp.Writer,
		Key: []byte(key), Value: best.resp.Value,
	}
	for _, a := range acks {
		if a.resp.TS == best.resp.TS && a.resp.Writer == best.resp.Writer {
			continue
		}
		c.repairs.Add(1)
		a := a
		go func() { _, _ = c.exchange(a.member, view.Addrs[a.member], req, deadline) }()
	}
}

// retryGate decides whether a failed round retries: inside the deadline
// it sleeps the bounded exponential backoff (skipping the sleep when a
// newer view was just adopted — the retry is not futile repetition, it
// is the stale-view resubmit) and returns nil; past the deadline it
// returns ErrUnavailable.
func (c *Client) retryGate(stale bool, attempt int, deadline time.Time) error {
	if !time.Now().Before(deadline) {
		return fmt.Errorf("%w (deadline after %d attempts)", ErrUnavailable, attempt+1)
	}
	c.retries.Add(1)
	if stale {
		c.staleRetries.Add(1)
		return nil
	}
	d := c.cfg.BackoffBase << uint(attempt)
	if d > c.cfg.BackoffCap || d <= 0 {
		d = c.cfg.BackoffCap
	}
	if remain := time.Until(deadline); d > remain {
		d = remain
	}
	time.Sleep(d)
	return nil
}

// adoptView installs the newer epoch's view. With a Resolver the view
// comes from it; without one the client keeps its address table and
// restricts it to the announced members (enough when the slot universe
// is fixed). Returns true if the view advanced.
func (c *Client) adoptView(epoch uint64, members []uint32) bool {
	var next View
	if c.resolve != nil {
		v, err := c.resolve(epoch, members)
		if err != nil {
			return false
		}
		next = v
	} else {
		addrs := map[uint32]string{}
		c.mu.Lock()
		for _, m := range members {
			if a, ok := c.view.Addrs[m]; ok {
				addrs[m] = a
			}
		}
		f := c.view.F
		c.mu.Unlock()
		if len(addrs) != len(members) || len(addrs) == 0 {
			return false
		}
		next = View{Epoch: epoch, F: f, Addrs: addrs}
	}
	if next.Quorum() <= len(next.Addrs)/2 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if next.Epoch <= c.view.Epoch {
		return false
	}
	c.view = next
	// Drop connections to replicas that left the membership.
	for m, rc := range c.conns {
		if _, ok := next.Addrs[m]; !ok {
			rc.close()
			delete(c.conns, m)
		}
	}
	return true
}

// exchange performs one request/response with one replica, dialing (or
// redialing) its connection as needed. A transport error closes the
// connection so the next attempt redials.
func (c *Client) exchange(member uint32, addr string, req wire.QRequest, deadline time.Time) (wire.QResponse, error) {
	rc, err := c.conn(member, addr, deadline)
	if err != nil {
		return wire.QResponse{}, err
	}
	resp, err := rc.roundTrip(req, c.cfg.IOTimeout, deadline)
	if err != nil {
		c.dropConn(member, rc)
		return wire.QResponse{}, err
	}
	return resp, nil
}

func (c *Client) conn(member uint32, addr string, deadline time.Time) (*replicaConn, error) {
	c.mu.Lock()
	if rc, ok := c.conns[member]; ok && rc.addr == addr {
		c.mu.Unlock()
		return rc, nil
	}
	c.mu.Unlock()
	dialTO := c.cfg.IOTimeout
	if remain := time.Until(deadline); remain < dialTO {
		dialTO = remain
	}
	if dialTO <= 0 {
		return nil, ErrUnavailable
	}
	nc, err := net.DialTimeout("tcp", addr, dialTO)
	if err != nil {
		return nil, err
	}
	rc := &replicaConn{addr: addr, nc: nc, br: bufio.NewReader(nc)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		go nc.Close()
		return nil, ErrUnavailable
	}
	if old, ok := c.conns[member]; ok && old.addr == addr {
		// Lost the dial race; use the established connection.
		go nc.Close()
		return old, nil
	} else if ok {
		old.close()
	}
	c.conns[member] = rc
	return rc, nil
}

func (c *Client) dropConn(member uint32, rc *replicaConn) {
	c.mu.Lock()
	if cur, ok := c.conns[member]; ok && cur == rc {
		delete(c.conns, member)
	}
	c.mu.Unlock()
	rc.close()
}

// replicaConn is one client→replica TCP connection. Requests from this
// client serialize on it (lockstep request/response), which keeps the
// framing trivially unambiguous.
type replicaConn struct {
	addr string
	mu   sync.Mutex
	nc   net.Conn
	br   *bufio.Reader
	buf  []byte
}

func (rc *replicaConn) roundTrip(req wire.QRequest, ioTimeout time.Duration, deadline time.Time) (wire.QResponse, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	to := time.Now().Add(ioTimeout)
	if deadline.Before(to) {
		to = deadline
	}
	if err := rc.nc.SetDeadline(to); err != nil {
		return wire.QResponse{}, err
	}
	frame, err := wire.AppendQRequest(rc.buf[:0], req)
	if err != nil {
		return wire.QResponse{}, err
	}
	rc.buf = frame[:0]
	if _, err := rc.nc.Write(frame); err != nil {
		return wire.QResponse{}, err
	}
	for {
		typ, body, err := wire.ReadFrame(rc.br)
		if err != nil {
			return wire.QResponse{}, err
		}
		if typ != wire.TypeQResponse {
			return wire.QResponse{}, fmt.Errorf("client: unexpected frame type %c", typ)
		}
		resp, err := wire.ParseQResponse(body)
		if err != nil {
			return wire.QResponse{}, err
		}
		if resp.OpID != req.OpID {
			// A response to an earlier, abandoned request (IO timeout left
			// it in flight); skip until ours arrives.
			continue
		}
		return resp, nil
	}
}

func (rc *replicaConn) close() {
	rc.nc.Close()
}

// tagLess orders register tags: (ts, writer) lexicographically.
func tagLess(ts1 uint64, w1 uint32, ts2 uint64, w2 uint32) bool {
	return ts1 < ts2 || (ts1 == ts2 && w1 < w2)
}
