package client

import "sync"

// RegisterStore is the passive server-side half of the protocol: a map
// of tagged registers ordered by (ts, writer), last-writer-wins. Apply
// is idempotent by construction — storing a tag the register already
// holds (a client's resubmit after a stale-view retry) or an older one
// changes nothing and still acks, which is exactly what makes the
// client's retry-same-tag loop safe.
type RegisterStore struct {
	mu   sync.Mutex
	regs map[string]register
}

type register struct {
	ts       uint64
	writer   uint32
	value    []byte
	advances uint64
}

// NewRegisterStore returns an empty store.
func NewRegisterStore() *RegisterStore {
	return &RegisterStore{regs: map[string]register{}}
}

// Get returns the register's current tag and value (zero tag, nil value
// when the key was never written).
func (s *RegisterStore) Get(key string) (ts uint64, writer uint32, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.regs[key]
	return r.ts, r.writer, r.value
}

// Apply stores value under (ts, writer) if that tag is newer than the
// register's current one and reports whether the state advanced. An
// equal or older tag is a no-op that still counts as success at the
// protocol level — the caller acks either way.
func (s *RegisterStore) Apply(key string, ts uint64, writer uint32, value []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.regs[key]
	if !tagLess(r.ts, r.writer, ts, writer) {
		return false
	}
	r.ts, r.writer = ts, writer
	r.value = append([]byte(nil), value...)
	r.advances++
	s.regs[key] = r
	return true
}

// Advances returns how many times the key's register state advanced —
// the witness the idempotence tests count: a write resubmitted across
// an epoch switch must advance each replica at most once.
func (s *RegisterStore) Advances(key string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.regs[key].advances
}

// Keys returns how many registers the store holds.
func (s *RegisterStore) Keys() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.regs)
}

// ViewState is the server side's authoritative (epoch, members) pair.
// The deployment advances it when a membership epoch activates; every
// request is checked against it.
type ViewState struct {
	mu      sync.Mutex
	epoch   uint64
	members []uint32
}

// NewViewState starts at the given epoch and member list.
func NewViewState(epoch uint64, members []uint32) *ViewState {
	return &ViewState{epoch: epoch, members: append([]uint32(nil), members...)}
}

// Current returns the active epoch and its members.
func (v *ViewState) Current() (uint64, []uint32) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epoch, append([]uint32(nil), v.members...)
}

// Advance installs a newer epoch; older or equal epochs are ignored
// (activations can race in from multiple observers).
func (v *ViewState) Advance(epoch uint64, members []uint32) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if epoch <= v.epoch {
		return
	}
	v.epoch = epoch
	v.members = append([]uint32(nil), members...)
}
