package client

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log₂-bucketed latency histogram: bucket i
// counts observations in [2^(i−1), 2^i) microseconds, so quantiles are
// exact to a factor of two across nine decades — plenty for p99/p999
// SLO verdicts, with a fixed 64-counter footprint shared by thousands
// of concurrent sessions.
type Histogram struct {
	counts [64]atomic.Uint64
	total  atomic.Uint64
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	h.counts[bits.Len64(us)].Add(1)
	h.total.Add(1)
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Quantile returns an upper bound on the q-quantile latency (the top of
// the bucket the quantile falls in). Zero observations → 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > rank {
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(1<<63 - 1)
}

// LoadConfig parameterizes one load-generator run.
type LoadConfig struct {
	// Sessions is how many concurrent client sessions to drive.
	Sessions int
	// Duration bounds the run.
	Duration time.Duration
	// Rate is the target aggregate op rate in ops/sec (0 = closed loop:
	// every session issues its next op as soon as the last completes).
	Rate float64
	// WriteRatio is the fraction of ops that write (default 0.5).
	WriteRatio float64
	// Keys is the size of the keyspace the sessions touch (default 16).
	Keys int
	// NewClient builds session i's client. Each session owns its client
	// and the generator closes it when the session ends.
	NewClient func(session int) (*Client, error)
	// Seed derives each session's op mix deterministically.
	Seed uint64
}

// SLOReport is what the load generator measured — the client-visible
// truth the BENCH gate judges, as opposed to the runtime's internal
// within-R verdict.
type SLOReport struct {
	Sessions int
	Elapsed  time.Duration

	Ops    uint64 // completed successfully
	Errors uint64 // ops that exhausted their deadline
	Reads  uint64
	Writes uint64

	Retries      uint64
	StaleRetries uint64
	Repairs      uint64

	P50, P99, P999 time.Duration
	MaxUnavail     time.Duration // longest wall-clock gap between successes
}

// availTracker measures client-visible unavailability: the longest gap
// between consecutive successful op completions, run-start and run-end
// included. While a quorum is reachable the gap stays at op latency;
// lose one and it grows until recovery completes — which makes it the
// client-side mirror of the runtime's recovery bound R.
type availTracker struct {
	mu     sync.Mutex
	last   time.Time
	maxGap time.Duration
}

func (a *availTracker) start(now time.Time) {
	a.mu.Lock()
	a.last = now
	a.mu.Unlock()
}

func (a *availTracker) success(now time.Time) {
	a.mu.Lock()
	if gap := now.Sub(a.last); gap > a.maxGap {
		a.maxGap = gap
	}
	if now.After(a.last) {
		a.last = now
	}
	a.mu.Unlock()
}

func (a *availTracker) finish(now time.Time) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if gap := now.Sub(a.last); gap > a.maxGap {
		a.maxGap = gap
	}
	return a.maxGap
}

// RunLoad drives cfg.Sessions concurrent sessions against the cluster
// and returns the aggregated client-visible SLO report. It joins every
// session goroutine and closes every client before returning.
func RunLoad(cfg LoadConfig) (*SLOReport, error) {
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("client: load needs at least one session")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("client: load needs a positive duration")
	}
	if cfg.NewClient == nil {
		return nil, fmt.Errorf("client: load needs a client factory")
	}
	if cfg.WriteRatio <= 0 {
		cfg.WriteRatio = 0.5
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 16
	}
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(cfg.Sessions) / cfg.Rate * float64(time.Second))
	}

	var hist Histogram
	var avail availTracker
	var ops, errs, reads, writes atomic.Uint64
	var retries, staleRetries, repairs atomic.Uint64

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	avail.start(start)

	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		cl, err := cfg.NewClient(i)
		if err != nil {
			errCh <- fmt.Errorf("client: session %d: %w", i, err)
			break
		}
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			defer func() {
				st := cl.Stats()
				retries.Add(st.Retries)
				staleRetries.Add(st.StaleRetries)
				repairs.Add(st.Repairs)
				cl.Close()
			}()
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(i)*7919))
			value := []byte(fmt.Sprintf("session-%d", i))
			next := time.Now()
			for {
				now := time.Now()
				if !now.Before(deadline) {
					return
				}
				if interval > 0 {
					if wait := next.Sub(now); wait > 0 {
						if now.Add(wait).After(deadline) {
							return
						}
						time.Sleep(wait)
					}
					next = next.Add(interval)
				}
				key := fmt.Sprintf("reg/%d", rng.Intn(cfg.Keys))
				opStart := time.Now()
				var err error
				if rng.Float64() < cfg.WriteRatio {
					writes.Add(1)
					err = cl.Write(key, value)
				} else {
					reads.Add(1)
					_, err = cl.Read(key)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				done := time.Now()
				ops.Add(1)
				hist.Observe(done.Sub(opStart))
				avail.success(done)
			}
		}(i, cl)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	end := time.Now()
	return &SLOReport{
		Sessions:     cfg.Sessions,
		Elapsed:      end.Sub(start),
		Ops:          ops.Load(),
		Errors:       errs.Load(),
		Reads:        reads.Load(),
		Writes:       writes.Load(),
		Retries:      retries.Load(),
		StaleRetries: staleRetries.Load(),
		Repairs:      repairs.Load(),
		P50:          hist.Quantile(0.50),
		P99:          hist.Quantile(0.99),
		P999:         hist.Quantile(0.999),
		MaxUnavail:   avail.finish(end),
	}, nil
}

// String renders the report one line per concern, for btrlive output.
func (r *SLOReport) String() string {
	return fmt.Sprintf(
		"sessions=%d ops=%d errors=%d (reads=%d writes=%d) p50=%v p99=%v p999=%v max-unavail=%v retries=%d stale=%d repairs=%d",
		r.Sessions, r.Ops, r.Errors, r.Reads, r.Writes,
		r.P50, r.P99, r.P999, r.MaxUnavail, r.Retries, r.StaleRetries, r.Repairs)
}
