package client

import (
	"bufio"
	"net"
	"sync"
	"time"

	"btr/internal/wire"
)

// Server is one replica's client-facing service: a TCP listener
// speaking Q frames over a RegisterStore, gated by a ViewState. It is
// deliberately passive — replication is client-driven, so the server
// needs no peer protocol, which is what lets it ride inside a node
// process without touching the BTR runtime's transport.
type Server struct {
	store *RegisterStore
	view  *ViewState

	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer starts serving on addr ("" or "127.0.0.1:0" for an
// ephemeral port; Addr reports what was bound).
func NewServer(addr string, store *RegisterStore, view *ViewState) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{store: store, view: view, ln: ln, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, severs every client connection, and joins the
// server's goroutines. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(nc)
	}
}

// serveConn handles one client connection: lockstep request/response.
// A malformed frame — the decode-side guards firing — drops the
// connection; a well-formed request always gets an answer.
func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		nc.Close()
	}()
	br := bufio.NewReader(nc)
	var out []byte
	for {
		// An idle client keeps the connection; only a dead read deadline
		// protects against half-open sockets holding goroutines forever.
		nc.SetReadDeadline(time.Now().Add(5 * time.Minute))
		typ, body, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		if typ != wire.TypeQRequest {
			return
		}
		req, err := wire.ParseQRequest(body)
		if err != nil {
			return
		}
		resp := s.handle(req)
		out, err = wire.AppendQResponse(out[:0], resp)
		if err != nil {
			return
		}
		nc.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := nc.Write(out); err != nil {
			return
		}
	}
}

func (s *Server) handle(req wire.QRequest) wire.QResponse {
	epoch, members := s.view.Current()
	if req.Epoch != epoch {
		return wire.QResponse{
			Status: wire.QStatusStaleView, OpID: req.OpID,
			Epoch: epoch, Members: members,
		}
	}
	switch req.Op {
	case wire.QOpGet:
		ts, writer, value := s.store.Get(string(req.Key))
		return wire.QResponse{
			Status: wire.QStatusOK, OpID: req.OpID, Epoch: epoch,
			TS: ts, Writer: writer, Value: value,
		}
	case wire.QOpSet:
		s.store.Apply(string(req.Key), req.TS, req.Writer, req.Value)
		return wire.QResponse{
			Status: wire.QStatusOK, OpID: req.OpID, Epoch: epoch,
			TS: req.TS, Writer: req.Writer,
		}
	default:
		return wire.QResponse{Status: wire.QStatusErr, OpID: req.OpID, Epoch: epoch}
	}
}
