package client

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// cluster spins up n replica servers on ephemeral ports and returns
// them plus a genesis view with the given f.
type cluster struct {
	stores  []*RegisterStore
	views   []*ViewState
	servers []*Server
	view    View
}

func newCluster(t *testing.T, n, f int) *cluster {
	t.Helper()
	c := &cluster{view: View{Epoch: 0, F: f, Addrs: map[uint32]string{}}}
	members := make([]uint32, n)
	for i := range members {
		members[i] = uint32(i)
	}
	for i := 0; i < n; i++ {
		store := NewRegisterStore()
		view := NewViewState(0, members)
		srv, err := NewServer("", store, view)
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
		c.stores = append(c.stores, store)
		c.views = append(c.views, view)
		c.servers = append(c.servers, srv)
		c.view.Addrs[uint32(i)] = srv.Addr()
	}
	t.Cleanup(func() {
		for _, s := range c.servers {
			s.Close()
		}
	})
	return c
}

func (c *cluster) advance(epoch uint64, members []uint32) {
	for _, v := range c.views {
		v.Advance(epoch, members)
	}
}

func (c *cluster) client(t *testing.T, writer uint32) *Client {
	t.Helper()
	cl, err := New(Config{View: c.view, Writer: writer, OpTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestQuorumReadWriteRoundTrip(t *testing.T) {
	c := newCluster(t, 3, 1)
	cl := c.client(t, 1)
	if err := cl.Write("k", []byte("v1")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := cl.Read("k")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("Read = %q, want v1", got)
	}
	// Unwritten keys read as empty, not as an error.
	if got, err := cl.Read("missing"); err != nil || len(got) != 0 {
		t.Fatalf("Read(missing) = %q, %v", got, err)
	}
}

// TestWriteSurvivesOneReplicaDown is the availability core: with n=3
// f=1, a dead replica must not block the n−f=2 quorum.
func TestWriteSurvivesOneReplicaDown(t *testing.T) {
	c := newCluster(t, 3, 1)
	c.servers[2].Close()
	cl := c.client(t, 1)
	if err := cl.Write("k", []byte("v")); err != nil {
		t.Fatalf("Write with one replica down: %v", err)
	}
	if got, err := cl.Read("k"); err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("Read with one replica down = %q, %v", got, err)
	}
}

// TestOpFailsWithoutQuorum pins the failure mode: with two of three
// replicas down no quorum exists, and the op must surface
// ErrUnavailable after its deadline instead of hanging.
func TestOpFailsWithoutQuorum(t *testing.T) {
	c := newCluster(t, 3, 1)
	c.servers[1].Close()
	c.servers[2].Close()
	cl, err := New(Config{View: c.view, Writer: 1,
		OpTimeout: 300 * time.Millisecond, IOTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer cl.Close()
	if err := cl.Write("k", []byte("v")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Write without quorum = %v, want ErrUnavailable", err)
	}
}

// TestReadRepairConvergesStragglers: a value written while one replica
// was down must propagate to it via read-repair once it is back — the
// reader writes the winning tag back to disagreeing replicas.
func TestReadRepairConvergesStragglers(t *testing.T) {
	c := newCluster(t, 3, 1)
	// Write straight into two stores, simulating a write that completed
	// at a quorum while replica 2 was unreachable.
	c.stores[0].Apply("k", 5, 9, []byte("winner"))
	c.stores[1].Apply("k", 5, 9, []byte("winner"))

	cl := c.client(t, 1)
	// Reads return at first quorum, so any single read may or may not
	// collect the straggler's stale answer; repeated reads must converge
	// it (repair is async; poll).
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := cl.Read("k")
		if err != nil || !bytes.Equal(got, []byte("winner")) {
			t.Fatalf("Read = %q, %v", got, err)
		}
		if ts, w, v := c.stores[2].Get("k"); ts == 5 && w == 9 && bytes.Equal(v, []byte("winner")) {
			break
		}
		if time.Now().After(deadline) {
			ts, w, v := c.stores[2].Get("k")
			t.Fatalf("replica 2 never repaired: ts=%d writer=%d value=%q", ts, w, v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := cl.Stats(); st.Repairs == 0 {
		t.Fatalf("read saw divergent replicas but issued no repair: %+v", st)
	}
}

// TestStaleViewRetrySucceeds: a client holding an outdated epoch must
// learn the new view from the servers' rejection and complete the op.
func TestStaleViewRetrySucceeds(t *testing.T) {
	c := newCluster(t, 3, 1)
	cl := c.client(t, 1)
	c.advance(3, []uint32{0, 1, 2})
	if err := cl.Write("k", []byte("v")); err != nil {
		t.Fatalf("Write through stale view: %v", err)
	}
	if got := cl.View().Epoch; got != 3 {
		t.Fatalf("client epoch = %d, want 3", got)
	}
	if st := cl.Stats(); st.StaleRetries == 0 {
		t.Fatalf("stale-view write recorded no stale retry: %+v", st)
	}
	if got, err := cl.Read("k"); err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("Read after view change = %q, %v", got, err)
	}
}

// TestWriteStraddlingEpochActivationIsIdempotent is the pinned
// regression for retry-on-stale-view: the epoch activates BETWEEN the
// write's query phase and its store phase, so the store phase is
// rejected as stale and resubmitted under the new view with the SAME
// (ts, writer) tag. The op must succeed, and every replica must have
// advanced its register exactly once — the resubmit is absorbed by
// last-writer-wins, not applied twice.
func TestWriteStraddlingEpochActivationIsIdempotent(t *testing.T) {
	c := newCluster(t, 3, 1)
	cl := c.client(t, 7)
	cl.afterWriteQuery = func() { c.advance(1, []uint32{0, 1, 2}) }

	if err := cl.Write("k", []byte("straddle")); err != nil {
		t.Fatalf("Write straddling epoch activation: %v", err)
	}
	st := cl.Stats()
	if st.StaleRetries == 0 {
		t.Fatalf("op did not straddle the activation (no stale retry): %+v", st)
	}
	for i, s := range c.stores {
		if n := s.Advances("k"); n > 1 {
			t.Errorf("replica %d applied the write %d times, want at most once", i, n)
		}
	}
	// The write is visible under the new epoch.
	if got, err := cl.Read("k"); err != nil || !bytes.Equal(got, []byte("straddle")) {
		t.Fatalf("Read after straddle = %q, %v", got, err)
	}
	// A quorum (not necessarily all three: the rejected store phase acks
	// only under the new view) holds exactly one advance.
	applied := 0
	for _, s := range c.stores {
		if s.Advances("k") == 1 {
			applied++
		}
	}
	if applied < 2 {
		t.Fatalf("only %d replicas hold the write, want a quorum of 2", applied)
	}
}

// TestConcurrentWritersConvergeUnderEpochChurn stresses the same path
// under the race detector: several writers hammer one key while epochs
// activate concurrently; afterwards a fresh read must return one of the
// written values and all replicas must agree after a repair pass.
func TestConcurrentWritersConvergeUnderEpochChurn(t *testing.T) {
	c := newCluster(t, 3, 1)
	const writers = 4
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			cl, err := New(Config{View: c.view, Writer: uint32(w + 1), OpTimeout: 5 * time.Second})
			if err != nil {
				done <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 10; i++ {
				if err := cl.Write("k", []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for e := uint64(1); e <= 3; e++ {
		time.Sleep(2 * time.Millisecond)
		c.advance(e, []uint32{0, 1, 2})
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatalf("writer failed: %v", err)
		}
	}
	cl := c.client(t, 99)
	got, err := cl.Read("k")
	if err != nil || len(got) == 0 {
		t.Fatalf("final Read = %q, %v", got, err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %v, want 0", got)
	}
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(50 * time.Millisecond)
	if p50 := h.Quantile(0.50); p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want ≤ 1ms", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 50*time.Millisecond || p999 > 200*time.Millisecond {
		t.Fatalf("p999 = %v, want within a bucket of 50ms", p999)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
}

func TestLoadGeneratorSteadyState(t *testing.T) {
	c := newCluster(t, 3, 1)
	rep, err := RunLoad(LoadConfig{
		Sessions: 8, Duration: 300 * time.Millisecond, Seed: 42,
		NewClient: func(i int) (*Client, error) {
			return New(Config{View: c.view, Writer: uint32(i + 1), OpTimeout: 5 * time.Second})
		},
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Ops == 0 {
		t.Fatal("load generator completed no ops")
	}
	if rep.Errors != 0 {
		t.Fatalf("steady state had %d errors: %s", rep.Errors, rep)
	}
	if rep.Reads+rep.Writes < rep.Ops {
		t.Fatalf("op accounting inconsistent: %s", rep)
	}
	if rep.P99 == 0 || rep.MaxUnavail == 0 {
		t.Fatalf("SLO fields unpopulated: %s", rep)
	}
}

// TestLoadGeneratorLeaksNoGoroutines pins the teardown contract: after
// RunLoad returns, every session goroutine and every client connection
// goroutine is gone (the campaign leak-test pattern).
func TestLoadGeneratorLeaksNoGoroutines(t *testing.T) {
	c := newCluster(t, 3, 1)
	before := runtime.NumGoroutine()
	_, err := RunLoad(LoadConfig{
		Sessions: 16, Duration: 200 * time.Millisecond, Seed: 7,
		NewClient: func(i int) (*Client, error) {
			return New(Config{View: c.view, Writer: uint32(i + 1), OpTimeout: 5 * time.Second})
		},
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	waitNoLeak(t, before)
}

// waitNoLeak polls until the goroutine count returns to the baseline
// (server-side conn handlers drain asynchronously after client close).
func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClientSurvivesServerRestart: kill a replica, restart a fresh
// server on the same address over the same store, and require ops to
// ride through on redial — the transport behavior kill-restart faults
// exercise in the orchestrated cluster.
func TestClientSurvivesServerRestart(t *testing.T) {
	c := newCluster(t, 3, 1)
	cl := c.client(t, 1)
	if err := cl.Write("k", []byte("v1")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	addr := c.servers[0].Addr()
	c.servers[0].Close()
	// Ops keep succeeding on the surviving quorum.
	if err := cl.Write("k", []byte("v2")); err != nil {
		t.Fatalf("Write with replica 0 down: %v", err)
	}
	srv, err := NewServer(addr, c.stores[0], c.views[0])
	if err != nil {
		t.Fatalf("restart server: %v", err)
	}
	t.Cleanup(srv.Close)
	if err := cl.Write("k", []byte("v3")); err != nil {
		t.Fatalf("Write after restart: %v", err)
	}
	if got, err := cl.Read("k"); err != nil || !bytes.Equal(got, []byte("v3")) {
		t.Fatalf("Read after restart = %q, %v", got, err)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty view accepted")
	}
	// f too large: quorum n−f would not intersect itself.
	v := View{Epoch: 0, F: 2, Addrs: map[uint32]string{0: "a", 1: "b", 2: "c"}}
	if _, err := New(Config{View: v}); err == nil {
		t.Error("non-intersecting quorum accepted")
	}
}

func TestRunLoadRejectsBadConfigs(t *testing.T) {
	factory := func(int) (*Client, error) { return nil, nil }
	for name, cfg := range map[string]LoadConfig{
		"zero sessions": {Duration: time.Second, NewClient: factory},
		"zero duration": {Sessions: 1, NewClient: factory},
		"nil factory":   {Sessions: 1, Duration: time.Second},
	} {
		if _, err := RunLoad(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
