//go:build !race

package live

// raceDetectorEnabled reports whether this test binary was built with
// -race. Wall-clock bounds are asserted strictly only without the race
// detector: its ~10x crypto slowdown makes absolute timing meaningless,
// while recovery itself must still happen.
const raceDetectorEnabled = false
