package live

// Orchestrated multi-process deployments: the parent half of proc.go.
// RunOrchestrator boots one OS process per node slot over the TCP
// transport, acts as the physical plant (first actuation command to
// arrive per (sink, period) wins), injects faults against real processes
// — the in-process behavior catalog via the victim's spec, plus
// process-level faults no simulator can express: SIGKILL (with optional
// supervised restart), SIGSTOP/SIGCONT stalls, and userspace partitions —
// and judges recovery against the strategy's provable bound R.

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"
	"syscall"
	"time"

	"btr/internal/client"
	"btr/internal/cliflag"
	"btr/internal/evidence"
	"btr/internal/flow"
	"btr/internal/metrics"
	"btr/internal/network"
	"btr/internal/plan"
	"btr/internal/sim"
)

// ProcFaultKinds lists every fault an orchestrated deployment can
// inject: the in-process behavior catalog (self-injected by the victim
// process) plus the process-level faults only a real deployment has.
var ProcFaultKinds = []string{
	"corrupt-all", "corrupt-sink", "crash", "omit", "flood", "none",
	"kill", "kill-restart", "stop", "partition",
}

// StormFaultKinds lists the process-level faults a concurrent fault
// schedule may carry — faults the orchestrator drives against a running
// process (the in-process behavior catalog is self-injected at spawn
// and cannot be scheduled concurrently).
var StormFaultKinds = []string{"kill", "kill-restart", "stop", "partition"}

// FaultSpec is one entry of a concurrent fault schedule: a process-level
// fault against one victim with its own injection and repair instants.
type FaultSpec struct {
	Kind string // StormFaultKinds
	// Node is the victim slot; -1 auto-assigns (the strategy victim
	// first, then the lowest untargeted slots). Every entry must target
	// a distinct node.
	Node    int
	FaultAt uint64 // injection period
	// HealAfter is how many periods after injection the orchestrator
	// repairs the fault (respawn / SIGCONT / heal); 0 means the default
	// of 3. Ignored for kind "kill", which is never repaired.
	HealAfter uint64
}

// StormVerdict is the per-victim outcome of one schedule entry.
type StormVerdict struct {
	Kind      string
	Node      int
	FaultAt   uint64
	HealAfter uint64
	// ReconnectChecked/Reconnected mirror ProcResult's transport
	// verdict, judged per victim: kinds whose repair must be visible at
	// the transport (kill-restart, partition, stop — a SIGSTOP stall
	// outlives the liveness deadline, so peers sever the victim's silent
	// links and the resumed victim must redial every one of them).
	ReconnectChecked bool
	Reconnected      bool
}

// OrchestratorConfig describes one orchestrated multi-process run.
type OrchestratorConfig struct {
	// Exe is the node-process binary (re-executed with BTR_PROC_SPEC);
	// empty means the current executable.
	Exe string

	Topo    string // TopoKinds
	Nodes   int
	F       int
	Seed    uint64
	Period  sim.Time
	Margin  sim.Time
	Horizon uint64

	Fault   string // ProcFaultKinds
	FaultAt uint64 // injection period; must satisfy FaultAt+HealAfter < Horizon

	// HealAfter is how many periods after the fault the orchestrator
	// repairs it: respawn for kill-restart, SIGCONT for stop, heal for
	// partition. 0 means the default of 3.
	HealAfter uint64

	// Faults optionally scripts a concurrent multi-fault storm: every
	// entry is injected and repaired on its own clock, so ≥ 2
	// process-level faults can be active at once. Non-empty Faults
	// supersedes Fault/FaultAt/HealAfter (Fault must then be "" or
	// "none").
	Faults []FaultSpec

	// Forgive is the deployment's parole clock
	// (runtime.Config.ForgiveAfter), threaded into every node spec.
	// Zero keeps classic mode: convictions never expire and no budget
	// verdicts are raised. Storms that push the fault set past f need
	// Forgive > 0 for the over-budget/degraded-window reporting the
	// storm verdict reads back.
	Forgive sim.Time

	// Clients, when positive, opens the client-facing register service
	// on every node process and drives that many concurrent client
	// sessions against the cluster for the judged run; the measured
	// client-visible SLO lands in ProcResult.SLO. OpsRate caps the
	// aggregate op rate in ops/sec (0 = closed loop).
	Clients int
	OpsRate float64

	// BarrierTimeout bounds the parent-side ready/up startup barriers.
	// A child that wedges before emitting its barrier line — a deadlock
	// before the listener is up, a debugger, a scheduler pathology —
	// must not hang the orchestrator until the hard timeout: on breach
	// every child is killed and the error names the nodes that never
	// reported. Zero means a generous default of 45s (the node-side
	// connectivity wait is bounded at 10s, so a healthy cluster is far
	// inside it).
	BarrierTimeout time.Duration

	Verbose bool
	// Log receives orchestration progress lines (nil = discard).
	Log io.Writer
}

// ProcResult is an orchestrated run's full outcome.
type ProcResult struct {
	// Report is the plant-judged recovery report; its FaultTimes,
	// BadIntervals, Recoveries, and bound methods work exactly as for an
	// in-process Deployment.
	Report *Report
	// Victim is the node the fault targeted (hosts the first-actuating
	// sink replica, like single-process btrlive).
	Victim   network.NodeID
	Injected bool
	// ReconnectChecked is true for fault kinds whose repair must be
	// visible at the transport (kill-restart, partition, stop);
	// Reconnected then reports whether every peer adjacent to every
	// checked victim both re-established the link (Reconnects >= 1, or
	// a fresh connection from a restarted peer) and held it at horizon.
	ReconnectChecked bool
	Reconnected      bool
	// Storm holds the per-victim verdicts of a fault schedule (one
	// entry per FaultSpec; also populated, with a single entry, for a
	// process-level single-fault run).
	Storm []StormVerdict
	// OverBudget and Reconciled total the budget verdicts the node
	// processes flooded (evidence kinds over-budget / reconciled);
	// nonzero OverBudget means some node flagged the degraded regime —
	// the detect-and-apologize signal a > f storm must raise.
	OverBudget int
	Reconciled int
	// FirstFaultAt/ConfineEnd bound the window in which bad output is
	// fault-attributable; Confined reports whether every bad interval of
	// the plant report lies inside it (no damage before the first fault,
	// none past the last repair + parole + R + slack). Only meaningful
	// when a fault was injected.
	FirstFaultAt sim.Time
	ConfineEnd   sim.Time
	Confined     bool
	// Dones maps node ID to its final done event (absent for a process
	// that was killed and not restarted); Exits maps node ID to its exit
	// error string ("" = clean).
	Dones map[int]ProcEvent
	Exits map[int]string
	// SLO is the client-visible report of the load generator (nil unless
	// OrchestratorConfig.Clients > 0): latency quantiles, error counts,
	// and the longest client-observed unavailability window, measured
	// through whatever faults the run injected.
	SLO *client.SLOReport
}

// plantAct is the plant's accepted command for one (sink, period).
type plantAct struct {
	value   string   // hex
	arrival sim.Time // orchestrator clock, microseconds since "go"
}

// procMsg is one child event or exit on the orchestrator's merged stream.
type procMsg struct {
	node int
	ev   *ProcEvent // nil for process exit
	err  error      // exit status (exit messages only)
	at   time.Time
}

// nodeProc is one spawned node process.
type nodeProc struct {
	id  int
	cmd *exec.Cmd
	in  io.WriteCloser
}

func (p *nodeProc) send(line string) {
	if p.in != nil {
		fmt.Fprintln(p.in, line)
	}
}

func (p *nodeProc) signal(sig syscall.Signal) {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Signal(sig)
	}
}

// spawnNodeProc starts exe as the node described by spec and streams its
// stdout events (and, last, its exit) into events.
func spawnNodeProc(exe string, spec ProcSpec, verbose bool, events chan<- procMsg) (*nodeProc, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), ProcSpecEnv+"="+string(raw))
	if verbose {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &nodeProc{id: spec.Node, cmd: cmd, in: stdin}
	go func() {
		dec := json.NewDecoder(stdout)
		for {
			var ev ProcEvent
			if err := dec.Decode(&ev); err != nil {
				break
			}
			events <- procMsg{node: spec.Node, ev: &ev, at: time.Now()}
		}
		events <- procMsg{node: spec.Node, err: cmd.Wait(), at: time.Now()}
	}()
	return p, nil
}

// RunOrchestrator runs one orchestrated multi-process deployment end to
// end and returns the plant-judged result. The run is bounded by a hard
// timeout (horizon plus a generous grace); on breach every child is
// killed and an error returned.
func RunOrchestrator(cfg OrchestratorConfig) (*ProcResult, error) {
	storm := len(cfg.Faults) > 0
	if storm {
		if cfg.Fault != "" && cfg.Fault != "none" {
			return nil, fmt.Errorf("live: a single fault (%q) and a fault schedule are mutually exclusive", cfg.Fault)
		}
		for i := range cfg.Faults {
			if err := cliflag.OneOf("faults", cfg.Faults[i].Kind, StormFaultKinds); err != nil {
				return nil, err
			}
		}
	} else if err := cliflag.OneOf("fault", cfg.Fault, ProcFaultKinds); err != nil {
		return nil, err
	}
	topo, err := ProcTopology(cfg.Topo, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	if cfg.Period <= 0 || cfg.Horizon == 0 {
		return nil, fmt.Errorf("live: period and horizon must be positive")
	}
	if cfg.Clients < 0 {
		return nil, fmt.Errorf("live: negative client count %d", cfg.Clients)
	}
	if cfg.OpsRate > 0 && cfg.Clients == 0 {
		return nil, fmt.Errorf("live: an op rate needs client sessions (clients = 0)")
	}
	if cfg.Clients > 0 && cfg.Horizon < 2 {
		return nil, fmt.Errorf("live: client load needs a horizon of at least 2 periods")
	}
	if cfg.HealAfter == 0 {
		cfg.HealAfter = 3
	}
	injected := storm || cfg.Fault != "none"
	if !storm && injected && cfg.FaultAt+cfg.HealAfter >= cfg.Horizon {
		return nil, fmt.Errorf("live: fault at period %d with heal-after %d does not fit horizon %d",
			cfg.FaultAt, cfg.HealAfter, cfg.Horizon)
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	period := cfg.Period
	workload := DefaultWorkload(period)
	opts := plan.DefaultOptions(cfg.F, 100*period)
	opts.WatchdogMargin = cfg.Margin
	strategy, err := plan.Build(workload, topo, opts)
	if err != nil {
		return nil, fmt.Errorf("live: planning failed: %w", err)
	}
	victim := VictimOf(strategy)
	oracle := hashOracle(workload, evidence.SourceValue)
	exe := cfg.Exe
	if exe == "" {
		if exe, err = os.Executable(); err != nil {
			return nil, err
		}
	}

	// The behavior catalog travels in the victim's spec; process-level
	// faults are driven from here. A single process-level fault is
	// normalized into a one-entry schedule so storms and single faults
	// share one driving loop.
	catalogFault := ""
	entries := append([]FaultSpec(nil), cfg.Faults...)
	if !storm {
		switch cfg.Fault {
		case "kill", "kill-restart", "stop", "partition":
			entries = []FaultSpec{{Kind: cfg.Fault, Node: int(victim), FaultAt: cfg.FaultAt, HealAfter: cfg.HealAfter}}
		case "none":
		default:
			catalogFault = cfg.Fault
		}
	}
	// Resolve auto victims (-1): the strategy victim first, then the
	// lowest untargeted slots. Every entry must hit a distinct node.
	used := map[int]bool{}
	for i := range entries {
		if entries[i].HealAfter == 0 {
			entries[i].HealAfter = 3
		}
		if entries[i].Node < 0 {
			continue
		}
		if entries[i].Node >= topo.N {
			return nil, fmt.Errorf("live: fault schedule targets node %d of a %d-node deployment", entries[i].Node, topo.N)
		}
		if used[entries[i].Node] {
			return nil, fmt.Errorf("live: fault schedule targets node %d twice", entries[i].Node)
		}
		used[entries[i].Node] = true
	}
	for i := range entries {
		if entries[i].Node >= 0 {
			continue
		}
		pick := -1
		if !used[int(victim)] {
			pick = int(victim)
		} else {
			for n := 0; n < topo.N; n++ {
				if !used[n] {
					pick = n
					break
				}
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("live: fault schedule has more entries than nodes")
		}
		entries[i].Node = pick
		used[pick] = true
	}
	for _, e := range entries {
		end := e.FaultAt
		if e.Kind != "kill" {
			end = e.FaultAt + e.HealAfter
		}
		if end >= cfg.Horizon {
			return nil, fmt.Errorf("live: fault %s at period %d with heal-after %d does not fit horizon %d",
				e.Kind, e.FaultAt, e.HealAfter, cfg.Horizon)
		}
	}

	baseSpec := func(i int) ProcSpec {
		s := ProcSpec{
			Node: i, Topo: cfg.Topo, Nodes: cfg.Nodes, F: cfg.F, Seed: cfg.Seed,
			PeriodUS: int64(period), MarginUS: int64(cfg.Margin), Horizon: cfg.Horizon,
			ForgiveUS: int64(cfg.Forgive), Verbose: cfg.Verbose,
			ServeClients: cfg.Clients > 0,
		}
		if catalogFault != "" && i == int(victim) {
			s.Fault, s.FaultAt = catalogFault, cfg.FaultAt
		}
		return s
	}

	events := make(chan procMsg, 1024)
	procs := map[int]*nodeProc{}
	killAll := func() {
		for _, p := range procs {
			if p.cmd.Process != nil {
				_ = p.cmd.Process.Kill()
			}
		}
	}
	defer killAll()

	for i := 0; i < topo.N; i++ {
		p, err := spawnNodeProc(exe, baseSpec(i), cfg.Verbose, events)
		if err != nil {
			return nil, fmt.Errorf("live: spawn node %d: %w", i, err)
		}
		procs[i] = p
	}
	if storm {
		var parts []string
		for _, e := range entries {
			parts = append(parts, fmt.Sprintf("%s@%d+%d->node%d", e.Kind, e.FaultAt, e.HealAfter, e.Node))
		}
		fmt.Fprintf(logw, "orchestrator: %d node processes spawned (storm: %s)\n",
			topo.N, strings.Join(parts, " "))
	} else {
		fmt.Fprintf(logw, "orchestrator: %d node processes spawned (victim %d, fault %s at period %d)\n",
			topo.N, victim, cfg.Fault, cfg.FaultAt)
	}

	perDur := time.Duration(period) * time.Microsecond
	hardTimeout := time.After(time.Duration(cfg.Horizon+2)*perDur + 60*time.Second)

	// The startup barriers get their own bounded wait, far tighter than
	// the hard timeout: a child that wedges before emitting its barrier
	// line would otherwise hang the parent for the whole horizon grace.
	// On breach the stragglers are killed and named.
	barrierDur := cfg.BarrierTimeout
	if barrierDur <= 0 {
		barrierDur = 45 * time.Second
	}
	barrierTimeout := time.After(barrierDur)
	// straggling names the nodes still missing from a barrier round.
	straggling := func(reported map[int]bool) []int {
		var missing []int
		for i := 0; i < topo.N; i++ {
			if !reported[i] {
				missing = append(missing, i)
			}
		}
		return missing
	}

	// Barrier: collect every listener address, then release all processes
	// at once so their logical clocks agree to within pipe latency.
	addrs := make([]string, topo.N)
	clientAddrs := make([]string, topo.N)
	readyNodes := map[int]bool{}
	for len(readyNodes) < topo.N {
		select {
		case m := <-events:
			switch {
			case m.ev != nil && m.ev.Ev == "ready":
				addrs[m.node] = m.ev.Addr
				clientAddrs[m.node] = m.ev.ClientAddr
				readyNodes[m.node] = true
			case m.ev == nil:
				return nil, fmt.Errorf("live: node %d exited before ready: %v", m.node, m.err)
			}
		case <-barrierTimeout:
			killAll()
			return nil, fmt.Errorf("live: ready barrier timed out after %v — nodes %v never reported ready (killed)",
				barrierDur, straggling(readyNodes))
		case <-hardTimeout:
			killAll()
			return nil, fmt.Errorf("live: timed out waiting for node readiness")
		}
	}
	peersLine := "peers " + strings.Join(addrs, " ")
	for _, p := range procs {
		p.send(peersLine)
	}
	// Second barrier: wait for every process to finish building its system
	// (key generation, planning, dialing) so the release pins all logical
	// clocks to the same instant — construction lag must not eat into the
	// judged periods.
	upNodes := map[int]bool{}
	for len(upNodes) < topo.N {
		select {
		case m := <-events:
			switch {
			case m.ev != nil && m.ev.Ev == "up":
				upNodes[m.node] = true
			case m.ev == nil:
				return nil, fmt.Errorf("live: node %d exited before up: %v", m.node, m.err)
			}
		case <-barrierTimeout:
			killAll()
			return nil, fmt.Errorf("live: up barrier timed out after %v — nodes %v never reported up (killed)",
				barrierDur, straggling(upNodes))
		case <-hardTimeout:
			killAll()
			return nil, fmt.Errorf("live: timed out waiting for node construction")
		}
	}
	goTime := time.Now()
	for _, p := range procs {
		p.send("go")
	}
	fmt.Fprintf(logw, "orchestrator: cluster released (%s)\n", strings.Join(addrs, " "))

	// Client load rides the judged run: Clients concurrent sessions of
	// quorum reads/writes against the register service, stopping one
	// period before the horizon so node drain never masquerades as
	// client-visible unavailability. The SLO verdict is theirs — latency
	// and availability as an external caller experiences them, measured
	// through whatever faults the schedule injects.
	type sloOut struct {
		rep *client.SLOReport
		err error
	}
	var sloCh chan sloOut
	if cfg.Clients > 0 {
		view := client.View{Epoch: 0, F: cfg.F, Addrs: map[uint32]string{}}
		for i, a := range clientAddrs {
			if a == "" {
				killAll()
				return nil, fmt.Errorf("live: node %d reported no client-service address", i)
			}
			view.Addrs[uint32(i)] = a
		}
		loadDur := time.Duration(cfg.Horizon-1) * perDur
		sloCh = make(chan sloOut, 1)
		go func() {
			rep, err := client.RunLoad(client.LoadConfig{
				Sessions: cfg.Clients, Duration: loadDur, Rate: cfg.OpsRate, Seed: cfg.Seed,
				NewClient: func(i int) (*client.Client, error) {
					return client.New(client.Config{
						View: view, Writer: uint32(i + 1),
						OpTimeout: 10 * time.Second, IOTimeout: 2 * time.Second,
					})
				},
			})
			sloCh <- sloOut{rep, err}
		}()
		fmt.Fprintf(logw, "orchestrator: %d client sessions started (%v, rate %.0f ops/s)\n",
			cfg.Clients, loadDur, cfg.OpsRate)
	}

	// The fault schedule becomes a sorted action queue; one timer channel
	// re-arms for the head action, so any number of injections and
	// repairs interleave with their own clocks.
	type stormAction struct {
		at    time.Time
		entry int
		heal  bool
	}
	var actions []stormAction
	for i, e := range entries {
		actions = append(actions, stormAction{goTime.Add(time.Duration(e.FaultAt) * perDur), i, false})
		if e.Kind != "kill" {
			actions = append(actions, stormAction{goTime.Add(time.Duration(e.FaultAt+e.HealAfter) * perDur), i, true})
		}
	}
	sort.Slice(actions, func(i, j int) bool { return actions[i].at.Before(actions[j].at) })
	arm := func() <-chan time.Time {
		if len(actions) == 0 {
			return nil
		}
		return time.After(time.Until(actions[0].at))
	}
	actionCh := arm()

	plant := map[string]plantAct{}
	res := &ProcResult{
		Victim: victim, Injected: injected,
		Dones: map[int]ProcEvent{}, Exits: map[int]string{},
	}
	exits := 0
	spawned := topo.N
	for exits < spawned {
		select {
		case m := <-events:
			switch {
			case m.ev == nil:
				exits++
				// First write wins: a restarted incarnation must not mask
				// how its predecessor died (e.g. "signal: killed").
				if _, dup := res.Exits[m.node]; !dup {
					if m.err != nil {
						res.Exits[m.node] = m.err.Error()
					} else {
						res.Exits[m.node] = ""
					}
				}
			case m.ev.Ev == "act":
				key := m.ev.Sink + "|" + fmt.Sprint(m.ev.Period)
				if _, taken := plant[key]; !taken {
					a := plantAct{
						value:   m.ev.Value,
						arrival: sim.Time(m.at.Sub(goTime) / time.Microsecond),
					}
					plant[key] = a
					fmt.Fprintf(logw, "plant: %s period %d from node %d at %v (logical %v)\n",
						m.ev.Sink, m.ev.Period, m.node, a.arrival, sim.Time(m.ev.AtUS))
				}
			case m.ev.Ev == "done":
				res.Dones[m.node] = *m.ev
				fmt.Fprintf(logw, "done node %d: acts=%d evidence=%d switches=%d connected=%d links=%+v\n",
					m.node, m.ev.Acts, m.ev.Evidence, m.ev.Switches, m.ev.Connected, m.ev.Links)
			case m.ev.Ev == "up":
				// Only a restarted process reports up mid-run; it rebinds
				// its old port, rebuilds, and needs only the release.
				procs[m.node].send("go")
			}
		case <-actionCh:
			act := actions[0]
			actions = actions[1:]
			e := entries[act.entry]
			v := procs[e.Node]
			if !act.heal {
				switch e.Kind {
				case "kill", "kill-restart":
					fmt.Fprintf(logw, "orchestrator: SIGKILL node %d\n", e.Node)
					v.signal(syscall.SIGKILL)
				case "stop":
					fmt.Fprintf(logw, "orchestrator: SIGSTOP node %d\n", e.Node)
					v.signal(syscall.SIGSTOP)
				case "partition":
					fmt.Fprintf(logw, "orchestrator: partition node %d\n", e.Node)
					v.send("part")
				}
			} else {
				switch e.Kind {
				case "kill-restart":
					// Rejoin in standby: the transport reconnects (that is
					// what the verdict asserts); the executive stays out of
					// the schedule the cluster has already failed over to.
					restart := baseSpec(e.Node)
					restart.Addrs = append([]string(nil), addrs...)
					if cfg.Clients > 0 {
						restart.ClientAddrs = append([]string(nil), clientAddrs...)
					}
					restart.StartPeriod = e.FaultAt + e.HealAfter
					restart.Standby = true
					restart.Fault = ""
					p, err := spawnNodeProc(exe, restart, cfg.Verbose, events)
					if err != nil {
						fmt.Fprintf(logw, "orchestrator: restart failed: %v\n", err)
						break
					}
					procs[e.Node] = p
					spawned++
					fmt.Fprintf(logw, "orchestrator: node %d restarted in standby at period %d\n",
						e.Node, restart.StartPeriod)
				case "stop":
					fmt.Fprintf(logw, "orchestrator: SIGCONT node %d\n", e.Node)
					v.signal(syscall.SIGCONT)
				case "partition":
					fmt.Fprintf(logw, "orchestrator: heal node %d\n", e.Node)
					v.send("heal")
				}
			}
			actionCh = arm()
		case <-hardTimeout:
			killAll()
			return nil, fmt.Errorf("live: hard timeout — killed %d node processes", len(procs))
		}
	}

	// Join the load generator (it stops a period before the horizon, so
	// every process has outlived it) and adopt its client-side verdict.
	if sloCh != nil {
		out := <-sloCh
		if out.err != nil {
			return nil, fmt.Errorf("live: client load failed: %w", out.err)
		}
		res.SLO = out.rep
	}

	// Judge the merged actuation stream as the plant: a command counts
	// for its period iff it arrived by the sink deadline (plus a pipe-
	// jitter allowance — commands cross a pipe that in-process monitors
	// do not pay) and carried the oracle value.
	rep := &Report{
		Horizon: sim.Time(cfg.Horizon) * period, Period: period,
		RNeeded:         strategy.RNeeded,
		PerSink:         map[flow.TaskID]*metrics.Timeline{},
		EvidenceByKind:  map[evidence.Kind]int{},
		FirstEvidenceAt: sim.Never,
	}
	for _, sk := range workload.Sinks() {
		rep.PerSink[sk] = metrics.NewTimeline(0, true)
	}
	slack := cfg.Margin
	for p := uint64(0); p < cfg.Horizon; p++ {
		for _, sk := range workload.Sinks() {
			deadline := sim.Time(p)*period + workload.Tasks[sk].Deadline
			a, present := plant[string(sk)+"|"+fmt.Sprint(p)]
			ok := false
			switch {
			case !present || a.arrival > deadline+slack:
				rep.MissedPeriods++
			case a.value != hex.EncodeToString(oracle(sk, p)):
				rep.WrongValues++
			default:
				ok = true
			}
			rep.PerSink[sk].Set(deadline, ok)
		}
	}
	if injected {
		if catalogFault != "" {
			rep.FaultTimes = []sim.Time{sim.Time(cfg.FaultAt) * period}
		} else {
			for _, e := range entries {
				rep.FaultTimes = append(rep.FaultTimes, sim.Time(e.FaultAt)*period)
			}
			sort.Slice(rep.FaultTimes, func(i, j int) bool { return rep.FaultTimes[i] < rep.FaultTimes[j] })
		}
	}
	for _, d := range res.Dones {
		rep.Actuations += d.Acts
		res.OverBudget += d.OverBudget
		res.Reconciled += d.Reconciled
	}
	if res.OverBudget > 0 {
		rep.EvidenceByKind[evidence.KindOverBudget] = res.OverBudget
	}
	if res.Reconciled > 0 {
		rep.EvidenceByKind[evidence.KindReconciled] = res.Reconciled
	}
	res.Report = rep

	// Transport-level verdict, judged per schedule entry: after a
	// kill-restart respawn or a partition heal, every peer adjacent to
	// the victim must have re-established the link and held it through
	// the horizon. Peers that were themselves killed in the storm are
	// not witnesses for other victims: a killed peer has no counters and
	// a restarted one rejoins on its own clock (possibly still
	// handshaking at horizon) — its rejoin is judged by its own entry,
	// through the links of the peers that lived through it.
	//
	// SIGSTOP is judged through the VICTIM's own links instead: the
	// stall outlives the 200ms liveness deadline, so the running peers
	// deterministically sever the victim's silent connections and the
	// resumed victim must redial every one of them. The peer→victim
	// direction is NOT a reliable witness — a stopped process's kernel
	// still ACKs, so a peer's outbound connection can legitimately ride
	// out the stall on kernel buffering (the victim drains the backlog
	// on resume) and never needs a redial.
	stormVictim := map[int]bool{}
	for _, e := range entries {
		if e.Kind == "kill" || e.Kind == "kill-restart" {
			stormVictim[e.Node] = true
		}
	}
	anyChecked := false
	allReconnected := true
	for _, e := range entries {
		sv := StormVerdict{Kind: e.Kind, Node: e.Node, FaultAt: e.FaultAt, HealAfter: e.HealAfter}
		switch e.Kind {
		case "stop":
			sv.ReconnectChecked = true
			sv.Reconnected = true
			d, ok := res.Dones[e.Node]
			if !ok || len(d.Links) == 0 {
				sv.Reconnected = false
			}
			for _, l := range d.Links {
				if stormVictim[l.Peer] {
					continue
				}
				if l.Reconnects < 1 || !l.Connected {
					sv.Reconnected = false
				}
			}
			anyChecked = true
			if !sv.Reconnected {
				allReconnected = false
			}
		case "kill-restart", "partition":
			sv.ReconnectChecked = true
			sv.Reconnected = true
			for _, peer := range topo.Neighbors(network.NodeID(e.Node)) {
				if int(peer) != e.Node && stormVictim[int(peer)] {
					continue
				}
				d, ok := res.Dones[int(peer)]
				if !ok {
					sv.Reconnected = false
					continue
				}
				found := false
				for _, l := range d.Links {
					if l.Peer == e.Node {
						found = l.Reconnects >= 1 && l.Connected
					}
				}
				if !found {
					sv.Reconnected = false
				}
			}
			anyChecked = true
			if !sv.Reconnected {
				allReconnected = false
			}
		}
		res.Storm = append(res.Storm, sv)
	}
	if anyChecked {
		res.ReconnectChecked = true
		res.Reconnected = allReconnected
	}

	// Confinement: every bad interval of the plant report must lie inside
	// [first fault, last repair + parole + R + slack] — damage may be
	// severe in a > f storm, but it must be fault-attributable, never
	// silent leakage before the first fault or past the drain of the last
	// repair.
	if injected {
		res.FirstFaultAt = rep.FaultTimes[0]
		lastRepair := sim.Time(cfg.FaultAt) * period
		for _, e := range entries {
			end := e.FaultAt
			if e.Kind != "kill" {
				end = e.FaultAt + e.HealAfter
			}
			if t := sim.Time(end) * period; t > lastRepair {
				lastRepair = t
			}
		}
		res.ConfineEnd = lastRepair + cfg.Forgive + strategy.RNeeded + 2*period + cfg.Margin
		res.Confined = true
		for _, tl := range rep.PerSink {
			for _, iv := range tl.FalseIntervals(rep.Horizon) {
				if iv.Start < res.FirstFaultAt || iv.End > res.ConfineEnd {
					res.Confined = false
				}
			}
		}
	}
	return res, nil
}
